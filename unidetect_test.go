package unidetect_test

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"github.com/unidetect/unidetect"
)

var (
	apiModelOnce sync.Once
	apiModel     *unidetect.Model
)

func apiTrain(t testing.TB) *unidetect.Model {
	t.Helper()
	apiModelOnce.Do(func() {
		bg := unidetect.SyntheticCorpus(unidetect.WebProfile, 3000, 11)
		m, err := unidetect.Train(context.Background(), bg, nil)
		if err != nil {
			panic(err)
		}
		apiModel = m
	})
	return apiModel
}

func TestTrainEmptyCorpus(t *testing.T) {
	if _, err := unidetect.Train(context.Background(), nil, nil); err == nil {
		t.Error("empty corpus should error")
	}
}

func TestDetectTypo(t *testing.T) {
	m := apiTrain(t)
	tbl, err := unidetect.NewTable("directors",
		unidetect.NewColumn("Name", []string{
			"Kevin Doeling", "Kevin Dowling", "Alan Myerson", "Rob Morrow",
			"Lesli Glatter", "Peter Bonerz", "Nick Marck", "Matthew Diamond",
		}))
	if err != nil {
		t.Fatal(err)
	}
	fs := m.Detect(context.Background(), tbl)
	if len(fs) == 0 {
		t.Fatal("no findings")
	}
	f := fs[0]
	if f.Class != unidetect.Spelling {
		t.Errorf("class = %v", f.Class)
	}
	if len(f.Rows) != 2 || f.Rows[0] != 0 || f.Rows[1] != 1 {
		t.Errorf("rows = %v", f.Rows)
	}
	if f.Score > 0.05 {
		t.Errorf("score = %v", f.Score)
	}
	if !strings.Contains(f.String(), "spelling") {
		t.Errorf("String = %q", f.String())
	}
}

func TestDetectDuplicateKey(t *testing.T) {
	m := apiTrain(t)
	ids := make([]string, 0, 40)
	for i := 0; i < 40; i++ {
		ids = append(ids, "QZ"+string(rune('A'+i%26))+string(rune('A'+i/26))+"73"+string(rune('0'+i%10)))
	}
	ids[31] = ids[4]
	tbl, _ := unidetect.NewTable("parts", unidetect.NewColumn("Part No.", ids))
	fs := m.Detect(context.Background(), tbl)
	found := false
	for _, f := range fs {
		if f.Class == unidetect.Uniqueness {
			found = true
			if len(f.Rows) != 2 || f.Rows[0] != 4 || f.Rows[1] != 31 {
				t.Errorf("rows = %v", f.Rows)
			}
		}
	}
	if !found {
		t.Errorf("no uniqueness finding in %v", fs)
	}
}

func TestDetectSuppressesChanceDuplicates(t *testing.T) {
	m := apiTrain(t)
	// A Titanic-passenger-style name column (hundreds of rows, as in
	// Figure 2a) with one chance duplicate: must NOT be flagged as a
	// uniqueness violation — from a long list of names, a small fraction
	// will inevitably be identical by chance.
	firsts := []string{"James", "Mary", "John", "Emma", "Grace", "Ali",
		"Hans", "Eva", "Jan", "Raj", "Noor", "Arthur", "Andrew"}
	lasts := []string{"Kelly", "Keane", "Keefe", "Kennedy", "King",
		"Knox", "Kumar", "Khan", "Kim", "Klein", "Koch", "Kowalski"}
	names := make([]string, 0, 151)
	for i := 0; len(names) < 150; i++ {
		names = append(names, lasts[i%len(lasts)]+", "+firsts[(i/len(lasts))%len(firsts)])
	}
	names = append(names, names[3]) // the one chance collision
	tbl, _ := unidetect.NewTable("passengers", unidetect.NewColumn("Name", names))
	for _, f := range m.Detect(context.Background(), tbl) {
		if f.Class == unidetect.Uniqueness {
			t.Errorf("chance duplicate flagged: %v", f)
		}
	}
}

func TestDetectOutlierDecimalError(t *testing.T) {
	m := apiTrain(t)
	tbl, _ := unidetect.NewTable("population",
		unidetect.NewColumn("2013 Pop", []string{
			"8011", "87.16", "9954", "11895", "11329", "11352", "11709",
			"10233", "9871", "12004",
		}))
	fs := m.Detect(context.Background(), tbl)
	found := false
	for _, f := range fs {
		if f.Class == unidetect.Outlier && len(f.Rows) == 1 && f.Rows[0] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("decimal-point outlier not detected: %v", fs)
	}
}

func TestDetectRomanColumnNotFlagged(t *testing.T) {
	m := apiTrain(t)
	// Figure 2(h): a Super Bowl column full of distance-1 pairs must not
	// be flagged as misspelled.
	tbl, _ := unidetect.NewTable("superbowls",
		unidetect.NewColumn("Super Bowl", []string{
			"Super Bowl XX", "Super Bowl XXI", "Super Bowl XXII",
			"Super Bowl XXV", "Super Bowl XXVI", "Super Bowl XXVII",
		}))
	for _, f := range m.Detect(context.Background(), tbl) {
		if f.Class == unidetect.Spelling {
			t.Errorf("roman-numeral column flagged: %v", f)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := apiTrain(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := unidetect.Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CorpusTables() != m.CorpusTables() {
		t.Errorf("CorpusTables = %d, want %d", loaded.CorpusTables(), m.CorpusTables())
	}
	tbl, _ := unidetect.NewTable("directors",
		unidetect.NewColumn("Name", []string{
			"Kevin Doeling", "Kevin Dowling", "Alan Myerson", "Rob Morrow",
			"Lesli Glatter", "Peter Bonerz",
		}))
	a := m.Detect(context.Background(), tbl)
	b := loaded.Detect(context.Background(), tbl)
	if len(a) != len(b) {
		t.Fatalf("finding counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Score != b[i].Score || a[i].Column != b[i].Column {
			t.Errorf("finding %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLoadCorrupt(t *testing.T) {
	if _, err := unidetect.Load(bytes.NewReader([]byte("nope")), nil); err == nil {
		t.Error("garbage should not load")
	}
	// A long-enough stream with a wrong magic must be rejected with the
	// version message, not a gob error.
	junk := bytes.Repeat([]byte("X"), 64)
	if _, err := unidetect.Load(bytes.NewReader(junk), nil); err == nil || !strings.Contains(err.Error(), "not a model file") {
		t.Errorf("err = %v", err)
	}
}

func TestModelStats(t *testing.T) {
	m := apiTrain(t)
	stats := m.Stats()
	if len(stats) != 5 {
		t.Fatalf("stats = %v", stats)
	}
	for _, s := range stats {
		if s.Samples == 0 {
			t.Errorf("class %v has no samples", s.Class)
		}
		if s.Buckets == 0 {
			t.Errorf("class %v has no buckets", s.Class)
		}
	}
}

func TestDiscoverFDs(t *testing.T) {
	tbl, _ := unidetect.NewTable("geo",
		unidetect.NewColumn("City", []string{"Paris", "Lyon", "Paris", "Nice", "Lyon"}),
		unidetect.NewColumn("Country", []string{"France", "France", "France", "France", "France"}),
	)
	fds := unidetect.DiscoverFDs(tbl, unidetect.FDDiscoveryOptions{MaxLhs: 1})
	found := false
	for _, fd := range fds {
		if len(fd.Lhs) == 1 && fd.Lhs[0] == "City" && fd.Rhs == "Country" && fd.Error == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("City→Country not discovered: %v", fds)
	}
}

func TestReadCSVAndDetect(t *testing.T) {
	m := apiTrain(t)
	csv := "Name,Age\nKevin Doeling,41\nKevin Dowling,52\nAlan Myerson,63\nRob Morrow,44\nLesli Glatter,50\nPeter Bonerz,47\n"
	tbl, err := unidetect.ReadCSV("cast", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	fs := m.Detect(context.Background(), tbl)
	if len(fs) == 0 || fs[0].Class != unidetect.Spelling {
		t.Errorf("findings = %v", fs)
	}
}

func TestOptionsDictionary(t *testing.T) {
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, 1200, 13)
	m, err := unidetect.Train(context.Background(), bg, &unidetect.Options{UseDictionary: true})
	if err != nil {
		t.Fatal(err)
	}
	tbl, _ := unidetect.NewTable("courses",
		unidetect.NewColumn("Course", []string{
			"Macroeconomics", "Microeconomics", "Ancient History",
			"Linear Algebra", "Organic Chemistry", "World Geography",
		}))
	for _, f := range m.Detect(context.Background(), tbl) {
		if f.Class == unidetect.Spelling {
			t.Errorf("dictionary should refute Macro/Microeconomics: %v", f)
		}
	}
}

func TestErrorClassStrings(t *testing.T) {
	want := map[unidetect.ErrorClass]string{
		unidetect.Spelling:    "spelling",
		unidetect.Outlier:     "outlier",
		unidetect.Uniqueness:  "uniqueness",
		unidetect.FD:          "fd",
		unidetect.FDSynthesis: "fd-synthesis",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestPatternModel(t *testing.T) {
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, 4000, 17)
	pm := unidetect.TrainPatterns(bg)
	tbl, _ := unidetect.NewTable("mixed",
		unidetect.NewColumn("Date", []string{
			"2001-01-01", "2002-02-02", "2003-03-03", "2004-04-04",
			"2005-05-05", "2006-Jun-06",
		}))
	fs := pm.Detect(context.Background(), tbl, 0)
	if len(fs) == 0 {
		t.Fatal("date-format incompatibility not detected")
	}
	f := fs[0]
	if len(f.Rows) != 1 || f.Rows[0] != 5 {
		t.Errorf("rows = %v", f.Rows)
	}
	if f.MinorityPattern != "d-l-d" {
		t.Errorf("minority pattern = %q", f.MinorityPattern)
	}
}

func TestSuggestRepairs(t *testing.T) {
	m := apiTrain(t)
	tbl, _ := unidetect.NewTable("directors",
		unidetect.NewColumn("Director", []string{
			"Kevin Dowling", "Kevin Doeling", "Kevin Dowling", "Rob Morrow",
			"Lesli Glatter", "Peter Bonerz", "Alan Myerson", "Nick Marck",
		}))
	fs := m.Detect(context.Background(), tbl)
	if len(fs) == 0 || fs[0].Class != unidetect.Spelling {
		t.Fatalf("findings = %v", fs)
	}
	rs := unidetect.SuggestRepairs(tbl, fs[0])
	if len(rs) != 1 {
		t.Fatalf("repairs = %v", rs)
	}
	// "Kevin Dowling" recurs; the one-off "Kevin Doeling" is the typo.
	if rs[0].Old != "Kevin Doeling" || rs[0].New != "Kevin Dowling" {
		t.Errorf("repair = %+v", rs[0])
	}
}

func TestWithPatternsOption(t *testing.T) {
	ctx := context.Background()
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, 4000, 61)
	m, err := unidetect.Train(ctx, bg, &unidetect.Options{WithPatterns: true})
	if err != nil {
		t.Fatal(err)
	}
	mixed, _ := unidetect.NewTable("dates",
		unidetect.NewColumn("When", []string{
			"2001-01-01", "2002-02-02", "2003-03-03", "2004-04-04",
			"2005-05-05", "2006-Jun-06",
		}))
	fs := m.Detect(ctx, mixed)
	found := false
	for _, f := range fs {
		if f.Class == unidetect.PatternIncompatibility {
			found = true
			if len(f.Rows) != 1 || f.Rows[0] != 5 {
				t.Errorf("pattern rows = %v", f.Rows)
			}
			if f.Class.String() != "pattern" {
				t.Errorf("class string = %q", f.Class.String())
			}
		}
	}
	if !found {
		t.Fatalf("no pattern finding in %v", fs)
	}
	// Pattern statistics survive a save/load round trip.
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := unidetect.Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, f := range loaded.Detect(ctx, mixed) {
		if f.Class == unidetect.PatternIncompatibility {
			found = true
		}
	}
	if !found {
		t.Error("loaded model lost the pattern statistics")
	}
	// Models trained without the option emit no pattern findings.
	plain := apiTrain(t)
	for _, f := range plain.Detect(ctx, mixed) {
		if f.Class == unidetect.PatternIncompatibility {
			t.Errorf("plain model emitted a pattern finding: %v", f)
		}
	}
}

func TestFDROptionFilters(t *testing.T) {
	ctx := context.Background()
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, 1000, 51)
	loose, err := unidetect.Train(ctx, bg, nil)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := unidetect.Train(ctx, bg, &unidetect.Options{FDR: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	targets := unidetect.SyntheticCorpus(unidetect.WebProfile, 50, 77)
	a := loose.DetectAll(ctx, targets)
	b := strict.DetectAll(ctx, targets)
	if len(b) > len(a) {
		t.Errorf("FDR filter grew findings: %d > %d", len(b), len(a))
	}
	// The kept findings are the most confident prefix.
	for i := range b {
		if b[i].Score != a[i].Score {
			t.Errorf("finding %d differs after FDR filter", i)
			break
		}
	}
}

func TestMergeModels(t *testing.T) {
	ctx := context.Background()
	shard1 := unidetect.SyntheticCorpus(unidetect.WebProfile, 800, 31)
	shard2 := unidetect.SyntheticCorpus(unidetect.WebProfile, 800, 32)
	a, err := unidetect.Train(ctx, shard1, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := unidetect.Train(ctx, shard2, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := unidetect.Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.CorpusTables() != 1600 {
		t.Errorf("CorpusTables = %d", merged.CorpusTables())
	}
	sa, sb, sm := a.Stats(), b.Stats(), merged.Stats()
	for i := range sm {
		if sm[i].Samples != sa[i].Samples+sb[i].Samples {
			t.Errorf("class %v samples %d != %d + %d", sm[i].Class, sm[i].Samples, sa[i].Samples, sb[i].Samples)
		}
	}
	// The merged model still detects.
	tbl, _ := unidetect.NewTable("directors",
		unidetect.NewColumn("Name", []string{
			"Kevin Doeling", "Kevin Dowling", "Alan Myerson", "Rob Morrow",
			"Lesli Glatter", "Peter Bonerz",
		}))
	fs := merged.Detect(ctx, tbl)
	if len(fs) == 0 || fs[0].Class != unidetect.Spelling {
		t.Errorf("merged model findings = %v", fs)
	}
	// A merged model survives a save/load round trip.
	var buf bytes.Buffer
	if err := merged.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := unidetect.Load(&buf, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckRules(t *testing.T) {
	tbl, _ := unidetect.NewTable("sheet",
		unidetect.NewColumn("Year", []string{"1995", "1996", "97", "1998", "1999", "2000", "2001", "2002", "2003", "2004"}),
		unidetect.NewColumn("City", []string{"Paris", " Lyon", "Nice", "Oslo", "Rome", "Bern", "Kiev", "Riga", "Baku", "Oslo"}),
	)
	fs := unidetect.CheckRules(tbl)
	rules := map[string]bool{}
	for _, f := range fs {
		rules[f.Rule] = true
	}
	if !rules["two-digit-year"] || !rules["stray-whitespace"] {
		t.Errorf("rules fired: %v", fs)
	}
	clean, _ := unidetect.NewTable("c", unidetect.NewColumn("A", []string{"x", "y"}))
	if fs := unidetect.CheckRules(clean); len(fs) != 0 {
		t.Errorf("clean table flagged: %v", fs)
	}
}

func TestSyntheticCorpusProfiles(t *testing.T) {
	for _, p := range []unidetect.CorpusProfile{unidetect.WebProfile, unidetect.WikiProfile, unidetect.EnterpriseProfile} {
		ts := unidetect.SyntheticCorpus(p, 20, 3)
		if len(ts) != 20 {
			t.Errorf("profile %d: %d tables", p, len(ts))
		}
	}
}
