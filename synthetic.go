package unidetect

import "github.com/unidetect/unidetect/internal/datagen"

// CorpusProfile selects the flavor of a synthetic background corpus.
type CorpusProfile int

// Profiles mirror the paper's corpora (Table 2): general web tables,
// curated Wikipedia-style tables, and large enterprise spreadsheets.
const (
	WebProfile CorpusProfile = iota
	WikiProfile
	EnterpriseProfile
)

// SyntheticCorpus generates n deterministic, mostly clean synthetic tables
// with the given profile — a stand-in background corpus for users who do
// not have millions of real tables at hand (and the substrate this
// reproduction trains on; see DESIGN.md for the substitution rationale).
func SyntheticCorpus(profile CorpusProfile, n int, seed int64) []*Table {
	var spec datagen.Spec
	switch profile {
	case WikiProfile:
		spec = datagen.WikiSpec()
	case EnterpriseProfile:
		spec = datagen.EnterpriseSpec()
	default:
		spec = datagen.WebSpec()
	}
	spec.NumTables = n
	spec.Seed = seed
	return datagen.Generate(spec).Tables
}
