// Package unidetect implements Uni-Detect (Wang & He, SIGMOD 2019): a
// unified, unsupervised framework that automatically detects numeric
// outliers, spelling mistakes, uniqueness violations and
// functional-dependency violations in tables, with no per-dataset rules or
// thresholds.
//
// The framework performs a "what-if" analysis: for a table D it considers
// small hypothetical perturbations D\O (removing a suspect subset O) and
// asks, against statistics learned offline from a large background corpus
// of tables T, whether removing O makes D dramatically more "like" the
// corpus. The likelihood-ratio test
//
//	LR(D, O) = P(D | T) / P(D\O | T)
//
// is evaluated per error class through a class-specific metric function,
// natural perturbation, and featurized corpus subsetting; a tiny LR means
// O is almost certainly an error.
//
// # Usage
//
//	model, err := unidetect.Train(ctx, backgroundTables, nil)
//	...
//	findings := model.Detect(ctx, table)
//	for _, f := range findings {
//	    fmt.Println(f) // ranked by LR: most confident errors first
//	}
//
// Training is expensive (one pass over the background corpus); detection
// is interactive (metric computation plus grid lookups). Models serialize
// with Model.Save / Load.
package unidetect

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/unidetect/unidetect/internal/autodetect"
	"github.com/unidetect/unidetect/internal/colstore"
	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/mapreduce"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/table"
)

// Table is a named collection of equally long columns; the unit of
// detection.
type Table = table.Table

// Column is a named column of string cell values.
type Column = table.Column

// NewTable builds a table, validating that all columns have equal length.
func NewTable(name string, cols ...*Column) (*Table, error) {
	return table.New(name, cols...)
}

// NewColumn builds a column from a name and values.
func NewColumn(name string, values []string) *Column {
	return table.NewColumn(name, values)
}

// ReadCSV parses a table from CSV data; the first record is the header.
// Parsing goes through the streaming columnar reader, so whole-file and
// chunked loads of the same bytes are identical by construction.
func ReadCSV(name string, r io.Reader) (*Table, error) { return colstore.ReadCSVAll(name, r) }

// ReadCSVFile loads a table from a CSV file.
func ReadCSVFile(path string) (*Table, error) { return colstore.ReadCSVFile(path) }

// ReadNDJSON parses newline-delimited JSON (one object per row; the
// column schema is the union of keys, sorted on first appearance).
func ReadNDJSON(name string, r io.Reader) (*Table, error) { return colstore.ReadNDJSONAll(name, r) }

// Source is a streaming chunked table: a column schema plus a sequence
// of fixed-row-budget chunks, pulled one at a time so tables larger than
// RAM can be scanned. Obtain one from OpenCSVSource/OpenUcolSource (or
// NewTableSource over an in-memory table) and feed it to
// Model.DetectSource; callers own Close.
type Source = colstore.Source

// NewTableSource streams an in-memory table chunk by chunk. chunkRows 0
// selects the default budget; negative streams the whole table as one
// chunk.
func NewTableSource(t *Table, chunkRows int) Source {
	return colstore.NewSliceSource(t, colstore.Options{ChunkRows: chunkRows})
}

// OpenCSVSource opens a CSV file as a streaming source with the given
// chunk row budget (0 = default). The source owns the file handle.
func OpenCSVSource(path string, chunkRows int) (Source, error) {
	return colstore.OpenCSVFile(path, colstore.Options{ChunkRows: chunkRows})
}

// OpenNDJSONSource opens a newline-delimited JSON file as a streaming
// source with the given chunk row budget (0 = default). The source owns
// the file handle.
func OpenNDJSONSource(path string, chunkRows int) (Source, error) {
	return colstore.OpenNDJSONFile(path, colstore.Options{ChunkRows: chunkRows})
}

// ReadNDJSONFile loads a whole table from an NDJSON file.
func ReadNDJSONFile(path string) (*Table, error) { return colstore.ReadNDJSONFile(path) }

// ReadSource drains a streaming source into an in-memory table,
// applying the same widening and padding the chunked scan sees.
func ReadSource(src Source) (*Table, error) { return colstore.ReadAll(src) }

// OpenUcolSource opens a `.ucol` columnar file (written by WriteUcol) as
// a streaming source; chunking follows the file's own frame layout, and
// every chunk is verified against its stored fingerprint.
func OpenUcolSource(path string) (Source, error) { return colstore.OpenUcolFile(path) }

// WriteUcol writes a table in the length-prefixed binary columnar format
// `.ucol`: fingerprinted chunks of chunkRows rows (0 = default budget)
// that stream back through OpenUcolSource without rematerializing the
// whole table.
func WriteUcol(t *Table, w io.Writer, chunkRows int) error {
	return colstore.WriteUcol(w, colstore.NewSliceSource(t, colstore.Options{ChunkRows: chunkRows}))
}

// WriteUcolSource streams src straight into the `.ucol` format, one
// chunk resident at a time — the conversion path for files larger than
// RAM (`unidetect convert`).
func WriteUcolSource(src Source, w io.Writer) error { return colstore.WriteUcol(w, src) }

// ReadTSV parses a tab-separated table; the first line is the header.
func ReadTSV(name string, r io.Reader) (*Table, error) { return table.ReadTSV(name, r) }

// ReadMarkdown parses the first GitHub-flavored markdown table found in r
// — the format Wikipedia-style tables commonly travel in.
func ReadMarkdown(name string, r io.Reader) (*Table, error) { return table.ReadMarkdown(name, r) }

// ReadXLSXFile loads every worksheet of an Excel (.xlsx) workbook as a
// table — the format of the paper's Enterprise corpus (§4.1).
func ReadXLSXFile(path string) ([]*Table, error) { return table.ReadXLSXFile(path) }

// WriteCSV writes the table as CSV with a header row.
func WriteCSV(t *Table, w io.Writer) error { return table.WriteCSV(t, w) }

// WriteXLSX writes the table as a minimal single-sheet .xlsx workbook.
func WriteXLSX(t *Table, w io.Writer) error { return table.WriteXLSX(t, w) }

// ErrorClass identifies the kind of a detected error.
type ErrorClass int

// The error classes Uni-Detect is instantiated for (§3 of the paper, plus
// the FD-synthesis variant of Appendix D and the Auto-Detect pattern
// incompatibility class of Appendix C).
const (
	Spelling ErrorClass = iota
	Outlier
	Uniqueness
	FD
	FDSynthesis
	// PatternIncompatibility findings come from the Auto-Detect
	// instantiation (Appendix C) and are produced only by models trained
	// with Options.WithPatterns.
	PatternIncompatibility
)

// String names the class.
func (c ErrorClass) String() string {
	if c == PatternIncompatibility {
		return "pattern"
	}
	return coreClass(c).String()
}

func coreClass(c ErrorClass) core.Class {
	switch c {
	case Spelling:
		return core.ClassSpelling
	case Outlier:
		return core.ClassOutlier
	case Uniqueness:
		return core.ClassUniqueness
	case FD:
		return core.ClassFD
	default:
		return core.ClassFDSynth
	}
}

func publicClass(c core.Class) ErrorClass {
	switch c {
	case core.ClassSpelling:
		return Spelling
	case core.ClassOutlier:
		return Outlier
	case core.ClassUniqueness:
		return Uniqueness
	case core.ClassFD:
		return FD
	default:
		return FDSynthesis
	}
}

// Finding is one detected error. Findings are ranked by Score ascending:
// the Score is the likelihood ratio of the paper's hypothesis test, so
// smaller means more confident.
type Finding struct {
	Class  ErrorClass
	Table  string
	Column string
	// Rows are the 0-based row indices of the suspect cells. Pair-style
	// findings (misspellings, duplicate keys, FD conflicts) flag every
	// row involved; which side is wrong is for the user to judge.
	Rows   []int
	Values []string
	// Score is the LR; findings satisfy Score <= the configured Alpha.
	Score float64
	// Detail is a human-readable explanation.
	Detail string
}

// String renders the finding on one line.
func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s!%s rows=%v values=%q score=%.3g %s",
		f.Class, f.Table, f.Column, f.Rows, f.Values, f.Score, f.Detail)
}

// Options configures training and detection. The zero value of each field
// selects the paper's default.
type Options struct {
	// Alpha is the LR significance level (default 0.05): findings with a
	// larger LR are suppressed.
	Alpha float64
	// Epsilon is the perturbation budget as a fraction of rows (default
	// 0.01, minimum one row) — Definition 2's ε.
	Epsilon float64
	// UseDictionary enables the UNIDETECT+Dict spelling refinement: pairs
	// whose differing tokens are all valid dictionary words are refuted
	// (§4.3).
	UseDictionary bool
	// DisableFeaturization uses whole-corpus statistics instead of the
	// §2.2.2 featurized subsets (an ablation; strictly worse).
	DisableFeaturization bool
	// UseSDOutliers swaps the robust MAD dispersion metric for classical
	// SD (an ablation; strictly worse, §3.1).
	UseSDOutliers bool
	// WithPatterns additionally trains the Auto-Detect pattern-
	// incompatibility model (Appendix C); its findings merge into
	// Detect output as PatternIncompatibility, ranked by their own
	// significance score.
	WithPatterns bool
	// FDR, when positive, applies the Benjamini–Hochberg procedure at
	// this false-discovery-rate level across the ranked findings of each
	// DetectAll call — the multiple-testing correction the paper flags
	// as an open challenge (§2.2.3).
	FDR float64
	// Workers bounds parallelism (default GOMAXPROCS).
	Workers int
	// Obs, when non-nil, receives training and detection metrics
	// (internal/obs registry): mapreduce phase durations, checkpoint
	// write/resume counters, per-detector latency and LR histograms.
	// Nil disables instrumentation at the cost of one pointer check.
	Obs *obs.Registry
}

// obs returns the configured metrics registry (nil when unset).
func (o *Options) obs() *obs.Registry {
	if o == nil {
		return nil
	}
	return o.Obs
}

func (o *Options) config() core.Config {
	cfg := core.DefaultConfig()
	if o == nil {
		return cfg
	}
	if o.Alpha > 0 {
		cfg.Alpha = o.Alpha
	}
	if o.Epsilon > 0 {
		cfg.EpsilonFrac = o.Epsilon
	}
	cfg.NoFeaturize = o.DisableFeaturization
	cfg.Workers = o.Workers
	return cfg
}

func (o *Options) detectorOptions() detectors.Options {
	if o == nil {
		return detectors.Options{}
	}
	return detectors.Options{WithDict: o.UseDictionary, OutlierSD: o.UseSDOutliers}
}

// Model is a trained Uni-Detect model: materialized evidence grids per
// error class plus the token-prevalence index of the training corpus,
// and (with Options.WithPatterns) the pattern-incompatibility statistics.
type Model struct {
	core     *core.Model
	index    *corpus.TokenIndex
	patterns *autodetect.Model
	opts     *Options

	predOnce sync.Once
	// pred is the cached online predictor: building it compiles the
	// compact LR index, and keeping it alive carries the measurement
	// cache and scratch pools across Detect/DetectAll calls, so a
	// serving process pays the setup once.
	pred *core.Predictor
}

// Train learns a model from a background corpus of (mostly clean) tables,
// the paper's offline MapReduce-style pass (§2.2.3). The corpus should be
// as large and diverse as possible; the paper uses 135M web tables, and
// statistics stabilize in the tens of thousands.
func Train(ctx context.Context, background []*Table, opts *Options) (*Model, error) {
	if len(background) == 0 {
		return nil, fmt.Errorf("unidetect: empty background corpus")
	}
	cfg := opts.config()
	bg := corpus.New("background", background)
	topts := core.TrainOptions{FT: mapreduce.FT{Obs: opts.obs()}}
	m, err := core.TrainWith(ctx, cfg, topts, bg, detectors.All(cfg, opts.detectorOptions()))
	if err != nil {
		return nil, fmt.Errorf("unidetect: train: %w", err)
	}
	out := &Model{core: m, index: bg.Index(), opts: opts}
	if opts != nil && opts.WithPatterns {
		out.patterns = autodetect.Train(background)
	}
	return out, nil
}

// CorpusTables reports the size of the training corpus.
func (m *Model) CorpusTables() int { return m.core.CorpusTables }

// predictor returns the model's online predictor, built once: the
// compiled LR index, measurement cache and scratch pools all live on
// the predictor and are reused across calls.
func (m *Model) predictor() *core.Predictor {
	m.predOnce.Do(func() {
		dets := detectors.All(m.core.Config, m.opts.detectorOptions())
		p := core.NewPredictor(m.core, dets, &core.Env{Index: m.index, Obs: m.opts.obs()})
		p.Obs = m.opts.obs()
		m.pred = p
	})
	return m.pred
}

// Warm builds the model's online predictor eagerly: the compact LR
// index is compiled and the caches are allocated now rather than on the
// first Detect. A serving process hot-swapping models calls this off the
// request path, so the swapped-in model answers its first request at
// steady-state speed.
func (m *Model) Warm() { m.predictor().Warm() }

// Detect scans one table and returns its findings ranked by Score.
func (m *Model) Detect(ctx context.Context, t *Table) []Finding {
	return m.DetectAll(ctx, []*Table{t})
}

// DetectSource scans a streaming chunked source and returns its findings
// ranked by Score. Column-granular detectors score each chunk as it
// streams (a windowed approximation of their whole-column statistics
// when chunking is on; identical when the source yields one chunk),
// while FD detectors run exact over a dictionary-compressed sketch at
// end of stream — so memory stays one chunk plus the distinct-value
// dictionaries. The Auto-Detect pattern model (Options.WithPatterns)
// needs whole columns and does not run on streams.
func (m *Model) DetectSource(ctx context.Context, src Source) ([]Finding, error) {
	fs, err := m.predictor().DetectSource(ctx, src)
	if err != nil {
		return nil, err
	}
	core.SortFindings(fs)
	if m.opts != nil && m.opts.FDR > 0 {
		fs = core.FDRFilter(fs, m.opts.FDR)
	}
	out := make([]Finding, len(fs))
	for i, f := range fs {
		out[i] = Finding{
			Class:  publicClass(f.Class),
			Table:  f.Table,
			Column: f.Column,
			Rows:   f.Rows,
			Values: f.Values,
			Score:  f.LR,
			Detail: f.Detail,
		}
	}
	return out, nil
}

// DetectAll scans many tables concurrently and returns all findings
// ranked by Score across tables (likelihood-ratio scores and
// pattern-significance scores share the ranking, as the paper's union of
// per-class ranked lists does, §2.2.3).
func (m *Model) DetectAll(ctx context.Context, tables []*Table) []Finding {
	fs := m.predictor().DetectAll(ctx, tables)
	if m.opts != nil && m.opts.FDR > 0 {
		fs = core.FDRFilter(fs, m.opts.FDR)
	}
	out := make([]Finding, len(fs))
	for i, f := range fs {
		out[i] = Finding{
			Class:  publicClass(f.Class),
			Table:  f.Table,
			Column: f.Column,
			Rows:   f.Rows,
			Values: f.Values,
			Score:  f.LR,
			Detail: f.Detail,
		}
	}
	if m.patterns != nil {
		alpha := m.core.Config.Alpha
		for _, t := range tables {
			for _, pf := range m.patterns.Detect(t, alpha) {
				out = append(out, Finding{
					Class:  PatternIncompatibility,
					Table:  t.Name,
					Column: pf.Column,
					Rows:   pf.Rows,
					Values: pf.Values,
					Score:  pf.LR,
					Detail: fmt.Sprintf("pattern %s among %s values", pf.PatternB, pf.PatternA),
				})
			}
		}
		sort.SliceStable(out, func(i, j int) bool { return out[i].Score < out[j].Score })
	}
	return out
}

// modelMagic versions the model file format; bump the trailing byte on
// incompatible layout changes. \x02: deterministic (sorted) wire layout
// for evidence grids and the token index — two saves of equal models are
// byte-identical, which the checkpoint/resume protocol relies on.
var modelMagic = []byte("UNIDETECT-MODEL\x02")

// Save serializes the model (format header, evidence grids,
// configuration, and the token index needed for featurization).
func (m *Model) Save(w io.Writer) error {
	if _, err := w.Write(modelMagic); err != nil {
		return fmt.Errorf("unidetect: save header: %w", err)
	}
	if err := m.core.Save(w); err != nil {
		return fmt.Errorf("unidetect: save model: %w", err)
	}
	if err := m.index.Encode(w); err != nil {
		return fmt.Errorf("unidetect: save token index: %w", err)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(m.patterns != nil); err != nil {
		return fmt.Errorf("unidetect: save pattern flag: %w", err)
	}
	if m.patterns != nil {
		if err := enc.Encode(m.patterns); err != nil {
			return fmt.Errorf("unidetect: save pattern model: %w", err)
		}
	}
	return nil
}

// Load reads a model written by Save. Detection options that do not
// affect training (UseDictionary, Alpha) may be overridden via opts; nil
// keeps the saved configuration.
func Load(r io.Reader, opts *Options) (*Model, error) {
	header := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("unidetect: read model header: %w", err)
	}
	if string(header) != string(modelMagic) {
		return nil, fmt.Errorf("unidetect: not a model file (or incompatible version)")
	}
	cm, err := core.LoadModel(r)
	if err != nil {
		return nil, fmt.Errorf("unidetect: load model: %w", err)
	}
	ix, err := corpus.DecodeTokenIndex(r)
	if err != nil {
		return nil, fmt.Errorf("unidetect: load token index: %w", err)
	}
	dec := gob.NewDecoder(r)
	var hasPatterns bool
	if err := dec.Decode(&hasPatterns); err != nil {
		return nil, fmt.Errorf("unidetect: load pattern flag: %w", err)
	}
	var pm *autodetect.Model
	if hasPatterns {
		pm = &autodetect.Model{}
		if err := dec.Decode(pm); err != nil {
			return nil, fmt.Errorf("unidetect: load pattern model: %w", err)
		}
	}
	if opts != nil {
		if opts.Alpha > 0 {
			cm.Config.Alpha = opts.Alpha
		}
		cm.Config.Workers = opts.Workers
	}
	return &Model{core: cm, index: ix, patterns: pm, opts: opts}, nil
}

// Merge combines two models trained with the same Options over disjoint
// background corpora, as if trained on their union (up to small
// featurization drift: each shard bucketed token prevalence against its
// own corpus). Use it to grow a model incrementally or to parallelize
// training across corpus shards.
func Merge(a, b *Model) (*Model, error) {
	cm, err := core.MergeModels(a.core, b.core)
	if err != nil {
		return nil, fmt.Errorf("unidetect: merge: %w", err)
	}
	return &Model{core: cm, index: a.index.Merge(b.index), opts: a.opts}, nil
}

// ClassStats summarizes the learned evidence for one error class.
type ClassStats struct {
	Class ErrorClass
	// Samples is the number of (θ1, θ2) observations learned.
	Samples int64
	// Buckets is the number of populated feature buckets (including
	// backoff wildcards).
	Buckets int
}

// Stats reports the model's learned evidence per class, for diagnostics
// and the `unidetect info` command.
func (m *Model) Stats() []ClassStats {
	out := make([]ClassStats, 0, len(m.core.Classes))
	for c := core.Class(0); int(c) < core.NumClasses; c++ {
		cm, ok := m.core.Classes[c]
		if !ok {
			continue
		}
		out = append(out, ClassStats{
			Class:   publicClass(c),
			Samples: cm.Samples(),
			Buckets: len(cm.Buckets),
		})
	}
	return out
}
