// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations DESIGN.md calls out. Each figure bench
// runs the full pipeline (shared trained model + test corpus, cached
// across benches) and reports the Precision@100 of Uni-Detect and the
// strongest baseline as custom metrics, so `go test -bench=.` prints the
// reproduced numbers alongside the timings.
//
// For the full-size reproduction run `go run ./cmd/benchfig -exp all`.
package unidetect_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/unidetect/unidetect"
	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/experiments"
	"github.com/unidetect/unidetect/internal/strdist"
)

// benchScale keeps bench runtime moderate; cmd/benchfig runs bigger.
const benchScale = 0.15

var (
	benchLabOnce sync.Once
	benchLab     *experiments.Lab
)

func lab() *experiments.Lab {
	benchLabOnce.Do(func() {
		benchLab = experiments.NewLab(experiments.Options{Scale: benchScale})
	})
	return benchLab
}

// benchFigure runs one paper figure end-to-end and reports headline
// precisions as metrics.
func benchFigure(b *testing.B, id string, headline ...string) {
	b.Helper()
	l := lab()
	for i := 0; i < b.N; i++ {
		fig, err := l.Figure(id)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, m := range headline {
				if p := fig.At(m, 100); p >= 0 {
					b.ReportMetric(p, m+"_P@100")
				}
			}
		}
	}
}

// BenchmarkTable2CorpusStats regenerates the Table 2 corpus summary.
func BenchmarkTable2CorpusStats(b *testing.B) {
	l := lab()
	for i := 0; i < b.N; i++ {
		rows := l.Table2()
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(r.AvgRows, r.Corpus+"_avgRows")
			}
		}
	}
}

// Figures 8(a-c): WEB^T.
func BenchmarkFig8aSpellingWeb(b *testing.B) {
	benchFigure(b, "fig8a", "UNIDETECT", "UNIDETECT+Dict", "Fuzzy-Cluster")
}
func BenchmarkFig8bOutlierWeb(b *testing.B) {
	benchFigure(b, "fig8b", "UNIDETECT", "Max-MAD", "Max-SD")
}
func BenchmarkFig8cUniqueWeb(b *testing.B) {
	benchFigure(b, "fig8c", "UNIDETECT", "Unique-row-ratio")
}

// Figures 9(a-c): WIKI^T.
func BenchmarkFig9aSpellingWiki(b *testing.B) { benchFigure(b, "fig9a", "UNIDETECT") }
func BenchmarkFig9bOutlierWiki(b *testing.B)  { benchFigure(b, "fig9b", "UNIDETECT") }
func BenchmarkFig9cUniqueWiki(b *testing.B)   { benchFigure(b, "fig9c", "UNIDETECT") }

// Figures 10(a-c): Enterprise^T.
func BenchmarkFig10aSpellingEnterprise(b *testing.B) { benchFigure(b, "fig10a", "UNIDETECT") }
func BenchmarkFig10bOutlierEnterprise(b *testing.B)  { benchFigure(b, "fig10b", "UNIDETECT") }
func BenchmarkFig10cUniqueEnterprise(b *testing.B)   { benchFigure(b, "fig10c", "UNIDETECT") }

// Figure 12(a-d): FD and FD-synthesis.
func BenchmarkFig12aFDWeb(b *testing.B) {
	benchFigure(b, "fig12a", "UNIDETECT", "Unique-projection-ratio")
}
func BenchmarkFig12bFDWiki(b *testing.B)      { benchFigure(b, "fig12b", "UNIDETECT") }
func BenchmarkFig12cFDSynthWeb(b *testing.B)  { benchFigure(b, "fig12c", "UNIDETECT") }
func BenchmarkFig12dFDSynthWiki(b *testing.B) { benchFigure(b, "fig12d", "UNIDETECT") }

// --- Ablations (DESIGN.md §5) ---

var (
	ablationOnce   sync.Once
	ablationBG     *corpus.Corpus
	ablationTest   *datagen.Result
	ablationModels map[string]*core.Model
)

func ablationSetup(b *testing.B) {
	b.Helper()
	ablationOnce.Do(func() {
		spec := datagen.WebSpec().Scale(0.08)
		res := datagen.Generate(spec)
		ablationBG = corpus.New(spec.Name, res.Tables)
		test := datagen.TestSample(datagen.WebSpec())
		test.NumTables = 500
		ablationTest = datagen.Generate(test)
		ablationModels = map[string]*core.Model{}

		cfg := core.DefaultConfig()
		m, err := core.Train(context.Background(), cfg, ablationBG, detectors.All(cfg, detectors.Options{}))
		if err != nil {
			panic(err)
		}
		ablationModels["base"] = m

		sdCfg := core.DefaultConfig()
		sd, err := core.Train(context.Background(), sdCfg, ablationBG, detectors.All(sdCfg, detectors.Options{OutlierSD: true}))
		if err != nil {
			panic(err)
		}
		ablationModels["sd"] = sd
	})
}

// precisionTop100 scores the top 100 findings of the given classes
// against all injected labels.
func precisionTop100(m *core.Model, opts detectors.Options, classes ...core.Class) float64 {
	pred := core.NewPredictor(m, detectors.All(m.Config, opts), &core.Env{Index: ablationBG.Index()})
	fs := pred.DetectAll(context.Background(), ablationTest.Tables)
	keep := map[core.Class]bool{}
	for _, c := range classes {
		keep[c] = true
	}
	labeled := map[string]map[int]bool{}
	for _, l := range ablationTest.Labels {
		k := l.Table + "\x00" + l.Column
		if labeled[k] == nil {
			labeled[k] = map[int]bool{}
		}
		labeled[k][l.Row] = true
	}
	n, hits := 0, 0
	for _, f := range fs {
		if len(classes) > 0 && !keep[f.Class] {
			continue
		}
		n++
		if n > 100 {
			break
		}
		cols := []string{f.Column}
		for i, r := range f.Column {
			if r == '→' {
				cols = []string{f.Column[:i], f.Column[i+len("→"):]}
				break
			}
		}
	match:
		for _, col := range cols {
			for _, r := range f.Rows {
				if labeled[f.Table+"\x00"+col][r] {
					hits++
					break match
				}
			}
		}
	}
	if n > 100 {
		n = 100
	}
	if n == 0 {
		return 0
	}
	return float64(hits) / float64(n)
}

// BenchmarkAblationFeaturization compares featurized subsetting against
// whole-corpus statistics (§2.2.2).
func BenchmarkAblationFeaturization(b *testing.B) {
	ablationSetup(b)
	for i := 0; i < b.N; i++ {
		with := precisionTop100(ablationModels["base"], detectors.Options{})
		noFeat := *ablationModels["base"]
		noFeat.Config.NoFeaturize = true
		without := precisionTop100(&noFeat, detectors.Options{})
		if i == 0 {
			b.ReportMetric(with, "featurized_P@100")
			b.ReportMetric(without, "whole-corpus_P@100")
		}
	}
}

// BenchmarkAblationMADvsSD compares the robust MAD dispersion metric
// against classical SD for the outlier class (§3.1).
func BenchmarkAblationMADvsSD(b *testing.B) {
	ablationSetup(b)
	for i := 0; i < b.N; i++ {
		mad := precisionTop100(ablationModels["base"], detectors.Options{}, core.ClassOutlier)
		sd := precisionTop100(ablationModels["sd"], detectors.Options{OutlierSD: true}, core.ClassOutlier)
		if i == 0 {
			b.ReportMetric(mad, "MAD_P@100")
			b.ReportMetric(sd, "SD_P@100")
		}
	}
}

// BenchmarkAblationDictionary compares spelling precision with and
// without the dictionary refinement (§4.3).
func BenchmarkAblationDictionary(b *testing.B) {
	ablationSetup(b)
	for i := 0; i < b.N; i++ {
		plain := precisionTop100(ablationModels["base"], detectors.Options{}, core.ClassSpelling)
		dict := precisionTop100(ablationModels["base"], detectors.Options{WithDict: true}, core.ClassSpelling)
		if i == 0 {
			b.ReportMetric(plain, "plain_P@100")
			b.ReportMetric(dict, "dict_P@100")
		}
	}
}

// BenchmarkAblationSmoothing compares the smoothed range predicates of
// Equation 12 against the exact point estimates of Equation 11 — the
// §3.1 "Smoothing" argument.
func BenchmarkAblationSmoothing(b *testing.B) {
	ablationSetup(b)
	for i := 0; i < b.N; i++ {
		smoothed := precisionTop100(ablationModels["base"], detectors.Options{})
		point := *ablationModels["base"]
		point.Config.PointEstimates = true
		pointP := precisionTop100(&point, detectors.Options{})
		if i == 0 {
			b.ReportMetric(smoothed, "smoothed_P@100")
			b.ReportMetric(pointP, "point-estimate_P@100")
		}
	}
}

// BenchmarkAblationCorpusSize sweeps the background-corpus size to show
// how much of T the LR statistics need before precision stabilizes (the
// practical question behind the paper's "T is large enough that sparsity
// is not an issue", §2.2.2).
func BenchmarkAblationCorpusSize(b *testing.B) {
	ablationSetup(b)
	sizes := []int{400, 1200, 3600}
	for i := 0; i < b.N; i++ {
		for _, n := range sizes {
			spec := datagen.WebSpec()
			spec.NumTables = n
			spec.Seed = 5150
			res := datagen.Generate(spec)
			bg := corpus.New(spec.Name, res.Tables)
			cfg := core.DefaultConfig()
			m, err := core.Train(context.Background(), cfg, bg, detectors.All(cfg, detectors.Options{}))
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				// Score against the shared ablation test corpus, but with
				// this model's own index.
				saveBG := ablationBG
				ablationBG = bg
				p := precisionTop100(m, detectors.Options{})
				ablationBG = saveBG
				b.ReportMetric(p, fmt.Sprintf("T=%d_P@100", n))
			}
		}
	}
}

// --- Component micro-benchmarks ---

// BenchmarkTrainThroughput measures offline learning over 1000 tables.
func BenchmarkTrainThroughput(b *testing.B) {
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, 1000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := unidetect.Train(context.Background(), bg, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(bg))*float64(b.N), "tables")
}

// BenchmarkDetectLatency measures the per-table online prediction cost —
// the paper's "real-time predictions at interactive speeds" claim.
func BenchmarkDetectLatency(b *testing.B) {
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, 2000, 5)
	m, err := unidetect.Train(context.Background(), bg, nil)
	if err != nil {
		b.Fatal(err)
	}
	targets := unidetect.SyntheticCorpus(unidetect.WebProfile, 64, 99)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Detect(ctx, targets[i%len(targets)])
	}
}

// BenchmarkTokenIndexBuild measures corpus token-prevalence indexing.
func BenchmarkTokenIndexBuild(b *testing.B) {
	tables := unidetect.SyntheticCorpus(unidetect.WebProfile, 2000, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corpus.BuildTokenIndex(tables)
	}
}

// BenchmarkMPDColumn measures the spelling metric on a 100-value column.
func BenchmarkMPDColumn(b *testing.B) {
	tables := unidetect.SyntheticCorpus(unidetect.WebProfile, 50, 5)
	var vals []string
	for _, t := range tables {
		for _, c := range t.Columns {
			vals = append(vals, c.Values...)
		}
		if len(vals) >= 100 {
			break
		}
	}
	vals = vals[:100]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strdist.MinPairDistCapped(vals, 0)
	}
}
