package unidetect

import (
	"io"

	"github.com/unidetect/unidetect/internal/colstore"
	"github.com/unidetect/unidetect/internal/core"
)

// SourceScan is the resumable form of DetectSource: the caller drives
// the scan one chunk at a time and can Save the whole intermediate
// state between chunks. A scan reloaded with LoadSourceScan and fed the
// remaining chunks finishes with findings identical to an uninterrupted
// DetectSource over the same stream — the contract the async job store
// builds its crash-safe per-chunk checkpointing on.
//
// Chunk is the colstore chunk type, following the Source = colstore
// alias: streaming callers already hold colstore chunks.
//
// A SourceScan is not safe for concurrent use.
type SourceScan struct {
	m *Model
	s *core.SourceScan
}

// NewSourceScan starts a resumable scan of the named table.
func (m *Model) NewSourceScan(name string) *SourceScan {
	return &SourceScan{m: m, s: m.predictor().NewSourceScan(name)}
}

// LoadSourceScan resumes a scan serialized by SourceScan.Save. Torn or
// corrupt state is a hard error, never a partial resume.
func (m *Model) LoadSourceScan(r io.Reader) (*SourceScan, error) {
	s, err := m.predictor().LoadSourceScan(r)
	if err != nil {
		return nil, err
	}
	return &SourceScan{m: m, s: s}, nil
}

// Fold scores one chunk and folds it into the scan.
func (s *SourceScan) Fold(c *colstore.Chunk) { s.s.Fold(c) }

// SkipDegraded consumes one stream position without folding it, for
// chunks the caller had to drop.
func (s *SourceScan) SkipDegraded() { s.s.SkipDegraded() }

// Pos returns the number of stream positions consumed (folded plus
// degraded). A resuming caller skips exactly Pos chunks of the reopened
// source before folding again.
func (s *SourceScan) Pos() int { return s.s.Pos() }

// Degraded returns how many chunks were skipped as degraded.
func (s *SourceScan) Degraded() int { return s.s.Degraded() }

// Rows returns the number of source rows folded so far.
func (s *SourceScan) Rows() int { return s.s.Rows() }

// Save serializes the scan state as one atomic frame.
func (s *SourceScan) Save(w io.Writer) error { return s.s.Save(w) }

// Finish runs the end-of-stream detectors and returns the findings with
// exactly DetectSource's post-processing (ranking, FDR filtering,
// public classes), so a chunk-at-a-time scan is byte-identical to one
// DetectSource call. schema names the columns of an empty stream.
func (s *SourceScan) Finish(schema []string) ([]Finding, error) {
	fs, err := s.s.Finish(schema)
	if err != nil {
		return nil, err
	}
	core.SortFindings(fs)
	m := s.m
	if m.opts != nil && m.opts.FDR > 0 {
		fs = core.FDRFilter(fs, m.opts.FDR)
	}
	out := make([]Finding, len(fs))
	for i, f := range fs {
		out[i] = Finding{
			Class:  publicClass(f.Class),
			Table:  f.Table,
			Column: f.Column,
			Rows:   f.Rows,
			Values: f.Values,
			Score:  f.LR,
			Detail: f.Detail,
		}
	}
	return out, nil
}
