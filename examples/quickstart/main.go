// Quickstart: train a Uni-Detect model on a synthetic background corpus
// and scan a small spreadsheet containing one typo, one duplicated part
// number and one decimal-point error.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/unidetect/unidetect"
)

func main() {
	// 1. A background corpus: Uni-Detect learns what clean tables look
	// like from here (the paper uses 135M web tables; the library ships
	// a deterministic synthetic stand-in).
	fmt.Println("training on 6000 synthetic background tables...")
	background := unidetect.SyntheticCorpus(unidetect.WebProfile, 6000, 42)
	model, err := unidetect.Train(context.Background(), background, nil)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A spreadsheet with three planted problems:
	//    - "Mississipi" is a typo of "Mississippi" (row 5),
	//    - part number "P-4411X" appears twice (rows 1 and 6),
	//    - "18.42" lost its thousands separator (should be 18,420).
	tbl, err := unidetect.NewTable("suppliers",
		unidetect.NewColumn("Part", []string{
			"P-2210A", "P-4411X", "P-8101B", "P-3327C", "P-5518D",
			"P-9901E", "P-4411X", "P-7733F", "P-1199G", "P-6644H",
		}),
		unidetect.NewColumn("State", []string{
			"Mississippi", "Alabama", "Georgia", "Louisiana", "Tennessee",
			"Mississipi", "Florida", "Kentucky", "Arkansas", "Virginia",
		}),
		unidetect.NewColumn("Units", []string{
			"17210", "19854", "18003", "21077", "16550",
			"18.42", "20931", "17684", "19122", "20415",
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Detect: findings arrive ranked by the likelihood-ratio score,
	// most confident first.
	findings := model.Detect(context.Background(), tbl)
	if len(findings) == 0 {
		fmt.Println("no errors detected")
		return
	}
	fmt.Printf("\n%d findings:\n", len(findings))
	for i, f := range findings {
		fmt.Printf("%2d. %s\n", i+1, f)
		// 4. Where a mechanical fix exists, propose it.
		for _, r := range unidetect.SuggestRepairs(tbl, f) {
			fmt.Printf("    fix: %s[%d] %q -> %q (%s)\n", r.Column, r.Row, r.Old, r.New, r.Rationale)
		}
	}
}
