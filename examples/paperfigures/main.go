// Paperfigures: renders the paper's illustrative example tables
// (Figures 2, 4, 13 and 14) and shows Uni-Detect's verdict on each —
// the false-positive traps must stay clean, the true errors must be
// caught, and the FD-synthesis examples must surface their programmatic
// violations.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/unidetect/unidetect"
)

type figure struct {
	id      string
	caption string
	isError bool // does the paper mark this table as containing a real error?
	table   *unidetect.Table
}

func mk(name string, cols ...*unidetect.Column) *unidetect.Table {
	t, err := unidetect.NewTable(name, cols...)
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func main() {
	figures := []figure{
		{"Fig 2(g)", "chemical formulas: close pairs are normal", false, mk("chem",
			unidetect.NewColumn("Species", []string{"Bromine", "Bromide", "Water", "Hydrogen peroxide", "Sulfur dioxide", "Sulfur trioxide"}),
			unidetect.NewColumn("formula", []string{"Br2", "Br-", "H2O", "H2O2", "SO2", "SO3"}))},
		{"Fig 2(h)", "Super Bowl roman numerals: close pairs are normal", false, mk("superbowl",
			unidetect.NewColumn("Super Bowl", []string{"Super Bowl XX", "Super Bowl XXI", "Super Bowl XXII", "Super Bowl XXV", "Super Bowl XXVI", "Super Bowl XXVII"}),
			unidetect.NewColumn("Season", []string{"1985", "1986", "1987", "1990", "1991", "1992"}))},
		{"Fig 4(g)", "one isolated close pair: a real misspelling", true, mk("directors",
			unidetect.NewColumn("Director", []string{"Kevin Doeling", "Kevin Dowling", "Alan Myerson", "Rob Morrow", "Lesli Glatter", "Peter Bonerz"}))},
		{"Fig 4(e)", "a ',' typed as '.': a real numeric outlier", true, mk("population",
			unidetect.NewColumn("2013 Pop", []string{
				"8011", "8.716", "9954", "11895", "11329", "11352",
				"11709", "10233", "9871", "10644", "11002", "9410"}))},
		{"Fig 13", "route shield mismatching its name: FD-synthesis error", true, mk("routes",
			unidetect.NewColumn("Highway shield", []string{"736", "737", "738", "739", "740", "738"}),
			unidetect.NewColumn("Name", []string{
				"Malaysia Federal Route 736", "Malaysia Federal Route 737",
				"Malaysia Federal Route 738", "Malaysia Federal Route 739",
				"Malaysia Federal Route 740", "Malaysia Federal Route 748"}))},
		{"Fig 14", "split-out title mismatching its country: synthesis error", true, mk("contestants",
			unidetect.NewColumn("Name", []string{
				"Sinan, Michael", "Tiilikainen, Janne", "Santos, Armando",
				"Caraig, Benjie", "Lewis, Nolan", "Bernal, Jaime"}),
			unidetect.NewColumn("Last", []string{
				"Sinan", "Tiilikainen", "Santos", "Carag", "Lewis", "Bernal"}))},
	}

	fmt.Println("training on 8000 synthetic web tables...")
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, 8000, 7)
	model, err := unidetect.Train(context.Background(), bg, nil)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	correct := 0
	for _, f := range figures {
		render(f.table)
		findings := model.Detect(ctx, f.table)
		var verdict string
		switch {
		case f.isError && len(findings) > 0:
			verdict = "DETECTED ✓  " + findings[0].String()
			correct++
		case f.isError:
			verdict = "MISSED ✗"
		case len(findings) == 0:
			verdict = "clean ✓ (naive heuristics false-positive here)"
			correct++
		default:
			verdict = "FALSE POSITIVE ✗  " + findings[0].String()
		}
		fmt.Printf("%s — %s\n  %s\n\n", f.id, f.caption, verdict)
	}
	fmt.Printf("%d/%d figures reproduced\n", correct, len(figures))
}

func render(t *unidetect.Table) {
	fmt.Printf("┌ %s\n", t.Name)
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = fmt.Sprintf("%-22s", c.Name)
	}
	fmt.Println("│ " + strings.Join(header, " "))
	for r := 0; r < t.NumRows(); r++ {
		row := make([]string, len(t.Columns))
		for i, c := range t.Columns {
			row[i] = fmt.Sprintf("%-22s", c.Values[r])
		}
		fmt.Println("│ " + strings.Join(row, " "))
	}
}
