// Quality browser: the "data quality browser" workflow of Dasu et al.
// [37] that the paper builds its uniqueness baseline from, assembled from
// this library's pieces — per-column profiles (Appendix B's Trifacta-style
// summaries), discovered functional dependencies (TANE [51]), curated
// Excel-style rules (Figure 1), and Uni-Detect findings with repair
// suggestions, all over one table.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"github.com/unidetect/unidetect"
)

func main() {
	// A parts register with several quality issues hiding in it.
	tbl, err := unidetect.NewTable("parts_register",
		unidetect.NewColumn("Part No.", []string{
			"KV214-310B8K2", "MP2492DN", "B226711", "S042091", "S042093",
			"MFI341S2500", "KV214-310B8K2", "P1087", "QX551-204C", "RT8876",
		}),
		unidetect.NewColumn("Supplier", []string{
			"Jackson County", "Jefferson Supply", "Jackson County",
			"Jefferson Supply", "Jackson County", "Jefferson Supply",
			"Jackson County", "Jefferson Suppl", "Jackson County",
			"Jefferson Supply",
		}),
		unidetect.NewColumn("Region", []string{
			"South", "North", "South", "North", "South",
			"North", "West", "North", "South", "North",
		}),
		unidetect.NewColumn("Units", []string{
			"13601", "12953", "39981", "14220", "13790",
			"129.53", "15007", "14981", "13444", "12990",
		}),
		unidetect.NewColumn("Year", []string{
			"2019", "2020", "2021", "2019", "2020",
			"21", "2019", "2020", "2021", "2019",
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== column profiles")
	for _, p := range unidetect.ProfileTable(tbl) {
		fmt.Print(p.Render())
	}

	fmt.Println("\n== discovered dependencies (TANE, g3 <= 0.15)")
	for _, fd := range unidetect.DiscoverFDs(tbl, unidetect.FDDiscoveryOptions{MaxLhs: 1, MaxError: 0.15}) {
		fmt.Printf("  %s -> %s (g3=%.2f)\n", strings.Join(fd.Lhs, ","), fd.Rhs, fd.Error)
	}

	fmt.Println("\n== curated rule findings (Excel-style, Appendix B)")
	for _, rf := range unidetect.CheckRules(tbl) {
		fmt.Printf("  [%s] %s[%d] %q — %s\n", rf.Rule, rf.Column, rf.Row, rf.Value, rf.Detail)
	}

	fmt.Println("\n== Uni-Detect findings (statistical, corpus-trained)")
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, 6000, 3)
	model, err := unidetect.Train(context.Background(), bg, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range model.Detect(context.Background(), tbl) {
		fmt.Printf("  %s\n", f)
		for _, r := range unidetect.SuggestRepairs(tbl, f) {
			fmt.Printf("    fix: %s[%d] %q -> %q\n", r.Column, r.Row, r.Old, r.New)
		}
	}
}
