// Spreadsheet audit: the paper's motivating scenario — a small business
// keeps sales and supplier data in spreadsheets; no data-quality expert
// will ever configure constraints for them. Uni-Detect scans the whole
// workbook automatically and flags likely errors for the owner to check.
//
// The example generates a batch of enterprise-style spreadsheets (large,
// database-extracted, ID-heavy, as in the paper's Enterprise corpus),
// plants realistic errors, and audits everything with a model trained on
// web tables — unchanged, exactly as the paper applies its WEB-trained
// model to Enterprise data.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/unidetect/unidetect"
	"github.com/unidetect/unidetect/internal/datagen"
)

func main() {
	fmt.Println("training on 8000 synthetic web tables...")
	background := unidetect.SyntheticCorpus(unidetect.WebProfile, 8000, 7)
	model, err := unidetect.Train(context.Background(), background, nil)
	if err != nil {
		log.Fatal(err)
	}

	// The "workbook": enterprise-profile spreadsheets with injected
	// errors and ground-truth labels so the audit can be scored.
	spec := datagen.EnterpriseSpec()
	spec.NumTables = 60
	spec.AvgRows = 120
	spec.ErrorRate = 0.8
	spec.Seed = 20260706
	workbook := datagen.Generate(spec)
	fmt.Printf("auditing %d spreadsheets (%d planted errors)...\n\n",
		len(workbook.Tables), len(workbook.Labels))

	findings := model.DetectAll(context.Background(), workbook.Tables)

	labeled := map[string]map[int]bool{}
	for _, l := range workbook.Labels {
		k := l.Table + "\x00" + l.Column
		if labeled[k] == nil {
			labeled[k] = map[int]bool{}
		}
		labeled[k][l.Row] = true
	}
	hit := func(f unidetect.Finding) bool {
		cols := []string{f.Column}
		for i, r := range f.Column {
			if r == '→' {
				cols = []string{f.Column[:i], f.Column[i+len("→"):]}
				break
			}
		}
		for _, col := range cols {
			for _, r := range f.Rows {
				if labeled[f.Table+"\x00"+col][r] {
					return true
				}
			}
		}
		return false
	}

	show := len(findings)
	if show > 25 {
		show = 25
	}
	correct := 0
	for i := 0; i < show; i++ {
		mark := " "
		if hit(findings[i]) {
			mark = "✓"
			correct++
		}
		fmt.Printf("%s %2d. %s\n", mark, i+1, findings[i])
	}
	fmt.Printf("\ntop-%d audit precision: %.0f%% (%d findings total)\n",
		show, 100*float64(correct)/float64(show), len(findings))
}
