// Wikitables: scans a batch of Wikipedia-style tables — the paper's
// headline discovery was tens of thousands of real errors in Wikipedia —
// and contrasts Uni-Detect with the naive per-class heuristics on the
// exact false-positive traps of Figure 2.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/unidetect/unidetect"
)

func main() {
	fmt.Println("training on 8000 synthetic web tables...")
	background := unidetect.SyntheticCorpus(unidetect.WebProfile, 8000, 7)
	model, err := unidetect.Train(context.Background(), background, nil)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// --- Figure 2 traps: plausible-looking but CLEAN tables. ---
	titanic, _ := unidetect.NewTable("titanic_passengers",
		unidetect.NewColumn("Name", []string{
			"Katavelos, Vassilios", "Keane, Andrew", "Keefe, Arthur",
			"Kelly, James", "Kelly, James", "Kennedy, Patrick",
			"King, Charles", "Knox, William", "Kumar, Sanjay",
			"Kelly, Grace", "Khan, Noor", "Kim, Min", "Klein, Otto",
		}),
		unidetect.NewColumn("Age", []string{
			"19", "23", "39", "19", "44", "31", "27", "52", "36", "24", "29", "33", "41",
		}),
	)
	election, _ := unidetect.NewTable("toronto_election",
		unidetect.NewColumn("Candidate", []string{
			"David Miller", "John Tory", "Barbara Hall", "John Nunziata",
			"Tom Jakobek", "Douglas Campbell", "Ahmad Shehab", "Anne Smith",
		}),
		unidetect.NewColumn("% of total votes", []string{
			"43.2", "22.12", "9.21", "5.20", "0.76", "0.32", "0.30", "0.21",
		}),
	)
	superbowl, _ := unidetect.NewTable("super_bowls",
		unidetect.NewColumn("Super Bowl", []string{
			"Super Bowl XX", "Super Bowl XXI", "Super Bowl XXII",
			"Super Bowl XXV", "Super Bowl XXVI", "Super Bowl XXVII",
		}),
		unidetect.NewColumn("Season", []string{
			"1985", "1986", "1987", "1990", "1991", "1992",
		}),
	)

	// --- Figure 4-style tables with REAL errors. ---
	directors, _ := unidetect.NewTable("episode_directors",
		unidetect.NewColumn("Director", []string{
			"Kevin Doeling", "Kevin Dowling", "Alan Myerson", "Rob Morrow",
			"Lesli Glatter", "Peter Bonerz", "Nick Marck", "Matt Diamond",
		}),
	)
	population, _ := unidetect.NewTable("statistical_areas",
		unidetect.NewColumn("2013 Pop", []string{
			"8011", "8.716", "9954", "11895", "11329", "11352", "11709",
			"10233", "9871", "12004",
		}),
	)
	airports, _ := unidetect.NewTable("icao_codes",
		unidetect.NewColumn("ICAO", []string{
			"EGLL", "KJFK", "LFPG", "EDDF", "EHAM", "LEMD", "LIRF",
			"EGLL", "LOWW", "LSZH", "EKCH", "ENGM", "ESSA", "EFHK",
		}),
	)

	clean := []*unidetect.Table{titanic, election, superbowl}
	dirty := []*unidetect.Table{directors, population, airports}

	fmt.Println("\n--- Figure 2 traps (clean tables; naive heuristics false-positive here) ---")
	for _, t := range clean {
		fs := model.Detect(ctx, t)
		verdict := "clean ✓"
		if len(fs) > 0 {
			verdict = fmt.Sprintf("flagged: %v", fs[0])
		}
		fmt.Printf("%-22s %s\n", t.Name, verdict)
		naive(t)
	}

	fmt.Println("\n--- Figure 4 analogues (real errors; Uni-Detect must catch them) ---")
	for _, t := range dirty {
		fs := model.Detect(ctx, t)
		if len(fs) == 0 {
			fmt.Printf("%-22s MISSED\n", t.Name)
			continue
		}
		fmt.Printf("%-22s %s\n", t.Name, fs[0])
	}
}

// naive prints what the almost-unique / k-MAD heuristics would have done.
func naive(t *unidetect.Table) {
	for _, c := range t.Columns {
		distinct := map[string]bool{}
		for _, v := range c.Values {
			distinct[v] = true
		}
		ur := float64(len(distinct)) / float64(len(c.Values))
		if ur < 1 && ur > 0.9 {
			fmt.Printf("%22s   (naive %.0f%%-unique rule would flag %q)\n", "", 100*ur, c.Name)
		}
	}
}
