package unidetect

import "github.com/unidetect/unidetect/internal/profile"

// ColumnProfile is the descriptive summary of one column: type, distinct
// counts, top values, character-class patterns, string-length histogram,
// and numeric statistics — the Trifacta-style column summaries the paper
// surveys in Appendix B, rendered for terminals by Render.
type ColumnProfile = profile.Column

// ProfileTable profiles every column of a table. Profiles are purely
// descriptive; they pair well with Detect output as the context a user
// inspects next to a finding.
func ProfileTable(t *Table) []ColumnProfile {
	return profile.Table(t)
}
