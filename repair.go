package unidetect

import (
	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/repair"
)

// Repair is one proposed cell fix for a finding.
type Repair struct {
	Table  string
	Column string
	Row    int
	// Old is the current (suspect) value, New the proposed replacement.
	Old, New string
	// Confidence in (0, 1]: how mechanically determined the repair is.
	Confidence float64
	// Rationale explains the proposal.
	Rationale string
}

// SuggestRepairs proposes fixes for a finding against its table:
// misspellings are corrected toward the recurring form, scale-shifted
// outliers are re-scaled, FD violations take the group majority, and
// FD-synthesis violations are recomputed from the synthesized program
// (the exact repair of the paper's Appendix D). Uniqueness violations
// yield no automatic repair — only the user knows which colliding row is
// wrong. An empty slice means no mechanical repair exists.
func SuggestRepairs(t *Table, f Finding) []Repair {
	cf := core.Finding{
		Class:  coreClass(f.Class),
		Table:  f.Table,
		Column: f.Column,
		Rows:   f.Rows,
		Values: f.Values,
		LR:     f.Score,
		Detail: f.Detail,
	}
	var out []Repair
	for _, s := range repair.Suggest(t, cf) {
		out = append(out, Repair{
			Table:      s.Table,
			Column:     s.Column,
			Row:        s.Row,
			Old:        s.Old,
			New:        s.New,
			Confidence: s.Confidence,
			Rationale:  s.Rationale,
		})
	}
	return out
}
