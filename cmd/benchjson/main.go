// Command benchjson runs the core train/predict benchmarks and writes a
// machine-readable baseline: per-benchmark ns/op, allocs/op and B/op from
// testing.Benchmark, plus the key registry counters of the instrumented
// run — so a perf regression and a behaviour regression (more retries,
// fewer findings per table) are caught by the same diff.
//
//	benchjson -out BENCH_core.json
//	benchjson -tables 2000 -eval 128 -out /dev/stdout
//
// The committed BENCH_core.json is the reference point: timings are
// machine-relative (compare trends, not absolute numbers across hosts),
// while the counters are deterministic for a given corpus seed and must
// match exactly.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/unidetect/unidetect"
	"github.com/unidetect/unidetect/internal/colstore"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/serving"
)

type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Ingestion-only derived figures (rows are the natural unit of a
	// streaming scan, not ops): rows decoded per second and heap
	// allocations per row on the chunked CSV→arena path.
	RowsPerSec   float64 `json:"rows_per_sec,omitempty"`
	AllocsPerRow float64 `json:"allocs_per_row,omitempty"`
	// Serving-only derived figures (-serving): for request benchmarks
	// NsPerOp is the p50 latency and P99NsPerOp the tail; throughput is
	// reported in requests (sync) or finished jobs (async) per second.
	P99NsPerOp float64 `json:"p99_ns_per_op,omitempty"`
	ReqsPerSec float64 `json:"reqs_per_sec,omitempty"`
	JobsPerSec float64 `json:"jobs_per_sec,omitempty"`
}

type report struct {
	Go           string             `json:"go"`
	GOOS         string             `json:"goos"`
	GOARCH       string             `json:"goarch"`
	CorpusTables int                `json:"corpus_tables"`
	EvalTables   int                `json:"eval_tables"`
	Benchmarks   []benchResult      `json:"benchmarks"`
	Counters     map[string]float64 `json:"counters"`
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output path for the JSON report")
	tables := flag.Int("tables", 800, "synthetic background corpus size")
	evalN := flag.Int("eval", 64, "error-injected tables the predict benchmark scans")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	serving := flag.Bool("serving", false, "benchmark the HTTP serving tier instead of the core pipeline (BENCH_serving.json)")
	flag.Parse()

	if *serving {
		servingReport(*out, *tables, *seed)
		return
	}

	reg := obs.NewRegistry()
	opts := &unidetect.Options{Obs: reg}
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, *tables, *seed)
	evals := datagen.Generate(datagen.Spec{Name: "bench-eval", Profile: datagen.ProfileWeb,
		NumTables: *evalN, AvgRows: 20, AvgCols: 4, ErrorRate: 1.5, Seed: *seed + 1})
	ctx := context.Background()

	var model *unidetect.Model
	trainRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tm, err := unidetect.Train(ctx, bg, opts)
			if err != nil {
				b.Fatal(err)
			}
			model = tm
		}
	})
	predictRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fs := model.DetectAll(ctx, evals.Tables); len(fs) == 0 {
				b.Fatal("predict benchmark found nothing on error-injected tables")
			}
		}
	})

	// Ingestion throughput: chunked CSV decode into the columnar arena,
	// one op = the whole payload streamed chunk by chunk (default chunk
	// budget) and every chunk drained without detection.
	const ingestRows = 4096
	var csvBuf bytes.Buffer
	csvBuf.WriteString("city,pop,id,note\n")
	for i := 0; i < ingestRows; i++ {
		fmt.Fprintf(&csvBuf, "city-%d,%d,id-%06d,row %d\n", i%97, 1000+i*37, i, i)
	}
	ingestData := csvBuf.Bytes()
	ingestRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(ingestData)))
		for i := 0; i < b.N; i++ {
			src, err := colstore.NewCSVSource("ingest", bytes.NewReader(ingestData), colstore.Options{})
			if err != nil {
				b.Fatal(err)
			}
			rows := 0
			for {
				c, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				rows += c.Rows()
			}
			if rows != ingestRows {
				b.Fatalf("ingest decoded %d rows, want %d", rows, ingestRows)
			}
		}
	})
	ingest := result(fmt.Sprintf("IngestCSV%d", ingestRows), ingestRes)
	ingest.RowsPerSec = float64(ingestRows) / (ingest.NsPerOp / 1e9)
	ingest.AllocsPerRow = float64(ingestRes.AllocsPerOp()) / float64(ingestRows)

	rep := report{
		Go:           runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CorpusTables: *tables,
		EvalTables:   len(evals.Tables),
		Benchmarks: []benchResult{
			result(fmt.Sprintf("TrainSynthetic%d", *tables), trainRes),
			result(fmt.Sprintf("DetectAll%d", len(evals.Tables)), predictRes),
			ingest,
		},
	}
	// The benchmark registry accumulates across b.N iterations, and b.N is
	// machine-dependent; scrape the baseline counters from one fresh
	// instrumented train+predict pass so they are seed-deterministic.
	single := obs.NewRegistry()
	m, err := unidetect.Train(ctx, bg, &unidetect.Options{Obs: single})
	if err != nil {
		log.Fatal(err)
	}
	m.DetectAll(ctx, evals.Tables)
	counters, err := scrape(single)
	if err != nil {
		log.Fatal(err)
	}
	rep.Counters = counters

	writeReport(*out, rep)
	log.Printf("benchjson: wrote %s (train %v/op, predict %v/op)",
		*out, trainRes.NsPerOp(), predictRes.NsPerOp())
}

func writeReport(path string, rep report) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

func result(name string, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// nondeterministic lists count-valued series that legitimately vary
// run to run or machine to machine and must stay out of the committed
// baseline: scratch reuse depends on the worker count (NumCPU), and
// measurement-cache hit/miss splits depend on scheduling and eviction
// order under concurrency.
var nondeterministic = map[string]bool{
	"unidetect_predict_scratch_reuse_total": true,
	"unidetect_predict_measure_cache_total": true,
}

// scrape round-trips the registry through its text exposition and keeps
// the count-valued series: counters, gauges and histogram _count lines.
// Bucket and sum lines are timing-dependent noise in a baseline diff,
// as are the interleaving-dependent series above.
func scrape(reg *obs.Registry) (map[string]float64, error) {
	var sb strings.Builder
	if err := reg.WritePromText(&sb); err != nil {
		return nil, err
	}
	fams, err := obs.ParseProm(sb.String())
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, fam := range fams {
		for _, s := range fam.Samples {
			if strings.HasSuffix(s.Name, "_bucket") || strings.HasSuffix(s.Name, "_sum") {
				continue
			}
			if nondeterministic[s.Name] {
				continue
			}
			out[flatten(s)] = s.Value
		}
	}
	return out, nil
}

func flatten(s obs.PromSample) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + s.Labels[k]
	}
	return s.Name + "{" + strings.Join(parts, ",") + "}"
}

// servingReport benchmarks the HTTP tier end to end — a real handler
// behind a real listener — and writes the BENCH_serving.json baseline:
// sync detect latency (p50 in ns_per_op, p99 alongside) and request
// throughput under fixed concurrency, plus async job throughput
// through the spool/scan/checkpoint path. Timings are machine-relative
// like the core report; the request counts are exact by construction.
func servingReport(out string, tables int, seed int64) {
	ctx := context.Background()
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, tables, seed)
	model, err := unidetect.Train(ctx, bg, nil)
	if err != nil {
		log.Fatal(err)
	}
	jobsDir, err := os.MkdirTemp("", "benchjson-jobs-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(jobsDir)
	cfg := serving.DefaultConfig()
	cfg.JobsDir = jobsDir
	s, err := serving.New(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// The detect payload: one table shaped like the datagen web profile,
	// big enough that the scan dominates the HTTP overhead.
	payload := servingCSV(seed, 256)
	post := func(path, body string) (int, error) {
		resp, err := client.Post(ts.URL+path, "text/csv", strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return resp.StatusCode, nil
	}

	// Sync latency/throughput: fixed request count under fixed
	// concurrency, per-request latencies collected for the quantiles.
	const (
		syncTotal   = 400
		syncWorkers = 8
	)
	for i := 0; i < 16; i++ { // warmup: caches, listener, GC steady state
		if _, err := post("/v1/detect", payload); err != nil {
			log.Fatal(err)
		}
	}
	latencies := make([]float64, syncTotal)
	var next atomic.Int64
	var wg sync.WaitGroup
	syncStart := time.Now()
	for w := 0; w < syncWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= syncTotal {
					return
				}
				t0 := time.Now()
				code, err := post("/v1/detect", payload)
				if err != nil || code != http.StatusOK {
					log.Fatalf("benchjson: detect request %d: code %d err %v", i, code, err)
				}
				latencies[i] = float64(time.Since(t0).Nanoseconds())
			}
		}()
	}
	wg.Wait()
	syncElapsed := time.Since(syncStart)
	sort.Float64s(latencies)
	quantile := func(q float64) float64 {
		i := int(q * float64(len(latencies)-1))
		return latencies[i]
	}
	detect := benchResult{
		Name:       fmt.Sprintf("ServingDetectC%d", syncWorkers),
		N:          syncTotal,
		NsPerOp:    quantile(0.50),
		P99NsPerOp: quantile(0.99),
		ReqsPerSec: float64(syncTotal) / syncElapsed.Seconds(),
	}

	// Async throughput: a batch of jobs through spool + worker scan +
	// checkpointing, wall-clocked from first submit to last terminal
	// state (polled the way a client would).
	const jobTotal = 12
	jobPayload := servingCSV(seed+1, 2048)
	ids := make([]string, 0, jobTotal)
	jobStart := time.Now()
	for i := 0; i < jobTotal; i++ {
		resp, err := client.Post(ts.URL+"/v1/jobs?name=bench", "text/csv", strings.NewReader(jobPayload))
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			log.Fatalf("benchjson: job submit: %d %s", resp.StatusCode, body)
		}
		var status struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &status); err != nil {
			log.Fatal(err)
		}
		ids = append(ids, status.ID)
	}
	for _, id := range ids {
		for {
			resp, err := client.Get(ts.URL + "/v1/jobs/" + id)
			if err != nil {
				log.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			lines := strings.Split(strings.TrimSpace(string(body)), "\n")
			var status struct {
				State string `json:"state"`
			}
			if err := json.Unmarshal([]byte(lines[len(lines)-1]), &status); err != nil {
				log.Fatal(err)
			}
			if status.State == "failed" {
				log.Fatalf("benchjson: job %s failed", id)
			}
			if status.State == "done" || status.State == "degraded" {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	jobElapsed := time.Since(jobStart)
	jobs := benchResult{
		Name:       "ServingJobsAsync",
		N:          jobTotal,
		NsPerOp:    float64(jobElapsed.Nanoseconds()) / float64(jobTotal),
		JobsPerSec: float64(jobTotal) / jobElapsed.Seconds(),
	}

	rep := report{
		Go:           runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CorpusTables: tables,
		Benchmarks:   []benchResult{detect, jobs},
	}
	writeReport(out, rep)
	log.Printf("benchjson: wrote %s (detect p50 %.0fns p99 %.0fns, %.1f req/s, %.2f jobs/s)",
		out, detect.NsPerOp, detect.P99NsPerOp, detect.ReqsPerSec, jobs.JobsPerSec)
}

// servingCSV renders one seeded datagen table as CSV, the benchmark's
// upload payload.
func servingCSV(seed int64, rows float64) string {
	res := datagen.Generate(datagen.Spec{Name: "bench-serving", Profile: datagen.ProfileWeb,
		NumTables: 1, AvgRows: rows, AvgCols: 5, ErrorRate: 1, Seed: seed})
	tab := res.Tables[0]
	var sb strings.Builder
	for j, col := range tab.Columns {
		if j > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(col.Name)
	}
	sb.WriteByte('\n')
	for i := 0; i < tab.NumRows(); i++ {
		for j, col := range tab.Columns {
			if j > 0 {
				sb.WriteByte(',')
			}
			v := col.Values[i]
			if strings.ContainsAny(v, ",\"\n") {
				v = `"` + strings.ReplaceAll(v, `"`, `""`) + `"`
			}
			sb.WriteString(v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
