// Command benchjson runs the core train/predict benchmarks and writes a
// machine-readable baseline: per-benchmark ns/op, allocs/op and B/op from
// testing.Benchmark, plus the key registry counters of the instrumented
// run — so a perf regression and a behaviour regression (more retries,
// fewer findings per table) are caught by the same diff.
//
//	benchjson -out BENCH_core.json
//	benchjson -tables 2000 -eval 128 -out /dev/stdout
//
// The committed BENCH_core.json is the reference point: timings are
// machine-relative (compare trends, not absolute numbers across hosts),
// while the counters are deterministic for a given corpus seed and must
// match exactly.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"github.com/unidetect/unidetect"
	"github.com/unidetect/unidetect/internal/colstore"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/obs"
)

type benchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Ingestion-only derived figures (rows are the natural unit of a
	// streaming scan, not ops): rows decoded per second and heap
	// allocations per row on the chunked CSV→arena path.
	RowsPerSec   float64 `json:"rows_per_sec,omitempty"`
	AllocsPerRow float64 `json:"allocs_per_row,omitempty"`
}

type report struct {
	Go           string             `json:"go"`
	GOOS         string             `json:"goos"`
	GOARCH       string             `json:"goarch"`
	CorpusTables int                `json:"corpus_tables"`
	EvalTables   int                `json:"eval_tables"`
	Benchmarks   []benchResult      `json:"benchmarks"`
	Counters     map[string]float64 `json:"counters"`
}

func main() {
	out := flag.String("out", "BENCH_core.json", "output path for the JSON report")
	tables := flag.Int("tables", 800, "synthetic background corpus size")
	evalN := flag.Int("eval", 64, "error-injected tables the predict benchmark scans")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	flag.Parse()

	reg := obs.NewRegistry()
	opts := &unidetect.Options{Obs: reg}
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, *tables, *seed)
	evals := datagen.Generate(datagen.Spec{Name: "bench-eval", Profile: datagen.ProfileWeb,
		NumTables: *evalN, AvgRows: 20, AvgCols: 4, ErrorRate: 1.5, Seed: *seed + 1})
	ctx := context.Background()

	var model *unidetect.Model
	trainRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tm, err := unidetect.Train(ctx, bg, opts)
			if err != nil {
				b.Fatal(err)
			}
			model = tm
		}
	})
	predictRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fs := model.DetectAll(ctx, evals.Tables); len(fs) == 0 {
				b.Fatal("predict benchmark found nothing on error-injected tables")
			}
		}
	})

	// Ingestion throughput: chunked CSV decode into the columnar arena,
	// one op = the whole payload streamed chunk by chunk (default chunk
	// budget) and every chunk drained without detection.
	const ingestRows = 4096
	var csvBuf bytes.Buffer
	csvBuf.WriteString("city,pop,id,note\n")
	for i := 0; i < ingestRows; i++ {
		fmt.Fprintf(&csvBuf, "city-%d,%d,id-%06d,row %d\n", i%97, 1000+i*37, i, i)
	}
	ingestData := csvBuf.Bytes()
	ingestRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(ingestData)))
		for i := 0; i < b.N; i++ {
			src, err := colstore.NewCSVSource("ingest", bytes.NewReader(ingestData), colstore.Options{})
			if err != nil {
				b.Fatal(err)
			}
			rows := 0
			for {
				c, err := src.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				rows += c.Rows()
			}
			if rows != ingestRows {
				b.Fatalf("ingest decoded %d rows, want %d", rows, ingestRows)
			}
		}
	})
	ingest := result(fmt.Sprintf("IngestCSV%d", ingestRows), ingestRes)
	ingest.RowsPerSec = float64(ingestRows) / (ingest.NsPerOp / 1e9)
	ingest.AllocsPerRow = float64(ingestRes.AllocsPerOp()) / float64(ingestRows)

	rep := report{
		Go:           runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CorpusTables: *tables,
		EvalTables:   len(evals.Tables),
		Benchmarks: []benchResult{
			result(fmt.Sprintf("TrainSynthetic%d", *tables), trainRes),
			result(fmt.Sprintf("DetectAll%d", len(evals.Tables)), predictRes),
			ingest,
		},
	}
	// The benchmark registry accumulates across b.N iterations, and b.N is
	// machine-dependent; scrape the baseline counters from one fresh
	// instrumented train+predict pass so they are seed-deterministic.
	single := obs.NewRegistry()
	m, err := unidetect.Train(ctx, bg, &unidetect.Options{Obs: single})
	if err != nil {
		log.Fatal(err)
	}
	m.DetectAll(ctx, evals.Tables)
	counters, err := scrape(single)
	if err != nil {
		log.Fatal(err)
	}
	rep.Counters = counters

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("benchjson: wrote %s (train %v/op, predict %v/op)",
		*out, trainRes.NsPerOp(), predictRes.NsPerOp())
}

func result(name string, r testing.BenchmarkResult) benchResult {
	return benchResult{
		Name:        name,
		N:           r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// nondeterministic lists count-valued series that legitimately vary
// run to run or machine to machine and must stay out of the committed
// baseline: scratch reuse depends on the worker count (NumCPU), and
// measurement-cache hit/miss splits depend on scheduling and eviction
// order under concurrency.
var nondeterministic = map[string]bool{
	"unidetect_predict_scratch_reuse_total": true,
	"unidetect_predict_measure_cache_total": true,
}

// scrape round-trips the registry through its text exposition and keeps
// the count-valued series: counters, gauges and histogram _count lines.
// Bucket and sum lines are timing-dependent noise in a baseline diff,
// as are the interleaving-dependent series above.
func scrape(reg *obs.Registry) (map[string]float64, error) {
	var sb strings.Builder
	if err := reg.WritePromText(&sb); err != nil {
		return nil, err
	}
	fams, err := obs.ParseProm(sb.String())
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, fam := range fams {
		for _, s := range fam.Samples {
			if strings.HasSuffix(s.Name, "_bucket") || strings.HasSuffix(s.Name, "_sum") {
				continue
			}
			if nondeterministic[s.Name] {
				continue
			}
			out[flatten(s)] = s.Value
		}
	}
	return out, nil
}

func flatten(s obs.PromSample) string {
	if len(s.Labels) == 0 {
		return s.Name
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + s.Labels[k]
	}
	return s.Name + "{" + strings.Join(parts, ",") + "}"
}
