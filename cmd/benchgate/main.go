// Command benchgate compares a fresh benchjson report against the
// committed BENCH_core.json baseline and fails if the detect-path
// benchmarks regressed. It is the CI teeth behind the fast-path work:
// the committed baseline records the serving speed the repo has already
// demonstrated, and a change that gives a meaningful slice of it back
// should not merge silently.
//
//	benchgate -baseline BENCH_core.json -candidate /tmp/bench.json
//	benchgate -pattern Detect,Ingest -max-regress 0.20 ...
//
// Only ns/op gates (timings compare within one host, which is how CI
// runs it; the threshold absorbs scheduler noise). Alloc counts are
// reported for context but fail only on -max-allocs-regress, which is
// stricter to enable than the timing gate since allocs/op are stable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
)

// benchmark mirrors cmd/benchjson's per-benchmark record.
type benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

func load(path string) (map[string]benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]benchmark, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		out[b.Name] = b
	}
	return out, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_core.json", "committed baseline report")
	candidatePath := flag.String("candidate", "", "fresh report to gate (required)")
	pattern := flag.String("pattern", "Detect", "gate benchmarks whose name contains any of these comma-separated substrings")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum tolerated ns/op regression (0.20 = +20%)")
	maxAllocsRegress := flag.Float64("max-allocs-regress", 0.20, "maximum tolerated allocs/op regression")
	flag.Parse()
	if *candidatePath == "" {
		log.Fatal("benchgate: -candidate is required")
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	candidate, err := load(*candidatePath)
	if err != nil {
		log.Fatal(err)
	}

	pats := strings.Split(*pattern, ",")
	match := func(name string) bool {
		for _, p := range pats {
			if p != "" && strings.Contains(name, p) {
				return true
			}
		}
		return false
	}

	gated, failed := 0, 0
	for name, base := range baseline {
		if !match(name) {
			continue
		}
		cand, ok := candidate[name]
		if !ok {
			// A gated benchmark that vanished is a silent hole in the
			// baseline, not an improvement.
			log.Printf("FAIL %s: present in baseline, missing from candidate", name)
			failed++
			continue
		}
		gated++
		nsRatio := cand.NsPerOp / base.NsPerOp
		status := "ok  "
		if nsRatio > 1+*maxRegress {
			status = "FAIL"
			failed++
		}
		log.Printf("%s %s: ns/op %.0f -> %.0f (%+.1f%%, limit +%.0f%%)",
			status, name, base.NsPerOp, cand.NsPerOp, (nsRatio-1)*100, *maxRegress*100)
		if base.AllocsPerOp > 0 {
			allocRatio := float64(cand.AllocsPerOp) / float64(base.AllocsPerOp)
			status = "ok  "
			if allocRatio > 1+*maxAllocsRegress {
				status = "FAIL"
				failed++
			}
			log.Printf("%s %s: allocs/op %d -> %d (%+.1f%%, limit +%.0f%%)",
				status, name, base.AllocsPerOp, cand.AllocsPerOp, (allocRatio-1)*100, *maxAllocsRegress*100)
		}
	}
	if gated == 0 {
		log.Fatalf("benchgate: no baseline benchmark matches %q; the gate is vacuous", *pattern)
	}
	if failed > 0 {
		log.Fatalf("benchgate: %d check(s) failed", failed)
	}
	log.Printf("benchgate: %d benchmark(s) within limits", gated)
}
