// Command benchfig regenerates every table and figure of the paper's
// evaluation (§4, Appendix D) over the synthetic corpora.
//
//	benchfig -exp all            # run everything at the default scale
//	benchfig -exp fig8a,fig8b    # run selected experiments
//	benchfig -exp table2 -scale 1
//
// Output is one text table per experiment, in the paper's Precision@K
// format; pass -quiet to suppress progress logging.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/unidetect/unidetect/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids or 'all' "+
		fmt.Sprintf("(known: %s)", strings.Join(experiments.IDs(), ",")))
	scale := flag.Float64("scale", 0.5, "corpus scale: 1.0 = DESIGN.md presets (1/1000 of the paper)")
	workers := flag.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
	quiet := flag.Bool("quiet", false, "suppress progress logging")
	chart := flag.Bool("chart", false, "render ASCII charts instead of tables")
	flag.Parse()

	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	opts := experiments.Options{Scale: *scale, Workers: *workers}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}
	lab := experiments.NewLab(opts)
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		if id == "table2" {
			fmt.Println(experiments.RenderTable2(lab.Table2()))
			continue
		}
		fig, err := lab.Figure(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfig:", err)
			os.Exit(1)
		}
		if *chart {
			fmt.Println(fig.RenderChart())
		} else {
			fmt.Println(fig.Render())
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "# %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
