package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/unidetect/unidetect"
	"github.com/unidetect/unidetect/internal/faultinject"
)

// serverConfig is the daemon's failure-model knobs: how long a request
// may run, how many may run at once, how large a body may be, and — for
// chaos testing — which faults to inject where.
type serverConfig struct {
	// ReqTimeout bounds one request's handler time; the request context
	// is cancelled at the deadline so model scans stop early. 0 = none.
	ReqTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to finish after the listener closes.
	DrainTimeout time.Duration
	// MaxInFlight bounds concurrently served requests; excess load is
	// shed with 429 + Retry-After rather than queued without bound.
	MaxInFlight int
	// MaxBody caps request body size; larger uploads get 413.
	MaxBody int64
	// RetryAfter is the Retry-After header value (seconds) on shed
	// responses.
	RetryAfter int
	// Inject, when non-nil, injects faults at "unidetectd<path>" sites —
	// the serving half of the chaos harness.
	Inject *faultinject.Injector
	// Logf receives server diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func defaultServerConfig() serverConfig {
	return serverConfig{
		ReqTimeout:   30 * time.Second,
		DrainTimeout: 10 * time.Second,
		MaxInFlight:  64,
		MaxBody:      32 << 20,
		RetryAfter:   1,
	}
}

// metrics is the daemon's request accounting, updated atomically on the
// hot path and reported by /statusz. The counters are the chaos-test
// oracle: after N requests under a fault schedule, requests must equal N
// and the status classes must sum to it — no request may vanish.
type metrics struct {
	requests  atomic.Int64 // accepted into protect, including shed
	inflight  atomic.Int64 // currently holding a concurrency slot
	status2xx atomic.Int64
	status4xx atomic.Int64
	status5xx atomic.Int64
	shed      atomic.Int64 // rejected with 429 (counted in status4xx too)
	panics    atomic.Int64 // handler panics converted to 500
	timeouts  atomic.Int64 // requests whose deadline expired
}

// statuszResponse is the /statusz reply.
type statuszResponse struct {
	Requests  int64 `json:"requests"`
	InFlight  int64 `json:"in_flight"`
	Status2xx int64 `json:"status_2xx"`
	Status4xx int64 `json:"status_4xx"`
	Status5xx int64 `json:"status_5xx"`
	Shed      int64 `json:"shed"`
	Panics    int64 `json:"panics"`
	Timeouts  int64 `json:"timeouts"`
}

func (m *metrics) snapshot() statuszResponse {
	return statuszResponse{
		Requests:  m.requests.Load(),
		InFlight:  m.inflight.Load(),
		Status2xx: m.status2xx.Load(),
		Status4xx: m.status4xx.Load(),
		Status5xx: m.status5xx.Load(),
		Shed:      m.shed.Load(),
		Panics:    m.panics.Load(),
		Timeouts:  m.timeouts.Load(),
	}
}

func (m *metrics) count(status int) {
	switch {
	case status >= 500:
		m.status5xx.Add(1)
	case status >= 400:
		m.status4xx.Add(1)
	default:
		m.status2xx.Add(1)
	}
}

// server wires the model's endpoints behind the protection middleware.
type server struct {
	model *unidetect.Model
	cfg   serverConfig
	m     metrics
	sem   chan struct{} // concurrency slots; len() is the inflight gauge
}

func newServer(model *unidetect.Model, cfg serverConfig) *server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = defaultServerConfig().MaxInFlight
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = defaultServerConfig().MaxBody
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultServerConfig().RetryAfter
	}
	return &server{model: model, cfg: cfg, sem: make(chan struct{}, cfg.MaxInFlight)}
}

func (s *server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// statusWriter records the status code a handler sent, for accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote = true
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote = true
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// protect wraps a handler with the serving failure model, outermost
// first: load shedding (429 + Retry-After instead of unbounded queueing),
// a per-request deadline on the context, panic recovery (500 instead of
// a dead daemon), and a chaos injection point at "unidetectd<path>".
func (s *server) protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.m.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		select {
		case s.sem <- struct{}{}:
		default:
			s.m.shed.Add(1)
			sw.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfter))
			http.Error(sw, "overloaded, retry later", http.StatusTooManyRequests)
			s.m.count(sw.status)
			return
		}
		s.m.inflight.Add(1)
		ctx := r.Context()
		cancel := context.CancelFunc(func() {})
		if s.cfg.ReqTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.cfg.ReqTimeout)
		}
		defer func() {
			if rec := recover(); rec != nil {
				s.m.panics.Add(1)
				s.logf("unidetectd: %s %s panicked: %v", r.Method, r.URL.Path, rec)
				if !sw.wrote {
					http.Error(sw, "internal error", http.StatusInternalServerError)
				}
			}
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				s.m.timeouts.Add(1)
			}
			cancel()
			s.m.count(sw.status)
			s.m.inflight.Add(-1)
			<-s.sem
		}()
		if err := s.cfg.Inject.Hit(ctx, "unidetectd"+r.URL.Path); err != nil {
			http.Error(sw, "injected fault: "+err.Error(), http.StatusInternalServerError)
			return
		}
		h(sw, r.WithContext(ctx))
	}
}

// writeJSON marshals v into a buffer first, so an encoding failure can
// still become a 500 (headers are unsent) instead of a torn 200, and
// successful replies carry Content-Length.
func (s *server) writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		s.logf("unidetectd: encode response: %v", err)
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.logf("unidetectd: write response: %v", err)
	}
}

// readTable parses the request body as CSV; the table name comes from the
// ?name= query parameter (default "upload"). Oversized bodies (past
// cfg.MaxBody) get 413, malformed CSV gets 400.
func (s *server) readTable(w http.ResponseWriter, r *http.Request) (*unidetect.Table, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a CSV body", http.StatusMethodNotAllowed)
		return nil, false
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "upload"
	}
	tbl, err := unidetect.ReadCSV(name, http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
			return nil, false
		}
		http.Error(w, "bad csv: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if tbl.NumCols() == 0 {
		http.Error(w, "empty table", http.StatusBadRequest)
		return nil, false
	}
	return tbl, true
}

// serve runs srv on ln until ctx is cancelled, then drains gracefully:
// the listener closes immediately (new connections are refused) while
// in-flight requests get drain to finish.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration, logf func(format string, args ...any)) error {
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		if logf != nil {
			logf("unidetectd: draining (up to %v)", drain)
		}
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		done <- srv.Shutdown(sctx)
	}()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}
