// Command unidetectd serves Uni-Detect over HTTP: the "software feature"
// deployment of the paper's introduction — an error-detection service that
// tools like spreadsheets can call in the background.
//
//	unidetectd -model model.bin -addr :8080
//	unidetectd -tables 8000 -addr :8080        (train a synthetic model at startup)
//
// Endpoints:
//
//	POST /v1/detect?repair=1   body: CSV        -> JSON findings
//	POST /v1/batch             body: JSON batch -> JSON findings per table
//	POST /v1/profile           body: CSV        -> JSON column profiles
//	POST /v1/reload            body: JSON spec  -> swap in a new model without downtime
//	POST /v1/jobs?name=t       body: CSV/NDJSON/.ucol -> 202 + job id (with -jobs-dir)
//	GET  /v1/jobs/{id}                          -> NDJSON findings stream / status
//	GET  /healthz                               -> 200 once the model is ready
//	GET  /statusz                               -> JSON request accounting
//	GET  /metrics                               -> Prometheus text exposition
//
// With -tenants the daemon is multi-tenant: every /v1/* request needs an
// API key (Authorization: Bearer or X-API-Key) registered in the tenant
// file, and per-tenant token-bucket quotas answer 429 + Retry-After.
// With -jobs-dir huge uploads go through the crash-safe async job tier:
// POST /v1/jobs returns immediately and a killed daemon resumes the
// scan from its last per-chunk checkpoint after restart.
//
// With -debug-addr a second listener additionally serves /metrics and the
// net/http/pprof endpoints (DESIGN.md §9), so profiling can stay bound to
// localhost while the service port faces traffic.
//
// The daemon runs under an explicit failure model (DESIGN.md §8): every
// request gets a deadline, handler panics become 500s without killing
// the process, load beyond -max-inflight is shed with 429 + Retry-After,
// and SIGINT/SIGTERM drain in-flight requests before exit. The -chaos-*
// flags inject deterministic faults into request handling, for drills.
// The serving implementation lives in internal/serving; this command is
// the flag-parsing shell around it.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/unidetect/unidetect"
	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/serving"
	"github.com/unidetect/unidetect/internal/tenants"
)

func main() {
	modelPath := flag.String("model", "", "trained model path (empty: train a synthetic model at startup)")
	tables := flag.Int("tables", 8000, "synthetic corpus size when no -model is given")
	addr := flag.String("addr", ":8080", "listen address")
	addrFile := flag.String("addr-file", "", "write the bound listen address to this file (for :0 ephemeral ports)")
	reqTimeout := flag.Duration("req-timeout", 30*time.Second, "per-request handler deadline (0 disables)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	maxInFlight := flag.Int("max-inflight", 64, "concurrent requests before load shedding with 429")
	maxBody := flag.Int64("max-body", 32<<20, "request body size limit in bytes (413 beyond)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long /v1/batch holds a batch open to coalesce concurrent requests (0 disables)")
	tenantsPath := flag.String("tenants", "", "tenant registry file; enables API-key auth and per-tenant quotas")
	jobsDir := flag.String("jobs-dir", "", "async job spool directory; enables POST /v1/jobs")
	jobWorkers := flag.Int("job-workers", 2, "async job scan workers")
	jobChunkRows := flag.Int("job-chunk-rows", 0, "rows per job scan chunk (0: library default)")
	jobChunkDelay := flag.Duration("job-chunk-delay", 0, "throttle between job scan chunks (chaos drills)")
	chaosSeed := flag.Int64("chaos-seed", 1, "deterministic seed for -chaos-p fault injection")
	chaosP := flag.Float64("chaos-p", 0, "per-request fault probability (0 disables injection)")
	debugAddr := flag.String("debug-addr", "", "optional second listener for /metrics and /debug/pprof (e.g. 127.0.0.1:6060)")
	flag.Parse()

	// One registry spans the whole process: startup training, per-request
	// prediction, and the serving middleware all land in the same /metrics.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg, 512)

	model, err := loadOrTrain(*modelPath, *tables, reg)
	if err != nil {
		log.Fatal(err)
	}
	cfg := serving.Config{
		ReqTimeout:      *reqTimeout,
		DrainTimeout:    *drain,
		MaxInFlight:     *maxInFlight,
		MaxBody:         *maxBody,
		RetryAfter:      1,
		BatchWindow:     *batchWindow,
		SyntheticTables: *tables,
		Inject:          chaosInjector(*chaosSeed, *chaosP),
		Logf:            log.Printf,
		Obs:             reg,
		Tracer:          tracer,
		ChaosSeed:       *chaosSeed,
		JobsDir:         *jobsDir,
		JobWorkers:      *jobWorkers,
		JobChunkRows:    *jobChunkRows,
		JobChunkDelay:   *jobChunkDelay,
	}
	if *tenantsPath != "" {
		regy, err := tenants.Open(*tenantsPath, nil)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Tenants = regy
		log.Printf("unidetectd: %d tenants loaded from %s", len(regy.Tenants()), *tenantsPath)
	}
	s, err := serving.New(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		// Written via temp+rename so a watcher never reads a torn file.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatal(err)
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			log.Fatal(err)
		}
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		dsrv := &http.Server{
			Handler:           serving.DebugHandler(reg),
			ReadHeaderTimeout: 10 * time.Second,
		}
		debugDone := make(chan error, 1)
		go func() { debugDone <- dsrv.Serve(dln) }()
		defer func() {
			_ = dsrv.Close()
			<-debugDone
		}()
		log.Printf("unidetectd debug listener on %s", dln.Addr())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("unidetectd listening on %s", ln.Addr())
	if err := serving.Serve(ctx, srv, ln, *drain, log.Printf); err != nil {
		log.Fatal(err)
	}
	log.Printf("unidetectd: drained cleanly")
}

// chaosInjector builds the -chaos-p fault schedule: errors, panics and
// latency on every protected endpoint, in a 4:1:2 ratio. Each fault class
// exercises a different protection layer (error path, panic recovery,
// timeout).
func chaosInjector(seed int64, p float64) *faultinject.Injector {
	if p <= 0 {
		return nil
	}
	return faultinject.New(seed,
		faultinject.Rule{Site: "unidetectd/*", P: p, Fault: faultinject.Fault{Err: errors.New("chaos: injected request fault")}},
		faultinject.Rule{Site: "unidetectd/*", P: p / 4, Fault: faultinject.Fault{Panic: "chaos: injected handler panic"}},
		faultinject.Rule{Site: "unidetectd/*", P: p / 2, Fault: faultinject.Fault{Delay: 5 * time.Millisecond}},
	)
}

func loadOrTrain(modelPath string, tables int, reg *obs.Registry) (*unidetect.Model, error) {
	opts := &unidetect.Options{Obs: reg}
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		log.Printf("loading model from %s", modelPath)
		return unidetect.Load(f, opts)
	}
	log.Printf("training synthetic model on %d tables...", tables)
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, tables, 1)
	return unidetect.Train(context.Background(), bg, opts)
}
