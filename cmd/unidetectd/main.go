// Command unidetectd serves Uni-Detect over HTTP: the "software feature"
// deployment of the paper's introduction — an error-detection service that
// tools like spreadsheets can call in the background.
//
//	unidetectd -model model.bin -addr :8080
//	unidetectd -tables 8000 -addr :8080        (train a synthetic model at startup)
//
// Endpoints:
//
//	POST /v1/detect?repair=1   body: CSV        -> JSON findings
//	POST /v1/batch             body: JSON batch -> JSON findings per table
//	POST /v1/profile           body: CSV        -> JSON column profiles
//	POST /v1/reload            body: JSON spec  -> swap in a new model without downtime
//	GET  /healthz                               -> 200 once the model is ready
//	GET  /statusz                               -> JSON request accounting
//	GET  /metrics                               -> Prometheus text exposition
//
// With -debug-addr a second listener additionally serves /metrics and the
// net/http/pprof endpoints (DESIGN.md §9), so profiling can stay bound to
// localhost while the service port faces traffic.
//
// The daemon runs under an explicit failure model (DESIGN.md §8): every
// request gets a deadline, handler panics become 500s without killing
// the process, load beyond -max-inflight is shed with 429 + Retry-After,
// and SIGINT/SIGTERM drain in-flight requests before exit. The -chaos-*
// flags inject deterministic faults into request handling, for drills.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/unidetect/unidetect"
	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/obs"
)

func main() {
	modelPath := flag.String("model", "", "trained model path (empty: train a synthetic model at startup)")
	tables := flag.Int("tables", 8000, "synthetic corpus size when no -model is given")
	addr := flag.String("addr", ":8080", "listen address")
	reqTimeout := flag.Duration("req-timeout", 30*time.Second, "per-request handler deadline (0 disables)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	maxInFlight := flag.Int("max-inflight", 64, "concurrent requests before load shedding with 429")
	maxBody := flag.Int64("max-body", 32<<20, "request body size limit in bytes (413 beyond)")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "how long /v1/batch holds a batch open to coalesce concurrent requests (0 disables)")
	chaosSeed := flag.Int64("chaos-seed", 1, "deterministic seed for -chaos-p fault injection")
	chaosP := flag.Float64("chaos-p", 0, "per-request fault probability (0 disables injection)")
	debugAddr := flag.String("debug-addr", "", "optional second listener for /metrics and /debug/pprof (e.g. 127.0.0.1:6060)")
	flag.Parse()

	// One registry spans the whole process: startup training, per-request
	// prediction, and the serving middleware all land in the same /metrics.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg, 512)

	model, err := loadOrTrain(*modelPath, *tables, reg)
	if err != nil {
		log.Fatal(err)
	}
	cfg := serverConfig{
		ReqTimeout:      *reqTimeout,
		DrainTimeout:    *drain,
		MaxInFlight:     *maxInFlight,
		MaxBody:         *maxBody,
		RetryAfter:      1,
		BatchWindow:     *batchWindow,
		SyntheticTables: *tables,
		Inject:          chaosInjector(*chaosSeed, *chaosP),
		Logf:            log.Printf,
		Obs:             reg,
		Tracer:          tracer,
		ChaosSeed:       *chaosSeed,
	}
	srv := &http.Server{
		Handler:           newHandler(model, cfg),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		dsrv := &http.Server{
			Handler:           debugHandler(reg),
			ReadHeaderTimeout: 10 * time.Second,
		}
		debugDone := make(chan error, 1)
		go func() { debugDone <- dsrv.Serve(dln) }()
		defer func() {
			_ = dsrv.Close()
			<-debugDone
		}()
		log.Printf("unidetectd debug listener on %s", dln.Addr())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("unidetectd listening on %s", ln.Addr())
	if err := serve(ctx, srv, ln, *drain, log.Printf); err != nil {
		log.Fatal(err)
	}
	log.Printf("unidetectd: drained cleanly")
}

// chaosInjector builds the -chaos-p fault schedule: errors, panics and
// latency on every protected endpoint, in a 4:1:2 ratio. Each fault class
// exercises a different protection layer (error path, panic recovery,
// timeout).
func chaosInjector(seed int64, p float64) *faultinject.Injector {
	if p <= 0 {
		return nil
	}
	return faultinject.New(seed,
		faultinject.Rule{Site: "unidetectd/*", P: p, Fault: faultinject.Fault{Err: errors.New("chaos: injected request fault")}},
		faultinject.Rule{Site: "unidetectd/*", P: p / 4, Fault: faultinject.Fault{Panic: "chaos: injected handler panic"}},
		faultinject.Rule{Site: "unidetectd/*", P: p / 2, Fault: faultinject.Fault{Delay: 5 * time.Millisecond}},
	)
}

func loadOrTrain(modelPath string, tables int, reg *obs.Registry) (*unidetect.Model, error) {
	opts := &unidetect.Options{Obs: reg}
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		log.Printf("loading model from %s", modelPath)
		return unidetect.Load(f, opts)
	}
	log.Printf("training synthetic model on %d tables...", tables)
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, tables, 1)
	return unidetect.Train(context.Background(), bg, opts)
}

// detectResponse is the /v1/detect reply.
type detectResponse struct {
	Table    string        `json:"table"`
	Findings []findingJSON `json:"findings"`
}

type findingJSON struct {
	Class   string             `json:"class"`
	Column  string             `json:"column"`
	Rows    []int              `json:"rows"`
	Values  []string           `json:"values,omitempty"`
	Score   float64            `json:"score"`
	Detail  string             `json:"detail,omitempty"`
	Repairs []unidetect.Repair `json:"repairs,omitempty"`
}

// newHandler wires the endpoints. /healthz and /statusz bypass the
// protection middleware: they must answer even when the service is
// saturated, or the orchestrator would kill a merely-busy daemon.
func newHandler(model *unidetect.Model, cfg serverConfig) http.Handler {
	s := newServer(model, cfg)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := w.Write([]byte("ok\n")); err != nil {
			s.logf("unidetectd: write healthz: %v", err)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, s.m.snapshot())
	})
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/v1/detect", s.protect(s.handleDetect))
	mux.HandleFunc("/v1/batch", s.protect(s.handleBatch))
	mux.HandleFunc("/v1/profile", s.protect(s.handleProfile))
	mux.HandleFunc("/v1/reload", s.protect(s.handleReload))
	return mux
}

func (s *server) handleDetect(w http.ResponseWriter, r *http.Request) {
	tbl, ok := s.readTable(w, r)
	if !ok {
		return
	}
	findings := s.currentModel().Detect(r.Context(), tbl)
	resp := detectResponse{Table: tbl.Name, Findings: []findingJSON{}}
	withRepairs := r.URL.Query().Get("repair") != ""
	for _, f := range findings {
		jf := findingJSON{
			Class: f.Class.String(), Column: f.Column, Rows: f.Rows,
			Values: f.Values, Score: f.Score, Detail: f.Detail,
		}
		if withRepairs {
			jf.Repairs = unidetect.SuggestRepairs(tbl, f)
		}
		resp.Findings = append(resp.Findings, jf)
	}
	s.writeJSON(w, resp)
}

func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	tbl, ok := s.readTable(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, unidetect.ProfileTable(tbl))
}
