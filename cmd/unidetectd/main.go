// Command unidetectd serves Uni-Detect over HTTP: the "software feature"
// deployment of the paper's introduction — an error-detection service that
// tools like spreadsheets can call in the background.
//
//	unidetectd -model model.bin -addr :8080
//	unidetectd -tables 8000 -addr :8080        (train a synthetic model at startup)
//
// Endpoints:
//
//	POST /v1/detect?repair=1   body: CSV        -> JSON findings
//	POST /v1/profile           body: CSV        -> JSON column profiles
//	GET  /healthz                               -> 200 once the model is ready
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/unidetect/unidetect"
)

func main() {
	modelPath := flag.String("model", "", "trained model path (empty: train a synthetic model at startup)")
	tables := flag.Int("tables", 8000, "synthetic corpus size when no -model is given")
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	model, err := loadOrTrain(*modelPath, *tables)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(model),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("unidetectd listening on %s", *addr)
	if err := srv.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

func loadOrTrain(modelPath string, tables int) (*unidetect.Model, error) {
	if modelPath != "" {
		f, err := os.Open(modelPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		log.Printf("loading model from %s", modelPath)
		return unidetect.Load(f, nil)
	}
	log.Printf("training synthetic model on %d tables...", tables)
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, tables, 1)
	return unidetect.Train(context.Background(), bg, nil)
}

// maxBody caps request bodies at 32 MiB.
const maxBody = 32 << 20

// detectResponse is the /v1/detect reply.
type detectResponse struct {
	Table    string        `json:"table"`
	Findings []findingJSON `json:"findings"`
}

type findingJSON struct {
	Class   string             `json:"class"`
	Column  string             `json:"column"`
	Rows    []int              `json:"rows"`
	Values  []string           `json:"values,omitempty"`
	Score   float64            `json:"score"`
	Detail  string             `json:"detail,omitempty"`
	Repairs []unidetect.Repair `json:"repairs,omitempty"`
}

func newHandler(model *unidetect.Model) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/detect", func(w http.ResponseWriter, r *http.Request) {
		tbl, ok := readTable(w, r)
		if !ok {
			return
		}
		findings := model.Detect(r.Context(), tbl)
		resp := detectResponse{Table: tbl.Name, Findings: []findingJSON{}}
		withRepairs := r.URL.Query().Get("repair") != ""
		for _, f := range findings {
			jf := findingJSON{
				Class: f.Class.String(), Column: f.Column, Rows: f.Rows,
				Values: f.Values, Score: f.Score, Detail: f.Detail,
			}
			if withRepairs {
				jf.Repairs = unidetect.SuggestRepairs(tbl, f)
			}
			resp.Findings = append(resp.Findings, jf)
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("/v1/profile", func(w http.ResponseWriter, r *http.Request) {
		tbl, ok := readTable(w, r)
		if !ok {
			return
		}
		writeJSON(w, unidetect.ProfileTable(tbl))
	})
	return mux
}

// readTable parses the request body as CSV; the table name comes from the
// ?name= query parameter (default "upload").
func readTable(w http.ResponseWriter, r *http.Request) (*unidetect.Table, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a CSV body", http.StatusMethodNotAllowed)
		return nil, false
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "upload"
	}
	tbl, err := unidetect.ReadCSV(name, http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		http.Error(w, "bad csv: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if tbl.NumCols() == 0 {
		http.Error(w, "empty table", http.StatusBadRequest)
		return nil, false
	}
	return tbl, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("encode response: %v", err)
	}
}
