package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/unidetect/unidetect/internal/datagen"
)

func TestWriteCorpus(t *testing.T) {
	spec := datagen.WebSpec()
	spec.NumTables = 5
	spec.ErrorRate = 2
	spec.Seed = 9
	res := datagen.Generate(spec)
	dir := t.TempDir()
	if err := write(res, dir, "csv"); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 6 { // 5 tables + labels.csv
		t.Fatalf("files = %v", files)
	}
	labels, err := os.ReadFile(filepath.Join(dir, "labels.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(labels)), "\n")
	if lines[0] != "table,column,row,class,original" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines)-1 != len(res.Labels) {
		t.Errorf("label rows = %d, want %d", len(lines)-1, len(res.Labels))
	}
}
