// Command corpusgen generates the synthetic table corpora used by the
// reproduction: deterministic, labeled, Table-2-shaped (see DESIGN.md).
//
//	corpusgen -profile web -tables 1000 -out dir/    # writes CSVs + labels.csv
//	corpusgen -profile wiki -tables 5000 -stats      # prints summary statistics
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/table"
)

func main() {
	profile := flag.String("profile", "web", "corpus profile: web|wiki|enterprise")
	tables := flag.Int("tables", 1000, "number of tables")
	seed := flag.Int64("seed", 1, "generation seed")
	errorRate := flag.Float64("errors", 0, "expected injected errors per table")
	out := flag.String("out", "", "output directory (one file per table + labels.csv)")
	format := flag.String("format", "csv", "output file format: csv|xlsx")
	stats := flag.Bool("stats", false, "print summary statistics only")
	flag.Parse()

	var spec datagen.Spec
	switch *profile {
	case "wiki":
		spec = datagen.WikiSpec()
	case "enterprise":
		spec = datagen.EnterpriseSpec()
	default:
		spec = datagen.WebSpec()
	}
	spec.NumTables = *tables
	spec.Seed = *seed
	spec.ErrorRate = *errorRate

	res := datagen.Generate(spec)
	if *stats || *out == "" {
		c := corpus.New(spec.Name, res.Tables)
		fmt.Printf("corpus %s: %d tables, avg %.1f cols, avg %.1f rows, %d injected errors\n",
			spec.Name, c.NumTables(), c.AvgCols(), c.AvgRows(), len(res.Labels))
		if *out == "" {
			return
		}
	}
	if err := write(res, *out, *format); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d tables and %d labels to %s\n", len(res.Tables), len(res.Labels), *out)
}

func write(res *datagen.Result, dir, format string) error {
	if format != "csv" && format != "xlsx" {
		return fmt.Errorf("unknown format %q", format)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, t := range res.Tables {
		f, err := os.Create(filepath.Join(dir, t.Name+"."+format))
		if err != nil {
			return err
		}
		if format == "xlsx" {
			err = table.WriteXLSX(t, f)
		} else {
			err = table.WriteCSV(t, f)
		}
		if err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	lf, err := os.Create(filepath.Join(dir, "labels.csv"))
	if err != nil {
		return err
	}
	defer lf.Close()
	w := csv.NewWriter(lf)
	if err := w.Write([]string{"table", "column", "row", "class", "original"}); err != nil {
		return err
	}
	for _, l := range res.Labels {
		rec := []string{l.Table, l.Column, strconv.Itoa(l.Row), l.Class.String(), l.Original}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return lf.Close()
}
