package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/unidetect/unidetect"
)

func TestProfileFlag(t *testing.T) {
	if profileFlag("wiki") != unidetect.WikiProfile {
		t.Error("wiki")
	}
	if profileFlag("enterprise") != unidetect.EnterpriseProfile {
		t.Error("enterprise")
	}
	if profileFlag("anything") != unidetect.WebProfile {
		t.Error("default should be web")
	}
}

func TestLoadCorpus(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b.csv", "a.csv"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x,y\n1,2\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tables, err := loadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	if tables[0].Name != "a" || tables[1].Name != "b" {
		t.Errorf("order: %s, %s (want sorted)", tables[0].Name, tables[1].Name)
	}
}

func TestLoadCorpusEmpty(t *testing.T) {
	if _, err := loadCorpus(t.TempDir()); err == nil {
		t.Error("empty directory should error")
	}
}

func TestTrainDetectRoundTripViaFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	if err := runTrain([]string{"-out", modelPath, "-tables", "1500", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "data.csv")
	data := "Name\nKevin Doeling\nKevin Dowling\nAlan Myerson\nRob Morrow\nLesli Glatter\nPeter Bonerz\n"
	if err := os.WriteFile(csvPath, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDetect([]string{"-model", modelPath, csvPath}); err != nil {
		t.Fatal(err)
	}
	// Detect with no inputs must error.
	if err := runDetect([]string{"-model", modelPath}); err == nil {
		t.Error("no inputs should error")
	}

	// Convert the CSV to columnar form and check the round trip is exact.
	ucolPath := filepath.Join(dir, "data.ucol")
	if err := runConvert([]string{"-out", ucolPath, "-chunk", "2", csvPath}); err != nil {
		t.Fatal(err)
	}
	want, err := unidetect.ReadCSVFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	src, err := unidetect.OpenUcolSource(ucolPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := unidetect.ReadSource(src)
	if cerr := src.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCols() != want.NumCols() || got.NumRows() != want.NumRows() {
		t.Fatalf("ucol round trip is %dx%d, want %dx%d", got.NumCols(), got.NumRows(), want.NumCols(), want.NumRows())
	}
	for j := range want.Columns {
		for i, v := range want.Columns[j].Values {
			if got.Columns[j].Values[i] != v {
				t.Fatalf("ucol cell [%d][%d] = %q, want %q", j, i, got.Columns[j].Values[i], v)
			}
		}
	}

	// Streaming detect over the CSV and over the converted .ucol; an
	// NDJSON input goes through both the whole-file and chunked paths too.
	ndjsonPath := filepath.Join(dir, "data.ndjson")
	ndjson := `{"Name":"Kevin Doeling"}` + "\n" + `{"Name":"Kevin Dowling"}` + "\n" +
		`{"Name":"Alan Myerson"}` + "\n" + `{"Name":"Rob Morrow"}` + "\n"
	if err := os.WriteFile(ndjsonPath, []byte(ndjson), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-model", modelPath, "-chunk", "2", csvPath},
		{"-model", modelPath, "-chunk", "3", "-json", ucolPath},
		{"-model", modelPath, ndjsonPath},
		{"-model", modelPath, "-chunk", "2", ndjsonPath},
	} {
		if err := runDetect(args); err != nil {
			t.Fatalf("runDetect(%v): %v", args, err)
		}
	}
}

func TestStreamingRejectsInMemoryOnlyFlags(t *testing.T) {
	err := detectStreams(nil, nil, options{repairs: true, chunk: 4})
	if err == nil || !strings.Contains(err.Error(), "-repair") {
		t.Errorf("streaming with -repair: err = %v, want a -repair/-rules error", err)
	}
	if err := detectStreams(nil, nil, options{rules: true, chunk: 4}); err == nil {
		t.Error("streaming with -rules should error")
	}
}

func TestOpenSourceDispatch(t *testing.T) {
	if _, err := openSource("book.xlsx", 4); err == nil {
		t.Error("xlsx cannot stream; openSource should error")
	}
	if _, err := openSource(filepath.Join(t.TempDir(), "missing.csv"), 4); err == nil {
		t.Error("missing file should error")
	}
}

func TestConvertFlagValidation(t *testing.T) {
	if err := runConvert([]string{"in.csv"}); err == nil {
		t.Error("convert without -out should error")
	}
	if err := runConvert([]string{"-out", "x.ucol"}); err == nil {
		t.Error("convert without an input should error")
	}
	if err := runConvert([]string{"-out", "x.ucol", "a.csv", "b.csv"}); err == nil {
		t.Error("convert with two inputs should error")
	}
	if err := runConvert([]string{"-out", "x.ucol", "in.ucol"}); err == nil {
		t.Error("convert from .ucol should error")
	}
}
