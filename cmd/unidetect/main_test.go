package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/unidetect/unidetect"
)

func TestProfileFlag(t *testing.T) {
	if profileFlag("wiki") != unidetect.WikiProfile {
		t.Error("wiki")
	}
	if profileFlag("enterprise") != unidetect.EnterpriseProfile {
		t.Error("enterprise")
	}
	if profileFlag("anything") != unidetect.WebProfile {
		t.Error("default should be web")
	}
}

func TestLoadCorpus(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"b.csv", "a.csv"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x,y\n1,2\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	tables, err := loadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	if tables[0].Name != "a" || tables[1].Name != "b" {
		t.Errorf("order: %s, %s (want sorted)", tables[0].Name, tables[1].Name)
	}
}

func TestLoadCorpusEmpty(t *testing.T) {
	if _, err := loadCorpus(t.TempDir()); err == nil {
		t.Error("empty directory should error")
	}
}

func TestTrainDetectRoundTripViaFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model")
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	if err := runTrain([]string{"-out", modelPath, "-tables", "1500", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(modelPath); err != nil {
		t.Fatal(err)
	}
	csvPath := filepath.Join(dir, "data.csv")
	data := "Name\nKevin Doeling\nKevin Dowling\nAlan Myerson\nRob Morrow\nLesli Glatter\nPeter Bonerz\n"
	if err := os.WriteFile(csvPath, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runDetect([]string{"-model", modelPath, csvPath}); err != nil {
		t.Fatal(err)
	}
	// Detect with no inputs must error.
	if err := runDetect([]string{"-model", modelPath}); err == nil {
		t.Error("no inputs should error")
	}
}
