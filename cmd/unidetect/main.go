// Command unidetect trains Uni-Detect models and detects errors in CSV
// tables.
//
//	unidetect train   -out model.bin [-tables 20000] [-profile web] [-csv dir]
//	unidetect detect  -model model.bin [-alpha 0.05] [-dict] file.csv...
//	unidetect scan    [-tables 8000] file.csv...     (train-and-detect in one shot)
//	unidetect convert -out data.ucol file.csv        (re-encode as columnar .ucol)
//
// Training uses the built-in synthetic background corpus unless -csv
// points at a directory of CSV files to use as the corpus. Inputs may be
// CSV, NDJSON (.ndjson/.jsonl), Excel (.xlsx), or columnar (.ucol);
// detect/scan with -chunk N stream each file chunk by chunk instead of
// loading it whole, so files larger than RAM can be scanned.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/unidetect/unidetect"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = runTrain(os.Args[2:])
	case "detect":
		err = runDetect(os.Args[2:])
	case "scan":
		err = runScan(os.Args[2:])
	case "convert":
		err = runConvert(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "profile":
		err = runProfile(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "unidetect: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "unidetect:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  unidetect train   -out model.bin [-tables N] [-profile web|wiki|enterprise] [-csv dir] [-dict]
  unidetect detect  -model model.bin [-alpha A] [-fdr Q] [-dict] [-repair] [-rules] [-json] [-chunk N] file.csv|file.ndjson|file.ucol|file.xlsx...
  unidetect scan    [-tables N] [-dict] [-repair] [-rules] [-chunk N] file.csv|file.ndjson|file.ucol|file.xlsx...
  unidetect convert -out file.ucol [-chunk N] file.csv|file.ndjson
  unidetect info    -model model.bin
  unidetect profile file.csv...

-chunk N streams each input N rows at a time through the columnar scan
driver (constant memory; incompatible with -repair/-rules/.xlsx).`)
}

func runProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no input files")
	}
	for _, p := range fs.Args() {
		t, err := unidetect.ReadCSVFile(p)
		if err != nil {
			return err
		}
		fmt.Printf("== %s (%d columns × %d rows)\n", t.Name, t.NumCols(), t.NumRows())
		for _, cp := range unidetect.ProfileTable(t) {
			fmt.Print(cp.Render())
		}
	}
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	modelPath := fs.String("model", "model.bin", "trained model path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := unidetect.Load(f, nil)
	if err != nil {
		return err
	}
	fmt.Printf("model %s: trained on %d background tables\n", *modelPath, m.CorpusTables())
	fmt.Printf("%-14s %12s %10s\n", "class", "samples", "buckets")
	for _, s := range m.Stats() {
		fmt.Printf("%-14s %12d %10d\n", s.Class, s.Samples, s.Buckets)
	}
	return nil
}

func profileFlag(s string) unidetect.CorpusProfile {
	switch s {
	case "wiki":
		return unidetect.WikiProfile
	case "enterprise":
		return unidetect.EnterpriseProfile
	default:
		return unidetect.WebProfile
	}
}

func loadCorpus(dir string) ([]*unidetect.Table, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no CSV files in %s", dir)
	}
	sort.Strings(paths)
	tables := make([]*unidetect.Table, 0, len(paths))
	for _, p := range paths {
		t, err := unidetect.ReadCSVFile(p)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	out := fs.String("out", "model.bin", "output model path")
	tables := fs.Int("tables", 20000, "synthetic background corpus size")
	profile := fs.String("profile", "web", "synthetic corpus profile: web|wiki|enterprise")
	csvDir := fs.String("csv", "", "directory of CSV files to use as the background corpus")
	seed := fs.Int64("seed", 1, "synthetic corpus seed")
	dict := fs.Bool("dict", false, "enable the dictionary spelling refinement")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var bg []*unidetect.Table
	var err error
	if *csvDir != "" {
		bg, err = loadCorpus(*csvDir)
		if err != nil {
			return err
		}
	} else {
		bg = unidetect.SyntheticCorpus(profileFlag(*profile), *tables, *seed)
	}
	fmt.Fprintf(os.Stderr, "training on %d background tables...\n", len(bg))
	m, err := unidetect.Train(context.Background(), bg, &unidetect.Options{UseDictionary: *dict})
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m.Save(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "model written to %s\n", *out)
	return f.Close()
}

func runDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	modelPath := fs.String("model", "model.bin", "trained model path")
	alpha := fs.Float64("alpha", 0, "significance level override (0 keeps the model's)")
	fdr := fs.Float64("fdr", 0, "Benjamini–Hochberg false-discovery-rate level (0 disables)")
	dict := fs.Bool("dict", false, "enable the dictionary spelling refinement")
	repairs := fs.Bool("repair", false, "print repair suggestions under each finding")
	rules := fs.Bool("rules", false, "also run the curated Excel-style rules")
	asJSON := fs.Bool("json", false, "emit findings as JSON lines")
	chunk := fs.Int("chunk", 0, "stream each file this many rows at a time (0 loads whole files)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := unidetect.Load(f, &unidetect.Options{Alpha: *alpha, FDR: *fdr, UseDictionary: *dict})
	if err != nil {
		return err
	}
	return detectFiles(m, fs.Args(), options{repairs: *repairs, rules: *rules, json: *asJSON, chunk: *chunk})
}

type options struct {
	repairs, rules, json bool
	chunk                int // >0 streams via DetectSource instead of loading whole tables
}

func runScan(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	tables := fs.Int("tables", 8000, "synthetic background corpus size")
	dict := fs.Bool("dict", false, "enable the dictionary spelling refinement")
	repairs := fs.Bool("repair", false, "print repair suggestions under each finding")
	rules := fs.Bool("rules", false, "also run the curated Excel-style rules")
	chunk := fs.Int("chunk", 0, "stream each file this many rows at a time (0 loads whole files)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "training throwaway model on %d synthetic tables...\n", *tables)
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, *tables, 1)
	m, err := unidetect.Train(context.Background(), bg, &unidetect.Options{UseDictionary: *dict})
	if err != nil {
		return err
	}
	return detectFiles(m, fs.Args(), options{repairs: *repairs, rules: *rules, chunk: *chunk})
}

// runConvert re-encodes a CSV or NDJSON file into the `.ucol` columnar
// format, streaming chunk by chunk so the input never has to fit in RAM.
func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	out := fs.String("out", "", "output .ucol path (required)")
	chunk := fs.Int("chunk", 0, "rows per stored chunk (0 = default budget)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("convert: -out is required")
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("convert: exactly one input file expected")
	}
	in := fs.Arg(0)
	switch strings.ToLower(filepath.Ext(in)) {
	case ".ucol", ".xlsx":
		return fmt.Errorf("convert: input must be CSV or NDJSON, got %s", in)
	}
	src, err := openSource(in, *chunk)
	if err != nil {
		return err
	}
	defer src.Close()
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := unidetect.WriteUcolSource(src, f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// jsonFinding is the -json wire shape for one finding.
type jsonFinding struct {
	Kind    string             `json:"kind"` // "finding" or "rule"
	Class   string             `json:"class"`
	Table   string             `json:"table"`
	Column  string             `json:"column"`
	Rows    []int              `json:"rows"`
	Values  []string           `json:"values,omitempty"`
	Score   float64            `json:"score,omitempty"`
	Detail  string             `json:"detail,omitempty"`
	Repairs []unidetect.Repair `json:"repairs,omitempty"`
}

// openSource opens one input file as a streaming chunked source,
// dispatching on extension (CSV is the default).
func openSource(p string, chunkRows int) (unidetect.Source, error) {
	switch strings.ToLower(filepath.Ext(p)) {
	case ".ucol":
		return unidetect.OpenUcolSource(p)
	case ".ndjson", ".jsonl":
		return unidetect.OpenNDJSONSource(p, chunkRows)
	case ".xlsx":
		return nil, fmt.Errorf("%s: xlsx workbooks cannot stream; omit -chunk to load them in memory", p)
	default:
		return unidetect.OpenCSVSource(p, chunkRows)
	}
}

// detectStreams runs the chunk-at-a-time scan over each file: one chunk
// resident per column at a time, so inputs larger than RAM still scan.
func detectStreams(m *unidetect.Model, paths []string, opts options) error {
	if opts.repairs || opts.rules {
		return fmt.Errorf("-repair and -rules need whole tables in memory; drop them or drop -chunk")
	}
	enc := json.NewEncoder(os.Stdout)
	n := 0
	for _, p := range paths {
		src, err := openSource(p, opts.chunk)
		if err != nil {
			return err
		}
		findings, err := m.DetectSource(context.Background(), src)
		if cerr := src.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		for _, f := range findings {
			if opts.json {
				if err := enc.Encode(jsonFinding{
					Kind: "finding", Class: f.Class.String(), Table: f.Table,
					Column: f.Column, Rows: f.Rows, Values: f.Values,
					Score: f.Score, Detail: f.Detail,
				}); err != nil {
					return err
				}
				continue
			}
			n++
			fmt.Printf("%3d. %s\n", n, f)
		}
	}
	if n == 0 && !opts.json {
		fmt.Println("no errors detected")
	}
	return nil
}

func detectFiles(m *unidetect.Model, paths []string, opts options) error {
	if len(paths) == 0 {
		return fmt.Errorf("no input files")
	}
	if opts.chunk > 0 {
		return detectStreams(m, paths, opts)
	}
	ts := make([]*unidetect.Table, 0, len(paths))
	for _, p := range paths {
		switch strings.ToLower(filepath.Ext(p)) {
		case ".xlsx":
			sheets, err := unidetect.ReadXLSXFile(p)
			if err != nil {
				return err
			}
			ts = append(ts, sheets...)
		case ".ndjson", ".jsonl":
			t, err := unidetect.ReadNDJSONFile(p)
			if err != nil {
				return err
			}
			ts = append(ts, t)
		case ".ucol":
			src, err := unidetect.OpenUcolSource(p)
			if err != nil {
				return err
			}
			t, err := unidetect.ReadSource(src)
			if cerr := src.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			ts = append(ts, t)
		default:
			t, err := unidetect.ReadCSVFile(p)
			if err != nil {
				return err
			}
			ts = append(ts, t)
		}
	}
	byName := map[string]*unidetect.Table{}
	for _, t := range ts {
		byName[t.Name] = t
	}
	findings := m.DetectAll(context.Background(), ts)
	enc := json.NewEncoder(os.Stdout)
	if len(findings) == 0 && !opts.json {
		fmt.Println("no errors detected")
	}
	for i, f := range findings {
		var rs []unidetect.Repair
		if opts.repairs {
			rs = unidetect.SuggestRepairs(byName[f.Table], f)
		}
		if opts.json {
			if err := enc.Encode(jsonFinding{
				Kind: "finding", Class: f.Class.String(), Table: f.Table,
				Column: f.Column, Rows: f.Rows, Values: f.Values,
				Score: f.Score, Detail: f.Detail, Repairs: rs,
			}); err != nil {
				return err
			}
			continue
		}
		fmt.Printf("%3d. %s\n", i+1, f)
		for _, r := range rs {
			fmt.Printf("     fix: %s[%d] %q -> %q (%s)\n", r.Column, r.Row, r.Old, r.New, r.Rationale)
		}
	}
	if opts.rules {
		n := len(findings)
		for _, t := range ts {
			for _, rf := range unidetect.CheckRules(t) {
				if opts.json {
					if err := enc.Encode(jsonFinding{
						Kind: "rule", Class: rf.Rule, Table: rf.Table,
						Column: rf.Column, Rows: []int{rf.Row},
						Values: []string{rf.Value}, Detail: rf.Detail,
					}); err != nil {
						return err
					}
					continue
				}
				n++
				fmt.Printf("%3d. [rule:%s] %s!%s[%d] %q %s\n", n, rf.Rule, rf.Table, rf.Column, rf.Row, rf.Value, rf.Detail)
			}
		}
	}
	return nil
}
