// Command unilint is Uni-Detect's project-specific static-analysis suite:
// a multichecker bundling the analyzers under internal/analysis that
// enforce the numeric and concurrency invariants the LR statistics depend
// on. See DESIGN.md ("What unilint enforces") for the rationale behind
// each rule.
//
// Usage:
//
//	go run ./cmd/unilint ./...          # lint package patterns
//	go vet -vettool=$(which unilint) ./...
//
// The binary speaks the go vet -vettool protocol (via
// golang.org/x/tools/go/analysis/unitchecker), so the go command handles
// package loading, export data and caching. When invoked directly with
// package patterns it re-executes itself through `go vet -vettool=<self>`.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/unidetect/unidetect/internal/analysis/ctxpropagate"
	"github.com/unidetect/unidetect/internal/analysis/floatcompare"
	"github.com/unidetect/unidetect/internal/analysis/nonnegcount"
	"github.com/unidetect/unidetect/internal/analysis/seededrand"
	"github.com/unidetect/unidetect/internal/analysis/uncheckederr"
)

func main() {
	args := os.Args[1:]
	if invokedAsVettool(args) {
		unitchecker.Main( // does not return
			floatcompare.Analyzer,
			seededrand.Analyzer,
			ctxpropagate.Analyzer,
			uncheckederr.Analyzer,
			nonnegcount.Analyzer,
		)
	}

	// Driver mode: delegate package loading to the go command by
	// re-running ourselves as its vettool.
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "unilint: cannot locate own executable: %v\n", err)
		os.Exit(2)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "unilint: %v\n", err)
		os.Exit(2)
	}
}

// invokedAsVettool reports whether the go command is driving us: it calls
// the tool with -V=full (version handshake), -flags (flag discovery), or
// a *.cfg file naming one package's compilation unit.
func invokedAsVettool(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" {
			return true
		}
		if strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
