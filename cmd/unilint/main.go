// Command unilint is Uni-Detect's project-specific static-analysis suite:
// a multichecker bundling the analyzers under internal/analysis that
// enforce the numeric and concurrency invariants the LR statistics depend
// on. See DESIGN.md ("What unilint enforces") for the rationale behind
// each rule. The analyzer list lives in internal/analysis/registry; this
// command is only the driver.
//
// Usage:
//
//	go run ./cmd/unilint ./...           # lint package patterns
//	go run ./cmd/unilint -json ./...     # machine-readable diagnostics
//	go run ./cmd/unilint -sarif ./...    # SARIF 2.1.0 for code scanning
//	go run ./cmd/unilint -fix ./...      # apply suggested fixes in place
//	go vet -vettool=$(which unilint) ./...
//
// The binary speaks the go vet -vettool protocol (via
// golang.org/x/tools/go/analysis/unitchecker), so the go command handles
// package loading, export data and caching. When invoked directly with
// package patterns it re-executes itself through `go vet -vettool=<self>`;
// the -json/-sarif/-fix modes additionally capture the per-package JSON
// the unitchecker emits and post-process it.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/unidetect/unidetect/internal/analysis/registry"
)

func main() {
	args := os.Args[1:]
	if invokedAsVettool(args) {
		unitchecker.Main(registry.All()...) // does not return
	}
	os.Exit(drive(args))
}

// drive is the driver mode: strip unilint's own mode flags, re-exec the
// go command with ourselves as its vettool, and post-process the output.
func drive(args []string) int {
	var jsonMode, sarifMode, fixMode bool
	var only, exclude string
	rest := make([]string, 0, len(args))
	for _, a := range args {
		switch {
		case a == "-json" || a == "--json":
			jsonMode = true
		case a == "-sarif" || a == "--sarif":
			sarifMode = true
		case a == "-fix" || a == "--fix":
			fixMode = true
		case cutFlag(a, "only", &only):
		case cutFlag(a, "exclude", &exclude):
		default:
			rest = append(rest, a)
		}
	}
	if len(rest) == 0 || strings.HasPrefix(rest[len(rest)-1], "-") {
		rest = append(rest, "./...")
	}
	sel, err := selectAnalyzers(only, exclude)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unilint: %v\n", err)
		return 2
	}
	rest = append(sel, rest...)

	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "unilint: cannot locate own executable: %v\n", err)
		return 2
	}

	if !jsonMode && !sarifMode && !fixMode {
		// Plain mode: let go vet own the terminal and the exit code.
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, rest...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		cmd.Stdin = os.Stdin
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				return ee.ExitCode()
			}
			fmt.Fprintf(os.Stderr, "unilint: %v\n", err)
			return 2
		}
		return 0
	}

	diags, errOut, err := vetJSON(exe, rest)
	if err != nil {
		fmt.Fprintf(os.Stderr, "unilint: %v\n%s", err, errOut)
		return 2
	}

	switch {
	case fixMode:
		return applyFixes(diags)
	case sarifMode:
		return emitSARIF(os.Stdout, diags)
	default:
		return emitJSON(os.Stdout, diags)
	}
}

// cutFlag matches -name=value / --name=value and stores the value.
func cutFlag(arg, name string, out *string) bool {
	for _, prefix := range []string{"-" + name + "=", "--" + name + "="} {
		if v, ok := strings.CutPrefix(arg, prefix); ok {
			*out = v
			return true
		}
	}
	return false
}

// selectAnalyzers validates -only/-exclude against the registry and
// renders the go vet analyzer-selection flags: when any -<analyzer>
// boolean is passed, go vet runs exactly the named analyzers. An empty
// result means the whole suite.
func selectAnalyzers(only, exclude string) ([]string, error) {
	if only != "" && exclude != "" {
		return nil, fmt.Errorf("-only and -exclude are mutually exclusive")
	}
	split := func(flag, list string) ([]string, error) {
		var names []string
		for _, n := range strings.Split(list, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if registry.Lookup(n) == nil {
				return nil, fmt.Errorf("-%s: unknown analyzer %q (the suite is listed in DESIGN.md §7)", flag, n)
			}
			names = append(names, n)
		}
		if len(names) == 0 {
			return nil, fmt.Errorf("-%s selects no analyzers", flag)
		}
		return names, nil
	}
	switch {
	case only != "":
		names, err := split("only", only)
		if err != nil {
			return nil, err
		}
		flags := make([]string, len(names))
		for i, n := range names {
			flags[i] = "-" + n
		}
		return flags, nil
	case exclude != "":
		names, err := split("exclude", exclude)
		if err != nil {
			return nil, err
		}
		excluded := map[string]bool{}
		for _, n := range names {
			excluded[n] = true
		}
		var flags []string
		for _, a := range registry.All() {
			if !excluded[a.Name] {
				flags = append(flags, "-"+a.Name)
			}
		}
		if len(flags) == 0 {
			return nil, fmt.Errorf("-exclude removes every analyzer")
		}
		return flags, nil
	}
	return nil, nil
}

// invokedAsVettool reports whether the go command is driving us: it calls
// the tool with -V=full (version handshake), -flags (flag discovery), or
// a *.cfg file naming one package's compilation unit.
func invokedAsVettool(args []string) bool {
	for _, a := range args {
		if a == "-V=full" || a == "-flags" {
			return true
		}
		if strings.HasSuffix(a, ".cfg") {
			return true
		}
	}
	return false
}
