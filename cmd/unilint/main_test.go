package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary impersonate the unilint executable: when
// re-invoked with UNILINT_SMOKE_CHILD=1 it runs main() instead of the
// tests, both as the driver and — because go vet inherits the
// environment — as the vettool the driver hands to the go command.
func TestMain(m *testing.M) {
	if os.Getenv("UNILINT_SMOKE_CHILD") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// runSelf runs this test binary as unilint in dir.
func runSelf(t *testing.T, dir string, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "UNILINT_SMOKE_CHILD=1", "GOWORK=off")
	var out, errBuf strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("running %v: %v", args, err)
		}
	}
	return out.String(), errBuf.String(), cmd.ProcessState.ExitCode()
}

// copyFixture clones the named testdata module into a temp dir so -fix
// can mutate it freely.
func copyFixture(t *testing.T, name string) string {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	err = filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

func TestSmokePlain(t *testing.T) {
	dir := copyFixture(t, "fixture")
	_, stderr, exit := runSelf(t, dir, "./...")
	if exit != 1 {
		t.Fatalf("plain mode exit = %d, want 1\nstderr:\n%s", exit, stderr)
	}
	if !strings.Contains(stderr, "floating-point comparison with ==") {
		t.Errorf("plain mode stderr missing the floatcompare diagnostic:\n%s", stderr)
	}
}

func TestSmokeJSON(t *testing.T) {
	dir := copyFixture(t, "fixture")
	stdout, stderr, exit := runSelf(t, dir, "-json", "./...")
	if exit != 1 {
		t.Fatalf("-json exit = %d, want 1\nstderr:\n%s", exit, stderr)
	}
	var diags []diag
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, stdout)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "floatcompare" || !strings.HasSuffix(splitPosnFile(d.Posn), "main.go") {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
	if len(d.SuggestedFixes) == 0 || len(d.SuggestedFixes[0].Edits) == 0 {
		t.Errorf("diagnostic carries no suggested fix: %+v", d)
	}
}

func splitPosnFile(posn string) string {
	file, _, _ := splitPosn(posn)
	return file
}

func TestSmokeSARIF(t *testing.T) {
	dir := copyFixture(t, "fixture")
	stdout, stderr, exit := runSelf(t, dir, "-sarif", "./...")
	if exit != 1 {
		t.Fatalf("-sarif exit = %d, want 1\nstderr:\n%s", exit, stderr)
	}
	var log sarifLog
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("-sarif output is not valid JSON: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF envelope: version=%q runs=%d", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "unilint" {
		t.Errorf("driver name = %q, want unilint", run.Tool.Driver.Name)
	}
	if len(run.Results) != 1 || run.Results[0].RuleID != "floatcompare" {
		t.Fatalf("unexpected SARIF results: %+v", run.Results)
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "main.go" || loc.Region.StartLine == 0 {
		t.Errorf("unexpected SARIF location: %+v", loc)
	}
}

func TestSmokeFix(t *testing.T) {
	dir := copyFixture(t, "fixture")
	_, stderr, exit := runSelf(t, dir, "-fix", "./...")
	if exit != 0 {
		t.Fatalf("-fix exit = %d, want 0\nstderr:\n%s", exit, stderr)
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "stats.SameFloat(a, b)") {
		t.Errorf("-fix did not rewrite the comparison:\n%s", fixed)
	}
	// The fixed fixture must re-lint clean.
	_, stderr, exit = runSelf(t, dir, "./...")
	if exit != 0 {
		t.Errorf("fixed fixture still fails lint (exit %d):\n%s", exit, stderr)
	}
}

// TestSmokeOnly proves -only restricts the run to the named analyzers:
// the fixture's sole finding is floatcompare's, so selecting another
// analyzer lints clean and selecting floatcompare still fails.
func TestSmokeOnly(t *testing.T) {
	dir := copyFixture(t, "fixture")
	if _, stderr, exit := runSelf(t, dir, "-only=seededrand", "./..."); exit != 0 {
		t.Errorf("-only=seededrand exit = %d, want 0:\n%s", exit, stderr)
	}
	_, stderr, exit := runSelf(t, dir, "-only=floatcompare,seededrand", "./...")
	if exit != 1 {
		t.Fatalf("-only=floatcompare,seededrand exit = %d, want 1:\n%s", exit, stderr)
	}
	if !strings.Contains(stderr, "floating-point comparison with ==") {
		t.Errorf("-only run lost the floatcompare diagnostic:\n%s", stderr)
	}
}

// TestSmokeExclude proves -exclude removes exactly the named analyzers.
func TestSmokeExclude(t *testing.T) {
	dir := copyFixture(t, "fixture")
	if _, stderr, exit := runSelf(t, dir, "-exclude=floatcompare", "./..."); exit != 0 {
		t.Errorf("-exclude=floatcompare exit = %d, want 0:\n%s", exit, stderr)
	}
	if _, stderr, exit := runSelf(t, dir, "-exclude=seededrand", "./..."); exit != 1 {
		t.Errorf("-exclude=seededrand exit = %d, want 1 (floatcompare still on):\n%s", exit, stderr)
	}
}

// TestSmokeSelectionErrors proves unknown names and contradictory
// selections are usage errors, not silent no-ops.
func TestSmokeSelectionErrors(t *testing.T) {
	dir := copyFixture(t, "fixture")
	for _, args := range [][]string{
		{"-only=bogus", "./..."},
		{"-exclude=bogus", "./..."},
		{"-only=floatcompare", "-exclude=seededrand", "./..."},
	} {
		_, stderr, exit := runSelf(t, dir, args...)
		if exit != 2 {
			t.Errorf("%v exit = %d, want 2:\n%s", args, exit, stderr)
		}
		if !strings.Contains(stderr, "unilint:") {
			t.Errorf("%v stderr missing the usage error:\n%s", args, stderr)
		}
	}
}

// TestSmokeLockorderCycle proves a lock-order cycle fails go vet end to
// end through the vettool protocol: the lockfixture module acquires two
// package-level mutexes in opposite orders, and the resulting
// potential-deadlock diagnostic must be a build failure, witness chain
// included.
func TestSmokeLockorderCycle(t *testing.T) {
	dir := copyFixture(t, "lockfixture")
	_, stderr, exit := runSelf(t, dir, "-lockorder.mods=lockfixture", "./...")
	if exit == 0 {
		t.Fatalf("lock-order cycle did not fail the build\nstderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "potential deadlock: lock-order cycle:") {
		t.Errorf("stderr missing the lockorder diagnostic:\n%s", stderr)
	}
	if !strings.Contains(stderr, "lockfixture.stateMu held at main.go:11 → acquires lockfixture.swapMu") {
		t.Errorf("stderr missing the witness chain:\n%s", stderr)
	}
	// Out of the box the fixture is outside the module gate: clean.
	if _, stderr, exit := runSelf(t, dir, "./..."); exit != 0 {
		t.Errorf("out-of-module fixture should lint clean, got exit %d:\n%s", exit, stderr)
	}
}

// TestSmokeHotallocBudget proves the enforced-budget path end to end
// through the vettool protocol: pointing the hot-root set at the
// hotfixture module (whose Serve carries an alloc-budget smaller than
// its site count) must fail the build with the exceeded diagnostic.
// The scoping flags travel unilint → go vet → vettool, so this also
// exercises the flag handshake for the reachability analyzers.
func TestSmokeHotallocBudget(t *testing.T) {
	dir := copyFixture(t, "hotfixture")
	_, stderr, exit := runSelf(t, dir,
		"-hotalloc.mods=hotfixture", "-hotalloc.roots=hotfixture.Serve", "./...")
	if exit == 0 {
		t.Fatalf("budget violation did not fail the build\nstderr:\n%s", stderr)
	}
	if !strings.Contains(stderr, "alloc-budget on Serve exceeded: 2 allocation site(s), budget is 1") {
		t.Errorf("stderr missing the exceeded-budget diagnostic:\n%s", stderr)
	}
}

// TestSmokeHotallocDefaultScope proves the default module scoping keeps
// the reachability analyzers quiet outside the unidetect module: the
// same fixture lints clean when the mods gate is left at its default.
func TestSmokeHotallocDefaultScope(t *testing.T) {
	dir := copyFixture(t, "hotfixture")
	_, stderr, exit := runSelf(t, dir, "./...")
	if exit != 0 {
		t.Errorf("out-of-module fixture should lint clean, got exit %d:\n%s", exit, stderr)
	}
}
