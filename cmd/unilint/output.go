// JSON capture and the -json / -sarif / -fix emitters for the unilint
// driver. The unitchecker's -json output (one JSON object per package,
// interleaved with "# pkg" comment lines from the go command) is parsed
// into a flat diagnostic list that each mode renders its own way.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// jsonDiagnostic mirrors analysisflags.JSONDiagnostic.
type jsonDiagnostic struct {
	Category       string          `json:"category,omitempty"`
	Posn           string          `json:"posn"`
	Message        string          `json:"message"`
	SuggestedFixes []jsonSuggested `json:"suggested_fixes,omitempty"`
}

type jsonSuggested struct {
	Message string         `json:"message"`
	Edits   []jsonTextEdit `json:"edits"`
}

// jsonTextEdit is a byte-offset splice into one file.
type jsonTextEdit struct {
	Filename string `json:"filename"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	New      string `json:"new"`
}

// diag is one diagnostic attributed to its package and analyzer.
type diag struct {
	Pkg      string
	Analyzer string
	jsonDiagnostic
}

// vetJSON runs `go vet -vettool=exe -json args...` and parses the stream
// of per-package JSON trees. go vet exits 0 in -json mode even when there
// are diagnostics; a non-zero exit therefore means the build itself broke.
func vetJSON(exe string, args []string) ([]diag, string, error) {
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe, "-json"}, args...)...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, errBuf.String(), fmt.Errorf("go vet: %v", err)
	}
	diags, err := parseJSONTrees(io.MultiReader(&out, &errBuf))
	if err != nil {
		return nil, errBuf.String(), err
	}
	return diags, errBuf.String(), nil
}

// parseJSONTrees decodes a concatenation of JSON trees of the shape
// {"pkg": {"analyzer": [diag, ...]}}, skipping "# pkg" comment lines.
func parseJSONTrees(r io.Reader) ([]diag, error) {
	var clean bytes.Buffer
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		if strings.HasPrefix(strings.TrimSpace(sc.Text()), "#") {
			continue
		}
		clean.WriteString(sc.Text())
		clean.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	var diags []diag
	dec := json.NewDecoder(&clean)
	for {
		var tree map[string]map[string]json.RawMessage
		if err := dec.Decode(&tree); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go vet -json output: %v", err)
		}
		for pkg, byAnalyzer := range tree {
			for analyzer, raw := range byAnalyzer {
				var ds []jsonDiagnostic
				if err := json.Unmarshal(raw, &ds); err != nil {
					continue // e.g. an "error" payload; not diagnostics
				}
				for _, d := range ds {
					diags = append(diags, diag{Pkg: pkg, Analyzer: analyzer, jsonDiagnostic: d})
				}
			}
		}
	}
	sortDiags(diags)
	return diags, nil
}

func sortDiags(diags []diag) {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Posn != diags[j].Posn {
			return diags[i].Posn < diags[j].Posn
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

// emitJSON prints the merged diagnostic list as one JSON document.
// Exit status follows plain-mode convention: 1 if anything was found.
func emitJSON(w io.Writer, diags []diag) int {
	if diags == nil {
		diags = []diag{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(diags); err != nil {
		fmt.Fprintf(os.Stderr, "unilint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// sarif structures: the minimal subset of SARIF 2.1.0 that GitHub code
// scanning and most viewers consume.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID string `json:"id"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// emitSARIF renders the diagnostics as a SARIF 2.1.0 log.
func emitSARIF(w io.Writer, diags []diag) int {
	run := sarifRun{
		Tool:    sarifTool{Driver: sarifDriver{Name: "unilint"}},
		Results: []sarifResult{},
	}
	seenRules := map[string]bool{}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if !seenRules[d.Analyzer] {
			seenRules[d.Analyzer] = true
			run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{ID: d.Analyzer})
		}
		file, line, col := splitPosn(d.Posn)
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		run.Results = append(run.Results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: file},
				Region:           sarifRegion{StartLine: line, StartColumn: col},
			}}},
		})
	}
	sort.Slice(run.Tool.Driver.Rules, func(i, j int) bool {
		return run.Tool.Driver.Rules[i].ID < run.Tool.Driver.Rules[j].ID
	})
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	if err := enc.Encode(log); err != nil {
		fmt.Fprintf(os.Stderr, "unilint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// splitPosn parses "file:line:col" (col optional), tolerating drive-less
// absolute paths.
func splitPosn(posn string) (file string, line, col int) {
	file = posn
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil {
			col = n
			file = file[:i]
		}
	}
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil {
			line = n
			file = file[:i]
		}
	}
	if line == 0 && col != 0 {
		// Only one numeric suffix was present: it was the line.
		line, col = col, 0
	}
	return file, line, col
}

// applyFixes splices every suggested edit into its file, skipping edits
// that overlap an already-applied one. Diagnostics with no fix (or whose
// fix was skipped) are printed and keep the exit status at 1, so -fix
// surfaces exactly the findings that still need a human.
func applyFixes(diags []diag) int {
	type edit struct {
		start, end int
		new        string
	}
	byFile := map[string][]edit{}
	var unfixed []diag
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			unfixed = append(unfixed, d)
			continue
		}
		// Apply the first fix only: alternatives are exclusive.
		for _, te := range d.SuggestedFixes[0].Edits {
			byFile[te.Filename] = append(byFile[te.Filename], edit{te.Start, te.End, te.New})
		}
	}

	applied, skipped := 0, 0
	files := make([]string, 0, len(byFile))
	for name := range byFile {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		src, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "unilint: -fix: %v\n", err)
			return 2
		}
		es := byFile[name]
		sort.Slice(es, func(i, j int) bool { return es[i].start < es[j].start })
		var out []byte
		last := 0
		for _, e := range es {
			if e.start < last || e.start > len(src) || e.end > len(src) {
				skipped++
				continue
			}
			out = append(out, src[last:e.start]...)
			out = append(out, e.new...)
			last = e.end
			applied++
		}
		out = append(out, src[last:]...)
		if err := os.WriteFile(name, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "unilint: -fix: %v\n", err)
			return 2
		}
	}

	fmt.Fprintf(os.Stderr, "unilint: applied %d suggested fixes in %d files", applied, len(byFile))
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, " (%d overlapping edits skipped)", skipped)
	}
	fmt.Fprintln(os.Stderr)
	for _, d := range unfixed {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", d.Posn, d.Analyzer, d.Message)
	}
	if len(unfixed) > 0 || skipped > 0 {
		return 1
	}
	return 0
}
