module hotfixture

go 1.24
