// The hot fixture trips exactly one hotalloc rule: Serve is declared a
// hot root (via -hotalloc.roots) and carries an alloc-budget smaller
// than its site count, so the enforced-budget path must fail the build.
package main

// Serve is the fixture's hot loop: two allocation sites under a budget
// of one.
//
// alloc-budget: 1 the fixture pretends only one buffer is needed
func Serve(n int) int {
	a := make([]int, n)
	b := make([]int, n)
	return len(a) + len(b)
}

func main() {
	_ = Serve(4)
}
