// The fixture trips exactly one rule: a raw floating-point comparison,
// which also carries a suggested fix (stats is imported).
package main

import (
	"fmt"

	"fixture/stats"
)

func equalScores(a, b float64) bool {
	return a == b
}

func main() {
	fmt.Println(equalScores(0.1+0.2, 0.3), stats.ApproxEq(0.3, 0.3, 1e-9))
}
