// The fixture trips exactly one rule: two package-level mutexes are
// acquired in opposite orders on two code paths, a lock-order cycle
// lockorder must fail the build for.
package main

import "sync"

var stateMu, swapMu sync.Mutex

func readUnderSwap() {
	stateMu.Lock()
	defer stateMu.Unlock()
	swapMu.Lock()
	defer swapMu.Unlock()
}

func swapUnderState() {
	swapMu.Lock()
	defer swapMu.Unlock()
	stateMu.Lock()
	defer stateMu.Unlock()
}

func main() {
	readUnderSwap()
	swapUnderState()
}
