module lockfixture

go 1.24
