module github.com/unidetect/unidetect

go 1.22
