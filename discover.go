package unidetect

import (
	"github.com/unidetect/unidetect/internal/fdiscover"
)

// DiscoveredFD is one functional dependency found in a table.
type DiscoveredFD struct {
	// Lhs and Rhs name the dependency's columns.
	Lhs []string
	Rhs string
	// Error is the g3 approximation error: the minimum fraction of rows
	// whose removal makes the FD hold exactly (0 = exact).
	Error float64
}

// FDDiscoveryOptions bounds DiscoverFDs.
type FDDiscoveryOptions struct {
	// MaxLhs is the largest left-hand-side size explored (default 2).
	MaxLhs int
	// MaxError admits approximate FDs with g3 up to this value
	// (default 0: exact FDs only).
	MaxError float64
}

// DiscoverFDs runs a TANE-style level-wise search [51] for the minimal
// exact and approximate functional dependencies of a table. It is the
// profiling companion to error detection: Detect flags rows that *break*
// an almost-certain dependency, DiscoverFDs reports which dependencies
// hold at all.
func DiscoverFDs(t *Table, opts FDDiscoveryOptions) []DiscoveredFD {
	fds := fdiscover.Discover(t, fdiscover.Options{
		MaxLhs:   opts.MaxLhs,
		MaxError: opts.MaxError,
	})
	out := make([]DiscoveredFD, 0, len(fds))
	for _, fd := range fds {
		d := DiscoveredFD{Rhs: t.Columns[fd.Rhs].Name, Error: fd.Err}
		for _, c := range fd.Lhs {
			d.Lhs = append(d.Lhs, t.Columns[c].Name)
		}
		out = append(out, d)
	}
	return out
}
