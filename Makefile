# Developer workflow for the Uni-Detect reproduction.
#
#   make           — build + tier-1 tests (the seed verify)
#   make lint      — project-specific static analysis (cmd/unilint)
#   make lint-fix  — apply unilint's suggested fixes in place
#   make sarif     — write unilint findings to unilint.sarif
#   make vet       — go vet
#   make test      — full test suite
#   make race      — full test suite under the race detector
#   make bench     — benchmarks (no tests)
#   make check     — everything CI runs

GO ?= go

.PHONY: all build lint lint-fix sarif vet test race bench check

all: build test

build:
	$(GO) build ./...

lint:
	$(GO) run ./cmd/unilint ./...

lint-fix:
	$(GO) run ./cmd/unilint -fix ./...

# Exit status intentionally ignored: the report is the artifact.
sarif:
	$(GO) run ./cmd/unilint -sarif ./... > unilint.sarif || true

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NoSuchTest -bench=. -benchtime=1x ./...

check: build vet lint test race
