# Developer workflow for the Uni-Detect reproduction.
#
#   make        — build + tier-1 tests (the seed verify)
#   make lint   — project-specific static analysis (cmd/unilint)
#   make vet    — go vet
#   make test   — full test suite
#   make race   — full test suite under the race detector
#   make bench  — benchmarks (no tests)
#   make check  — everything CI runs

GO ?= go

.PHONY: all build lint vet test race bench check

all: build test

build:
	$(GO) build ./...

lint:
	$(GO) run ./cmd/unilint ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NoSuchTest -bench=. -benchtime=1x ./...

check: build vet lint test race
