# Developer workflow for the Uni-Detect reproduction.
#
#   make           — build + tier-1 tests (the seed verify)
#   make lint      — project-specific static analysis (cmd/unilint)
#   make lint-fix  — apply unilint's suggested fixes in place
#   make sarif     — write unilint findings to unilint.sarif
#   make vet       — go vet
#   make test      — full test suite
#   make race      — full test suite under the race detector
#   make bench     — benchmarks (no tests)
#   make bench-json — train/predict baseline + registry counters → BENCH_core.json
#   make bench-serving — serving-tier latency/throughput baseline → BENCH_serving.json
#   make bench-gate — regenerate both reports, fail on regression
#   make fuzz      — every fuzz target for FUZZTIME (default 10s) each
#   make chaos     — fault-injection suite, three fixed seeds, -race
#   make cover     — per-package coverage; jobstore/tenants must stay >= 85%
#   make check     — everything CI runs
#   make clean     — remove generated artifacts (bench candidates, SARIF, chaos transcripts)

GO ?= go
CHAOS_SEEDS ?= 1,7,42
CHAOS_ARTIFACT_DIR ?= $(CURDIR)/chaos-artifacts
FUZZTIME ?= 10s

# Every fuzz target in the tree, as package=Target pairs ("make fuzz"
# runs each for FUZZTIME; committed corpora under testdata/fuzz replay
# as plain tests regardless).
FUZZ_TARGETS = \
	./internal/strdist=FuzzLevenshteinBounded \
	./internal/strdist=FuzzDifferingTokens \
	./internal/table=FuzzParseNumber \
	./internal/table=FuzzTokenize \
	./internal/table=FuzzInferType \
	./internal/core=FuzzCheckpointLoad \
	./internal/core=FuzzCheckpointRoundTrip \
	./internal/core=FuzzModelMerge \
	./internal/lrindex=FuzzLRIndexLookup \
	./internal/colstore=FuzzUcolRead \
	./internal/colstore=FuzzCSVChunks \
	./internal/serving=FuzzReadTable \
	./internal/serving=FuzzJobRequest \
	./internal/tenants=FuzzTenantRegistryLoad

.PHONY: all build lint lint-fix sarif vet test race bench bench-json bench-serving bench-gate chaos cover fuzz check clean

all: build test

build:
	$(GO) build ./...

lint:
	$(GO) run ./cmd/unilint ./...

lint-fix:
	$(GO) run ./cmd/unilint -fix ./...

# Exit status intentionally ignored: the report is the artifact.
sarif:
	$(GO) run ./cmd/unilint -sarif ./... > unilint.sarif || true

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NoSuchTest -bench=. -benchtime=1x ./...

# Regenerates the committed perf/behaviour baseline. Timings are
# machine-relative; the counters block is seed-deterministic and a diff
# there means the pipeline's behaviour changed, not just its speed.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_core.json

# Serving-tier baseline: p50/p99 detect latency, request throughput and
# async job throughput through a real listener. Same caveats as the
# core report — timings are machine-relative.
bench-serving:
	$(GO) run ./cmd/benchjson -serving -out BENCH_serving.json

# Regression gate: regenerate the report into a scratch file and compare
# the detect-path benchmarks against the committed baseline; >20% ns/op
# (or allocs/op) regression fails. Run on the same host class as the
# baseline — timings are machine-relative.
bench-gate:
	$(GO) run ./cmd/benchjson -out bench-candidate.json
	$(GO) run ./cmd/benchgate -baseline BENCH_core.json -candidate bench-candidate.json -pattern Detect,Ingest
	$(GO) run ./cmd/benchjson -serving -out bench-serving-candidate.json
	$(GO) run ./cmd/benchgate -baseline BENCH_serving.json -candidate bench-serving-candidate.json -pattern Serving -max-regress 0.50

# Coverage-guided fuzzing, one target at a time (go test accepts a
# single -fuzz pattern per invocation).
fuzz:
	@set -e; for pair in $(FUZZ_TARGETS); do \
		pkg=$${pair%%=*}; target=$${pair##*=}; \
		echo "--- fuzz $$pkg $$target"; \
		$(GO) test $$pkg -run=NoSuchTest -fuzz="^$$target$$" -fuzztime=$(FUZZTIME); \
	done

# Chaos suite: deterministic fault-injection tests under the race
# detector, -count=1 so every run re-executes the schedules. Failure
# transcripts land in $(CHAOS_ARTIFACT_DIR) for CI to upload. The
# -chaos.seeds flag is registered only by test binaries importing
# internal/testkit, so the seed sweep and the fixed-schedule packages
# run as separate invocations.
chaos:
	mkdir -p $(CHAOS_ARTIFACT_DIR)
	CHAOS_ARTIFACT_DIR=$(CHAOS_ARTIFACT_DIR) $(GO) test -race -count=1 ./internal/testkit/ -chaos.seeds=$(CHAOS_SEEDS)
	CHAOS_ARTIFACT_DIR=$(CHAOS_ARTIFACT_DIR) $(GO) test -race -count=1 ./internal/e2e/ -chaos.seeds=$(CHAOS_SEEDS)
	CHAOS_ARTIFACT_DIR=$(CHAOS_ARTIFACT_DIR) $(GO) test -race -count=1 ./internal/faultinject/ ./internal/mapreduce/ ./internal/core/ ./internal/serving/ ./internal/jobstore/

# Per-package coverage with floors on the new serving-tier packages:
# the async job store and the tenant registry carry the crash-safety
# and isolation guarantees, so they must stay well covered.
cover:
	$(GO) test -coverprofile=cover.out -coverpkg=./internal/jobstore,./internal/tenants,./internal/serving ./internal/jobstore/ ./internal/tenants/ ./internal/serving/
	@$(GO) tool cover -func=cover.out | tail -1
	@for pkg in internal/jobstore internal/tenants; do \
		pct=$$($(GO) tool cover -func=cover.out | awk -v p="$$pkg/" '$$1 ~ p {split($$NF,a,"%"); sum+=a[1]; n++} END {if (n) printf "%.1f", sum/n; else print "0"}'); \
		echo "coverage $$pkg: $$pct% (floor 85%)"; \
		ok=$$(awk -v v="$$pct" 'BEGIN {print (v+0 >= 85) ? 1 : 0}'); \
		if [ "$$ok" != "1" ]; then echo "FAIL: $$pkg coverage $$pct% is below the 85% floor"; exit 1; fi; \
	done

check: build vet lint test race

# Remove generated artifacts. BENCH_core.json is the committed baseline
# and is deliberately left alone; bench-candidate.json is the scratch
# report bench-gate regenerates every run.
clean:
	rm -f bench-candidate.json bench-serving-candidate.json cover.out unilint.sarif unilint-flow.sarif
	rm -rf $(CHAOS_ARTIFACT_DIR)
