package profile

import (
	"strings"
	"testing"

	"github.com/unidetect/unidetect/internal/table"
)

func TestProfileStringColumn(t *testing.T) {
	c := table.NewColumn("City", []string{"Paris", "Paris", "Lyon", "", "Nice"})
	p := Profile(c)
	if p.Rows != 5 || p.Empty != 1 || p.Distinct != 3 {
		t.Errorf("profile = %+v", p)
	}
	if p.UniquenessRatio != 0.75 {
		t.Errorf("UR = %v", p.UniquenessRatio)
	}
	if p.TopValues[0].Value != "Paris" || p.TopValues[0].Count != 2 {
		t.Errorf("top = %+v", p.TopValues)
	}
	if p.Patterns[0].Value != "l" {
		t.Errorf("patterns = %+v", p.Patterns)
	}
	if p.LengthHistogram[0] != 1 || p.LengthHistogram[1] != 4 {
		t.Errorf("length histogram = %v", p.LengthHistogram)
	}
	if p.Numeric != nil {
		t.Error("string column should have no numeric summary")
	}
}

func TestProfileNumericColumn(t *testing.T) {
	c := table.NewColumn("Pop", []string{"8011", "9954", "11895", "11329", "11352", "11709", "10233", "9871"})
	p := Profile(c)
	if p.Numeric == nil {
		t.Fatal("no numeric summary")
	}
	ns := p.Numeric
	if ns.Count != 8 || ns.Min != 8011 || ns.Max != 11895 {
		t.Errorf("numeric = %+v", ns)
	}
	if ns.Median == 0 || ns.MAD == 0 || ns.MaxMADScore <= 0 {
		t.Errorf("stats = %+v", ns)
	}
}

func TestProfileTable(t *testing.T) {
	tbl := table.MustNew("t",
		table.NewColumn("A", []string{"x", "y"}),
		table.NewColumn("B", []string{"1", "2"}),
	)
	ps := Table(tbl)
	if len(ps) != 2 || ps[0].Name != "A" || ps[1].Name != "B" {
		t.Errorf("profiles = %+v", ps)
	}
}

func TestRender(t *testing.T) {
	c := table.NewColumn("Mixed", []string{"KV214-310B8K2", "MP2492DN", "MP2492DN", strings.Repeat("long ", 12), ""})
	out := Profile(c).Render()
	for _, want := range []string{`column "Mixed"`, "top values", "patterns", "length histogram", "41+", "empty"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Numeric columns include the numeric line.
	n := table.NewColumn("N", []string{"1", "2", "3", "4", "5", "6", "7", "80"})
	if !strings.Contains(Profile(n).Render(), "max-MAD-score") {
		t.Error("numeric render missing stats line")
	}
}

func TestLengthBuckets(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 5: 1, 6: 2, 10: 2, 11: 3, 20: 3, 21: 4, 40: 4, 41: 5, 100: 5}
	for n, want := range cases {
		if got := lengthBucket(n); got != want {
			t.Errorf("lengthBucket(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTopCountsDeterministicTies(t *testing.T) {
	m := map[string]int{"b": 2, "a": 2, "c": 1}
	got := topCounts(m, 2)
	if got[0].Value != "a" || got[1].Value != "b" {
		t.Errorf("topCounts = %+v", got)
	}
}
