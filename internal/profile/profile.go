// Package profile computes per-column data profiles: the Trifacta-style
// summaries the paper surveys in Appendix B ("a rich set of
// visual-histograms (e.g., distribution of string lengths) for values in
// a column, which help users identify potential quality issues"). A
// profile is purely descriptive — it detects nothing — but renders the
// column-level context a user wants next to a Uni-Detect finding.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"

	"github.com/unidetect/unidetect/internal/autodetect"
	"github.com/unidetect/unidetect/internal/stats"
	"github.com/unidetect/unidetect/internal/table"
)

// ValueCount pairs a value (or pattern) with its occurrence count.
type ValueCount struct {
	Value string
	Count int
}

// NumericSummary holds the numeric statistics of a column's parseable
// values.
type NumericSummary struct {
	Count            int
	Min, Max         float64
	Mean, Median     float64
	SD, MAD          float64
	MaxMADScore      float64
	LogTransformFits bool
}

// Column is one column's profile.
type Column struct {
	Name     string
	Type     table.ValueType
	Rows     int
	Empty    int
	Distinct int
	// UniquenessRatio is distinct / non-empty rows.
	UniquenessRatio float64
	// TopValues lists the most frequent values (up to 5).
	TopValues []ValueCount
	// Patterns lists the coarse character-class patterns present
	// (Auto-Detect generalization), most frequent first.
	Patterns []ValueCount
	// LengthHistogram counts values per string-length bucket
	// {1-5, 6-10, 11-20, 21-40, 41+}; index 0 is empty values.
	LengthHistogram [6]int
	// Numeric summarizes parseable numbers (nil for non-numeric columns).
	Numeric *NumericSummary
}

// Table profiles every column of a table.
func Table(t *table.Table) []Column {
	out := make([]Column, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = Profile(c)
	}
	return out
}

// Profile computes one column's profile.
func Profile(c *table.Column) Column {
	p := Column{Name: c.Name, Type: c.Type(), Rows: c.Len()}
	freq := map[string]int{}
	patterns := map[string]int{}
	for _, v := range c.Values {
		trimmed := strings.TrimSpace(v)
		if trimmed == "" {
			p.Empty++
			p.LengthHistogram[0]++
			continue
		}
		freq[v]++
		patterns[autodetect.GeneralizeCoarse(trimmed)]++
		p.LengthHistogram[lengthBucket(utf8.RuneCountInString(v))]++
	}
	p.Distinct = len(freq)
	if n := p.Rows - p.Empty; n > 0 {
		p.UniquenessRatio = float64(p.Distinct) / float64(n)
	}
	p.TopValues = topCounts(freq, 5)
	p.Patterns = topCounts(patterns, 5)

	if p.Type == table.TypeInt || p.Type == table.TypeFloat {
		if vals, _ := table.Numbers(c); len(vals) > 0 {
			ns := &NumericSummary{
				Count:  len(vals),
				Min:    vals[0],
				Max:    vals[0],
				Mean:   stats.Mean(vals),
				Median: stats.Median(vals),
				SD:     stats.SD(vals),
				MAD:    stats.MAD(vals),
			}
			for _, v := range vals {
				if v < ns.Min {
					ns.Min = v
				}
				if v > ns.Max {
					ns.Max = v
				}
			}
			ns.MaxMADScore, _ = stats.MaxMAD(vals)
			ns.LogTransformFits = stats.LogTransformFits(vals)
			p.Numeric = ns
		}
	}
	return p
}

func lengthBucket(n int) int {
	switch {
	case n == 0:
		return 0
	case n <= 5:
		return 1
	case n <= 10:
		return 2
	case n <= 20:
		return 3
	case n <= 40:
		return 4
	default:
		return 5
	}
}

func topCounts(m map[string]int, k int) []ValueCount {
	out := make([]ValueCount, 0, len(m))
	for v, n := range m {
		out = append(out, ValueCount{v, n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// lengthLabels names the histogram buckets.
var lengthLabels = [6]string{"empty", "1-5", "6-10", "11-20", "21-40", "41+"}

// Render prints the profile as an aligned text block with bar-style
// histograms.
func (p Column) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "column %q: %s, %d rows (%d empty), %d distinct (%.1f%% unique)\n",
		p.Name, p.Type, p.Rows, p.Empty, p.Distinct, 100*p.UniquenessRatio)
	if len(p.TopValues) > 0 && p.TopValues[0].Count > 1 {
		b.WriteString("  top values: ")
		parts := make([]string, 0, len(p.TopValues))
		for _, vc := range p.TopValues {
			if vc.Count < 2 {
				break
			}
			parts = append(parts, fmt.Sprintf("%q×%d", vc.Value, vc.Count))
		}
		b.WriteString(strings.Join(parts, ", "))
		b.WriteByte('\n')
	}
	if len(p.Patterns) > 0 {
		b.WriteString("  patterns:   ")
		parts := make([]string, 0, len(p.Patterns))
		for _, vc := range p.Patterns {
			parts = append(parts, fmt.Sprintf("%s×%d", vc.Value, vc.Count))
		}
		b.WriteString(strings.Join(parts, ", "))
		b.WriteByte('\n')
	}
	maxCount := 0
	for _, n := range p.LengthHistogram {
		if n > maxCount {
			maxCount = n
		}
	}
	if maxCount > 0 {
		b.WriteString("  length histogram:\n")
		for i, n := range p.LengthHistogram {
			if n == 0 {
				continue
			}
			bar := strings.Repeat("█", 1+n*24/maxCount)
			fmt.Fprintf(&b, "    %-6s %5d %s\n", lengthLabels[i], n, bar)
		}
	}
	if ns := p.Numeric; ns != nil {
		fmt.Fprintf(&b, "  numeric: n=%d min=%g max=%g mean=%.4g median=%g sd=%.4g mad=%g max-MAD-score=%.2f logfit=%v\n",
			ns.Count, ns.Min, ns.Max, ns.Mean, ns.Median, ns.SD, ns.MAD, ns.MaxMADScore, ns.LogTransformFits)
	}
	return b.String()
}
