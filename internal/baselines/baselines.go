// Package baselines implements the 15 comparison methods of §4.2: the
// simulated commercial Speller (full and address-restricted),
// Fuzzy-Cluster, Word2Vec and GloVe OOV checks, distance-based outliers
// (DBOD), local outlier factor (LOF), Max-MAD and Max-SD, and the five
// constraint-ratio heuristics (unique-row, unique-value,
// unique-projection, conforming-row, conforming-pair).
//
// Every method emits Predictions scored so that *higher* means more
// confidently an error; the evaluation harness ranks them descending, as
// the paper ranks each method by its own confidence score.
package baselines

import (
	"github.com/unidetect/unidetect/internal/table"
)

// Prediction is one ranked error prediction from a baseline method.
type Prediction struct {
	Table  string
	Column string
	Rows   []int
	Values []string
	// Score orders predictions; higher = more confident.
	Score  float64
	Detail string
}

// Method is a baseline error-detection method.
type Method interface {
	// Name returns the method's display name (as used in the figures).
	Name() string
	// Predict emits all predictions for one table.
	Predict(t *table.Table) []Prediction
}

// corpusDeduper is implemented by methods whose corpus-wide prediction
// list should be collapsed to one entry per distinct flagged value
// (speller- and vocabulary-style methods flag every occurrence of the
// same value).
type corpusDeduper interface {
	DedupeCorpusWide() bool
}

// PredictAll runs a method over many tables, applying corpus-wide value
// deduplication when the method asks for it.
func PredictAll(m Method, tables []*table.Table) []Prediction {
	var out []Prediction
	for _, t := range tables {
		out = append(out, m.Predict(t)...)
	}
	if d, ok := m.(corpusDeduper); ok && d.DedupeCorpusWide() {
		out = DedupeByValue(out)
	}
	return out
}

// numericColumn extracts the parsed numbers of a column when it is
// numeric and long enough, mirroring the outlier detectors' eligibility.
func numericColumn(c *table.Column, minRows int) ([]float64, []int, bool) {
	typ := c.Type()
	if typ != table.TypeInt && typ != table.TypeFloat {
		return nil, nil, false
	}
	vals, rows := table.Numbers(c)
	if len(vals) < minRows {
		return nil, nil, false
	}
	return vals, rows, true
}
