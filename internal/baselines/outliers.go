package baselines

import (
	"math"
	"sort"

	"github.com/unidetect/unidetect/internal/stats"
	"github.com/unidetect/unidetect/internal/table"
)

// minNumericRows is the smallest numeric column the outlier baselines
// score, matching the Uni-Detect outlier detector's eligibility.
const minNumericRows = 8

// MaxMAD is Hellerstein's robust-statistics outlier detector [48]: every
// numeric column's most outlying value, ranked by its MAD score.
type MaxMAD struct{}

// Name implements Method.
func (MaxMAD) Name() string { return "Max-MAD" }

// Predict implements Method.
func (MaxMAD) Predict(t *table.Table) []Prediction {
	return dispersionPredict(t, "MAD", stats.MaxMAD)
}

// MaxSD is the classical standard-deviation variant [20].
type MaxSD struct{}

// Name implements Method.
func (MaxSD) Name() string { return "Max-SD" }

// Predict implements Method.
func (MaxSD) Predict(t *table.Table) []Prediction {
	return dispersionPredict(t, "SD", stats.MaxSD)
}

func dispersionPredict(t *table.Table, kind string, score func([]float64) (float64, int)) []Prediction {
	var out []Prediction
	for _, c := range t.Columns {
		vals, rows, ok := numericColumn(c, minNumericRows)
		if !ok {
			continue
		}
		s, arg := score(vals)
		if arg < 0 || math.IsNaN(s) {
			continue
		}
		if math.IsInf(s, 1) {
			// Constant-plus-one columns have undefined dispersion; real
			// MAD/SD tools skip them rather than emit infinite scores.
			continue
		}
		out = append(out, Prediction{
			Table:  t.Name,
			Column: c.Name,
			Rows:   []int{rows[arg]},
			Values: []string{c.Values[rows[arg]]},
			Score:  s,
			Detail: kind + " score",
		})
	}
	return out
}

// DBOD is distance-based outlier detection [57] as described in §4.2: the
// extreme values of each sorted numeric column are scored by their
// normalized gap to the closest neighbour.
type DBOD struct{}

// Name implements Method.
func (DBOD) Name() string { return "DBOD" }

// Predict implements Method.
func (DBOD) Predict(t *table.Table) []Prediction {
	var out []Prediction
	for _, c := range t.Columns {
		vals, rows, ok := numericColumn(c, minNumericRows)
		if !ok {
			continue
		}
		type vr struct {
			v   float64
			row int
		}
		s := make([]vr, len(vals))
		for i := range vals {
			s[i] = vr{vals[i], rows[i]}
		}
		sort.Slice(s, func(i, j int) bool { return s[i].v < s[j].v })
		span := s[len(s)-1].v - s[0].v
		if span <= 0 {
			continue
		}
		lowScore := (s[1].v - s[0].v) / span
		highScore := (s[len(s)-1].v - s[len(s)-2].v) / span
		out = append(out,
			Prediction{Table: t.Name, Column: c.Name, Rows: []int{s[0].row},
				Values: []string{c.Values[s[0].row]}, Score: lowScore, Detail: "DBOD low"},
			Prediction{Table: t.Name, Column: c.Name, Rows: []int{s[len(s)-1].row},
				Values: []string{c.Values[s[len(s)-1].row]}, Score: highScore, Detail: "DBOD high"},
		)
	}
	return out
}

// LOF is the local-outlier-factor method [24] on one-dimensional numeric
// columns: a value's outlier factor compares its local reachability
// density against that of its k nearest neighbours.
type LOF struct {
	// K is the neighbourhood size (default 5).
	K int
}

// Name implements Method.
func (LOF) Name() string { return "LOF" }

// Predict implements Method.
func (l LOF) Predict(t *table.Table) []Prediction {
	k := l.K
	if k <= 0 {
		k = 5
	}
	var out []Prediction
	for _, c := range t.Columns {
		vals, rows, ok := numericColumn(c, minNumericRows)
		if !ok || len(vals) <= k+1 {
			continue
		}
		scores := lof1D(vals, k)
		best, arg := math.Inf(-1), -1
		for i, s := range scores {
			if !math.IsNaN(s) && !math.IsInf(s, 0) && s > best {
				best, arg = s, i
			}
		}
		if arg < 0 {
			continue
		}
		out = append(out, Prediction{
			Table:  t.Name,
			Column: c.Name,
			Rows:   []int{rows[arg]},
			Values: []string{c.Values[rows[arg]]},
			Score:  best,
			Detail: "LOF score",
		})
	}
	return out
}

// lof1D computes standard LOF scores for 1-D data. Sorting makes the
// k-nearest neighbours of any point a contiguous window, so the whole
// computation is O(n·k) after the sort.
func lof1D(vals []float64, k int) []float64 {
	n := len(vals)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
	sorted := make([]float64, n)
	for p, idx := range order {
		sorted[p] = vals[idx]
	}

	// neighbours[p] lists the sorted positions of p's k nearest values.
	neighbours := make([][]int, n)
	kdist := make([]float64, n)
	for p := 0; p < n; p++ {
		lo, hi := p, p
		var ns []int
		for len(ns) < k {
			left := math.Inf(1)
			if lo > 0 {
				left = sorted[p] - sorted[lo-1]
			}
			right := math.Inf(1)
			if hi < n-1 {
				right = sorted[hi+1] - sorted[p]
			}
			if left <= right {
				lo--
				ns = append(ns, lo)
			} else {
				hi++
				ns = append(ns, hi)
			}
		}
		neighbours[p] = ns
		kdist[p] = math.Max(math.Abs(sorted[ns[len(ns)-1]]-sorted[p]), 0)
		for _, q := range ns {
			if d := math.Abs(sorted[q] - sorted[p]); d > kdist[p] {
				kdist[p] = d
			}
		}
	}
	// Local reachability density.
	lrd := make([]float64, n)
	for p := 0; p < n; p++ {
		var sum float64
		for _, q := range neighbours[p] {
			reach := math.Max(kdist[q], math.Abs(sorted[q]-sorted[p]))
			sum += reach
		}
		if sum == 0 {
			lrd[p] = math.Inf(1)
		} else {
			lrd[p] = float64(k) / sum
		}
	}
	// LOF.
	scores := make([]float64, n)
	for p := 0; p < n; p++ {
		var sum float64
		count := 0
		for _, q := range neighbours[p] {
			if math.IsInf(lrd[p], 1) {
				continue
			}
			sum += lrd[q] / lrd[p]
			count++
		}
		pos := 1.0
		if count > 0 {
			pos = sum / float64(count)
		}
		scores[p] = pos
	}
	// Map back to original indices.
	out := make([]float64, n)
	for p, idx := range order {
		out[idx] = scores[p]
	}
	return out
}
