package baselines

import (
	"math"
	"sort"
	"strings"
	"sync"

	"github.com/unidetect/unidetect/internal/strdist"
	"github.com/unidetect/unidetect/internal/table"
	"github.com/unidetect/unidetect/internal/wordlist"
)

// Speller simulates a commercial search-engine spell checker [1, 6]: a
// noisy-channel corrector over a query-log vocabulary whose head is
// dominated by popular web entities. Its table-data failure mode — rare
// but correct values (toponyms, codes mistaken for words, employee
// aliases) "corrected" toward popular near-neighbours — reproduces
// Figure 3 (GAIL→GMAIL, Tulia→Trulia).
type Speller struct {
	// AddressOnly restricts checking to address-like columns (the
	// "Speller (address-only)" variant of §4.2).
	AddressOnly bool

	once    sync.Once
	vocab   map[string]float64 // token -> simulated query-log frequency
	byLen   [][]vocabEntry     // vocab bucketed by word length
	cacheMu sync.Mutex
	cache   map[string]correction // memoized per-token results; guarded by cacheMu
}

type vocabEntry struct {
	word string
	freq float64
}

type correction struct {
	word string
	conf float64
	ok   bool
}

// Name implements Method.
func (s *Speller) Name() string {
	if s.AddressOnly {
		return "Speller(address)"
	}
	return "Speller"
}

// buildVocab assembles the simulated query log: popular entities get
// Zipf-scaled head frequencies, dictionary words a solid middle,
// frequent first names and countries a presence, and a majority — but not
// all — of toponyms a modest tail. Rare toponyms, last names and aliases
// are absent, exactly the mismatch §4.3 diagnoses ("training is based on
// search engine query logs, which are very different from the
// idiosyncratic data we encounter in tables").
func (s *Speller) buildVocab() {
	s.vocab = make(map[string]float64, 4096)
	add := func(w string, f float64) {
		w = strings.ToLower(w)
		if f > s.vocab[w] {
			s.vocab[w] = f
		}
	}
	for i, e := range wordlist.PopularEntities() {
		add(e, 1e9/math.Pow(float64(i+1), 0.8))
	}
	for i, w := range wordlist.English() {
		add(w, 1e7/math.Pow(float64(i+1), 0.3))
	}
	for i, n := range wordlist.FirstNames() {
		if i%3 != 0 { // two thirds of first names are common queries
			add(n, 5e5)
		}
	}
	for _, c := range wordlist.Countries() {
		for _, tok := range strings.Fields(c) {
			add(tok, 1e6)
		}
	}
	for _, c := range wordlist.Cities() {
		if rareToponyms[c] {
			continue // too rare for the query log
		}
		add(c, 2e5)
	}
	// Length-bucketed candidate index: nearest() only scans words within
	// the edit-distance length bound.
	maxLen := 0
	for w := range s.vocab {
		if len(w) > maxLen {
			maxLen = len(w)
		}
	}
	s.byLen = make([][]vocabEntry, maxLen+1)
	for w, f := range s.vocab {
		s.byLen[len(w)] = append(s.byLen[len(w)], vocabEntry{w, f})
	}
	// once.Do already publishes the map, but holding the lock keeps the
	// field's guarded-by contract unconditional.
	s.cacheMu.Lock()
	s.cache = make(map[string]correction)
	s.cacheMu.Unlock()
}

// rareToponyms are the Figure 3-style places a query-log vocabulary has
// never seen, whatever their list position.
var rareToponyms = map[string]bool{
	"Tulia": true, "Tahoka": true, "Throckmorton": true, "Tilden": true,
	"Athenry": true, "Leixlip": true, "Rahway": true, "Kingman": true,
	"Breda": true, "Olden": true, "Tilba": true, "Kinde": true,
	"Werne": true, "Mersin": true, "Brugg": true, "Thun": true,
	"Chur": true, "Uster": true, "Arbon": true, "Selm": true,
	"Lyss": true, "Sarnen": true, "Wohlen": true, "Gander": true,
}

// Predict implements Method. Within a table, one prediction is emitted
// per distinct cell value — a spell service reports a correction for a
// value, not one hit per occurrence.
func (s *Speller) Predict(t *table.Table) []Prediction {
	s.once.Do(s.buildVocab)
	var out []Prediction
	for _, c := range t.Columns {
		if s.AddressOnly && !isAddressColumn(c.Name) {
			continue
		}
		typ := c.Type()
		if typ == table.TypeInt || typ == table.TypeFloat || typ == table.TypeEmpty {
			continue
		}
		seen := map[string]bool{}
		for i, v := range c.Values {
			if seen[v] {
				continue
			}
			seen[v] = true
			if corr, conf, ok := s.correct(v); ok {
				out = append(out, Prediction{
					Table:  t.Name,
					Column: c.Name,
					Rows:   []int{i},
					Values: []string{v},
					Score:  conf,
					Detail: "speller suggests " + corr,
				})
			}
		}
	}
	return out
}

// DedupeByValue collapses predictions sharing the same flagged value to
// the single highest-scored one. The paper's judged ranked lists are
// value-diverse — a corpus-wide scan that repeats "Tulia → Trulia" a
// hundred times is one discovery, not a hundred.
func DedupeByValue(ps []Prediction) []Prediction {
	best := map[string]int{}
	var order []string
	for i, p := range ps {
		key := ""
		if len(p.Values) > 0 {
			key = strings.ToLower(p.Values[0])
		}
		j, ok := best[key]
		if !ok {
			best[key] = i
			order = append(order, key)
			continue
		}
		if p.Score > ps[j].Score {
			best[key] = i
		}
	}
	out := make([]Prediction, 0, len(order))
	for _, k := range order {
		out = append(out, ps[best[k]])
	}
	return out
}

// correct runs the noisy channel on a cell: the first OOV token with a
// close in-vocabulary neighbour yields a correction whose confidence
// scales with the neighbour's frequency and closeness.
func (s *Speller) correct(v string) (string, float64, bool) {
	for _, tok := range strings.Fields(v) {
		tok = strings.Trim(tok, ",.;:()[]\"'")
		if len(tok) < 4 || !lettersOnly(tok) {
			continue
		}
		low := strings.ToLower(tok)
		if _, known := s.vocab[low]; known {
			continue
		}
		if corr, conf, ok := s.nearest(low); ok {
			return corr, conf, true
		}
	}
	return "", 0, false
}

// nearest finds the highest-confidence vocabulary word within edit
// distance 2 (1 for short words), mimicking candidate generation plus
// language-model ranking. Results are memoized per token — idiosyncratic
// table values repeat across tables, and the simulated "service" would
// cache them too.
func (s *Speller) nearest(tok string) (string, float64, bool) {
	s.cacheMu.Lock()
	if c, ok := s.cache[tok]; ok {
		s.cacheMu.Unlock()
		return c.word, c.conf, c.ok
	}
	s.cacheMu.Unlock()

	maxDist := 2
	if len(tok) <= 4 {
		maxDist = 1
	}
	bestWord, bestConf := "", 0.0
	lo, hi := len(tok)-maxDist, len(tok)+maxDist
	if lo < 0 {
		lo = 0
	}
	if hi > len(s.byLen)-1 {
		hi = len(s.byLen) - 1
	}
	for l := lo; l <= hi; l++ {
		for _, e := range s.byLen[l] {
			d, ok := strdist.LevenshteinBounded(tok, e.word, maxDist)
			if !ok || d == 0 {
				continue
			}
			if d == 2 && isAdjacentTransposition(tok, e.word) {
				d = 1 // Damerau-style: a swapped pair is one keystroke slip
			}
			conf := math.Log10(e.freq) / float64(d)
			if conf > bestConf {
				bestConf, bestWord = conf, e.word
			}
		}
	}
	res := correction{bestWord, bestConf, bestWord != ""}
	s.cacheMu.Lock()
	if len(s.cache) < 1<<20 {
		s.cache[tok] = res
	}
	s.cacheMu.Unlock()
	return res.word, res.conf, res.ok
}

// DedupeCorpusWide marks the Speller's corpus-wide output for value
// deduplication (see DedupeByValue).
func (s *Speller) DedupeCorpusWide() bool { return true }

// isAdjacentTransposition reports whether a and b differ by exactly one
// swap of adjacent characters.
func isAdjacentTransposition(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	i := 0
	for i < len(a) && a[i] == b[i] {
		i++
	}
	if i+1 >= len(a) || a[i] != b[i+1] || a[i+1] != b[i] {
		return false
	}
	return a[i+2:] == b[i+2:]
}

func isAddressColumn(name string) bool {
	n := strings.ToLower(name)
	for _, key := range []string{"address", "city", "location"} {
		if strings.Contains(n, key) {
			return true
		}
	}
	return false
}

func lettersOnly(s string) bool {
	for _, r := range s {
		if !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
			return false
		}
	}
	return len(s) > 0
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Embedding simulates the Word2Vec/GloVe baselines of §4.2: a vocabulary
// membership model where out-of-vocabulary tokens are predicted as
// misspelled. GloVe (840B tokens) carries a larger vocabulary than
// Word2Vec (100B), so it is strictly less trigger-happy.
type Embedding struct {
	// Glove selects the larger vocabulary.
	Glove bool

	once  sync.Once
	vocab *wordlist.Set
}

// Name implements Method.
func (e *Embedding) Name() string {
	if e.Glove {
		return "GloVe"
	}
	return "Word2Vec"
}

func (e *Embedding) buildVocab() {
	words := append([]string{}, wordlist.English()...)
	for _, w := range wordlist.English() {
		words = append(words, w+"s", w+"ed", w+"ing")
	}
	words = append(words, wordlist.FirstNames()...)
	words = append(words, wordlist.Countries()...)
	if e.Glove {
		// The bigger corpus has seen most cities and many surnames.
		words = append(words, wordlist.Cities()...)
		ln := wordlist.LastNames()
		words = append(words, ln[:len(ln)*3/4]...)
	}
	e.vocab = wordlist.NewSet(words...)
}

// DedupeCorpusWide marks the Embedding baselines' corpus-wide output for
// value deduplication.
func (e *Embedding) DedupeCorpusWide() bool { return true }

// Predict implements Method.
func (e *Embedding) Predict(t *table.Table) []Prediction {
	e.once.Do(e.buildVocab)
	var out []Prediction
	for _, c := range t.Columns {
		typ := c.Type()
		if typ == table.TypeInt || typ == table.TypeFloat || typ == table.TypeEmpty {
			continue
		}
		seen := map[string]bool{}
		for i, v := range c.Values {
			if seen[v] {
				continue
			}
			seen[v] = true
			for _, tok := range strings.Fields(v) {
				tok = strings.Trim(tok, ",.;:()[]\"'")
				if len(tok) < 4 || !lettersOnly(tok) {
					continue
				}
				if !e.vocab.Contains(tok) {
					out = append(out, Prediction{
						Table:  t.Name,
						Column: c.Name,
						Rows:   []int{i},
						Values: []string{v},
						Score:  float64(len(tok)), // longer OOV tokens rank higher
						Detail: "OOV token " + tok,
					})
					break
				}
			}
		}
	}
	return out
}

// FuzzyCluster simulates the fuzzy-group-by features of OpenRefine and
// Paxata [8, 9]: value pairs within a small edit distance are predicted as
// misspellings, ranked first by distance and then by the length of the
// differing tokens (§4.2).
type FuzzyCluster struct {
	// MaxDist is the largest pair distance reported (default 2).
	MaxDist int
	// MPDCap bounds the exact pair scan per column.
	MPDCap int
}

// Name implements Method.
func (f *FuzzyCluster) Name() string { return "Fuzzy-Cluster" }

// Predict implements Method.
func (f *FuzzyCluster) Predict(t *table.Table) []Prediction {
	maxDist := f.MaxDist
	if maxDist <= 0 {
		maxDist = 2
	}
	var out []Prediction
	for _, c := range t.Columns {
		if c.Type() != table.TypeString {
			// Fingerprint clustering targets text; the paper's users
			// "select an appropriate fingerprint method" which screens
			// out ID/code columns.
			continue
		}
		for _, p := range closePairs(c.Values, maxDist, f.MPDCap) {
			diffLen := strdist.AvgDifferingTokenLen(c.Values[p.I], c.Values[p.J])
			out = append(out, Prediction{
				Table:  t.Name,
				Column: c.Name,
				Rows:   []int{p.I, p.J},
				Values: []string{c.Values[p.I], c.Values[p.J]},
				// distance dominates; longer differing tokens break ties.
				Score:  float64(maxDist-p.Dist+1)*1000 + diffLen,
				Detail: "clustered pair",
			})
		}
	}
	return out
}

// closePairs lists distinct-value pairs within maxDist. Columns beyond
// cap rows use the sorted-neighborhood scan to stay subquadratic.
func closePairs(vals []string, maxDist, cap int) []strdist.Pair {
	if cap <= 0 {
		cap = strdist.ExactMPDCap
	}
	var out []strdist.Pair
	if len(vals) <= cap {
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				if vals[i] == vals[j] {
					continue
				}
				if d, ok := strdist.LevenshteinBounded(vals[i], vals[j], maxDist); ok {
					out = append(out, strdist.Pair{I: i, J: j, Dist: d})
				}
			}
		}
		return out
	}
	// Sorted-neighborhood approximation for very large columns.
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	seen := map[[2]int]bool{}
	for k := 0; k < len(idx); k++ {
		for w := 1; w <= 8 && k+w < len(idx); w++ {
			i, j := idx[k], idx[k+w]
			if vals[i] == vals[j] {
				continue
			}
			if d, ok := strdist.LevenshteinBounded(vals[i], vals[j], maxDist); ok {
				a, b := i, j
				if a > b {
					a, b = b, a
				}
				if !seen[[2]int{a, b}] {
					seen[[2]int{a, b}] = true
					out = append(out, strdist.Pair{I: a, J: b, Dist: d})
				}
			}
		}
	}
	return out
}
