package baselines

import (
	"sort"
	"strings"
	"testing"

	"github.com/unidetect/unidetect/internal/table"
)

func col(name string, vals ...string) *table.Column { return table.NewColumn(name, vals) }

func topPrediction(ps []Prediction) Prediction {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Score > ps[j].Score })
	return ps[0]
}

func TestSpellerCorrectsTypoTowardVocab(t *testing.T) {
	s := &Speller{}
	tbl := table.MustNew("t", col("Title", "water supply", "watre supply", "food supply"))
	ps := s.Predict(tbl)
	if len(ps) == 0 {
		t.Fatal("no predictions")
	}
	p := topPrediction(ps)
	if p.Rows[0] != 1 {
		t.Errorf("flagged row %d, want 1 (watre)", p.Rows[0])
	}
	if !strings.Contains(p.Detail, "water") {
		t.Errorf("Detail = %q", p.Detail)
	}
}

func TestSpellerFalsePositiveOnRareEntities(t *testing.T) {
	s := &Speller{}
	// "Tulia" is a rare toponym; the query-log vocabulary knows "trulia".
	// (Figure 3(b)'s false positive.)
	tbl := table.MustNew("t", col("County Seat", "Tulia", "Tyler", "Dallas"))
	ps := s.Predict(tbl)
	found := false
	for _, p := range ps {
		if p.Values[0] == "Tulia" && strings.Contains(p.Detail, "trulia") {
			found = true
		}
	}
	if !found {
		t.Errorf("speller should mis-correct Tulia -> trulia; got %v", ps)
	}
}

func TestSpellerAddressOnlyRestricts(t *testing.T) {
	s := &Speller{AddressOnly: true}
	tbl := table.MustNew("t",
		col("Name", "Doeling, Kevin"),
		col("City", "Tulia"),
	)
	for _, p := range s.Predict(tbl) {
		if p.Column != "City" {
			t.Errorf("address-only speller predicted on %q", p.Column)
		}
	}
	if s.Name() != "Speller(address)" || (&Speller{}).Name() != "Speller" {
		t.Error("names wrong")
	}
}

func TestSpellerSkipsKnownAndNonWords(t *testing.T) {
	s := &Speller{}
	tbl := table.MustNew("t", col("C", "water", "KV214-310B8K2", "ab"))
	if ps := s.Predict(tbl); len(ps) != 0 {
		t.Errorf("predictions = %v", ps)
	}
}

func TestEmbeddingOOV(t *testing.T) {
	w2v := &Embedding{}
	glove := &Embedding{Glove: true}
	// "Springfield" is in the city gazetteer: GloVe (bigger vocab) knows
	// it, Word2Vec does not.
	tbl := table.MustNew("t", col("C", "Springfield", "water"))
	pw := w2v.Predict(tbl)
	pg := glove.Predict(tbl)
	if len(pw) != 1 || pw[0].Rows[0] != 0 {
		t.Errorf("Word2Vec predictions = %v", pw)
	}
	if len(pg) != 0 {
		t.Errorf("GloVe predictions = %v", pg)
	}
	if w2v.Name() != "Word2Vec" || glove.Name() != "GloVe" {
		t.Error("names wrong")
	}
}

func TestFuzzyClusterPairsAndRanking(t *testing.T) {
	f := &FuzzyCluster{}
	tbl := table.MustNew("t",
		col("A", "Mississippi", "Mississipi", "Ohio", "Texas"),
		col("B", "Super Bowl XXI", "Super Bowl XXII", "Super Bowl XXV", "Super Bowl I"),
	)
	ps := f.Predict(tbl)
	if len(ps) < 2 {
		t.Fatalf("predictions = %v", ps)
	}
	top := topPrediction(ps)
	// The long-token pair should outrank the roman-numeral pair at the
	// same distance.
	if top.Column != "A" {
		t.Errorf("top prediction column = %q, want A (longer differing tokens)", top.Column)
	}
}

func TestFuzzyClusterSkipsIdenticalValues(t *testing.T) {
	f := &FuzzyCluster{}
	tbl := table.MustNew("t", col("A", "same", "same", "same", "other"))
	for _, p := range f.Predict(tbl) {
		if p.Values[0] == p.Values[1] {
			t.Errorf("identical values paired: %v", p)
		}
	}
}

func TestMaxMADPredict(t *testing.T) {
	m := MaxMAD{}
	tbl := table.MustNew("t", col("V", "10", "11", "12", "10", "11", "13", "12", "1000"))
	ps := m.Predict(tbl)
	if len(ps) != 1 {
		t.Fatalf("predictions = %v", ps)
	}
	if ps[0].Rows[0] != 7 {
		t.Errorf("flagged row %d", ps[0].Rows[0])
	}
	if m.Name() != "Max-MAD" {
		t.Error("name")
	}
}

func TestMaxSDLessRobustThanMAD(t *testing.T) {
	tbl := table.MustNew("t", col("V", "10", "11", "12", "10", "11", "13", "12", "1000"))
	mad := MaxMAD{}.Predict(tbl)
	sd := MaxSD{}.Predict(tbl)
	if len(mad) != 1 || len(sd) != 1 {
		t.Fatal("expected one prediction each")
	}
	if mad[0].Score <= sd[0].Score {
		t.Errorf("MAD score %v should exceed SD score %v", mad[0].Score, sd[0].Score)
	}
}

func TestDispersionSkipsConstantColumns(t *testing.T) {
	tbl := table.MustNew("t", col("V", "5", "5", "5", "5", "5", "5", "5", "6"))
	// MAD is 0 here; infinite scores must be skipped, not ranked first.
	if ps := (MaxMAD{}).Predict(tbl); len(ps) != 0 {
		t.Errorf("constant column predicted: %v", ps)
	}
}

func TestDBOD(t *testing.T) {
	d := DBOD{}
	tbl := table.MustNew("t", col("V", "1", "2", "3", "4", "5", "6", "7", "100"))
	ps := d.Predict(tbl)
	if len(ps) != 2 {
		t.Fatalf("predictions = %v", ps)
	}
	top := topPrediction(ps)
	if top.Values[0] != "100" {
		t.Errorf("top = %v", top)
	}
}

func TestLOF(t *testing.T) {
	l := LOF{K: 3}
	tbl := table.MustNew("t", col("V", "1", "1.1", "0.9", "1.05", "0.95", "1.02", "0.98", "50"))
	ps := l.Predict(tbl)
	if len(ps) != 1 {
		t.Fatalf("predictions = %v", ps)
	}
	if ps[0].Values[0] != "50" {
		t.Errorf("LOF flagged %v", ps[0])
	}
	if ps[0].Score <= 1 {
		t.Errorf("LOF score = %v, want > 1 for an outlier", ps[0].Score)
	}
}

func TestUniqueRowRatio(t *testing.T) {
	u := UniqueRowRatio{}
	tbl := table.MustNew("t", col("ID", "a", "b", "c", "d", "e", "e"))
	ps := u.Predict(tbl)
	if len(ps) != 1 {
		t.Fatalf("predictions = %v", ps)
	}
	if ps[0].Score != 5.0/6.0 {
		t.Errorf("Score = %v", ps[0].Score)
	}
	if len(ps[0].Rows) != 2 || ps[0].Rows[0] != 4 || ps[0].Rows[1] != 5 {
		t.Errorf("Rows = %v", ps[0].Rows)
	}
	// Fully unique columns produce nothing.
	tbl2 := table.MustNew("t", col("ID", "a", "b", "c", "d", "e", "f"))
	if ps := u.Predict(tbl2); len(ps) != 0 {
		t.Errorf("unique column predicted: %v", ps)
	}
}

func TestUniqueValueRatio(t *testing.T) {
	u := UniqueValueRatio{}
	// 5 distinct values, 4 singletons: ratio 0.8.
	tbl := table.MustNew("t", col("ID", "a", "b", "c", "d", "e", "e"))
	ps := u.Predict(tbl)
	if len(ps) != 1 || ps[0].Score != 0.8 {
		t.Fatalf("predictions = %v", ps)
	}
}

func TestUniqueProjectionRatio(t *testing.T) {
	u := UniqueProjectionRatio{}
	tbl := table.MustNew("t",
		col("City", "Paris", "Lyon", "Paris", "Nice", "Lyon", "Paris"),
		col("Country", "France", "France", "France", "France", "France", "Italy"),
	)
	ps := u.Predict(tbl)
	var found *Prediction
	for i := range ps {
		if ps[i].Column == "City→Country" {
			found = &ps[i]
		}
	}
	if found == nil {
		t.Fatalf("no City→Country prediction in %v", ps)
	}
	// |π_X| = 3, |π_XY| = 4.
	if found.Score != 0.75 {
		t.Errorf("Score = %v", found.Score)
	}
	if len(found.Rows) != 3 {
		t.Errorf("Rows = %v (the Paris group)", found.Rows)
	}
}

func TestConformingRowRatio(t *testing.T) {
	c := ConformingRowRatio{}
	tbl := table.MustNew("t",
		col("City", "Paris", "Lyon", "Paris", "Nice", "Lyon", "Paris"),
		col("Country", "France", "France", "France", "France", "France", "Italy"),
	)
	ps := c.Predict(tbl)
	var found *Prediction
	for i := range ps {
		if ps[i].Column == "City→Country" {
			found = &ps[i]
		}
	}
	if found == nil {
		t.Fatal("no prediction")
	}
	// 3 Paris rows violate: 3/6 conforming.
	if found.Score != 0.5 {
		t.Errorf("Score = %v", found.Score)
	}
}

func TestConformingPairRatio(t *testing.T) {
	c := ConformingPairRatio{}
	tbl := table.MustNew("t",
		col("X", "a", "a", "b", "b", "c", "c"),
		col("Y", "1", "2", "3", "3", "4", "4"),
	)
	ps := c.Predict(tbl)
	if len(ps) == 0 {
		t.Fatal("no predictions")
	}
	var found *Prediction
	for i := range ps {
		if ps[i].Column == "X→Y" {
			found = &ps[i]
		}
	}
	if found == nil {
		t.Fatal("no X→Y prediction")
	}
	// Violating ordered pairs: (0,1) and (1,0) → 2 of 36.
	want := 1 - 2.0/36.0
	if found.Score != want {
		t.Errorf("Score = %v, want %v", found.Score, want)
	}
}

func TestDedupeByValue(t *testing.T) {
	ps := []Prediction{
		{Table: "a", Values: []string{"Tulia"}, Score: 5},
		{Table: "b", Values: []string{"Tulia"}, Score: 9},
		{Table: "c", Values: []string{"tulia"}, Score: 3}, // case folds together
		{Table: "d", Values: []string{"Other"}, Score: 1},
	}
	got := DedupeByValue(ps)
	if len(got) != 2 {
		t.Fatalf("deduped = %v", got)
	}
	if got[0].Table != "b" || got[0].Score != 9 {
		t.Errorf("kept %v, want the highest-scored Tulia", got[0])
	}
	if got[1].Values[0] != "Other" {
		t.Errorf("second = %v", got[1])
	}
}

func TestPredictAllDedupesSpeller(t *testing.T) {
	s := &Speller{}
	tbls := []*table.Table{
		table.MustNew("t1", col("City", "Tulia", "Paris", "Oslo")),
		table.MustNew("t2", col("City", "Tulia", "Rome", "Bern")),
	}
	ps := PredictAll(s, tbls)
	seen := 0
	for _, p := range ps {
		if p.Values[0] == "Tulia" {
			seen++
		}
	}
	if seen != 1 {
		t.Errorf("Tulia predicted %d times after corpus-wide dedupe", seen)
	}
}

func TestPredictAll(t *testing.T) {
	tbls := []*table.Table{
		table.MustNew("t1", col("V", "1", "2", "3", "4", "5", "6", "7", "1000")),
		table.MustNew("t2", col("V", "1", "2", "3", "4", "5", "6", "7", "2000")),
	}
	ps := PredictAll(MaxMAD{}, tbls)
	if len(ps) != 2 {
		t.Errorf("predictions = %d", len(ps))
	}
}
