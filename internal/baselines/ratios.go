package baselines

import (
	"sort"

	"github.com/unidetect/unidetect/internal/table"
)

// minRatioRows is the smallest column the constraint-ratio baselines
// score.
const minRatioRows = 6

// UniqueRowRatio detects approximate uniqueness constraints [37]: columns
// whose distinct/total ratio is close to (but below) 1 are flagged, with
// the duplicated rows as the predicted errors.
type UniqueRowRatio struct{}

// Name implements Method.
func (UniqueRowRatio) Name() string { return "Unique-row-ratio" }

// Predict implements Method.
func (UniqueRowRatio) Predict(t *table.Table) []Prediction {
	var out []Prediction
	for _, c := range t.Columns {
		n := c.Len()
		if n < minRatioRows || c.Type() == table.TypeEmpty {
			continue
		}
		dupRows, distinct := dupInfo(c.Values)
		if len(dupRows) == 0 {
			continue // already unique: nothing to flag
		}
		ratio := float64(distinct) / float64(n)
		out = append(out, Prediction{
			Table:  t.Name,
			Column: c.Name,
			Rows:   dupRows,
			Values: valuesAt(c, dupRows),
			Score:  ratio,
			Detail: "unique-row-ratio",
		})
	}
	return out
}

// UniqueValueRatio is the [48] refinement: the ratio of frequency-one
// values to distinct values, robust to a few high-frequency values.
type UniqueValueRatio struct{}

// Name implements Method.
func (UniqueValueRatio) Name() string { return "Unique-value-ratio" }

// Predict implements Method.
func (UniqueValueRatio) Predict(t *table.Table) []Prediction {
	var out []Prediction
	for _, c := range t.Columns {
		n := c.Len()
		if n < minRatioRows || c.Type() == table.TypeEmpty {
			continue
		}
		freq := map[string]int{}
		for _, v := range c.Values {
			freq[v]++
		}
		distinct := len(freq)
		singletons := 0
		for _, f := range freq {
			if f == 1 {
				singletons++
			}
		}
		if singletons == distinct || distinct == 0 {
			continue // fully unique
		}
		dupRows, _ := dupInfo(c.Values)
		out = append(out, Prediction{
			Table:  t.Name,
			Column: c.Name,
			Rows:   dupRows,
			Values: valuesAt(c, dupRows),
			Score:  float64(singletons) / float64(distinct),
			Detail: "unique-value-ratio",
		})
	}
	return out
}

// UniqueProjectionRatio detects approximate FDs via |π_X(T)|/|π_XY(T)|
// [53]; pairs close to (but below) 1 are flagged with their violating
// group rows.
type UniqueProjectionRatio struct {
	// MaxPairs caps the column pairs per table.
	MaxPairs int
}

// Name implements Method.
func (UniqueProjectionRatio) Name() string { return "Unique-projection-ratio" }

// Predict implements Method.
func (u UniqueProjectionRatio) Predict(t *table.Table) []Prediction {
	return fdRatioPredict(t, u.MaxPairs, "unique-projection-ratio",
		func(lhs, rhs []string) (float64, bool) {
			x := map[string]bool{}
			xy := map[[2]string]bool{}
			for i := range lhs {
				x[lhs[i]] = true
				xy[[2]string{lhs[i], rhs[i]}] = true
			}
			if len(xy) == 0 {
				return 0, false
			}
			return float64(len(x)) / float64(len(xy)), true
		})
}

// ConformingRowRatio detects approximate FDs by the fraction of rows
// conforming to the dependency [56].
type ConformingRowRatio struct {
	MaxPairs int
}

// Name implements Method.
func (ConformingRowRatio) Name() string { return "Conforming-row-ratio" }

// Predict implements Method.
func (c ConformingRowRatio) Predict(t *table.Table) []Prediction {
	return fdRatioPredict(t, c.MaxPairs, "conforming-row-ratio",
		func(lhs, rhs []string) (float64, bool) {
			conf, total := conformingRows(lhs, rhs)
			if total == 0 {
				return 0, false
			}
			return float64(conf) / float64(total), true
		})
}

// ConformingPairRatio detects approximate FDs by the fraction of row
// pairs conforming to the dependency [56].
type ConformingPairRatio struct {
	MaxPairs int
}

// Name implements Method.
func (ConformingPairRatio) Name() string { return "Conforming-pair-ratio" }

// Predict implements Method.
func (c ConformingPairRatio) Predict(t *table.Table) []Prediction {
	return fdRatioPredict(t, c.MaxPairs, "conforming-pair-ratio",
		func(lhs, rhs []string) (float64, bool) {
			n := len(lhs)
			if n == 0 {
				return 0, false
			}
			// Violating pairs share lhs but differ in rhs; count via
			// group sizes instead of the O(n²) double loop.
			groups := map[string]map[string]int{}
			for i := range lhs {
				g := groups[lhs[i]]
				if g == nil {
					g = map[string]int{}
					groups[lhs[i]] = g
				}
				g[rhs[i]]++
			}
			violating := 0
			for _, g := range groups {
				size := 0
				sq := 0
				for _, cnt := range g {
					size += cnt
					sq += cnt * cnt
				}
				violating += size*size - sq
			}
			total := n * n
			return 1 - float64(violating)/float64(total), true
		})
}

// fdRatioPredict shares the pair enumeration and violating-row extraction
// of the three FD-ratio baselines.
func fdRatioPredict(t *table.Table, maxPairs int, detail string,
	ratio func(lhs, rhs []string) (float64, bool)) []Prediction {
	if maxPairs <= 0 {
		maxPairs = 30
	}
	n := t.NumRows()
	if n < minRatioRows {
		return nil
	}
	var out []Prediction
	pairs := 0
	for li, lc := range t.Columns {
		for ri, rc := range t.Columns {
			if li == ri {
				continue
			}
			if pairs >= maxPairs {
				return out
			}
			pairs++
			r, ok := ratio(lc.Values, rc.Values)
			if !ok || r >= 1 || r <= 0 {
				continue // exact FD or no dependency signal
			}
			rows := violatingGroupRows(lc.Values, rc.Values)
			if len(rows) == 0 {
				continue
			}
			vals := make([]string, len(rows))
			for k, row := range rows {
				vals[k] = lc.Values[row] + "/" + rc.Values[row]
			}
			out = append(out, Prediction{
				Table:  t.Name,
				Column: lc.Name + "→" + rc.Name,
				Rows:   rows,
				Values: vals,
				Score:  r,
				Detail: detail,
			})
		}
	}
	return out
}

func conformingRows(lhs, rhs []string) (conforming, total int) {
	groups := map[string]map[string]bool{}
	for i := range lhs {
		g := groups[lhs[i]]
		if g == nil {
			g = map[string]bool{}
			groups[lhs[i]] = g
		}
		g[rhs[i]] = true
	}
	for i := range lhs {
		total++
		if len(groups[lhs[i]]) == 1 {
			conforming++
		}
	}
	return conforming, total
}

// violatingGroupRows returns all rows belonging to lhs groups with more
// than one rhs value.
func violatingGroupRows(lhs, rhs []string) []int {
	groups := map[string]map[string]bool{}
	for i := range lhs {
		g := groups[lhs[i]]
		if g == nil {
			g = map[string]bool{}
			groups[lhs[i]] = g
		}
		g[rhs[i]] = true
	}
	var rows []int
	for i := range lhs {
		if len(groups[lhs[i]]) > 1 {
			rows = append(rows, i)
		}
	}
	return rows
}

func dupInfo(vals []string) (dupRows []int, distinct int) {
	first := map[string]int{}
	flagged := map[string]bool{}
	for i, v := range vals {
		if j, seen := first[v]; seen {
			if !flagged[v] {
				flagged[v] = true
				dupRows = append(dupRows, j)
			}
			dupRows = append(dupRows, i)
		} else {
			first[v] = i
		}
	}
	distinct = len(first)
	sort.Ints(dupRows)
	return dupRows, distinct
}

func valuesAt(c *table.Column, rows []int) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = c.Values[r]
	}
	return out
}
