// Package eval implements the paper's evaluation protocol (§4.3): every
// method emits a ranked list of predicted errors, the top-K predictions
// are judged against ground truth, and quality is reported as
// Precision@K. The paper judges by hand; we judge mechanically against
// the error injector's labels.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"github.com/unidetect/unidetect/internal/baselines"
	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/stats"
)

// Item is one ranked prediction, method-agnostic.
type Item struct {
	Table  string
	Column string
	Rows   []int
}

// Labels indexes ground-truth error cells, optionally restricted to
// specific classes.
type Labels struct {
	cells map[string]map[int]bool // "table\x00column" -> rows
	n     int
}

// NewLabels indexes labels; when classes is non-empty only those classes
// are retained.
func NewLabels(ls []datagen.Label, classes ...datagen.ErrorClass) *Labels {
	keep := map[datagen.ErrorClass]bool{}
	for _, c := range classes {
		keep[c] = true
	}
	out := &Labels{cells: map[string]map[int]bool{}}
	for _, l := range ls {
		if len(classes) > 0 && !keep[l.Class] {
			continue
		}
		k := l.Table + "\x00" + l.Column
		if out.cells[k] == nil {
			out.cells[k] = map[int]bool{}
		}
		out.cells[k][l.Row] = true
		out.n++
	}
	return out
}

// Len returns the number of indexed label cells.
func (l *Labels) Len() int { return l.n }

// Matches reports whether any flagged row of the item coincides with a
// labeled cell. Column names of the form "Lhs→Rhs" match labels on either
// side, because an FD prediction flags a row of the pair.
func (l *Labels) Matches(it Item) bool {
	cols := []string{it.Column}
	if i := strings.Index(it.Column, "→"); i >= 0 {
		cols = []string{it.Column[:i], it.Column[i+len("→"):]}
	}
	for _, col := range cols {
		rows := l.cells[it.Table+"\x00"+col]
		if rows == nil {
			continue
		}
		for _, r := range it.Rows {
			if rows[r] {
				return true
			}
		}
	}
	return false
}

// PrecisionAtK computes precision at each K over a ranked item list. When
// fewer than K predictions exist, precision is computed over what exists
// (the paper's judges can only label what a method produces).
func PrecisionAtK(items []Item, labels *Labels, ks []int) []float64 {
	out := make([]float64, len(ks))
	hitsPrefix := make([]int, len(items)+1)
	for i, it := range items {
		hitsPrefix[i+1] = hitsPrefix[i]
		if labels.Matches(it) {
			hitsPrefix[i+1]++
		}
	}
	for i, k := range ks {
		n := k
		if n > len(items) {
			n = len(items)
		}
		if n == 0 {
			out[i] = 0
			continue
		}
		out[i] = float64(hitsPrefix[n]) / float64(n)
	}
	return out
}

// RecallAtK returns the fraction of distinct labeled cells matched by the
// top-K predictions. The paper's APR discussion (§1) argues automated
// detection should maximize precision and take whatever recall comes
// "for free"; this measures that free recall.
func RecallAtK(items []Item, labels *Labels, k int) float64 {
	if labels.n == 0 {
		return 0
	}
	if k > len(items) {
		k = len(items)
	}
	hit := map[string]bool{}
	for _, it := range items[:k] {
		cols := []string{it.Column}
		if i := strings.Index(it.Column, "→"); i >= 0 {
			cols = []string{it.Column[:i], it.Column[i+len("→"):]}
		}
		for _, col := range cols {
			key := it.Table + "\x00" + col
			rows := labels.cells[key]
			if rows == nil {
				continue
			}
			for _, r := range it.Rows {
				if rows[r] {
					hit[fmt.Sprintf("%s\x00%d", key, r)] = true
				}
			}
		}
	}
	return float64(len(hit)) / float64(labels.n)
}

// FromFindings converts Uni-Detect findings (already LR-ranked ascending)
// of the given classes to ranked items.
func FromFindings(fs []core.Finding, classes ...core.Class) []Item {
	keep := map[core.Class]bool{}
	for _, c := range classes {
		keep[c] = true
	}
	var out []Item
	for _, f := range fs {
		if len(classes) > 0 && !keep[f.Class] {
			continue
		}
		out = append(out, Item{Table: f.Table, Column: f.Column, Rows: f.Rows})
	}
	return out
}

// FromBaseline ranks baseline predictions by descending score (ties broken
// deterministically) and converts them to items.
func FromBaseline(ps []baselines.Prediction) []Item {
	sorted := append([]baselines.Prediction(nil), ps...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if !stats.SameFloat(a.Score, b.Score) {
			return a.Score > b.Score
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if len(a.Rows) > 0 && len(b.Rows) > 0 {
			return a.Rows[0] < b.Rows[0]
		}
		return len(a.Rows) < len(b.Rows)
	})
	out := make([]Item, len(sorted))
	for i, p := range sorted {
		out[i] = Item{Table: p.Table, Column: p.Column, Rows: p.Rows}
	}
	return out
}

// Ks returns the paper's x-axis: K = 10, 20, ..., 100.
func Ks() []int {
	ks := make([]int, 10)
	for i := range ks {
		ks[i] = (i + 1) * 10
	}
	return ks
}
