package eval

import (
	"reflect"
	"testing"

	"github.com/unidetect/unidetect/internal/baselines"
	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/datagen"
)

func TestLabelsMatch(t *testing.T) {
	ls := NewLabels([]datagen.Label{
		{Table: "t1", Column: "c1", Row: 3, Class: datagen.ClassSpelling},
		{Table: "t1", Column: "c2", Row: 0, Class: datagen.ClassOutlier},
	})
	if ls.Len() != 2 {
		t.Errorf("Len = %d", ls.Len())
	}
	cases := []struct {
		it   Item
		want bool
	}{
		{Item{"t1", "c1", []int{3}}, true},
		{Item{"t1", "c1", []int{1, 3}}, true},
		{Item{"t1", "c1", []int{4}}, false},
		{Item{"t2", "c1", []int{3}}, false},
		{Item{"t1", "c2", []int{0}}, true},
		{Item{"t1", "c1→c2", []int{0}}, true},  // rhs side matches
		{Item{"t1", "c3→c1", []int{3}}, true},  // lhs-referenced rhs... both sides checked
		{Item{"t1", "c3→c4", []int{3}}, false}, // neither side labeled
	}
	for _, c := range cases {
		if got := ls.Matches(c.it); got != c.want {
			t.Errorf("Matches(%+v) = %v, want %v", c.it, got, c.want)
		}
	}
}

func TestLabelsClassFilter(t *testing.T) {
	all := []datagen.Label{
		{Table: "t", Column: "c", Row: 1, Class: datagen.ClassSpelling},
		{Table: "t", Column: "c", Row: 2, Class: datagen.ClassOutlier},
	}
	sp := NewLabels(all, datagen.ClassSpelling)
	if sp.Len() != 1 {
		t.Errorf("Len = %d", sp.Len())
	}
	if sp.Matches(Item{"t", "c", []int{2}}) {
		t.Error("outlier label should be filtered out")
	}
	if !sp.Matches(Item{"t", "c", []int{1}}) {
		t.Error("spelling label should match")
	}
}

func TestPrecisionAtK(t *testing.T) {
	ls := NewLabels([]datagen.Label{
		{Table: "t", Column: "c", Row: 0},
		{Table: "t", Column: "c", Row: 2},
	})
	items := []Item{
		{"t", "c", []int{0}}, // hit
		{"t", "c", []int{9}}, // miss
		{"t", "c", []int{2}}, // hit
		{"t", "c", []int{7}}, // miss
	}
	got := PrecisionAtK(items, ls, []int{1, 2, 4, 100})
	want := []float64{1, 0.5, 0.5, 0.5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PrecisionAtK = %v, want %v", got, want)
	}
	if got := PrecisionAtK(nil, ls, []int{10}); got[0] != 0 {
		t.Errorf("empty items precision = %v", got)
	}
}

func TestRecallAtK(t *testing.T) {
	ls := NewLabels([]datagen.Label{
		{Table: "t", Column: "c", Row: 0},
		{Table: "t", Column: "c", Row: 2},
		{Table: "t", Column: "c", Row: 9},
	})
	items := []Item{
		{"t", "c", []int{0}},
		{"t", "c", []int{5}},
		{"t", "c", []int{2}},
	}
	if got := RecallAtK(items, ls, 1); got != 1.0/3 {
		t.Errorf("Recall@1 = %v", got)
	}
	if got := RecallAtK(items, ls, 3); got != 2.0/3 {
		t.Errorf("Recall@3 = %v", got)
	}
	if got := RecallAtK(items, ls, 100); got != 2.0/3 {
		t.Errorf("Recall@100 = %v", got)
	}
	// Duplicate hits of the same label count once.
	dup := []Item{{"t", "c", []int{0}}, {"t", "c", []int{0}}}
	if got := RecallAtK(dup, ls, 2); got != 1.0/3 {
		t.Errorf("dup Recall = %v", got)
	}
	if RecallAtK(items, NewLabels(nil), 3) != 0 {
		t.Error("empty labels recall must be 0")
	}
}

func TestFromFindingsFiltersAndPreservesOrder(t *testing.T) {
	fs := []core.Finding{
		{Class: core.ClassSpelling, Table: "a", Column: "x", Rows: []int{1}},
		{Class: core.ClassOutlier, Table: "b", Column: "y", Rows: []int{2}},
		{Class: core.ClassSpelling, Table: "c", Column: "z", Rows: []int{3}},
	}
	items := FromFindings(fs, core.ClassSpelling)
	if len(items) != 2 || items[0].Table != "a" || items[1].Table != "c" {
		t.Errorf("items = %v", items)
	}
	if got := FromFindings(fs); len(got) != 3 {
		t.Errorf("unfiltered = %v", got)
	}
}

func TestFromBaselineRanksByScore(t *testing.T) {
	ps := []baselines.Prediction{
		{Table: "low", Score: 1},
		{Table: "high", Score: 10},
		{Table: "mid", Score: 5},
	}
	items := FromBaseline(ps)
	if items[0].Table != "high" || items[1].Table != "mid" || items[2].Table != "low" {
		t.Errorf("items = %v", items)
	}
}

func TestFromBaselineDeterministicTies(t *testing.T) {
	ps := []baselines.Prediction{
		{Table: "b", Column: "x", Rows: []int{2}, Score: 1},
		{Table: "a", Column: "x", Rows: []int{1}, Score: 1},
		{Table: "a", Column: "x", Rows: []int{0}, Score: 1},
	}
	items := FromBaseline(ps)
	if items[0].Table != "a" || items[0].Rows[0] != 0 || items[2].Table != "b" {
		t.Errorf("items = %v", items)
	}
}

func TestKs(t *testing.T) {
	ks := Ks()
	if len(ks) != 10 || ks[0] != 10 || ks[9] != 100 {
		t.Errorf("Ks = %v", ks)
	}
}
