package eval

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"github.com/unidetect/unidetect/internal/datagen"
)

// goldenCurve is the testdata/pr_curve.json schema: exact fractions, so
// the comparison below is bit-exact rather than tolerance-based.
type goldenCurve struct {
	Ks        []int    `json:"ks"`
	Precision [][2]int `json:"precision"`
	Recall    [][2]int `json:"recall"`
}

// goldenLabels is the fixture's ground truth: five labeled cells across
// two tables, spanning spelling, uniqueness, outlier and FD classes.
func goldenLabels() *Labels {
	return NewLabels([]datagen.Label{
		{Table: "t1", Column: "name", Row: 2, Class: datagen.ClassSpelling},
		{Table: "t1", Column: "name", Row: 5, Class: datagen.ClassSpelling},
		{Table: "t1", Column: "id", Row: 0, Class: datagen.ClassUniqueness},
		{Table: "t2", Column: "price", Row: 3, Class: datagen.ClassOutlier},
		{Table: "t2", Column: "country", Row: 4, Class: datagen.ClassFD},
	})
}

// goldenItems is the fixture's ranked prediction list. The hit pattern
// is chosen to exercise every Matches edge the curve code leans on:
// multi-row items, FD-arrow columns matching via their right side, a
// duplicate hit (precision counts it, recall must not), and a lhs-only
// column that must NOT match an rhs label.
func goldenItems() []Item {
	return []Item{
		{Table: "t1", Column: "name", Rows: []int{2}},         // hit: name/2
		{Table: "t1", Column: "id", Rows: []int{0, 7}},        // hit: id/0 via multi-row
		{Table: "t2", Column: "price", Rows: []int{9}},        // miss: unlabeled row
		{Table: "t2", Column: "city→country", Rows: []int{4}}, // hit: country/4 via FD rhs
		{Table: "t1", Column: "name", Rows: []int{5}},         // hit: name/5
		{Table: "t3", Column: "x", Rows: []int{1}},            // miss: unlabeled table
		{Table: "t1", Column: "name", Rows: []int{2}},         // duplicate hit of name/2
		{Table: "t2", Column: "price", Rows: []int{3}},        // hit: price/3
		{Table: "t1", Column: "id", Rows: []int{9}},           // miss: unlabeled row
		{Table: "t2", Column: "city", Rows: []int{4}},         // miss: label is on "country"
	}
}

// TestPRCurveGolden pins the full precision/recall curve of the
// hand-checked fixture to testdata/pr_curve.json. Every expected value
// in the file was computed by hand from the comments above; a change in
// Matches, PrecisionAtK or RecallAtK semantics shows up as a fraction
// mismatch at a specific K.
func TestPRCurveGolden(t *testing.T) {
	raw, err := os.ReadFile("testdata/pr_curve.json")
	if err != nil {
		t.Fatal(err)
	}
	var want goldenCurve
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want.Ks) != len(want.Precision) || len(want.Ks) != len(want.Recall) {
		t.Fatalf("malformed golden file: %d ks, %d precision, %d recall",
			len(want.Ks), len(want.Precision), len(want.Recall))
	}

	labels := goldenLabels()
	items := goldenItems()
	if labels.Len() != 5 {
		t.Fatalf("fixture labels = %d, want 5", labels.Len())
	}

	gotPrec := PrecisionAtK(items, labels, want.Ks)
	for i, k := range want.Ks {
		wantP := float64(want.Precision[i][0]) / float64(want.Precision[i][1])
		if math.Float64bits(gotPrec[i]) != math.Float64bits(wantP) {
			t.Errorf("precision@%d = %v, want %d/%d", k, gotPrec[i], want.Precision[i][0], want.Precision[i][1])
		}
		wantR := float64(want.Recall[i][0]) / float64(want.Recall[i][1])
		gotR := RecallAtK(items, labels, k)
		if math.Float64bits(gotR) != math.Float64bits(wantR) {
			t.Errorf("recall@%d = %v, want %d/%d", k, gotR, want.Recall[i][0], want.Recall[i][1])
		}
	}
}

// TestPRCurveMonotoneRecall asserts the structural property the golden
// values exhibit: recall never decreases with K, and precision at the
// list's end equals total hits over list length.
func TestPRCurveMonotoneRecall(t *testing.T) {
	labels := goldenLabels()
	items := goldenItems()
	prev := 0.0
	for k := 1; k <= len(items); k++ {
		r := RecallAtK(items, labels, k)
		if r < prev {
			t.Fatalf("recall@%d = %v < recall@%d = %v", k, r, k-1, prev)
		}
		prev = r
	}
	hits := 0
	for _, it := range items {
		if labels.Matches(it) {
			hits++
		}
	}
	tail := PrecisionAtK(items, labels, []int{len(items)})[0]
	if want := float64(hits) / float64(len(items)); tail != want {
		t.Fatalf("precision@len = %v, want %v", tail, want)
	}
}
