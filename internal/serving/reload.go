package serving

// reload.go implements POST /v1/reload: atomic model hot-swap. The new
// model is built (loaded from disk, merged from several shard files, or
// trained on a fresh synthetic corpus) entirely off the request path —
// only after it is fully built and warmed does a single atomic pointer
// store make it the serving model. Requests in flight at that instant
// finish on the model they started with (they loaded the old handle at
// entry); every later request sees the new one. The daemon never serves
// a half-built model and never blocks detection on a reload.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"

	"github.com/unidetect/unidetect"
)

// reloadRequest selects the replacement model. With Model/Models set,
// the named files are loaded (and merged, when several); otherwise a
// synthetic corpus of Tables tables (default: the daemon's -tables) is
// trained with Seed. An empty body is valid and means "retrain the
// default synthetic model".
type reloadRequest struct {
	// Model is one trained model file to load.
	Model string `json:"model,omitempty"`
	// Models are several partial-model files to load and merge — the
	// serving end of sharded training (core.TrainSharded writes the
	// shards, this folds them).
	Models []string `json:"models,omitempty"`
	// Tables is the synthetic corpus size when no files are named.
	Tables int `json:"tables,omitempty"`
	// Seed drives synthetic corpus generation (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// reloadResponse reports the swap the daemon performed.
type reloadResponse struct {
	ModelVersion int64 `json:"model_version"`
	CorpusTables int   `json:"corpus_tables"`
}

// handleReload serves POST /v1/reload. Concurrent reloads do not queue:
// the second one is refused with 409 while the first is still building,
// so a retry storm cannot stack unbounded model builds.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON reload spec", http.StatusMethodNotAllowed)
		return
	}
	if !s.reloadMu.TryLock() {
		http.Error(w, "a reload is already in progress", http.StatusConflict)
		return
	}
	defer s.reloadMu.Unlock()

	var req reloadRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, "bad reload spec: "+err.Error(), http.StatusBadRequest)
		return
	}

	model, err := s.buildModel(r.Context(), req)
	if err != nil {
		s.logf("unidetectd: reload failed: %v", err)
		http.Error(w, "reload failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	// Warm the fast-path index and caches now, off the detect path, so
	// the first request on the new model pays no lazy-build latency.
	model.Warm()

	old := s.handle.Load()
	next := &modelHandle{model: model, version: old.version + 1}
	s.handle.Store(next)
	s.m.reloads.Inc()
	s.m.modelVersion.Set(next.version)
	s.logf("unidetectd: model v%d serving (corpus of %d tables); v%d retired",
		next.version, model.CorpusTables(), old.version)
	s.writeJSON(w, reloadResponse{
		ModelVersion: next.version,
		CorpusTables: model.CorpusTables(),
	})
}

// buildModel constructs the replacement model a reload request asks
// for. All returned models carry the server's registry, so prediction
// metrics keep flowing across swaps.
func (s *Server) buildModel(ctx context.Context, req reloadRequest) (*unidetect.Model, error) {
	opts := &unidetect.Options{Obs: s.reg}
	paths := req.Models
	if req.Model != "" {
		paths = append([]string{req.Model}, paths...)
	}
	if len(paths) > 0 {
		var merged *unidetect.Model
		for _, path := range paths {
			m, err := loadModelFile(path, opts)
			if err != nil {
				return nil, err
			}
			if merged == nil {
				merged = m
				continue
			}
			if merged, err = unidetect.Merge(merged, m); err != nil {
				return nil, fmt.Errorf("merge %s: %w", path, err)
			}
		}
		return merged, nil
	}
	tables := req.Tables
	if tables <= 0 {
		tables = s.cfg.SyntheticTables
	}
	if tables <= 0 {
		tables = 2000
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	s.logf("unidetectd: reload training synthetic model on %d tables (seed %d)...", tables, seed)
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, tables, seed)
	return unidetect.Train(ctx, bg, opts)
}

// loadModelFile reads one serialized model from disk.
func loadModelFile(path string, opts *unidetect.Options) (*unidetect.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := unidetect.Load(f, opts)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return m, nil
}
