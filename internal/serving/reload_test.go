package serving

// reload_test.go is the black-box hot-swap acceptance test: a real
// HTTP server under concurrent detect load while models are swapped
// through /v1/reload. Zero requests may fail, the advertised model
// version must climb monotonically in the /metrics exposition, and
// after the last swap the served findings must match what the new
// model produces when queried directly.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/unidetect/unidetect"
	"github.com/unidetect/unidetect/internal/testkit"
)

func TestReloadHotSwap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInFlight = 256
	cfg.SyntheticTables = 120
	d := testkit.StartDaemon(t, newHandler(t, testModel(t), cfg))
	client := d.Client()

	// Concurrent detect load for the whole swap sequence. Every request
	// must succeed: a swap may never surface as an error, a dropped
	// request, or a torn response.
	var (
		stop     = make(chan struct{})
		served   atomic.Int64
		non2xx   atomic.Int64
		badBody  atomic.Int64
		wg       sync.WaitGroup
		loadErrs = make(chan error, 4)
	)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Post(d.URL()+"/v1/detect", "text/csv", strings.NewReader(typoCSV))
				if err != nil {
					select {
					case loadErrs <- err:
					default:
					}
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				served.Add(1)
				if resp.StatusCode != http.StatusOK {
					non2xx.Add(1)
					continue
				}
				var dr detectResponse
				if err != nil || json.Unmarshal(body, &dr) != nil {
					badBody.Add(1)
				}
			}
		}()
	}

	// Drive the swaps: each reload retrains a small synthetic model with
	// a distinct seed, and the exposed version must tick up by exactly
	// one per swap.
	const swaps = 3
	lastSeed := int64(0)
	for i := 1; i <= swaps; i++ {
		lastSeed = int64(100 + i)
		spec := fmt.Sprintf(`{"tables": 120, "seed": %d}`, lastSeed)
		resp, err := client.Post(d.URL()+"/v1/reload", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: status %d: %s", i, resp.StatusCode, body)
		}
		var rr reloadResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatalf("reload %d: bad response %q: %v", i, body, err)
		}
		wantVersion := int64(1 + i)
		if rr.ModelVersion != wantVersion {
			t.Fatalf("reload %d: response version %d, want %d", i, rr.ModelVersion, wantVersion)
		}
		if rr.CorpusTables != 120 {
			t.Errorf("reload %d: corpus tables %d, want 120", i, rr.CorpusTables)
		}
		if v := d.Metric("unidetectd_model_version", nil); v != float64(wantVersion) {
			t.Fatalf("reload %d: /metrics model version %v, want %d (must be monotone)", i, v, wantVersion)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-loadErrs:
		t.Fatalf("detect load hit a transport error during swaps: %v", err)
	default:
	}
	if served.Load() == 0 {
		t.Fatal("no detect requests completed during the swap sequence; test has no power")
	}
	if n := non2xx.Load(); n != 0 {
		t.Fatalf("%d of %d detect requests failed during hot swaps; swaps must be invisible to clients", n, served.Load())
	}
	if n := badBody.Load(); n != 0 {
		t.Fatalf("%d detect responses were torn or unparseable", n)
	}
	if v := d.Metric("unidetectd_reloads_total", nil); v != swaps {
		t.Errorf("reloads counter = %v, want %d", v, swaps)
	}

	// The served model must now be the last swapped-in one: train its
	// twin locally from the same spec and require identical findings.
	// JSON round-trips float64 exactly, so scores compare exactly.
	twin, err := unidetect.Train(context.Background(),
		unidetect.SyntheticCorpus(unidetect.WebProfile, 120, lastSeed), nil)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := unidetect.ReadCSV("upload", strings.NewReader(typoCSV))
	if err != nil {
		t.Fatal(err)
	}
	want := twin.Detect(context.Background(), tbl)

	resp, err := client.Post(d.URL()+"/v1/detect", "text/csv", strings.NewReader(typoCSV))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got detectResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Findings) != len(want) {
		t.Fatalf("served %d findings, new model produces %d", len(got.Findings), len(want))
	}
	for i, w := range want {
		g := got.Findings[i]
		if g.Class != w.Class.String() || g.Column != w.Column || g.Score != w.Score || g.Detail != w.Detail {
			t.Fatalf("finding %d: served %+v, new model %+v", i, g, w)
		}
	}
}

// TestReloadFromFiles exercises the file path: save two shard models,
// reload from both, and require the served model to be their merge.
func TestReloadFromFiles(t *testing.T) {
	ctx := context.Background()
	bg := unidetect.SyntheticCorpus(unidetect.WebProfile, 160, 7)
	trainOn := func(tabs []*unidetect.Table) *unidetect.Model {
		t.Helper()
		m, err := unidetect.Train(ctx, tabs, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	saveTo := func(m *unidetect.Model, name string) string {
		t.Helper()
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		path := t.TempDir() + "/" + name
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := trainOn(bg[:80])
	b := trainOn(bg[80:])
	pa, pb := saveTo(a, "a.model"), saveTo(b, "b.model")

	d := testkit.StartDaemon(t, newHandler(t, testModel(t), DefaultConfig()))
	spec := fmt.Sprintf(`{"models": [%q, %q]}`, pa, pb)
	resp, err := d.Client().Post(d.URL()+"/v1/reload", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: status %d: %s", resp.StatusCode, body)
	}
	var rr reloadResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.CorpusTables != 160 {
		t.Errorf("merged corpus tables = %d, want 160 (sum of both shards)", rr.CorpusTables)
	}
	if rr.ModelVersion != 2 {
		t.Errorf("model version = %d, want 2", rr.ModelVersion)
	}
}

// TestReloadRejectsBadRequests pins the endpoint's failure modes.
func TestReloadRejectsBadRequests(t *testing.T) {
	h := newHandler(t, testModel(t), DefaultConfig())
	get := httptest.NewRequest(http.MethodGet, "/v1/reload", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, get)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", rec.Code)
	}
	bad := httptest.NewRequest(http.MethodPost, "/v1/reload", strings.NewReader("{not json"))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, bad)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d, want 400", rec.Code)
	}
	missing := httptest.NewRequest(http.MethodPost, "/v1/reload", strings.NewReader(`{"model": "/nonexistent/model.bin"}`))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, missing)
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("missing file status = %d, want 500", rec.Code)
	}
}
