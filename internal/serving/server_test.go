package serving

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/testkit"
)

// chaosConfig is the base test config: no timeouts small enough to
// interfere, plenty of concurrency, quiet logging.
func chaosConfig(t *testing.T) Config {
	cfg := DefaultConfig()
	cfg.ReqTimeout = 30 * time.Second
	cfg.Logf = t.Logf
	return cfg
}

func TestOversizedBodyGets413(t *testing.T) {
	cfg := chaosConfig(t)
	cfg.MaxBody = 1 << 10
	h := newHandler(t, testModel(t), cfg)
	big := "A\n" + strings.Repeat("xxxxxxxxxxxxxxxx\n", 1<<10)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(big)))
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", rec.Code)
	}
}

// TestNDJSONUpload: a body with an NDJSON Content-Type goes through the
// NDJSON reader (same streaming columnar path as CSV), and malformed
// NDJSON reports its own format in the 400.
func TestNDJSONUpload(t *testing.T) {
	h := newHandler(t, testModel(t), chaosConfig(t))
	body := `{"director":"Kevin Doeling"}` + "\n" + `{"director":"Kevin Dowling"}` + "\n"
	req := httptest.NewRequest(http.MethodPost, "/v1/detect?name=cast", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/x-ndjson; charset=utf-8")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ndjson upload status = %d, want 200: %s", rec.Code, rec.Body)
	}

	req = httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader("{broken"))
	req.Header.Set("Content-Type", "application/x-ndjson")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed ndjson status = %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "bad ndjson") {
		t.Errorf("400 body %q should name the ndjson format", rec.Body.String())
	}
}

// TestInjectedPanicIsA500NotACrash is the core serving guarantee: a
// panicking handler answers 500 and the daemon keeps serving.
func TestInjectedPanicIsA500NotACrash(t *testing.T) {
	cfg := chaosConfig(t)
	cfg.Inject = faultinject.New(1, faultinject.Rule{
		Site: "unidetectd/v1/detect", Hits: []int{1},
		Fault: faultinject.Fault{Panic: "chaos: handler down"},
	})
	h := newHandler(t, testModel(t), cfg)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(typoCSV)))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicked request status = %d, want 500", rec.Code)
	}
	// The very next request must succeed: recovery, not restart.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(typoCSV)))
	if rec.Code != http.StatusOK {
		t.Fatalf("request after panic status = %d, want 200", rec.Code)
	}
	var got statuszResponse
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Panics != 1 || got.Status5xx != 1 || got.Status2xx != 1 {
		t.Errorf("accounting after panic = %+v", got)
	}
}

// TestInjectedErrorFailsRequestOnly: an injected (non-panic) fault in the
// middleware surfaces as a 500 on that request alone.
func TestInjectedErrorFailsRequestOnly(t *testing.T) {
	cfg := chaosConfig(t)
	cfg.Inject = faultinject.New(1, faultinject.Rule{
		Site: "unidetectd/*", Hits: []int{1},
		Fault: faultinject.Fault{Err: errors.New("chaos: request fault")},
	})
	h := newHandler(t, testModel(t), cfg)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(typoCSV)))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(typoCSV)))
	if rec.Code != http.StatusOK {
		t.Fatalf("second request status = %d, want 200", rec.Code)
	}
}

// TestLoadShedding: with one concurrency slot occupied by a delayed
// request, the next request is shed with 429 and a Retry-After header
// instead of queueing.
func TestLoadShedding(t *testing.T) {
	cfg := chaosConfig(t)
	cfg.MaxInFlight = 1
	cfg.RetryAfter = 7
	// The first /v1/detect request sleeps 2s in the middleware (real
	// clock), pinning the only slot.
	cfg.Inject = faultinject.New(1, faultinject.Rule{
		Site: "unidetectd/v1/detect", Hits: []int{1},
		Fault: faultinject.Fault{Delay: 2 * time.Second},
	})
	h := newHandler(t, testModel(t), cfg)

	slowDone := make(chan int, 1)
	go func() {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(typoCSV)))
		slowDone <- rec.Code
	}()
	// Wait (via the unprotected /statusz) until the slow request holds
	// its slot, then overload.
	testkit.WaitInFlight(t, h, 1)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(typoCSV)))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", got)
	}
	if code := <-slowDone; code != http.StatusOK {
		t.Errorf("slot-holding request status = %d, want 200", code)
	}
}

// TestRequestTimeout: a request delayed past its deadline is cancelled
// and counted as a timeout.
func TestRequestTimeout(t *testing.T) {
	cfg := chaosConfig(t)
	cfg.ReqTimeout = 30 * time.Millisecond
	cfg.Inject = faultinject.New(1, faultinject.Rule{
		Site: "unidetectd/v1/detect", Hits: []int{1},
		Fault: faultinject.Fault{Delay: 10 * time.Second},
	})
	h := newHandler(t, testModel(t), cfg)
	start := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(typoCSV)))
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed-out request took %v; deadline not enforced", elapsed)
	}
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	var got statuszResponse
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1", got.Timeouts)
	}
}

// TestGracefulDrain runs the real serve loop on a real listener: cancel
// the context while a request is in flight, and the listener must close
// (new connections refused) while the in-flight request completes.
func TestGracefulDrain(t *testing.T) {
	cfg := chaosConfig(t)
	cfg.Inject = faultinject.New(1, faultinject.Rule{
		Site: "unidetectd/v1/detect", Hits: []int{1},
		Fault: faultinject.Fault{Delay: 500 * time.Millisecond},
	})
	h := newHandler(t, testModel(t), cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- Serve(ctx, srv, ln, 5*time.Second, t.Logf) }()

	base := "http://" + ln.Addr().String()
	slowDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/v1/detect", "text/csv", strings.NewReader(typoCSV))
		if err != nil {
			slowDone <- -1
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		slowDone <- resp.StatusCode
	}()
	testkit.WaitInFlight(t, h, 1)

	cancel()
	if code := <-slowDone; code != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d, want 200", code)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve returned %v, want nil after clean drain", err)
	}
	// The listener is closed: new connections must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("connection accepted after drain")
	}
}

// TestChaosAccounting1000 is the serving acceptance check: 1,000
// requests under a deterministic fault schedule — a mix of valid,
// malformed and oversized payloads with injected errors, panics and
// delays — must all be answered (no lost requests, no process exit) and
// the status accounting must sum exactly.
func TestChaosAccounting1000(t *testing.T) {
	const total = 1000
	cfg := chaosConfig(t)
	cfg.MaxBody = 64 << 10
	cfg.Logf = nil // too chatty at this volume
	cfg.Inject = faultinject.New(42,
		faultinject.Rule{Site: "unidetectd/*", P: 0.05, Fault: faultinject.Fault{Err: errors.New("chaos: request fault")}},
		faultinject.Rule{Site: "unidetectd/*", P: 0.01, Fault: faultinject.Fault{Panic: "chaos: handler panic"}},
		faultinject.Rule{Site: "unidetectd/*", P: 0.02, Fault: faultinject.Fault{Delay: time.Millisecond}},
	)
	h := newHandler(t, testModel(t), cfg)

	oversized := "A\n" + strings.Repeat("yyyyyyyyyyyyyyyy\n", 8<<10)
	var codes [600]atomic.Int64
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i := 0; i < total; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			var body, path string
			switch {
			case i%5 == 0:
				body, path = "\"unterminated", "/v1/detect"
			case i%7 == 0:
				body, path = oversized, "/v1/detect"
			case i%3 == 0:
				body, path = "A,B\nx,1\ny,2\n", "/v1/profile"
			default:
				body, path = typoCSV, "/v1/detect"
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)))
			codes[rec.Code].Add(1)
		}(i)
	}
	wg.Wait()

	var got statuszResponse
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Requests != total {
		t.Errorf("requests = %d, want %d", got.Requests, total)
	}
	if sum := got.Status2xx + got.Status4xx + got.Status5xx; sum != total {
		t.Errorf("status classes sum to %d, want %d: %+v", sum, total, got)
	}
	if got.InFlight != 0 {
		t.Errorf("in_flight = %d after drain, want 0", got.InFlight)
	}
	if got.Panics == 0 || got.Status5xx < got.Panics {
		t.Errorf("panic accounting off: %+v", got)
	}
	for _, want := range []int{200, 400, 413, 500} {
		if codes[want].Load() == 0 {
			t.Errorf("no %d responses in 1000 chaos requests; schedule has no power", want)
		}
	}
	if n := codes[200].Load() + codes[400].Load() + codes[413].Load() + codes[500].Load(); n != total {
		t.Errorf("observed %d accounted responses, want %d", n, total)
	}
	// Zero process exits: the daemon must still serve.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after chaos = %d", rec.Code)
	}
	t.Logf("accounting: %+v", got)
}

// FuzzReadTable fuzzes the CSV ingestion path: arbitrary bodies must
// produce a table or an HTTP error, never a panic, and accepted tables
// must be non-degenerate.
func FuzzReadTable(f *testing.F) {
	f.Add([]byte("A,B\nx,1\ny,2\n"))
	f.Add([]byte(""))
	f.Add([]byte("\"unterminated"))
	f.Add([]byte("A,B\nonly-one-field\n"))
	f.Add([]byte("\xff\xfe\x00bad utf8,B\n1,2\n"))
	f.Add([]byte(strings.Repeat("col,", 1000) + "end\n"))

	s, err := New(nil, Config{MaxBody: 1 << 20})
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(string(data)))
		tbl, ok := s.readTable(rec, req)
		if ok {
			if tbl == nil || tbl.NumCols() == 0 {
				t.Fatalf("accepted degenerate table: %+v", tbl)
			}
			if rec.Code != http.StatusOK {
				t.Fatalf("ok=true but status %d", rec.Code)
			}
			return
		}
		if rec.Code < 400 {
			t.Fatalf("rejected body with non-error status %d", rec.Code)
		}
	})
}

// TestWriteJSONEncodeError: an unencodable value becomes a 500, not a
// torn 200 (the headers have not been sent yet thanks to buffering).
func TestWriteJSONEncodeError(t *testing.T) {
	s, err := New(nil, Config{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.writeJSON(rec, map[string]any{"bad": func() {}})
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
}

// TestWriteJSONContentLength: successful replies carry an exact
// Content-Length, so clients can detect truncation.
func TestWriteJSONContentLength(t *testing.T) {
	s, err := New(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	s.writeJSON(rec, map[string]int{"a": 1})
	want := fmt.Sprintf("%d", rec.Body.Len())
	if got := rec.Header().Get("Content-Length"); got != want {
		t.Errorf("Content-Length = %q, want %q", got, want)
	}
}
