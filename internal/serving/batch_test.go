package serving

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func postBatch(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestBatchEndpoint(t *testing.T) {
	h := newHandler(t, testModel(t), DefaultConfig())
	body, err := json.Marshal(batchRequest{Tables: []batchTable{
		{Name: "cast", CSV: typoCSV},
		{Name: "clean", CSV: "City\nParis\nRome\nOslo\nBern\nRiga\nKyiv\n"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	rec := postBatch(t, h, string(body))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(resp.Results))
	}
	if resp.Results[0].Table != "cast" || resp.Results[1].Table != "clean" {
		t.Fatalf("tables = %q, %q; namespacing prefix must not leak", resp.Results[0].Table, resp.Results[1].Table)
	}
	if len(resp.Results[0].Findings) == 0 || resp.Results[0].Findings[0].Class != "spelling" {
		t.Fatalf("cast findings = %+v", resp.Results[0].Findings)
	}
}

// TestBatchMatchesDetect holds the batch endpoint to the single-table
// endpoint's output: the shared scan plus per-request carve-out must not
// change what one table's findings look like.
func TestBatchMatchesDetect(t *testing.T) {
	h := newHandler(t, testModel(t), DefaultConfig())

	req := httptest.NewRequest(http.MethodPost, "/v1/detect?name=cast", strings.NewReader(typoCSV))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var single detectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &single); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(batchRequest{Tables: []batchTable{{Name: "cast", CSV: typoCSV}}})
	var batch batchResponse
	if err := json.Unmarshal(postBatch(t, h, string(body)).Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	got, want := batch.Results[0].Findings, single.Findings
	if len(got) != len(want) {
		t.Fatalf("batch found %d, detect found %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Class != want[i].Class || got[i].Column != want[i].Column ||
			got[i].Score != want[i].Score || fmt.Sprint(got[i].Rows) != fmt.Sprint(want[i].Rows) {
			t.Fatalf("finding %d: batch %+v != detect %+v", i, got[i], want[i])
		}
	}
}

// TestBatchCoalesces drives concurrent requests through a wide window
// and asserts at least one pair actually shared a scan — the metric the
// whole endpoint exists for.
func TestBatchCoalesces(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchWindow = 50 * time.Millisecond
	s := newTestServer(t, testModel(t), cfg)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/batch", s.protect(s.handleBatch))

	const n = 4
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(batchRequest{Tables: []batchTable{
				{Name: fmt.Sprintf("cast-%d", i), CSV: typoCSV},
			}})
			rec := postBatch(t, mux, string(body))
			if rec.Code != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, rec.Code, rec.Body)
			}
		}(i)
	}
	wg.Wait()
	groups := s.m.batchGroups.Value()
	coalesced := s.m.batchCoalesced.Value()
	if groups+coalesced < n {
		t.Fatalf("accounting lost requests: %d groups + %d coalesced < %d", groups, coalesced, n)
	}
	if coalesced == 0 {
		t.Fatalf("no coalescing across %d concurrent requests within a %v window", n, cfg.BatchWindow)
	}
}

// TestBatchSameNameAcrossRequests asserts the per-request namespace
// keeps identically named tables from different requests apart.
func TestBatchSameNameAcrossRequests(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchWindow = 50 * time.Millisecond
	s := newTestServer(t, testModel(t), cfg)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/batch", s.protect(s.handleBatch))

	clean := "City\nParis\nRome\nOslo\nBern\nRiga\nKyiv\n"
	bodies := []string{typoCSV, clean}
	var wg sync.WaitGroup
	results := make([]batchResponse, 2)
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(batchRequest{Tables: []batchTable{{Name: "shared", CSV: bodies[i]}}})
			rec := postBatch(t, mux, string(body))
			if rec.Code != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, rec.Code, rec.Body)
				return
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &results[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// The typo table must keep its spelling finding; the clean table —
	// same name, possibly same scan — must not inherit it.
	if len(results[0].Results[0].Findings) == 0 {
		t.Fatal("typo request lost its findings")
	}
	for _, f := range results[1].Results[0].Findings {
		if f.Class == "spelling" {
			t.Fatalf("clean request inherited a spelling finding: %+v", f)
		}
	}
}

func TestBatchRejectsBadRequests(t *testing.T) {
	h := newHandler(t, testModel(t), DefaultConfig())
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"not-json", "csv,here\n1,2\n", http.StatusBadRequest},
		{"empty", `{"tables":[]}`, http.StatusBadRequest},
		{"bad-csv", `{"tables":[{"name":"x","csv":"a,b\n\"torn quote\n"}]}`, http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if rec := postBatch(t, h, tc.body); rec.Code != tc.status {
				t.Fatalf("status = %d, want %d: %s", rec.Code, tc.status, rec.Body)
			}
		})
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/batch", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", rec.Code)
	}
}
