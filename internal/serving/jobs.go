package serving

// jobs.go implements the async job tier's HTTP surface. POST /v1/jobs
// spools the upload and answers 202 with a job id immediately — the
// scan happens on the job store's worker pool, checkpointed per chunk,
// so a huge table never pins a request slot for its whole scan and a
// killed daemon resumes where it left off. GET /v1/jobs/{id} reports
// the job as NDJSON: status lines while queued/running/failed, the
// findings stream plus a terminal summary line once done or degraded.
// Jobs are tenant-scoped end to end: another tenant's id is a 404.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/unidetect/unidetect/internal/jobstore"
)

// jobStatusJSON is the one-line NDJSON status GET emits for jobs that
// have no findings stream yet (and the 202 body of a submission).
type jobStatusJSON struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	Chunks   int    `json:"chunks,omitempty"`
	Degraded int    `json:"degraded,omitempty"`
	Rows     int    `json:"rows,omitempty"`
	Findings int    `json:"findings,omitempty"`
}

func statusJSON(rec jobstore.Record) jobStatusJSON {
	return jobStatusJSON{
		ID: rec.ID, State: string(rec.State), Error: rec.Error,
		Chunks: rec.Chunks, Degraded: rec.Degraded,
		Rows: rec.Rows, Findings: rec.Findings,
	}
}

// jobFormat maps an upload's Content-Type to a job store format.
// CSV is the default, matching the sync endpoints.
func jobFormat(contentType string) (string, bool) {
	mt, _, _ := strings.Cut(contentType, ";")
	switch strings.TrimSpace(mt) {
	case "", "text/csv", "application/csv":
		return "csv", true
	case "application/x-ndjson", "application/jsonl":
		return "ndjson", true
	case "application/x-ucol":
		return "ucol", true
	}
	return "", false
}

// handleJobSubmit serves POST /v1/jobs: spool, enqueue, 202.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a CSV, NDJSON or ucol body", http.StatusMethodNotAllowed)
		return
	}
	format, ok := jobFormat(r.Header.Get("Content-Type"))
	if !ok {
		http.Error(w, "unsupported content type for jobs (want CSV, NDJSON or ucol)", http.StatusUnsupportedMediaType)
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "upload"
	}
	tenant := requestTenant(r)
	body := http.MaxBytesReader(w, r.Body, s.jobBodyCap(tenant.MaxBody))
	rec, err := s.jobs.Submit(tenant.ID, name, format, body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "job submission failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	s.writeNDJSON(w, statusJSON(rec))
}

// jobBodyCap is the async upload limit: the tenant override scaled the
// same 4× the server-wide cap is, else the configured job cap.
func (s *Server) jobBodyCap(tenantMax int64) int64 {
	if tenantMax > 0 {
		return 4 * tenantMax
	}
	return s.cfg.MaxJobBody
}

// handleJobGet serves GET /v1/jobs/{id} as NDJSON.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET a job id", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		http.Error(w, "want /v1/jobs/{id}", http.StatusBadRequest)
		return
	}
	tenant := requestTenant(r)
	rec, ok := s.jobs.Get(tenant.ID, id)
	if !ok {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if rec.State != jobstore.StateDone && rec.State != jobstore.StateDegraded {
		// queued / running / failed: one status line is the whole reply.
		s.writeNDJSON(w, statusJSON(rec))
		return
	}
	// done / degraded: the findings stream, then the terminal summary
	// line — a reader knows the stream is complete exactly when it sees
	// a line with a "state" field.
	findings, err := s.jobs.Findings(tenant.ID, id)
	if err != nil {
		http.Error(w, "findings unavailable: "+err.Error(), http.StatusInternalServerError)
		return
	}
	defer findings.Close()
	if _, err := io.Copy(w, findings); err != nil {
		s.logf("unidetectd: stream job %s findings: %v", id, err)
		return
	}
	s.writeNDJSON(w, statusJSON(rec))
}

// writeNDJSON writes one JSON line. Unlike writeJSON it does not set
// Content-Length — NDJSON replies stream.
func (s *Server) writeNDJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		s.logf("unidetectd: encode ndjson line: %v", err)
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.logf("unidetectd: write ndjson line: %v", err)
	}
}
