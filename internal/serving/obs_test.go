package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/unidetect/unidetect"
	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/mapreduce"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/testkit"
)

// TestMetricsEndToEnd drives one registry through the daemon's whole
// lifecycle — a checkpointed train that is killed and resumed, model
// serving with shed and injected faults — and asserts the /metrics
// exposition reflects every stage: mapreduce phase histograms, checkpoint
// write/resume counters, per-detector predict latency, and the request
// accounting the middleware keeps. The final scrape is shipped as a CI
// artifact next to the chaos transcripts.
func TestMetricsEndToEnd(t *testing.T) {
	const seed = 1
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg, 256)
	ctx := context.Background()

	// Stage 1: kill a checkpointed training run mid-reduce, then resume
	// it — the daemon restart story — with all metrics on the registry.
	spec := datagen.Spec{Name: "obsbg", Profile: datagen.ProfileWeb,
		NumTables: 120, AvgRows: 16, AvgCols: 4, Seed: 21}
	bg := corpus.New(spec.Name, datagen.Generate(spec).Tables)
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	dets := detectors.All(cfg, detectors.Options{})

	// Which reduce buckets a schedule kills is a pure hash of the site
	// name, but how many *other* buckets finish (and checkpoint) before
	// cancellation depends on goroutine interleaving and bucket iteration
	// order. So "the killed run durably wrote something" is not a property
	// of any single seed: sweep seeds with a sparse kill schedule until a
	// run dies after at least one checkpointed bucket, asserting on
	// counter deltas since the shared registry accumulates across tries.
	written := func() float64 {
		var sb strings.Builder
		if err := reg.WritePromText(&sb); err != nil {
			t.Fatal(err)
		}
		fams, err := obs.ParseProm(sb.String())
		if err != nil {
			t.Fatal(err)
		}
		s, _ := obs.Sample(fams, "unidetect_train_checkpoint_buckets_written_total", nil)
		return s.Value
	}
	var ckpt string
	var killWritten float64
	killed := false
	for trainSeed := int64(seed); trainSeed < seed+10 && !killed; trainSeed++ {
		ckpt = filepath.Join(t.TempDir(), "train.ckpt")
		inj := faultinject.New(trainSeed, testkit.TrainKill(0.05)...)
		testkit.DumpTranscriptOnFailure(t, trainSeed, inj)
		base := written()
		_, err := core.TrainWith(ctx, cfg, core.TrainOptions{
			FT:             mapreduce.FT{Inject: inj, Seed: trainSeed, Obs: reg},
			CheckpointPath: ckpt,
		}, bg, dets)
		switch {
		case err == nil:
			continue // schedule had no lethal hit this seed
		case !errors.Is(err, faultinject.ErrInjected):
			t.Fatalf("train failed outside the schedule: %v", err)
		}
		killWritten = written() - base
		killed = killWritten > 0
	}
	if !killed {
		t.Fatal("no seed produced a kill after at least one checkpointed bucket")
	}
	if _, err := core.TrainWith(ctx, cfg, core.TrainOptions{
		FT:             mapreduce.FT{Obs: reg},
		CheckpointPath: ckpt,
	}, bg, dets); err != nil {
		t.Fatalf("resume failed: %v", err)
	}

	// Stage 2: serve the shared test model on the same registry, with a
	// chaos injector whose single fault must surface in the injected-
	// faults counter, and one concurrency slot so overload sheds.
	var buf bytes.Buffer
	if err := testModel(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	model, err := unidetect.Load(&buf, &unidetect.Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	scfg := chaosConfig(t)
	scfg.MaxInFlight = 1
	scfg.Obs = reg
	scfg.Tracer = tracer
	scfg.ChaosSeed = seed
	scfg.Inject = faultinject.New(seed, faultinject.Rule{
		Site: "unidetectd/v1/detect", Hits: []int{1},
		Fault: faultinject.Fault{Err: errors.New("chaos: request fault")},
	}, faultinject.Rule{
		Site: "unidetectd/v1/detect", Hits: []int{2},
		Fault: faultinject.Fault{Delay: 500 * time.Millisecond},
	})
	h := newHandler(t, model, scfg)

	post := func(path, body string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, path, strings.NewReader(body)))
		return rec.Code
	}
	if code := post("/v1/detect", typoCSV); code != http.StatusInternalServerError {
		t.Fatalf("injected-fault request status = %d, want 500", code)
	}
	// Pin the only slot with the delayed second hit, then overload.
	slowDone := make(chan int, 1)
	go func() { slowDone <- post("/v1/detect", typoCSV) }()
	testkit.WaitInFlight(t, h, 1)
	if code := post("/v1/detect", typoCSV); code != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", code)
	}
	if code := <-slowDone; code != http.StatusOK {
		t.Fatalf("delayed request status = %d, want 200", code)
	}
	if code := post("/v1/detect", typoCSV); code != http.StatusOK {
		t.Fatalf("clean request status = %d, want 200", code)
	}

	// Stage 3: scrape and verify — through the shared daemon harness, so
	// the exposition is fetched and format-validated the same way the e2e
	// tests do it. The raw exposition ships as an artifact whether or not
	// the test fails, so every CI run has a snapshot.
	fams, raw := testkit.StartDaemon(t, h).Metrics()
	testkit.Artifact(t, "metrics.prom", raw)

	count := func(name string, labels map[string]string) float64 {
		t.Helper()
		s, ok := obs.Sample(fams, name, labels)
		if !ok {
			t.Fatalf("metric %s%v missing from /metrics", name, labels)
		}
		return s.Value
	}
	// Training: both mapreduce phases ran (kill + resume), the killed run
	// durably wrote buckets and the resume got exactly those back.
	if n := count("unidetect_mapreduce_phase_seconds_count", map[string]string{"phase": "map"}); n < 2 {
		t.Errorf("map phase histogram count = %v, want >= 2 (kill + resume)", n)
	}
	if resumed := count("unidetect_train_checkpoint_buckets_resumed_total", nil); resumed != killWritten {
		t.Errorf("resumed %v buckets, killed run wrote %v", resumed, killWritten)
	}
	if n := count("unidetect_train_resumes_total", nil); n != 1 {
		t.Errorf("train resumes = %v, want 1", n)
	}
	// Prediction: the detect requests exercised the spelling detector, so
	// its latency histogram and the LR histogram must have observations.
	if n := count("unidetect_predict_detector_seconds_count", map[string]string{"detector": "spelling"}); n == 0 {
		t.Error("spelling detector latency histogram is empty after detect requests")
	}
	if n := count("unidetect_predict_lr_count", map[string]string{"detector": "spelling"}); n == 0 {
		t.Error("spelling LR histogram is empty after detect requests")
	}
	// Serving: 4 protected requests — one injected 500, one shed 429, the
	// delayed 200 and a clean 200 — all accounted, nothing in flight.
	if n := count("unidetectd_requests_total", nil); n != 4 {
		t.Errorf("requests = %v, want 4", n)
	}
	if n := count("unidetectd_shed_total", nil); n != 1 {
		t.Errorf("shed = %v, want 1", n)
	}
	if n := count("unidetectd_inflight", nil); n != 0 {
		t.Errorf("inflight = %v, want 0", n)
	}
	sum := count("unidetectd_responses_total", map[string]string{"class": "2xx"}) +
		count("unidetectd_responses_total", map[string]string{"class": "4xx"}) +
		count("unidetectd_responses_total", map[string]string{"class": "5xx"})
	if sum != 4 {
		t.Errorf("status classes sum to %v, want 4", sum)
	}
	if n := count("unidetectd_injected_faults_total", map[string]string{"site": "unidetectd/v1/detect"}); n != 2 {
		t.Errorf("injected faults = %v, want 2 (error + delay)", n)
	}
	// /statusz must agree with /metrics — same collectors, same numbers.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/statusz", nil))
	var status statuszResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if status.Requests != 4 || status.Shed != 1 {
		t.Errorf("/statusz diverges from /metrics: %+v", status)
	}
	// Spans: every protected request is one span tagged with the chaos
	// seed and its final status.
	spans, total := tracer.Finished()
	if total != 4 {
		t.Fatalf("finished spans = %d, want 4 (one per protected request)", total)
	}
	wantSeed := fmt.Sprintf("seed=%d", seed)
	var statuses []string
	for _, sp := range spans {
		if sp.Name != "unidetectd/v1/detect" {
			t.Errorf("span name = %q", sp.Name)
		}
		hasSeed := false
		for _, tag := range sp.Tags {
			if tag == wantSeed {
				hasSeed = true
			}
			if strings.HasPrefix(tag, "status=") {
				statuses = append(statuses, tag)
			}
		}
		if !hasSeed {
			t.Errorf("span %q lacks %q tag: %v", sp.Name, wantSeed, sp.Tags)
		}
	}
	for _, want := range []string{"status=200", "status=429", "status=500"} {
		n := 0
		for _, s := range statuses {
			if s == want {
				n++
			}
		}
		if n == 0 {
			t.Errorf("no span tagged %s; statuses seen: %v", want, statuses)
		}
	}
}

// TestDebugHandlerPprof is the -debug-addr smoke check: the second
// listener's handler must serve both the pprof surface and /metrics.
func TestDebugHandlerPprof(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("unidetectd_debug_smoke_total", "Smoke-test counter.").Inc()
	h := DebugHandler(reg)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	fams, err := obs.ParseProm(rec.Body.String())
	if err != nil {
		t.Fatalf("debug /metrics invalid: %v", err)
	}
	if s, ok := obs.Sample(fams, "unidetectd_debug_smoke_total", nil); !ok || s.Value != 1 {
		t.Errorf("smoke counter = %+v, want 1", s)
	}
}
