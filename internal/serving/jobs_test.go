package serving

// jobs_test.go covers the async job HTTP surface: submission answers
// 202 immediately, GET streams NDJSON with a terminal summary line,
// jobs are tenant-scoped, and the body/content-type parsing never
// panics on adversarial input (FuzzJobRequest). The store's own
// crash/resume machinery is tested in internal/jobstore.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/unidetect/unidetect/internal/tenants"
)

func jobsConfig(t testing.TB) Config {
	cfg := DefaultConfig()
	cfg.JobsDir = t.TempDir()
	cfg.JobChunkRows = 8
	if tt, ok := t.(*testing.T); ok {
		cfg.Logf = tt.Logf
	}
	return cfg
}

// waitJobLine polls GET /v1/jobs/{id} until the last NDJSON line
// reports a terminal state, returning every line of the final reply.
func waitJobLine(t *testing.T, h http.Handler, id string, hdr ...string) []map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil)
		for i := 0; i+1 < len(hdr); i += 2 {
			req.Header.Set(hdr[i], hdr[i+1])
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET job %s status = %d: %s", id, rec.Code, rec.Body)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("job reply Content-Type = %q", ct)
		}
		var lines []map[string]any
		for _, raw := range bytes.Split(bytes.TrimSpace(rec.Body.Bytes()), []byte("\n")) {
			var m map[string]any
			if err := json.Unmarshal(raw, &m); err != nil {
				t.Fatalf("non-JSON NDJSON line %q: %v", raw, err)
			}
			lines = append(lines, m)
		}
		switch lines[len(lines)-1]["state"] {
		case "done", "degraded", "failed":
			return lines
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return nil
}

func submitJob(t *testing.T, h http.Handler, path, ct, body string, hdr ...string) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", ct)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202: %s", rec.Code, rec.Body)
	}
	var status jobStatusJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatalf("202 body %q: %v", rec.Body, err)
	}
	if status.ID == "" || status.State != "queued" {
		t.Fatalf("202 status = %+v, want a queued id", status)
	}
	return status.ID
}

// TestJobSubmitAndStream: the async path must land on the same
// findings the sync endpoint serves for the same table.
func TestJobSubmitAndStream(t *testing.T) {
	h := newHandler(t, testModel(t), jobsConfig(t))

	rec := post(h, "/v1/detect?name=upload", typoCSV)
	if rec.Code != http.StatusOK {
		t.Fatalf("sync detect status = %d", rec.Code)
	}
	var sync detectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sync); err != nil {
		t.Fatal(err)
	}

	id := submitJob(t, h, "/v1/jobs?name=upload", "text/csv", typoCSV)
	lines := waitJobLine(t, h, id)
	last := lines[len(lines)-1]
	if last["state"] != "done" {
		t.Fatalf("terminal line = %+v, want done", last)
	}
	findings := lines[:len(lines)-1]
	if len(findings) != len(sync.Findings) {
		t.Fatalf("job streamed %d findings, sync served %d", len(findings), len(sync.Findings))
	}
	for i, f := range findings {
		if f["class"] != sync.Findings[i].Class || f["column"] != sync.Findings[i].Column {
			t.Fatalf("finding %d: job %+v != sync %+v", i, f, sync.Findings[i])
		}
	}
	if int(last["findings"].(float64)) != len(findings) {
		t.Errorf("summary count %v != %d streamed lines", last["findings"], len(findings))
	}
}

// TestJobTenantScoped: one tenant can never read another's job — not
// even its existence.
func TestJobTenantScoped(t *testing.T) {
	reg, err := tenants.New([]tenants.Tenant{
		{ID: "alpha", KeyHash: tenants.HashKey("a-key")},
		{ID: "beta", KeyHash: tenants.HashKey("b-key")},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := jobsConfig(t)
	cfg.Tenants = reg
	h := newHandler(t, testModel(t), cfg)

	id := submitJob(t, h, "/v1/jobs", "text/csv", typoCSV, "X-API-Key", "a-key")
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil)
	req.Header.Set("X-API-Key", "b-key")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("cross-tenant job read status = %d, want 404", rec.Code)
	}
	lines := waitJobLine(t, h, id, "X-API-Key", "a-key")
	if lines[len(lines)-1]["state"] != "done" {
		t.Fatalf("owner's job = %+v, want done", lines[len(lines)-1])
	}
}

func TestJobEndpointRejections(t *testing.T) {
	h := newHandler(t, testModel(t), jobsConfig(t))
	for _, tc := range []struct {
		name   string
		method string
		path   string
		ct     string
		body   string
		status int
	}{
		{"bad-content-type", http.MethodPost, "/v1/jobs", "application/pdf", "x", http.StatusUnsupportedMediaType},
		{"get-on-submit", http.MethodGet, "/v1/jobs", "", "", http.StatusMethodNotAllowed},
		{"post-on-get", http.MethodPost, "/v1/jobs/job-000001", "text/csv", "x", http.StatusMethodNotAllowed},
		{"nested-id", http.MethodGet, "/v1/jobs/a/b", "", "", http.StatusBadRequest},
		{"unknown-id", http.MethodGet, "/v1/jobs/job-999999", "", "", http.StatusNotFound},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(tc.body))
			if tc.ct != "" {
				req.Header.Set("Content-Type", tc.ct)
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != tc.status {
				t.Fatalf("status = %d, want %d: %s", rec.Code, tc.status, rec.Body)
			}
		})
	}
}

// TestJobRoutesAbsentWithoutDir: with no JobsDir the async tier does
// not exist — the routes 404 rather than half-working.
func TestJobRoutesAbsentWithoutDir(t *testing.T) {
	h := newHandler(t, testModel(t), DefaultConfig())
	if rec := post(h, "/v1/jobs", typoCSV); rec.Code != http.StatusNotFound {
		t.Fatalf("jobs submit without JobsDir status = %d, want 404", rec.Code)
	}
}

// FuzzJobRequest throws arbitrary bodies and content types at the
// submission endpoint: every request must be answered with 202 or a
// 4xx, an accepted job must be streamable and reach a terminal
// state, and nothing may panic.
func FuzzJobRequest(f *testing.F) {
	f.Add([]byte("A,B\nx,1\ny,2\n"), "text/csv")
	f.Add([]byte(`{"a":"x"}`+"\n"), "application/x-ndjson")
	f.Add([]byte("not a ucol file"), "application/x-ucol")
	f.Add([]byte(""), "")
	f.Add([]byte("\"unterminated"), "text/csv; charset=utf-8")
	f.Add([]byte("x"), "application/pdf")
	f.Add([]byte("A\n"+strings.Repeat("y\n", 4096)), "text/csv")

	cfg := jobsConfig(f)
	cfg.MaxBody = 1 << 10 // keep the 413 path reachable
	s, err := New(testModel(f), cfg)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(s.Close)
	h := s.Handler()

	f.Fuzz(func(t *testing.T, data []byte, ct string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(data))
		req.Header.Set("Content-Type", ct)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch {
		case rec.Code == http.StatusAccepted:
			var status jobStatusJSON
			if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil || status.ID == "" {
				t.Fatalf("202 with unusable body %q: %v", rec.Body, err)
			}
		case rec.Code >= 400 && rec.Code < 500:
			// fine: rejected cleanly
		default:
			t.Fatalf("submit answered %d; want 202 or 4xx: %s", rec.Code, rec.Body)
		}
	})
}
