package serving

// tenants_test.go pins the multi-tenant gate: API-key auth on every
// protected endpoint, per-tenant token-bucket quotas answering 429
// with Retry-After, per-tenant body caps, and exact metric
// accounting for all of it. The registry itself (persistence,
// reload) is tested in internal/tenants; here only the HTTP layering
// matters.

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/unidetect/unidetect/internal/tenants"
)

// tenantClock is a hand-cranked clock for deterministic quota tests.
type tenantClock struct{ now time.Duration }

func (c *tenantClock) Now() time.Duration { return c.now }

// tenantConfig builds a server config gated on the given tenants.
func tenantConfig(t *testing.T, clk *tenants.Registry) Config {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Logf = t.Logf
	cfg.Tenants = clk
	return cfg
}

func mustRegistry(t *testing.T, now func() time.Duration, ts ...tenants.Tenant) *tenants.Registry {
	t.Helper()
	reg, err := tenants.New(ts, now)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func post(h http.Handler, path, body string, hdr ...string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestTenantAuthGate(t *testing.T) {
	reg := mustRegistry(t, nil, tenants.Tenant{
		ID: "acme", KeyHash: tenants.HashKey("sekret"),
	})
	s := newTestServer(t, testModel(t), tenantConfig(t, reg))
	h := s.Handler()

	// No key, wrong key: 401 before any model work happens.
	if rec := post(h, "/v1/detect", typoCSV); rec.Code != http.StatusUnauthorized {
		t.Fatalf("keyless request status = %d, want 401", rec.Code)
	}
	if rec := post(h, "/v1/detect", typoCSV, "X-API-Key", "wrong"); rec.Code != http.StatusUnauthorized {
		t.Fatalf("bad-key request status = %d, want 401", rec.Code)
	}
	// Both header carriers authenticate.
	if rec := post(h, "/v1/detect", typoCSV, "X-API-Key", "sekret"); rec.Code != http.StatusOK {
		t.Fatalf("X-API-Key request status = %d: %s", rec.Code, rec.Body)
	}
	if rec := post(h, "/v1/detect", typoCSV, "Authorization", "Bearer sekret"); rec.Code != http.StatusOK {
		t.Fatalf("Bearer request status = %d: %s", rec.Code, rec.Body)
	}
	// Health and metrics stay open: an orchestrator has no API key.
	for _, path := range []string{"/healthz", "/statusz", "/metrics"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200 without a key", path, rec.Code)
		}
	}
	// Accounting is exact: two rejected, two attributed to acme.
	if n := s.m.authFailures.Value(); n != 2 {
		t.Errorf("auth failures = %d, want 2", n)
	}
	if n := s.m.tenantRequests.With("acme").Value(); n != 2 {
		t.Errorf("acme requests = %d, want 2", n)
	}
}

func TestTenantQuota429(t *testing.T) {
	clk := &tenantClock{}
	reg := mustRegistry(t, clk.Now,
		tenants.Tenant{ID: "metered", KeyHash: tenants.HashKey("m-key"), RatePerSec: 1, Burst: 2},
		tenants.Tenant{ID: "open", KeyHash: tenants.HashKey("o-key")},
	)
	s := newTestServer(t, testModel(t), tenantConfig(t, reg))
	h := s.Handler()

	// The burst drains in two requests; the third is shed with a
	// Retry-After that rounds up to at least one second.
	for i := 0; i < 2; i++ {
		if rec := post(h, "/v1/detect", typoCSV, "X-API-Key", "m-key"); rec.Code != http.StatusOK {
			t.Fatalf("burst request %d status = %d: %s", i, rec.Code, rec.Body)
		}
	}
	rec := post(h, "/v1/detect", typoCSV, "X-API-Key", "m-key")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", rec.Code)
	}
	if ra, err := strconv.Atoi(rec.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", rec.Header().Get("Retry-After"))
	}
	// An unthrottled tenant is untouched by its neighbour's quota.
	if rec := post(h, "/v1/detect", typoCSV, "X-API-Key", "o-key"); rec.Code != http.StatusOK {
		t.Fatalf("open tenant status = %d during metered tenant's 429s", rec.Code)
	}
	// One refill interval later the metered tenant serves again.
	clk.now += 1100 * time.Millisecond
	if rec := post(h, "/v1/detect", typoCSV, "X-API-Key", "m-key"); rec.Code != http.StatusOK {
		t.Fatalf("post-refill status = %d, want 200", rec.Code)
	}
	if n := s.m.tenantQuota.With("metered").Value(); n != 1 {
		t.Errorf("metered quota rejections = %d, want 1", n)
	}
	if n := s.m.tenantRequests.With("metered").Value(); n != 4 {
		t.Errorf("metered requests = %d, want 4 (quota rejections still count)", n)
	}
}

// TestTenantBodyCapOverride: a tenant's MaxBody wins over the server
// default for sync uploads, and scales the async job cap 4x.
func TestTenantBodyCapOverride(t *testing.T) {
	reg := mustRegistry(t, nil,
		tenants.Tenant{ID: "tiny", KeyHash: tenants.HashKey("t-key"), MaxBody: 256},
		tenants.Tenant{ID: "roomy", KeyHash: tenants.HashKey("r-key")},
	)
	cfg := tenantConfig(t, reg)
	cfg.JobsDir = t.TempDir()
	s := newTestServer(t, testModel(t), cfg)
	h := s.Handler()

	body := "A\n" + strings.Repeat("xxxxxxxx\n", 64) // ~600 bytes
	if rec := post(h, "/v1/detect", body, "X-API-Key", "t-key"); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("tiny tenant oversized sync status = %d, want 413", rec.Code)
	}
	if rec := post(h, "/v1/detect", body, "X-API-Key", "r-key"); rec.Code != http.StatusOK {
		t.Fatalf("roomy tenant same body status = %d: %s", rec.Code, rec.Body)
	}
	// Async cap is 4x the tenant override: 600 bytes fits in 1024...
	if rec := post(h, "/v1/jobs", body, "X-API-Key", "t-key"); rec.Code != http.StatusAccepted {
		t.Fatalf("tiny tenant job within 4x cap status = %d: %s", rec.Code, rec.Body)
	}
	// ...but 4x that does not.
	big := "A\n" + strings.Repeat("xxxxxxxx\n", 256)
	if rec := post(h, "/v1/jobs", big, "X-API-Key", "t-key"); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("tiny tenant oversized job status = %d, want 413", rec.Code)
	}
}
