package serving

// batch.go implements POST /v1/batch: many tables per request, and
// concurrent requests coalesced into a single DetectAll scan. The fast
// prediction path batches column units across every table it is handed
// (internal/core/fastpath.go), so the wider the DetectAll call, the
// better its worker pool and measurement cache amortize — the daemon's
// job is to hand it wide calls.
//
// Coalescing is group-commit style, with no resident goroutine: the
// first request to arrive becomes the batch leader, waits a short
// window for concurrent requests to pile on, then runs one DetectAll
// over every submitted table under its own request context (so the
// protect middleware's deadline and panic recovery cover the whole
// batch). Followers block on the leader's completion and carve their
// findings out of the shared result. Table names are namespaced per
// submission ("r<seq>/<name>") while inside the shared scan, so equal
// names across requests cannot collide, and stripped before replies.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/unidetect/unidetect"
)

// batchRequest is the /v1/batch request envelope.
type batchRequest struct {
	Tables []batchTable `json:"tables"`
}

// batchTable is one table of a batch: a name and an inline CSV body.
type batchTable struct {
	Name string `json:"name"`
	CSV  string `json:"csv"`
}

// batchResponse is the /v1/batch reply: one detectResponse per
// submitted table, in submission order.
type batchResponse struct {
	Results []detectResponse `json:"results"`
}

// coalescer groups concurrent batch submissions into one DetectAll.
// It reads the server's model handle once per executed scan, so every
// table in one coalesced batch is scored by the same model version even
// if a /v1/reload swap lands mid-window.
type coalescer struct {
	handle *atomic.Pointer[modelHandle]
	window time.Duration
	m      *metrics

	mu      sync.Mutex
	pending *batchGroup // open group accepting joiners, nil if none
	seq     int64       // submission namespace counter
}

// batchGroup is one in-flight coalesced scan. tables is appended under
// the coalescer's mutex until the leader seals the group; findings is
// written by the leader before done closes and read-only after.
type batchGroup struct {
	tables   []*unidetect.Table
	done     chan struct{}
	findings []unidetect.Finding
}

// join submits prefixed tables and blocks until their findings are
// available. The bool reports whether this submission led the batch
// (followers count toward the coalesced metric). A follower abandons
// the wait when its own context dies; the leader always finishes the
// scan — other requests' results ride on it.
//
// alloc-budget: 4 one group header + done channel per coalesced batch, the shared table append, and the DetectAll scan itself — all amortized across every rider
func (c *coalescer) join(ctx context.Context, tables []*unidetect.Table) ([]unidetect.Finding, bool, error) {
	c.mu.Lock()
	g := c.pending
	leader := g == nil
	if leader {
		g = &batchGroup{done: make(chan struct{})}
		c.pending = g
	}
	g.tables = append(g.tables, tables...)
	c.mu.Unlock()

	if !leader {
		c.m.batchCoalesced.Inc()
		select {
		case <-g.done:
			return g.findings, false, nil
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}

	// Leader: hold the window open, then seal — later arrivals start
	// the next group — and run the combined scan.
	if c.window > 0 {
		t := time.NewTimer(c.window)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}
	c.mu.Lock()
	c.pending = nil
	tabs := g.tables
	c.mu.Unlock()
	c.m.batchGroups.Inc()
	c.m.batchTables.Observe(float64(len(tabs)))
	g.findings = c.handle.Load().model.DetectAll(ctx, tabs)
	close(g.done)
	return g.findings, true, nil
}

// nextSeq reserves a fresh submission namespace.
func (c *coalescer) nextSeq() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return c.seq
}

// handleBatch serves POST /v1/batch. The request inlines CSV bodies in
// a JSON envelope; the reply carries per-table findings in submission
// order, each table's list ranked by score (the shared scan ranks
// globally; the carve-out preserves relative order).
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a JSON batch", http.StatusMethodNotAllowed)
		return
	}
	var req batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Tables) == 0 {
		http.Error(w, "empty batch", http.StatusBadRequest)
		return
	}

	prefix := fmt.Sprintf("r%d/", s.batch.nextSeq())
	tabs := make([]*unidetect.Table, 0, len(req.Tables))
	names := make([]string, 0, len(req.Tables))
	for i, bt := range req.Tables {
		name := bt.Name
		if name == "" {
			name = fmt.Sprintf("table-%d", i)
		}
		tbl, err := unidetect.ReadCSV(prefix+name, strings.NewReader(bt.CSV))
		if err != nil {
			http.Error(w, fmt.Sprintf("bad csv in table %q: %v", name, err), http.StatusBadRequest)
			return
		}
		tabs = append(tabs, tbl)
		names = append(names, name)
	}

	all, _, err := s.batch.join(r.Context(), tabs)
	if err != nil {
		http.Error(w, "batch abandoned: "+err.Error(), http.StatusServiceUnavailable)
		return
	}

	results := make([]detectResponse, len(names))
	byName := make(map[string]int, len(names))
	for i, name := range names {
		results[i] = detectResponse{Table: name, Findings: []findingJSON{}}
		byName[name] = i
	}
	for _, f := range all {
		name, ok := strings.CutPrefix(f.Table, prefix)
		if !ok {
			continue // another submission's table
		}
		i, ok := byName[name]
		if !ok {
			continue
		}
		results[i].Findings = append(results[i].Findings, findingJSON{
			Class: f.Class.String(), Column: f.Column, Rows: f.Rows,
			Values: f.Values, Score: f.Score, Detail: f.Detail,
		})
	}
	s.writeJSON(w, batchResponse{Results: results})
}
