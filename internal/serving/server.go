package serving

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/unidetect/unidetect"
	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/jobstore"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/tenants"
)

// Config is the daemon's failure-model knobs: how long a request
// may run, how many may run at once, how large a body may be, and — for
// chaos testing — which faults to inject where.
type Config struct {
	// ReqTimeout bounds one request's handler time; the request context
	// is cancelled at the deadline so model scans stop early. 0 = none.
	ReqTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to finish after the listener closes.
	DrainTimeout time.Duration
	// MaxInFlight bounds concurrently served requests; excess load is
	// shed with 429 + Retry-After rather than queued without bound.
	MaxInFlight int
	// MaxBody caps request body size; larger uploads get 413.
	MaxBody int64
	// RetryAfter is the Retry-After header value (seconds) on shed
	// responses.
	RetryAfter int
	// BatchWindow is how long a /v1/batch leader holds its batch open
	// for concurrent requests to coalesce into; 0 disables coalescing
	// across requests (each request scans alone).
	BatchWindow time.Duration
	// SyntheticTables is the corpus size /v1/reload trains on when the
	// reload request names no model files and no table count (0 falls
	// back to a built-in default).
	SyntheticTables int
	// Inject, when non-nil, injects faults at "unidetectd<path>" sites —
	// the serving half of the chaos harness.
	Inject *faultinject.Injector
	// Logf receives server diagnostics; nil discards them.
	Logf func(format string, args ...any)
	// Obs is the metrics registry behind /metrics and /statusz; nil
	// makes New create a private one, so accounting always works.
	Obs *obs.Registry
	// Tracer, when non-nil, records one span per protected request,
	// tagged with the chaos seed and final status.
	Tracer *obs.Tracer
	// ChaosSeed is stamped on request spans so a latency outlier can be
	// joined to the failure transcript that produced it.
	ChaosSeed int64

	// Tenants, when non-nil, turns on multi-tenant mode: every protected
	// endpoint requires an API key (Authorization: Bearer or X-API-Key)
	// resolving to a registered tenant, and per-tenant token-bucket
	// quotas answer 429 + Retry-After when exhausted. Nil serves
	// anonymously, as before.
	Tenants *tenants.Registry
	// JobsDir, when non-empty, enables the async job tier (/v1/jobs):
	// uploads spool under this directory and a worker pool scans them
	// with per-chunk checkpointing.
	JobsDir string
	// JobWorkers bounds the job worker pool (0 = jobstore default).
	JobWorkers int
	// JobChunkRows is the job scan chunk geometry (0 = colstore
	// default). Must stay stable across restarts for resume.
	JobChunkRows int
	// JobChunkDelay throttles job scans between chunks; the e2e chaos
	// harness uses it to widen kill windows. 0 = full speed.
	JobChunkDelay time.Duration
	// MaxJobBody caps async upload size; 0 falls back to 4×MaxBody
	// (async exists precisely for bodies too big to scan in-request).
	MaxJobBody int64
}

func DefaultConfig() Config {
	return Config{
		ReqTimeout:   30 * time.Second,
		DrainTimeout: 10 * time.Second,
		MaxInFlight:  64,
		MaxBody:      32 << 20,
		RetryAfter:   1,
		BatchWindow:  2 * time.Millisecond,
	}
}

// metrics is the daemon's request accounting, resolved once from the
// registry and updated on the hot path through the cached children. The
// counters are the chaos-test oracle: after N requests under a fault
// schedule, requests must equal N and the status classes must sum to it
// — no request may vanish. /statusz and /metrics read the same
// collectors, so the two views can never disagree.
type metrics struct {
	requests  *obs.Counter
	inflight  *obs.Gauge
	status2xx *obs.Counter
	status4xx *obs.Counter
	status5xx *obs.Counter
	shed      *obs.Counter
	panics    *obs.Counter
	timeouts  *obs.Counter
	injected  *obs.CounterVec

	// /v1/batch coalescing accounting: executed batch scans, requests
	// that rode another request's scan, and tables per executed scan.
	batchGroups    *obs.Counter
	batchCoalesced *obs.Counter
	batchTables    *obs.Histogram

	// Multi-tenant accounting: authenticated requests per tenant (quota
	// rejections included — the request was attributed before being
	// refused), quota 429s per tenant, and failed authentications
	// (which have no tenant to attribute to).
	tenantRequests *obs.CounterVec
	tenantQuota    *obs.CounterVec
	authFailures   *obs.Counter

	// Hot-swap accounting: the version of the model currently serving
	// and how many successful /v1/reload swaps the process has done.
	modelVersion *obs.Gauge
	reloads      *obs.Counter
}

// newMetrics registers the daemon's metric families on r. Every
// unidetectd_* name literal lives here and nowhere else.
func newMetrics(r *obs.Registry) metrics {
	responses := r.CounterVec("unidetectd_responses_total",
		"Completed requests by status class.", "class")
	return metrics{
		requests: r.Counter("unidetectd_requests_total",
			"Requests accepted into the protection middleware, shed included."),
		inflight: r.Gauge("unidetectd_inflight",
			"Requests currently holding a concurrency slot."),
		status2xx: responses.With("2xx"),
		status4xx: responses.With("4xx"),
		status5xx: responses.With("5xx"),
		shed: r.Counter("unidetectd_shed_total",
			"Requests rejected with 429 under load (also counted as 4xx)."),
		panics: r.Counter("unidetectd_panics_total",
			"Handler panics converted to 500 responses."),
		timeouts: r.Counter("unidetectd_timeouts_total",
			"Requests whose per-request deadline expired."),
		injected: r.CounterVec("unidetectd_injected_faults_total",
			"Faults the chaos injector fired during request handling, by site.", "site"),
		batchGroups: r.Counter("unidetectd_batch_groups_total",
			"Coalesced DetectAll scans executed for /v1/batch."),
		batchCoalesced: r.Counter("unidetectd_batch_coalesced_total",
			"Batch requests that joined a scan led by a concurrent request."),
		batchTables: r.Histogram("unidetectd_batch_tables",
			"Tables per coalesced /v1/batch scan.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128}),
		modelVersion: r.Gauge("unidetectd_model_version",
			"Version of the model currently serving; increments on each successful /v1/reload."),
		reloads: r.Counter("unidetectd_reloads_total",
			"Successful /v1/reload model swaps."),
		tenantRequests: r.CounterVec("unidetectd_tenant_requests_total",
			"Authenticated requests by tenant, quota rejections included.", "tenant"),
		tenantQuota: r.CounterVec("unidetectd_tenant_quota_rejected_total",
			"Requests refused with 429 because the tenant's token bucket was empty.", "tenant"),
		authFailures: r.Counter("unidetectd_tenant_auth_failures_total",
			"Requests refused with 401 for a missing or unknown API key."),
	}
}

// statuszResponse is the /statusz reply.
type statuszResponse struct {
	Requests     int64 `json:"requests"`
	InFlight     int64 `json:"in_flight"`
	Status2xx    int64 `json:"status_2xx"`
	Status4xx    int64 `json:"status_4xx"`
	Status5xx    int64 `json:"status_5xx"`
	Shed         int64 `json:"shed"`
	Panics       int64 `json:"panics"`
	Timeouts     int64 `json:"timeouts"`
	ModelVersion int64 `json:"model_version"`
	Reloads      int64 `json:"reloads"`
}

func (m *metrics) snapshot() statuszResponse {
	return statuszResponse{
		Requests:     m.requests.Value(),
		InFlight:     m.inflight.Value(),
		Status2xx:    m.status2xx.Value(),
		Status4xx:    m.status4xx.Value(),
		Status5xx:    m.status5xx.Value(),
		Shed:         m.shed.Value(),
		Panics:       m.panics.Value(),
		Timeouts:     m.timeouts.Value(),
		ModelVersion: m.modelVersion.Value(),
		Reloads:      m.reloads.Value(),
	}
}

func (m *metrics) count(status int) {
	switch {
	case status >= 500:
		m.status5xx.Inc()
	case status >= 400:
		m.status4xx.Inc()
	default:
		m.status2xx.Inc()
	}
}

// modelHandle is one immutable (model, version) pair. The serving path
// loads the current handle once per request and uses that model for the
// request's whole lifetime, so a concurrent /v1/reload swap never
// changes a request's model mid-flight: in-flight requests finish on
// the handle they started with while new arrivals pick up the new one.
type modelHandle struct {
	model   *unidetect.Model
	version int64
}

// Server wires the model's endpoints behind the protection middleware.
type Server struct {
	handle atomic.Pointer[modelHandle] // current (model, version); swapped by /v1/reload
	cfg    Config
	reg    *obs.Registry
	m      metrics
	sem    chan struct{}   // concurrency slots; len() is the inflight gauge
	batch  *coalescer      // /v1/batch group-commit state
	jobs   *jobstore.Store // async job tier; nil unless cfg.JobsDir is set

	// reloadMu serializes /v1/reload builds: a second reload arriving
	// while one is training/loading gets 409 instead of queueing an
	// unbounded pile of model builds. It is never taken on the request
	// path.
	reloadMu sync.Mutex
}

// currentModel returns the model serving this instant. Callers use the
// returned model for at most one request, so a swap takes effect on the
// next request boundary.
func (s *Server) currentModel() *unidetect.Model {
	return s.handle.Load().model
}

// New builds a server for model. The error is the async job tier's:
// with cfg.JobsDir set, a spool that cannot be opened refuses to serve
// rather than silently dropping jobs. Callers must Close the server to
// join the job workers.
func New(model *unidetect.Model, cfg Config) (*Server, error) {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultConfig().MaxInFlight
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultConfig().MaxBody
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultConfig().RetryAfter
	}
	if cfg.MaxJobBody <= 0 {
		cfg.MaxJobBody = 4 * cfg.MaxBody
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	s := &Server{
		cfg: cfg,
		reg: cfg.Obs,
		m:   newMetrics(cfg.Obs),
		sem: make(chan struct{}, cfg.MaxInFlight),
	}
	s.handle.Store(&modelHandle{model: model, version: 1})
	s.m.modelVersion.Set(1)
	s.batch = &coalescer{handle: &s.handle, window: cfg.BatchWindow, m: &s.m}
	// Count every fault the injector fires while serving; the transcript
	// stays the source of truth, the counter is its live aggregate.
	cfg.Inject.Observe(func(ev faultinject.Event) {
		s.m.injected.With(ev.Site).Inc()
	})
	if cfg.JobsDir != "" {
		js, err := jobstore.Open(jobstore.Config{
			Dir:        cfg.JobsDir,
			Workers:    cfg.JobWorkers,
			ChunkRows:  cfg.JobChunkRows,
			ChunkDelay: cfg.JobChunkDelay,
			Model:      s.currentModel,
			Inject:     cfg.Inject,
			Logf:       cfg.Logf,
			Obs:        cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		s.jobs = js
	}
	return s, nil
}

// Close joins the async job workers; a job mid-scan parks at its last
// checkpoint for the next process to resume. Idempotent-enough for
// tests: call once.
func (s *Server) Close() {
	if s.jobs != nil {
		s.jobs.Close()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// statusWriter records the status code a handler sent, for accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote = true
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote = true
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// protect wraps a handler with the serving failure model, outermost
// first: load shedding (429 + Retry-After instead of unbounded queueing),
// a per-request deadline on the context, panic recovery (500 instead of
// a dead daemon), and a chaos injection point at "unidetectd<path>".
// Each protected request is one span, tagged with the chaos seed and the
// final status.
func (s *Server) protect(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.m.requests.Inc()
		sp := s.cfg.Tracer.Start("unidetectd" + r.URL.Path)
		sp.Tag("seed", s.cfg.ChaosSeed)
		sw := &statusWriter{ResponseWriter: w}
		select {
		case s.sem <- struct{}{}:
		default:
			s.m.shed.Inc()
			sw.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfter))
			http.Error(sw, "overloaded, retry later", http.StatusTooManyRequests)
			s.m.count(sw.status)
			sp.Tag("status", sw.status)
			sp.End()
			return
		}
		s.m.inflight.Add(1)
		ctx := r.Context()
		cancel := context.CancelFunc(func() {})
		if s.cfg.ReqTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.cfg.ReqTimeout)
		}
		// Multi-tenant gate: inside the concurrency slot (auth work is
		// bounded like any other request work), before the handler and
		// the chaos injection point. Quota refusals are attributed to
		// the tenant; auth failures have no tenant to attribute to.
		if s.cfg.Tenants != nil {
			grant, ok := s.cfg.Tenants.Authenticate(apiKey(r))
			if !ok {
				s.m.authFailures.Inc()
				http.Error(sw, "missing or unknown API key", http.StatusUnauthorized)
				s.finish(sw, sp, cancel, ctx)
				return
			}
			s.m.tenantRequests.With(grant.Tenant.ID).Inc()
			if ok, retry := grant.Allow(); !ok {
				s.m.tenantQuota.With(grant.Tenant.ID).Inc()
				secs := int(retry / time.Second)
				if secs < 1 {
					secs = 1
				}
				sw.Header().Set("Retry-After", strconv.Itoa(secs))
				http.Error(sw, "tenant quota exhausted, retry later", http.StatusTooManyRequests)
				s.finish(sw, sp, cancel, ctx)
				return
			}
			ctx = context.WithValue(ctx, tenantKey{}, grant.Tenant)
		}
		defer func() {
			if rec := recover(); rec != nil {
				s.m.panics.Inc()
				s.logf("unidetectd: %s %s panicked: %v", r.Method, r.URL.Path, rec)
				if !sw.wrote {
					http.Error(sw, "internal error", http.StatusInternalServerError)
				}
			}
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				s.m.timeouts.Inc()
			}
			cancel()
			s.m.count(sw.status)
			s.m.inflight.Add(-1)
			<-s.sem
			sp.Tag("status", sw.status)
			sp.End()
		}()
		if err := s.cfg.Inject.Hit(ctx, "unidetectd"+r.URL.Path); err != nil {
			http.Error(sw, "injected fault: "+err.Error(), http.StatusInternalServerError)
			return
		}
		h(sw, r.WithContext(ctx))
	}
}

// finish closes out a request the tenant gate refused before the main
// accounting defer was installed: same bookkeeping, early exit.
func (s *Server) finish(sw *statusWriter, sp *obs.Span, cancel context.CancelFunc, ctx context.Context) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		s.m.timeouts.Inc()
	}
	cancel()
	s.m.count(sw.status)
	s.m.inflight.Add(-1)
	<-s.sem
	sp.Tag("status", sw.status)
	sp.End()
}

// tenantKey carries the authenticated tenant through the request
// context to handlers that scope work per tenant.
type tenantKey struct{}

// requestTenant returns the authenticated tenant of a request, or the
// anonymous default when the server runs without a tenant registry.
func requestTenant(r *http.Request) tenants.Tenant {
	if t, ok := r.Context().Value(tenantKey{}).(tenants.Tenant); ok {
		return t
	}
	return tenants.Tenant{ID: "default"}
}

// apiKey extracts the request's API key: Authorization: Bearer wins,
// X-API-Key is the curl-friendly fallback.
func apiKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if key, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(key)
		}
	}
	return r.Header.Get("X-API-Key")
}

// writeJSON marshals v into a buffer first, so an encoding failure can
// still become a 500 (headers are unsent) instead of a torn 200, and
// successful replies carry Content-Length.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		s.logf("unidetectd: encode response: %v", err)
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.logf("unidetectd: write response: %v", err)
	}
}

// bodyCap is the sync upload limit for one request: the tenant's
// MaxBody override when one is registered, the server default
// otherwise.
func (s *Server) bodyCap(r *http.Request) int64 {
	if t := requestTenant(r); t.MaxBody > 0 {
		return t.MaxBody
	}
	return s.cfg.MaxBody
}

// readTable parses the request body as a table; the table name comes
// from the ?name= query parameter (default "upload"). The body is CSV
// unless Content-Type says application/x-ndjson (or application/jsonl),
// in which case it is newline-delimited JSON — both go through the same
// streaming columnar readers the CLI uses. Oversized bodies (past
// cfg.MaxBody) get 413, malformed input gets 400.
func (s *Server) readTable(w http.ResponseWriter, r *http.Request) (*unidetect.Table, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a CSV or NDJSON body", http.StatusMethodNotAllowed)
		return nil, false
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		name = "upload"
	}
	body := http.MaxBytesReader(w, r.Body, s.bodyCap(r))
	format := "csv"
	read := unidetect.ReadCSV
	ct := r.Header.Get("Content-Type")
	if mt, _, _ := strings.Cut(ct, ";"); strings.TrimSpace(mt) == "application/x-ndjson" || strings.TrimSpace(mt) == "application/jsonl" {
		format = "ndjson"
		read = unidetect.ReadNDJSON
	}
	tbl, err := read(name, body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
			return nil, false
		}
		http.Error(w, "bad "+format+": "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	if tbl.NumCols() == 0 {
		http.Error(w, "empty table", http.StatusBadRequest)
		return nil, false
	}
	return tbl, true
}

// DebugHandler serves the observability endpoints of the -debug-addr
// listener: the metrics exposition plus the standard pprof surface. It
// is a separate handler (rather than more mux routes) so profiling can
// bind to localhost while the service port faces the load balancer.
func DebugHandler(reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs srv on ln until ctx is cancelled, then drains gracefully:
// the listener closes immediately (new connections are refused) while
// in-flight requests get drain to finish.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration, logf func(format string, args ...any)) error {
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		if logf != nil {
			logf("unidetectd: draining (up to %v)", drain)
		}
		sctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		done <- srv.Shutdown(sctx)
	}()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-done; err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return nil
}
