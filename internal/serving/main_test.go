package serving

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/unidetect/unidetect"
)

var (
	srvOnce  sync.Once
	srvModel *unidetect.Model
)

func testModel(t testing.TB) *unidetect.Model {
	t.Helper()
	srvOnce.Do(func() {
		bg := unidetect.SyntheticCorpus(unidetect.WebProfile, 2500, 19)
		m, err := unidetect.Train(context.Background(), bg, nil)
		if err != nil {
			panic(err)
		}
		srvModel = m
	})
	return srvModel
}

const typoCSV = "Director\nKevin Doeling\nKevin Dowling\nAlan Myerson\nRob Morrow\nLesli Glatter\nPeter Bonerz\n"

// newTestServer builds a Server for tests and ties its shutdown to
// the test, so async-job workers never outlive their test.
func newTestServer(tb testing.TB, m *unidetect.Model, cfg Config) *Server {
	tb.Helper()
	s, err := New(m, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(s.Close)
	return s
}

// newHandler is the one-liner most tests want: a ready route table.
func newHandler(tb testing.TB, m *unidetect.Model, cfg Config) http.Handler {
	tb.Helper()
	return newTestServer(tb, m, cfg).Handler()
}

func TestDetectEndpoint(t *testing.T) {
	h := newHandler(t, testModel(t), DefaultConfig())
	req := httptest.NewRequest(http.MethodPost, "/v1/detect?name=cast&repair=1", strings.NewReader(typoCSV))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp detectResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Table != "cast" {
		t.Errorf("table = %q", resp.Table)
	}
	if len(resp.Findings) == 0 || resp.Findings[0].Class != "spelling" {
		t.Fatalf("findings = %+v", resp.Findings)
	}
}

func TestDetectEndpointRejectsGET(t *testing.T) {
	h := newHandler(t, testModel(t), DefaultConfig())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/detect", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestDetectEndpointBadBody(t *testing.T) {
	h := newHandler(t, testModel(t), DefaultConfig())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader("\"unterminated")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status = %d: %s", rec.Code, rec.Body)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader("")))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty body status = %d", rec.Code)
	}
}

func TestProfileEndpoint(t *testing.T) {
	h := newHandler(t, testModel(t), DefaultConfig())
	req := httptest.NewRequest(http.MethodPost, "/v1/profile", strings.NewReader("A,B\nx,1\ny,2\n"))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var profiles []unidetect.ColumnProfile
	if err := json.Unmarshal(rec.Body.Bytes(), &profiles); err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 2 || profiles[0].Name != "A" {
		t.Errorf("profiles = %+v", profiles)
	}
}

func TestHealthz(t *testing.T) {
	h := newHandler(t, testModel(t), DefaultConfig())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("status = %d", rec.Code)
	}
}

// TestConcurrentDetect hammers the handler from many goroutines: the
// model must be safe for concurrent readers (run with -race).
func TestConcurrentDetect(t *testing.T) {
	h := newHandler(t, testModel(t), DefaultConfig())
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/detect", strings.NewReader(typoCSV)))
				if rec.Code != http.StatusOK {
					t.Errorf("status = %d", rec.Code)
					return
				}
			}
		}()
	}
	wg.Wait()
}
