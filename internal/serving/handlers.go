package serving

// handlers.go wires the daemon's route table and the simple handlers
// (/v1/detect, /v1/profile). /healthz, /statusz and /metrics bypass the
// protection middleware and the tenant gate: they must answer even when
// the service is saturated, or the orchestrator would kill a
// merely-busy daemon.

import (
	"net/http"

	"github.com/unidetect/unidetect"
)

// detectResponse is the /v1/detect reply.
type detectResponse struct {
	Table    string        `json:"table"`
	Findings []findingJSON `json:"findings"`
}

type findingJSON struct {
	Class   string             `json:"class"`
	Column  string             `json:"column"`
	Rows    []int              `json:"rows"`
	Values  []string           `json:"values,omitempty"`
	Score   float64            `json:"score"`
	Detail  string             `json:"detail,omitempty"`
	Repairs []unidetect.Repair `json:"repairs,omitempty"`
}

// Handler returns the daemon's route table. The async job routes only
// exist when the server was built with a JobsDir.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := w.Write([]byte("ok\n")); err != nil {
			s.logf("unidetectd: write healthz: %v", err)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, s.m.snapshot())
	})
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/v1/detect", s.protect(s.handleDetect))
	mux.HandleFunc("/v1/batch", s.protect(s.handleBatch))
	mux.HandleFunc("/v1/profile", s.protect(s.handleProfile))
	mux.HandleFunc("/v1/reload", s.protect(s.handleReload))
	if s.jobs != nil {
		mux.HandleFunc("/v1/jobs", s.protect(s.handleJobSubmit))
		mux.HandleFunc("/v1/jobs/", s.protect(s.handleJobGet))
	}
	return mux
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	tbl, ok := s.readTable(w, r)
	if !ok {
		return
	}
	findings := s.currentModel().Detect(r.Context(), tbl)
	resp := detectResponse{Table: tbl.Name, Findings: []findingJSON{}}
	withRepairs := r.URL.Query().Get("repair") != ""
	for _, f := range findings {
		jf := findingJSON{
			Class: f.Class.String(), Column: f.Column, Rows: f.Rows,
			Values: f.Values, Score: f.Score, Detail: f.Detail,
		}
		if withRepairs {
			jf.Repairs = unidetect.SuggestRepairs(tbl, f)
		}
		resp.Findings = append(resp.Findings, jf)
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	tbl, ok := s.readTable(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, unidetect.ProfileTable(tbl))
}
