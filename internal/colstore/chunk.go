package colstore

import (
	"github.com/unidetect/unidetect/internal/table"
)

// Chunk is a fixed-row-count horizontal slice of a table in columnar
// form: every column holds the same row range [Base, Base+Rows()).
// Chunks returned by a Source are valid until released (or until the
// next Next call for sources without chunk recycling); consumers that
// retain cell strings past that point must clone them.
type Chunk struct {
	// Index is the chunk ordinal within its source, starting at 0.
	Index int
	// Base is the global row offset of the chunk's first row.
	Base int
	cols []ColumnView
}

// NewChunk builds a chunk from sealed column views (tests and the
// in-memory SliceSource).
//
// alloc-budget: 1 one chunk header per chunk
func NewChunk(index, base int, cols []ColumnView) *Chunk {
	return &Chunk{Index: index, Base: base, cols: cols}
}

// NumCols returns the column count.
func (c *Chunk) NumCols() int { return len(c.cols) }

// Col returns column j's view.
func (c *Chunk) Col(j int) *ColumnView { return &c.cols[j] }

// Rows returns the chunk's row count (0 for a chunk with no columns).
func (c *Chunk) Rows() int {
	if len(c.cols) == 0 {
		return 0
	}
	return c.cols[0].Len()
}

// Bytes returns the total cell payload across columns — the unit of the
// scan driver's bytes-streamed accounting.
func (c *Chunk) Bytes() int {
	n := 0
	for j := range c.cols {
		n += c.cols[j].Bytes()
	}
	return n
}

// Table wraps the chunk as an internal/table table so existing detectors
// run on it unchanged. Cell strings alias the chunk's arenas (one backing
// allocation per column), so the returned table must not outlive the
// chunk.
//
// alloc-budget: 4 chunk-table assembly: table header, column headers and the per-column value slices
func (c *Chunk) Table(name string) *table.Table {
	cols := make([]*table.Column, len(c.cols))
	for j := range c.cols {
		v := &c.cols[j]
		cols[j] = table.NewColumn(v.Name(), v.AppendValues(make([]string, 0, v.Len())))
	}
	return &table.Table{Name: name, Columns: cols}
}
