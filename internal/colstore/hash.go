package colstore

// 128-bit FNV-1a content fingerprints. This is the single definition of
// the fingerprint algorithm shared by the measurement-memoization cache
// (internal/core) and the .ucol chunk frames: a chunk fingerprint written
// by the columnar writer is bit-for-bit the key the serving cache would
// compute for the same column content, so integrity checking and
// memoization agree by construction rather than by convention.
//
// The fingerprint is two independent 64-bit FNV-1a accumulators seeded
// with different offsets; accidental collisions (which would silently
// replay the wrong measurements or accept a corrupt chunk) are a ~2^-128
// event per pair.

// FNVOffset64 and FNVPrime64 are the standard FNV-1a parameters;
// AltOffset64 seeds the second accumulator of the 128-bit fingerprint
// (any odd constant different from the standard offset works — the two
// hashes just need to disagree on collisions).
const (
	FNVOffset64 = 14695981039346656037
	FNVPrime64  = 1099511628211
	AltOffset64 = 0x9e3779b97f4a7c15
)

// NewHash returns the seeded accumulator pair.
func NewHash() (h1, h2 uint64) { return FNVOffset64, AltOffset64 }

// HashString folds one string into the accumulators with length framing,
// so ("ab","c") and ("a","bc") fingerprint differently.
func HashString(h1, h2 uint64, s string) (uint64, uint64) {
	// Frame with the length so value boundaries shift the hash.
	n := len(s)
	for ; n > 0; n >>= 8 {
		b := byte(n)
		h1 = (h1 ^ uint64(b)) * FNVPrime64
		h2 = (h2 ^ uint64(b)) * FNVPrime64
	}
	h1 = (h1 ^ 0xff) * FNVPrime64
	h2 = (h2 ^ 0xff) * FNVPrime64
	for i := 0; i < len(s); i++ {
		h1 = (h1 ^ uint64(s[i])) * FNVPrime64
		h2 = (h2 ^ uint64(s[i])) * FNVPrime64
	}
	return h1, h2
}
