package colstore

import (
	"bytes"
	"io"
	"testing"

	"github.com/unidetect/unidetect/internal/table"
)

func ucolBytes(t *testing.T, tb *table.Table, chunkRows int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteUcol(&buf, NewSliceSource(tb, Options{ChunkRows: chunkRows})); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testUcolTable(t *testing.T) *table.Table {
	return mustTable(t, "cities",
		table.NewColumn("city", []string{"paris", "london", "berlin", "rome", "madrid"}),
		table.NewColumn("pop", []string{"2,140", "8,982", "3,769", "", "3,223"}),
	)
}

func TestUcolRoundTrip(t *testing.T) {
	tb := testUcolTable(t)
	for _, rows := range []int{1, 2, WholeTable} {
		src, err := NewUcolSource(bytes.NewReader(ucolBytes(t, tb, rows)))
		if err != nil {
			t.Fatal(err)
		}
		if src.Name() != "cities" {
			t.Fatalf("name = %q", src.Name())
		}
		got, err := ReadAll(src)
		if err != nil {
			t.Fatalf("chunk %d: %v", rows, err)
		}
		sameTable(t, got, tb)
		if src.Torn() {
			t.Fatal("clean file reported torn")
		}
	}
}

func TestUcolZeroRowRoundTrip(t *testing.T) {
	tb := mustTable(t, "e", table.NewColumn("a", nil))
	src, err := NewUcolSource(bytes.NewReader(ucolBytes(t, tb, WholeTable)))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	sameTable(t, got, tb)
}

// TestUcolTornTail truncates a valid file at every byte offset: the
// reader must never panic, must deliver a verified prefix of the chunk
// stream, and must flag mid-frame truncation as torn.
func TestUcolTornTail(t *testing.T) {
	tb := testUcolTable(t)
	full := ucolBytes(t, tb, 2) // 3 chunk frames
	var wholeChunks int
	{
		src, err := NewUcolSource(bytes.NewReader(full))
		if err != nil {
			t.Fatal(err)
		}
		for {
			if _, err := src.Next(); err != nil {
				break
			}
			wholeChunks++
		}
	}
	if wholeChunks != 3 {
		t.Fatalf("whole file has %d chunks, want 3", wholeChunks)
	}
	// A cut exactly at a frame boundary is indistinguishable from a
	// shorter valid file, so only mid-frame cuts must read as torn.
	boundary := map[int]bool{}
	{
		off := len(ucolMagic)
		for off+4 <= len(full) {
			n := int(full[off])<<24 | int(full[off+1])<<16 | int(full[off+2])<<8 | int(full[off+3])
			off += 4 + n
			boundary[off] = true
		}
	}
	for cut := 0; cut < len(full); cut++ {
		src, err := NewUcolSource(bytes.NewReader(full[:cut]))
		if err != nil {
			// Truncated inside magic or header: rejection is the right
			// outcome — there is no schema to stream into.
			continue
		}
		n := 0
		for {
			c, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("cut %d: hard error %v (truncation must read as torn)", cut, err)
			}
			// Delivered chunks are complete and verified.
			if c.NumCols() != 2 {
				t.Fatalf("cut %d: chunk cols = %d", cut, c.NumCols())
			}
			n++
		}
		if n > wholeChunks {
			t.Fatalf("cut %d: %d chunks from a prefix", cut, n)
		}
		if n < wholeChunks && !src.Torn() && !boundary[cut] {
			t.Fatalf("cut %d: lost chunks but not torn", cut)
		}
	}
}

// TestUcolCorruptCell flips one byte inside a cell's arena bytes: the
// frame is complete, so the fingerprint check must fail hard rather
// than deliver silently wrong data.
func TestUcolCorruptCell(t *testing.T) {
	tb := testUcolTable(t)
	full := ucolBytes(t, tb, WholeTable)
	i := bytes.Index(full, []byte("berlin"))
	if i < 0 {
		t.Fatal("cell bytes not found in encoding")
	}
	full[i] ^= 0x01
	src, err := NewUcolSource(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	_, err = src.Next()
	if err == nil || err == io.EOF {
		t.Fatalf("Next = %v, want fingerprint error", err)
	}
}

func TestUcolBadMagic(t *testing.T) {
	if _, err := NewUcolSource(bytes.NewReader([]byte("not a ucol file at all"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewUcolSource(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestUcolFingerprintMatchesCacheKey pins the contract that a stored
// chunk fingerprint is the same 128-bit FNV the measurement cache
// computes: the reference implementation here is written out longhand.
func TestUcolFingerprintMatchesCacheKey(t *testing.T) {
	v := NewColumnView("pop", []string{"8,011", "", "42"})
	h1, h2 := v.Fingerprint()
	r1, r2 := NewHash()
	for _, s := range []string{"pop", "8,011", "", "42"} {
		r1, r2 = HashString(r1, r2, s)
	}
	if h1 != r1 || h2 != r2 {
		t.Fatalf("fingerprint (%x,%x) != reference (%x,%x)", h1, h2, r1, r2)
	}
}
