package colstore

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/unidetect/unidetect/internal/table"
)

// CSVSource streams a CSV document chunk by chunk. The first record is
// the header; blank or missing header cells get positional names
// (col1, col2, …), records wider than the schema widen it in place
// (backfilling the current chunk with empty cells), and short records
// are padded — the exact semantics of the legacy whole-file reader, so
// ReadCSVAll over a stream reproduces it byte for byte.
type CSVSource struct {
	name      string
	r         *csv.Reader
	closer    io.Closer
	chunkRows int

	names    []string
	header   []string
	builders []arenaBuilder
	index    int
	base     int
	err      error // sticky: io.EOF after the last chunk, or the first read error
}

// NewCSVSource starts streaming CSV from r. The header record is read
// eagerly so ColumnNames is available immediately; an input with no
// records at all yields a source with no columns and no chunks.
func NewCSVSource(name string, r io.Reader, opts Options) (*CSVSource, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // tolerate ragged rows
	// Records are copied into the arena before the next Read, so the
	// reader can safely reuse its record buffer.
	cr.ReuseRecord = true
	s := &CSVSource{name: name, r: cr, chunkRows: opts.chunkRows()}
	hdr, err := cr.Read()
	if err == io.EOF {
		s.err = io.EOF
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("read csv %q: %w", name, err)
	}
	s.header = append([]string(nil), hdr...)
	s.widen(len(s.header), 0)
	return s, nil
}

// positionalName names column j (0-based): the trimmed header cell if
// it exists and is non-blank, else col<j+1>.
//
// alloc-budget: 1 fallback name formatting, once per headerless column per source
func positionalName(header []string, j int) string {
	if j < len(header) {
		if n := strings.TrimSpace(header[j]); n != "" {
			return n
		}
	}
	return fmt.Sprintf("col%d", j+1)
}

// widen grows the schema to w columns, backfilling rowsInChunk empty
// cells in each new builder so every column of the chunk stays aligned.
//
// alloc-budget: 2 schema growth happens only when a record is wider than every record before it
func (s *CSVSource) widen(w, rowsInChunk int) {
	for j := len(s.names); j < w; j++ {
		s.names = append(s.names, positionalName(s.header, j))
		s.builders = append(s.builders, arenaBuilder{})
		b := &s.builders[j]
		b.reset()
		for i := 0; i < rowsInChunk; i++ {
			b.append("")
		}
	}
}

// Name returns the table name.
func (s *CSVSource) Name() string { return s.name }

// ColumnNames returns the schema discovered so far.
func (s *CSVSource) ColumnNames() []string {
	return append([]string(nil), s.names...)
}

// Next reads up to the chunk budget of records and seals them into a
// chunk. It returns io.EOF after the last record has been delivered.
//
// alloc-budget: 2 read-error wrapping plus the per-chunk column header slice
func (s *CSVSource) Next() (*Chunk, error) {
	if s.err != nil {
		return nil, s.err
	}
	for j := range s.builders {
		s.builders[j].reset()
	}
	rows := 0
	for rows < s.chunkRows {
		rec, err := s.r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.err = fmt.Errorf("read csv %q: %w", s.name, err)
			return nil, s.err
		}
		if len(rec) > len(s.builders) {
			s.widen(len(rec), rows)
		}
		for j := range s.builders {
			if j < len(rec) {
				s.builders[j].append(rec[j])
			} else {
				s.builders[j].append("")
			}
		}
		rows++
	}
	if rows == 0 {
		s.err = io.EOF
		return nil, io.EOF
	}
	cols := make([]ColumnView, len(s.builders))
	for j := range s.builders {
		cols[j] = s.builders[j].seal(s.names[j])
	}
	ch := NewChunk(s.index, s.base, cols)
	s.index++
	s.base += rows
	return ch, nil
}

// Close closes the underlying file, if the source owns one.
func (s *CSVSource) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// ReadCSVAll parses a whole CSV document through the streaming reader.
// It replaces the legacy table.ReadCSV with identical semantics.
func ReadCSVAll(name string, r io.Reader) (*table.Table, error) {
	src, err := NewCSVSource(name, r, Options{})
	if err != nil {
		return nil, err
	}
	return ReadAll(src)
}

// OpenCSVFile opens a CSV file as a streaming source; the table name is
// the file's base name without extension. The source owns the file
// handle and closes it on Close.
func OpenCSVFile(path string, opts Options) (*CSVSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := NewCSVSource(tableName(path), f, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	src.closer = f
	return src, nil
}

// ReadCSVFile loads a whole table from a CSV file; the table name is the
// file's base name without extension.
func ReadCSVFile(path string) (*table.Table, error) {
	src, err := OpenCSVFile(path, Options{})
	if err != nil {
		return nil, err
	}
	defer src.Close()
	return ReadAll(src)
}

// tableName derives a table name from a file path: the base name with
// the extension stripped.
func tableName(path string) string {
	base := filepath.Base(path)
	return strings.TrimSuffix(base, filepath.Ext(base))
}
