package colstore

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
)

// .ucol file layout, framed like the training checkpoint: a fixed
// magic, then a framed gob header (table name + column schema), then
// one framed gob record per chunk. Each frame is [4-byte big-endian
// length][payload]; every payload is an independent gob stream, so a
// reader needs no decoder state across frames and a torn final frame
// (from a crashed or still-running writer) is detected and surfaced as
// a clean end-of-stream with Torn() set, exactly like the checkpoint
// loader's truncate-and-resume.
//
// Every column of every chunk carries its 128-bit FNV fingerprint —
// the same function the measurement-memoization cache keys on — so a
// complete-but-corrupt frame is a hard error (the bytes are wrong),
// while a missing tail is recoverable (the bytes just stopped).
var ucolMagic = []byte("UNIDETECT-UCOL\x01")

// ucolMaxFrame bounds a frame so corrupt length prefixes cannot trigger
// huge allocations.
const ucolMaxFrame = 64 << 20

// ucolHeader identifies the table a .ucol file holds.
type ucolHeader struct {
	Name    string
	Columns []string
}

// ucolColumn is one column of one chunk: the arena, its offsets, and
// the content fingerprint of (name, cells).
type ucolColumn struct {
	Offs   []uint32
	Data   []byte
	H1, H2 uint64
}

// ucolChunk is one framed chunk record.
type ucolChunk struct {
	Rows int
	Cols []ucolColumn
}

// writeUcolFrame appends one framed gob value. The frame is assembled
// in memory and written with a single Write so an interrupted writer
// tears at most the final frame.
func writeUcolFrame(w io.Writer, v any) error {
	var payload bytes.Buffer
	payload.Write(make([]byte, 4)) // length placeholder
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("colstore: encode ucol frame: %w", err)
	}
	b := payload.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("colstore: write ucol frame: %w", err)
	}
	return nil
}

// readUcolFrame decodes one frame from r into v. It returns io.EOF at a
// clean frame boundary and errTorn-wrapped errors for torn tails;
// anything else is corruption.
var errTorn = fmt.Errorf("torn frame")

// alloc-budget: 5 one payload buffer per frame plus torn/corruption error construction
func readUcolFrame(r io.Reader, v any) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: %v", errTorn, err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > ucolMaxFrame {
		return fmt.Errorf("colstore: implausible ucol frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("%w: %v", errTorn, err)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("colstore: decode ucol frame: %w", err)
	}
	return nil
}

// UcolWriter streams chunks into a .ucol file. The schema is fixed by
// the header; chunks must match it.
type UcolWriter struct {
	w       io.Writer
	columns []string
}

// NewUcolWriter writes the magic and header and returns a chunk writer.
func NewUcolWriter(w io.Writer, name string, columns []string) (*UcolWriter, error) {
	if _, err := w.Write(ucolMagic); err != nil {
		return nil, fmt.Errorf("colstore: write ucol magic: %w", err)
	}
	cols := append([]string(nil), columns...)
	if err := writeUcolFrame(w, ucolHeader{Name: name, Columns: cols}); err != nil {
		return nil, err
	}
	return &UcolWriter{w: w, columns: cols}, nil
}

// WriteChunk appends one chunk frame, stamping each column with its
// content fingerprint.
func (u *UcolWriter) WriteChunk(c *Chunk) error {
	if c.NumCols() != len(u.columns) {
		return fmt.Errorf("colstore: ucol chunk has %d columns, header has %d (schema widened mid-stream?)", c.NumCols(), len(u.columns))
	}
	rec := ucolChunk{Rows: c.Rows(), Cols: make([]ucolColumn, c.NumCols())}
	for j := 0; j < c.NumCols(); j++ {
		v := c.Col(j)
		h1, h2 := v.Fingerprint()
		offs := v.offs
		if len(offs) == 0 { // zero-value view: normalize to an explicit empty column
			offs = []uint32{0}
		}
		rec.Cols[j] = ucolColumn{
			Offs: offs,
			Data: []byte(v.data),
			H1:   h1,
			H2:   h2,
		}
	}
	return writeUcolFrame(u.w, rec)
}

// WriteUcol drains a source into w as a .ucol stream. Sources whose
// schema widens mid-stream (ragged CSV) cannot be converted directly;
// materialize first.
func WriteUcol(w io.Writer, src Source) error {
	uw, err := NewUcolWriter(w, src.Name(), src.ColumnNames())
	if err != nil {
		return err
	}
	for {
		c, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := uw.WriteChunk(c); err != nil {
			return err
		}
	}
}

// UcolSource streams a .ucol file chunk by chunk, verifying each
// column's fingerprint against the stored one. Chunk geometry is
// whatever the writer produced.
type UcolSource struct {
	name   string
	r      io.Reader
	closer io.Closer
	names  []string
	index  int
	base   int
	torn   bool
	err    error
}

// NewUcolSource validates the magic and header. A file whose header is
// unreadable is rejected outright — there is no schema to resume into.
func NewUcolSource(r io.Reader) (*UcolSource, error) {
	magic := make([]byte, len(ucolMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("colstore: read ucol magic: %w", err)
	}
	if !bytes.Equal(magic, ucolMagic) {
		return nil, fmt.Errorf("colstore: bad ucol magic")
	}
	var hdr ucolHeader
	if err := readUcolFrame(r, &hdr); err != nil {
		if err == io.EOF {
			err = fmt.Errorf("missing header frame")
		}
		return nil, fmt.Errorf("colstore: read ucol header: %w", err)
	}
	return &UcolSource{name: hdr.Name, r: r, names: hdr.Columns}, nil
}

// OpenUcolFile opens a .ucol file as a streaming source. The source
// owns the file handle and closes it on Close.
func OpenUcolFile(path string) (*UcolSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := NewUcolSource(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	src.closer = f
	return src, nil
}

// Name returns the table name stored in the header.
func (s *UcolSource) Name() string { return s.name }

// ColumnNames returns the schema stored in the header.
func (s *UcolSource) ColumnNames() []string {
	return append([]string(nil), s.names...)
}

// Torn reports whether the stream ended on a torn final frame (the
// delivered chunks are still complete and verified).
func (s *UcolSource) Torn() bool { return s.torn }

// Next reads, validates and fingerprint-checks one chunk frame. A torn
// tail ends the stream cleanly with Torn() set; corruption inside a
// complete frame is a hard error.
//
// alloc-budget: 8 per-chunk column views with one arena string each, plus corruption error construction
func (s *UcolSource) Next() (*Chunk, error) {
	if s.err != nil {
		return nil, s.err
	}
	var rec ucolChunk
	if err := readUcolFrame(s.r, &rec); err != nil {
		if err == io.EOF || errors.Is(err, errTorn) {
			s.torn = errors.Is(err, errTorn)
			s.err = io.EOF
			return nil, io.EOF
		}
		s.err = err
		return nil, s.err
	}
	if len(rec.Cols) != len(s.names) {
		s.err = fmt.Errorf("colstore: ucol chunk %d has %d columns, header has %d", s.index, len(rec.Cols), len(s.names))
		return nil, s.err
	}
	cols := make([]ColumnView, len(rec.Cols))
	for j := range rec.Cols {
		rc := &rec.Cols[j]
		if rec.Rows < 0 || len(rc.Offs) != rec.Rows+1 {
			s.err = fmt.Errorf("colstore: ucol chunk %d column %q: %d offsets for %d rows", s.index, s.names[j], len(rc.Offs), rec.Rows)
			return nil, s.err
		}
		v := ColumnView{name: s.names[j], data: string(rc.Data), offs: rc.Offs}
		if err := v.validate(); err != nil {
			s.err = fmt.Errorf("colstore: ucol chunk %d: %w", s.index, err)
			return nil, s.err
		}
		h1, h2 := v.Fingerprint()
		if h1 != rc.H1 || h2 != rc.H2 {
			s.err = fmt.Errorf("colstore: ucol chunk %d column %q: fingerprint mismatch (corrupt frame)", s.index, s.names[j])
			return nil, s.err
		}
		cols[j] = v
	}
	ch := NewChunk(s.index, s.base, cols)
	s.index++
	s.base += rec.Rows
	return ch, nil
}

// Close closes the underlying file, if the source owns one.
func (s *UcolSource) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

