package colstore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"github.com/unidetect/unidetect/internal/table"
)

// NDJSONSource streams newline-delimited JSON objects (one record per
// line) chunk by chunk. The schema is the sorted key set of the first
// object; later objects may introduce new keys, which widen the schema
// (new keys of one record are appended in sorted order, and earlier
// rows of the chunk are backfilled with empty cells). Cell rendering is
// deterministic: strings verbatim, numbers as their source literal
// (json.Number), booleans as "true"/"false", null and missing keys as
// "", and nested arrays/objects re-marshaled compactly (object keys
// sorted by encoding/json).
type NDJSONSource struct {
	name      string
	dec       *json.Decoder
	closer    io.Closer
	chunkRows int

	names    []string
	seen     map[string]bool
	builders []arenaBuilder
	pending  map[string]any // first object, decoded eagerly for the schema
	index    int
	base     int
	err      error
}

// NewNDJSONSource starts streaming NDJSON from r. The first object is
// decoded eagerly so ColumnNames is available immediately; empty input
// yields a source with no columns and no chunks.
func NewNDJSONSource(name string, r io.Reader, opts Options) (*NDJSONSource, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	s := &NDJSONSource{name: name, dec: dec, chunkRows: opts.chunkRows(), seen: map[string]bool{}}
	obj, err := s.decode()
	if err == io.EOF {
		s.err = io.EOF
		return s, nil
	}
	if err != nil {
		return nil, err
	}
	s.pending = obj
	s.widenFor(obj, 0)
	return s, nil
}

// decode reads one record, rejecting non-object values.
//
// alloc-budget: 2 read-error wrapping and the empty-object placeholder for a JSON null record
func (s *NDJSONSource) decode() (map[string]any, error) {
	var obj map[string]any
	if err := s.dec.Decode(&obj); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("read ndjson %q: %w", s.name, err)
	}
	if obj == nil {
		return map[string]any{}, nil
	}
	return obj, nil
}

// widenFor adds any keys of obj missing from the schema, in sorted
// order, backfilling rowsInChunk empty cells in each new builder.
//
// alloc-budget: 4 key scan and schema growth, entered only when a record introduces new keys
func (s *NDJSONSource) widenFor(obj map[string]any, rowsInChunk int) {
	var fresh []string
	for k := range obj {
		if !s.seen[k] {
			fresh = append(fresh, k)
		}
	}
	if len(fresh) == 0 {
		return
	}
	sort.Strings(fresh)
	for _, k := range fresh {
		s.seen[k] = true
		s.names = append(s.names, k)
		var b arenaBuilder
		b.reset()
		for i := 0; i < rowsInChunk; i++ {
			b.append("")
		}
		s.builders = append(s.builders, b)
	}
}

// cellString renders one JSON value as a cell.
//
// alloc-budget: 1 nested arrays/objects re-marshal to a fresh string; scalar cells convert free
func cellString(v any) (string, error) {
	switch x := v.(type) {
	case nil:
		return "", nil
	case string:
		return x, nil
	case json.Number:
		return x.String(), nil
	case bool:
		if x {
			return "true", nil
		}
		return "false", nil
	default:
		// Nested arrays/objects: compact deterministic re-marshal
		// (encoding/json sorts object keys).
		b, err := json.Marshal(x)
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
}

// Name returns the table name.
func (s *NDJSONSource) Name() string { return s.name }

// ColumnNames returns the schema discovered so far.
func (s *NDJSONSource) ColumnNames() []string {
	return append([]string(nil), s.names...)
}

// Next decodes up to the chunk budget of records and seals them into a
// chunk. It returns io.EOF after the last record has been delivered.
//
// alloc-budget: 2 render-error wrapping plus the per-chunk column header slice
func (s *NDJSONSource) Next() (*Chunk, error) {
	if s.err != nil {
		return nil, s.err
	}
	for j := range s.builders {
		s.builders[j].reset()
	}
	rows := 0
	for rows < s.chunkRows {
		var obj map[string]any
		if s.pending != nil {
			obj, s.pending = s.pending, nil
		} else {
			var err error
			obj, err = s.decode()
			if err == io.EOF {
				break
			}
			if err != nil {
				s.err = err
				return nil, s.err
			}
			s.widenFor(obj, rows)
		}
		for j := range s.builders {
			cell, ok := obj[s.names[j]]
			if !ok {
				s.builders[j].append("")
				continue
			}
			str, err := cellString(cell)
			if err != nil {
				s.err = fmt.Errorf("read ndjson %q: %w", s.name, err)
				return nil, s.err
			}
			s.builders[j].append(str)
		}
		rows++
	}
	if rows == 0 {
		s.err = io.EOF
		return nil, io.EOF
	}
	cols := make([]ColumnView, len(s.builders))
	for j := range s.builders {
		cols[j] = s.builders[j].seal(s.names[j])
	}
	ch := NewChunk(s.index, s.base, cols)
	s.index++
	s.base += rows
	return ch, nil
}

// Close closes the underlying file, if the source owns one.
func (s *NDJSONSource) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// ReadNDJSONAll parses a whole NDJSON document through the streaming
// reader.
func ReadNDJSONAll(name string, r io.Reader) (*table.Table, error) {
	src, err := NewNDJSONSource(name, r, Options{})
	if err != nil {
		return nil, err
	}
	return ReadAll(src)
}

// OpenNDJSONFile opens an NDJSON file as a streaming source; the table
// name is the file's base name without extension. The source owns the
// file handle and closes it on Close.
func OpenNDJSONFile(path string, opts Options) (*NDJSONSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := NewNDJSONSource(tableName(path), f, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	src.closer = f
	return src, nil
}

// ReadNDJSONFile loads a whole table from an NDJSON file; the table name
// is the file's base name without extension.
func ReadNDJSONFile(path string) (*table.Table, error) {
	src, err := OpenNDJSONFile(path, Options{})
	if err != nil {
		return nil, err
	}
	defer src.Close()
	return ReadAll(src)
}
