package colstore

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"github.com/unidetect/unidetect/internal/table"
)

func mustTable(t *testing.T, name string, cols ...*table.Column) *table.Table {
	t.Helper()
	tb, err := table.New(name, cols...)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

// sameTable asserts two tables agree on name, schema and every cell.
func sameTable(t *testing.T, got, want *table.Table) {
	t.Helper()
	if got.Name != want.Name {
		t.Fatalf("name = %q, want %q", got.Name, want.Name)
	}
	if got.NumCols() != want.NumCols() {
		t.Fatalf("cols = %d, want %d", got.NumCols(), want.NumCols())
	}
	for j := range want.Columns {
		g, w := got.Columns[j], want.Columns[j]
		if g.Name != w.Name {
			t.Fatalf("col %d name = %q, want %q", j, g.Name, w.Name)
		}
		if g.Len() != w.Len() {
			t.Fatalf("col %q rows = %d, want %d", w.Name, g.Len(), w.Len())
		}
		for i := range w.Values {
			if g.Values[i] != w.Values[i] {
				t.Fatalf("col %q row %d = %q, want %q", w.Name, i, g.Values[i], w.Values[i])
			}
		}
	}
}

func TestColumnViewRoundTrip(t *testing.T) {
	vals := []string{"a", "", "longer value", "8,011", ""}
	v := NewColumnView("price", vals)
	if v.Name() != "price" {
		t.Fatalf("name = %q", v.Name())
	}
	if v.Len() != len(vals) {
		t.Fatalf("len = %d, want %d", v.Len(), len(vals))
	}
	for i, want := range vals {
		if got := v.Value(i); got != want {
			t.Fatalf("value %d = %q, want %q", i, got, want)
		}
	}
	got := v.AppendValues(nil)
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("AppendValues[%d] = %q, want %q", i, got[i], vals[i])
		}
	}
	if v.Bytes() != len("a")+len("longer value")+len("8,011") {
		t.Fatalf("bytes = %d", v.Bytes())
	}
	if err := v.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
}

func TestFingerprintFraming(t *testing.T) {
	// Cell boundaries must shift the fingerprint: ["ab","c"] != ["a","bc"].
	a := NewColumnView("x", []string{"ab", "c"})
	b := NewColumnView("x", []string{"a", "bc"})
	a1, a2 := a.Fingerprint()
	b1, b2 := b.Fingerprint()
	if a1 == b1 && a2 == b2 {
		t.Fatal("boundary shift did not change fingerprint")
	}
	// The column name is part of the content identity.
	c := NewColumnView("y", []string{"ab", "c"})
	c1, c2 := c.Fingerprint()
	if a1 == c1 && a2 == c2 {
		t.Fatal("name change did not change fingerprint")
	}
	// Same content fingerprints identically.
	d := NewColumnView("x", []string{"ab", "c"})
	d1, d2 := d.Fingerprint()
	if a1 != d1 || a2 != d2 {
		t.Fatal("identical content fingerprints differ")
	}
}

func TestSliceSourceChunking(t *testing.T) {
	tb := mustTable(t, "t",
		table.NewColumn("a", []string{"0", "1", "2", "3", "4", "5", "6"}),
		table.NewColumn("b", []string{"x0", "x1", "x2", "x3", "x4", "x5", "x6"}),
	)
	src := NewSliceSource(tb, Options{ChunkRows: 3})
	var bases, rows []int
	for {
		c, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		bases = append(bases, c.Base)
		rows = append(rows, c.Rows())
		if c.NumCols() != 2 {
			t.Fatalf("chunk cols = %d", c.NumCols())
		}
		// Chunk cells line up with the source rows.
		for i := 0; i < c.Rows(); i++ {
			if got, want := c.Col(0).Value(i), fmt.Sprint(c.Base+i); got != want {
				t.Fatalf("cell = %q, want %q", got, want)
			}
		}
	}
	if fmt.Sprint(bases) != "[0 3 6]" || fmt.Sprint(rows) != "[3 3 1]" {
		t.Fatalf("bases %v rows %v", bases, rows)
	}
	// Drained source keeps returning EOF.
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next = %v", err)
	}

	// ReadAll round-trips through a fresh source.
	got, err := ReadAll(NewSliceSource(tb, Options{ChunkRows: 2}))
	if err != nil {
		t.Fatal(err)
	}
	sameTable(t, got, tb)
}

func TestSliceSourceWholeTable(t *testing.T) {
	tb := mustTable(t, "t", table.NewColumn("a", []string{"1", "2"}))
	src := NewSliceSource(tb, Options{ChunkRows: WholeTable})
	c, err := src.Next()
	if err != nil || c.Rows() != 2 || c.Base != 0 {
		t.Fatalf("chunk = %+v, err %v", c, err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("second Next = %v", err)
	}

	// A whole-table source over a zero-row table still emits one chunk so
	// the schema flows through.
	empty := mustTable(t, "e", table.NewColumn("a", nil))
	src = NewSliceSource(empty, Options{ChunkRows: WholeTable})
	c, err = src.Next()
	if err != nil || c.Rows() != 0 || c.NumCols() != 1 {
		t.Fatalf("empty chunk = %+v, err %v", c, err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("second Next = %v", err)
	}

	// A sized source over a zero-row table emits no chunks; ReadAll
	// recovers the schema from ColumnNames.
	got, err := ReadAll(NewSliceSource(empty, Options{ChunkRows: 4}))
	if err != nil {
		t.Fatal(err)
	}
	sameTable(t, got, empty)
}

func TestCSVWholeFileSemantics(t *testing.T) {
	cases := []struct {
		name  string
		csv   string
		want  []*table.Column
		ncols int
	}{
		{
			name: "plain",
			csv:  "a,b\n1,x\n2,y\n",
			want: []*table.Column{
				table.NewColumn("a", []string{"1", "2"}),
				table.NewColumn("b", []string{"x", "y"}),
			},
		},
		{
			name: "ragged short rows pad empty",
			csv:  "a,b,c\n1\n2,y\n",
			want: []*table.Column{
				table.NewColumn("a", []string{"1", "2"}),
				table.NewColumn("b", []string{"", "y"}),
				table.NewColumn("c", []string{"", ""}),
			},
		},
		{
			name: "ragged wide rows widen with positional names",
			csv:  "a\n1,x\n2,y,z\n",
			want: []*table.Column{
				table.NewColumn("a", []string{"1", "2"}),
				table.NewColumn("col2", []string{"x", "y"}),
				table.NewColumn("col3", []string{"", "z"}),
			},
		},
		{
			name: "blank headers get positional names",
			csv:  " , b \n1,2\n",
			want: []*table.Column{
				table.NewColumn("col1", []string{"1"}),
				table.NewColumn("b", []string{"2"}),
			},
		},
		{
			name: "duplicate headers stay positional",
			csv:  "a,a\n1,2\n",
			want: []*table.Column{
				table.NewColumn("a", []string{"1"}),
				table.NewColumn("a", []string{"2"}),
			},
		},
		{
			name: "header only",
			csv:  "a,b\n",
			want: []*table.Column{
				table.NewColumn("a", []string{}),
				table.NewColumn("b", []string{}),
			},
		},
		{
			name: "empty input",
			csv:  "",
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := ReadCSVAll("t", strings.NewReader(tc.csv))
			if err != nil {
				t.Fatal(err)
			}
			want := &table.Table{Name: "t", Columns: tc.want}
			sameTable(t, got, want)
		})
	}
}

func TestCSVChunkedMatchesWhole(t *testing.T) {
	// Widening happens in a late chunk: chunk sizes must not change the
	// materialized table.
	doc := "a,b\n" + strings.Repeat("1,x\n", 10) + "2,y,z,w\n" + strings.Repeat("3,q\n", 5)
	want, err := ReadCSVAll("t", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range []int{1, 2, 3, 7, 64, WholeTable} {
		src, err := NewCSVSource("t", strings.NewReader(doc), Options{ChunkRows: rows})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(src)
		if err != nil {
			t.Fatalf("chunk %d: %v", rows, err)
		}
		sameTable(t, got, want)
	}
}

func TestCSVSourceStreams(t *testing.T) {
	doc := "a,b\n1,x\n2,y\n3,z\n"
	src, err := NewCSVSource("t", strings.NewReader(doc), Options{ChunkRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := src.ColumnNames(); fmt.Sprint(got) != "[a b]" {
		t.Fatalf("names = %v", got)
	}
	c1, err := src.Next()
	if err != nil || c1.Rows() != 2 || c1.Base != 0 || c1.Index != 0 {
		t.Fatalf("chunk1 = %+v err %v", c1, err)
	}
	c2, err := src.Next()
	if err != nil || c2.Rows() != 1 || c2.Base != 2 || c2.Index != 1 {
		t.Fatalf("chunk2 = %+v err %v", c2, err)
	}
	// The earlier chunk's arenas are immutable: still readable after
	// later Next calls.
	if c1.Col(1).Value(0) != "x" || c2.Col(1).Value(0) != "z" {
		t.Fatal("chunk cells corrupted by later reads")
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("Next = %v, want EOF", err)
	}
}

func TestCSVMalformed(t *testing.T) {
	// A bare quote is a CSV syntax error; the streaming reader must
	// surface it, not panic or silently truncate.
	doc := "a,b\n1,\"x\n"
	src, err := NewCSVSource("t", strings.NewReader(doc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err == nil || err == io.EOF {
		t.Fatalf("Next = %v, want parse error", err)
	}
}

func TestNDJSONWholeFile(t *testing.T) {
	doc := `{"b":"x","a":1}
{"a":2.5,"c":true}
{"b":null,"d":{"k":[1,"s"]}}
`
	got, err := ReadNDJSONAll("t", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := mustTable(t, "t",
		// Schema: sorted keys of the first object, then later keys in
		// order of appearance.
		table.NewColumn("a", []string{"1", "2.5", ""}),
		table.NewColumn("b", []string{"x", "", ""}),
		table.NewColumn("c", []string{"", "true", ""}),
		table.NewColumn("d", []string{"", "", `{"k":[1,"s"]}`}),
	)
	sameTable(t, got, want)
}

func TestNDJSONChunkedMatchesWhole(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&b, `{"a":%d,"k%d":"v"}`+"\n", i, i%5)
	}
	doc := b.String()
	want, err := ReadNDJSONAll("t", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range []int{1, 3, 7, WholeTable} {
		src, err := NewNDJSONSource("t", strings.NewReader(doc), Options{ChunkRows: rows})
		if err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(src)
		if err != nil {
			t.Fatalf("chunk %d: %v", rows, err)
		}
		sameTable(t, got, want)
	}
}

func TestNDJSONEmptyAndMalformed(t *testing.T) {
	got, err := ReadNDJSONAll("t", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCols() != 0 {
		t.Fatalf("cols = %d", got.NumCols())
	}
	if _, err := NewNDJSONSource("t", strings.NewReader("[1,2]\n"), Options{}); err == nil {
		t.Fatal("array record accepted")
	}
	src, err := NewNDJSONSource("t", strings.NewReader(`{"a":1}`+"\n{broken"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(src); err == nil {
		t.Fatal("malformed tail accepted")
	}
}

// TestEdgeChunkColumnTypes is the regression suite for defined column
// types on degenerate shapes: zero-row chunks, one-row chunks and
// all-empty cells must produce a defined table.Column.Type (TypeEmpty
// unless a non-empty cell says otherwise) rather than depending on what
// a first-cell sniff would have seen.
func TestEdgeChunkColumnTypes(t *testing.T) {
	cases := []struct {
		name string
		vals []string
		want table.ValueType
	}{
		{"zero rows", nil, table.TypeEmpty},
		{"one empty cell", []string{""}, table.TypeEmpty},
		{"all empty cells", []string{"", "", ""}, table.TypeEmpty},
		{"whitespace only", []string{"  ", "\t"}, table.TypeEmpty},
		{"one string cell", []string{"paris"}, table.TypeString},
		{"one int cell", []string{"42"}, table.TypeInt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ch := NewChunk(0, 0, []ColumnView{NewColumnView("c", tc.vals)})
			tb := ch.Table("t")
			if got := tb.Columns[0].Type(); got != tc.want {
				t.Fatalf("Type = %v, want %v", got, tc.want)
			}
		})
	}

	// A header-only CSV materializes zero-row columns with a defined type.
	tb, err := ReadCSVAll("t", strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range tb.Columns {
		if got := c.Type(); got != table.TypeEmpty {
			t.Fatalf("column %q Type = %v, want TypeEmpty", c.Name, got)
		}
	}
}
