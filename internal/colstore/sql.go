package colstore

import (
	"context"
	"database/sql"
	"fmt"
	"io"
)

// Adapter is the single seam between colstore and database/sql: the
// query subset of *sql.DB (which satisfies it directly), so sqlite,
// postgres or mysql drivers slot in later with no colstore changes and
// tests run against a registered in-memory fake driver.
type Adapter interface {
	QueryContext(ctx context.Context, query string, args ...any) (*sql.Rows, error)
}

// SQLSource streams a SQL result set chunk by chunk. The schema is the
// result set's column list; NULL scans as the empty cell, and every
// driver value is rendered through database/sql's RawBytes conversion
// (the driver's natural text form) and copied into the arena before the
// cursor advances, so no driver-owned buffer outlives one row.
type SQLSource struct {
	name      string
	rows      *sql.Rows
	chunkRows int

	names    []string
	builders []arenaBuilder
	raw      []sql.RawBytes
	scan     []any
	index    int
	base     int
	err      error
}

// NewSQLSource executes query on db and streams the result set. The
// caller's ctx bounds the whole scan, not just the initial query.
func NewSQLSource(ctx context.Context, db Adapter, name, query string, opts Options, args ...any) (*SQLSource, error) {
	rows, err := db.QueryContext(ctx, query, args...)
	if err != nil {
		return nil, fmt.Errorf("colstore: query %q: %w", name, err)
	}
	cols, err := rows.Columns()
	if err != nil {
		rows.Close()
		return nil, fmt.Errorf("colstore: columns of %q: %w", name, err)
	}
	s := &SQLSource{
		name:      name,
		rows:      rows,
		chunkRows: opts.chunkRows(),
		names:     append([]string(nil), cols...),
		builders:  make([]arenaBuilder, len(cols)),
		raw:       make([]sql.RawBytes, len(cols)),
		scan:      make([]any, len(cols)),
	}
	for j := range s.raw {
		s.scan[j] = &s.raw[j]
	}
	return s, nil
}

// Name returns the table name.
func (s *SQLSource) Name() string { return s.name }

// ColumnNames returns the result set's column list.
func (s *SQLSource) ColumnNames() []string {
	return append([]string(nil), s.names...)
}

// Next scans up to the chunk budget of rows and seals them into a
// chunk. It returns io.EOF after the cursor is exhausted.
//
// alloc-budget: 3 scan/iterate error wrapping plus the per-chunk column header slice
func (s *SQLSource) Next() (*Chunk, error) {
	if s.err != nil {
		return nil, s.err
	}
	for j := range s.builders {
		s.builders[j].reset()
	}
	rows := 0
	for rows < s.chunkRows && s.rows.Next() {
		if err := s.rows.Scan(s.scan...); err != nil {
			s.err = fmt.Errorf("colstore: scan %q: %w", s.name, err)
			return nil, s.err
		}
		for j := range s.builders {
			// A nil RawBytes is SQL NULL; appendBytes copies the
			// driver-owned buffer into the arena before the next Next.
			s.builders[j].appendBytes(s.raw[j])
		}
		rows++
	}
	if rows < s.chunkRows {
		// The cursor is exhausted (or failed): surface the iteration
		// error now rather than on the following call.
		if err := s.rows.Err(); err != nil {
			s.err = fmt.Errorf("colstore: iterate %q: %w", s.name, err)
			if rows == 0 {
				return nil, s.err
			}
		} else if rows == 0 {
			s.err = io.EOF
			return nil, io.EOF
		}
	}
	cols := make([]ColumnView, len(s.builders))
	for j := range s.builders {
		cols[j] = s.builders[j].seal(s.names[j])
	}
	ch := NewChunk(s.index, s.base, cols)
	s.index++
	s.base += rows
	return ch, nil
}

// Close releases the SQL cursor.
func (s *SQLSource) Close() error { return s.rows.Close() }
