// Package colstore is the chunked columnar table backend: flat per-column
// cell arenas exposed as immutable ColumnViews, fixed-row-count Chunks
// that internal/table can wrap, and streaming ingestion readers (CSV,
// NDJSON, the .ucol binary format, and database/sql results) that yield
// chunks without ever materializing the whole table. It is the storage
// layer behind core.Predictor.DetectSource, the scan driver for tables
// larger than RAM.
//
// Layout: each column of a chunk is one contiguous byte arena plus an
// offsets slice (rows+1 entries); cell i is arena[offs[i]:offs[i+1]].
// The arena is converted to an immutable string once per column per
// chunk, so reading a cell is an allocation-free substring and every
// cell of the column shares a single backing allocation. Callers that
// retain a cell past the chunk's lifetime must strings.Clone it, or they
// pin the whole column block.
package colstore

import "fmt"

// arenaBuilder accumulates one column's cells into a flat byte arena.
// Builders are reused across chunks by the streaming sources (sealing
// hands the bytes to an immutable string, so only the offsets slice and
// the byte buffer's capacity survive a reset).
type arenaBuilder struct {
	buf  []byte
	offs []uint32
}

// reset prepares the builder for a new chunk.
//
// alloc-budget: 1 offsets slice allocated on first use, then its capacity is recycled chunk to chunk
func (a *arenaBuilder) reset() {
	a.buf = a.buf[:0]
	a.offs = append(a.offs[:0], 0)
}

// append adds one cell.
//
// alloc-budget: 2 arena and offset growth amortize to steady-state capacity after the first chunks
func (a *arenaBuilder) append(cell string) {
	a.buf = append(a.buf, cell...)
	a.offs = append(a.offs, uint32(len(a.buf)))
}

// appendBytes adds one cell from a byte slice (the database/sql scan
// path hands out driver-owned buffers that must be copied immediately).
//
// alloc-budget: 2 arena and offset growth amortize to steady-state capacity after the first chunks
func (a *arenaBuilder) appendBytes(cell []byte) {
	a.buf = append(a.buf, cell...)
	a.offs = append(a.offs, uint32(len(a.buf)))
}

// seal freezes the builder into an immutable ColumnView. The offsets are
// copied (the builder's slice is about to be reset); the cell bytes are
// copied once by the string conversion.
//
// alloc-budget: 2 the column's single backing string and its offsets copy — the per-chunk payload itself
func (a *arenaBuilder) seal(name string) ColumnView {
	return ColumnView{
		name: name,
		data: string(a.buf),
		offs: append([]uint32(nil), a.offs...),
	}
}

// ColumnView is an immutable view of one column of one chunk: a flat
// cell arena plus offsets. The zero value is an empty column.
type ColumnView struct {
	name string
	data string
	offs []uint32 // len = rows+1; offs[0] == 0, offs[rows] == len(data)
}

// NewColumnView builds a view from materialized cell values (the
// in-memory SliceSource and tests use this; streaming sources build
// through the arena).
func NewColumnView(name string, values []string) ColumnView {
	var a arenaBuilder
	a.reset()
	for _, v := range values {
		a.append(v)
	}
	return a.seal(name)
}

// Name returns the column name.
func (v *ColumnView) Name() string { return v.name }

// Len returns the number of cells.
func (v *ColumnView) Len() int {
	if len(v.offs) == 0 {
		return 0
	}
	return len(v.offs) - 1
}

// Bytes returns the arena size in bytes (cell payload only).
func (v *ColumnView) Bytes() int { return len(v.data) }

// Value returns cell i as an allocation-free substring of the arena.
func (v *ColumnView) Value(i int) string {
	return v.data[v.offs[i]:v.offs[i+1]]
}

// AppendValues appends every cell to dst and returns it — the bridge to
// []string consumers. The appended strings alias the arena.
//
// alloc-budget: 1 dst grows to the column's row count once per chunk table
func (v *ColumnView) AppendValues(dst []string) []string {
	n := v.Len()
	for i := 0; i < n; i++ {
		dst = append(dst, v.Value(i))
	}
	return dst
}

// Fingerprint returns the 128-bit FNV-1a content fingerprint over the
// column name and cells with length framing — the same function the
// measurement-memoization cache applies to a materialized column, so a
// stored .ucol fingerprint equals the cache key of the chunk's column.
func (v *ColumnView) Fingerprint() (h1, h2 uint64) {
	h1, h2 = NewHash()
	h1, h2 = HashString(h1, h2, v.name)
	n := v.Len()
	for i := 0; i < n; i++ {
		h1, h2 = HashString(h1, h2, v.Value(i))
	}
	return h1, h2
}

// validate checks the structural invariants of a view deserialized from
// untrusted bytes: monotone offsets starting at 0 and ending at the
// arena length.
//
// alloc-budget: 4 corruption error construction only; the accept path is allocation-free
func (v *ColumnView) validate() error {
	if len(v.offs) == 0 {
		if len(v.data) != 0 {
			return fmt.Errorf("colstore: column %q: data without offsets", v.name)
		}
		return nil
	}
	if v.offs[0] != 0 {
		return fmt.Errorf("colstore: column %q: offsets start at %d", v.name, v.offs[0])
	}
	for i := 1; i < len(v.offs); i++ {
		if v.offs[i] < v.offs[i-1] {
			return fmt.Errorf("colstore: column %q: offsets not monotone at %d", v.name, i)
		}
	}
	if got, want := v.offs[len(v.offs)-1], uint32(len(v.data)); got != want {
		return fmt.Errorf("colstore: column %q: offsets end at %d, arena has %d bytes", v.name, got, want)
	}
	return nil
}
