package colstore

import (
	"bytes"
	"io"
	"testing"

	"github.com/unidetect/unidetect/internal/table"
)

// FuzzUcolRead feeds arbitrary bytes (seeded with valid files and their
// torn-tail truncations) to the .ucol reader: it must never panic, and
// every chunk it does deliver must be structurally valid and pass its
// fingerprint check.
func FuzzUcolRead(f *testing.F) {
	tb := table.MustNew("t",
		table.NewColumn("a", []string{"x", "8,011", ""}),
		table.NewColumn("b", []string{"1", "2", "3"}),
	)
	var buf bytes.Buffer
	if err := WriteUcol(&buf, NewSliceSource(tb, Options{ChunkRows: 2})); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add(valid[:len(ucolMagic)+2])
	f.Add([]byte("UNIDETECT-UCOL\x01"))
	f.Add([]byte{})
	f.Add([]byte("UNIDETECT-CKPT\x01")) // the sibling format's magic
	f.Fuzz(func(t *testing.T, data []byte) {
		src, err := NewUcolSource(bytes.NewReader(data))
		if err != nil {
			return
		}
		width := len(src.ColumnNames())
		for {
			c, err := src.Next()
			if err != nil {
				if err != io.EOF {
					return // hard corruption error is a valid outcome
				}
				break
			}
			if c.NumCols() != width {
				t.Fatalf("chunk width %d != schema width %d", c.NumCols(), width)
			}
			for j := 0; j < c.NumCols(); j++ {
				if err := c.Col(j).validate(); err != nil {
					t.Fatalf("delivered invalid column: %v", err)
				}
			}
		}
	})
}

// FuzzCSVChunks asserts the chunked CSV reader is equivalent to the
// whole-file read at every chunk size: same table or same failure, so
// chunk geometry can never change what gets scanned.
func FuzzCSVChunks(f *testing.F) {
	f.Add([]byte("a,b\n1,x\n2,y\n"), byte(1))
	f.Add([]byte("a\n1,x\n2,y,z\n"), byte(2)) // widening rows
	f.Add([]byte(" ,b\n1\n"), byte(3))        // blank header + short row
	f.Add([]byte("a,b\n"), byte(1))           // header only
	f.Add([]byte(""), byte(5))
	f.Add([]byte("a,b\n1,\"x\n"), byte(2)) // bare quote: parse error
	f.Fuzz(func(t *testing.T, data []byte, chunk byte) {
		rows := int(chunk%7) + 1
		whole, wErr := ReadCSVAll("t", bytes.NewReader(data))
		var chunked *table.Table
		src, cErr := NewCSVSource("t", bytes.NewReader(data), Options{ChunkRows: rows})
		if cErr == nil {
			chunked, cErr = ReadAll(src)
		}
		if (wErr == nil) != (cErr == nil) {
			t.Fatalf("whole err = %v, chunked(%d) err = %v", wErr, rows, cErr)
		}
		if wErr != nil {
			return
		}
		if whole.NumCols() != chunked.NumCols() || whole.NumRows() != chunked.NumRows() {
			t.Fatalf("shape %dx%d != chunked %dx%d",
				whole.NumCols(), whole.NumRows(), chunked.NumCols(), chunked.NumRows())
		}
		for j := range whole.Columns {
			w, c := whole.Columns[j], chunked.Columns[j]
			if w.Name != c.Name {
				t.Fatalf("col %d name %q != %q", j, w.Name, c.Name)
			}
			for i := range w.Values {
				if w.Values[i] != c.Values[i] {
					t.Fatalf("col %q row %d diverges at chunk size %d", w.Name, i, rows)
				}
			}
		}
	})
}
