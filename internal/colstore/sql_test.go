package colstore

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"io"
	"sync"
	"testing"

	"github.com/unidetect/unidetect/internal/table"
)

// An in-memory database/sql driver, registered once: the Adapter seam
// is exercised through the real database/sql machinery (connection
// pool, RawBytes conversion, NULL handling) without any external
// engine, which is exactly how a sqlite/postgres driver would plug in.

type fakeDriver struct{}

// fakeData is what every query returns; tests set it before querying.
// guarded by fakeMu
var fakeData struct {
	cols []string
	rows [][]driver.Value
}

var fakeMu sync.Mutex

func (fakeDriver) Open(name string) (driver.Conn, error) { return fakeConn{}, nil }

type fakeConn struct{}

func (fakeConn) Prepare(query string) (driver.Stmt, error) { return fakeStmt{}, nil }
func (fakeConn) Close() error                              { return nil }
func (fakeConn) Begin() (driver.Tx, error)                 { return nil, driver.ErrSkip }

type fakeStmt struct{}

func (fakeStmt) Close() error  { return nil }
func (fakeStmt) NumInput() int { return 0 }
func (fakeStmt) Exec(args []driver.Value) (driver.Result, error) {
	return nil, driver.ErrSkip
}
func (fakeStmt) Query(args []driver.Value) (driver.Rows, error) {
	fakeMu.Lock()
	defer fakeMu.Unlock()
	rows := make([][]driver.Value, len(fakeData.rows))
	copy(rows, fakeData.rows)
	return &fakeRows{cols: fakeData.cols, rows: rows}, nil
}

type fakeRows struct {
	cols []string
	rows [][]driver.Value
	i    int
}

func (r *fakeRows) Columns() []string { return r.cols }
func (r *fakeRows) Close() error      { return nil }
func (r *fakeRows) Next(dest []driver.Value) error {
	if r.i >= len(r.rows) {
		return io.EOF
	}
	copy(dest, r.rows[r.i])
	r.i++
	return nil
}

var registerFake = sync.OnceValue(func() *sql.DB {
	sql.Register("colstorefake", fakeDriver{})
	db, err := sql.Open("colstorefake", "")
	if err != nil {
		panic(err)
	}
	return db
})

func TestSQLSource(t *testing.T) {
	db := registerFake()
	fakeMu.Lock()
	fakeData.cols = []string{"city", "pop", "note"}
	fakeData.rows = [][]driver.Value{
		{"paris", int64(2140526), "capital"},
		{"london", int64(8982000), nil}, // NULL note
		{"berlin", int64(3769000), []byte("raw bytes")},
		{"rome", 2.873, "float pop"},
		{"madrid", int64(3223000), ""},
	}
	fakeMu.Unlock()

	src, err := NewSQLSource(context.Background(), db, "cities", "SELECT * FROM cities", Options{ChunkRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	got, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := mustTable(t, "cities",
		table.NewColumn("city", []string{"paris", "london", "berlin", "rome", "madrid"}),
		table.NewColumn("pop", []string{"2140526", "8982000", "3769000", "2.873", "3223000"}),
		table.NewColumn("note", []string{"capital", "", "raw bytes", "float pop", ""}),
	)
	sameTable(t, got, want)
}

func TestSQLSourceChunking(t *testing.T) {
	db := registerFake()
	fakeMu.Lock()
	fakeData.cols = []string{"n"}
	fakeData.rows = [][]driver.Value{{int64(1)}, {int64(2)}, {int64(3)}}
	fakeMu.Unlock()

	src, err := NewSQLSource(context.Background(), db, "t", "SELECT n", Options{ChunkRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	c1, err := src.Next()
	if err != nil || c1.Rows() != 2 || c1.Base != 0 {
		t.Fatalf("chunk1 = %+v err %v", c1, err)
	}
	c2, err := src.Next()
	if err != nil || c2.Rows() != 1 || c2.Base != 2 {
		t.Fatalf("chunk2 = %+v err %v", c2, err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("Next = %v, want EOF", err)
	}
	// Data copied out of driver-owned buffers stays intact.
	if c1.Col(0).Value(0) != "1" || c2.Col(0).Value(0) != "3" {
		t.Fatal("cells corrupted after cursor advance")
	}
}
