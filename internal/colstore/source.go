package colstore

import (
	"io"
	"math"

	"github.com/unidetect/unidetect/internal/table"
)

// DefaultChunkRows is the chunk row budget used when Options.ChunkRows
// is zero. It is small enough that a chunk of a wide table stays cache-
// friendly and large enough to amortize per-chunk overhead.
const DefaultChunkRows = 256

// WholeTable is an Options.ChunkRows sentinel that disables chunking:
// the source yields the entire table as a single chunk (the ∞ point of
// the difftest chunk-size sweep).
const WholeTable = -1

// Options configures a streaming source.
type Options struct {
	// ChunkRows is the row budget per chunk: 0 means DefaultChunkRows,
	// negative (WholeTable) means a single chunk with every row.
	ChunkRows int
}

func (o Options) chunkRows() int {
	switch {
	case o.ChunkRows == 0:
		return DefaultChunkRows
	case o.ChunkRows < 0:
		return math.MaxInt
	default:
		return o.ChunkRows
	}
}

// Source is a streaming chunked table: a fixed (or monotonically
// widening, for ragged CSV/NDJSON input) column schema plus a sequence
// of row chunks. Column j of every chunk is the same logical column;
// sources that discover new columns mid-stream append them, backfilling
// earlier rows of the current chunk with empty cells — rows of chunks
// already emitted are implicitly empty in the new column.
//
// Next returns io.EOF after the last chunk. Sources emit only chunks
// with at least one row, except a whole-table source over a zero-row
// table, which emits one empty chunk so the schema still flows through.
// A chunk stays valid after subsequent Next calls (its arenas are
// immutable), but the scan driver releases each chunk before pulling
// the next so only one is resident per column at a time.
type Source interface {
	// Name is the table name.
	Name() string
	// ColumnNames returns the schema discovered so far (complete once
	// Next has returned io.EOF). The slice must not be mutated.
	ColumnNames() []string
	// Next returns the next chunk, or io.EOF at end of stream.
	Next() (*Chunk, error)
	// Close releases underlying resources (files, SQL cursors).
	Close() error
}

// Releaser is an optional Source extension. The scan driver calls
// Release as soon as it is done with a chunk — before pulling the next
// one — letting instrumented sources verify residency (at most one
// outstanding chunk) and recycling sources reclaim buffers.
type Releaser interface {
	Release(*Chunk)
}

// SliceSource streams an in-memory table chunk by chunk — the bridge
// that lets difftest run the chunked driver and the in-memory reference
// over identical data, and the backing source for `.ucol` conversion of
// already-loaded tables.
type SliceSource struct {
	tab       *table.Table
	chunkRows int
	row       int
	index     int
	done      bool
}

// NewSliceSource wraps a table. The table must not be mutated while the
// source is draining.
func NewSliceSource(t *table.Table, opts Options) *SliceSource {
	return &SliceSource{tab: t, chunkRows: opts.chunkRows()}
}

// Name returns the wrapped table's name.
func (s *SliceSource) Name() string { return s.tab.Name }

// ColumnNames returns the wrapped table's column names.
func (s *SliceSource) ColumnNames() []string {
	names := make([]string, len(s.tab.Columns))
	for j, c := range s.tab.Columns {
		names[j] = c.Name
	}
	return names
}

// Next returns the next chunk of rows.
//
// alloc-budget: 1 per-chunk column view slice; the views alias the table's existing cell strings
func (s *SliceSource) Next() (*Chunk, error) {
	if s.done {
		return nil, io.EOF
	}
	rows := s.tab.NumRows()
	if s.row >= rows {
		// A whole-table source over an empty (but non-degenerate) table
		// still emits one zero-row chunk so consumers see the schema.
		if !(s.row == 0 && s.chunkRows == math.MaxInt && s.tab.NumCols() > 0) {
			s.done = true
			return nil, io.EOF
		}
	}
	n := rows - s.row
	if n > s.chunkRows {
		n = s.chunkRows
	}
	cols := make([]ColumnView, len(s.tab.Columns))
	for j, c := range s.tab.Columns {
		cols[j] = NewColumnView(c.Name, c.Values[s.row:s.row+n])
	}
	ch := NewChunk(s.index, s.row, cols)
	s.index++
	s.row += n
	if s.row >= rows {
		s.done = true
	}
	return ch, nil
}

// Close is a no-op.
func (s *SliceSource) Close() error { return nil }

// ReadAll drains a source into a fully materialized table: the inverse
// of NewSliceSource, and the common loader behind the CLI/daemon file
// readers. Columns are unioned by position (sources only ever widen),
// with rows that predate a column's first appearance padded with empty
// cells — the same padding the legacy whole-file CSV reader applied to
// ragged records.
func ReadAll(src Source) (*table.Table, error) {
	var (
		names []string
		vals  [][]string
		total int
	)
	for {
		c, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for j := 0; j < c.NumCols(); j++ {
			v := c.Col(j)
			if j == len(names) {
				names = append(names, v.Name())
				vals = append(vals, make([]string, total, total+v.Len()))
			}
			vals[j] = v.AppendValues(vals[j])
		}
		total += c.Rows()
		for j := range vals {
			for len(vals[j]) < total {
				vals[j] = append(vals[j], "")
			}
		}
	}
	if names == nil {
		// No chunks (e.g. a header-only CSV): the schema still defines
		// empty columns.
		for _, n := range src.ColumnNames() {
			names = append(names, n)
			vals = append(vals, make([]string, 0))
		}
	}
	cols := make([]*table.Column, len(names))
	for j := range names {
		cols[j] = table.NewColumn(names[j], vals[j])
	}
	return table.New(src.Name(), cols...)
}
