package core_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/table"
)

// trainSmall trains a model over a small synthetic WEB-like corpus; shared
// across tests via sync.Once-style caching in TestMain would hide timing,
// so we keep one helper with its own cache.
var (
	cachedModel *core.Model
	cachedBG    *corpus.Corpus
)

func trainSmall(t testing.TB) (*core.Model, *corpus.Corpus) {
	t.Helper()
	if cachedModel != nil {
		return cachedModel, cachedBG
	}
	spec := datagen.Spec{Name: "train", Profile: datagen.ProfileWeb, NumTables: 4000,
		AvgRows: 20, AvgCols: 4.6, ErrorRate: 0.005, Seed: 7}
	res := datagen.Generate(spec)
	bg := corpus.New(spec.Name, res.Tables)
	cfg := core.DefaultConfig()
	m, err := core.Train(context.Background(), cfg, bg, detectors.All(cfg, detectors.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	cachedModel, cachedBG = m, bg
	return m, bg
}

func TestTrainProducesEvidence(t *testing.T) {
	m, bg := trainSmall(t)
	if m.CorpusTables != bg.NumTables() {
		t.Errorf("CorpusTables = %d", m.CorpusTables)
	}
	for c := core.Class(0); int(c) < core.NumClasses; c++ {
		cm := m.Classes[c]
		if cm == nil {
			t.Fatalf("class %v missing", c)
		}
		if cm.Samples() == 0 {
			t.Errorf("class %v has no samples", c)
		}
		if c != core.ClassFDSynth && len(cm.Buckets) < 3 {
			t.Errorf("class %v has only %d buckets", c, len(cm.Buckets))
		}
	}
}

func TestDetectInjectedErrors(t *testing.T) {
	m, _ := trainSmall(t)
	testSpec := datagen.Spec{Name: "test", Profile: datagen.ProfileWeb, NumTables: 600,
		AvgRows: 20, AvgCols: 4.6, ErrorRate: 0.3, Seed: 99}
	res := datagen.Generate(testSpec)

	pred := core.NewPredictor(m, detectors.All(m.Config, detectors.Options{}), &core.Env{Index: cachedBG.Index()})
	findings := pred.DetectAll(context.Background(), res.Tables)
	if len(findings) == 0 {
		t.Fatal("no findings at all")
	}

	labelAt := map[[2]string]map[int]datagen.ErrorClass{}
	for _, l := range res.Labels {
		k := [2]string{l.Table, l.Column}
		if labelAt[k] == nil {
			labelAt[k] = map[int]datagen.ErrorClass{}
		}
		labelAt[k][l.Row] = l.Class
	}
	matches := func(f core.Finding) bool {
		// FD findings name "Lhs→Rhs"; check both halves.
		cols := []string{f.Column}
		if i := indexRune(f.Column, '→'); i >= 0 {
			cols = []string{f.Column[:i], f.Column[i+len("→"):]}
		}
		for _, col := range cols {
			rows := labelAt[[2]string{f.Table, col}]
			for _, r := range f.Rows {
				if _, ok := rows[r]; ok {
					return true
				}
			}
		}
		return false
	}

	// Precision of the top 50 merged findings should be high.
	top := findings
	if len(top) > 50 {
		top = top[:50]
	}
	hits := 0
	for _, f := range top {
		if matches(f) {
			hits++
		}
	}
	prec := float64(hits) / float64(len(top))
	if prec < 0.8 {
		for i, f := range top {
			if i > 14 {
				break
			}
			t.Logf("top[%d] %s match=%v", i, f, matches(f))
		}
		t.Errorf("precision@%d = %.2f, want >= 0.7 (%d labels total)", len(top), prec, len(res.Labels))
	}
}

func indexRune(s string, r rune) int {
	for i, c := range s {
		if c == r {
			return i
		}
	}
	return -1
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	m, _ := trainSmall(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := core.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.CorpusTables != m.CorpusTables || len(got.Classes) != len(m.Classes) {
		t.Errorf("round trip: tables %d vs %d, classes %d vs %d",
			got.CorpusTables, m.CorpusTables, len(got.Classes), len(m.Classes))
	}
	// A loaded model must produce identical LR scores.
	det := detectors.ByClass(m.Config, detectors.Options{}, core.ClassUniqueness)
	tbl := table.MustNew("t", table.NewColumn("ID", dupIDColumn(100)))
	env := &core.Env{Index: cachedBG.Index()}
	measures := det.Measure(tbl, env)
	if len(measures) == 0 {
		t.Fatal("no measurement")
	}
	lr1, s1 := m.LR(core.ClassUniqueness, det, measures[0])
	lr2, s2 := got.LR(core.ClassUniqueness, det, measures[0])
	if lr1 != lr2 || s1 != s2 {
		t.Errorf("LR differs after reload: (%v,%d) vs (%v,%d)", lr1, s1, lr2, s2)
	}
}

func dupIDColumn(n int) []string {
	vals := make([]string, n)
	for i := range vals {
		vals[i] = "ZX" + string(rune('A'+i%26)) + string(rune('A'+(i/26)%26)) + string(rune('0'+i%10))
	}
	vals[n-1] = vals[0]
	return vals
}

func TestLoadModelCorrupt(t *testing.T) {
	if _, err := core.LoadModel(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage should not load")
	}
}

func TestSortFindingsDeterministic(t *testing.T) {
	fs := []core.Finding{
		{LR: 0.5, Table: "b"},
		{LR: 0.1, Table: "c"},
		{LR: 0.5, Table: "a"},
		{LR: 0.1, Table: "c", Support: 10},
	}
	core.SortFindings(fs)
	if fs[0].Support != 10 {
		t.Error("higher support should win ties")
	}
	if fs[1].Table != "c" || fs[2].Table != "a" || fs[3].Table != "b" {
		t.Errorf("order: %v", fs)
	}
}

// TestSortFindingsFullRowTieBreak is the regression test for the
// shard-order bug: findings with equal LR, support, table, column and
// *first* row — e.g. two duplicate groups both starting at row 0 —
// compared "equal" under the old first-row tie-break, so sort.Slice
// (unstable) ordered them by DetectAll worker arrival. The comparator
// must order the full row sets (and then class), making every initial
// permutation sort to the same sequence.
func TestSortFindingsFullRowTieBreak(t *testing.T) {
	base := func() []core.Finding {
		return []core.Finding{
			{LR: 0.2, Table: "t", Column: "c", Rows: []int{0, 7}, Class: core.ClassUniqueness},
			{LR: 0.2, Table: "t", Column: "c", Rows: []int{0, 3}, Class: core.ClassUniqueness},
			{LR: 0.2, Table: "t", Column: "c", Rows: []int{0, 3, 5}, Class: core.ClassUniqueness},
			{LR: 0.2, Table: "t", Column: "c", Rows: []int{0, 3}, Class: core.ClassFD},
			{LR: 0.2, Table: "t", Column: "c", Rows: []int{0}, Class: core.ClassUniqueness},
		}
	}
	want := [][]int{{0}, {0, 3}, {0, 3}, {0, 3, 5}, {0, 7}}
	wantClass := []core.Class{core.ClassUniqueness, core.ClassUniqueness, core.ClassFD,
		core.ClassUniqueness, core.ClassUniqueness}
	// Rotate through several initial permutations; each must converge.
	for rot := 0; rot < 5; rot++ {
		fs := base()
		rotated := append(fs[rot:], fs[:rot]...)
		core.SortFindings(rotated)
		for i, f := range rotated {
			if fmt.Sprint(f.Rows) != fmt.Sprint(want[i]) || f.Class != wantClass[i] {
				t.Fatalf("rotation %d position %d: rows %v class %v, want rows %v class %v",
					rot, i, f.Rows, f.Class, want[i], wantClass[i])
			}
		}
	}
}

func TestConfigEpsilon(t *testing.T) {
	cfg := core.DefaultConfig()
	if cfg.Epsilon(50) != 1 {
		t.Errorf("Epsilon(50) = %d", cfg.Epsilon(50))
	}
	if cfg.Epsilon(1000) != 10 {
		t.Errorf("Epsilon(1000) = %d", cfg.Epsilon(1000))
	}
}

func TestClassString(t *testing.T) {
	if core.ClassSpelling.String() != "spelling" || core.Class(99).String() == "" {
		t.Error("Class.String broken")
	}
}

func TestFindingString(t *testing.T) {
	f := core.Finding{Class: core.ClassOutlier, Table: "t", Column: "c", Rows: []int{3},
		Values: []string{"8.716"}, LR: 0.001, Theta1: 8.1, Theta2: 3.5, Support: 120}
	s := f.String()
	if s == "" || !bytes.Contains([]byte(s), []byte("outlier")) {
		t.Errorf("String = %q", s)
	}
}
