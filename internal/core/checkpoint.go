package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
)

// Checkpoint file layout. The format favours crash tolerance over
// compactness: a fixed magic, then a framed gob header carrying the job
// fingerprint, then one framed gob record per completed reduce bucket.
// Each frame is [4-byte big-endian length][payload]; every payload is an
// independent gob stream, so appending after a crash needs no decoder
// state and a torn final frame is detected and truncated away on open.
var ckptMagic = []byte("UNIDETECT-CKPT\x01")

// ckptMaxFrame bounds a frame so corrupt length prefixes cannot trigger
// huge allocations (a grid of 64 bins is ~100 KiB of gob).
const ckptMaxFrame = 16 << 20

// ckptHeader identifies the job a checkpoint belongs to.
type ckptHeader struct {
	Fingerprint uint64
}

// ckptRecord is one completed reduce bucket.
type ckptRecord struct {
	Class Class
	Key   feature.Key
	Grid  *evidence.Grid
}

// fingerprint hashes everything that determines the learning job's
// reduce buckets — config, corpus shape and detector set — so a stale
// checkpoint from a different job is discarded instead of corrupting the
// model.
func fingerprint(cfg Config, bg *corpus.Corpus, detectors []Detector) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v|%d|%d", cfg, bg.NumTables(), bg.NumColumns())
	for _, t := range bg.Tables {
		fmt.Fprintf(h, "|%s:%dx%d", t.Name, t.NumCols(), t.NumRows())
	}
	for _, det := range detectors {
		fmt.Fprintf(h, "|%d:%d", det.Class(), det.Quantizer().Bins())
	}
	return h.Sum64()
}

// checkpointFile is an append-only record of completed reduce buckets.
type checkpointFile struct {
	f    *os.File
	path string
	logf func(format string, args ...any)
}

func (c *checkpointFile) log(format string, args ...any) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}

// openCheckpoint opens (or creates) the checkpoint at path and returns
// the buckets a previous run already completed. A file whose magic or
// fingerprint does not match, or whose header is torn, is discarded and
// restarted; a valid file with a torn tail is truncated to the last
// complete record and resumed.
func openCheckpoint(path string, fp uint64, logf func(string, ...any)) (*checkpointFile, map[bucketID]*evidence.Grid, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("core: open checkpoint: %w", err)
	}
	c := &checkpointFile{f: f, path: path, logf: logf}
	done, err := c.load(fp)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	return c, done, nil
}

// load validates the header and replays complete records, leaving the
// file offset at the end of the last valid frame, ready for appends.
func (c *checkpointFile) load(fp uint64) (map[bucketID]*evidence.Grid, error) {
	done := map[bucketID]*evidence.Grid{}
	var hdr ckptHeader
	offset, err := c.readHeader(&hdr)
	if err != nil || hdr.Fingerprint != fp {
		if err == nil {
			c.log("core: checkpoint %s belongs to a different job (fingerprint %x != %x); restarting", c.path, hdr.Fingerprint, fp)
		} else if offset > 0 {
			// Non-empty but unreadable: a torn or foreign file.
			c.log("core: checkpoint %s unreadable (%v); restarting", c.path, err)
		}
		return done, c.restart(fp)
	}
	valid := offset
	for {
		var rec ckptRecord
		n, err := c.readFrame(valid, &rec)
		if err != nil {
			c.log("core: checkpoint %s: torn tail at offset %d (%v); truncating", c.path, valid, err)
			break
		}
		if n == 0 { // clean EOF
			break
		}
		if rec.Grid == nil || rec.Grid.N <= 0 || len(rec.Grid.Counts) != rec.Grid.N*rec.Grid.N {
			c.log("core: checkpoint %s: malformed grid at offset %d; truncating", c.path, valid)
			break
		}
		done[bucketID{class: rec.Class, key: rec.Key}] = rec.Grid
		valid += n
	}
	if err := c.f.Truncate(valid); err != nil {
		return nil, fmt.Errorf("core: truncate checkpoint: %w", err)
	}
	if _, err := c.f.Seek(valid, io.SeekStart); err != nil {
		return nil, fmt.Errorf("core: seek checkpoint: %w", err)
	}
	if len(done) > 0 {
		c.log("core: resuming from checkpoint %s: %d buckets already reduced", c.path, len(done))
	}
	return done, nil
}

// readHeader reads magic + header frame, returning the offset of the
// first record frame.
func (c *checkpointFile) readHeader(hdr *ckptHeader) (int64, error) {
	magic := make([]byte, len(ckptMagic))
	if _, err := io.ReadFull(c.f, magic); err != nil {
		if err == io.EOF { // brand-new file
			return 0, io.EOF
		}
		return 1, err
	}
	if !bytes.Equal(magic, ckptMagic) {
		return 1, fmt.Errorf("bad magic")
	}
	off := int64(len(ckptMagic))
	n, err := c.readFrame(off, hdr)
	if err != nil {
		return 1, err
	}
	if n == 0 {
		return 1, fmt.Errorf("missing header frame")
	}
	return off + n, nil
}

// readFrame decodes one frame at offset into v. It returns the total
// frame size, 0 at a clean EOF, or an error for torn/corrupt frames.
func (c *checkpointFile) readFrame(offset int64, v any) (int64, error) {
	var lenBuf [4]byte
	if _, err := c.f.ReadAt(lenBuf[:], offset); err != nil {
		if err == io.EOF {
			return 0, nil
		}
		return 0, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > ckptMaxFrame {
		return 0, fmt.Errorf("implausible frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := c.f.ReadAt(payload, offset+4); err != nil {
		return 0, err // includes torn tails (unexpected EOF)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return 0, err
	}
	return 4 + int64(n), nil
}

// restart truncates the file and writes a fresh magic + header.
func (c *checkpointFile) restart(fp uint64) error {
	if err := c.f.Truncate(0); err != nil {
		return fmt.Errorf("core: reset checkpoint: %w", err)
	}
	if _, err := c.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("core: reset checkpoint: %w", err)
	}
	if _, err := c.f.Write(ckptMagic); err != nil {
		return fmt.Errorf("core: write checkpoint magic: %w", err)
	}
	return c.writeFrame(ckptHeader{Fingerprint: fp})
}

// writeFrame appends one framed gob value. The frame is assembled in
// memory and written with a single Write so a crash tears at most the
// final frame, which load detects and truncates.
func (c *checkpointFile) writeFrame(v any) error {
	var payload bytes.Buffer
	payload.Write(make([]byte, 4)) // length placeholder
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return fmt.Errorf("core: encode checkpoint frame: %w", err)
	}
	b := payload.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	if _, err := c.f.Write(b); err != nil {
		return fmt.Errorf("core: write checkpoint frame: %w", err)
	}
	return nil
}

// append durably records one completed reduce bucket.
func (c *checkpointFile) append(id bucketID, g *evidence.Grid) error {
	return c.writeFrame(ckptRecord{Class: id.class, Key: id.key, Grid: g})
}

// Close closes the file, keeping it on disk for a later resume.
func (c *checkpointFile) Close() error { return c.f.Close() }

// CloseAndRemove deletes the checkpoint — the job completed, so there is
// nothing left to resume.
func (c *checkpointFile) CloseAndRemove() error {
	if err := c.f.Close(); err != nil {
		return fmt.Errorf("core: close checkpoint: %w", err)
	}
	if err := os.Remove(c.path); err != nil {
		return fmt.Errorf("core: remove checkpoint: %w", err)
	}
	return nil
}
