// Package core implements the unified Uni-Detect framework of §2: the
// perturbation-based likelihood-ratio test (Definitions 2–4), the offline
// learner that crunches the background corpus T into materialized
// per-bucket evidence grids (a MapReduce-like job, §2.2.3), and the online
// predictor that turns grid lookups into ranked error findings.
//
// Each error class plugs in as a Detector supplying the class's metric
// function m, natural perturbation P, and featurization F; the framework
// supplies everything else.
package core

import (
	"fmt"

	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/table"
)

// Class enumerates the error classes Uni-Detect is instantiated for.
type Class uint8

const (
	// ClassSpelling detects misspelled cell values (§3.2).
	ClassSpelling Class = iota
	// ClassOutlier detects corrupted numeric cells (§3.1).
	ClassOutlier
	// ClassUniqueness detects duplicate values in key-like columns (§3.3).
	ClassUniqueness
	// ClassFD detects functional-dependency violations (§3.4).
	ClassFD
	// ClassFDSynth detects violations of synthesized programmatic column
	// relationships (Appendix D).
	ClassFDSynth
	numClasses
)

// NumClasses is the number of error classes.
const NumClasses = int(numClasses)

// String names the class.
//
// alloc-budget: 1 default branch formats unknown classes; named classes return constants
func (c Class) String() string {
	switch c {
	case ClassSpelling:
		return "spelling"
	case ClassOutlier:
		return "outlier"
	case ClassUniqueness:
		return "uniqueness"
	case ClassFD:
		return "fd"
	case ClassFDSynth:
		return "fd-synthesis"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Env carries the corpus-derived context detectors need at measure time
// (currently the token-prevalence index used by the §3.3 featurization),
// plus the optional metrics registry measurement counters report to.
type Env struct {
	Index *corpus.TokenIndex
	// Obs, when non-nil, receives per-detector measurement counts via
	// CountMeasurements. Nil disables counting at the cost of one
	// pointer test.
	Obs *obs.Registry
}

// Measurement is one (θ1, θ2) observation produced by a detector for a
// column (or column pair) of a table, together with the feature bucket it
// belongs to and the suspected subset O.
//
// Measurements with Valid=false contribute statistical evidence during
// learning (they are the denominator mass) but are never predicted as
// errors — e.g. a fully unique column (no duplicates to drop) or a column
// whose duplicates exceed the ε perturbation budget.
type Measurement struct {
	Key    feature.Key
	Theta1 float64
	Theta2 float64
	Valid  bool
	Column string   // display name ("ID" or "City→Country")
	Rows   []int    // the suspected subset O (row indices)
	Values []string // the suspect cell values, parallel to Rows where sensible
	Detail string
}

// Detector instantiates Uni-Detect for one error class: a metric function,
// a natural perturbation, and a featurization (Definition 4).
type Detector interface {
	// Class returns the error class this detector handles.
	Class() Class
	// Quantizer returns the grid quantizer for this class's metric.
	Quantizer() evidence.Quantizer
	// Directions returns the orientation of this class's smoothed
	// range predicates.
	Directions() evidence.Directions
	// Measure computes all measurements for one table.
	Measure(t *table.Table, env *Env) []Measurement
}

// Config holds the framework's tunables. Zero value is unusable; start
// from DefaultConfig.
type Config struct {
	// Alpha is the LR significance level: findings with LR > Alpha are
	// suppressed (Definition 3).
	Alpha float64
	// EpsilonFrac bounds the perturbation: |O| <= max(1, EpsilonFrac*rows)
	// (Definition 2 parameterizes ε as rows or a fraction of rows).
	EpsilonFrac float64
	// MinRows is the minimum column length detectors consider.
	MinRows int
	// MPDCap bounds the exact O(n²) MPD scan; larger columns use
	// sorted-neighborhood blocking.
	MPDCap int
	// MinOutlierScore is the smallest dispersion score a numeric cell
	// must have to be a *candidate* outlier; values within ~2 deviations
	// are ordinary by any convention [48]. Evidence is collected
	// regardless.
	MinOutlierScore float64
	// MaxSpellingMPD bounds the MPD of a *candidate* misspelling pair
	// ("a small MPD indicates likely misspellings", §3.2): columns whose
	// closest pair is farther apart still contribute evidence but are
	// never flagged.
	MaxSpellingMPD int
	// MaxFDPairs caps the number of column pairs per table enumerated by
	// the FD detectors.
	MaxFDPairs int
	// MinBucketSupport is the minimum per-bucket sample count before a
	// bucket's grid is trusted; smaller buckets fall back to the class's
	// whole-corpus grid.
	MinBucketSupport int64
	// Workers is the learning parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// NoFeaturize disables featurized subsetting and uses whole-corpus
	// statistics only — the §2.2.2 ablation.
	NoFeaturize bool
	// PointEstimates replaces the smoothed range predicates of
	// Equation 12 with exact point estimates (Equation 11) — the §3.1
	// smoothing ablation. Strictly worse: point counts are sparse and
	// non-monotone.
	PointEstimates bool
}

// DefaultConfig returns the configuration used throughout the paper
// reproduction: ε = 1% of rows (at least one row), α = 0.05.
func DefaultConfig() Config {
	return Config{
		Alpha:            0.05,
		EpsilonFrac:      0.01,
		MinRows:          6,
		MPDCap:           256,
		MinOutlierScore:  2,
		MaxSpellingMPD:   2,
		MaxFDPairs:       30,
		MinBucketSupport: 30,
	}
}

// Epsilon returns the perturbation budget for a column of n rows.
func (c Config) Epsilon(n int) int {
	e := int(c.EpsilonFrac * float64(n))
	if e < 1 {
		e = 1
	}
	return e
}

// Finding is one predicted error, ranked by LR (smaller = more confident).
type Finding struct {
	Class   Class
	Table   string
	Column  string
	Rows    []int
	Values  []string
	LR      float64
	Theta1  float64
	Theta2  float64
	Support int64 // denominator sample count behind the LR
	Detail  string
}

// String renders the finding on one line.
func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s!%s rows=%v values=%q LR=%.3g (θ1=%.3g θ2=%.3g, n=%d) %s",
		f.Class, f.Table, f.Column, f.Rows, f.Values, f.LR, f.Theta1, f.Theta2, f.Support, f.Detail)
}
