package core

import "sort"

// FDRFilter applies the Benjamini–Hochberg procedure to a ranked finding
// list, keeping the largest prefix whose scores satisfy
// LR_(i) <= (i/m)·q. The paper flags controlling the False Discovery
// Rate as the open challenge of running many hypothesis tests against
// one corpus (§2.2.3, citing [85]); this implements the standard
// correction, treating the LR scores as the test's p-value proxies
// (they are monotone in the achieved significance, which is what BH
// needs for its step-up scan — see EXPERIMENTS.md for the caveat).
//
// q is the target false-discovery rate (e.g. 0.05). Findings must be
// sorted ascending by LR, as SortFindings leaves them.
func FDRFilter(findings []Finding, q float64) []Finding {
	m := len(findings)
	if m == 0 || q <= 0 {
		return nil
	}
	if !sort.SliceIsSorted(findings, func(i, j int) bool { return findings[i].LR < findings[j].LR }) {
		sorted := append([]Finding(nil), findings...)
		SortFindings(sorted)
		findings = sorted
	}
	cut := 0
	for i, f := range findings {
		if f.LR <= float64(i+1)/float64(m)*q {
			cut = i + 1
		}
	}
	return findings[:cut]
}
