package core

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
)

// TestCheckpointTornTail appends garbage to a checkpoint and requires
// open to truncate it away and keep the valid prefix.
func TestCheckpointTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt")
	c, done, err := openCheckpoint(path, 42, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Fatalf("fresh checkpoint has %d buckets", len(done))
	}
	g := evidence.NewGrid(4)
	g.Add(1, 2)
	id := bucketID{class: ClassSpelling, key: feature.Key{Rows: 3}}
	if err := c.append(id, g); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a frame header promising more bytes than exist.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 1, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	c2, done2, err := openCheckpoint(path, 42, t.Logf)
	if err != nil {
		t.Fatalf("torn tail broke open: %v", err)
	}
	defer func() {
		if err := c2.Close(); err != nil {
			t.Error(err)
		}
	}()
	got, ok := done2[id]
	if !ok || len(done2) != 1 {
		t.Fatalf("restored %d buckets, want the 1 valid one", len(done2))
	}
	if got.Total != 1 || got.N != 4 || got.Counts[1*4+2] != 1 {
		t.Errorf("restored grid = %+v", got)
	}
	// And appends after the truncation must land on a clean boundary.
	id2 := bucketID{class: ClassOutlier, key: feature.Key{A: 1}}
	if err := c2.append(id2, g); err != nil {
		t.Fatal(err)
	}
	_, done3, err := openCheckpoint(path, 42, t.Logf)
	if err != nil || len(done3) != 2 {
		t.Fatalf("after post-truncation append: %d buckets, err %v", len(done3), err)
	}
}
