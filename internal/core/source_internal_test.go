package core

import (
	"testing"

	"github.com/unidetect/unidetect/internal/colstore"
	"github.com/unidetect/unidetect/internal/table"
)

// TestFingerprintMatchesColumnView pins the cross-package contract: the
// measurement cache's column fingerprint is the same 128-bit FNV a
// colstore.ColumnView computes over identical content, so the chunk
// fingerprints stored in `.ucol` files key the cache directly.
func TestFingerprintMatchesColumnView(t *testing.T) {
	cases := [][]string{
		{"paris", "8,011", "", "42"},
		{},
		{""},
		{"ab", "c"},
	}
	for _, values := range cases {
		c := table.NewColumn("pop", values)
		h1, h2 := fingerprintColumn(c)
		v := colstore.NewColumnView("pop", values)
		w1, w2 := v.Fingerprint()
		if h1 != w1 || h2 != w2 {
			t.Fatalf("values %q: cache fingerprint (%x,%x) != ColumnView fingerprint (%x,%x)",
				values, h1, h2, w1, w2)
		}
	}
	// Framing still separates ("ab","c") from ("a","bc").
	a1, a2 := fingerprintColumn(table.NewColumn("n", []string{"ab", "c"}))
	b1, b2 := fingerprintColumn(table.NewColumn("n", []string{"a", "bc"}))
	if a1 == b1 && a2 == b2 {
		t.Fatal("boundary shift did not change the fingerprint")
	}
}

// TestSketchFoldAndRemap exercises the dictionary sketch directly: fold
// chunks with a gap (as if chaos degraded the middle chunk), check the
// materialized table skips the gap's rows, and check remap rebases
// sketch rows to source coordinates across the gap.
func TestSketchFoldAndRemap(t *testing.T) {
	mkChunk := func(index, base int, vals ...[]string) *colstore.Chunk {
		cols := make([]colstore.ColumnView, len(vals))
		for j, v := range vals {
			cols[j] = colstore.NewColumnView(string(rune('a'+j)), v)
		}
		return colstore.NewChunk(index, base, cols)
	}
	var sk sourceSketch
	sk.fold(mkChunk(0, 0, []string{"x", "y"}, []string{"1", "2"}))
	// chunk 1 (source rows 2..3) degraded: never folded.
	sk.fold(mkChunk(2, 4, []string{"y", "z"}, []string{"2", "3"}))

	tab, err := sk.materialize("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 || tab.NumCols() != 2 {
		t.Fatalf("sketch table is %dx%d, want 2x4", tab.NumCols(), tab.NumRows())
	}
	wantA := []string{"x", "y", "y", "z"}
	for i, w := range wantA {
		if tab.Columns[0].Values[i] != w {
			t.Fatalf("sketch col a = %v, want %v", tab.Columns[0].Values, wantA)
		}
	}

	got := sk.remap([]int{0, 1, 2, 3})
	want := []int{0, 1, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("remap = %v, want %v", got, want)
		}
	}
	// Identity mapping aliases straight through without copying.
	var id sourceSketch
	id.fold(mkChunk(0, 0, []string{"x", "y"}))
	id.fold(mkChunk(1, 2, []string{"z"}))
	rows := []int{0, 2}
	if out := id.remap(rows); &out[0] != &rows[0] {
		t.Fatal("identity remap copied its input")
	}
}

// TestSketchWidens folds a chunk that discovers a new column mid-stream:
// earlier rows must backfill as empty cells, matching colstore.ReadAll.
func TestSketchWidens(t *testing.T) {
	var sk sourceSketch
	sk.fold(colstore.NewChunk(0, 0, []colstore.ColumnView{
		colstore.NewColumnView("a", []string{"1", "2"}),
	}))
	sk.fold(colstore.NewChunk(1, 2, []colstore.ColumnView{
		colstore.NewColumnView("a", []string{"3"}),
		colstore.NewColumnView("b", []string{"w"}),
	}))
	tab, err := sk.materialize("t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumCols() != 2 || tab.NumRows() != 3 {
		t.Fatalf("widened sketch is %dx%d, want 2x3", tab.NumCols(), tab.NumRows())
	}
	wantB := []string{"", "", "w"}
	for i, w := range wantB {
		if tab.Columns[1].Values[i] != w {
			t.Fatalf("sketch col b = %v, want %v", tab.Columns[1].Values, wantB)
		}
	}
}
