package core

import "runtime"

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
