package core_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/mapreduce"
)

func mergeCorpus(seed int64, n int) *corpus.Corpus {
	spec := datagen.Spec{Name: "merge", Profile: datagen.ProfileWeb, NumTables: n,
		AvgRows: 14, AvgCols: 4, Seed: seed}
	return corpus.New(spec.Name, datagen.Generate(spec).Tables)
}

func mergeModelBytes(t *testing.T, m *core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMergeRejectsMismatches(t *testing.T) {
	cfg := core.DefaultConfig()
	bg := mergeCorpus(1, 30)
	dets := detectors.All(cfg, detectors.Options{})
	m, err := core.Train(context.Background(), cfg, bg, dets)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := core.Merge(); err == nil {
		t.Error("Merge() of zero models succeeded")
	}

	other := core.NewEmptyModel(cfg, dets)
	other.Config.Alpha = 0.5
	if _, err := core.Merge(m, other); err == nil {
		t.Error("Merge across configs succeeded; it must refuse models from different jobs")
	}

	missing := core.NewEmptyModel(cfg, dets[:len(dets)-1])
	if _, err := core.Merge(m, missing); err == nil {
		t.Error("Merge across class sets succeeded")
	}

	bad := core.NewEmptyModel(cfg, dets)
	for cls := range bad.Classes {
		bad.Classes[cls].Global = evidence.NewGrid(3) // wrong bin count
	}
	if _, err := core.Merge(m, bad); err == nil {
		t.Error("Merge across grid shapes succeeded")
	}
}

func TestMergeIdentityAndSelf(t *testing.T) {
	cfg := core.DefaultConfig()
	bg := mergeCorpus(2, 40)
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()
	m, err := core.Train(ctx, cfg, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	want := mergeModelBytes(t, m)

	empty := core.NewEmptyModel(cfg, dets)
	for _, ms := range [][]*core.Model{{m, empty}, {empty, m}, {m}} {
		got, err := core.Merge(ms...)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(mergeModelBytes(t, got), want) {
			t.Errorf("Merge with identity (order %d models) changed the model bytes", len(ms))
		}
	}

	double, err := core.Merge(m, m)
	if err != nil {
		t.Fatal(err)
	}
	for cls, cm := range m.Classes {
		dm := double.Classes[cls]
		if dm.Global.Total != 2*cm.Global.Total {
			t.Errorf("class %v: self-merge global total %d, want %d", cls, dm.Global.Total, 2*cm.Global.Total)
		}
		for k, g := range cm.Buckets {
			dg := dm.Buckets[k]
			if dg == nil || dg.Total != 2*g.Total {
				t.Fatalf("class %v bucket %v: self-merge did not double counts", cls, k)
			}
			for i, c := range g.Counts {
				if dg.Counts[i] != 2*c {
					t.Fatalf("class %v bucket %v cell %d: %d, want %d", cls, k, i, dg.Counts[i], 2*c)
				}
			}
		}
	}
	if double.CorpusTables != 2*m.CorpusTables {
		t.Errorf("self-merge CorpusTables = %d, want %d", double.CorpusTables, 2*m.CorpusTables)
	}
}

func TestTrainShardedMatchesMonolithic(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	bg := mergeCorpus(3, 45)
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()
	mono, err := core.Train(ctx, cfg, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	want := mergeModelBytes(t, mono)
	for _, k := range []int{1, 3, 100} { // 100 clamps to the table count
		sharded, err := core.TrainSharded(ctx, cfg, core.ShardedOptions{Shards: k}, bg, dets)
		if err != nil {
			t.Fatalf("shards=%d: %v", k, err)
		}
		if !bytes.Equal(mergeModelBytes(t, sharded), want) {
			t.Errorf("shards=%d: sharded model differs from monolithic train", k)
		}
	}
}

func TestTrainShardedResumesPersistedShards(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	bg := mergeCorpus(4, 30)
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()
	clean, err := core.TrainSharded(ctx, cfg, core.ShardedOptions{Shards: 3}, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	want := mergeModelBytes(t, clean)

	// Kill the run during the second shard's map phase: shard 0 must have
	// been persisted, and the rerun must restore it instead of retraining.
	dir := t.TempDir()
	inj := faultinject.New(1, faultinject.Rule{
		Site: "mapreduce/map/shard=2", Hits: []int{2},
		Fault: faultinject.Fault{Err: errors.New("chaos: dead map")},
	})
	_, err = core.TrainSharded(ctx, cfg, core.ShardedOptions{
		TrainOptions: core.TrainOptions{FT: mapreduce.FT{Inject: inj, Seed: 1}},
		Shards:       3, Dir: dir,
	}, bg, dets)
	if err == nil {
		t.Fatal("lethal schedule did not kill the sharded run")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("run died of %v, not an injected fault", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-0-of-3.model")); err != nil {
		t.Fatalf("completed shard 0 was not persisted: %v", err)
	}

	resumed, err := core.TrainSharded(ctx, cfg, core.ShardedOptions{Shards: 3, Dir: dir}, bg, dets)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !bytes.Equal(mergeModelBytes(t, resumed), want) {
		t.Error("resumed sharded model differs from the uninterrupted run")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("shard files left behind after a successful merge: %v", entries)
	}
}

func TestTrainIncrementalEqualsScratch(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()
	all := mergeCorpus(5, 50)
	ix := all.Index()
	baseC := corpus.WithSharedIndex("merge/base", all.Tables[:35], ix)
	deltaC := corpus.WithSharedIndex("merge/delta", all.Tables[35:], ix)

	scratch, err := core.Train(ctx, cfg, all, dets)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Train(ctx, cfg, baseC, dets)
	if err != nil {
		t.Fatal(err)
	}
	incr, err := core.TrainIncremental(ctx, cfg, core.TrainOptions{}, base, deltaC, dets)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mergeModelBytes(t, incr), mergeModelBytes(t, scratch)) {
		t.Error("incremental retrain differs from retraining from scratch under the shared index")
	}
	if incr.CorpusTables != all.NumTables() {
		t.Errorf("incremental CorpusTables = %d, want %d", incr.CorpusTables, all.NumTables())
	}
}
