package core

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"

	"github.com/unidetect/unidetect/internal/colstore"
)

// This file implements the resumable form of the streaming scan: the
// same per-chunk scoring and end-of-stream sketch pass as
// detectSourceFast, but driven one chunk at a time by the caller, with
// the whole intermediate state serializable between chunks. The async
// job store checkpoints a SourceScan after every folded chunk, so a
// killed daemon reloads the state, skips the chunks already folded, and
// finishes with findings identical to an uninterrupted scan — the
// per-chunk analogue of the training checkpoint's kill→resume contract.

// scanMagic heads a serialized SourceScan. The trailing byte versions
// the wire layout, like the checkpoint and .ucol magics.
var scanMagic = []byte("UNIDETECT-SCAN\x01")

// scanMaxFrame bounds the state frame so a corrupt length prefix cannot
// trigger a huge allocation. Scan state holds the distinct-value
// dictionaries of the stream, so the bound is generous.
const scanMaxFrame = 256 << 20

// SourceScan is an in-progress streaming scan over one table. Fold one
// chunk at a time, Save between chunks for crash safety, and Finish at
// end of stream. A SourceScan folds exactly the state detectSourceFast
// accumulates internally, so Fold-per-chunk + Finish produces findings
// identical to one DetectSource call over the same chunk sequence.
//
// A SourceScan is not safe for concurrent use; each scan belongs to one
// worker.
type SourceScan struct {
	p        *Predictor
	name     string
	sk       sourceSketch
	st       scoreState
	pos      int // stream positions consumed: folded + degraded chunks
	degraded int
}

// NewSourceScan starts a resumable scan of the named table.
func (p *Predictor) NewSourceScan(name string) *SourceScan {
	p.metrics().tables.Inc()
	s := &SourceScan{p: p, name: name}
	s.st.reset()
	return s
}

// Name returns the table name the scan was started with.
func (s *SourceScan) Name() string { return s.name }

// Pos returns the number of stream positions consumed so far — folded
// plus degraded chunks. A resuming caller skips exactly Pos chunks of
// the reopened source.
func (s *SourceScan) Pos() int { return s.pos }

// Degraded returns how many chunks were skipped as degraded.
func (s *SourceScan) Degraded() int { return s.degraded }

// Rows returns the number of source rows folded so far.
func (s *SourceScan) Rows() int { return s.sk.rows }

// Fold scores one chunk's columns and folds it into the end-of-stream
// sketch — the per-chunk half of detectSourceFast.
func (s *SourceScan) Fold(c *colstore.Chunk) {
	p := s.p
	pm := p.metrics()
	start := p.Obs.Now()
	pm.scanChunks.Inc()
	pm.scanBytes.Add(int64(c.Bytes()))
	s.sk.fold(c)
	ct := c.Table(s.name)
	shift := shiftRows(c.Base)
	sc := p.getScratch()
	for _, det := range p.Detectors {
		cmr, ok := det.(ColumnMeasurer)
		if !ok {
			continue
		}
		for pos := range ct.Columns {
			p.addShifted(&s.st, ct, det, p.measureColumn(cmr, ct, pos, sc), shift)
		}
	}
	p.scratches.Put(sc)
	pm.scanChunkSeconds.Observe((p.Obs.Now() - start).Seconds())
	s.pos++
}

// SkipDegraded consumes one stream position without folding it — the
// resumable counterpart of a chaos-degraded chunk in scanChunks: its
// rows vanish from the scan and the stream continues.
func (s *SourceScan) SkipDegraded() {
	s.p.metrics().scanDegraded.Inc()
	s.degraded++
	s.pos++
}

// Finish runs the table-level detectors over the materialized sketch
// and returns the stream's findings in the same dedup-preserving
// first-seen order DetectSource emits. schema names the columns of an
// empty stream (sources report it even before the first chunk). The
// scan must not be folded into after Finish.
func (s *SourceScan) Finish(schema []string) ([]Finding, error) {
	p := s.p
	tbl, err := s.sk.materialize(s.name, schema)
	if err != nil {
		return nil, err
	}
	for _, det := range p.Detectors {
		if _, ok := det.(ColumnMeasurer); ok {
			continue
		}
		p.addShifted(&s.st, tbl, det, p.measureTable(det, tbl), s.sk.remap)
	}
	return s.st.findings(), nil
}

// scanWire is the serialized form of a SourceScan: the dictionary-
// encoded sketch (dictionaries are rebuilt from the value tables on
// load) plus the dedup score state. Everything is gob-friendly by
// construction — Finding holds only plain values.
type scanWire struct {
	Name     string
	Pos      int
	Degraded int

	// Sketch.
	Cols []string
	Vals [][]string
	IDs  [][]uint32
	Segs []scanWireSeg
	Rows int

	// Score state.
	Order []string
	Best  map[string]Finding
}

type scanWireSeg struct {
	Start int
	Base  int
}

// Save serializes the scan as magic + one length-framed gob payload +
// an FNV-64a checksum of the payload, assembled in memory and written
// with a single Write so an interrupted writer tears at most the frame
// — which Load rejects outright (the caller persists scans via
// write-temp-then-rename, so a torn file never becomes the current
// state). The checksum is what makes single-bit corruption a hard
// error: gob alone would happily decode a flipped byte inside a string
// or count into different-but-valid state.
func (s *SourceScan) Save(w io.Writer) error {
	wire := scanWire{
		Name:     s.name,
		Pos:      s.pos,
		Degraded: s.degraded,
		Cols:     s.sk.names,
		Vals:     s.sk.vals,
		IDs:      s.sk.ids,
		Rows:     s.sk.rows,
		Order:    s.st.order,
		Best:     s.st.best,
	}
	for _, seg := range s.sk.segs {
		wire.Segs = append(wire.Segs, scanWireSeg{Start: seg.start, Base: seg.base})
	}
	var buf bytes.Buffer
	buf.Write(scanMagic)
	buf.Write(make([]byte, 4)) // length placeholder
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return fmt.Errorf("core: encode scan state: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[len(scanMagic):len(scanMagic)+4], uint32(len(b)-len(scanMagic)-4))
	h := fnv.New64a()
	_, _ = h.Write(b[len(scanMagic)+4:])
	b = h.Sum(b)
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("core: write scan state: %w", err)
	}
	return nil
}

// LoadSourceScan deserializes a scan saved by Save. Torn or corrupt
// state is a hard error — a job checkpoint that cannot be trusted must
// restart the scan, never resume into garbage.
func (p *Predictor) LoadSourceScan(r io.Reader) (*SourceScan, error) {
	magic := make([]byte, len(scanMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("core: read scan magic: %w", err)
	}
	if !bytes.Equal(magic, scanMagic) {
		return nil, fmt.Errorf("core: bad scan state magic")
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("core: read scan frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > scanMaxFrame {
		return nil, fmt.Errorf("core: implausible scan frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("core: read scan frame: %w", err)
	}
	var sumBuf [8]byte
	if _, err := io.ReadFull(r, sumBuf[:]); err != nil {
		return nil, fmt.Errorf("core: read scan checksum: %w", err)
	}
	h := fnv.New64a()
	_, _ = h.Write(payload)
	if binary.BigEndian.Uint64(sumBuf[:]) != h.Sum64() {
		return nil, fmt.Errorf("core: scan state checksum mismatch")
	}
	var wire scanWire
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decode scan state: %w", err)
	}
	s, err := p.restoreScan(wire)
	if err != nil {
		return nil, err
	}
	// Trailing bytes after the frame mean the file is not what Save
	// wrote; reject rather than silently ignore.
	var one [1]byte
	if _, err := r.Read(one[:]); err != io.EOF {
		return nil, fmt.Errorf("core: trailing bytes after scan frame")
	}
	return s, nil
}

// restoreScan validates the wire form and rebuilds the in-memory scan,
// including the interning dictionaries the wire form drops.
func (p *Predictor) restoreScan(wire scanWire) (*SourceScan, error) {
	if wire.Pos < 0 || wire.Rows < 0 || wire.Degraded < 0 || wire.Degraded > wire.Pos {
		return nil, fmt.Errorf("core: scan state counters out of range (pos=%d rows=%d degraded=%d)",
			wire.Pos, wire.Rows, wire.Degraded)
	}
	if len(wire.Vals) != len(wire.Cols) || len(wire.IDs) != len(wire.Cols) {
		return nil, fmt.Errorf("core: scan state has %d columns but %d value tables and %d id columns",
			len(wire.Cols), len(wire.Vals), len(wire.IDs))
	}
	if len(wire.Order) != len(wire.Best) {
		return nil, fmt.Errorf("core: scan state order/best mismatch (%d keys, %d findings)",
			len(wire.Order), len(wire.Best))
	}
	for _, k := range wire.Order {
		if _, ok := wire.Best[k]; !ok {
			return nil, fmt.Errorf("core: scan state order key missing from findings")
		}
	}
	s := &SourceScan{p: p, name: wire.Name, pos: wire.Pos, degraded: wire.Degraded}
	s.sk = sourceSketch{
		names: wire.Cols,
		vals:  wire.Vals,
		ids:   wire.IDs,
		rows:  wire.Rows,
	}
	for j := range wire.Cols {
		if len(wire.Vals[j]) == 0 || wire.Vals[j][0] != "" {
			return nil, fmt.Errorf("core: scan state column %q dictionary lacks the empty sentinel", wire.Cols[j])
		}
		if len(wire.IDs[j]) != wire.Rows {
			return nil, fmt.Errorf("core: scan state column %q has %d ids for %d rows",
				wire.Cols[j], len(wire.IDs[j]), wire.Rows)
		}
		d := make(map[string]uint32, len(wire.Vals[j]))
		for id, v := range wire.Vals[j] {
			d[v] = uint32(id)
		}
		s.sk.dicts = append(s.sk.dicts, d)
		for _, id := range wire.IDs[j] {
			if int(id) >= len(wire.Vals[j]) {
				return nil, fmt.Errorf("core: scan state column %q references value id %d of %d",
					wire.Cols[j], id, len(wire.Vals[j]))
			}
		}
	}
	for _, seg := range wire.Segs {
		if seg.Start < 0 || seg.Start > wire.Rows {
			return nil, fmt.Errorf("core: scan state segment start %d out of range", seg.Start)
		}
		s.sk.segs = append(s.sk.segs, rowSeg{start: seg.Start, base: seg.Base})
	}
	s.st.reset()
	for k, f := range wire.Best {
		s.st.best[k] = f
	}
	s.st.order = wire.Order
	return s, nil
}

// ScanSource drives a full SourceScan over src the way DetectSource
// would, minus chaos admission: the resumable path's reference loop,
// used by tests and by callers that want Fold/Finish semantics without
// checkpointing.
func (p *Predictor) ScanSource(src colstore.Source) ([]Finding, error) {
	s := p.NewSourceScan(src.Name())
	rel, _ := src.(colstore.Releaser)
	for {
		c, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		s.Fold(c)
		if rel != nil {
			rel.Release(c)
		}
	}
	return s.Finish(src.ColumnNames())
}
