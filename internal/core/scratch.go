package core

import (
	"github.com/unidetect/unidetect/internal/strdist"
	"github.com/unidetect/unidetect/internal/table"
)

// Scratch bundles the per-worker reusable buffers of the serving fast
// path. One Scratch is owned by exactly one worker goroutine at a time;
// reusing it across measurement units is what cuts the hot path's
// allocations (the MPD rune conversions and DP rows dominate the
// baseline's allocation profile).
type Scratch struct {
	// MPD holds the string-distance buffers of the spelling detector.
	MPD *strdist.Scratch
	// F64 is a general float64 buffer (the outlier detector's drop-one
	// resample).
	F64 []float64
	// score is the per-table dedup state of detectFast, reset per table.
	score scoreState
}

// NewScratch returns a ready-to-use scratch.
//
// alloc-budget: 2 per-worker scratch construction, amortized over every unit the worker measures
func NewScratch() *Scratch {
	return &Scratch{MPD: &strdist.Scratch{}}
}

// Floats returns a zero-length float64 buffer with capacity >= n.
func (s *Scratch) Floats(n int) []float64 {
	if cap(s.F64) < n {
		s.F64 = make([]float64, 0, n)
	}
	return s.F64[:0]
}

// ColumnMeasurer is the column-granular refinement of Detector: detectors
// whose measurements are per-column (spelling, outlier, uniqueness — as
// opposed to the column-pair FD detectors) expose each column as an
// independently schedulable unit, so the batched prediction pipeline can
// spread one wide table across its worker pool and memoize per-column
// results across requests.
//
// MeasureColumn must be a pure function of (table, pos, env): the
// measurement cache replays its results for identical column content.
// sc may be nil (the reference path's Measure wrapper passes nil and
// takes the allocating code paths). Implementations must NOT report
// measurement counts to env — the caller counts once per unit, keeping
// totals identical between the reference (per-table) and fast
// (per-column) paths.
type ColumnMeasurer interface {
	Detector
	// MeasureColumn computes the measurements of the single column at
	// position pos, exactly the subsequence of Measure's output that this
	// column contributes.
	MeasureColumn(t *table.Table, pos int, env *Env, sc *Scratch) []Measurement
}
