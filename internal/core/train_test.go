package core_test

import (
	"context"
	"sync"
	"testing"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/table"
)

// TestTrainDeterministic trains twice on the same corpus and requires
// byte-identical evidence.
func TestTrainDeterministic(t *testing.T) {
	spec := datagen.Spec{Name: "d", Profile: datagen.ProfileWeb, NumTables: 400,
		AvgRows: 20, AvgCols: 4.6, Seed: 5}
	bg := corpus.New(spec.Name, datagen.Generate(spec).Tables)
	cfg := core.DefaultConfig()
	train := func() *core.Model {
		m, err := core.Train(context.Background(), cfg, bg, detectors.All(cfg, detectors.Options{}))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := train(), train()
	for cls, ca := range a.Classes {
		cb := b.Classes[cls]
		if ca.Samples() != cb.Samples() {
			t.Errorf("class %v samples differ: %d vs %d", cls, ca.Samples(), cb.Samples())
		}
		if len(ca.Buckets) != len(cb.Buckets) {
			t.Errorf("class %v bucket counts differ: %d vs %d", cls, len(ca.Buckets), len(cb.Buckets))
		}
		for k, ga := range ca.Buckets {
			gb, ok := cb.Buckets[k]
			if !ok {
				t.Fatalf("class %v bucket %v missing from second model", cls, k)
			}
			if ga.Total != gb.Total {
				t.Fatalf("class %v bucket %v totals differ", cls, k)
			}
			for i := range ga.Counts {
				if ga.Counts[i] != gb.Counts[i] {
					t.Fatalf("class %v bucket %v counts differ at %d", cls, k, i)
				}
			}
		}
	}
}

// TestConcurrentDetectRace exercises the shared predictor from many
// goroutines; run with -race.
func TestConcurrentDetectRace(t *testing.T) {
	m, bg := trainSmall(t)
	pred := core.NewPredictor(m, detectors.All(m.Config, detectors.Options{}), &core.Env{Index: bg.Index()})
	tbl := table.MustNew("t",
		table.NewColumn("Name", []string{"Kevin Doeling", "Kevin Dowling", "Alan Myerson", "Rob Morrow", "Lesli Glatter", "Peter Bonerz"}),
		table.NewColumn("Pop", []string{"8011", "8.716", "9954", "11895", "11329", "11352"}),
	)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if fs := pred.Detect(tbl); len(fs) == 0 {
					t.Error("no findings")
					return
				}
			}
		}()
	}
	wg.Wait()
}
