package core

import (
	"math/rand"
	"testing"
)

func TestFDRFilterStepUp(t *testing.T) {
	// m = 4, q = 0.2: thresholds 0.05, 0.10, 0.15, 0.20.
	fs := []Finding{
		{LR: 0.01},
		{LR: 0.12}, // above its own threshold (0.10)...
		{LR: 0.13}, // ...but below the i=3 threshold (0.15): kept by step-up
		{LR: 0.90},
	}
	got := FDRFilter(fs, 0.2)
	if len(got) != 3 {
		t.Fatalf("kept %d, want 3", len(got))
	}
	if got[2].LR != 0.13 {
		t.Errorf("last kept LR = %v", got[2].LR)
	}
}

func TestFDRFilterAllRejected(t *testing.T) {
	fs := []Finding{{LR: 0.9}, {LR: 0.95}}
	if got := FDRFilter(fs, 0.05); len(got) != 0 {
		t.Errorf("kept %v", got)
	}
}

func TestFDRFilterAllKept(t *testing.T) {
	fs := []Finding{{LR: 0.001}, {LR: 0.002}, {LR: 0.01}}
	if got := FDRFilter(fs, 0.05); len(got) != 3 {
		t.Errorf("kept %d, want all", len(got))
	}
}

func TestFDRFilterEdgeCases(t *testing.T) {
	if got := FDRFilter(nil, 0.05); got != nil {
		t.Error("nil input")
	}
	if got := FDRFilter([]Finding{{LR: 0.0001}}, 0); got != nil {
		t.Error("q=0 keeps nothing")
	}
}

func TestFDRFilterSortsUnsortedInput(t *testing.T) {
	fs := []Finding{{LR: 0.9}, {LR: 0.001}}
	got := FDRFilter(fs, 0.05)
	if len(got) != 1 || got[0].LR != 0.001 {
		t.Errorf("got %v", got)
	}
	// Input must not be reordered in place.
	if fs[0].LR != 0.9 {
		t.Error("input mutated")
	}
}

// Property: the kept prefix never grows when q shrinks.
func TestFDRFilterMonotoneInQ(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		fs := make([]Finding, 20)
		for i := range fs {
			fs[i] = Finding{LR: rng.Float64()}
		}
		SortFindings(fs)
		prev := len(fs) + 1
		for _, q := range []float64{0.5, 0.2, 0.05, 0.01} {
			n := len(FDRFilter(fs, q))
			if n > prev {
				t.Fatalf("kept %d at q=%v after %d at larger q", n, q, prev)
			}
			prev = n
		}
	}
}
