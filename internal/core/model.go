package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/stats"
)

// ClassModel holds the learned evidence for one error class: per-bucket
// grids plus a whole-corpus grid used for the no-featurization ablation
// and as a fallback for sparse buckets.
type ClassModel struct {
	Dirs    evidence.Directions
	Buckets map[feature.Key]*evidence.Grid
	Global  *evidence.Grid
}

// finalize builds all prefix sums so lookups are read-only (and hence
// safe for concurrent prediction).
func (cm *ClassModel) finalize() {
	for _, g := range cm.Buckets {
		g.Finalize()
	}
	if cm.Global != nil {
		cm.Global.Finalize()
	}
}

// Samples returns the total number of (θ1, θ2) observations learned.
func (cm *ClassModel) Samples() int64 {
	if cm.Global == nil {
		return 0
	}
	return cm.Global.Total
}

// lookup returns the grid to score a measurement in bucket key against:
// the full bucket when the *query's denominator* has enough support
// there, else the first backoff bucket (leftness wildcard, then row
// count, then both) whose denominator does, else the whole-corpus grid.
// Grid totals are not enough — a bucket with thousands of samples can
// still have near-empty conditional slices, and an LR estimated on a
// handful of denominators is noise. NoFeaturize short-circuits to the
// global grid — the §2.2.2 ablation.
func (cm *ClassModel) lookup(key feature.Key, cfg Config, b2 int) *evidence.Grid {
	if cfg.NoFeaturize {
		return cm.Global
	}
	if g, ok := cm.Buckets[key]; ok && g.Denominator(cm.Dirs, b2) >= cfg.MinBucketSupport {
		return g
	}
	for _, k := range backoffKeys(key) {
		if g, ok := cm.Buckets[k]; ok && g.Denominator(cm.Dirs, b2) >= cfg.MinBucketSupport {
			return g
		}
	}
	return cm.Global
}

// Model is a trained Uni-Detect model: evidence for every class, plus the
// corpus metadata needed to reproduce featurization at prediction time.
type Model struct {
	Classes map[Class]*ClassModel
	Config  Config
	// CorpusTables records the size of the training corpus T.
	CorpusTables int
	// CorpusColumns records the number of columns scanned.
	CorpusColumns int
}

// LR scores one measurement of class c, returning the likelihood ratio and
// the denominator support. Missing classes score 1 (no evidence, not
// surprising).
func (m *Model) LR(c Class, det Detector, meas Measurement) (lr float64, support int64) {
	cm := m.Classes[c]
	if cm == nil {
		return 1, 0
	}
	q := det.Quantizer()
	b1, b2 := q.Bin(meas.Theta1), q.Bin(meas.Theta2)
	g := cm.lookup(meas.Key, m.Config, b2)
	if g == nil {
		return 1, 0
	}
	if m.Config.PointEstimates {
		return g.PointLR(b1, b2), g.Denominator(cm.Dirs, b2)
	}
	return g.LR(cm.Dirs, b1, b2), g.Denominator(cm.Dirs, b2)
}

// SortFindings orders findings by ascending LR, breaking ties by larger
// evidence support, then lexicographically by (table, column, rows,
// class). The row comparison is the *full* lexicographic order over the
// row sets, not just the first row: equal-LR findings from different
// DetectAll shards that agree on their first flagged row (e.g. two
// duplicate groups both starting at row 0) would otherwise compare
// "equal", and sort.Slice — which is unstable — would order them by
// worker arrival, making batch output nondeterministic.
//
// alloc-budget: 2 sort.Slice boxing and comparator; the unstable sort's tie permutation is pinned by difftest
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if !stats.SameFloat(a.LR, b.LR) {
			return a.LR < b.LR
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if c := compareRows(a.Rows, b.Rows); c != 0 {
			return c < 0
		}
		return a.Class < b.Class
	})
}

// compareRows orders row sets lexicographically, shorter prefix first.
func compareRows(a, b []int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// modelWire is the gob wire format of a Model. evidence.Grid's exported
// fields carry all persistent state; derived prefix sums are rebuilt on
// load. Classes and buckets are sorted slices, not maps: gob encodes
// maps in Go's randomized iteration order, and the checkpoint/resume
// protocol promises that resuming a killed training run reproduces the
// uninterrupted run's model byte for byte.
type modelWire struct {
	Classes       []classWire
	Config        Config
	CorpusTables  int
	CorpusColumns int
}

type classWire struct {
	Class   Class
	Dirs    evidence.Directions
	Buckets []bucketWire
	Global  *evidence.Grid
}

type bucketWire struct {
	Key  feature.Key
	Grid *evidence.Grid
}

// keyLess orders feature keys lexicographically over their dimensions.
func keyLess(a, b feature.Key) bool {
	if a.Type != b.Type {
		return a.Type < b.Type
	}
	if a.Rows != b.Rows {
		return a.Rows < b.Rows
	}
	if a.A != b.A {
		return a.A < b.A
	}
	return a.B < b.B
}

// Save writes the model to w (gob). The encoding is deterministic: two
// saves of equal models produce identical bytes.
func (m *Model) Save(w io.Writer) error {
	wire := modelWire{
		Config:        m.Config,
		CorpusTables:  m.CorpusTables,
		CorpusColumns: m.CorpusColumns,
		Classes:       make([]classWire, 0, len(m.Classes)),
	}
	for cls, cm := range m.Classes {
		cw := classWire{
			Class:   cls,
			Dirs:    cm.Dirs,
			Global:  cm.Global,
			Buckets: make([]bucketWire, 0, len(cm.Buckets)),
		}
		for k, g := range cm.Buckets {
			cw.Buckets = append(cw.Buckets, bucketWire{Key: k, Grid: g})
		}
		sort.Slice(cw.Buckets, func(i, j int) bool { return keyLess(cw.Buckets[i].Key, cw.Buckets[j].Key) })
		wire.Classes = append(wire.Classes, cw)
	}
	sort.Slice(wire.Classes, func(i, j int) bool { return wire.Classes[i].Class < wire.Classes[j].Class })
	return gob.NewEncoder(w).Encode(wire)
}

// LoadModel reads a model written by Save and finalizes its grids.
func LoadModel(r io.Reader) (*Model, error) {
	var w modelWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("core: decode model: %w", err)
	}
	m := &Model{
		Classes:       make(map[Class]*ClassModel, len(w.Classes)),
		Config:        w.Config,
		CorpusTables:  w.CorpusTables,
		CorpusColumns: w.CorpusColumns,
	}
	for _, cw := range w.Classes {
		cm := &ClassModel{
			Dirs:    cw.Dirs,
			Global:  cw.Global,
			Buckets: make(map[feature.Key]*evidence.Grid, len(cw.Buckets)),
		}
		for _, bw := range cw.Buckets {
			cm.Buckets[bw.Key] = bw.Grid
		}
		m.Classes[cw.Class] = cm
	}
	for _, cm := range m.Classes {
		cm.finalize()
	}
	return m, nil
}
