package core_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"reflect"
	"testing"

	"github.com/unidetect/unidetect/internal/colstore"
	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/table"
)

// errorTable is one error-injected table for scan tests: big enough to
// span several chunks and carrying injected errors, so the scan has
// findings whose exact contents the equivalence tests can compare.
func errorTable(t *testing.T, seed int64) *table.Table {
	t.Helper()
	res := datagen.Generate(datagen.Spec{Name: "scanjob", Profile: datagen.ProfileWeb,
		NumTables: 1, AvgRows: 120, AvgCols: 5, ErrorRate: 2, Seed: seed})
	return res.Tables[0]
}

// TestSourceScanEquivalence is the resumable scan's core contract:
// Fold-per-chunk + Finish must produce exactly the findings DetectSource
// produces over the same chunk stream, for every chunk geometry.
func TestSourceScanEquivalence(t *testing.T) {
	m, bg := trainSmall(t)
	dets := detectors.All(m.Config, detectors.Options{})
	tab := errorTable(t, 11)

	for _, chunkRows := range []int{4, 16, 64, colstore.WholeTable} {
		t.Run(fmt.Sprintf("chunkRows=%d", chunkRows), func(t *testing.T) {
			p := core.NewPredictor(m, dets, &core.Env{Index: bg.Index()})
			opts := colstore.Options{ChunkRows: chunkRows}
			want, err := p.DetectSource(context.Background(), colstore.NewSliceSource(tab, opts))
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.ScanSource(colstore.NewSliceSource(tab, opts))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("resumable scan diverged from DetectSource:\n got %+v\nwant %+v", got, want)
			}
			if len(want) == 0 {
				t.Fatal("scan found nothing on an error-injected table; test has no power")
			}
		})
	}
}

// TestSourceScanSaveLoadEveryChunk round-trips the scan state through
// Save/Load at every chunk boundary: the resumed scan must finish with
// findings identical to the uninterrupted one — the job store's
// kill-anywhere resume contract.
func TestSourceScanSaveLoadEveryChunk(t *testing.T) {
	m, bg := trainSmall(t)
	dets := detectors.All(m.Config, detectors.Options{})
	tab := errorTable(t, 13)
	const chunkRows = 8

	p := core.NewPredictor(m, dets, &core.Env{Index: bg.Index()})
	want, err := p.ScanSource(colstore.NewSliceSource(tab, colstore.Options{ChunkRows: chunkRows}))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("no findings; test has no power")
	}

	src := colstore.NewSliceSource(tab, colstore.Options{ChunkRows: chunkRows})
	scan := p.NewSourceScan(src.Name())
	chunk := 0
	for {
		c, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		scan.Fold(c)
		chunk++
		var buf bytes.Buffer
		if err := scan.Save(&buf); err != nil {
			t.Fatalf("save after chunk %d: %v", chunk, err)
		}
		loaded, err := p.LoadSourceScan(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("load after chunk %d: %v", chunk, err)
		}
		if loaded.Pos() != scan.Pos() || loaded.Rows() != scan.Rows() || loaded.Name() != scan.Name() {
			t.Fatalf("round trip after chunk %d lost position: %d/%d rows %d/%d",
				chunk, loaded.Pos(), scan.Pos(), loaded.Rows(), scan.Rows())
		}
		scan = loaded // continue the scan on the reloaded state
	}
	got, err := scan.Finish(src.ColumnNames())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scan resumed through %d save/load cycles diverged:\n got %+v\nwant %+v", chunk, got, want)
	}
}

// TestSourceScanResumeSkips models the job store's actual resume: save
// mid-stream, reload, reopen the source and skip the consumed chunks,
// then continue — findings must match the uninterrupted scan.
func TestSourceScanResumeSkips(t *testing.T) {
	m, bg := trainSmall(t)
	dets := detectors.All(m.Config, detectors.Options{})
	tab := errorTable(t, 17)
	const chunkRows = 8

	p := core.NewPredictor(m, dets, &core.Env{Index: bg.Index()})
	want, err := p.ScanSource(colstore.NewSliceSource(tab, colstore.Options{ChunkRows: chunkRows}))
	if err != nil {
		t.Fatal(err)
	}

	// First run: fold three chunks, save, "crash".
	src := colstore.NewSliceSource(tab, colstore.Options{ChunkRows: chunkRows})
	scan := p.NewSourceScan(src.Name())
	for i := 0; i < 3; i++ {
		c, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		scan.Fold(c)
	}
	var state bytes.Buffer
	if err := scan.Save(&state); err != nil {
		t.Fatal(err)
	}

	// Resume: fresh source, skip what the saved state already consumed.
	resumed, err := p.LoadSourceScan(bytes.NewReader(state.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	src2 := colstore.NewSliceSource(tab, colstore.Options{ChunkRows: chunkRows})
	for skip := resumed.Pos(); skip > 0; skip-- {
		if _, err := src2.Next(); err != nil {
			t.Fatalf("source ended before the saved position: %v", err)
		}
	}
	for {
		c, err := src2.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		resumed.Fold(c)
	}
	got, err := resumed.Finish(src2.ColumnNames())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resume-with-skip diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestLoadSourceScanRejectsGarbage pins the hard-error contract: torn,
// truncated or corrupt state must error, never resume partially.
func TestLoadSourceScanRejectsGarbage(t *testing.T) {
	m, bg := trainSmall(t)
	p := core.NewPredictor(m, detectors.All(m.Config, detectors.Options{}), &core.Env{Index: bg.Index()})

	scan := p.NewSourceScan("x")
	src := colstore.NewSliceSource(errorTable(t, 19), colstore.Options{ChunkRows: 16})
	c, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	scan.Fold(c)
	var good bytes.Buffer
	if err := scan.Save(&good); err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     []byte("UNIDETECT-NOPE\x01xxxxxxxx"),
		"torn tail":     good.Bytes()[:good.Len()-5],
		"torn header":   good.Bytes()[:len("UNIDETECT-SCAN\x01")+2],
		"trailing junk": append(append([]byte{}, good.Bytes()...), 0xFF),
		"flipped byte": func() []byte {
			b := append([]byte{}, good.Bytes()...)
			b[len(b)/2] ^= 0x41
			return b
		}(),
	}
	for name, data := range cases {
		if _, err := p.LoadSourceScan(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: load accepted corrupt state", name)
		}
	}
	// The pristine bytes still load, so the cases above failed for the
	// right reason.
	if _, err := p.LoadSourceScan(bytes.NewReader(good.Bytes())); err != nil {
		t.Fatalf("pristine state failed to load: %v", err)
	}
}
