package core

import (
	"testing"

	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/table"
)

func gridWith(n int, samples int) *evidence.Grid {
	g := evidence.NewGrid(n)
	for i := 0; i < samples; i++ {
		g.Add(i%n, (i+1)%n)
	}
	g.Finalize()
	return g
}

func TestLookupBackoffChain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MinBucketSupport = 10
	full := feature.Key{Type: table.TypeString, Rows: 3, A: 1}
	wild := wildRowsKey(full)

	cm := &ClassModel{
		Dirs:    evidence.SpellingDirections,
		Buckets: map[feature.Key]*evidence.Grid{},
		Global:  gridWith(8, 100),
	}
	// With SpellingDirections the denominator counts θ1 bins <= b2;
	// b2 = 7 (last bin) makes it equal to the grid total.
	const b2 = 7

	// No buckets at all: global.
	if g := cm.lookup(full, cfg, b2); g != cm.Global {
		t.Error("expected global fallback")
	}

	// Sparse full bucket, supported wildcard: wildcard wins.
	cm.Buckets[full] = gridWith(8, 3)
	cm.Buckets[wild] = gridWith(8, 50)
	if g := cm.lookup(full, cfg, b2); g != cm.Buckets[wild] {
		t.Error("expected rows-wildcard fallback")
	}

	// Supported full bucket: full wins.
	cm.Buckets[full] = gridWith(8, 25)
	if g := cm.lookup(full, cfg, b2); g != cm.Buckets[full] {
		t.Error("expected full bucket")
	}

	// A bucket with enough total samples but a starved denominator slice
	// still backs off: b2 = 0 counts only θ1 bin 0 samples.
	if g := cm.lookup(full, cfg, 0); g == cm.Buckets[full] {
		t.Error("starved denominator must back off")
	}

	// Ablation flag short-circuits to global.
	cfg.NoFeaturize = true
	if g := cm.lookup(full, cfg, b2); g != cm.Global {
		t.Error("NoFeaturize must use the global grid")
	}
}

func TestWildRowsKey(t *testing.T) {
	k := feature.Key{Type: table.TypeMixed, Rows: 2, A: 3, B: 1}
	w := wildRowsKey(k)
	if w.Rows != WildRows {
		t.Errorf("Rows = %d", w.Rows)
	}
	if w.Type != k.Type || w.A != k.A || w.B != k.B {
		t.Error("other dimensions must be preserved")
	}
	if k.Rows != 2 {
		t.Error("input must not be mutated")
	}
}

func TestModelLRMissingClass(t *testing.T) {
	m := &Model{Classes: map[Class]*ClassModel{}, Config: DefaultConfig()}
	lr, support := m.LR(ClassOutlier, nil, Measurement{})
	if lr != 1 || support != 0 {
		t.Errorf("missing class LR = %v, %d", lr, support)
	}
}

func TestDedupKeyDistinguishes(t *testing.T) {
	a := dedupKey(ClassFD, []int{1, 2})
	b := dedupKey(ClassFD, []int{12})
	c := dedupKey(ClassUniqueness, []int{1, 2})
	d := dedupKey(ClassFD, []int{1, 2})
	if a == b {
		t.Error("rows [1,2] and [12] must differ")
	}
	if a == c {
		t.Error("classes must differ")
	}
	if a != d {
		t.Error("identical inputs must collide")
	}
	if dedupKey(ClassFD, []int{-3}) == dedupKey(ClassFD, []int{3}) {
		t.Error("sign must be encoded")
	}
}
