package core

import (
	"bytes"
	"testing"

	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/table"
)

// fuzzMergeModel deterministically expands fuzz bytes into a small model:
// two classes, a handful of feature buckets, counts derived from the
// data. Different salts shape different-but-mergeable models, so the
// bucket sets overlap partially and the merge exercises both the
// summed-cell and the one-sided-bucket paths.
func fuzzMergeModel(data []byte, salt byte) *Model {
	m := &Model{
		Classes:       map[Class]*ClassModel{},
		Config:        DefaultConfig(),
		CorpusTables:  int(salt) + len(data)%97,
		CorpusColumns: 3 * (int(salt) + len(data)%97),
	}
	for ci, cls := range []Class{ClassOutlier, ClassUniqueness} {
		cm := &ClassModel{
			Dirs:    evidence.Directions{T1LE: true, T2GE: true},
			Buckets: map[feature.Key]*evidence.Grid{},
			Global:  evidence.NewGrid(4),
		}
		for i, b := range data {
			v := b ^ salt ^ byte(ci*31)
			cm.Global.Add(int(v)%4, int(v>>2)%4)
			key := feature.Key{Type: table.ValueType(v % 3), Rows: v % 5, A: (v >> 3) % 2}
			g := cm.Buckets[key]
			if g == nil {
				g = evidence.NewGrid(4)
				cm.Buckets[key] = g
			}
			g.Add(int(v>>1)%4, (i+int(salt))%4)
		}
		m.Classes[cls] = cm
	}
	return m
}

// fuzzGridSum checks got holds exactly a's counts plus b's (either side
// may be nil).
func fuzzGridSum(t *testing.T, what string, got, a, b *evidence.Grid) {
	t.Helper()
	cell := func(g *evidence.Grid, i int) int64 {
		if g == nil {
			return 0
		}
		return g.Counts[i]
	}
	total := func(g *evidence.Grid) int64 {
		if g == nil {
			return 0
		}
		return g.Total
	}
	if got == nil {
		t.Fatalf("%s: merged grid missing", what)
	}
	for i := range got.Counts {
		if want := cell(a, i) + cell(b, i); got.Counts[i] != want {
			t.Fatalf("%s cell %d: merged %d, direct sum %d", what, i, got.Counts[i], want)
		}
	}
	if want := total(a) + total(b); got.Total != want {
		t.Fatalf("%s: merged total %d, direct sum %d", what, got.Total, want)
	}
}

// FuzzModelMerge holds Merge to its defining algebra on arbitrary
// models: every merged cell equals the direct sum of the input cells,
// and merging survives a serialize→load round trip byte-identically —
// so shard models shipped through files merge exactly like in-memory
// ones.
func FuzzModelMerge(f *testing.F) {
	f.Add([]byte("unidetect"))
	f.Add([]byte{})
	f.Add([]byte{0x00, 0xff, 0x7f, 0x80, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		a := fuzzMergeModel(data, 0)
		b := fuzzMergeModel(data, 0xA5)
		merged, err := Merge(a, b)
		if err != nil {
			t.Fatalf("merge of same-shape models failed: %v", err)
		}
		if merged.CorpusTables != a.CorpusTables+b.CorpusTables {
			t.Fatalf("CorpusTables %d, want %d", merged.CorpusTables, a.CorpusTables+b.CorpusTables)
		}
		for cls, cm := range merged.Classes {
			am, bm := a.Classes[cls], b.Classes[cls]
			fuzzGridSum(t, cls.String()+" global", cm.Global, am.Global, bm.Global)
			union := map[feature.Key]bool{}
			for k := range am.Buckets {
				union[k] = true
			}
			for k := range bm.Buckets {
				union[k] = true
			}
			if len(cm.Buckets) != len(union) {
				t.Fatalf("class %v: merged has %d buckets, union has %d", cls, len(cm.Buckets), len(union))
			}
			for k := range union {
				fuzzGridSum(t, cls.String()+" bucket "+k.String(), cm.Buckets[k], am.Buckets[k], bm.Buckets[k])
			}
		}

		// Serialize → load → merge → serialize must land on the same
		// bytes as merging the in-memory models.
		var bufA, bufB bytes.Buffer
		if err := a.Save(&bufA); err != nil {
			t.Fatal(err)
		}
		if err := b.Save(&bufB); err != nil {
			t.Fatal(err)
		}
		la, err := LoadModel(&bufA)
		if err != nil {
			t.Fatalf("load a: %v", err)
		}
		lb, err := LoadModel(&bufB)
		if err != nil {
			t.Fatalf("load b: %v", err)
		}
		remerged, err := Merge(la, lb)
		if err != nil {
			t.Fatalf("merge of loaded models failed: %v", err)
		}
		var direct, roundTrip bytes.Buffer
		if err := merged.Save(&direct); err != nil {
			t.Fatal(err)
		}
		if err := remerged.Save(&roundTrip); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(direct.Bytes(), roundTrip.Bytes()) {
			t.Fatal("merge after a serialize→load round trip produced different bytes")
		}
	})
}
