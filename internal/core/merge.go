package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
)

// This file implements distributed training: partitioned multi-shard
// learning (TrainSharded), the merge algebra that folds partial models
// (Merge), and incremental growth of an existing model (TrainIncremental).
//
// The whole design rests on one algebraic fact: a trained model is a
// collection of per-bucket (θ1, θ2) count grids, and counts are additive
// over disjoint table sets. Merging shard models by summing grids is
// therefore associative, commutative, has the empty model as identity,
// and — when every shard featurizes against the shared full-corpus token
// index (corpus.Partition guarantees this) — byte-identical to one
// monolithic pass over the whole corpus. internal/difftest's merge tier
// holds all four properties exactly.

// Merge folds partial models trained with the same configuration and
// detector set over disjoint corpus partitions into one model, as if
// trained on the concatenated corpus: per-bucket and global evidence
// counts are summed, and CorpusTables/CorpusColumns accumulate. It
// errors on models whose Config, class sets, directions or grid shapes
// disagree — those were not shards of one job.
func Merge(models ...*Model) (*Model, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("core: merge of zero models")
	}
	first := models[0]
	out := &Model{
		Classes: make(map[Class]*ClassModel, len(first.Classes)),
		Config:  first.Config,
	}
	for i, m := range models {
		if m.Config != first.Config {
			return nil, fmt.Errorf("core: model %d was trained under a different config", i)
		}
		if len(m.Classes) != len(first.Classes) {
			return nil, fmt.Errorf("core: merging models with different class sets (%d vs %d)",
				len(first.Classes), len(m.Classes))
		}
		out.CorpusTables += m.CorpusTables
		out.CorpusColumns += m.CorpusColumns
	}
	for cls, cf := range first.Classes {
		merged := &ClassModel{
			Dirs:    cf.Dirs,
			Buckets: make(map[feature.Key]*evidence.Grid, len(cf.Buckets)),
		}
		for i, m := range models {
			cm := m.Classes[cls]
			if cm == nil {
				return nil, fmt.Errorf("core: class %v missing from model %d", cls, i)
			}
			if cm.Dirs != cf.Dirs {
				return nil, fmt.Errorf("core: class %v direction mismatch in model %d", cls, i)
			}
			var err error
			if merged.Global, err = addGrid(merged.Global, cm.Global); err != nil {
				return nil, fmt.Errorf("core: class %v global grid: %w", cls, err)
			}
			for k, g := range cm.Buckets {
				if merged.Buckets[k], err = addGrid(merged.Buckets[k], g); err != nil {
					return nil, fmt.Errorf("core: class %v bucket %v: %w", cls, k, err)
				}
			}
		}
		merged.finalize()
		out.Classes[cls] = merged
	}
	return out, nil
}

// addGrid folds src's counts into acc and returns the accumulator,
// allocating it on first use. acc is always a fresh grid owned by the
// merge (never one of the input models'), so inputs stay untouched.
func addGrid(acc, src *evidence.Grid) (*evidence.Grid, error) {
	if src == nil {
		return acc, nil
	}
	if acc == nil {
		acc = evidence.NewGrid(src.N)
	}
	if acc.N != src.N {
		return nil, fmt.Errorf("grid bin mismatch (%d vs %d)", acc.N, src.N)
	}
	for i, c := range src.Counts {
		acc.Counts[i] += c
	}
	acc.Total += src.Total
	return acc, nil
}

// MergeModels combines the evidence of two models — the binary special
// case of Merge, kept for the public API.
func MergeModels(a, b *Model) (*Model, error) { return Merge(a, b) }

// NewEmptyModel returns the identity element of Merge for a given
// configuration and detector set: a model with zero evidence whose merge
// into any same-shaped model reproduces that model byte for byte.
func NewEmptyModel(cfg Config, detectors []Detector) *Model {
	m := &Model{Classes: make(map[Class]*ClassModel, len(detectors)), Config: cfg}
	for _, det := range detectors {
		cm := &ClassModel{
			Dirs:    det.Directions(),
			Buckets: make(map[feature.Key]*evidence.Grid),
			Global:  evidence.NewGrid(det.Quantizer().Bins()),
		}
		cm.finalize()
		m.Classes[det.Class()] = cm
	}
	return m
}

// ShardedOptions parameterizes TrainSharded.
type ShardedOptions struct {
	TrainOptions
	// Shards is the number of corpus partitions trained independently;
	// values below 2 degenerate to a single monolithic pass. Clamped to
	// the corpus size.
	Shards int
	// Dir, when non-empty, makes the pass crash-safe: each shard
	// checkpoints its reduce buckets there (TrainOptions.CheckpointPath
	// semantics, one file per shard), and each completed shard persists
	// its partial model, keyed by the shard's job fingerprint. A rerun
	// with the same corpus, config and Dir reloads finished shards,
	// resumes the interrupted one from its checkpoint, and produces a
	// byte-identical model. All shard files are removed once the merged
	// model is assembled.
	Dir string
}

// TrainSharded runs the offline learning pass as k independent jobs over
// contiguous corpus partitions and merges the partial models — the
// paper's "MapReduce-like jobs to crunch T" (§2.2.3) at the granularity
// above single-process mapreduce. Every shard shares the full corpus's
// token-prevalence index (corpus.Partition), so the merged model is
// byte-identical to TrainWith over the whole corpus.
//
// Shards run sequentially, not concurrently: fault-injection sites
// ("mapreduce/map/shard=N", reduce keys) recur across shard jobs, and
// sequential execution keeps each site's hit ordinals — and therefore
// every chaos schedule — deterministic. Shard-level parallelism is the
// multi-process deployment's concern; in-process parallelism stays
// inside each job's worker pool.
func TrainSharded(ctx context.Context, cfg Config, opts ShardedOptions, bg *corpus.Corpus, detectors []Detector) (*Model, error) {
	k := opts.Shards
	if k < 1 {
		k = 1
	}
	if n := bg.NumTables(); k > n && n > 0 {
		k = n
	}
	tm := newTrainMetrics(opts.FT.Obs)
	parts := bg.Partition(k)
	shards := make([]*Model, len(parts))
	for i, part := range parts {
		fp := fingerprint(cfg, part, detectors)
		var modelPath string
		if opts.Dir != "" {
			modelPath = filepath.Join(opts.Dir, fmt.Sprintf("shard-%d-of-%d.model", i, len(parts)))
			if m, ok := loadShardModel(modelPath, fp, opts.FT.Logf); ok {
				shards[i] = m
				tm.shardResumes.Inc()
				continue
			}
		}
		topts := opts.TrainOptions
		if opts.Dir != "" {
			topts.CheckpointPath = filepath.Join(opts.Dir, fmt.Sprintf("shard-%d-of-%d.ckpt", i, len(parts)))
		}
		m, err := TrainWith(ctx, cfg, topts, part, detectors)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d/%d: %w", i, len(parts), err)
		}
		tm.shardRuns.Inc()
		if modelPath != "" {
			if err := saveShardModel(modelPath, fp, m); err != nil {
				return nil, err
			}
		}
		shards[i] = m
	}
	merged, err := Merge(shards...)
	if err != nil {
		return nil, err
	}
	tm.merges.Inc()
	if opts.Dir != "" {
		for i := range parts {
			_ = os.Remove(filepath.Join(opts.Dir, fmt.Sprintf("shard-%d-of-%d.model", i, len(parts))))
		}
	}
	return merged, nil
}

// TrainIncremental folds newly arrived tables into an existing model
// without re-scanning the old corpus: the delta corpus is trained alone
// and merged into base. The result is byte-identical to retraining from
// scratch exactly when base and delta share one frozen featurization
// index spanning the union corpus (corpus.WithSharedIndex); a delta
// trained against its own index drifts by whatever its token prevalences
// differ from the union's.
func TrainIncremental(ctx context.Context, cfg Config, opts TrainOptions, base *Model, delta *corpus.Corpus, detectors []Detector) (*Model, error) {
	dm, err := TrainWith(ctx, cfg, opts, delta, detectors)
	if err != nil {
		return nil, err
	}
	merged, err := Merge(base, dm)
	if err != nil {
		return nil, err
	}
	newTrainMetrics(opts.FT.Obs).merges.Inc()
	return merged, nil
}

// Shard model file layout: magic, 8-byte big-endian job fingerprint,
// then the model in Model.Save's format. The fingerprint ties the file
// to one (config, partition, detectors) job exactly as checkpoints do,
// so a stale file from a different partitioning is retrained, never
// merged.
var shardMagic = []byte("UNIDETECT-SHARD\x01")

// saveShardModel durably persists a completed shard's partial model:
// written to a temp file and renamed into place, so a crash mid-write
// leaves no file that could pass the magic check.
func saveShardModel(path string, fp uint64, m *Model) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: create shard model: %w", err)
	}
	err = func() error {
		if _, err := f.Write(shardMagic); err != nil {
			return err
		}
		var fpb [8]byte
		binary.BigEndian.PutUint64(fpb[:], fp)
		if _, err := f.Write(fpb[:]); err != nil {
			return err
		}
		return m.Save(f)
	}()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("core: write shard model %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("core: commit shard model: %w", err)
	}
	return nil
}

// loadShardModel restores a completed shard's model if path holds one
// for the job identified by fp. Any mismatch — missing file, wrong
// magic, foreign fingerprint, torn payload — reports false and the shard
// retrains (its checkpoint, if any, still resumes the fine-grained way).
func loadShardModel(path string, fp uint64, logf func(string, ...any)) (*Model, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	header := make([]byte, len(shardMagic)+8)
	if _, err := io.ReadFull(f, header); err != nil {
		return nil, false
	}
	if !bytes.Equal(header[:len(shardMagic)], shardMagic) {
		return nil, false
	}
	if got := binary.BigEndian.Uint64(header[len(shardMagic):]); got != fp {
		if logf != nil {
			logf("core: shard model %s belongs to a different job (fingerprint %x != %x); retraining", path, got, fp)
		}
		return nil, false
	}
	m, err := LoadModel(f)
	if err != nil {
		if logf != nil {
			logf("core: shard model %s unreadable (%v); retraining", path, err)
		}
		return nil, false
	}
	if logf != nil {
		logf("core: resuming completed shard model %s", path)
	}
	return m, true
}
