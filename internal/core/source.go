package core

import (
	"context"
	"io"
	"sort"
	"strings"

	"github.com/unidetect/unidetect/internal/colstore"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/stats"
	"github.com/unidetect/unidetect/internal/table"
)

// This file implements the streaming scan driver: DetectSource scores a
// chunked columnar source (internal/colstore) without ever holding the
// whole table's cells in memory. Column-granular detectors run chunk by
// chunk with row indices rebased to source coordinates; the table-level
// FD detectors, which need whole columns, run at end of stream over a
// dictionary-encoded sketch accumulated during the scan — repeated cell
// strings are stored once, so the resident footprint is one chunk plus
// the distinct-value dictionaries, not the table.
//
// Like Detect/DetectAll, the driver has a reference and a fast variant
// selected by Predictor.Reference, sharing one chunk loop so chaos
// admission, sketch contents and metrics are identical by construction;
// internal/difftest holds the two byte-identical across chunk sizes.

// DetectSource scores a streaming source and returns its findings in the
// same dedup-preserving first-seen order Detect emits. The source is
// drained but not closed (the caller owns Close). A source error aborts
// the scan; injected chaos faults instead degrade the failing chunk —
// its rows vanish from the scan on both paths — and the scan continues.
func (p *Predictor) DetectSource(ctx context.Context, src colstore.Source) ([]Finding, error) {
	if p.Reference {
		return p.detectSourceReference(ctx, src)
	}
	return p.detectSourceFast(ctx, src)
}

// rowSeg maps one admitted chunk's sketch rows back to source rows:
// sketch rows [start, start+n) came from source rows [base, base+n).
// Segments are only non-trivial when chaos degraded a chunk mid-stream.
type rowSeg struct {
	start int // first sketch row of the segment
	base  int // the chunk's first source row
}

// sourceSketch accumulates the dictionary-encoded column sketch the
// table-level detectors run over at end of stream. Cell strings are
// interned once per distinct value (cloned out of the chunk arenas, so
// released chunks are not pinned); per-cell state is one uint32 id.
type sourceSketch struct {
	names []string
	dicts []map[string]uint32
	vals  [][]string
	ids   [][]uint32
	segs  []rowSeg
	rows  int // admitted rows folded so far
}

// fold appends one admitted chunk to the sketch. Columns appearing for
// the first time are backfilled with empty cells for the rows already
// folded, mirroring how colstore.ReadAll widens.
//
// alloc-budget: 11 dictionary growth is the sketch's whole job: per-column dict/value/id structures on first sight, value interning on new distinct cells, id and segment growth per chunk
func (sk *sourceSketch) fold(c *colstore.Chunk) {
	for j := 0; j < c.NumCols(); j++ {
		v := c.Col(j)
		if j == len(sk.names) {
			sk.names = append(sk.names, v.Name())
			sk.dicts = append(sk.dicts, map[string]uint32{"": 0})
			sk.vals = append(sk.vals, []string{""})
			sk.ids = append(sk.ids, make([]uint32, sk.rows))
		}
		d := sk.dicts[j]
		for i := 0; i < v.Len(); i++ {
			s := v.Value(i)
			id, ok := d[s]
			if !ok {
				id = uint32(len(sk.vals[j]))
				// Clone so the dictionary never pins a released arena.
				s = strings.Clone(s)
				d[s] = id
				sk.vals[j] = append(sk.vals[j], s)
			}
			sk.ids[j] = append(sk.ids[j], id)
		}
	}
	sk.segs = append(sk.segs, rowSeg{start: sk.rows, base: c.Base})
	sk.rows += c.Rows()
	// The schema only widens, so every column now has an id per folded
	// row; pad defensively anyway to keep materialize rectangular.
	for j := range sk.ids {
		for len(sk.ids[j]) < sk.rows {
			sk.ids[j] = append(sk.ids[j], 0)
		}
	}
}

// materialize decodes the sketch into a table named name for the
// table-level detectors. A sketch that saw no chunks still defines the
// schema's columns, zero rows each.
func (sk *sourceSketch) materialize(name string, schema []string) (*table.Table, error) {
	names := sk.names
	if len(names) == 0 {
		names = schema
	}
	cols := make([]*table.Column, len(names))
	for j := range names {
		values := make([]string, sk.rows)
		if j < len(sk.ids) {
			for i, id := range sk.ids[j] {
				values[i] = sk.vals[j][id]
			}
		}
		cols[j] = table.NewColumn(names[j], values)
	}
	return table.New(name, cols...)
}

// remap rebases sketch-table row indices (what a detector measuring the
// materialized sketch reports) to source rows. With no degraded chunks
// the mapping is the identity and the input aliases through untouched;
// otherwise survivors get a fresh slice — cached measurement slices are
// shared and must never be mutated.
func (sk *sourceSketch) remap(rows []int) []int {
	identity := true
	for _, s := range sk.segs {
		if s.start != s.base {
			identity = false
			break
		}
	}
	if identity || len(rows) == 0 {
		return rows
	}
	out := make([]int, len(rows))
	for i, r := range rows {
		k := sort.Search(len(sk.segs), func(k int) bool { return sk.segs[k].start > r }) - 1
		out[i] = sk.segs[k].base + (r - sk.segs[k].start)
	}
	return out
}

// shiftRows returns a remap rebasing chunk-local rows by the chunk's
// base. Base zero is the identity and aliases the input; otherwise the
// caller gets a fresh slice (cached measurements stay untouched).
func shiftRows(base int) func([]int) []int {
	return func(rows []int) []int {
		if base == 0 || len(rows) == 0 {
			return rows
		}
		out := make([]int, len(rows))
		for i, r := range rows {
			out[i] = r + base
		}
		return out
	}
}

// scanChunks drives the streaming loop shared by both DetectSource
// variants: pull a chunk, gate it through chaos admission, fold it into
// the sketch, hand its materialized table to the path's scorer, then
// release it before pulling the next — at most one chunk per column is
// resident at a time (instrumented sources verify this via Releaser).
func (p *Predictor) scanChunks(ctx context.Context, src colstore.Source, sk *sourceSketch, score func(ct *table.Table, base int)) error {
	pm := p.metrics()
	rel, _ := src.(colstore.Releaser)
	for {
		c, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		start := p.Obs.Now()
		pm.scanChunks.Inc()
		pm.scanBytes.Add(int64(c.Bytes()))
		if p.Inject == nil || p.admitChunk(ctx, src.Name()) {
			sk.fold(c)
			score(c.Table(src.Name()), c.Base)
		}
		pm.scanChunkSeconds.Observe((p.Obs.Now() - start).Seconds())
		if rel != nil {
			rel.Release(c)
		}
	}
}

// admitChunk runs the per-chunk chaos gate of the streaming scan. Both
// DetectSource variants reach it through the shared scanChunks loop, so
// a chaos schedule hits the site with the same per-chunk ordinals and
// degrades the same chunks on both paths.
//
// alloc-budget: 4 chaos admission gate: recover shield and degradation logging, called only under fault injection
func (p *Predictor) admitChunk(ctx context.Context, name string) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			p.logf("core: scan chunk of %q panicked: %v; skipping", name, r)
			p.metrics().scanDegraded.Inc()
			ok = false
		}
	}()
	if err := p.Inject.Hit(ctx, "core/scan/table="+name); err != nil {
		p.logf("core: scan chunk of %q failed: %v; skipping", name, err)
		p.metrics().scanDegraded.Inc()
		return false
	}
	return true
}

// addShifted scores measurements through the compact index like add,
// with row indices rebased through remap before dedup — the chunk-scan
// scoring kernel. Filter, metrics and dedup preference replicate add
// (and therefore the reference loop) exactly.
//
// alloc-budget: 4 dedup keys intern as in add, plus the rebased row slice of each surviving finding
func (p *Predictor) addShifted(st *scoreState, t *table.Table, det Detector, ms []Measurement, remap func([]int) []int) {
	if len(ms) == 0 {
		return
	}
	pm := p.metrics()
	ix := p.lrIndex()
	cls := det.Class()
	q := det.Quantizer()
	alpha := p.Model.Config.Alpha
	for _, meas := range ms {
		if !meas.Valid {
			continue
		}
		b1, b2 := q.Bin(meas.Theta1), q.Bin(meas.Theta2)
		lr, support, oc := ix.LR(int(cls), meas.Key, b1, b2)
		pm.ixLookups.With(oc.String()).Inc()
		pm.lr.With(cls.String()).Observe(lr)
		if lr > alpha {
			continue
		}
		pm.findings.With(cls.String()).Inc()
		rows := remap(meas.Rows)
		f := Finding{
			Class:   cls,
			Table:   t.Name,
			Column:  meas.Column,
			Rows:    rows,
			Values:  meas.Values,
			LR:      lr,
			Theta1:  meas.Theta1,
			Theta2:  meas.Theta2,
			Support: support,
			Detail:  meas.Detail,
		}
		st.keyBuf = appendDedupKey(st.keyBuf[:0], cls, rows)
		prev, seen := st.best[string(st.keyBuf)]
		switch {
		case !seen:
			key := string(st.keyBuf)
			st.order = append(st.order, key)
			st.best[key] = f
		case f.LR < prev.LR || (stats.SameFloat(f.LR, prev.LR) && f.Column < prev.Column):
			st.best[string(st.keyBuf)] = f
		}
	}
}

// detectSourceFast is the indexed streaming scan: column detectors run
// per chunk through the measurement cache with pooled scratch, the
// table-level pass scores the materialized sketch, and one score state
// spans the whole stream so cross-chunk duplicates dedup exactly as an
// in-memory scan would.
func (p *Predictor) detectSourceFast(ctx context.Context, src colstore.Source) ([]Finding, error) {
	sp := obs.StartSpan(ctx, "core/detect_source")
	sp.Tag("table", src.Name())
	sp.Tag("path", "indexed")
	defer sp.End()
	pm := p.metrics()
	pm.tables.Inc()
	sc := p.getScratch()
	defer p.scratches.Put(sc)
	st := &sc.score
	st.reset()
	var sk sourceSketch
	err := p.scanChunks(ctx, src, &sk, func(ct *table.Table, base int) {
		shift := shiftRows(base)
		for _, det := range p.Detectors {
			cmr, ok := det.(ColumnMeasurer)
			if !ok {
				continue
			}
			for pos := range ct.Columns {
				p.addShifted(st, ct, det, p.measureColumn(cmr, ct, pos, sc), shift)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	tbl, err := sk.materialize(src.Name(), src.ColumnNames())
	if err != nil {
		return nil, err
	}
	for _, det := range p.Detectors {
		if _, ok := det.(ColumnMeasurer); ok {
			continue
		}
		p.addShifted(st, tbl, det, p.measureTable(det, tbl), sk.remap)
	}
	return st.findings(), nil
}

// detectSourceReference is the oracle streaming scan: the reference
// map-backed scoring loop applied chunk by chunk, kept as plain as
// detectReference so difftest can hold the fast variant byte-identical.
func (p *Predictor) detectSourceReference(ctx context.Context, src colstore.Source) ([]Finding, error) {
	pm := p.metrics()
	pm.tables.Inc()
	best := map[string]Finding{}
	var order []string
	score := func(t *table.Table, det Detector, ms []Measurement, remap func([]int) []int) {
		cls := det.Class()
		for _, meas := range ms {
			if !meas.Valid {
				continue
			}
			lr, support := p.Model.LR(cls, det, meas)
			pm.lr.With(cls.String()).Observe(lr)
			if lr > p.Model.Config.Alpha {
				continue
			}
			pm.findings.With(cls.String()).Inc()
			rows := remap(meas.Rows)
			f := Finding{
				Class:   cls,
				Table:   t.Name,
				Column:  meas.Column,
				Rows:    rows,
				Values:  meas.Values,
				LR:      lr,
				Theta1:  meas.Theta1,
				Theta2:  meas.Theta2,
				Support: support,
				Detail:  meas.Detail,
			}
			key := dedupKey(cls, rows)
			prev, seen := best[key]
			if !seen {
				order = append(order, key)
			}
			if !seen || f.LR < prev.LR || (stats.SameFloat(f.LR, prev.LR) && f.Column < prev.Column) {
				best[key] = f
			}
		}
	}
	var sk sourceSketch
	err := p.scanChunks(ctx, src, &sk, func(ct *table.Table, base int) {
		shift := shiftRows(base)
		for _, det := range p.Detectors {
			if _, ok := det.(ColumnMeasurer); !ok {
				continue
			}
			score(ct, det, det.Measure(ct, p.Env), shift)
		}
	})
	if err != nil {
		return nil, err
	}
	tbl, err := sk.materialize(src.Name(), src.ColumnNames())
	if err != nil {
		return nil, err
	}
	for _, det := range p.Detectors {
		if _, ok := det.(ColumnMeasurer); ok {
			continue
		}
		score(tbl, det, det.Measure(tbl, p.Env), sk.remap)
	}
	out := make([]Finding, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	return out, nil
}
