//go:build race

package core_test

// raceEnabled reports whether the race detector instruments this test
// binary; its write barriers allocate, so allocation-budget assertions
// are skipped under -race.
const raceEnabled = true
