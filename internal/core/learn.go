package core

import (
	"context"

	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/mapreduce"
	"github.com/unidetect/unidetect/internal/table"
)

// GlobalKey is the pseudo feature bucket holding whole-corpus statistics.
var GlobalKey = feature.Key{Type: table.ValueType(0xFF)}

// WildRows and WildB mark wildcard buckets: statistics aggregated over
// every value of the wildcarded dimension, with the rest of the key
// intact. Sparse full buckets back off through a chain of these before
// falling all the way to GlobalKey — so a 3000-row enterprise column
// still benefits from type- and class-specific evidence even when the
// training corpus has few tables that large, and the dimension that
// matters most for a class is surrendered last.
const (
	WildRows uint8 = 0xFE
	WildB    uint8 = 0xFD
)

// wildRowsKey returns key with its row bucket wildcarded.
func wildRowsKey(k feature.Key) feature.Key {
	k.Rows = WildRows
	return k
}

// wildBKey returns key with its secondary class dimension wildcarded.
func wildBKey(k feature.Key) feature.Key {
	k.B = WildB
	return k
}

// backoffKeys returns the bucket lookup chain for a key, most specific
// first (excluding the full key itself and the global grid).
func backoffKeys(k feature.Key) []feature.Key {
	return []feature.Key{
		wildBKey(k),              // drop leftness first: least informative
		wildRowsKey(k),           // then row count
		wildBKey(wildRowsKey(k)), // then both
	}
}

// Train runs the offline learning pass: a MapReduce-like job over the
// background corpus T that, per error class and per feature bucket,
// materializes the joint (θ1, θ2) distribution (§2.2.3). The resulting
// Model answers online predictions by lookup.
func Train(ctx context.Context, cfg Config, bg *corpus.Corpus, detectors []Detector) (*Model, error) {
	env := &Env{Index: bg.Index()}

	type bucketID struct {
		class Class
		key   feature.Key
	}
	type binPair struct{ b1, b2 uint16 }

	mapper := func(t *table.Table, emit func(bucketID, binPair)) error {
		for _, det := range detectors {
			q := det.Quantizer()
			cls := det.Class()
			for _, meas := range det.Measure(t, env) {
				p := binPair{uint16(q.Bin(meas.Theta1)), uint16(q.Bin(meas.Theta2))}
				emit(bucketID{cls, meas.Key}, p)
				for _, k := range backoffKeys(meas.Key) {
					emit(bucketID{cls, k}, p)
				}
				emit(bucketID{cls, GlobalKey}, p)
			}
		}
		return nil
	}
	reducer := func(id bucketID, pairs []binPair) (*evidence.Grid, error) {
		var bins int
		for _, det := range detectors {
			if det.Class() == id.class {
				bins = det.Quantizer().Bins()
				break
			}
		}
		g := evidence.NewGrid(bins)
		for _, p := range pairs {
			g.Add(int(p.b1), int(p.b2))
		}
		return g, nil
	}

	grids, err := mapreduce.Run(ctx, mapreduce.Config{Workers: cfg.Workers}, bg.Tables, mapper, reducer)
	if err != nil {
		return nil, err
	}

	m := &Model{
		Classes:       make(map[Class]*ClassModel, len(detectors)),
		Config:        cfg,
		CorpusTables:  bg.NumTables(),
		CorpusColumns: bg.NumColumns(),
	}
	for _, det := range detectors {
		m.Classes[det.Class()] = &ClassModel{
			Dirs:    det.Directions(),
			Buckets: make(map[feature.Key]*evidence.Grid),
			Global:  evidence.NewGrid(det.Quantizer().Bins()),
		}
	}
	for id, g := range grids {
		cm := m.Classes[id.class]
		if cm == nil {
			continue
		}
		if id.key == GlobalKey {
			cm.Global.Merge(g)
		} else {
			cm.Buckets[id.key] = g
		}
	}
	for _, cm := range m.Classes {
		cm.finalize()
	}
	return m, nil
}
