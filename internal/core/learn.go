package core

import (
	"context"

	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/mapreduce"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/table"
)

// GlobalKey is the pseudo feature bucket holding whole-corpus statistics.
var GlobalKey = feature.GlobalKey

// WildRows and WildB mark wildcard buckets; see feature.WildRows. The
// wildcard/backoff scheme lives in the feature package so the compact LR
// index (internal/lrindex) can mirror the learner's bucket chain without
// importing core; these aliases keep the historical core names working.
const (
	WildRows = feature.WildRows
	WildB    = feature.WildB
)

// wildRowsKey returns key with its row bucket wildcarded.
func wildRowsKey(k feature.Key) feature.Key { return feature.WildRowsKey(k) }

// backoffKeys returns the bucket lookup chain for a key, most specific
// first (excluding the full key itself and the global grid).
func backoffKeys(k feature.Key) [3]feature.Key { return feature.Backoff(k) }

// bucketID identifies one reduce bucket of the learning job: an error
// class plus a feature bucket (or a wildcard/global pseudo-bucket).
type bucketID struct {
	class Class
	key   feature.Key
}

// binPair is one quantized (θ1, θ2) observation.
type binPair struct{ b1, b2 uint16 }

// TrainOptions carries the fault-tolerance and checkpointing knobs of
// the offline pass. The zero value trains exactly like Train always has:
// no retries, fail-fast, no checkpoint.
type TrainOptions struct {
	// FT configures per-shard retry, the failure policy and fault
	// injection of the underlying MapReduce job.
	FT mapreduce.FT
	// CheckpointPath, when non-empty, makes the job durably record each
	// completed reduce bucket there so a killed run can resume: a rerun
	// with the same corpus, config and path skips the recorded buckets
	// and produces a byte-identical model. The file is removed once
	// training completes.
	CheckpointPath string
}

// Train runs the offline learning pass: a MapReduce-like job over the
// background corpus T that, per error class and per feature bucket,
// materializes the joint (θ1, θ2) distribution (§2.2.3). The resulting
// Model answers online predictions by lookup.
func Train(ctx context.Context, cfg Config, bg *corpus.Corpus, detectors []Detector) (*Model, error) {
	return TrainWith(ctx, cfg, TrainOptions{}, bg, detectors)
}

// TrainWith is Train with fault tolerance: retry/skip policies from
// opts.FT and, when opts.CheckpointPath is set, checkpoint/resume of
// completed reduce buckets.
func TrainWith(ctx context.Context, cfg Config, opts TrainOptions, bg *corpus.Corpus, detectors []Detector) (*Model, error) {
	reg := opts.FT.Obs
	tm := newTrainMetrics(reg)
	tm.runs.Inc()
	sp := obs.StartSpan(ctx, "core/train")
	sp.Tag("tables", bg.NumTables())
	trainStart := reg.Now()
	defer func() {
		tm.seconds.Observe((reg.Now() - trainStart).Seconds())
		sp.End()
	}()

	env := &Env{Index: bg.Index(), Obs: reg}

	mapper := func(t *table.Table, emit func(bucketID, binPair)) error {
		for _, det := range detectors {
			q := det.Quantizer()
			cls := det.Class()
			for _, meas := range det.Measure(t, env) {
				p := binPair{uint16(q.Bin(meas.Theta1)), uint16(q.Bin(meas.Theta2))}
				emit(bucketID{cls, meas.Key}, p)
				for _, k := range backoffKeys(meas.Key) {
					emit(bucketID{cls, k}, p)
				}
				emit(bucketID{cls, GlobalKey}, p)
			}
		}
		return nil
	}
	reducer := func(id bucketID, pairs []binPair) (*evidence.Grid, error) {
		var bins int
		for _, det := range detectors {
			if det.Class() == id.class {
				bins = det.Quantizer().Bins()
				break
			}
		}
		g := evidence.NewGrid(bins)
		for _, p := range pairs {
			g.Add(int(p.b1), int(p.b2))
		}
		return g, nil
	}

	mrCfg := mapreduce.Config{Workers: cfg.Workers, FT: opts.FT}

	// With a checkpoint path, already-reduced buckets from a previous
	// (killed) run are restored and skipped; every newly completed
	// bucket is appended to the checkpoint before the job moves on.
	var ckpt *checkpointFile
	done := map[bucketID]*evidence.Grid{}
	if opts.CheckpointPath != "" {
		var err error
		ckpt, done, err = openCheckpoint(opts.CheckpointPath, fingerprint(cfg, bg, detectors), opts.FT.Logf)
		if err != nil {
			return nil, err
		}
		defer func() {
			if ckpt != nil {
				// Abandoned mid-job (error path): keep the file for resume.
				_ = ckpt.Close()
			}
		}()
	}

	if len(done) > 0 {
		tm.resumes.Inc()
		tm.ckResume.Add(int64(len(done)))
		sp.Tag("resumed_buckets", len(done))
	}

	groups, err := mapreduce.MapShuffle(ctx, mrCfg, bg.Tables, mapper)
	if err != nil {
		return nil, err
	}
	for id := range done {
		delete(groups, id)
	}
	var observe func(bucketID, *evidence.Grid) error
	if ckpt != nil {
		observe = func(id bucketID, g *evidence.Grid) error {
			if err := ckpt.append(id, g); err != nil {
				return err
			}
			tm.ckWrites.Inc()
			return nil
		}
	}
	grids, err := mapreduce.ReduceObserved(ctx, mrCfg, groups, reducer, observe)
	if err != nil {
		return nil, err
	}
	for id, g := range done {
		grids[id] = g
	}
	if ckpt != nil {
		if err := ckpt.CloseAndRemove(); err != nil {
			return nil, err
		}
		ckpt = nil
	}

	m := &Model{
		Classes:       make(map[Class]*ClassModel, len(detectors)),
		Config:        cfg,
		CorpusTables:  bg.NumTables(),
		CorpusColumns: bg.NumColumns(),
	}
	for _, det := range detectors {
		m.Classes[det.Class()] = &ClassModel{
			Dirs:    det.Directions(),
			Buckets: make(map[feature.Key]*evidence.Grid),
			Global:  evidence.NewGrid(det.Quantizer().Bins()),
		}
	}
	for id, g := range grids {
		cm := m.Classes[id.class]
		if cm == nil {
			continue
		}
		if id.key == GlobalKey {
			cm.Global.Merge(g)
		} else {
			cm.Buckets[id.key] = g
		}
	}
	for _, cm := range m.Classes {
		cm.finalize()
	}
	return m, nil
}
