package core_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/unidetect/unidetect/internal/colstore"
	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/table"
)

// trackingSource instruments a SliceSource with residency accounting:
// Next checks a chunk out, the driver's Release checks it back in. The
// larger-than-RAM claim reduces to maxOut never exceeding one.
type trackingSource struct {
	*colstore.SliceSource
	outstanding int
	maxOut      int
	chunks      int
	bytes       int
}

func (s *trackingSource) Next() (*colstore.Chunk, error) {
	c, err := s.SliceSource.Next()
	if err != nil {
		return nil, err
	}
	s.outstanding++
	if s.outstanding > s.maxOut {
		s.maxOut = s.outstanding
	}
	s.chunks++
	s.bytes += c.Bytes()
	return c, nil
}

func (s *trackingSource) Release(*colstore.Chunk) { s.outstanding-- }

// residencyTable is a synthetic table several times the chunk budget.
func residencyTable(t *testing.T, rows int) *table.Table {
	t.Helper()
	city := make([]string, rows)
	pop := make([]string, rows)
	id := make([]string, rows)
	names := []string{"paris", "london", "berlin", "rome", "madrid", "vienna", "oslo"}
	for i := 0; i < rows; i++ {
		city[i] = names[i%len(names)]
		pop[i] = fmt.Sprintf("%d", 1000+i*37)
		id[i] = fmt.Sprintf("id-%04d", i)
	}
	tab, err := table.New("residency", table.NewColumn("city", city),
		table.NewColumn("pop", pop), table.NewColumn("id", id))
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestDetectSourceResidency streams a corpus several times the chunk
// budget through both DetectSource paths with an instrumented source:
// the driver must release every chunk before pulling the next, so at
// most one chunk per column is ever resident, and the scan counters
// must account for exactly the chunks and bytes the source served.
func TestDetectSourceResidency(t *testing.T) {
	m, bg := trainSmall(t)
	dets := detectors.All(m.Config, detectors.Options{})
	const chunkRows = 8
	tab := residencyTable(t, 4*chunkRows*2) // 8 chunks: 4x the budget twice over

	for _, reference := range []bool{false, true} {
		t.Run(fmt.Sprintf("reference=%v", reference), func(t *testing.T) {
			p := core.NewPredictor(m, dets, &core.Env{Index: bg.Index()})
			p.Reference = reference
			reg := obs.NewRegistry()
			p.Obs = reg
			src := &trackingSource{SliceSource: colstore.NewSliceSource(tab, colstore.Options{ChunkRows: chunkRows})}
			if _, err := p.DetectSource(context.Background(), src); err != nil {
				t.Fatal(err)
			}
			if src.chunks < 4 {
				t.Fatalf("scan pulled %d chunks; corpus must exceed 4x the chunk budget", src.chunks)
			}
			if src.maxOut != 1 {
				t.Fatalf("max outstanding chunks = %d, want 1 (chunk not released before next pull)", src.maxOut)
			}
			if src.outstanding != 0 {
				t.Fatalf("%d chunks still outstanding after the scan", src.outstanding)
			}
			if got := scanCounter(t, reg, "unidetect_scan_chunks_total"); got != float64(src.chunks) {
				t.Fatalf("unidetect_scan_chunks_total = %v, want %d", got, src.chunks)
			}
			if got := scanCounter(t, reg, "unidetect_scan_bytes_total"); got != float64(src.bytes) {
				t.Fatalf("unidetect_scan_bytes_total = %v, want %d", got, src.bytes)
			}
		})
	}
}

// errorSource fails after its first chunk: driver must surface the
// source error rather than swallow it into a partial result.
type errorSource struct {
	*colstore.SliceSource
	served bool
	err    error
}

func (s *errorSource) Next() (*colstore.Chunk, error) {
	if s.served {
		return nil, s.err
	}
	s.served = true
	return s.SliceSource.Next()
}

func TestDetectSourceError(t *testing.T) {
	m, bg := trainSmall(t)
	dets := detectors.All(m.Config, detectors.Options{})
	tab := residencyTable(t, 16)
	sentinel := errors.New("disk gone")
	for _, reference := range []bool{false, true} {
		p := core.NewPredictor(m, dets, &core.Env{Index: bg.Index()})
		p.Reference = reference
		src := &errorSource{SliceSource: colstore.NewSliceSource(tab, colstore.Options{ChunkRows: 4}), err: sentinel}
		fs, err := p.DetectSource(context.Background(), src)
		if !errors.Is(err, sentinel) {
			t.Fatalf("reference=%v: err = %v, want the source's error", reference, err)
		}
		if fs != nil {
			t.Fatalf("reference=%v: got partial findings alongside the error", reference)
		}
	}
}

// scanCounter sums one counter family from the registry's exposition.
func scanCounter(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePromText(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseProm(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	fam := fams[name]
	if fam == nil {
		return 0
	}
	var total float64
	for _, s := range fam.Samples {
		total += s.Value
	}
	return total
}
