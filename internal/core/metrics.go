package core

import (
	"github.com/unidetect/unidetect/internal/obs"
)

// trainMetrics bundles the offline-pass metric children. Fields are nil
// (no-op) without a registry.
type trainMetrics struct {
	runs         *obs.Counter
	resumes      *obs.Counter
	seconds      *obs.Histogram
	ckWrites     *obs.Counter
	ckResume     *obs.Counter
	shardRuns    *obs.Counter
	shardResumes *obs.Counter
	merges       *obs.Counter
}

// newTrainMetrics resolves the training metric children from r (nil-safe).
// Every training metric name literal lives here and nowhere else.
func newTrainMetrics(r *obs.Registry) trainMetrics {
	return trainMetrics{
		runs: r.Counter("unidetect_train_runs_total",
			"Offline learning passes started."),
		resumes: r.Counter("unidetect_train_resumes_total",
			"Learning passes that resumed work from a checkpoint."),
		seconds: r.Histogram("unidetect_train_seconds",
			"Wall time of the offline learning pass.", nil),
		ckWrites: r.Counter("unidetect_train_checkpoint_buckets_written_total",
			"Reduce buckets durably appended to the checkpoint."),
		ckResume: r.Counter("unidetect_train_checkpoint_buckets_resumed_total",
			"Reduce buckets restored from a checkpoint instead of recomputed."),
		shardRuns: r.Counter("unidetect_train_shards_total",
			"Corpus shards trained to completion by sharded learning passes."),
		shardResumes: r.Counter("unidetect_train_shard_models_resumed_total",
			"Completed shard models restored from disk instead of retrained."),
		merges: r.Counter("unidetect_train_merges_total",
			"Partial-model merges folding shard or incremental models."),
	}
}

// predictMetrics bundles the online-path metric children.
type predictMetrics struct {
	tables     *obs.Counter
	degraded   *obs.Counter
	detSeconds *obs.HistogramVec
	lr         *obs.HistogramVec
	findings   *obs.CounterVec
	// Fast-path instrumentation. ixLookups is deterministic for a given
	// corpus (one increment per scored measurement); cacheOps and
	// scratchReuse depend on worker interleaving and are excluded from
	// the benchmark baseline scrape.
	ixLookups    *obs.CounterVec
	cacheOps     *obs.CounterVec
	scratchReuse *obs.Counter
	// Streaming-scan instrumentation (DetectSource). Chunk and byte
	// counters are deterministic for a given source; the latency
	// histogram is wall-clock and excluded from baselines.
	scanChunks       *obs.Counter
	scanBytes        *obs.Counter
	scanDegraded     *obs.Counter
	scanChunkSeconds *obs.Histogram
}

// newPredictMetrics resolves the prediction metric children from r
// (nil-safe). Every prediction metric name literal lives here.
func newPredictMetrics(r *obs.Registry) predictMetrics {
	return predictMetrics{
		tables: r.Counter("unidetect_predict_tables_total",
			"Tables scored by the predictor."),
		degraded: r.Counter("unidetect_predict_degraded_tables_total",
			"Tables whose findings were dropped by graceful degradation."),
		detSeconds: r.HistogramVec("unidetect_predict_detector_seconds",
			"Per-table prediction latency by detector (measure plus LR lookups).",
			"detector", nil),
		lr: r.HistogramVec("unidetect_predict_lr",
			"Likelihood ratios of valid measurements by detector.",
			"detector", obs.ScoreBuckets),
		findings: r.CounterVec("unidetect_predict_findings_total",
			"Findings emitted (before cross-candidate dedup) by detector.",
			"detector"),
		ixLookups: r.CounterVec("unidetect_predict_index_lookups_total",
			"Compact-index LR lookups by which backoff layer answered.",
			"outcome"),
		cacheOps: r.CounterVec("unidetect_predict_measure_cache_total",
			"Per-column measurement cache lookups by result.",
			"result"),
		scratchReuse: r.Counter("unidetect_predict_scratch_reuse_total",
			"Measurement units served by a reused worker scratch buffer."),
		scanChunks: r.Counter("unidetect_scan_chunks_total",
			"Chunks pulled from streaming sources by DetectSource."),
		scanBytes: r.Counter("unidetect_scan_bytes_total",
			"Cell payload bytes streamed out of chunked sources."),
		scanDegraded: r.Counter("unidetect_scan_degraded_chunks_total",
			"Chunks dropped by graceful degradation during streaming scans."),
		scanChunkSeconds: r.Histogram("unidetect_scan_chunk_seconds",
			"Per-chunk streaming scan latency (measure plus scoring).", nil),
	}
}

// CountMeasurements records n measurements produced by a detector of
// class cls. Detectors call this at the end of Measure; the single call
// chain keeps the metric name at one registration site. Safe on a nil
// Env or an Env with no registry.
func (e *Env) CountMeasurements(cls Class, n int) {
	if e == nil || e.Obs == nil || n <= 0 {
		return
	}
	e.Obs.CounterVec("unidetect_detector_measurements_total",
		"Measurements produced by each detector's Measure.", "detector").
		With(cls.String()).Add(int64(n))
}
