package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadShardModelRejectsForeign(t *testing.T) {
	m := fuzzMergeModel([]byte("shard-model"), 0)
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.model")
	if err := saveShardModel(path, 42, m); err != nil {
		t.Fatal(err)
	}
	if _, ok := loadShardModel(path, 42, nil); !ok {
		t.Error("round-trip load of a matching shard model failed")
	}
	if _, ok := loadShardModel(path, 43, nil); ok {
		t.Error("shard model with a foreign fingerprint was accepted")
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := loadShardModel(path, 42, nil); ok {
		t.Error("garbage shard model was accepted")
	}
}
