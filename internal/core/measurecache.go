package core

import (
	"container/list"
	"sync"

	"github.com/unidetect/unidetect/internal/colstore"
	"github.com/unidetect/unidetect/internal/table"
)

// The measurement cache memoizes per-column detector output keyed by a
// content fingerprint of the column. Real corpora repeat columns
// constantly — dimension tables shared across workbooks, code lists,
// re-submitted spreadsheets — and a predictor serving a stream of
// requests re-measures them from zero each time. Because ColumnMeasurer
// implementations are pure functions of (column content, position, env),
// replaying a previous result is exactly equivalent to recomputing it;
// the difftest harness holds the cached pipeline to byte-identical
// findings against the uncached reference.
//
// The cache is sharded to keep lock hold times off the measurement hot
// path: the fingerprint picks a shard, each shard is an independent
// LRU under its own mutex.

// cacheShards is the number of independent LRU shards (power of two).
const cacheShards = 16

// defaultCacheSize is the default total entry budget across shards.
const defaultCacheSize = 16384

// cacheKey identifies one (detector class, column position, column
// content) memoization slot. The two independent 64-bit FNV-1a hashes
// make accidental collisions (which would silently replay the wrong
// measurements) a ~2^-128 event per pair.
type cacheKey struct {
	cls    Class
	pos    int32
	h1, h2 uint64
}

// fingerprintColumn hashes the column's name and values with length
// framing, so ("ab","c") and ("a","bc") fingerprint differently. The
// hash is internal/colstore's exported FNV-128 — the same fingerprint
// colstore.ColumnView computes and `.ucol` files store per chunk, so a
// stored chunk fingerprint is directly a cache key component.
func fingerprintColumn(c *table.Column) (h1, h2 uint64) {
	h1, h2 = colstore.NewHash()
	h1, h2 = colstore.HashString(h1, h2, c.Name)
	for _, v := range c.Values {
		h1, h2 = colstore.HashString(h1, h2, v)
	}
	return h1, h2
}

// fingerprintTable hashes every column of the table — names and values,
// length-framed — for table-level detector memoization. The table's own
// name is deliberately excluded: no detector reads it (Measure is a pure
// function of the columns and the env), and the daemon namespaces batch
// tables with a per-request prefix that would otherwise defeat reuse.
// The pos = -1 sentinel in the cache key keeps table entries disjoint
// from column entries.
func fingerprintTable(t *table.Table) (h1, h2 uint64) {
	h1, h2 = colstore.NewHash()
	for _, c := range t.Columns {
		h1, h2 = colstore.HashString(h1, h2, c.Name)
		for _, v := range c.Values {
			h1, h2 = colstore.HashString(h1, h2, v)
		}
	}
	return h1, h2
}

// cacheEntry is one memoized measurement list.
type cacheEntry struct {
	key cacheKey
	ms  []Measurement
}

// cacheShard is one LRU shard.
type cacheShard struct {
	mu sync.Mutex
	// guarded by mu
	items map[cacheKey]*list.Element
	// guarded by mu
	ll *list.List // front = most recently used
	// guarded by mu
	capacity int
}

// measureCache is the sharded LRU. Zero entries per shard disables a
// shard (and a nil *measureCache disables the whole cache).
type measureCache struct {
	shards [cacheShards]cacheShard
}

// newMeasureCache builds a cache with the given total entry budget
// (<= 0 returns nil: caching disabled).
//
// alloc-budget: 2 one-time cache construction: header and per-shard LRU state
func newMeasureCache(total int) *measureCache {
	if total <= 0 {
		return nil
	}
	per := total / cacheShards
	if per < 1 {
		per = 1
	}
	mc := &measureCache{}
	for i := range mc.shards {
		mc.shards[i] = cacheShard{
			items:    make(map[cacheKey]*list.Element),
			ll:       list.New(),
			capacity: per,
		}
	}
	return mc
}

func (mc *measureCache) shard(k cacheKey) *cacheShard {
	return &mc.shards[k.h1&(cacheShards-1)]
}

// get returns the memoized measurements for the column, if present.
// The returned slice is shared and must be treated as read-only.
func (mc *measureCache) get(cls Class, pos int, c *table.Column) ([]Measurement, bool) {
	if mc == nil {
		return nil, false
	}
	h1, h2 := fingerprintColumn(c)
	k := cacheKey{cls: cls, pos: int32(pos), h1: h1, h2: h2}
	s := mc.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		return nil, false
	}
	ent, ok := el.Value.(*cacheEntry)
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return ent.ms, true
}

// getTable returns the memoized measurements of a table-level detector,
// if present. The returned slice is shared and must be treated as
// read-only.
func (mc *measureCache) getTable(cls Class, t *table.Table) ([]Measurement, bool) {
	if mc == nil {
		return nil, false
	}
	h1, h2 := fingerprintTable(t)
	k := cacheKey{cls: cls, pos: -1, h1: h1, h2: h2}
	s := mc.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		return nil, false
	}
	ent, ok := el.Value.(*cacheEntry)
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return ent.ms, true
}

// putTable memoizes the measurements of a table-level detector.
func (mc *measureCache) putTable(cls Class, t *table.Table, ms []Measurement) {
	if mc == nil {
		return
	}
	h1, h2 := fingerprintTable(t)
	mc.insert(cacheKey{cls: cls, pos: -1, h1: h1, h2: h2}, ms)
}

// put memoizes the measurements for the column, evicting the least
// recently used entry of the shard when over budget.
func (mc *measureCache) put(cls Class, pos int, c *table.Column, ms []Measurement) {
	if mc == nil {
		return
	}
	h1, h2 := fingerprintColumn(c)
	mc.insert(cacheKey{cls: cls, pos: int32(pos), h1: h1, h2: h2}, ms)
}

// insert adds one entry under its shard's lock, evicting the least
// recently used entries of the shard when over budget.
//
// alloc-budget: 1 one entry header per memoized column; residency bounded by the shard capacity
func (mc *measureCache) insert(k cacheKey, ms []Measurement) {
	s := mc.shard(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		// A concurrent worker measured the same column; the results are
		// identical by purity, so keep the resident entry.
		s.ll.MoveToFront(el)
		return
	}
	s.items[k] = s.ll.PushFront(&cacheEntry{key: k, ms: ms})
	for s.ll.Len() > s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		if ent, ok := oldest.Value.(*cacheEntry); ok {
			delete(s.items, ent.key)
		}
	}
}

// len reports the resident entry count (tests only).
func (mc *measureCache) len() int {
	if mc == nil {
		return 0
	}
	n := 0
	for i := range mc.shards {
		s := &mc.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}
