package core

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/table"
)

// fuzzFingerprint is the job fingerprint both fuzz targets open
// checkpoints under; any file not written under it must restart.
const fuzzFingerprint = 0xfeedface

// writeCkpt dumps raw bytes as a checkpoint file and returns its path.
func writeCkpt(t testing.TB, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fuzz.ckpt")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// FuzzCheckpointLoad feeds arbitrary bytes to the checkpoint opener. The
// invariant under corruption is availability, not recovery: open must
// never panic or error on mangled content (only on I/O failure), and the
// file it leaves behind must accept appends that a reopen then returns.
func FuzzCheckpointLoad(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("UNIDETECT-CKPT\x01"))
	f.Add([]byte("not a checkpoint at all"))
	// A huge declared frame length with no payload behind it.
	tornLen := append([]byte("UNIDETECT-CKPT\x01"), 0xff, 0xff, 0xff, 0xff)
	f.Add(tornLen)
	// A valid file, produced by the real writer, then a valid file with
	// trailing garbage — the torn-tail path.
	valid := fuzzValidCheckpoint(f)
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), 0, 0, 1, 0, 0xde, 0xad))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := writeCkpt(t, data)
		ckpt, done, err := openCheckpoint(path, fuzzFingerprint, nil)
		if err != nil {
			t.Skipf("open: %v", err) // I/O-level failure, not a parse outcome
		}
		for id, g := range done {
			if g == nil || g.N <= 0 || len(g.Counts) != g.N*g.N {
				t.Fatalf("restored malformed grid for %+v", id)
			}
		}
		// Whatever open salvaged, the file must still be appendable and
		// the appended record must survive a reopen.
		id := bucketID{class: ClassSpelling, key: feature.Key{Type: 1, Rows: 2}}
		g := evidence.NewGrid(4)
		g.Add(1, 2)
		if err := ckpt.append(id, g); err != nil {
			t.Fatalf("append after load: %v", err)
		}
		if err := ckpt.Close(); err != nil {
			t.Fatal(err)
		}
		ckpt2, done2, err := openCheckpoint(path, fuzzFingerprint, nil)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer func() { _ = ckpt2.Close() }()
		got, ok := done2[id]
		if !ok {
			t.Fatalf("record appended after salvage is gone (had %d before, %d after)", len(done), len(done2))
		}
		if got.Total != g.Total {
			t.Fatalf("restored grid total = %d, want %d", got.Total, g.Total)
		}
	})
}

// fuzzValidCheckpoint builds a well-formed one-record checkpoint via the
// production writer, as a seed the fuzzer can mutate from.
func fuzzValidCheckpoint(f *testing.F) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.ckpt")
	ckpt, _, err := openCheckpoint(path, fuzzFingerprint, nil)
	if err != nil {
		f.Fatal(err)
	}
	g := evidence.NewGrid(4)
	g.Add(0, 3)
	if err := ckpt.append(bucketID{class: ClassUniqueness, key: feature.Key{Type: 2}}, g); err != nil {
		f.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzCheckpointRoundTrip drives the writer with fuzzer-chosen bucket
// identities and grid contents, then checks load returns exactly what
// was appended.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint8(3), uint8(4), uint8(4), uint16(7))
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(1), uint16(0))
	f.Add(uint8(9), uint8(31), uint8(5), uint8(255), uint8(16), uint16(65535))

	f.Fuzz(func(t *testing.T, class, ftype, a, b, n uint8, fill uint16) {
		if n == 0 || n > 64 {
			t.Skip("grid size out of range")
		}
		id := bucketID{
			class: Class(class),
			key:   feature.Key{Type: table.ValueType(ftype), Rows: 1, A: a, B: b},
		}
		g := evidence.NewGrid(int(n))
		for i := 0; i < int(fill)%128; i++ {
			g.Add(i%int(n), (i*7)%int(n))
		}
		path := filepath.Join(t.TempDir(), "rt.ckpt")
		ckpt, done, err := openCheckpoint(path, fuzzFingerprint, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(done) != 0 {
			t.Fatalf("fresh checkpoint reports %d done buckets", len(done))
		}
		if err := ckpt.append(id, g); err != nil {
			t.Fatal(err)
		}
		if err := ckpt.Close(); err != nil {
			t.Fatal(err)
		}
		ckpt2, done2, err := openCheckpoint(path, fuzzFingerprint, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = ckpt2.Close() }()
		got, ok := done2[id]
		if !ok {
			t.Fatalf("bucket %+v missing after round trip", id)
		}
		if got.N != g.N || got.Total != g.Total {
			t.Fatalf("grid shape/total changed: got N=%d Total=%d, want N=%d Total=%d", got.N, got.Total, g.N, g.Total)
		}
		for i := range g.Counts {
			if got.Counts[i] != g.Counts[i] {
				t.Fatalf("count[%d] = %d, want %d", i, got.Counts[i], g.Counts[i])
			}
		}
	})
}

// TestCheckpointFrameLengthBound documents why ckptMaxFrame exists: a
// frame header claiming an absurd length must be rejected as torn, not
// allocated.
func TestCheckpointFrameLengthBound(t *testing.T) {
	data := append([]byte{}, ckptMagic...)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], ckptMaxFrame+1)
	data = append(data, lenBuf[:]...)
	path := writeCkpt(t, data)
	ckpt, done, err := openCheckpoint(path, fuzzFingerprint, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ckpt.Close() }()
	if len(done) != 0 {
		t.Fatalf("implausible frame yielded %d buckets", len(done))
	}
}
