package core

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/unidetect/unidetect/internal/lrindex"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/stats"
	"github.com/unidetect/unidetect/internal/table"
)

// This file implements the serving fast path: the compact LR index in
// place of nested map lookups, column-granular work units in place of
// table shards, per-worker scratch buffers, and the per-column
// measurement cache. The reference path (predict.go) stays intact as
// the oracle; Predictor.Reference selects it, and internal/difftest
// holds the two paths to byte-identical findings.

// BuildIndex compiles a trained model into the compact serving index
// (internal/lrindex). The model's grids must already be finalized —
// trained, merged and loaded models are; Build finalizes stragglers,
// which is not safe against concurrent builders sharing the grids.
//
// alloc-budget: 6 one-time model compilation, once per predictor lifetime
func BuildIndex(m *Model) *lrindex.Index {
	srcs := make([]lrindex.Source, 0, len(m.Classes))
	for cls, cm := range m.Classes {
		srcs = append(srcs, lrindex.Source{
			Class:   int(cls),
			Dirs:    cm.Dirs,
			Buckets: cm.Buckets,
			Global:  cm.Global,
		})
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].Class < srcs[j].Class })
	return lrindex.Build(NumClasses, srcs, lrindex.Params{
		MinBucketSupport: m.Config.MinBucketSupport,
		NoFeaturize:      m.Config.NoFeaturize,
		PointEstimates:   m.Config.PointEstimates,
	})
}

// Warm forces the predictor's one-time lazy setup — the compiled LR
// index, the measurement cache and the metric children — so a serving
// process can ready a freshly loaded model off the request path and then
// swap it in atomically without the first request paying compilation.
func (p *Predictor) Warm() {
	p.lrIndex()
	p.measureCacheLazy()
	p.metrics()
}

// lrIndex compiles the model's bucket maps into the flat index once per
// predictor; concurrent DetectAll workers share the compiled result
// through the atomic pointer, so steady-state resolution is a single
// load with no Once.Do closure.
func (p *Predictor) lrIndex() *lrindex.Index {
	if ix := p.index.Load(); ix != nil {
		return ix
	}
	return p.lrIndexInit()
}

// lrIndexInit performs the one-time compilation behind lrIndex.
//
// alloc-budget: 1 sync.Once closure, entered only until the index pointer is published
func (p *Predictor) lrIndexInit() *lrindex.Index {
	p.indexOnce.Do(func() { p.index.Store(BuildIndex(p.Model)) })
	return p.index.Load()
}

// measureCacheLazy resolves the per-column measurement cache once.
// CacheSize 0 means the default budget; negative disables memoization
// (the resolved cache is nil, which is why readiness is a separate flag
// rather than a pointer test).
func (p *Predictor) measureCacheLazy() *measureCache {
	if p.cacheReady.Load() {
		return p.cache
	}
	return p.measureCacheInit()
}

// measureCacheInit performs the one-time resolution behind
// measureCacheLazy.
//
// alloc-budget: 1 sync.Once closure, entered only until the ready flag flips
func (p *Predictor) measureCacheInit() *measureCache {
	p.cacheOnce.Do(func() {
		size := p.CacheSize
		if size == 0 {
			size = defaultCacheSize
		}
		p.cache = newMeasureCache(size)
		p.cacheReady.Store(true)
	})
	return p.cache
}

// getScratch hands out a worker scratch, reusing a pooled one when the
// pool has any.
func (p *Predictor) getScratch() *Scratch {
	if v := p.scratches.Get(); v != nil {
		p.metrics().scratchReuse.Inc()
		return v.(*Scratch)
	}
	return NewScratch()
}

// scoreState accumulates one table's findings with the same
// cross-candidate dedup the reference path applies: per (class, row
// set), keep the most confident finding. The state lives inside a
// Scratch (or on the batch assembler's stack) and is reset per table,
// carrying its map buckets, key order and key buffer from table to
// table.
type scoreState struct {
	best   map[string]Finding
	order  []string
	keyBuf []byte
}

// reset prepares st for a new table.
//
// alloc-budget: 1 dedup map allocated on first use per scratch, then cleared and reused
func (st *scoreState) reset() {
	if st.best == nil {
		st.best = make(map[string]Finding, 16)
	}
	clear(st.best)
	st.order = st.order[:0]
}

// add scores valid measurements of det against the compact index and
// folds survivors into the dedup state. The filter, metrics and dedup
// preference replicate the reference Detect loop exactly.
//
// alloc-budget: 4 dedup keys intern on first sight or on a better finding; map probes convert without copying
func (p *Predictor) add(st *scoreState, t *table.Table, det Detector, ms []Measurement) {
	if len(ms) == 0 {
		return
	}
	pm := p.metrics()
	ix := p.lrIndex()
	cls := det.Class()
	q := det.Quantizer()
	alpha := p.Model.Config.Alpha
	for _, meas := range ms {
		if !meas.Valid {
			continue
		}
		b1, b2 := q.Bin(meas.Theta1), q.Bin(meas.Theta2)
		lr, support, oc := ix.LR(int(cls), meas.Key, b1, b2)
		pm.ixLookups.With(oc.String()).Inc()
		pm.lr.With(cls.String()).Observe(lr)
		if lr > alpha {
			continue
		}
		pm.findings.With(cls.String()).Inc()
		f := Finding{
			Class:   cls,
			Table:   t.Name,
			Column:  meas.Column,
			Rows:    meas.Rows,
			Values:  meas.Values,
			LR:      lr,
			Theta1:  meas.Theta1,
			Theta2:  meas.Theta2,
			Support: support,
			Detail:  meas.Detail,
		}
		st.keyBuf = appendDedupKey(st.keyBuf[:0], cls, meas.Rows)
		prev, seen := st.best[string(st.keyBuf)]
		switch {
		case !seen:
			key := string(st.keyBuf)
			st.order = append(st.order, key)
			st.best[key] = f
		case f.LR < prev.LR || (stats.SameFloat(f.LR, prev.LR) && f.Column < prev.Column):
			st.best[string(st.keyBuf)] = f
		}
	}
}

// findings returns the deduplicated findings in first-seen order — the
// same order the reference Detect emits.
//
// alloc-budget: 2 result slice is returned to the caller and cannot be pooled
func (st *scoreState) findings() []Finding {
	out := make([]Finding, 0, len(st.order))
	for _, k := range st.order {
		out = append(out, st.best[k])
	}
	return out
}

// measureColumn measures one column of a column-granular detector,
// consulting the memoization cache first. Measurement counts are
// reported here, once per column, whether served from cache or
// computed — keeping the per-class totals identical to the reference
// path's per-table counting.
func (p *Predictor) measureColumn(cmr ColumnMeasurer, t *table.Table, pos int, sc *Scratch) []Measurement {
	cls := cmr.Class()
	c := t.Columns[pos]
	cache := p.measureCacheLazy()
	if ms, ok := cache.get(cls, pos, c); ok {
		p.metrics().cacheOps.With("hit").Inc()
		p.Env.CountMeasurements(cls, len(ms))
		return ms
	}
	ms := cmr.MeasureColumn(t, pos, p.Env, sc)
	if cache != nil {
		cache.put(cls, pos, c, ms)
		p.metrics().cacheOps.With("miss").Inc()
	}
	p.Env.CountMeasurements(cls, len(ms))
	return ms
}

// measureTable measures one table-level (pair) detector, consulting the
// memoization cache first. Unlike ColumnMeasurer.MeasureColumn, Measure
// reports its own measurement count internally, so only the cache-hit
// replay counts here — keeping per-class totals identical to the
// reference path either way.
func (p *Predictor) measureTable(det Detector, t *table.Table) []Measurement {
	cls := det.Class()
	cache := p.measureCacheLazy()
	if ms, ok := cache.getTable(cls, t); ok {
		p.metrics().cacheOps.With("hit").Inc()
		p.Env.CountMeasurements(cls, len(ms))
		return ms
	}
	ms := det.Measure(t, p.Env)
	if cache != nil {
		cache.putTable(cls, t, ms)
		p.metrics().cacheOps.With("miss").Inc()
	}
	return ms
}

// detectFast scores one table through the compact index with a single
// scratch — the fast counterpart of detectReference, used by Detect and
// by the daemon's single-table endpoints.
func (p *Predictor) detectFast(t *table.Table, sc *Scratch) []Finding {
	pm := p.metrics()
	pm.tables.Inc()
	st := &sc.score
	st.reset()
	for _, det := range p.Detectors {
		detStart := p.Obs.Now()
		if cmr, ok := det.(ColumnMeasurer); ok {
			for pos := range t.Columns {
				p.add(st, t, det, p.measureColumn(cmr, t, pos, sc))
			}
		} else {
			p.add(st, t, det, p.measureTable(det, t))
		}
		pm.detSeconds.With(det.Class().String()).Observe((p.Obs.Now() - detStart).Seconds())
	}
	return st.findings()
}

// fastUnit is one schedulable measurement of the batched pipeline: a
// single column of a column-granular detector, or a whole table for
// pair detectors (col == -1).
type fastUnit struct {
	ti  int // table index
	di  int // detector index
	col int // column position, or -1 for a table-level unit
}

// admitTable runs the per-table chaos gate of the batch scan. It hits
// the same injection site, with the same per-site ordinal, as the
// reference detectShard, so a chaos schedule drops the same tables on
// both paths.
//
// alloc-budget: 4 chaos admission gate: recover shield and degradation logging, called only under fault injection
func (p *Predictor) admitTable(ctx context.Context, t *table.Table) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			p.logf("core: predict table %q panicked: %v; skipping", t.Name, r)
			p.metrics().degraded.Inc()
			ok = false
		}
	}()
	if err := p.Inject.Hit(ctx, "core/predict/table="+t.Name); err != nil {
		p.logf("core: predict table %q failed: %v; skipping", t.Name, err)
		p.metrics().degraded.Inc()
		return false
	}
	return true
}

// detectAllFast is the batched fast path: every admitted table of the
// request is decomposed into column-granular units, a bounded worker
// pool measures them with per-worker scratch (so one wide table spreads
// across the pool, and /v1/batch requests coalesced into one call batch
// columns across requests), and a sequential assembly pass scores the
// results through the compact index in the reference path's exact
// order. Findings are therefore byte-identical to the reference path
// regardless of worker interleaving.
//
// alloc-budget: 13 per-batch pipeline setup: unit layout, result buffers, worker pool and assembly output, amortized over every column of the call
func (p *Predictor) detectAllFast(ctx context.Context, tables []*table.Table) []Finding {
	sp := obs.StartSpan(ctx, "core/detect_all")
	sp.Tag("tables", len(tables))
	sp.Tag("path", "indexed")
	defer sp.End()
	pm := p.metrics()

	skip := make([]bool, len(tables))
	if p.Inject != nil {
		for i, t := range tables {
			skip[i] = !p.admitTable(ctx, t)
		}
	}

	// Units are laid out table-major, detectors in declared order,
	// columns in position order — the measurement order of the reference
	// path — so assembly is a single forward walk.
	var units []fastUnit
	for ti, t := range tables {
		if skip[ti] {
			continue
		}
		for di, det := range p.Detectors {
			if _, ok := det.(ColumnMeasurer); ok {
				for pos := range t.Columns {
					units = append(units, fastUnit{ti: ti, di: di, col: pos})
				}
			} else {
				units = append(units, fastUnit{ti: ti, di: di, col: -1})
			}
		}
	}

	workers := p.Model.Config.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > len(units) {
		workers = len(units)
	}
	results := make([][]Measurement, len(units))
	durs := make([]float64, len(units))
	poisoned := make([]atomic.Bool, len(tables))
	next := make(chan int)
	var wg sync.WaitGroup
	// The feeder joins the same WaitGroup as the workers, so the fast
	// path never returns with it live after a context cancellation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(next)
		for i := range units {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := NewScratch()
			first := true
			for ui := range next {
				if first {
					first = false
				} else {
					pm.scratchReuse.Inc()
				}
				u := units[ui]
				start := p.Obs.Now()
				results[ui] = p.measureUnit(tables[u.ti], u, sc, &poisoned[u.ti])
				durs[ui] = (p.Obs.Now() - start).Seconds()
			}
		}()
	}
	wg.Wait()

	// Sequential assembly: walk the unit layout per table, score through
	// the index, dedup exactly as the reference per-table loop does. One
	// score state serves every table of the batch, reset between them.
	var out []Finding
	var st scoreState
	ui := 0
	for ti, t := range tables {
		if skip[ti] {
			continue
		}
		pm.tables.Inc()
		bad := poisoned[ti].Load()
		if bad {
			pm.degraded.Inc()
		}
		st.reset()
		for _, det := range p.Detectors {
			var sec float64
			consume := func() {
				if !bad {
					p.add(&st, t, det, results[ui])
				}
				sec += durs[ui]
				ui++
			}
			if _, ok := det.(ColumnMeasurer); ok {
				for range t.Columns {
					consume()
				}
			} else {
				consume()
			}
			if !bad {
				pm.detSeconds.With(det.Class().String()).Observe(sec)
			}
		}
		if !bad {
			out = append(out, st.findings()...)
		}
	}
	SortFindings(out)
	return out
}

// measureUnit measures one unit, shielding the batch from detector
// panics when chaos injection is live (the batch analogue of
// detectShard's recover): the panicking table is poisoned and yields no
// findings instead of crashing the scan.
//
// alloc-budget: 2 panic shield closure and its log boxing, armed only under fault injection
func (p *Predictor) measureUnit(t *table.Table, u fastUnit, sc *Scratch, poison *atomic.Bool) (ms []Measurement) {
	if p.Inject != nil {
		defer func() {
			if r := recover(); r != nil {
				p.logf("core: predict table %q panicked: %v; skipping", t.Name, r)
				poison.Store(true)
				ms = nil
			}
		}()
	}
	det := p.Detectors[u.di]
	if u.col < 0 {
		return p.measureTable(det, t)
	}
	cmr, ok := det.(ColumnMeasurer)
	if !ok {
		// Unreachable by construction — column units are laid out only
		// for ColumnMeasurer detectors — but yielding no measurements
		// keeps the assembly walk aligned rather than crashing the batch.
		return nil
	}
	return p.measureColumn(cmr, t, u.col, sc)
}
