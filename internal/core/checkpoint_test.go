package core_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/mapreduce"
)

func smallCorpus(seed int64) *corpus.Corpus {
	spec := datagen.Spec{Name: "ckpt", Profile: datagen.ProfileWeb, NumTables: 250,
		AvgRows: 18, AvgCols: 4, Seed: seed}
	return corpus.New(spec.Name, datagen.Generate(spec).Tables)
}

func saveBytes(t *testing.T, m *core.Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSaveDeterministic is the precondition for resume-equals-restart:
// two saves of one model, and saves of two identically trained models,
// must be byte-identical.
func TestSaveDeterministic(t *testing.T) {
	bg := smallCorpus(3)
	cfg := core.DefaultConfig()
	dets := detectors.All(cfg, detectors.Options{})
	a, err := core.Train(context.Background(), cfg, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Train(context.Background(), cfg, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, a), saveBytes(t, a)) {
		t.Error("two saves of one model differ")
	}
	if !bytes.Equal(saveBytes(t, a), saveBytes(t, b)) {
		t.Error("saves of identically trained models differ")
	}
	// And the round trip preserves the bytes.
	m, err := core.LoadModel(bytes.NewReader(saveBytes(t, a)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, a), saveBytes(t, m)) {
		t.Error("save→load→save changed bytes")
	}
}

// TestResumeEqualsRestart is the acceptance check for the checkpoint
// protocol: kill a chaos-injected core.Train mid-reduce, resume it from the
// checkpoint, and require the serialized model to be byte-identical to
// an uninterrupted run.
func TestResumeEqualsRestart(t *testing.T) {
	bg := smallCorpus(5)
	cfg := core.DefaultConfig()
	cfg.Workers = 4
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()

	clean, err := core.Train(ctx, cfg, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	cleanBytes := saveBytes(t, clean)

	// First run: each reduce key fails with probability 0.5 (decided by
	// the seed), so some buckets commit to the checkpoint before the
	// first failing key aborts the fail-fast job — a mid-reduce kill.
	ckptPath := filepath.Join(t.TempDir(), "train.ckpt")
	inj := faultinject.New(11, faultinject.Rule{
		Site:  "mapreduce/reduce/*",
		P:     0.5,
		Fault: faultinject.Fault{Err: errors.New("chaos: reduce torn")},
	})
	_, err = core.TrainWith(ctx, cfg, core.TrainOptions{
		FT:             mapreduce.FT{Inject: inj, Seed: 11, Logf: t.Logf},
		CheckpointPath: ckptPath,
	}, bg, dets)
	if err == nil {
		t.Fatal("chaos run unexpectedly succeeded; kill not exercised")
	}
	st, err := os.Stat(ckptPath)
	if err != nil {
		t.Fatalf("no checkpoint left behind: %v", err)
	}
	if st.Size() <= 20 {
		t.Fatalf("checkpoint is empty (%d bytes); kill happened before any commit", st.Size())
	}

	// Resume without faults: must complete and reproduce the clean model
	// byte for byte.
	resumed, err := core.TrainWith(ctx, cfg, core.TrainOptions{
		FT:             mapreduce.FT{Logf: t.Logf},
		CheckpointPath: ckptPath,
	}, bg, dets)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !bytes.Equal(saveBytes(t, resumed), cleanBytes) {
		t.Error("resumed model differs from uninterrupted model")
	}
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Errorf("checkpoint not removed after successful run: %v", err)
	}
}

// TestCheckpointFingerprintMismatch proves a checkpoint from a different
// job (different corpus) is discarded, not merged into the wrong model.
func TestCheckpointFingerprintMismatch(t *testing.T) {
	cfg := core.DefaultConfig()
	dets := detectors.All(cfg, detectors.Options{})
	ctx := context.Background()
	ckptPath := filepath.Join(t.TempDir(), "train.ckpt")

	// Abort a run against corpus A, leaving a checkpoint behind.
	inj := faultinject.New(3, faultinject.Rule{Site: "mapreduce/reduce/*", P: 0.7,
		Fault: faultinject.Fault{Err: errors.New("x")}})
	_, err := core.TrainWith(ctx, cfg, core.TrainOptions{
		FT: mapreduce.FT{Inject: inj}, CheckpointPath: ckptPath,
	}, smallCorpus(5), dets)
	if err == nil {
		t.Fatal("chaos run succeeded")
	}

	// core.Train corpus B against A's checkpoint: it must restart cleanly and
	// match a checkpoint-free run of B.
	bgB := smallCorpus(6)
	gotLog := false
	m, err := core.TrainWith(ctx, cfg, core.TrainOptions{
		FT: mapreduce.FT{Logf: func(f string, a ...any) {
			gotLog = true
			t.Logf(f, a...)
		}},
		CheckpointPath: ckptPath,
	}, bgB, dets)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Train(ctx, cfg, bgB, dets)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, m), saveBytes(t, want)) {
		t.Error("stale checkpoint leaked into a different job's model")
	}
	if !gotLog {
		t.Error("fingerprint mismatch was not logged")
	}
}

// TestTrainWithLostShardsCompletes exercises graceful degradation: a
// permanently dead shard under SkipAndLog within budget yields a usable
// (slightly degraded) model rather than an error.
func TestTrainWithLostShardsCompletes(t *testing.T) {
	bg := smallCorpus(7)
	cfg := core.DefaultConfig()
	dets := detectors.All(cfg, detectors.Options{})
	inj := faultinject.New(1, faultinject.Rule{Site: "mapreduce/map/shard=10", P: 1,
		Fault: faultinject.Fault{Err: errors.New("dead shard")}})
	stats := &mapreduce.Stats{}
	m, err := core.TrainWith(context.Background(), cfg, core.TrainOptions{
		FT: mapreduce.FT{
			Retry:   mapreduce.RetryPolicy{MaxAttempts: 2},
			Policy:  mapreduce.SkipAndLog,
			MaxLost: 2,
			Inject:  inj,
			Stats:   stats,
			Logf:    t.Logf,
		},
	}, bg, dets)
	if err != nil {
		t.Fatalf("within-budget loss aborted training: %v", err)
	}
	if len(stats.LostShards) != 1 || stats.LostShards[0] != 10 {
		t.Errorf("LostShards = %v", stats.LostShards)
	}
	clean, err := core.Train(context.Background(), cfg, bg, dets)
	if err != nil {
		t.Fatal(err)
	}
	if m.Classes[core.ClassSpelling].Samples() >= clean.Classes[core.ClassSpelling].Samples() {
		t.Error("degraded model does not have fewer samples than clean model")
	}
}
