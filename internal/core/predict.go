package core

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/lrindex"
	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/stats"
	"github.com/unidetect/unidetect/internal/table"
)

// Predictor pairs a trained model with the detector instantiations it was
// trained with, and scores new tables at interactive speed (§2.2.3: online
// prediction is metric computation plus a lookup).
type Predictor struct {
	Model     *Model
	Detectors []Detector
	Env       *Env
	// Inject, when non-nil, enables chaos testing of the batch predict
	// path: DetectAll hits the site "core/predict/table=<name>" per
	// table, and degrades gracefully — an injected error or panic drops
	// that table's findings (logged via Logf) instead of aborting or
	// crashing the scan.
	Inject *faultinject.Injector
	// Logf receives degradation messages; nil discards them.
	Logf func(format string, args ...any)
	// Obs, when non-nil, receives prediction metrics: per-detector
	// latency and LR histograms, finding and degraded-table counters.
	Obs *obs.Registry
	// Reference forces the original map-backed scoring and
	// table-granular pipeline. It is the oracle of the differential
	// harness (internal/difftest): the fast path — compact LR index,
	// column-granular batching, scratch reuse, measurement memoization —
	// must produce byte-identical findings to this path.
	Reference bool
	// CacheSize overrides the per-column measurement cache budget
	// (total entries across shards): 0 means the default, negative
	// disables memoization. Ignored on the reference path.
	CacheSize int

	metricsOnce sync.Once
	// metricsReady flips once pm is built, so the hot-path metrics()
	// never enters Once.Do (whose closure would allocate per call).
	metricsReady atomic.Bool
	// pm is built from Obs on first use; all children are no-ops when
	// Obs is nil.
	pm predictMetrics

	indexOnce sync.Once
	// index is compiled from Model on first fast-path use and published
	// through the atomic pointer for allocation-free resolution.
	index     atomic.Pointer[lrindex.Index]
	cacheOnce sync.Once
	// cacheReady flips once cache is resolved (it may resolve to nil:
	// negative CacheSize disables memoization).
	cacheReady atomic.Bool
	// cache is resolved from CacheSize on first fast-path use.
	cache *measureCache
	// scratches pools per-call scratch buffers for single-table Detect.
	scratches sync.Pool
}

// NewPredictor builds a predictor. env may carry a token index built over
// the training corpus; featurization at predict time must use the same
// index the learner used.
func NewPredictor(m *Model, detectors []Detector, env *Env) *Predictor {
	return &Predictor{Model: m, Detectors: detectors, Env: env}
}

// Detect scores one table and returns its findings (unsorted; callers
// ranking across tables sort once at the end). Only measurements with a
// valid perturbation and LR <= Alpha become findings.
//
// One underlying error can surface through several candidates — a
// duplicated key value violates the candidate FD from the key to every
// other column — so findings of the same class flagging the same row set
// are deduplicated, keeping the most confident (smallest LR).
//
// By default Detect scores through the compact LR index with pooled
// scratch buffers (fastpath.go); Reference selects the original
// map-backed path below, which internal/difftest holds the fast path
// byte-identical to.
func (p *Predictor) Detect(t *table.Table) []Finding {
	if p.Reference {
		return p.detectReference(t)
	}
	sc := p.getScratch()
	defer p.scratches.Put(sc)
	return p.detectFast(t, sc)
}

// detectReference is the original measure → map-lookup → dedup loop,
// kept verbatim as the differential oracle.
func (p *Predictor) detectReference(t *table.Table) []Finding {
	pm := p.metrics()
	pm.tables.Inc()
	best := map[string]Finding{}
	var order []string
	for _, det := range p.Detectors {
		cls := det.Class()
		detStart := p.Obs.Now()
		for _, meas := range det.Measure(t, p.Env) {
			if !meas.Valid {
				continue
			}
			lr, support := p.Model.LR(cls, det, meas)
			pm.lr.With(cls.String()).Observe(lr)
			if lr > p.Model.Config.Alpha {
				continue
			}
			pm.findings.With(cls.String()).Inc()
			f := Finding{
				Class:   cls,
				Table:   t.Name,
				Column:  meas.Column,
				Rows:    meas.Rows,
				Values:  meas.Values,
				LR:      lr,
				Theta1:  meas.Theta1,
				Theta2:  meas.Theta2,
				Support: support,
				Detail:  meas.Detail,
			}
			key := dedupKey(cls, meas.Rows)
			prev, seen := best[key]
			if !seen {
				order = append(order, key)
			}
			if !seen || f.LR < prev.LR || (stats.SameFloat(f.LR, prev.LR) && f.Column < prev.Column) {
				best[key] = f
			}
		}
		pm.detSeconds.With(cls.String()).Observe((p.Obs.Now() - detStart).Seconds())
	}
	out := make([]Finding, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	return out
}

func dedupKey(cls Class, rows []int) string {
	return string(appendDedupKey(nil, cls, rows))
}

// appendDedupKey renders the (class, row set) dedup key into b, growing
// it as needed. The fast path hands it a per-scratch buffer and interns
// the result only when the key is first seen.
//
// alloc-budget: 2 appends extend the caller's reusable key buffer to steady state
func appendDedupKey(b []byte, cls Class, rows []int) []byte {
	b = append(b, byte(cls), ':')
	for _, r := range rows {
		b = appendInt(b, r)
		b = append(b, ',')
	}
	return b
}

// alloc-budget: 2 appends spill into the caller's reusable key buffer; tmp stays on the stack
func appendInt(b []byte, v int) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(b, tmp[i:]...)
}

// DetectAll scores many tables concurrently and returns all findings
// ranked by ascending LR. The default pipeline batches column-granular
// units across every table of the call through a bounded worker pool
// (fastpath.go); Reference selects the original table-sharded pipeline.
func (p *Predictor) DetectAll(ctx context.Context, tables []*table.Table) []Finding {
	if p.Reference {
		return p.detectAllReference(ctx, tables)
	}
	return p.detectAllFast(ctx, tables)
}

// detectAllReference is the original table-granular worker pool, kept
// as the differential oracle.
func (p *Predictor) detectAllReference(ctx context.Context, tables []*table.Table) []Finding {
	sp := obs.StartSpan(ctx, "core/detect_all")
	sp.Tag("tables", len(tables))
	defer sp.End()
	workers := p.Model.Config.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > len(tables) && len(tables) > 0 {
		workers = len(tables)
	}
	results := make([][]Finding, len(tables))
	next := make(chan int)
	var wg sync.WaitGroup
	// The feeder joins the same WaitGroup as the workers, so DetectAll
	// never returns with it still live after a context cancellation.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(next)
		for i := range tables {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = p.detectShard(ctx, tables[i])
			}
		}()
	}
	wg.Wait()
	var out []Finding
	for _, fs := range results {
		out = append(out, fs...)
	}
	SortFindings(out)
	return out
}

// detectShard scores one table of a batch scan. With chaos injection
// enabled it shields the scan from the table's failure: an injected
// error or panic logs and yields no findings for that table — graceful
// degradation, the batch analogue of the daemon's panic middleware.
func (p *Predictor) detectShard(ctx context.Context, t *table.Table) (fs []Finding) {
	if p.Inject == nil {
		return p.detectReference(t)
	}
	defer func() {
		if r := recover(); r != nil {
			p.logf("core: predict table %q panicked: %v; skipping", t.Name, r)
			p.metrics().degraded.Inc()
			fs = nil
		}
	}()
	if err := p.Inject.Hit(ctx, "core/predict/table="+t.Name); err != nil {
		p.logf("core: predict table %q failed: %v; skipping", t.Name, err)
		p.metrics().degraded.Inc()
		return nil
	}
	return p.detectReference(t)
}

// metrics resolves the predictor's metric children once; cheap and
// concurrency-safe thereafter (DetectAll shares one Predictor across
// workers). The ready flag keeps the steady state allocation-free:
// entering Once.Do would materialize its closure on every call.
func (p *Predictor) metrics() *predictMetrics {
	if p.metricsReady.Load() {
		return &p.pm
	}
	return p.metricsInit()
}

// metricsInit performs the one-time construction behind metrics.
//
// alloc-budget: 1 sync.Once closure, entered only until the ready flag flips
func (p *Predictor) metricsInit() *predictMetrics {
	p.metricsOnce.Do(func() {
		p.pm = newPredictMetrics(p.Obs)
		p.metricsReady.Store(true)
	})
	return &p.pm
}

func (p *Predictor) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}
