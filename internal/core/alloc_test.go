package core_test

import (
	"testing"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
)

// TestDetectAllocBudget is the runtime counterpart of the hotalloc
// analyzer: the static pass proves every allocation site reachable from
// detectFast is budgeted, and this test pins what those budgets cost on
// a warm predictor. Warm means the LR index is compiled, the metric
// children and measurement cache are resolved, the pooled scratch has
// grown to the table's shape, and every column of the table is a cache
// hit — the steady state of a daemon serving repeated column content.
func TestDetectAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun counts race-detector instrumentation")
	}
	m, bg := trainSmall(t)
	pred := core.NewPredictor(m, detectors.All(m.Config, detectors.Options{}), &core.Env{Index: bg.Index()})
	spec := datagen.Spec{Name: "alloc", Profile: datagen.ProfileWeb, NumTables: 1,
		AvgRows: 20, AvgCols: 4.6, ErrorRate: 0, Seed: 11}
	tbl := datagen.Generate(spec).Tables[0]

	for i := 0; i < 3; i++ {
		pred.Detect(tbl)
	}

	// The budget covers the per-call remainder: the returned findings
	// slice, re-interned dedup keys for any findings, and the occasional
	// scratch the pool dropped across a GC cycle. Measured steady state
	// is 1.0; the headroom absorbs pool churn, not regressions — lower
	// the budget when the fast path sheds allocations, never raise it.
	const budget = 4.0
	avg := testing.AllocsPerRun(200, func() { pred.Detect(tbl) })
	if avg > budget {
		t.Errorf("warm Detect allocates %.1f per run, budget %.0f", avg, budget)
	}
	t.Logf("warm Detect: %.1f allocs/run (budget %.0f)", avg, budget)
}
