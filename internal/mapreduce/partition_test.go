package mapreduce

import "testing"

func TestPartitionCoversContiguously(t *testing.T) {
	for n := 0; n <= 25; n++ {
		for k := 1; k <= 9; k++ {
			ranges := Partition(n, k)
			if n > 0 && k > n && len(ranges) != n {
				t.Fatalf("Partition(%d, %d): %d ranges, want clamp to %d", n, k, len(ranges), n)
			}
			lo := 0
			for i, r := range ranges {
				if r.Lo != lo {
					t.Fatalf("Partition(%d, %d): range %d starts at %d, want %d", n, k, i, r.Lo, lo)
				}
				if n > 0 && r.Len() == 0 {
					t.Fatalf("Partition(%d, %d): range %d is empty", n, k, i)
				}
				lo = r.Hi
			}
			if lo != n {
				t.Fatalf("Partition(%d, %d): ranges end at %d, want %d", n, k, lo, n)
			}
		}
	}
}

func TestPartitionBalanced(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{10, 3}, {7, 7}, {100, 6}, {5, 2}} {
		min, max := tc.n, 0
		for _, r := range Partition(tc.n, tc.k) {
			if l := r.Len(); l < min {
				min = l
			} else if l > max {
				max = l
			}
		}
		if max-min > 1 {
			t.Errorf("Partition(%d, %d): sizes span [%d, %d], want within 1", tc.n, tc.k, min, max)
		}
	}
}

func TestPartitionClamps(t *testing.T) {
	if got := Partition(4, 0); len(got) != 1 || got[0] != (Range{0, 4}) {
		t.Errorf("Partition(4, 0) = %v, want one full range", got)
	}
	if got := Partition(0, 3); len(got) != 1 || got[0].Len() != 0 {
		t.Errorf("Partition(0, 3) = %v, want one empty range", got)
	}
	if got := Partition(2, 5); len(got) != 2 {
		t.Errorf("Partition(2, 5) = %v, want 2 ranges", got)
	}
}
