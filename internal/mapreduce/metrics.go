package mapreduce

import (
	"errors"
	"fmt"

	"github.com/unidetect/unidetect/internal/obs"
)

// jobMetrics caches one phase's metric children so the per-unit paths
// never touch the registry. All fields are nil (no-op) when FT.Obs is
// nil, keeping the nil-is-off convention free on the hot path.
type jobMetrics struct {
	phase      *obs.Histogram
	retries    *obs.Counter
	panics     *obs.Counter
	lostShards *obs.Counter
	lostKeys   *obs.Counter
}

// metrics resolves the phase's metric children from FT.Obs. Each metric
// name literal appears only here — the metricname analyzer holds this
// function to one registration site per name.
func (ft FT) metrics(phase string) jobMetrics {
	r := ft.Obs
	lost := r.CounterVec("unidetect_mapreduce_lost_units_total",
		"Work units permanently dropped under SkipAndLog, by kind.", "kind")
	return jobMetrics{
		phase: r.HistogramVec("unidetect_mapreduce_phase_seconds",
			"Wall time of each mapreduce phase run.", "phase", nil).With(phase),
		retries: r.CounterVec("unidetect_mapreduce_retries_total",
			"Failed work-unit attempts that were retried, by phase.", "phase").With(phase),
		panics: r.CounterVec("unidetect_mapreduce_recovered_panics_total",
			"Panics recovered out of user map/reduce functions, by phase.", "phase").With(phase),
		lostShards: lost.With("shard"),
		lostKeys:   lost.With("key"),
	}
}

// panicError marks an error that started life as a recovered panic, so
// runUnit can count panics separately from ordinary failures.
type panicError struct {
	val any
}

func (e *panicError) Error() string {
	return fmt.Sprintf("mapreduce: recovered panic: %v", e.val)
}

func isPanicError(err error) bool {
	var pe *panicError
	return errors.As(err, &pe)
}
