package mapreduce

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestWordCount(t *testing.T) {
	inputs := []string{"a b a", "b c", "a"}
	got, err := Run(context.Background(), Config{Workers: 3}, inputs,
		func(line string, emit func(string, int)) error {
			for _, w := range strings.Fields(line) {
				emit(w, 1)
			}
			return nil
		},
		func(_ string, vs []int) (int, error) {
			total := 0
			for _, v := range vs {
				total += v
			}
			return total, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"a": 3, "b": 2, "c": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestEmptyInputs(t *testing.T) {
	got, err := Run(context.Background(), Config{}, nil,
		func(int, func(string, int)) error { return nil },
		func(string, []int) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %v, want empty", got)
	}
}

func TestMapErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(context.Background(), Config{Workers: 2}, []int{1, 2, 3, 4},
		func(i int, emit func(string, int)) error {
			if i == 3 {
				return boom
			}
			emit("k", i)
			return nil
		},
		func(string, []int) (int, error) { return 0, nil })
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestReduceErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(context.Background(), Config{Workers: 2}, []int{1, 2, 3},
		func(i int, emit func(int, int)) error { emit(i%2, i); return nil },
		func(k int, _ []int) (int, error) {
			if k == 1 {
				return 0, boom
			}
			return 0, nil
		})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestManyInputsFewWorkers(t *testing.T) {
	inputs := make([]int, 1000)
	for i := range inputs {
		inputs[i] = i
	}
	got, err := Run(context.Background(), Config{Workers: 4}, inputs,
		func(i int, emit func(string, int)) error { emit("sum", i); return nil },
		func(_ string, vs []int) (int, error) {
			s := 0
			for _, v := range vs {
				s += v
			}
			return s, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got["sum"] != 999*1000/2 {
		t.Errorf("sum = %d", got["sum"])
	}
}

func TestMapShuffleGroups(t *testing.T) {
	groups, err := MapShuffle(context.Background(), Config{Workers: 2},
		[]int{1, 2, 3, 4, 5},
		func(i int, emit func(int, int)) error { emit(i%2, i); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(groups[0]) != 2 || len(groups[1]) != 3 {
		t.Errorf("groups = %v", groups)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inputs := make([]int, 100000)
	_, err := MapShuffle(ctx, Config{Workers: 2}, inputs,
		func(i int, emit func(int, int)) error { emit(i, i); return nil })
	// Cancellation before start must not deadlock; partial results or an
	// empty group map are both acceptable, but the call must return.
	_ = err
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	if got := SortedKeys(m); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("SortedKeys = %v", got)
	}
}

func TestDefaultWorkers(t *testing.T) {
	// Workers <= 0 must still execute.
	got, err := Run(context.Background(), Config{Workers: -1}, []int{1, 2},
		func(i int, emit func(string, int)) error { emit("n", 1); return nil },
		func(_ string, vs []int) (int, error) { return len(vs), nil })
	if err != nil {
		t.Fatal(err)
	}
	if got["n"] != 2 {
		t.Errorf("n = %d", got["n"])
	}
}
