// Package mapreduce is a small in-process MapReduce-like execution engine.
//
// The paper implements Uni-Detect's offline learning component "as
// MapReduce-like jobs in order to crunch T" (§2.2.3, System Architecture).
// This package provides the same programming model — a Map phase that emits
// keyed values from each input shard, a shuffle that groups values by key,
// and a Reduce phase that folds each group — executed concurrently on a
// worker pool within one process.
package mapreduce

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/unidetect/unidetect/internal/obs"
)

// Mapper transforms one input into zero or more keyed values via emit.
// Mappers run concurrently and must not share mutable state.
type Mapper[I any, K comparable, V any] func(in I, emit func(K, V)) error

// Reducer folds all values for one key into a result.
type Reducer[K comparable, V any, R any] func(key K, values []V) (R, error)

// Config controls job execution.
type Config struct {
	// Workers is the map-phase parallelism; <= 0 means GOMAXPROCS.
	Workers int
	// FT is the fault-tolerance configuration: per-unit retry with
	// capped exponential backoff, a failure policy with a loss budget,
	// and deterministic fault injection. The zero value preserves the
	// historical semantics (one attempt, first error aborts).
	FT FT
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes a full map-shuffle-reduce job over the inputs and returns
// the per-key results. Under the default FT config map errors cancel the
// job and the first error wins; with retries configured a unit fails only
// after exhausting its attempts, and under SkipAndLog failed units are
// dropped (within the loss budget) instead of aborting.
func Run[I any, K comparable, V any, R any](
	ctx context.Context,
	cfg Config,
	inputs []I,
	m Mapper[I, K, V],
	r Reducer[K, V, R],
) (map[K]R, error) {
	groups, err := MapShuffle(ctx, cfg, inputs, m)
	if err != nil {
		return nil, err
	}
	return Reduce(ctx, cfg, groups, r)
}

// MapShuffle runs the map phase concurrently and groups emitted values by
// key.
func MapShuffle[I any, K comparable, V any](
	ctx context.Context,
	cfg Config,
	inputs []I,
	m Mapper[I, K, V],
) (map[K][]V, error) {
	jm := cfg.FT.metrics("map")
	sp := obs.StartSpan(ctx, "mapreduce/map")
	sp.Tag("shards", len(inputs))
	phaseStart := cfg.FT.Obs.Now()
	defer func() {
		jm.phase.Observe((cfg.FT.Obs.Now() - phaseStart).Seconds())
		sp.End()
	}()
	nw := cfg.workers()
	if nw > len(inputs) && len(inputs) > 0 {
		nw = len(inputs)
	}
	if len(inputs) == 0 {
		return map[K][]V{}, nil
	}

	type kv struct {
		k K
		v V
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Each worker accumulates locally, then the shards are merged: this
	// keeps the hot emit path lock-free.
	shards := make([][]kv, nw)
	errs := make([]error, nw)
	// The feeder joins the same WaitGroup as the workers: on the error
	// path it unblocks via ctx.Done (cancel happens before the worker
	// returns), so MapShuffle never returns with the feeder still live.
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(next)
		for i := range inputs {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	lt := &lossTracker{ft: cfg.FT, jm: jm}
	var retries atomic.Int64
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			emit := func(k K, v V) { shards[w] = append(shards[w], kv{k, v}) }
			for i := range next {
				site := "mapreduce/map/shard=" + strconv.Itoa(i)
				mark := len(shards[w])
				err := runUnit(ctx, cfg.FT, jm, site, &retries,
					func() error { return m(inputs[i], emit) },
					func() { shards[w] = shards[w][:mark] })
				if err == nil {
					continue
				}
				if ctx.Err() != nil {
					// The job is already being cancelled; whoever
					// cancelled recorded the cause.
					return
				}
				if lerr := lt.lose(i, false, fmt.Errorf("map input %d: %w", i, err)); lerr != nil {
					errs[w] = lerr
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	lt.flush()
	if cfg.FT.Stats != nil {
		cfg.FT.Stats.MapRetries += int(retries.Load())
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil && err != context.Canceled {
		return nil, err
	}
	groups := make(map[K][]V)
	for _, shard := range shards {
		for _, e := range shard {
			groups[e.k] = append(groups[e.k], e.v)
		}
	}
	return groups, nil
}

// Reduce folds each key group concurrently.
func Reduce[K comparable, V any, R any](
	ctx context.Context,
	cfg Config,
	groups map[K][]V,
	r Reducer[K, V, R],
) (map[K]R, error) {
	return ReduceObserved(ctx, cfg, groups, r, nil)
}

// ReduceObserved folds each key group concurrently, calling observe(k,
// result) — serially, under the output lock — as each bucket completes.
// This is the hook checkpointing builds on: the observer durably records
// finished buckets so a killed job can resume instead of restarting.
// Unlike reducer errors, an observe error is never retried or skipped;
// it aborts the job (it signals broken persistence, not chaos).
func ReduceObserved[K comparable, V any, R any](
	ctx context.Context,
	cfg Config,
	groups map[K][]V,
	r Reducer[K, V, R],
	observe func(K, R) error,
) (map[K]R, error) {
	jm := cfg.FT.metrics("reduce")
	sp := obs.StartSpan(ctx, "mapreduce/reduce")
	sp.Tag("keys", len(groups))
	phaseStart := cfg.FT.Obs.Now()
	defer func() {
		jm.phase.Observe((cfg.FT.Obs.Now() - phaseStart).Seconds())
		sp.End()
	}()
	keys := make([]K, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	nw := cfg.workers()
	if nw > len(keys) && len(keys) > 0 {
		nw = len(keys)
	}
	out := make(map[K]R, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	errs := make([]error, nw)
	next := make(chan K)
	var wg sync.WaitGroup
	// As in MapShuffle, the feeder is part of the join set.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(next)
		for _, k := range keys {
			select {
			case next <- k:
			case <-ctx.Done():
				return
			}
		}
	}()
	lt := &lossTracker{ft: cfg.FT, jm: jm}
	var retries atomic.Int64
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := range next {
				site := "mapreduce/reduce/key=" + fmt.Sprint(k)
				var res R
				err := runUnit(ctx, cfg.FT, jm, site, &retries,
					func() error {
						var rerr error
						res, rerr = r(k, groups[k])
						return rerr
					}, nil)
				if err == nil {
					mu.Lock()
					out[k] = res
					var oerr error
					if observe != nil {
						oerr = observe(k, res)
					}
					mu.Unlock()
					if oerr != nil {
						errs[w] = fmt.Errorf("reduce observer, key %v: %w", k, oerr)
						cancel()
						return
					}
					continue
				}
				if ctx.Err() != nil {
					return
				}
				if lerr := lt.lose(0, true, fmt.Errorf("reduce key %v: %w", k, err)); lerr != nil {
					errs[w] = lerr
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	lt.flush()
	if cfg.FT.Stats != nil {
		cfg.FT.Stats.ReduceRetries += int(retries.Load())
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil && err != context.Canceled {
		return nil, err
	}
	return out, nil
}

// runUnit executes one work unit under the retry policy: each attempt
// first passes the unit's injection site, then runs attempt (panics from
// either are recovered into retryable errors); on failure rollback (if
// any) undoes partial effects and runUnit sleeps the backoff on the FT
// clock before trying again, up to Retry.MaxAttempts total attempts.
func runUnit(ctx context.Context, ft FT, jm jobMetrics, site string, retries *atomic.Int64, attempt func() error, rollback func()) error {
	max := ft.Retry.attempts()
	for a := 1; ; a++ {
		err := recovered(func() error {
			if err := ft.Inject.Hit(ctx, site); err != nil {
				return err
			}
			return attempt()
		})
		if err == nil {
			return nil
		}
		if isPanicError(err) {
			jm.panics.Inc()
		}
		if rollback != nil {
			rollback()
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if a >= max {
			return fmt.Errorf("after %d attempt(s): %w", a, err)
		}
		retries.Add(1)
		jm.retries.Inc()
		d := ft.Retry.backoff(ft.Seed, site, a)
		ft.logf("mapreduce: %s attempt %d/%d failed: %v; retrying in %v", site, a, max, err, d)
		if d > 0 {
			if serr := ft.clock().Sleep(ctx, d); serr != nil {
				return serr
			}
		}
	}
}

// SortedKeys returns the keys of m in sorted order; a convenience for
// deterministic iteration over job results in tests and reports.
func SortedKeys[K interface {
	comparable
	~string
}, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
