// Package mapreduce is a small in-process MapReduce-like execution engine.
//
// The paper implements Uni-Detect's offline learning component "as
// MapReduce-like jobs in order to crunch T" (§2.2.3, System Architecture).
// This package provides the same programming model — a Map phase that emits
// keyed values from each input shard, a shuffle that groups values by key,
// and a Reduce phase that folds each group — executed concurrently on a
// worker pool within one process.
package mapreduce

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// Mapper transforms one input into zero or more keyed values via emit.
// Mappers run concurrently and must not share mutable state.
type Mapper[I any, K comparable, V any] func(in I, emit func(K, V)) error

// Reducer folds all values for one key into a result.
type Reducer[K comparable, V any, R any] func(key K, values []V) (R, error)

// Config controls job execution.
type Config struct {
	// Workers is the map-phase parallelism; <= 0 means GOMAXPROCS.
	Workers int
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes a full map-shuffle-reduce job over the inputs and returns
// the per-key results. Map errors cancel the job; the first error wins.
func Run[I any, K comparable, V any, R any](
	ctx context.Context,
	cfg Config,
	inputs []I,
	m Mapper[I, K, V],
	r Reducer[K, V, R],
) (map[K]R, error) {
	groups, err := MapShuffle(ctx, cfg, inputs, m)
	if err != nil {
		return nil, err
	}
	return Reduce(ctx, cfg, groups, r)
}

// MapShuffle runs the map phase concurrently and groups emitted values by
// key.
func MapShuffle[I any, K comparable, V any](
	ctx context.Context,
	cfg Config,
	inputs []I,
	m Mapper[I, K, V],
) (map[K][]V, error) {
	nw := cfg.workers()
	if nw > len(inputs) && len(inputs) > 0 {
		nw = len(inputs)
	}
	if len(inputs) == 0 {
		return map[K][]V{}, nil
	}

	type kv struct {
		k K
		v V
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Each worker accumulates locally, then the shards are merged: this
	// keeps the hot emit path lock-free.
	shards := make([][]kv, nw)
	errs := make([]error, nw)
	// The feeder joins the same WaitGroup as the workers: on the error
	// path it unblocks via ctx.Done (cancel happens before the worker
	// returns), so MapShuffle never returns with the feeder still live.
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(next)
		for i := range inputs {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			emit := func(k K, v V) { shards[w] = append(shards[w], kv{k, v}) }
			for i := range next {
				if err := m(inputs[i], emit); err != nil {
					errs[w] = fmt.Errorf("map input %d: %w", i, err)
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil && err != context.Canceled {
		return nil, err
	}
	groups := make(map[K][]V)
	for _, shard := range shards {
		for _, e := range shard {
			groups[e.k] = append(groups[e.k], e.v)
		}
	}
	return groups, nil
}

// Reduce folds each key group concurrently.
func Reduce[K comparable, V any, R any](
	ctx context.Context,
	cfg Config,
	groups map[K][]V,
	r Reducer[K, V, R],
) (map[K]R, error) {
	keys := make([]K, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	nw := cfg.workers()
	if nw > len(keys) && len(keys) > 0 {
		nw = len(keys)
	}
	out := make(map[K]R, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	errs := make([]error, nw)
	next := make(chan K)
	var wg sync.WaitGroup
	// As in MapShuffle, the feeder is part of the join set.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(next)
		for _, k := range keys {
			select {
			case next <- k:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := range next {
				res, err := r(k, groups[k])
				if err != nil {
					errs[w] = fmt.Errorf("reduce key %v: %w", k, err)
					cancel()
					return
				}
				mu.Lock()
				out[k] = res
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SortedKeys returns the keys of m in sorted order; a convenience for
// deterministic iteration over job results in tests and reports.
func SortedKeys[K interface {
	comparable
	~string
}, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
