package mapreduce

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/unidetect/unidetect/internal/faultinject"
)

// vclock is a virtual clock: sleeps record their duration and return
// immediately.
type vclock struct {
	mu     sync.Mutex
	sleeps []time.Duration // guarded by mu
}

func (c *vclock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sleeps = append(c.sleeps, d)
	return ctx.Err()
}

// identityJob maps n inputs to themselves keyed by parity and sums each
// group; the fixture every fault test perturbs.
func identityJob(t *testing.T, cfg Config, n int) (map[string]int, error) {
	t.Helper()
	inputs := make([]int, n)
	for i := range inputs {
		inputs[i] = i + 1
	}
	return Run(context.Background(), cfg, inputs,
		func(in int, emit func(string, int)) error {
			if in%2 == 0 {
				emit("even", in)
			} else {
				emit("odd", in)
			}
			return nil
		},
		func(key string, vs []int) (int, error) {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			return sum, nil
		})
}

func TestRetryRecoversTransientFaults(t *testing.T) {
	boom := errors.New("torn shard")
	inj := faultinject.New(1,
		faultinject.Rule{Site: "mapreduce/map/shard=1", Hits: []int{1, 2}, Fault: faultinject.Fault{Err: boom}})
	stats := &Stats{}
	cfg := Config{Workers: 4, FT: FT{
		Retry:  RetryPolicy{MaxAttempts: 3},
		Inject: inj,
		Stats:  stats,
	}}
	got, err := identityJob(t, cfg, 10)
	if err != nil {
		t.Fatalf("job failed despite retries: %v", err)
	}
	want, _ := identityJob(t, Config{Workers: 4}, 10)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("chaos result %v != clean result %v", got, want)
	}
	if stats.MapRetries != 2 {
		t.Errorf("MapRetries = %d, want 2", stats.MapRetries)
	}
	if n := len(inj.Transcript()); n != 2 {
		t.Errorf("transcript has %d events, want 2", n)
	}
}

func TestBackoffScheduleOnVirtualClock(t *testing.T) {
	inj := faultinject.New(1,
		faultinject.Rule{Site: "mapreduce/map/shard=0", Hits: []int{1, 2, 3, 4}, Fault: faultinject.Fault{Err: errors.New("x")}})
	clk := &vclock{}
	cfg := Config{Workers: 1, FT: FT{
		Retry:  RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond},
		Inject: inj,
		Clock:  clk,
	}}
	if _, err := identityJob(t, cfg, 1); err != nil {
		t.Fatalf("job failed: %v", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond}
	if fmt.Sprint(clk.sleeps) != fmt.Sprint(want) {
		t.Errorf("backoff schedule = %v, want %v (base doubling, capped)", clk.sleeps, want)
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: time.Second, Jitter: 0.5}
	var prev []time.Duration
	for run := 0; run < 2; run++ {
		var ds []time.Duration
		for a := 1; a <= 3; a++ {
			d := p.backoff(7, "mapreduce/map/shard=3", a)
			base := 10 * time.Millisecond << (a - 1)
			if d < base || d > base+base/2 {
				t.Errorf("attempt %d: backoff %v outside [%v, %v]", a, d, base, base+base/2)
			}
			ds = append(ds, d)
		}
		if run == 1 && fmt.Sprint(ds) != fmt.Sprint(prev) {
			t.Errorf("jitter not deterministic: %v vs %v", ds, prev)
		}
		prev = ds
	}
}

func TestFailFastAborts(t *testing.T) {
	inj := faultinject.New(1,
		faultinject.Rule{Site: "mapreduce/map/shard=2", P: 1, Fault: faultinject.Fault{Err: errors.New("dead shard")}})
	cfg := Config{Workers: 2, FT: FT{Inject: inj}}
	if _, err := identityJob(t, cfg, 8); err == nil {
		t.Fatal("FailFast job succeeded despite permanent fault")
	} else if !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("error does not carry injected cause: %v", err)
	}
}

func TestSkipAndLogWithinBudget(t *testing.T) {
	inj := faultinject.New(1,
		faultinject.Rule{Site: "mapreduce/map/shard=3", P: 1, Fault: faultinject.Fault{Err: errors.New("x")}},
		faultinject.Rule{Site: "mapreduce/map/shard=6", P: 1, Fault: faultinject.Fault{Err: errors.New("x")}})
	stats := &Stats{}
	var logs []string
	var mu sync.Mutex
	cfg := Config{Workers: 3, FT: FT{
		Policy:  SkipAndLog,
		MaxLost: 3,
		Inject:  inj,
		Stats:   stats,
		Logf: func(f string, a ...any) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(f, a...))
			mu.Unlock()
		},
	}}
	got, err := identityJob(t, cfg, 10)
	if err != nil {
		t.Fatalf("job aborted within budget: %v", err)
	}
	// Shards 3 and 6 (inputs 4 and 7) are lost: odd loses 7, even loses 4.
	if got["odd"] != 1+3+5+9 || got["even"] != 2+6+8+10 {
		t.Errorf("degraded result = %v", got)
	}
	if fmt.Sprint(stats.LostShards) != "[3 6]" || stats.Lost() != 2 {
		t.Errorf("LostShards = %v", stats.LostShards)
	}
	if len(logs) != 2 || !strings.Contains(logs[0], "skipping failed unit") {
		t.Errorf("logs = %q", logs)
	}
}

func TestSkipAndLogBudgetExhausted(t *testing.T) {
	inj := faultinject.New(1,
		faultinject.Rule{Site: "mapreduce/map/*", P: 1, Fault: faultinject.Fault{Err: errors.New("x")}})
	cfg := Config{Workers: 2, FT: FT{Policy: SkipAndLog, MaxLost: 3, Inject: inj}}
	_, err := identityJob(t, cfg, 10)
	if err == nil || !strings.Contains(err.Error(), "loss budget") {
		t.Fatalf("err = %v, want loss-budget abort", err)
	}
}

func TestPanicIsRecoveredAndRetried(t *testing.T) {
	inj := faultinject.New(1,
		faultinject.Rule{Site: "mapreduce/map/shard=0", Hits: []int{1}, Fault: faultinject.Fault{Panic: "chaos"}})
	cfg := Config{Workers: 2, FT: FT{Retry: RetryPolicy{MaxAttempts: 2}, Inject: inj}}
	got, err := identityJob(t, cfg, 4)
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if got["odd"] != 1+3 || got["even"] != 2+4 {
		t.Errorf("result = %v", got)
	}
}

// TestEmitRollback proves a failed attempt's partial emissions are
// discarded: a mapper that emits then fails must not double-count after
// its retry succeeds.
func TestEmitRollback(t *testing.T) {
	var mu sync.Mutex
	attempts := map[int]int{}
	inputs := []int{10, 20, 30}
	got, err := Run(context.Background(),
		Config{Workers: 2, FT: FT{Retry: RetryPolicy{MaxAttempts: 3}}},
		inputs,
		func(in int, emit func(string, int)) error {
			emit("sum", in) // emitted before the failure: must roll back
			mu.Lock()
			attempts[in]++
			first := attempts[in] == 1
			mu.Unlock()
			if first {
				return errors.New("flaky after emit")
			}
			return nil
		},
		func(key string, vs []int) (int, error) {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			return sum, nil
		})
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if got["sum"] != 60 {
		t.Errorf("sum = %d, want 60 (partial emissions double-counted?)", got["sum"])
	}
}

func TestReduceObservedCheckpointsEachBucket(t *testing.T) {
	groups := map[string][]int{"a": {1, 2}, "b": {3}, "c": {4, 5, 6}}
	var mu sync.Mutex
	seen := map[string]int{}
	out, err := ReduceObserved(context.Background(), Config{Workers: 2}, groups,
		func(k string, vs []int) (int, error) { return len(vs), nil },
		func(k string, r int) error {
			mu.Lock()
			seen[k] = r
			mu.Unlock()
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(seen) != fmt.Sprint(out) {
		t.Errorf("observed %v != reduced %v", seen, out)
	}
}

func TestReduceObserveErrorAborts(t *testing.T) {
	groups := map[string][]int{"a": {1}, "b": {2}}
	_, err := ReduceObserved(context.Background(), Config{Workers: 1}, groups,
		func(k string, vs []int) (int, error) { return 0, nil },
		func(k string, r int) error { return errors.New("disk full") })
	if err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("err = %v, want observer abort", err)
	}
}

func TestReduceLossWithinBudget(t *testing.T) {
	inj := faultinject.New(1,
		faultinject.Rule{Site: "mapreduce/reduce/key=b", P: 1, Fault: faultinject.Fault{Err: errors.New("x")}})
	stats := &Stats{}
	groups := map[string][]int{"a": {1}, "b": {2}, "c": {3}}
	out, err := Reduce(context.Background(),
		Config{Workers: 2, FT: FT{Policy: SkipAndLog, MaxLost: 1, Inject: inj, Stats: stats}},
		groups,
		func(k string, vs []int) (int, error) { return vs[0], nil })
	if err != nil {
		t.Fatalf("job aborted within budget: %v", err)
	}
	if _, ok := out["b"]; ok || len(out) != 2 {
		t.Errorf("out = %v, want b dropped", out)
	}
	if stats.LostKeys != 1 {
		t.Errorf("LostKeys = %d", stats.LostKeys)
	}
}
