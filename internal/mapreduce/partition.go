package mapreduce

// Range is one contiguous partition of an input slice: the half-open
// index interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of inputs in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Partition splits n inputs into k contiguous, balanced ranges — the
// input-partitioning step of a multi-job training pass, where each range
// becomes one independently trained corpus shard. Ranges cover [0, n)
// exactly once, in order, and their sizes differ by at most one (the
// first n%k ranges carry the extra input). k below 1 is clamped to 1;
// when n is positive, k is clamped to n so no range is empty.
func Partition(n, k int) []Range {
	if k < 1 || n <= 0 {
		k = 1
	}
	if n > 0 && k > n {
		k = n
	}
	out := make([]Range, k)
	base, extra := 0, 0
	if k > 0 {
		base, extra = n/k, n%k
	}
	lo := 0
	for i := range out {
		size := base
		if i < extra {
			size++
		}
		out[i] = Range{Lo: lo, Hi: lo + size}
		lo += size
	}
	return out
}
