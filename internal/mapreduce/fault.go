package mapreduce

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/unidetect/unidetect/internal/faultinject"
	"github.com/unidetect/unidetect/internal/obs"
)

// FailurePolicy decides what a permanently failed work unit (a map shard
// or a reduce key that exhausted its retries) does to the job.
type FailurePolicy uint8

const (
	// FailFast aborts the job on the first permanent failure (the
	// pre-fault-tolerance behaviour, and the zero value).
	FailFast FailurePolicy = iota
	// SkipAndLog drops the failed unit, logs it, and continues — up to
	// FT.MaxLost units; one more aborts the job. The resulting model is
	// degraded (it misses the lost shards' evidence) but usable.
	SkipAndLog
)

// RetryPolicy is capped exponential backoff with deterministic jitter.
// The zero value means a single attempt, no retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per work unit (first
	// attempt included); values below 1 mean 1.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; attempt k
	// waits BaseDelay·2^(k-2), capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means no cap.
	MaxDelay time.Duration
	// Jitter adds up to Jitter·delay of extra wait, drawn
	// deterministically from (FT.Seed, site, attempt) — reproducible and
	// independent of goroutine scheduling, so `deterministic` analyzer
	// facts on the Train path still hold.
	Jitter float64
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the wait before attempt+1, given that attempt (1-based)
// just failed.
func (p RetryPolicy) backoff(seed int64, site string, attempt int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		return 0
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		d += time.Duration(float64(d) * p.Jitter * faultinject.Unit(seed, site, attempt))
	}
	return d
}

// Stats reports what fault tolerance did during a job. Callers hang a
// *Stats off FT; the job fills it before returning (not concurrently
// safe to read mid-job).
type Stats struct {
	// MapRetries and ReduceRetries count failed attempts that were
	// retried.
	MapRetries    int
	ReduceRetries int
	// LostShards are the input indices permanently dropped by
	// SkipAndLog, sorted.
	LostShards []int
	// LostKeys counts reduce keys permanently dropped by SkipAndLog.
	LostKeys int
}

// Lost returns the total number of dropped work units.
func (s *Stats) Lost() int {
	if s == nil {
		return 0
	}
	return len(s.LostShards) + s.LostKeys
}

// FT bundles the fault-tolerance configuration of a job. The zero value
// is the pre-fault-tolerance behaviour: one attempt, fail fast, no
// injection.
type FT struct {
	Retry  RetryPolicy
	Policy FailurePolicy
	// MaxLost is the SkipAndLog loss budget: the job tolerates at most
	// MaxLost dropped work units and aborts on the next. <= 0 means no
	// budget (every loss is tolerated).
	MaxLost int
	// Seed drives retry jitter (and should match the injector's seed in
	// chaos tests so one seed reproduces the whole run).
	Seed int64
	// Inject is the fault-injection layer; nil injects nothing.
	Inject *faultinject.Injector
	// Clock is slept on between retries; nil means the wall clock.
	Clock faultinject.Clock
	// Logf receives skip-and-log and retry messages; nil discards them.
	Logf func(format string, args ...any)
	// Stats, when non-nil, is filled with what happened.
	Stats *Stats
	// Obs, when non-nil, receives job metrics: per-phase duration
	// histograms and retry/panic/lost-unit counters. Durations are read
	// from the registry's clock, so a virtual clock keeps instrumented
	// runs deterministic.
	Obs *obs.Registry
}

func (ft FT) clock() faultinject.Clock {
	if ft.Clock != nil {
		return ft.Clock
	}
	return faultinject.Real
}

func (ft FT) logf(format string, args ...any) {
	if ft.Logf != nil {
		ft.Logf(format, args...)
	}
}

// lossTracker enforces the SkipAndLog budget across workers.
type lossTracker struct {
	ft FT
	jm jobMetrics

	mu     sync.Mutex
	shards []int // guarded by mu
	keys   int   // guarded by mu
}

// lose records a permanently failed unit. It returns nil if the loss is
// within policy and budget, else the error that must abort the job.
func (lt *lossTracker) lose(shard int, isKey bool, cause error) error {
	if lt.ft.Policy != SkipAndLog {
		return cause
	}
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lost := len(lt.shards) + lt.keys
	if lt.ft.MaxLost > 0 && lost >= lt.ft.MaxLost {
		return fmt.Errorf("mapreduce: loss budget %d exhausted: %w", lt.ft.MaxLost, cause)
	}
	if isKey {
		lt.keys++
		lt.jm.lostKeys.Inc()
	} else {
		lt.shards = append(lt.shards, shard)
		lt.jm.lostShards.Inc()
	}
	lt.ft.logf("mapreduce: skipping failed unit (%d lost so far): %v", lost+1, cause)
	return nil
}

// flush publishes loss counts into ft.Stats (additively, so the map and
// reduce phases of one job share a Stats).
func (lt *lossTracker) flush() {
	if lt.ft.Stats == nil {
		return
	}
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.ft.Stats.LostShards = append(lt.ft.Stats.LostShards, lt.shards...)
	sort.Ints(lt.ft.Stats.LostShards)
	lt.ft.Stats.LostKeys += lt.keys
}

// recovered runs f, converting a panic into an error so chaos-injected
// (or genuine) panics in user map/reduce functions become retryable
// failures instead of killing the process. Panics come back as
// *panicError so runUnit can count them.
func recovered(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicError{val: r}
		}
	}()
	return f()
}
