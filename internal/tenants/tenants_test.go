package tenants

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func sampleTenants() []Tenant {
	return []Tenant{
		{ID: "acme", KeyHash: HashKey("acme-key"), RatePerSec: 10, Burst: 5, MaxBody: 1 << 20},
		{ID: "globex", KeyHash: HashKey("globex-key"), ModelPath: "globex.model", ModelVersion: 3},
		{ID: "initech", KeyHash: HashKey("initech-key"), RatePerSec: 0.5, Burst: 2},
	}
}

// fakeClock is a hand-advanced quota clock.
type fakeClock struct{ at time.Duration }

func (c *fakeClock) now() time.Duration { return c.at }

func TestRoundTrip(t *testing.T) {
	want := sampleTenants()
	path := filepath.Join(t.TempDir(), "tenants.reg")
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Tenants()
	if len(got) != len(want) {
		t.Fatalf("got %d tenants, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tenant %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestAuthenticate(t *testing.T) {
	r, err := New(sampleTenants(), nil)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := r.Authenticate("acme-key")
	if !ok || g.Tenant.ID != "acme" {
		t.Fatalf("acme key resolved to %+v ok=%v", g.Tenant, ok)
	}
	if _, ok := r.Authenticate("acme-key-but-wrong"); ok {
		t.Fatal("wrong key authenticated")
	}
	if _, ok := r.Authenticate(""); ok {
		t.Fatal("empty key authenticated")
	}
	if _, ok := r.Lookup("globex"); !ok {
		t.Fatal("lookup by id failed")
	}
}

func TestQuotaBucket(t *testing.T) {
	clk := &fakeClock{}
	r, err := New(sampleTenants(), clk.now)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := r.Authenticate("acme-key") // burst 5, 10/s
	for i := 0; i < 5; i++ {
		if ok, _ := g.Allow(); !ok {
			t.Fatalf("request %d inside burst rejected", i)
		}
	}
	ok, retry := g.Allow()
	if ok {
		t.Fatal("6th back-to-back request allowed past burst")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s] at 10 tokens/s", retry)
	}
	// One refill interval later the bucket has exactly one token.
	clk.at += 100 * time.Millisecond
	if ok, _ := g.Allow(); !ok {
		t.Fatal("request after refill rejected")
	}
	if ok, _ := g.Allow(); ok {
		t.Fatal("second request after a single-token refill allowed")
	}

	// Unthrottled tenant always passes.
	g2, _ := r.Authenticate("globex-key")
	for i := 0; i < 100; i++ {
		if ok, _ := g2.Allow(); !ok {
			t.Fatal("unthrottled tenant rejected")
		}
	}
}

func TestReloadPreservesBucketLevels(t *testing.T) {
	clk := &fakeClock{}
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.reg")
	ts := sampleTenants()
	if err := WriteFile(path, ts); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := r.Authenticate("acme-key")
	for i := 0; i < 5; i++ {
		g.Allow() // drain acme's burst
	}

	// Rewrite the registry with acme's quota unchanged but globex
	// gaining one: acme's bucket must stay drained across the reload.
	ts[1].RatePerSec, ts[1].Burst = 1, 1
	if err := WriteFile(path, ts); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload(path); err != nil {
		t.Fatal(err)
	}
	g, _ = r.Authenticate("acme-key")
	if ok, _ := g.Allow(); ok {
		t.Fatal("reload refilled an unchanged tenant's bucket")
	}
	g2, _ := r.Authenticate("globex-key")
	if ok, _ := g2.Allow(); !ok {
		t.Fatal("newly throttled tenant's bucket did not start full")
	}

	// Changing the quota shape resets the bucket to full.
	ts[0].Burst = 3
	if err := WriteFile(path, ts); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload(path); err != nil {
		t.Fatal(err)
	}
	g, _ = r.Authenticate("acme-key")
	if ok, _ := g.Allow(); !ok {
		t.Fatal("resized bucket did not reset to full")
	}
}

func TestReloadKeepsOldSnapshotOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tenants.reg")
	if err := WriteFile(path, sampleTenants()); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.Reload(path); err == nil {
		t.Fatal("reload of a corrupt file did not error")
	}
	if _, ok := r.Authenticate("acme-key"); !ok {
		t.Fatal("failed reload clobbered the live snapshot")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	var good bytes.Buffer
	if err := writeTenants(&good, sampleTenants()); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     []byte("UNIDETECT-NOPE\x01xxxx"),
		"magic only":    []byte("UNIDETECT-TNTS\x01"),
		"torn tail":     good.Bytes()[:good.Len()-3],
		"torn header":   good.Bytes()[:len(magic)+2],
		"trailing junk": append(append([]byte{}, good.Bytes()...), 'x'),
		"flipped byte": func() []byte {
			b := append([]byte{}, good.Bytes()...)
			b[len(b)/2] ^= 0x41
			return b
		}(),
	}
	for name, data := range cases {
		if ts, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: read %d tenants from corrupt registry", name, len(ts))
		}
	}
	if _, err := Read(bytes.NewReader(good.Bytes())); err != nil {
		t.Fatalf("pristine registry failed to read: %v", err)
	}
}

func TestValidationRejectsBadTenantSets(t *testing.T) {
	cases := map[string][]Tenant{
		"missing id":   {{KeyHash: HashKey("k")}},
		"missing hash": {{ID: "a"}},
		"dup id": {
			{ID: "a", KeyHash: HashKey("k1")},
			{ID: "a", KeyHash: HashKey("k2")},
		},
		"dup key": {
			{ID: "a", KeyHash: HashKey("k")},
			{ID: "b", KeyHash: HashKey("k")},
		},
	}
	for name, ts := range cases {
		if _, err := New(ts, nil); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// FuzzTenantRegistryLoad pins the strict-load contract: arbitrary bytes
// must either parse into a full tenant list or error — never panic,
// never over-allocate, never partially apply.
func FuzzTenantRegistryLoad(f *testing.F) {
	var good bytes.Buffer
	if err := writeTenants(&good, sampleTenants()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte("UNIDETECT-TNTS\x01"))
	f.Add(good.Bytes()[:good.Len()/2])
	f.Add(append(append([]byte{}, good.Bytes()...), 0))
	huge := append([]byte{}, good.Bytes()[:len(magic)]...)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF) // implausible frame length
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must re-serialize and re-parse to the same
		// list: no half-applied state can round-trip.
		var buf bytes.Buffer
		if err := writeTenants(&buf, ts); err != nil {
			t.Fatalf("re-encode of parsed registry failed: %v", err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of re-encoded registry failed: %v", err)
		}
		if len(back) != len(ts) {
			t.Fatalf("round trip changed tenant count %d -> %d", len(ts), len(back))
		}
	})
}

func TestSaveAndSaveFileRoundTrip(t *testing.T) {
	clk := &fakeClock{}
	r, err := New(sampleTenants(), clk.now)
	if err != nil {
		t.Fatal(err)
	}
	// Save to a writer and read the bytes back.
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ts, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != len(sampleTenants()) || ts[1].ModelPath != "globex.model" {
		t.Fatalf("Save/Read round trip lost records: %+v", ts)
	}
	// SaveFile then Open: the durable round trip.
	path := filepath.Join(t.TempDir(), "tenants.reg")
	if err := r.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(path, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Tenants(); len(got) != 3 || got[0].ID != "acme" {
		t.Fatalf("SaveFile/Open round trip: %+v", got)
	}
}

func TestLookup(t *testing.T) {
	r, err := New(sampleTenants(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := r.Lookup("globex"); !ok || got.ModelVersion != 3 {
		t.Fatalf("Lookup(globex) = %+v, %v", got, ok)
	}
	if _, ok := r.Lookup("nobody"); ok {
		t.Fatal("Lookup invented a tenant")
	}
}

func TestOpenAndReloadMissingFile(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "absent.reg")
	if _, err := Open(missing, nil); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
	r, err := New(sampleTenants(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Reload(missing); err == nil {
		t.Fatal("Reload of a missing file succeeded")
	}
	if got := r.Tenants(); len(got) != 3 {
		t.Fatalf("failed Reload disturbed the snapshot: %+v", got)
	}
}

func TestWriteFileErrorPaths(t *testing.T) {
	dir := t.TempDir()
	// Create fails: the parent directory does not exist.
	if err := WriteFile(filepath.Join(dir, "no", "such", "dir.reg"), sampleTenants()); err == nil {
		t.Fatal("WriteFile into a missing directory succeeded")
	}
	// No temp file may survive a failed write.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("failed WriteFile left debris: %v", ents)
	}
}

// failWriter errors after n bytes, exercising the mid-stream write
// error branches of writeTenants/writeFrame.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, os.ErrClosed
	}
	if len(p) > w.n {
		p = p[:w.n]
	}
	w.n -= len(p)
	return len(p), os.ErrClosed
}

func TestWriteTenantsPropagatesWriterErrors(t *testing.T) {
	r, err := New(sampleTenants(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, after := range []int{0, len(magic), len(magic) + 3, len(magic) + 20} {
		if err := r.Save(&failWriter{n: after}); err == nil {
			t.Fatalf("Save over a writer failing after %d bytes succeeded", after)
		}
	}
}

func TestQuotaZeroRateNeverRefills(t *testing.T) {
	clk := &fakeClock{}
	r, err := New([]Tenant{{ID: "frozen", KeyHash: HashKey("k"), RatePerSec: 0, Burst: 1}}, clk.now)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := r.Authenticate("k")
	if !ok {
		t.Fatal("authenticate failed")
	}
	if ok, _ := g.Allow(); !ok {
		t.Fatal("burst token refused")
	}
	clk.at += time.Hour
	ok, retry := g.Allow()
	if ok {
		t.Fatal("zero-rate bucket refilled")
	}
	if retry < time.Hour {
		t.Fatalf("zero-rate retryAfter = %v, want the never-refills sentinel", retry)
	}
}
