// Package tenants is the daemon's on-disk tenant registry: tenant id →
// API-key hash, model assignment, config overrides and quotas. The
// registry file is framed like the training checkpoint (magic + framed
// gob records, single-Write frames) but loads STRICTLY: a torn or
// corrupt file is a hard error and never partially applies — auth state
// must be all-or-nothing. A loaded registry is held behind an
// atomic.Pointer snapshot, so Reload hot-swaps the tenant set under
// live traffic the same way the daemon hot-swaps models, preserving the
// token-bucket fill levels of tenants whose quota didn't change.
package tenants

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/unidetect/unidetect/internal/stats"
)

// Magic heads a serialized registry; the trailing byte versions the
// wire layout.
var magic = []byte("UNIDETECT-TNTS\x01")

// maxFrame bounds one tenant record's frame; a registry record is tiny,
// so anything near the bound is corruption.
const maxFrame = 1 << 20

// Tenant is one tenant's durable record.
type Tenant struct {
	// ID names the tenant in metrics, job ownership and logs.
	ID string
	// KeyHash is the hex SHA-256 of the tenant's API key (HashKey).
	// The plaintext key never touches disk.
	KeyHash string
	// ModelPath optionally pins the tenant to a model file; empty means
	// the daemon's shared model.
	ModelPath string
	// ModelVersion is bumped when the tenant's model assignment
	// changes; surfaced in job records for audit.
	ModelVersion int
	// MaxBody overrides the daemon's request body cap when > 0.
	MaxBody int64
	// RatePerSec refills the tenant's token bucket; with Burst <= 0 the
	// tenant is unthrottled.
	RatePerSec float64
	// Burst is the bucket capacity — the number of requests the tenant
	// may issue back-to-back before refill pacing kicks in.
	Burst int
}

// HashKey returns the registry's hash of an API key.
func HashKey(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

// bucket is one tenant's token bucket. Time is the registry clock's
// monotonic duration, so tests drive quotas deterministically.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Duration
}

// take attempts to spend one token, refilling first. On refusal it
// reports how long until one token will be available.
func (b *bucket) take(now time.Duration, rate float64, burst int) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now > b.last {
		b.tokens += rate * (now - b.last).Seconds()
		if max := float64(burst); b.tokens > max {
			b.tokens = max
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if rate <= 0 {
		return false, time.Hour
	}
	need := 1 - b.tokens
	return false, time.Duration(need / rate * float64(time.Second))
}

// entry pairs a tenant with its live bucket. Buckets survive Reload for
// tenants whose quota shape didn't change, so a registry edit can't be
// used to wash a tenant's spent quota.
type entry struct {
	t Tenant
	b *bucket
}

type snapshot struct {
	list  []Tenant
	byKey map[string]*entry
	byID  map[string]*entry
}

// Registry is the live tenant set. Safe for concurrent use; reads are
// lock-free off the snapshot pointer.
type Registry struct {
	snap atomic.Pointer[snapshot]
	mu   sync.Mutex // serializes Reload/Save against each other
	now  func() time.Duration
}

// New builds an in-memory registry over the given tenants. now is the
// quota clock; nil uses the wall clock.
func New(ts []Tenant, now func() time.Duration) (*Registry, error) {
	r := &Registry{now: now}
	if r.now == nil {
		start := time.Now()
		r.now = func() time.Duration { return time.Since(start) }
	}
	snap, err := buildSnapshot(ts, nil)
	if err != nil {
		return nil, err
	}
	r.snap.Store(snap)
	return r, nil
}

func buildSnapshot(ts []Tenant, prev *snapshot) (*snapshot, error) {
	snap := &snapshot{
		byKey: make(map[string]*entry, len(ts)),
		byID:  make(map[string]*entry, len(ts)),
	}
	for _, t := range ts {
		if t.ID == "" || t.KeyHash == "" {
			return nil, fmt.Errorf("tenants: tenant record missing id or key hash")
		}
		if _, dup := snap.byID[t.ID]; dup {
			return nil, fmt.Errorf("tenants: duplicate tenant id %q", t.ID)
		}
		if _, dup := snap.byKey[t.KeyHash]; dup {
			return nil, fmt.Errorf("tenants: duplicate key hash for tenant %q", t.ID)
		}
		e := &entry{t: t}
		if t.Burst > 0 {
			// Carry the old bucket across reloads when the quota shape
			// is unchanged; otherwise start full.
			if prev != nil {
				if old, ok := prev.byID[t.ID]; ok && old.b != nil &&
					stats.SameFloat(old.t.RatePerSec, t.RatePerSec) && old.t.Burst == t.Burst {
					e.b = old.b
				}
			}
			if e.b == nil {
				e.b = &bucket{tokens: float64(t.Burst)}
			}
		}
		snap.byID[t.ID] = e
		snap.byKey[t.KeyHash] = e
		snap.list = append(snap.list, t)
	}
	return snap, nil
}

// Grant is an authenticated tenant plus its quota hook.
type Grant struct {
	Tenant Tenant
	e      *entry
	r      *Registry
}

// Allow spends one quota token. ok=false means the tenant is over
// quota; retryAfter says how long until a token is available.
func (g Grant) Allow() (ok bool, retryAfter time.Duration) {
	if g.e == nil || g.e.b == nil {
		return true, 0
	}
	return g.e.b.take(g.r.now(), g.Tenant.RatePerSec, g.Tenant.Burst)
}

// Authenticate resolves an API key to its tenant grant.
func (r *Registry) Authenticate(key string) (Grant, bool) {
	e, ok := r.snap.Load().byKey[HashKey(key)]
	if !ok {
		return Grant{}, false
	}
	return Grant{Tenant: e.t, e: e, r: r}, true
}

// Lookup resolves a tenant id.
func (r *Registry) Lookup(id string) (Tenant, bool) {
	e, ok := r.snap.Load().byID[id]
	if !ok {
		return Tenant{}, false
	}
	return e.t, true
}

// Tenants returns the current tenant list in file order.
func (r *Registry) Tenants() []Tenant {
	return append([]Tenant(nil), r.snap.Load().list...)
}

// Save writes the registry to w: magic, a framed header with the
// record count, then one frame per tenant. Each frame is assembled in
// memory and written with a single Write.
func (r *Registry) Save(w io.Writer) error {
	return writeTenants(w, r.snap.Load().list)
}

// SaveFile persists the registry to path via write-temp-then-rename, so
// a crash mid-write leaves the previous file intact.
func (r *Registry) SaveFile(path string) error {
	return WriteFile(path, r.snap.Load().list)
}

// WriteFile persists a tenant list to path atomically. Provisioning
// tools use this to author a registry without constructing a Registry.
func WriteFile(path string, ts []Tenant) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("tenants: create registry: %w", err)
	}
	err = writeTenants(f, ts)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("tenants: write registry %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("tenants: commit registry: %w", err)
	}
	return nil
}

type header struct {
	Count int
}

func writeTenants(w io.Writer, ts []Tenant) error {
	if _, err := w.Write(magic); err != nil {
		return err
	}
	if err := writeFrame(w, header{Count: len(ts)}); err != nil {
		return err
	}
	for i := range ts {
		if err := writeFrame(w, ts[i]); err != nil {
			return err
		}
	}
	return nil
}

func writeFrame(w io.Writer, v any) error {
	var buf bytes.Buffer
	buf.Write(make([]byte, 4))
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("tenants: encode frame: %w", err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err := w.Write(b)
	return err
}

func readFrame(r io.Reader, v any) error {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return fmt.Errorf("tenants: read frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrame {
		return fmt.Errorf("tenants: implausible frame length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return fmt.Errorf("tenants: read frame: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("tenants: decode frame: %w", err)
	}
	return nil
}

// Read parses a registry file. Strict: wrong magic, torn tail, bad
// counts or trailing bytes all error, and nothing is applied.
func Read(r io.Reader) ([]Tenant, error) {
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(r, got); err != nil {
		return nil, fmt.Errorf("tenants: read registry magic: %w", err)
	}
	if !bytes.Equal(got, magic) {
		return nil, fmt.Errorf("tenants: bad registry magic")
	}
	var hdr header
	if err := readFrame(r, &hdr); err != nil {
		return nil, err
	}
	if hdr.Count < 0 || hdr.Count > 1<<20 {
		return nil, fmt.Errorf("tenants: implausible tenant count %d", hdr.Count)
	}
	ts := make([]Tenant, 0, hdr.Count)
	for i := 0; i < hdr.Count; i++ {
		var t Tenant
		if err := readFrame(r, &t); err != nil {
			return nil, err
		}
		ts = append(ts, t)
	}
	var one [1]byte
	if _, err := r.Read(one[:]); err != io.EOF {
		return nil, fmt.Errorf("tenants: trailing bytes after registry")
	}
	return ts, nil
}

// Open loads a registry file. now is the quota clock; nil uses the wall
// clock.
func Open(path string, now func() time.Duration) (*Registry, error) {
	ts, err := readFile(path)
	if err != nil {
		return nil, err
	}
	return New(ts, now)
}

func readFile(path string) ([]Tenant, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tenants: open registry: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Reload re-reads path and hot-swaps the tenant set. On any load or
// validation error the current snapshot stays in place untouched —
// the all-or-nothing half of the resume contract. Buckets of tenants
// whose quota didn't change keep their fill level.
func (r *Registry) Reload(path string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	ts, err := readFile(path)
	if err != nil {
		return err
	}
	snap, err := buildSnapshot(ts, r.snap.Load())
	if err != nil {
		return err
	}
	r.snap.Store(snap)
	return nil
}
