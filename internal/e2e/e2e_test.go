package e2e

// e2e_test.go drives the fleet. TestServingFleet is the multi-tenant
// acceptance run: three daemons behind the rendezvous router, seeded
// mixed load (sync detects + async jobs) from three tenants with
// different quota shapes, a hot /v1/reload mid-run, and a SIGKILL of
// one daemon followed by a restart that must resume its jobs. The
// run asserts zero cross-tenant leakage and that client-side tallies
// match the /metrics exposition exactly. TestJobResumeByteIdentical
// is the crash-consistency drill, one sub-test per chaos seed: a
// killed-and-restarted scan must stream byte-identical findings to an
// uninterrupted control run.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/unidetect/unidetect/internal/obs"
	"github.com/unidetect/unidetect/internal/tenants"
	"github.com/unidetect/unidetect/internal/testkit"
)

// fleetTenants is the tenant roster: one bursty-but-metered, one
// unthrottled, one tightly throttled so the 429 path sees real load.
var fleetTenants = []struct {
	id, key string
	rate    float64
	burst   int
}{
	{id: "acme", key: "acme-key-1", rate: 5, burst: 6},
	{id: "globex", key: "globex-key-2"},
	{id: "initech", key: "initech-key-3", rate: 1, burst: 3},
}

func writeTenantsFile(t *testing.T) string {
	t.Helper()
	ts := make([]tenants.Tenant, len(fleetTenants))
	for i, ft := range fleetTenants {
		ts[i] = tenants.Tenant{
			ID: ft.id, KeyHash: tenants.HashKey(ft.key),
			RatePerSec: ft.rate, Burst: ft.burst,
		}
	}
	path := filepath.Join(workDir, scratchName(t)+"-tenants.reg")
	if err := tenants.WriteFile(path, ts); err != nil {
		t.Fatal(err)
	}
	return path
}

// tenantCSV is a small tenant-tagged table with a guaranteed typo
// pair: every column name and value carries the tenant id, so any
// cross-tenant bleed is visible in the response bytes.
func tenantCSV(tenant string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s_director\n", tenant)
	for _, v := range []string{"Kevin Doeling", "Kevin Dowling", "Alan Myerson", "Rob Morrow", "Lesli Glatter", "Peter Bonerz"} {
		fmt.Fprintf(&sb, "%s %s\n", tenant, v)
	}
	return sb.String()
}

// jobCSV is a larger deterministic table for the async path: unique
// filler rows plus the typo pair, tenant-tagged like tenantCSV.
func jobCSV(tenant string, rows int, seed int64) string {
	rnd := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s_name,%s_qty\n", tenant, tenant)
	fmt.Fprintf(&sb, "%s Kevin Doeling,10\n%s Kevin Dowling,11\n", tenant, tenant)
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%s item-%06d,%d\n", tenant, i, 10+rnd.Intn(90))
	}
	return sb.String()
}

// tally is the client-side ledger for one daemon process: per-tenant
// protected requests and quota rejections, plus keyless 401s. It is
// reset when the daemon restarts, because the server's in-memory
// counters reset with it.
type tally struct {
	sent  map[string]int
	quota map[string]int
	auth  int
}

func newTally() *tally {
	return &tally{sent: map[string]int{}, quota: map[string]int{}}
}

type fleet struct {
	t       *testing.T
	router  *router
	tallies map[string]*tally // daemon name -> ledger since last (re)start
}

// call issues one protected request to the chosen daemon with the
// tenant's key and updates the ledger the /metrics comparison checks.
func (f *fleet) call(d *daemon, tenant, key, method, path, ct, body string) (int, []byte) {
	f.t.Helper()
	ledger := f.tallies[d.name]
	ledger.sent[tenant]++
	var code int
	var resp []byte
	if method == http.MethodGet {
		code, resp = d.Get(path, "X-API-Key", key)
	} else {
		code, resp = d.Post(path, ct, body, "X-API-Key", key)
	}
	if code == http.StatusTooManyRequests {
		ledger.quota[tenant]++
	}
	return code, resp
}

type jobRef struct {
	d      *daemon
	tenant string
	key    string
	name   string
	id     string
}

func TestServingFleet(t *testing.T) {
	tenantsPath := writeTenantsFile(t)
	f := &fleet{t: t, tallies: map[string]*tally{}}
	var daemons []*daemon
	for _, name := range []string{"a", "b", "c"} {
		d := startDaemon(t, name, "-tenants", tenantsPath, "-job-chunk-rows", "32")
		f.tallies[d.name] = newTally()
		daemons = append(daemons, d)
	}
	f.router = &router{daemons: daemons}

	// Seeded mixed load: sync detects with async job submissions mixed
	// in, a reload at the halfway mark, and a SIGKILL of daemon c at
	// three quarters. Sequential on purpose — it keeps the client-side
	// ledger exact, which is what makes the /metrics comparison sharp.
	rnd := rand.New(rand.NewSource(42))
	const total = 90
	var jobs []jobRef
	var killed *daemon
	detect2xx := 0
	for i := 0; i < total; i++ {
		ft := fleetTenants[rnd.Intn(len(fleetTenants))]
		d := f.router.pick(ft.id)

		switch {
		case i == total/2:
			// Hot swap on whichever daemon serves globex: retrain from a
			// synthetic spec, no restart, no dropped requests.
			rd := f.router.pick("globex")
			code, body := f.call(rd, "globex", "globex-key-2", http.MethodPost,
				"/v1/reload", "application/json", `{"tables": 120, "seed": 7}`)
			if code != http.StatusOK {
				t.Fatalf("mid-run reload: %d %s", code, body)
			}
			continue
		case i == 3*total/4:
			killed = f.router.daemons[2]
			killed.kill(t)
			continue
		}

		if rnd.Intn(5) == 0 { // async path
			name := fmt.Sprintf("%s-job-%d", ft.id, i)
			code, body := f.call(d, ft.id, ft.key, http.MethodPost,
				"/v1/jobs?name="+name, "text/csv", jobCSV(ft.id, 200, int64(i)))
			switch code {
			case http.StatusAccepted:
				var status struct {
					ID string `json:"id"`
				}
				if err := json.Unmarshal(body, &status); err != nil {
					t.Fatalf("202 body %q: %v", body, err)
				}
				jobs = append(jobs, jobRef{d: d, tenant: ft.id, key: ft.key, name: name, id: status.ID})
			case http.StatusTooManyRequests:
				// quota; already tallied
			default:
				t.Fatalf("job submit for %s: %d %s", ft.id, code, body)
			}
			continue
		}

		name := ft.id + "-upload"
		code, body := f.call(d, ft.id, ft.key, http.MethodPost,
			"/v1/detect?name="+name, "text/csv", tenantCSV(ft.id))
		switch code {
		case http.StatusOK:
			detect2xx++
			var resp struct {
				Table    string `json:"table"`
				Findings []struct {
					Column string   `json:"column"`
					Values []string `json:"values"`
				} `json:"findings"`
			}
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatalf("detect body %q: %v", body, err)
			}
			if resp.Table != name {
				t.Fatalf("tenant %s got table %q back — cross-tenant leakage", ft.id, resp.Table)
			}
			for _, fd := range resp.Findings {
				if !strings.HasPrefix(fd.Column, ft.id+"_") {
					t.Fatalf("tenant %s got finding in column %q — cross-tenant leakage", ft.id, fd.Column)
				}
				for _, v := range fd.Values {
					if !strings.HasPrefix(v, ft.id+" ") {
						t.Fatalf("tenant %s got value %q — cross-tenant leakage", ft.id, v)
					}
				}
			}
		case http.StatusTooManyRequests:
			// quota; already tallied
		default:
			t.Fatalf("detect for %s: %d %s", ft.id, code, body)
		}
	}
	if detect2xx == 0 {
		t.Fatal("no detect request succeeded; load has no power")
	}
	if len(jobs) == 0 {
		t.Fatal("no job was accepted; load has no power")
	}

	// Restart the killed daemon with the same jobs dir: its accepted
	// jobs must resume and complete. Its in-memory counters restart
	// from zero, so its ledger resets with it.
	killed.spawn(t)
	f.tallies[killed.name] = newTally()

	// Keyless and bad-key probes must 401 on every daemon.
	for _, d := range f.router.daemons {
		for _, hdr := range [][]string{nil, {"X-API-Key", "no-such-key"}} {
			code, _ := d.Post("/v1/detect", "text/csv", "A\nx\n", hdr...)
			if code != http.StatusUnauthorized {
				t.Fatalf("%s: unauthenticated probe got %d, want 401", d.name, code)
			}
			f.tallies[d.name].auth++
		}
	}

	// Every accepted job — including the killed daemon's — must reach a
	// terminal state with tenant-tagged findings.
	for _, j := range jobs {
		lines := f.waitJob(j)
		last := lines[len(lines)-1]
		if last["state"] != "done" && last["state"] != "degraded" {
			t.Fatalf("job %s/%s for %s ended %v", j.d.name, j.id, j.tenant, last)
		}
		for _, line := range lines[:len(lines)-1] {
			if tbl, _ := line["table"].(string); tbl != j.name {
				t.Fatalf("job %s findings carry table %q, want %q — cross-tenant leakage", j.id, tbl, j.name)
			}
		}
	}
	// Job ids are tenant-scoped: another tenant's key sees a 404, not
	// even the job's existence.
	probe := jobs[0]
	for _, ft := range fleetTenants {
		if ft.id == probe.tenant {
			continue
		}
		code, _ := f.call(probe.d, ft.id, ft.key, http.MethodGet, "/v1/jobs/"+probe.id, "", "")
		if code != http.StatusNotFound {
			t.Fatalf("tenant %s reading %s's job: %d, want 404", ft.id, probe.tenant, code)
		}
	}

	// The ledger must match /metrics exactly, daemon by daemon, tenant
	// by tenant: requests (quota rejections included), rejections, and
	// auth failures.
	for _, d := range f.router.daemons {
		ledger := f.tallies[d.name]
		fams, _ := d.Metrics()
		metric := func(name, tenant string) float64 {
			var labels map[string]string
			if tenant != "" {
				labels = map[string]string{"tenant": tenant}
			}
			s, ok := obs.Sample(fams, name, labels)
			if !ok {
				return 0
			}
			return s.Value
		}
		for _, ft := range fleetTenants {
			if got, want := metric("unidetectd_tenant_requests_total", ft.id), float64(ledger.sent[ft.id]); got != want {
				t.Errorf("%s: tenant %s requests_total = %v, client sent %v", d.name, ft.id, got, want)
			}
			if got, want := metric("unidetectd_tenant_quota_rejected_total", ft.id), float64(ledger.quota[ft.id]); got != want {
				t.Errorf("%s: tenant %s quota_rejected_total = %v, client saw %v", d.name, ft.id, got, want)
			}
		}
		if got, want := metric("unidetectd_tenant_auth_failures_total", ""), float64(ledger.auth); got != want {
			t.Errorf("%s: auth_failures_total = %v, client sent %v", d.name, got, want)
		}
	}
	// The restarted daemon must have resumed at least one job if any of
	// its jobs were cut off mid-flight; either way its job counters must
	// be internally consistent.
	killedJobs := 0
	for _, j := range jobs {
		if j.d == killed {
			killedJobs++
		}
	}
	if killedJobs > 0 {
		fams, _ := killed.Metrics()
		if s, ok := obs.Sample(fams, "unidetect_jobs_finished_total", map[string]string{"state": "done"}); !ok || s.Value == 0 {
			t.Errorf("restarted daemon finished no jobs, had %d accepted", killedJobs)
		}
	}
}

// waitJob polls one job with its owner's key until terminal and
// returns the parsed NDJSON lines of the final reply.
func (f *fleet) waitJob(j jobRef) []map[string]any {
	f.t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, body := f.call(j.d, j.tenant, j.key, http.MethodGet, "/v1/jobs/"+j.id, "", "")
		if code == http.StatusTooManyRequests {
			time.Sleep(300 * time.Millisecond)
			continue
		}
		if code != http.StatusOK {
			f.t.Fatalf("GET %s/%s: %d %s", j.d.name, j.id, code, body)
		}
		lines := parseNDJSON(f.t, body)
		switch lines[len(lines)-1]["state"] {
		case "done", "degraded", "failed":
			return lines
		}
		time.Sleep(20 * time.Millisecond)
	}
	f.t.Fatalf("job %s/%s never reached a terminal state", j.d.name, j.id)
	return nil
}

func parseNDJSON(t *testing.T, body []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, raw := range bytes.Split(bytes.TrimSpace(body), []byte("\n")) {
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("non-JSON NDJSON line %q: %v", raw, err)
		}
		out = append(out, m)
	}
	return out
}

// TestJobResumeByteIdentical is the resume contract, one sub-test per
// chaos seed: SIGKILL a daemon mid-scan, restart it, and the streamed
// findings must be byte-for-byte what an uninterrupted run produces.
func TestJobResumeByteIdentical(t *testing.T) {
	for _, seed := range testkit.Seeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			csv := jobCSV("solo", 4000, seed)
			flags := []string{"-job-chunk-rows", "8", "-job-chunk-delay", "4ms"}

			// Control: uninterrupted scan, same throttle flags.
			control := startDaemon(t, fmt.Sprintf("ctl-%d", seed), flags...)
			ctlID := submitJob(t, control, csv)
			want := waitJobBytes(t, control, ctlID)
			control.stop(t)

			// Chaos: same upload, killed at the first durable checkpoint,
			// restarted, run to completion.
			chaos := startDaemon(t, fmt.Sprintf("chaos-%d", seed), flags...)
			id := submitJob(t, chaos, csv)
			if id != ctlID {
				t.Fatalf("fresh stores disagree on ids: %s vs %s", id, ctlID)
			}
			statePath := filepath.Join(chaos.jobsDir, id, "scan.state")
			deadline := time.Now().Add(30 * time.Second)
			for {
				if _, err := os.Stat(statePath); err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("no checkpoint appeared at %s", statePath)
				}
				time.Sleep(2 * time.Millisecond)
			}
			chaos.kill(t)
			chaos.spawn(t)
			got := waitJobBytes(t, chaos, id)

			if !bytes.Equal(got, want) {
				testkit.Artifact(t, "control.ndjson", string(want))
				testkit.Artifact(t, "resumed.ndjson", string(got))
				t.Fatalf("resumed findings differ from uninterrupted run (%d vs %d bytes); artifacts shipped", len(got), len(want))
			}
			if n := chaos.Metric("unidetect_jobs_resumes_total", nil); n < 1 {
				t.Errorf("restarted daemon reports %v resumes, want >= 1", n)
			}
		})
	}
}

func submitJob(t *testing.T, d *daemon, csv string) string {
	t.Helper()
	code, body := d.Post("/v1/jobs?name=resume-drill", "text/csv", csv)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var status struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &status); err != nil || status.ID == "" {
		t.Fatalf("202 body %q: %v", body, err)
	}
	return status.ID
}

// waitJobBytes polls until the job is terminal and returns the full
// final reply — findings stream plus terminal summary line — whose
// bytes the resume contract is stated over.
func waitJobBytes(t *testing.T, d *daemon, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		code, body := d.Get("/v1/jobs/" + id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: %d %s", id, code, body)
		}
		lines := parseNDJSON(t, body)
		switch lines[len(lines)-1]["state"] {
		case "done", "degraded":
			return body
		case "failed":
			t.Fatalf("job %s failed: %v", id, lines[len(lines)-1])
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return nil
}
