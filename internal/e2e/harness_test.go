package e2e

// harness_test.go holds the fleet plumbing: TestMain builds the real
// unidetectd binary once and trains one shared model file; daemons
// are exec'd with ephemeral ports (-addr 127.0.0.1:0 -addr-file) and
// attached through testkit.Daemon for readiness and metrics; a
// rendezvous-hash router pins each tenant to a daemon and rebalances
// only the dead daemon's tenants after a kill. Daemon logs ship as
// failure artifacts next to the chaos transcripts.

import (
	"context"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/unidetect/unidetect"
	"github.com/unidetect/unidetect/internal/testkit"
)

var (
	workDir   string // scratch root shared by every test in the run
	binPath   string // the built unidetectd binary
	modelPath string // one trained model, shared by every daemon
)

func TestMain(m *testing.M) {
	os.Exit(func() int {
		dir, err := os.MkdirTemp("", "unidetect-e2e-*")
		if err != nil {
			log.Print(err)
			return 1
		}
		defer os.RemoveAll(dir)
		workDir = dir

		// Build the daemon exactly as a release would: the real main
		// package, no test scaffolding linked in.
		binPath = filepath.Join(dir, "unidetectd")
		build := exec.Command("go", "build", "-o", binPath, "github.com/unidetect/unidetect/cmd/unidetectd")
		build.Dir = "../.."
		if out, err := build.CombinedOutput(); err != nil {
			log.Printf("e2e: build unidetectd: %v\n%s", err, out)
			return 1
		}

		// One model file shared by the fleet: every daemon loads the same
		// bytes, so cross-daemon findings are comparable.
		model, err := unidetect.Train(context.Background(),
			unidetect.SyntheticCorpus(unidetect.WebProfile, 900, 11), nil)
		if err != nil {
			log.Printf("e2e: train shared model: %v", err)
			return 1
		}
		modelPath = filepath.Join(dir, "model.bin")
		f, err := os.Create(modelPath)
		if err != nil {
			log.Print(err)
			return 1
		}
		if err := model.Save(f); err != nil {
			log.Printf("e2e: save shared model: %v", err)
			return 1
		}
		if err := f.Close(); err != nil {
			log.Print(err)
			return 1
		}
		return m.Run()
	}())
}

// scratchName flattens a (sub)test name into a path component for the
// shared scratch dir — subtest names carry slashes.
func scratchName(t *testing.T) string {
	return strings.ReplaceAll(t.Name(), "/", "_")
}

// daemon is one exec'd unidetectd plus its harness attachment.
type daemon struct {
	*testkit.Daemon
	name    string
	args    []string
	cmd     *exec.Cmd
	logPath string
	addr    string
	jobsDir string
	alive   bool
}

// startDaemon execs the binary with an ephemeral port and waits for
// readiness. Extra args ride after the harness-owned flags. The
// daemon's log ships as a failure artifact; still-running daemons are
// SIGKILLed when the test ends.
func startDaemon(t *testing.T, name string, extra ...string) *daemon {
	t.Helper()
	d := &daemon{
		name:    name,
		logPath: filepath.Join(workDir, scratchName(t)+"-"+name+".log"),
		jobsDir: filepath.Join(workDir, scratchName(t)+"-"+name+"-jobs"),
		args:    extra,
	}
	d.spawn(t)
	t.Cleanup(func() {
		if t.Failed() {
			logData, err := os.ReadFile(d.logPath)
			if err != nil {
				logData = []byte(err.Error())
			}
			testkit.Artifact(t, name+".log", string(logData))
		}
		if d.alive {
			d.kill(t)
		}
	})
	return d
}

// spawn (re)launches the daemon process with the same identity — the
// restart path of the kill-one-daemon drills reuses the jobs dir and
// log so resumed work lands in the same places.
func (d *daemon) spawn(t *testing.T) {
	t.Helper()
	addrFile := filepath.Join(workDir, fmt.Sprintf("%s-%s-%d.addr", scratchName(t), d.name, time.Now().UnixNano()))
	args := []string{
		"-model", modelPath,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-jobs-dir", d.jobsDir,
	}
	args = append(args, d.args...)
	logF, err := os.OpenFile(d.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(binPath, args...)
	cmd.Stdout = logF
	cmd.Stderr = logF
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", d.name, err)
	}
	_ = logF.Close() // the child holds its own descriptor now

	// The daemon writes its bound address atomically once listening.
	deadline := time.Now().Add(30 * time.Second)
	var addr string
	for {
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(data))
			break
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			t.Fatalf("%s never wrote %s", d.name, addrFile)
		}
		time.Sleep(10 * time.Millisecond)
	}
	d.cmd = cmd
	d.addr = addr
	d.alive = true
	d.Daemon = testkit.AttachDaemon(t, "http://"+addr, 30*time.Second)
}

// kill SIGKILLs the daemon — no drain, no checkpoint flush beyond
// what is already durable. This is the crash the resume contract is
// written against.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	d.alive = false
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill %s: %v", d.name, err)
	}
	_, _ = d.cmd.Process.Wait()
}

// stop drains the daemon gracefully (SIGTERM) and waits for exit.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	d.alive = false
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("stop %s: %v", d.name, err)
	}
	_, _ = d.cmd.Process.Wait()
}

// router is a rendezvous-hash (highest-random-weight) router: each
// key scores every alive daemon and picks the max, so killing one
// daemon remaps only that daemon's keys — the consistent-hashing
// property the fleet needs for per-daemon job affinity.
type router struct {
	daemons []*daemon
}

func (r *router) pick(key string) *daemon {
	var best *daemon
	var bestScore uint64
	for _, d := range r.daemons {
		if !d.alive {
			continue
		}
		h := fnv.New64a()
		_, _ = h.Write([]byte(key))
		_, _ = h.Write([]byte{0})
		_, _ = h.Write([]byte(d.name))
		if score := h.Sum64(); best == nil || score > bestScore {
			best, bestScore = d, score
		}
	}
	return best
}
