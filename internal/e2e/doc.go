// Package e2e is the black-box serving acceptance harness: it builds
// the real unidetectd binary, boots a small fleet of daemons on
// ephemeral ports behind a consistent-hash router, and drives seeded
// multi-tenant load — sync detects, async jobs, a mid-run /v1/reload
// and kill-one-daemon chaos — asserting zero cross-tenant leakage,
// exact quota accounting against the /metrics exposition, and that a
// killed-and-restarted daemon resumes async jobs to byte-identical
// findings. Everything lives in the test files; the package itself
// exports nothing.
package e2e
