package strdist

import "testing"

// FuzzLevenshteinBounded cross-checks the banded implementation against
// the full DP on arbitrary inputs.
func FuzzLevenshteinBounded(f *testing.F) {
	f.Add("kitten", "sitting", 3)
	f.Add("", "abc", 1)
	f.Add("日本語", "日本誤", 2)
	f.Fuzz(func(t *testing.T, a, b string, bound int) {
		if len(a) > 50 || len(b) > 50 {
			return
		}
		if bound < -2 || bound > 60 {
			bound = bound % 60
		}
		full := Levenshtein(a, b)
		got, ok := LevenshteinBounded(a, b, bound)
		if bound >= 0 && full <= bound {
			if !ok || got != full {
				t.Fatalf("bounded(%q,%q,%d) = (%d,%v), want (%d,true)", a, b, bound, got, ok, full)
			}
		} else if ok {
			t.Fatalf("bounded(%q,%q,%d) = (%d,true), want not-ok (full=%d)", a, b, bound, got, full)
		}
	})
}

// FuzzDifferingTokens asserts symmetry-ish invariants: identical inputs
// produce no differing tokens, and the function never panics.
func FuzzDifferingTokens(f *testing.F) {
	f.Add("Kevin Doeling", "Kevin Dowling")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, a, b string) {
		onlyA, onlyB := DifferingTokens(a, b)
		if a == b && (len(onlyA) != 0 || len(onlyB) != 0) {
			t.Fatalf("identical inputs differ: %v %v", onlyA, onlyB)
		}
		revB, revA := DifferingTokens(b, a)
		if len(revA) != len(onlyA) || len(revB) != len(onlyB) {
			t.Fatalf("asymmetric: %v/%v vs %v/%v", onlyA, onlyB, revA, revB)
		}
		if l := AvgDifferingTokenLen(a, b); l < 0 {
			t.Fatalf("negative avg length %v", l)
		}
	})
}
