package strdist

import "sort"

// Scratch holds reusable buffers for the hot MPD scans of the serving
// fast path: per-row rune slices (converted once per column instead of
// once per pair), the banded-DP rows, and the reverse-key cache of the
// blocked scan. A Scratch is owned by one worker goroutine at a time and
// must not be shared concurrently.
//
// Every *Scratch variant in this file replicates its allocation-heavy
// counterpart in strdist.go/mpd.go pair for pair — same iteration order,
// same bounds, same early exits — so the returned Pair is identical, not
// merely an equally-minimal one. The internal/difftest harness holds the
// two families to byte-identical findings.
//
// The hotalloc budgets in this file cover exactly the grow-once buffer
// allocations that remain: each fires until the worker's scratch reaches
// the column/value extremes of its stream, then never again.
type Scratch struct {
	prev, cur []int
	runes     [][]rune
	last      []string // the values runes currently decomposes (identity)
	keys      []string // reversed strings for the blocked scan
	kept      []int    // surviving row indices for the perturbed scans
}

// row returns a zeroable int buffer of length n, growing buf as needed.
//
// alloc-budget: 1 DP row grows to the longest value seen by the worker, then reuses
func scratchRow(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// runesOf fills s.runes with the rune decomposition of each value,
// reusing the outer slice across columns.
//
// alloc-budget: 1 the outer rune table grows to the tallest column seen by the worker, then reuses
func (s *Scratch) runesOf(vals []string) [][]rune {
	if cap(s.runes) < len(vals) {
		s.runes = make([][]rune, len(vals))
	}
	s.runes = s.runes[:len(vals)]
	for i, v := range vals {
		s.runes[i] = runes(v)
	}
	s.last = vals
	return s.runes
}

// cached reports whether runes already decomposes exactly this value
// slice (same backing array and length), so a follow-up scan can skip
// the conversion.
func (s *Scratch) cached(vals []string) bool {
	if len(s.last) != len(vals) {
		return false
	}
	return len(vals) == 0 || &s.last[0] == &vals[0]
}

// levBounded is LevenshteinBounded over pre-converted rune slices with
// reused DP rows. The control flow is a line-for-line mirror; only the
// rune conversion and the row allocations are hoisted out.
func (s *Scratch) levBounded(ra, rb []rune, maxDist int) (int, bool) {
	if maxDist < 0 {
		return maxDist + 1, false
	}
	la, lb := len(ra), len(rb)
	if abs(la-lb) > maxDist {
		return maxDist + 1, false
	}
	if la == 0 {
		return lb, true
	}
	if lb == 0 {
		return la, true
	}
	const inf = 1 << 29
	s.prev = scratchRow(s.prev, lb+1)
	s.cur = scratchRow(s.cur, lb+1)
	prev, cur := s.prev, s.cur
	for j := 0; j <= lb; j++ {
		if j <= maxDist {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= la; i++ {
		lo := i - maxDist
		if lo < 1 {
			lo = 1
		}
		hi := i + maxDist
		if hi > lb {
			hi = lb
		}
		if lo > 1 {
			cur[lo-1] = inf
		} else {
			//lint:ignore hotpanic cur is scratchRow(lb+1) with lb >= 1 (lb == 0 returns above)
			cur[0] = i
		}
		rowMin := inf
		if lo == 1 {
			//lint:ignore hotpanic cur is scratchRow(lb+1) with lb >= 1 (lb == 0 returns above)
			rowMin = cur[0]
		}
		for j := lo; j <= hi; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			v := prev[j-1] + cost
			if j > lo || lo == 1 {
				if c := cur[j-1] + 1; c < v {
					v = c
				}
			}
			if p := prev[j] + 1; p < v {
				v = p
			}
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if hi < lb {
			cur[hi+1] = inf
		}
		if rowMin > maxDist {
			return maxDist + 1, false
		}
		prev, cur = cur, prev
	}
	if prev[lb] > maxDist {
		return maxDist + 1, false
	}
	return prev[lb], true
}

// minPairDistRunes is MinPairDist over pre-converted runes: same i<j scan,
// same carried bound, same distance-1 early exit.
func (s *Scratch) minPairDistRunes(vals []string, rs [][]rune) (p Pair, ok bool) {
	best := -1
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if vals[i] == vals[j] {
				continue
			}
			bound := best - 1
			if best < 0 {
				bound = maxRuneLen(rs[i], rs[j])
			}
			d, within := s.levBounded(rs[i], rs[j], bound)
			if !within {
				continue
			}
			if best < 0 || d < best {
				best = d
				p = Pair{I: i, J: j, Dist: d}
				if best == 1 {
					return p, true
				}
			}
		}
	}
	return p, best >= 0
}

// MinPairDistScratch is MinPairDist with sc's buffers.
func MinPairDistScratch(vals []string, sc *Scratch) (Pair, bool) {
	return sc.minPairDistRunes(vals, sc.runesOf(vals))
}

// secondMinPairDistRunes replicates SecondMinPairDist: MinPairDist over
// the values with row `drop` removed. Skipping the dropped row in place
// visits the surviving pairs in exactly the order the compacted copy
// would, so the carried bound and early exit fire identically.
//
// alloc-budget: 2 the kept-row index grows to the tallest column seen by the worker, then reuses
func (s *Scratch) secondMinPairDistRunes(vals []string, rs [][]rune, drop int) (Pair, bool) {
	if cap(s.kept) < len(vals) {
		s.kept = make([]int, 0, len(vals))
	}
	kept := s.kept[:0]
	for i := range vals {
		if i != drop {
			kept = append(kept, i)
		}
	}
	best := -1
	var p Pair
	for a := 0; a < len(kept); a++ {
		i := kept[a]
		for b := a + 1; b < len(kept); b++ {
			j := kept[b]
			if vals[i] == vals[j] {
				continue
			}
			bound := best - 1
			if best < 0 {
				bound = maxRuneLen(rs[i], rs[j])
			}
			d, within := s.levBounded(rs[i], rs[j], bound)
			if !within {
				continue
			}
			if best < 0 || d < best {
				best = d
				p = Pair{I: i, J: j, Dist: d}
				if best == 1 {
					return p, true
				}
			}
		}
	}
	return p, best >= 0
}

// MinPairDistCappedScratch is MinPairDistCapped with sc's buffers.
func MinPairDistCappedScratch(vals []string, cap int, sc *Scratch) (Pair, bool) {
	if cap <= 0 {
		cap = ExactMPDCap
	}
	rs := sc.runesOf(vals)
	if len(vals) <= cap {
		return sc.minPairDistRunes(vals, rs)
	}
	return sc.minPairDistBlocked(vals, rs, -1)
}

// SecondMinPairDistCappedScratch is SecondMinPairDistCapped with sc's
// buffers. It assumes runesOf(vals) was just computed by the paired
// MinPairDistCappedScratch call on the same values (the spelling
// detector's access pattern) and recomputes it otherwise.
func SecondMinPairDistCappedScratch(vals []string, drop, cap int, sc *Scratch) (Pair, bool) {
	if cap <= 0 {
		cap = ExactMPDCap
	}
	rs := sc.runes
	if !sc.cached(vals) {
		rs = sc.runesOf(vals)
	}
	if len(vals) <= cap+1 {
		return sc.secondMinPairDistRunes(vals, rs, drop)
	}
	return sc.minPairDistBlocked(vals, rs, drop)
}

// minPairDistBlocked mirrors the package-level minPairDistBlocked over
// the values with row `drop` removed (drop < 0 keeps all rows): sorted-
// neighborhood blocking under the identity and reversed-string orders,
// with the reverse keys computed once per value instead of O(n log n)
// times inside the comparator. The entry list it sorts is built in the
// same initial order as the reference's, and the comparators return the
// same results, so sort.Slice yields the same permutation and the window
// scans visit pairs identically.
//
// alloc-budget: 8 sort.Slice boxing/comparators pin the reference permutation; the order and reverse-key tables grow once per worker
func (s *Scratch) minPairDistBlocked(vals []string, rs [][]rune, drop int) (Pair, bool) {
	if cap(s.kept) < len(vals) {
		s.kept = make([]int, 0, len(vals))
	}
	order := s.kept[:0]
	for i := range vals {
		if i != drop {
			order = append(order, i)
		}
	}
	best := -1
	var bestPair Pair
	scan := func(key func(int) string) {
		sort.Slice(order, func(a, b int) bool {
			return key(order[a]) < key(order[b])
		})
		for a := range order {
			hi := a + blockWindow
			if hi > len(order)-1 {
				hi = len(order) - 1
			}
			for b := a + 1; b <= hi; b++ {
				i, j := order[a], order[b]
				if vals[i] == vals[j] {
					continue
				}
				bound := best - 1
				if best < 0 {
					bound = maxRuneLen(rs[i], rs[j])
				}
				d, within := s.levBounded(rs[i], rs[j], bound)
				if !within {
					continue
				}
				if best < 0 || d < best {
					best = d
					bestPair = Pair{I: i, J: j, Dist: d}
				}
			}
		}
	}
	// The reference compacts the kept values into a fresh slice, so its
	// sort starts from ascending row order; order starts the same way.
	scan(func(i int) string { return vals[i] })
	if best != 1 {
		if cap(s.keys) < len(vals) {
			s.keys = make([]string, len(vals))
		}
		s.keys = s.keys[:len(vals)]
		for _, i := range order {
			s.keys[i] = reverseString(vals[i])
		}
		// Re-establish ascending row order first: the reference's second
		// scan re-sorts the same entries slice the first scan left behind,
		// so we must re-sort from the identical intermediate permutation.
		// sort.Slice on the same input with a deterministic comparator is
		// itself deterministic, and `order` already matches the
		// reference's post-first-scan permutation, so sorting by the
		// cached reverse keys lands in the reference's second order.
		scan(func(i int) string { return s.keys[i] })
	}
	if bestPair.I > bestPair.J {
		bestPair.I, bestPair.J = bestPair.J, bestPair.I
	}
	return bestPair, best >= 0
}

func maxRuneLen(a, b []rune) int {
	if len(a) > len(b) {
		return len(a)
	}
	return len(b)
}
