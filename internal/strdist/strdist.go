// Package strdist implements the string-distance primitives behind the
// spelling-error detector and the Fuzzy-Cluster baseline: Levenshtein edit
// distance (full and early-exit bounded variants), minimum pairwise distance
// over a column, and extraction of the differing tokens of a value pair
// (used by the §3.2 featurization on token lengths).
package strdist

import "unicode/utf8"

// Levenshtein returns the edit distance (unit-cost insert/delete/substitute)
// between a and b, computed over runes.
func Levenshtein(a, b string) int {
	ra, rb := runes(a), runes(b)
	la, lb := len(ra), len(rb)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

// LevenshteinBounded returns the edit distance between a and b if it is at
// most maxDist, and (maxDist+1, false) otherwise. It prunes with the
// length-difference lower bound and a banded DP, making it cheap to reject
// distant pairs — the common case in the O(n²) column scans of MPD and
// Fuzzy-Cluster.
func LevenshteinBounded(a, b string, maxDist int) (int, bool) {
	if maxDist < 0 {
		return maxDist + 1, false
	}
	ra, rb := runes(a), runes(b)
	la, lb := len(ra), len(rb)
	if abs(la-lb) > maxDist {
		return maxDist + 1, false
	}
	if la == 0 {
		return lb, true
	}
	if lb == 0 {
		return la, true
	}
	// Banded DP: only cells with |i-j| <= maxDist can be <= maxDist.
	const inf = 1 << 29
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		if j <= maxDist {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= la; i++ {
		lo := i - maxDist
		if lo < 1 {
			lo = 1
		}
		hi := i + maxDist
		if hi > lb {
			hi = lb
		}
		if lo > 1 {
			cur[lo-1] = inf
		} else {
			cur[0] = i
		}
		rowMin := inf
		if lo == 1 {
			rowMin = cur[0]
		}
		for j := lo; j <= hi; j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			v := prev[j-1] + cost
			if j > lo || lo == 1 {
				if c := cur[j-1] + 1; c < v {
					v = c
				}
			}
			if p := prev[j] + 1; p < v {
				v = p
			}
			cur[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		if hi < lb {
			cur[hi+1] = inf
		}
		if rowMin > maxDist {
			return maxDist + 1, false
		}
		prev, cur = cur, prev
	}
	if prev[lb] > maxDist {
		return maxDist + 1, false
	}
	return prev[lb], true
}

// Pair is an unordered pair of distinct column row indices with their edit
// distance.
type Pair struct {
	I, J int
	Dist int
}

// MinPairDist returns the minimum pairwise edit distance over the distinct
// values of vals (the paper's MPD metric, §3.2) and one pair achieving it.
// Rows holding equal values are skipped: MPD is defined over u != v.
// It returns ok=false when fewer than two distinct values exist.
//
// The scan carries the best-so-far bound into LevenshteinBounded, so the
// common case is O(n² · band) instead of O(n² · |u||v|).
func MinPairDist(vals []string) (p Pair, ok bool) {
	best := -1
	for i := 0; i < len(vals); i++ {
		for j := i + 1; j < len(vals); j++ {
			if vals[i] == vals[j] {
				continue
			}
			bound := best - 1
			if best < 0 {
				bound = maxLen(vals[i], vals[j])
			}
			d, within := LevenshteinBounded(vals[i], vals[j], bound)
			if !within {
				continue
			}
			if best < 0 || d < best {
				best = d
				p = Pair{I: i, J: j, Dist: d}
				if best == 1 {
					return p, true // cannot do better between distinct values
				}
			}
		}
	}
	return p, best >= 0
}

// SecondMinPairDist returns the minimum pairwise edit distance over the
// distinct values of vals after removing the value at row `drop`. This is
// the perturbed MPD(D_O^P) of §3.2.
func SecondMinPairDist(vals []string, drop int) (p Pair, ok bool) {
	kept := make([]string, 0, len(vals)-1)
	idx := make([]int, 0, len(vals)-1)
	for i, v := range vals {
		if i == drop {
			continue
		}
		kept = append(kept, v)
		idx = append(idx, i)
	}
	q, ok := MinPairDist(kept)
	if !ok {
		return Pair{}, false
	}
	return Pair{I: idx[q.I], J: idx[q.J], Dist: q.Dist}, true
}

// DifferingTokens returns the tokens of a and b that are not shared between
// them, splitting on spaces. It is used to measure "the average length of
// the tokens that differ between the MPD pair" (§3.2): an edit inside long
// tokens ("Doeling"/"Dowling") suggests a typo, while short differing
// tokens ("XXI"/"XXII") suggest legitimate near-identical values.
func DifferingTokens(a, b string) (onlyA, onlyB []string) {
	ta, tb := fields(a), fields(b)
	countB := make(map[string]int, len(tb))
	for _, t := range tb {
		countB[t]++
	}
	for _, t := range ta {
		if countB[t] > 0 {
			countB[t]--
		} else {
			onlyA = append(onlyA, t)
		}
	}
	countA := make(map[string]int, len(ta))
	for _, t := range ta {
		countA[t]++
	}
	for _, t := range tb {
		if countA[t] > 0 {
			countA[t]--
		} else {
			onlyB = append(onlyB, t)
		}
	}
	return onlyA, onlyB
}

// AvgDifferingTokenLen returns the mean rune length of the differing tokens
// of the pair (0 when the values are identical token-wise).
func AvgDifferingTokenLen(a, b string) float64 {
	onlyA, onlyB := DifferingTokens(a, b)
	n := len(onlyA) + len(onlyB)
	if n == 0 {
		return 0
	}
	total := 0
	for _, t := range onlyA {
		total += utf8.RuneCountInString(t)
	}
	for _, t := range onlyB {
		total += utf8.RuneCountInString(t)
	}
	return float64(total) / float64(n)
}

func fields(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if r == ' ' || r == '\t' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// runes decomposes s into a fresh rune slice.
//
// alloc-budget: 2 per-value decomposition; the result is retained in the scratch rune table across both MPD scans
func runes(s string) []rune {
	// Fast path for ASCII.
	ascii := true
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			ascii = false
			break
		}
	}
	if ascii {
		r := make([]rune, len(s))
		for i := 0; i < len(s); i++ {
			r[i] = rune(s[i])
		}
		return r
	}
	return []rune(s)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func maxLen(a, b string) int {
	la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
	if la > lb {
		return la
	}
	return lb
}
