package strdist

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestMinPairDistCappedSmallMatchesExact(t *testing.T) {
	vals := []string{"alpha", "alphb", "gamma", "delta"}
	exact, ok1 := MinPairDist(vals)
	capped, ok2 := MinPairDistCapped(vals, 100)
	if ok1 != ok2 || exact.Dist != capped.Dist {
		t.Errorf("exact %+v vs capped %+v", exact, capped)
	}
}

func TestMinPairDistCappedFindsPlantedPair(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// 2000 very distinct values + one planted distance-1 pair.
	vals := make([]string, 0, 2002)
	for i := 0; i < 2000; i++ {
		vals = append(vals, fmt.Sprintf("%s-%08d", randomWord(rng, 10), i))
	}
	vals = append(vals, "Kevin Doeling", "Kevin Dowling")
	p, ok := MinPairDistCapped(vals, 0)
	if !ok {
		t.Fatal("not ok")
	}
	if p.Dist != 1 {
		t.Errorf("Dist = %d, want 1", p.Dist)
	}
	if p.I != 2000 || p.J != 2001 {
		t.Errorf("pair rows = (%d,%d), want (2000,2001)", p.I, p.J)
	}
}

func TestMinPairDistCappedFindsSuffixPair(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// A distance-1 pair differing at the FIRST character: prefix sorting
	// separates them, the reversed-order scan must catch it.
	vals := make([]string, 0, 1002)
	for i := 0; i < 1000; i++ {
		vals = append(vals, fmt.Sprintf("%s%06d", randomWord(rng, 8), i))
	}
	vals = append(vals, "Xonstantinople", "Constantinople")
	p, ok := MinPairDistCapped(vals, 0)
	if !ok || p.Dist != 1 {
		t.Fatalf("p = %+v, ok = %v; want suffix pair at distance 1", p, ok)
	}
}

func TestSecondMinPairDistCappedLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]string, 0, 600)
	for i := 0; i < 598; i++ {
		vals = append(vals, fmt.Sprintf("%s-%05d", randomWord(rng, 9), i))
	}
	vals = append(vals, "Kevin Doeling", "Kevin Dowling")
	p, ok := MinPairDistCapped(vals, 0)
	if !ok || p.Dist != 1 {
		t.Fatalf("planted pair not found: %+v", p)
	}
	q, ok := SecondMinPairDistCapped(vals, p.I, 0)
	if !ok {
		t.Fatal("second not ok")
	}
	if q.Dist <= 1 {
		t.Errorf("perturbed MPD = %d, want > 1", q.Dist)
	}
	if q.I == p.I || q.J == p.I {
		t.Error("dropped row must not appear in perturbed pair")
	}
}

func TestMinPairDistCappedAllIdentical(t *testing.T) {
	vals := make([]string, 500)
	for i := range vals {
		vals[i] = "same"
	}
	if _, ok := MinPairDistCapped(vals, 10); ok {
		t.Error("all-identical large column should not be ok")
	}
}

func BenchmarkMinPairDistCapped2000(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	vals := make([]string, 2000)
	for i := range vals {
		vals[i] = fmt.Sprintf("%s-%06d", randomWord(rng, 8), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPairDistCapped(vals, 0)
	}
}
