package strdist

import "sort"

// ExactMPDCap is the default column size up to which MPD is computed by
// the exact O(n²) scan; larger columns use sorted-neighborhood blocking.
const ExactMPDCap = 256

// blockWindow is the neighborhood width of the sorted-order scan.
const blockWindow = 12

// MinPairDistCapped returns the minimum pairwise edit distance over vals
// like MinPairDist, but switches to an approximate sorted-neighborhood
// scan for columns larger than cap (cap <= 0 uses ExactMPDCap).
//
// The approximation sorts the distinct values and compares each value only
// to its following window under two orderings — the raw strings and the
// reversed strings — so that close pairs differing near the front or the
// back of the string are both caught. Misspelled pairs are within edit
// distance 1–2 of each other, so they share a long prefix or suffix and
// land adjacently in one of the two orders with overwhelming probability;
// this is the standard sorted-neighborhood blocking used by dedup systems.
func MinPairDistCapped(vals []string, cap int) (Pair, bool) {
	if cap <= 0 {
		cap = ExactMPDCap
	}
	if len(vals) <= cap {
		return MinPairDist(vals)
	}
	return minPairDistBlocked(vals)
}

// SecondMinPairDistCapped is the perturbed-MPD counterpart of
// MinPairDistCapped.
func SecondMinPairDistCapped(vals []string, drop, cap int) (Pair, bool) {
	if cap <= 0 {
		cap = ExactMPDCap
	}
	if len(vals) <= cap+1 {
		return SecondMinPairDist(vals, drop)
	}
	kept := make([]string, 0, len(vals)-1)
	idx := make([]int, 0, len(vals)-1)
	for i, v := range vals {
		if i == drop {
			continue
		}
		kept = append(kept, v)
		idx = append(idx, i)
	}
	p, ok := minPairDistBlocked(kept)
	if !ok {
		return Pair{}, false
	}
	return Pair{I: idx[p.I], J: idx[p.J], Dist: p.Dist}, true
}

func minPairDistBlocked(vals []string) (Pair, bool) {
	type entry struct {
		v   string
		row int
	}
	entries := make([]entry, len(vals))
	for i, v := range vals {
		entries[i] = entry{v, i}
	}

	best := -1
	var bestPair Pair
	scan := func(key func(string) string) {
		sort.Slice(entries, func(i, j int) bool {
			return key(entries[i].v) < key(entries[j].v)
		})
		for i := range entries {
			hi := i + blockWindow
			if hi > len(entries)-1 {
				hi = len(entries) - 1
			}
			for j := i + 1; j <= hi; j++ {
				a, b := entries[i], entries[j]
				if a.v == b.v {
					continue
				}
				bound := best - 1
				if best < 0 {
					bound = maxLen(a.v, b.v)
				}
				d, within := LevenshteinBounded(a.v, b.v, bound)
				if !within {
					continue
				}
				if best < 0 || d < best {
					best = d
					bestPair = Pair{I: a.row, J: b.row, Dist: d}
				}
			}
		}
	}
	ident := func(s string) string { return s }
	scan(ident)
	if best != 1 {
		scan(reverseString)
	}
	if bestPair.I > bestPair.J {
		bestPair.I, bestPair.J = bestPair.J, bestPair.I
	}
	return bestPair, best >= 0
}

// reverseString reverses s rune-wise for the blocked scan's suffix
// order. The scratch path calls it once per value (the keys cache), not
// once per comparison.
//
// alloc-budget: 2 rune buffer and result string, once per value in the scratch path
func reverseString(s string) string {
	r := []rune(s)
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
	return string(r)
}
