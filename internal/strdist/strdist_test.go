package strdist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"Doeling", "Dowling", 1},
		{"Super Bowl XXI", "Super Bowl XXII", 1},
		{"Bromine", "Bromide", 1},
		{"Sulfur dioxide", "Sulfur trioxide", 2},
		{"H2O", "H2O2", 1},
		{"abc", "abc", 0},
		{"日本語", "日本誤", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinBounded(t *testing.T) {
	if d, ok := LevenshteinBounded("kitten", "sitting", 3); !ok || d != 3 {
		t.Errorf("bounded(3) = (%d,%v)", d, ok)
	}
	if d, ok := LevenshteinBounded("kitten", "sitting", 2); ok {
		t.Errorf("bounded(2) = (%d,%v), want not-ok", d, ok)
	}
	if _, ok := LevenshteinBounded("short", "a much longer string", 3); ok {
		t.Error("length-difference prune failed")
	}
	if d, ok := LevenshteinBounded("same", "same", 0); !ok || d != 0 {
		t.Errorf("bounded(0) identical = (%d,%v)", d, ok)
	}
	if _, ok := LevenshteinBounded("a", "b", -1); ok {
		t.Error("negative bound should fail")
	}
	if d, ok := LevenshteinBounded("", "ab", 2); !ok || d != 2 {
		t.Errorf("bounded empty = (%d,%v)", d, ok)
	}
}

// Property: bounded agrees with full Levenshtein whenever within bound.
func TestLevenshteinBoundedAgreesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := "abcde"
	randStr := func() string {
		n := rng.Intn(12)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	for trial := 0; trial < 2000; trial++ {
		a, b := randStr(), randStr()
		want := Levenshtein(a, b)
		for _, bound := range []int{0, 1, 2, 3, 5, 20} {
			got, ok := LevenshteinBounded(a, b, bound)
			if want <= bound {
				if !ok || got != want {
					t.Fatalf("bounded(%q,%q,%d) = (%d,%v), want (%d,true)", a, b, bound, got, ok, want)
				}
			} else if ok {
				t.Fatalf("bounded(%q,%q,%d) = (%d,true), want not-ok (full=%d)", a, b, bound, got, want)
			}
		}
	}
}

// Property: Levenshtein is a metric (symmetry + triangle inequality) and
// zero iff equal.
func TestLevenshteinMetricProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	f := func(a, b, c string) bool {
		if len(a) > 20 {
			a = a[:20]
		}
		if len(b) > 20 {
			b = b[:20]
		}
		if len(c) > 20 {
			c = c[:20]
		}
		dab := Levenshtein(a, b)
		dba := Levenshtein(b, a)
		dac := Levenshtein(a, c)
		dcb := Levenshtein(c, b)
		if dab != dba {
			return false
		}
		if (dab == 0) != (a == b) && isValidUTF8(a) && isValidUTF8(b) {
			return false
		}
		return dab <= dac+dcb
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func isValidUTF8(s string) bool {
	return strings.ToValidUTF8(s, "") == s
}

func TestMinPairDist(t *testing.T) {
	// The Figure 4(g) scenario: one close pair, everything else far.
	vals := []string{"Kevin Doeling", "Kevin Dowling", "Alan Myerson", "Rob Morrow"}
	p, ok := MinPairDist(vals)
	if !ok || p.Dist != 1 {
		t.Fatalf("MinPairDist = %+v, %v", p, ok)
	}
	if !(p.I == 0 && p.J == 1) {
		t.Errorf("pair = (%d,%d)", p.I, p.J)
	}
	// After dropping one of them MPD jumps.
	q, ok := SecondMinPairDist(vals, 0)
	if !ok {
		t.Fatal("SecondMinPairDist not ok")
	}
	if q.Dist < 5 {
		t.Errorf("perturbed MPD = %d, want large", q.Dist)
	}
}

func TestMinPairDistSkipsDuplicates(t *testing.T) {
	vals := []string{"same", "same", "other"}
	p, ok := MinPairDist(vals)
	if !ok {
		t.Fatal("not ok")
	}
	if p.Dist == 0 {
		t.Errorf("MPD must ignore identical values, got dist 0 (%+v)", p)
	}
}

func TestMinPairDistDegenerate(t *testing.T) {
	if _, ok := MinPairDist(nil); ok {
		t.Error("empty input should not be ok")
	}
	if _, ok := MinPairDist([]string{"only"}); ok {
		t.Error("single value should not be ok")
	}
	if _, ok := MinPairDist([]string{"dup", "dup"}); ok {
		t.Error("all-identical values should not be ok")
	}
}

func TestSecondMinPairDistIndicesMapBack(t *testing.T) {
	vals := []string{"zzzz", "abcd", "abce", "abcf"}
	// Drop row 1; remaining close pair is rows 2,3 in original indexing.
	p, ok := SecondMinPairDist(vals, 1)
	if !ok {
		t.Fatal("not ok")
	}
	if p.I != 2 || p.J != 3 || p.Dist != 1 {
		t.Errorf("pair = %+v", p)
	}
}

func TestDifferingTokens(t *testing.T) {
	a, b := DifferingTokens("Kevin Doeling", "Kevin Dowling")
	if len(a) != 1 || len(b) != 1 || a[0] != "Doeling" || b[0] != "Dowling" {
		t.Errorf("DifferingTokens = %v, %v", a, b)
	}
	a, b = DifferingTokens("Super Bowl XXI", "Super Bowl XXII")
	if len(a) != 1 || a[0] != "XXI" || len(b) != 1 || b[0] != "XXII" {
		t.Errorf("DifferingTokens = %v, %v", a, b)
	}
	a, b = DifferingTokens("same same", "same same")
	if a != nil || b != nil {
		t.Errorf("identical values should have no differing tokens: %v %v", a, b)
	}
	// Repeated tokens are matched with multiplicity.
	a, b = DifferingTokens("x x y", "x y y")
	if len(a) != 1 || a[0] != "x" || len(b) != 1 || b[0] != "y" {
		t.Errorf("multiplicity: %v %v", a, b)
	}
}

func TestAvgDifferingTokenLen(t *testing.T) {
	if got := AvgDifferingTokenLen("Kevin Doeling", "Kevin Dowling"); got != 7 {
		t.Errorf("avg = %v, want 7", got)
	}
	if got := AvgDifferingTokenLen("Super Bowl XXI", "Super Bowl XXII"); got != 3.5 {
		t.Errorf("avg = %v, want 3.5", got)
	}
	if got := AvgDifferingTokenLen("a b", "a b"); got != 0 {
		t.Errorf("avg identical = %v, want 0", got)
	}
}

func BenchmarkLevenshteinBounded(b *testing.B) {
	x := "a reasonably long table cell value"
	y := "a reasonable long table cell walue"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		LevenshteinBounded(x, y, 2)
	}
}

func BenchmarkMinPairDist100(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]string, 100)
	for i := range vals {
		vals[i] = randomWord(rng, 8)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinPairDist(vals)
	}
}

func randomWord(rng *rand.Rand, n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte(byte('a' + rng.Intn(26)))
	}
	return b.String()
}
