package synth

import (
	"reflect"
	"testing"
)

func TestLearnConcat(t *testing.T) {
	// Figure 13: id -> "Malaysia Federal Route <id>".
	xs := []string{"736", "737", "738", "739", "740"}
	ys := []string{
		"Malaysia Federal Route 736",
		"Malaysia Federal Route 737",
		"Malaysia Federal Route 738",
		"Malaysia Federal Route 739",
		"Malaysia Federal Route 740",
	}
	fit, ok := Learn(xs, ys, 0.6)
	if !ok {
		t.Fatal("Learn failed")
	}
	if fit.Conforming != 1 {
		t.Errorf("Conforming = %v", fit.Conforming)
	}
	c, isConcat := fit.Program.(Concat)
	if !isConcat || c.Prefix != "Malaysia Federal Route " || c.Suffix != "" {
		t.Errorf("program = %v", fit.Program)
	}
}

func TestLearnConcatDetectsViolation(t *testing.T) {
	// Figure 13's real error: shield "738" next to "...Route 748".
	xs := []string{"736", "737", "738", "739", "740"}
	ys := []string{
		"Malaysia Federal Route 736",
		"Malaysia Federal Route 737",
		"Malaysia Federal Route 748", // mismatch
		"Malaysia Federal Route 739",
		"Malaysia Federal Route 740",
	}
	fit, ok := Learn(xs, ys, 0.6)
	if !ok {
		t.Fatal("Learn failed")
	}
	if !reflect.DeepEqual(fit.Violations, []int{2}) {
		t.Errorf("Violations = %v", fit.Violations)
	}
	if fit.Conforming != 0.8 {
		t.Errorf("Conforming = %v", fit.Conforming)
	}
}

func TestLearnSplit(t *testing.T) {
	// Appendix D: "Doe, John" -> "Doe".
	xs := []string{"Doe, John", "Smith, Jane", "Keane, Andrew"}
	ys := []string{"Doe", "Smith", "Keane"}
	fit, ok := Learn(xs, ys, 0.9)
	if !ok {
		t.Fatal("Learn failed")
	}
	s, isSplit := fit.Program.(SplitSelect)
	if !isSplit || s.Sep != ", " || s.Index != 0 {
		t.Errorf("program = %v", fit.Program)
	}
	if fit.Conforming != 1 {
		t.Errorf("Conforming = %v", fit.Conforming)
	}
}

func TestLearnSplitSecondField(t *testing.T) {
	xs := []string{"Doe, John", "Smith, Jane"}
	ys := []string{"John", "Jane"}
	fit, ok := Learn(xs, ys, 0.9)
	if !ok {
		t.Fatal("Learn failed")
	}
	s, isSplit := fit.Program.(SplitSelect)
	if !isSplit || s.Index != 1 {
		t.Errorf("program = %v", fit.Program)
	}
}

func TestLearnIdentityAndCase(t *testing.T) {
	fit, ok := Learn([]string{"a", "b"}, []string{"a", "b"}, 1)
	if !ok {
		t.Fatal("identity not learned")
	}
	if _, isID := fit.Program.(Identity); !isID {
		t.Errorf("program = %v", fit.Program)
	}
	fit, ok = Learn([]string{"ab", "cd"}, []string{"AB", "CD"}, 1)
	if !ok {
		t.Fatal("upper not learned")
	}
	if c, isCase := fit.Program.(CaseTransform); !isCase || !c.Upper {
		t.Errorf("program = %v", fit.Program)
	}
}

func TestLearnRejectsUnrelated(t *testing.T) {
	xs := []string{"alpha", "beta", "gamma", "delta"}
	ys := []string{"1", "7", "42", "9000"}
	if fit, ok := Learn(xs, ys, 0.6); ok {
		t.Errorf("unrelated columns learned program %v (%.2f conforming)", fit.Program, fit.Conforming)
	}
}

func TestLearnDegenerate(t *testing.T) {
	if _, ok := Learn(nil, nil, 0.5); ok {
		t.Error("empty input should fail")
	}
	if _, ok := Learn([]string{"a"}, []string{"a", "b"}, 0.5); ok {
		t.Error("length mismatch should fail")
	}
}

func TestSplitSelectDomain(t *testing.T) {
	p := SplitSelect{Sep: ", ", Index: 1}
	if _, ok := p.Apply("no separator here"); ok {
		t.Error("missing separator should be out of domain")
	}
	if out, ok := p.Apply("a, b"); !ok || out != "b" {
		t.Errorf("Apply = %q, %v", out, ok)
	}
}

func TestProgramStrings(t *testing.T) {
	progs := []Program{
		Identity{},
		Concat{Prefix: "p", Suffix: "s"},
		SplitSelect{Sep: ",", Index: 2},
		CaseTransform{Upper: true},
		CaseTransform{},
	}
	for _, p := range progs {
		if p.String() == "" {
			t.Errorf("%T has empty String()", p)
		}
	}
}

func TestLearnSkipsEmptyRows(t *testing.T) {
	xs := []string{"736", "", "738"}
	ys := []string{"Route 736", "", "Route 738"}
	fit, ok := Learn(xs, ys, 0.9)
	if !ok {
		t.Fatal("Learn failed")
	}
	if fit.Conforming != 1 {
		t.Errorf("Conforming = %v (empty rows must not count as violations)", fit.Conforming)
	}
}
