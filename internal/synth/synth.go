// Package synth implements the program-synthesis substrate behind the
// FD-synthesis detector (Appendix D): given two columns X and Y it learns
// an explicit programmatic relationship — concatenation with literal
// affixes, split-and-select, or case transforms — that holds for a
// majority of rows. An explicit program "makes sure that a relationship
// really exists between the columns" (App. D), which is what lifts
// FD-synthesis precision over classical FD in Figure 12.
package synth

import (
	"fmt"
	"strings"
)

// Program transforms an input cell value to an output cell value.
type Program interface {
	// Apply runs the program; ok=false means the input is outside the
	// program's domain (e.g. the separator is missing).
	Apply(in string) (out string, ok bool)
	// String renders the program for humans ("concat(\"Route \", x)").
	String() string
}

// Identity copies the input.
type Identity struct{}

// Apply implements Program.
func (Identity) Apply(in string) (string, bool) { return in, true }

// String implements Program.
func (Identity) String() string { return "x" }

// Concat produces Prefix + x + Suffix.
type Concat struct {
	Prefix, Suffix string
}

// Apply implements Program.
func (c Concat) Apply(in string) (string, bool) { return c.Prefix + in + c.Suffix, true }

// String implements Program.
func (c Concat) String() string { return fmt.Sprintf("concat(%q, x, %q)", c.Prefix, c.Suffix) }

// SplitSelect splits x on Sep and returns field Index.
type SplitSelect struct {
	Sep   string
	Index int
}

// Apply implements Program.
func (s SplitSelect) Apply(in string) (string, bool) {
	parts := strings.Split(in, s.Sep)
	if s.Index < 0 || s.Index >= len(parts) || len(parts) < 2 {
		return "", false
	}
	return parts[s.Index], true
}

// String implements Program.
func (s SplitSelect) String() string { return fmt.Sprintf("split(x, %q)[%d]", s.Sep, s.Index) }

// CaseTransform upper- or lower-cases x.
type CaseTransform struct{ Upper bool }

// Apply implements Program.
func (c CaseTransform) Apply(in string) (string, bool) {
	if c.Upper {
		return strings.ToUpper(in), true
	}
	return strings.ToLower(in), true
}

// String implements Program.
func (c CaseTransform) String() string {
	if c.Upper {
		return "upper(x)"
	}
	return "lower(x)"
}

// Fit is the result of learning a program over example pairs.
type Fit struct {
	Program Program
	// Conforming is the fraction of rows the program reproduces exactly.
	Conforming float64
	// Violations lists the row indices the program does not reproduce.
	Violations []int
}

// separators tried by split-program enumeration, most specific first.
var separators = []string{", ", " - ", "/", "-", ": ", ", ", " "}

// maxSplitIndex bounds the field index tried for split programs.
const maxSplitIndex = 4

// Learn searches the program space for the best program mapping xs to ys
// row-wise, requiring at least minConforming fraction of exact matches.
// It returns ok=false when no program clears the bar. Empty rows are
// skipped from scoring (they neither support nor violate).
//
// The search is programming-by-example in miniature: candidate programs
// are instantiated from the first non-empty example rows and then
// verified against all rows, as in FlashFill-style synthesis [45, 62, 81].
func Learn(xs, ys []string, minConforming float64) (Fit, bool) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return Fit{}, false
	}
	cands := candidates(xs, ys)
	// A program must reach minConforming; once it has accumulated more
	// violations than that allows, scoring can stop early.
	maxViolations := int(float64(len(xs))*(1-minConforming)) + 1
	best := Fit{Conforming: -1}
	for _, p := range cands {
		fit, ok := score(p, xs, ys, maxViolations)
		if ok && fit.Conforming > best.Conforming {
			best = fit
		}
	}
	if best.Conforming < minConforming || best.Program == nil {
		return Fit{}, false
	}
	return best, true
}

// candidates instantiates candidate programs from example rows.
func candidates(xs, ys []string) []Program {
	var out []Program
	out = append(out, Identity{}, CaseTransform{Upper: true}, CaseTransform{Upper: false})

	// Concat: derive prefix/suffix from up to 3 example rows where x is a
	// non-empty substring of y.
	seen := map[string]bool{}
	derived := 0
	for i := 0; i < len(xs) && derived < 3; i++ {
		x, y := xs[i], ys[i]
		if x == "" || y == "" {
			continue
		}
		idx := strings.Index(y, x)
		if idx < 0 {
			continue
		}
		c := Concat{Prefix: y[:idx], Suffix: y[idx+len(x):]}
		key := "c\x00" + c.Prefix + "\x00" + c.Suffix
		if !seen[key] {
			seen[key] = true
			out = append(out, c)
			derived++
		}
	}

	// SplitSelect: enumerate separators and indices bounded by examples.
	for _, sep := range separators {
		for idx := 0; idx < maxSplitIndex; idx++ {
			key := fmt.Sprintf("s\x00%s\x00%d", sep, idx)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, SplitSelect{Sep: sep, Index: idx})
		}
	}
	return out
}

func score(p Program, xs, ys []string, maxViolations int) (Fit, bool) {
	fit := Fit{Program: p}
	scored := 0
	for i := range xs {
		if xs[i] == "" && ys[i] == "" {
			continue
		}
		scored++
		got, ok := p.Apply(xs[i])
		if !ok || got != ys[i] {
			fit.Violations = append(fit.Violations, i)
			if len(fit.Violations) > maxViolations {
				return Fit{}, false
			}
		}
	}
	if scored == 0 {
		fit.Conforming = 0
		return fit, true
	}
	fit.Conforming = float64(scored-len(fit.Violations)) / float64(scored)
	return fit, true
}
