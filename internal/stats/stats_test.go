package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMeanMedian(t *testing.T) {
	xs := []float64{3, 1, 2}
	if Mean(xs) != 2 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Median(xs) != 2 {
		t.Errorf("Median = %v", Median(xs))
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Errorf("even Median = %v", Median([]float64{4, 1, 3, 2}))
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Median(nil)) {
		t.Error("empty input should give NaN")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

// Example 3 of the paper: MAD of the election column C- is 4.68 and of the
// population column C+ is 1398.
func TestMADPaperExample3(t *testing.T) {
	cMinus := []float64{43, 22, 9, 5, 0.76, 0.32, 0.30}
	if got := MAD(cMinus); !almostEqual(got, 4.68, 1e-9) {
		t.Errorf("MAD(C-) = %v, want 4.68", got)
	}
	// The paper's printed Example 3 numbers for C+ are internally
	// inconsistent (it lists median 11352 but deviation 1977 for 11329);
	// we assert the true values for the printed cells.
	cPlus := []float64{8011, 8.716, 9954, 11895, 11329, 11352, 11709}
	if got := Median(cPlus); got != 11329 {
		t.Errorf("Median(C+) = %v, want 11329", got)
	}
	if got := MAD(cPlus); got != 566 {
		t.Errorf("MAD(C+) = %v, want 566", got)
	}
}

// Example 4 of the paper: both columns have max MAD-score ~8.1.
func TestMADScorePaperExample4(t *testing.T) {
	cMinus := []float64{43, 22, 9, 5, 0.76, 0.32, 0.30}
	if got := MADScore(43, cMinus); !almostEqual(got, 8.12, 0.01) {
		t.Errorf("MADScore(43, C-) = %v, want ~8.1", got)
	}
	// For the printed C+ cells the true max MAD-score is ~20 (the paper's
	// ~8.1 follows from its inconsistent Example 3 arithmetic); what
	// matters is that the "8.716" cell is the argmax.
	cPlus := []float64{8011, 8.716, 9954, 11895, 11329, 11352, 11709}
	score, arg := MaxMAD(cPlus)
	if arg != 1 {
		t.Errorf("MaxMAD argmax = %d, want 1 (the 8.716 cell)", arg)
	}
	if !almostEqual(score, 20.0, 0.01) {
		t.Errorf("MaxMAD score = %v, want ~20.0", score)
	}
}

func TestSD(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := SD(xs); !almostEqual(got, 2.138, 0.001) {
		t.Errorf("SD = %v", got)
	}
	if !math.IsNaN(SD([]float64{1})) {
		t.Error("SD of single value should be NaN")
	}
}

func TestDispersionScoreDegenerate(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	if got := MADScore(5, xs); got != 0 {
		t.Errorf("score at center with zero MAD = %v, want 0", got)
	}
	if got := MADScore(6, xs); !math.IsInf(got, 1) {
		t.Errorf("score off-center with zero MAD = %v, want +Inf", got)
	}
}

func TestQuantileIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("Quantile(1) = %v", got)
	}
	if got := IQR(xs); got != 2 {
		t.Errorf("IQR = %v", got)
	}
	if !math.IsNaN(Quantile(xs, 1.5)) {
		t.Error("out-of-range q should be NaN")
	}
}

func TestMaxSDvsMaxMAD(t *testing.T) {
	// One huge outlier inflates SD, shrinking SD-scores relative to the
	// robust MAD-score — the core argument for MAD in [48].
	xs := []float64{10, 11, 12, 10, 11, 1000}
	sdScore, _ := MaxSD(xs)
	madScore, arg := MaxMAD(xs)
	if arg != 5 {
		t.Fatalf("MaxMAD argmax = %d", arg)
	}
	if madScore <= sdScore {
		t.Errorf("MAD score %v should exceed SD score %v for a masked outlier", madScore, sdScore)
	}
}

func TestSkewness(t *testing.T) {
	sym := []float64{1, 2, 3, 4, 5}
	if got := Skewness(sym); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Skewness(symmetric) = %v", got)
	}
	right := []float64{1, 1, 1, 2, 10}
	if Skewness(right) <= 0 {
		t.Errorf("Skewness(right-tailed) = %v, want > 0", Skewness(right))
	}
	if Skewness([]float64{1, 2}) != 0 {
		t.Error("Skewness of n<3 should be 0")
	}
	if Skewness([]float64{3, 3, 3}) != 0 {
		t.Error("Skewness of constant data should be 0")
	}
}

func TestLogTransformFits(t *testing.T) {
	// Log-normal-ish data fits better in log space.
	logNormal := []float64{1, 2, 3, 5, 8, 13, 30, 80, 200, 1000}
	if !LogTransformFits(logNormal) {
		t.Error("log-normal data should fit log transform")
	}
	// Uniform-ish symmetric data does not.
	uniform := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90}
	if LogTransformFits(uniform) {
		t.Error("uniform data should not fit log transform")
	}
	if LogTransformFits([]float64{-1, 2, 3, 4}) {
		t.Error("non-positive data can never fit")
	}
	if LogTransformFits([]float64{1, 2}) {
		t.Error("too-short data can never fit")
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x  float64
		p  float64
		ge int
		le int
	}{
		{0, 0, 4, 0},
		{1, 0.25, 4, 1},
		{2, 0.75, 3, 3},
		{2.5, 0.75, 1, 3},
		{3, 1, 1, 4},
		{9, 1, 0, 4},
	}
	for _, c := range cases {
		if got := e.P(c.x); got != c.p {
			t.Errorf("P(%v) = %v, want %v", c.x, got, c.p)
		}
		if got := e.CountAtLeast(c.x); got != c.ge {
			t.Errorf("CountAtLeast(%v) = %d, want %d", c.x, got, c.ge)
		}
		if got := e.CountAtMost(c.x); got != c.le {
			t.Errorf("CountAtMost(%v) = %d, want %d", c.x, got, c.le)
		}
	}
	if !math.IsNaN(NewECDF(nil).P(1)) {
		t.Error("empty ECDF P should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 10}, 5)
	if h.N != 10 {
		t.Errorf("N = %d", h.N)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Errorf("sum of counts = %d", total)
	}
	if h.Counts[4] == 0 {
		t.Error("max value should land in last bin")
	}
	hc := NewHistogram([]float64{5, 5, 5}, 4)
	if hc.Counts[0] != 3 {
		t.Errorf("constant data should all land in bin 0: %v", hc.Counts)
	}
	he := NewHistogram(nil, 0)
	if he.N != 0 || len(he.Counts) != 1 {
		t.Errorf("empty histogram: %+v", he)
	}
}

func TestKDE(t *testing.T) {
	xs := []float64{1, 1.1, 0.9, 1.05, 0.95, 5}
	k := NewKDE(xs)
	if k.Density(1) <= k.Density(3) {
		t.Error("density should be higher near the cluster")
	}
	if p := k.TailProb(0); !almostEqual(p, 1, 0.05) {
		t.Errorf("TailProb(0) = %v, want ~1", p)
	}
	if p := k.TailProb(10); p > 0.05 {
		t.Errorf("TailProb(10) = %v, want ~0", p)
	}
	if !math.IsNaN(NewKDE(nil).TailProb(1)) {
		t.Error("empty KDE TailProb should be NaN")
	}
}

// Property: MaxMAD's argmax always points at a value whose score equals the
// returned max.
func TestMaxMADProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		score, arg := MaxMAD(xs)
		if arg < 0 || arg >= len(xs) {
			return false
		}
		got := MADScore(xs[arg], xs)
		return got == score || (math.IsInf(got, 1) && math.IsInf(score, 1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ECDF.CountAtLeast(x) + count of values strictly below x equals n.
func TestECDFCountsProperty(t *testing.T) {
	f := func(xs []float64, x float64) bool {
		clean := xs[:0]
		for _, v := range xs {
			if !math.IsNaN(v) {
				clean = append(clean, v)
			}
		}
		if math.IsNaN(x) {
			return true
		}
		e := NewECDF(clean)
		below := 0
		for _, v := range clean {
			if v < x {
				below++
			}
		}
		return e.CountAtLeast(x)+below == len(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Quantile is monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, q1, q2 float64) bool {
		clean := xs[:0]
		for _, v := range xs {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if math.IsNaN(q1) || math.IsNaN(q2) {
			return true
		}
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(clean, q1) <= Quantile(clean, q2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDFMatchesSort(t *testing.T) {
	xs := []float64{5, 3, 8, 1, 9, 2}
	e := NewECDF(xs)
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, v := range s {
		if got := e.CountAtMost(v); got < i+1 {
			t.Errorf("CountAtMost(%v) = %d, want >= %d", v, got, i+1)
		}
	}
}
