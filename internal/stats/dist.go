package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function over a fixed
// sample. The zero value is unusable; build with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from a sample (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// P returns the empirical P(X <= x).
func (e *ECDF) P(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// CountAtLeast returns #{X >= x} in the sample.
func (e *ECDF) CountAtLeast(x float64) int {
	return len(e.sorted) - sort.SearchFloat64s(e.sorted, x)
}

// CountAtMost returns #{X <= x} in the sample.
func (e *ECDF) CountAtMost(x float64) int {
	return sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
}

// Histogram is a fixed-width bin count over [Min, Max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	N        int
}

// NewHistogram builds a histogram with the given number of bins over the
// sample's range. Values exactly at Max land in the last bin.
func NewHistogram(xs []float64, bins int) *Histogram {
	if bins <= 0 {
		bins = 1
	}
	h := &Histogram{Counts: make([]int, bins)}
	if len(xs) == 0 {
		return h
	}
	h.Min, h.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	for _, x := range xs {
		h.Counts[h.bin(x)]++
		h.N++
	}
	return h
}

func (h *Histogram) bin(x float64) int {
	width := h.Max - h.Min
	if width == 0 {
		return 0
	}
	i := int(float64(len(h.Counts)) * (x - h.Min) / width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// KDE is a Gaussian kernel density estimator. The paper evaluates KDE as an
// alternative smoothing strategy and rejects it in favor of range-based
// predicates (§3.1); we keep it for the smoothing ablation bench.
type KDE struct {
	sample    []float64
	Bandwidth float64
}

// NewKDE builds a KDE with Silverman's rule-of-thumb bandwidth.
func NewKDE(xs []float64) *KDE {
	s := append([]float64(nil), xs...)
	k := &KDE{sample: s}
	n := float64(len(s))
	if n < 2 {
		k.Bandwidth = 1
		return k
	}
	sd := SD(s)
	iqr := IQR(s)
	a := sd
	if iqr > 0 && iqr/1.34 < a {
		a = iqr / 1.34
	}
	if a <= 0 || math.IsNaN(a) {
		a = 1
	}
	k.Bandwidth = 0.9 * a * math.Pow(n, -0.2)
	return k
}

// Density returns the estimated density at x.
func (k *KDE) Density(x float64) float64 {
	if len(k.sample) == 0 || k.Bandwidth <= 0 {
		return 0
	}
	const invSqrt2Pi = 0.3989422804014327
	var s float64
	for _, xi := range k.sample {
		u := (x - xi) / k.Bandwidth
		s += invSqrt2Pi * math.Exp(-0.5*u*u)
	}
	return s / (float64(len(k.sample)) * k.Bandwidth)
}

// TailProb returns the estimated P(X >= x) by numeric integration of the
// Gaussian mixture's survival function (exact for a Gaussian KDE).
func (k *KDE) TailProb(x float64) float64 {
	if len(k.sample) == 0 {
		return math.NaN()
	}
	var s float64
	for _, xi := range k.sample {
		u := (x - xi) / (k.Bandwidth * math.Sqrt2)
		s += 0.5 * math.Erfc(u)
	}
	return s / float64(len(k.sample))
}
