// Package stats implements the statistical primitives Uni-Detect builds on:
// robust dispersion measures (median/MAD, §3.1), classical moments
// (mean/SD), quantiles and IQR, outlier scores, the log-transform fit test
// used as a featurization dimension, and empirical distribution helpers
// (histograms, ECDF, kernel density estimation).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// SD returns the sample standard deviation (N-1 denominator, Equation 6),
// or NaN if fewer than two values are given.
func SD(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Median returns the median of xs, or NaN for empty input. The input is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return medianSorted(s)
}

func medianSorted(s []float64) float64 {
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation from the median (Equation 7),
// or NaN for empty input.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation between closest ranks, or NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// IQR returns the interquartile range Q3-Q1, or NaN for empty input.
func IQR(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, 0.75) - quantileSorted(s, 0.25)
}

// SDScore returns |v - mean| / SD (Equation 8). If the SD is zero or
// undefined the score is 0 for v == mean and +Inf otherwise.
func SDScore(v float64, xs []float64) float64 {
	return dispersionScore(v, Mean(xs), SD(xs))
}

// MADScore returns |v - median| / MAD (Equation 9), with the same
// degenerate-dispersion convention as SDScore.
func MADScore(v float64, xs []float64) float64 {
	return dispersionScore(v, Median(xs), MAD(xs))
}

func dispersionScore(v, center, disp float64) float64 {
	d := math.Abs(v - center)
	if math.IsNaN(disp) || disp == 0 {
		if d == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return d / disp
}

// IQRScore returns |v - median| / IQR, the interquartile-range analogue
// of the MAD score ([65], mentioned as an alternative dispersion in §3.1).
func IQRScore(v float64, xs []float64) float64 {
	return dispersionScore(v, Median(xs), IQR(xs))
}

// MaxMAD returns the largest MADScore over xs together with the index of
// the most outlying value (Equation 10). It returns (NaN, -1) for empty
// input.
func MaxMAD(xs []float64) (score float64, argmax int) {
	return maxScore(xs, Median(xs), MAD(xs))
}

// MaxSD is the SD analogue of MaxMAD.
func MaxSD(xs []float64) (score float64, argmax int) {
	return maxScore(xs, Mean(xs), SD(xs))
}

// MaxIQR is the IQR analogue of MaxMAD.
func MaxIQR(xs []float64) (score float64, argmax int) {
	return maxScore(xs, Median(xs), IQR(xs))
}

func maxScore(xs []float64, center, disp float64) (float64, int) {
	if len(xs) == 0 {
		return math.NaN(), -1
	}
	best, arg := math.Inf(-1), -1
	for i, x := range xs {
		s := dispersionScore(x, center, disp)
		if s > best {
			best, arg = s, i
		}
	}
	return best, arg
}

// LogTransformFits reports whether a log transform makes the (positive)
// data "more normal", measured by comparing the skewness magnitude of the
// raw values against that of their logarithms. Columns with any
// non-positive value never fit. This is the featurization dimension of
// §3.1 ("whether logarithm-transform better fits the data").
func LogTransformFits(xs []float64) bool {
	if len(xs) < 3 {
		return false
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return false
		}
		logs[i] = math.Log(x)
	}
	return math.Abs(Skewness(logs)) < math.Abs(Skewness(xs))
}

// Skewness returns the sample skewness of xs (Fisher-Pearson, adjusted),
// or 0 when undefined (fewer than 3 values or zero variance).
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return 0
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// ApproxEq reports whether a and b are within tol of each other. It is the
// sanctioned epsilon comparison for LR scores, p-values and θ thresholds:
// raw == / != on computed floats is rejected by unilint's floatcompare
// analyzer because last-ulp drift between algebraically equal code paths
// silently flips verdicts.
func ApproxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

// SameFloat reports bitwise equality of two floats. Unlike ==, it is
// NaN-safe (NaN equals itself) and therefore gives sorts a total order,
// which is what deterministic tie-breaking on computed scores needs.
func SameFloat(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// IsWhole reports whether x has no fractional part (and so can be printed
// as an integer losslessly).
func IsWhole(x float64) bool {
	return x-math.Trunc(x) == 0
}
