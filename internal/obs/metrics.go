package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The nil *Counter (what a
// nil registry hands out) is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n; negative deltas are ignored (counters
// only go up — a decrease is always a caller bug).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count; 0 for a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move both ways (in-flight
// requests, queue depth). The nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative allowed).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value; 0 for a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// CounterVec is a family of counters keyed by one label value
// (per-detector, per-phase, per-status-class). The nil *CounterVec hands
// out nil counters.
type CounterVec struct {
	label string

	mu sync.Mutex
	// guarded by mu
	children map[string]*Counter
}

// With returns the counter for one label value, creating it on first
// use. Hot paths should cache the child rather than re-resolve per
// observation.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// snapshot returns (label value, counter) pairs sorted by label value.
func (v *CounterVec) snapshot() []labelled[*Counter] {
	v.mu.Lock()
	defer v.mu.Unlock()
	return sortChildren(v.children)
}

// HistogramVec is a family of histograms keyed by one label value. All
// children share the vec's bucket bounds. The nil *HistogramVec hands
// out nil histograms.
type HistogramVec struct {
	label   string
	buckets []float64

	mu sync.Mutex
	// guarded by mu
	children map[string]*Histogram
}

// With returns the histogram for one label value, creating it on first
// use.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[value]
	if !ok {
		h = newHistogram(v.buckets)
		v.children[value] = h
	}
	return h
}

// snapshot returns (label value, histogram) pairs sorted by label value.
func (v *HistogramVec) snapshot() []labelled[*Histogram] {
	v.mu.Lock()
	defer v.mu.Unlock()
	return sortChildren(v.children)
}

// labelled pairs one label value with its child collector.
type labelled[T any] struct {
	value string
	child T
}

func sortChildren[T any](m map[string]T) []labelled[T] {
	out := make([]labelled[T], 0, len(m))
	for v, c := range m {
		out = append(out, labelled[T]{value: v, child: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}
