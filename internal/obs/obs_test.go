package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced Clock for deterministic tests.
type fakeClock struct {
	mu sync.Mutex
	// guarded by mu
	now time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "h")
	g := r.Gauge("x", "h")
	h := r.Histogram("x_seconds", "h", nil)
	cv := r.CounterVec("xv_total", "h", "k")
	hv := r.HistogramVec("xv_seconds", "h", "k", nil)
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(-2)
	h.Observe(1.5)
	cv.With("a").Inc()
	hv.With("a").Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics must observe nothing")
	}
	if r.Now() != 0 {
		t.Fatal("nil registry Now must be 0")
	}
	var sb strings.Builder
	if err := r.WritePromText(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition = %q, %v", sb.String(), err)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "same")
	b := r.Counter("dup_total", "same")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("shared counter = %d, want 2", b.Value())
	}
}

func TestRegistryMismatchPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"kind", func(r *Registry) { r.Counter("m_total", "h"); r.Gauge("m_total", "h") }},
		{"help", func(r *Registry) { r.Counter("m_total", "h"); r.Counter("m_total", "other") }},
		{"label", func(r *Registry) { r.CounterVec("m_total", "h", "a"); r.CounterVec("m_total", "h", "b") }},
		{"badname", func(r *Registry) { r.Counter("9bad", "h") }},
		{"badlabel", func(r *Registry) { r.CounterVec("m_total", "h", "le-no") }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("neg_total", "h")
	c.Add(5)
	c.Add(-3)
	c.Add(0)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestValidNameAndLabel(t *testing.T) {
	for _, ok := range []string{"a", "foo_bar_total", "A9", "_x", ":colon:ok"} {
		if !ValidName(ok) {
			t.Errorf("ValidName(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "9a", "a-b", "a b", "a.b"} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true, want false", bad)
		}
	}
	if ValidLabel(":x") {
		t.Error("colons are not legal in label names")
	}
	if !ValidLabel("detector") {
		t.Error("ValidLabel(detector) must hold")
	}
}

// TestHistogramBucketIndex cross-checks the frexp fast path against the
// generic binary search over many values and edge cases.
func TestHistogramBucketIndex(t *testing.T) {
	fast := newHistogram(DurationBuckets)
	if !fast.pow2 {
		t.Fatal("DurationBuckets must take the frexp path")
	}
	slow := newHistogram(DurationBuckets)
	slow.pow2 = false
	values := []float64{
		0, -1, 1e-9, math.Ldexp(1, -20), math.Ldexp(1, -20) + 1e-12,
		0.5, 1, 1.5, 2, 63.999, 64, 64.001, 1e9,
	}
	for e := -25; e <= 10; e++ {
		values = append(values, math.Ldexp(1, e), math.Ldexp(1.3, e), math.Ldexp(0.999, e))
	}
	for _, v := range values {
		if got, want := fast.bucket(v), slow.bucket(v); got != want {
			t.Errorf("bucket(%g): frexp=%d search=%d", v, got, want)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if want := []uint64{2, 3, 4, 5}; len(cum) != len(want) {
		t.Fatalf("cumulative = %v", cum)
	} else {
		for i := range want {
			if cum[i] != want[i] {
				t.Fatalf("cumulative = %v, want %v", cum, want)
			}
		}
	}
	if sum < 105.999 || 106.001 < sum {
		t.Fatalf("sum = %v, want 106", sum)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry().WithClock(clk)
	r.Counter("rt_requests_total", "Requests seen.").Add(7)
	r.Gauge("rt_inflight", "In flight.").Set(3)
	r.CounterVec("rt_findings_total", "Findings.", "detector").With("spelling").Add(4)
	r.CounterVec("rt_findings_total", "Findings.", "detector").With("outlier").Inc()
	h := r.HistogramVec("rt_latency_seconds", "Latency.", "detector", PowerOfTwoBuckets(-4, 2))
	h.With("fd").Observe(0.1)
	h.With("fd").Observe(3)
	var sb strings.Builder
	if err := r.WritePromText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	fams, err := ParseProm(text)
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, text)
	}
	if s, ok := Sample(fams, "rt_requests_total", nil); !ok || s.Value != 7 {
		t.Fatalf("rt_requests_total = %+v, %v", s, ok)
	}
	if s, ok := Sample(fams, "rt_findings_total", map[string]string{"detector": "spelling"}); !ok || s.Value != 4 {
		t.Fatalf("spelling findings = %+v, %v", s, ok)
	}
	if s, ok := Sample(fams, "rt_latency_seconds_count", map[string]string{"detector": "fd"}); !ok || s.Value != 2 {
		t.Fatalf("latency count = %+v, %v", s, ok)
	}
	if f := fams["rt_latency_seconds"]; f.Type != "histogram" {
		t.Fatalf("latency type = %q", f.Type)
	}

	// Determinism: identical state, byte-identical output.
	var sb2 strings.Builder
	if err := r.WritePromText(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != text {
		t.Fatal("exposition is not byte-stable")
	}
}

func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "line one\nline \\ two", "site").With(`a"b\c` + "\nd").Inc()
	var sb strings.Builder
	if err := r.WritePromText(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseProm(sb.String())
	if err != nil {
		t.Fatalf("ParseProm: %v\n%s", err, sb.String())
	}
	if got := fams["esc_total"].Help; got != "line one\nline \\ two" {
		t.Fatalf("help round-trip = %q", got)
	}
	if s, ok := Sample(fams, "esc_total", nil); !ok || s.Labels["site"] != `a"b\c`+"\nd" {
		t.Fatalf("label round-trip = %+v", s.Labels)
	}
}

func TestSpans(t *testing.T) {
	clk := &fakeClock{}
	r := NewRegistry().WithClock(clk)
	tr := NewTracer(r, 4)
	ctx := WithTracer(context.Background(), tr)

	sp := StartSpan(ctx, "train")
	clk.advance(2 * time.Second)
	sp.Tag("shards", 8)
	sp.End()
	sp.End() // double End is ignored

	spans, total := tr.Finished()
	if total != 1 || len(spans) != 1 {
		t.Fatalf("finished = %d/%d, want 1/1", len(spans), total)
	}
	got := spans[0]
	if got.Name != "train" || got.Duration != 2*time.Second || len(got.Tags) != 1 || got.Tags[0] != "shards=8" {
		t.Fatalf("span = %+v", got)
	}
	if h := r.HistogramVec("unidetect_span_seconds", "Span durations by span name.", "span", nil); h.With("train").Count() != 1 {
		t.Fatal("span histogram missed the observation")
	}

	// No tracer in context: everything no-ops.
	none := StartSpan(context.Background(), "ghost")
	none.Tag("k", "v")
	none.End()
}

func TestTracerRingBounds(t *testing.T) {
	tr := NewTracer(nil, 3)
	for i := 0; i < 5; i++ {
		sp := tr.Start("s")
		sp.Tag("i", i)
		sp.End()
	}
	spans, total := tr.Finished()
	if total != 5 || len(spans) != 3 {
		t.Fatalf("ring = %d spans, total %d; want 3, 5", len(spans), total)
	}
	if spans[0].Tags[0] != "i=2" || spans[2].Tags[0] != "i=4" {
		t.Fatalf("ring order wrong: %+v", spans)
	}
}

func TestFormatSpansStable(t *testing.T) {
	spans := []SpanRecord{
		{Name: "b", Start: 2 * time.Second, Duration: time.Second},
		{Name: "a", Start: time.Second, Duration: time.Second, Tags: []string{"k=v"}},
		{Name: "a", Start: time.Second, Duration: 2 * time.Second},
	}
	rev := []SpanRecord{spans[2], spans[0], spans[1]}
	if FormatSpans(spans) != FormatSpans(rev) {
		t.Fatal("FormatSpans must be order-independent")
	}
	want := "a start=1s dur=1s k=v\na start=1s dur=2s\nb start=2s dur=1s\n"
	if got := FormatSpans(spans); got != want {
		t.Fatalf("FormatSpans = %q, want %q", got, want)
	}
}

// TestConcurrentObserve exercises every collector from many goroutines;
// meaningful under -race.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "h")
	g := r.Gauge("cc_gauge", "h")
	h := r.Histogram("cc_seconds", "h", nil)
	cv := r.CounterVec("cc_vec_total", "h", "k")
	tr := NewTracer(r, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) / 100)
				cv.With([]string{"a", "b", "c"}[j%3]).Inc()
				sp := tr.Start("work")
				sp.End()
			}
		}(i)
	}
	var sb strings.Builder
	for k := 0; k < 20; k++ {
		sb.Reset()
		if err := r.WritePromText(&sb); err != nil {
			t.Error(err)
		}
	}
	wg.Wait()
	if c.Value() != 1600 {
		t.Fatalf("counter = %d, want 1600", c.Value())
	}
	if h.Count() != 1600 {
		t.Fatalf("histogram count = %d, want 1600", h.Count())
	}
	if _, err := ParseProm(func() string { sb.Reset(); _ = r.WritePromText(&sb); return sb.String() }()); err != nil {
		t.Fatalf("final exposition invalid: %v", err)
	}
}
