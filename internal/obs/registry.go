package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// kind is the exposition TYPE of a metric family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// family is one registered metric name: either a single collector (empty
// label) or a labelled vec.
type family struct {
	name  string
	help  string
	kind  kind
	label string // label name for vecs; "" for plain metrics

	collector any // *Counter, *Gauge or *Histogram when label == ""
	vec       any // *CounterVec or *HistogramVec when label != ""
}

// Registry owns a set of uniquely named metric families and the clock
// instrumentation reads. The zero value is not useful; a nil *Registry is
// a valid, fully disabled registry: every constructor returns nil and
// every nil metric is a no-op.
type Registry struct {
	clock Clock

	mu sync.Mutex
	// guarded by mu
	fams map[string]*family
}

// NewRegistry returns an empty registry on the wall clock.
func NewRegistry() *Registry {
	return &Registry{clock: NewWallClock(), fams: map[string]*family{}}
}

// WithClock sets the clock Now and span durations read, and returns the
// registry. Call before handing the registry to instrumented code.
func (r *Registry) WithClock(c Clock) *Registry {
	if r != nil && c != nil {
		r.clock = c
	}
	return r
}

// Now reads the registry's clock; 0 when the registry is nil. All
// instrumentation duration math goes through here, so a virtual clock
// makes the whole registry deterministic.
func (r *Registry) Now() time.Duration {
	if r == nil {
		return 0
	}
	return r.clock.Now()
}

// lookup returns the family registered under name after checking that
// its shape matches, creating it via mk on first use. Mismatched
// re-registration panics: two call sites disagreeing about a metric's
// meaning is a bug no test should paper over.
func (r *Registry) lookup(name, help string, k kind, label string, mk func() *family) *family {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if label != "" && !ValidLabel(label) {
		panic(fmt.Sprintf("obs: invalid label name %q on metric %q", label, name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != k || f.help != help || f.label != label {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/%q/label=%q, was %s/%q/label=%q",
				name, k, help, label, f.kind, f.help, f.label))
		}
		return f
	}
	f := mk()
	r.fams[name] = f
	return f
}

// Counter returns the counter registered under name, creating it on
// first use. Nil registry: returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindCounter, "", func() *family {
		return &family{name: name, help: help, kind: kindCounter, collector: &Counter{}}
	})
	return f.collector.(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first
// use. Nil registry: returns a nil (no-op) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindGauge, "", func() *family {
		return &family{name: name, help: help, kind: kindGauge, collector: &Gauge{}}
	})
	return f.collector.(*Gauge)
}

// Histogram returns the histogram registered under name, creating it on
// first use with the given bucket upper bounds (nil means
// DurationBuckets). Nil registry: returns a nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindHistogram, "", func() *family {
		return &family{name: name, help: help, kind: kindHistogram, collector: newHistogram(buckets)}
	})
	return f.collector.(*Histogram)
}

// CounterVec returns the counter family registered under name, keyed by
// one label, creating it on first use. Nil registry: nil vec.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindCounter, label, func() *family {
		return &family{name: name, help: help, kind: kindCounter, label: label,
			vec: &CounterVec{label: label, children: map[string]*Counter{}}}
	})
	return f.vec.(*CounterVec)
}

// HistogramVec returns the histogram family registered under name, keyed
// by one label, creating it on first use with the given bucket bounds
// (nil means DurationBuckets). Nil registry: nil vec.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if r == nil {
		return nil
	}
	f := r.lookup(name, help, kindHistogram, label, func() *family {
		return &family{name: name, help: help, kind: kindHistogram, label: label,
			vec: &HistogramVec{label: label, buckets: buckets, children: map[string]*Histogram{}}}
	})
	return f.vec.(*HistogramVec)
}

// families returns a snapshot of the registered families in name order —
// the exposition order, so /metrics output is deterministic.
func (r *Registry) families() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
