// Package obs is a zero-dependency observability subsystem: a metrics
// registry (atomic counters, gauges, lock-sharded log-bucket histograms),
// Prometheus text-format 0.0.4 exposition, and lightweight trace spans.
//
// The ROADMAP's north star is a production service under heavy traffic;
// after the fault-tolerance PR the system can *survive* chaos but cannot
// be *watched* — there was no way to ask "which detector is slow", "what
// is the LR-lookup hit rate", or "how many tables degraded this hour".
// This package is the answer, built under the same constraints as the
// rest of the codebase:
//
//   - Zero dependencies. Exposition is the Prometheus text format written
//     by hand; no client library, nothing new in go.mod.
//   - Nil is off. A nil *Registry hands out nil metrics, and every method
//     on a nil metric is a no-op — instrumented hot paths pay one pointer
//     test when observability is disabled, mirroring the nil *Injector
//     convention of internal/faultinject.
//   - Determinism is preserved. The only clock reads live behind the
//     Clock interface; under testkit.VirtualClock spans and durations are
//     pure functions of the chaos schedule, so the `deterministic`
//     analyzer can exempt this package (see its -trust flag) without
//     giving up the guarantee that instrumentation never changes model
//     bytes or findings.
//   - Registration is get-or-create. Re-requesting a metric by name
//     returns the existing instance (so per-job instrument structs can be
//     rebuilt freely); a name reused with a different type, help string
//     or label is a programmer error and panics. The `metricname`
//     analyzer statically enforces that each name literal appears at
//     exactly one constructor call site per binary.
package obs

import (
	"time"
)

// Clock abstracts elapsed-time reads so durations and spans can run
// against a virtual clock in tests. Now returns time elapsed since an
// arbitrary fixed origin (process start for the wall clock, total virtual
// sleep for testkit.VirtualClock); only differences are meaningful.
type Clock interface {
	Now() time.Duration
}

// wallClock measures real elapsed time from its creation, using the
// monotonic reading inside time.Time.
type wallClock struct {
	start time.Time
}

// NewWallClock returns a Clock reading real elapsed time. It is the
// default clock of a new Registry.
func NewWallClock() Clock {
	return &wallClock{start: time.Now()}
}

func (c *wallClock) Now() time.Duration { return time.Since(c.start) }

// ValidName reports whether name is a legal Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*). Registry constructors panic on violations;
// the metricname analyzer catches them at lint time.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ValidLabel reports whether name is a legal Prometheus label name
// ([a-zA-Z_][a-zA-Z0-9_]*).
func ValidLabel(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitmix64 is the SplitMix64 finalizer, used to pick histogram shards
// from observed-value bits without any shared state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
