package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// PromSample is one exposition line: a metric name, its labels, and the
// parsed value.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// ParseProm parses Prometheus text format 0.0.4 as produced by
// WritePromText. It is strict enough to validate our own exposition in
// end-to-end tests: every sample line must parse, every sample must
// belong to a family declared by a preceding # TYPE line, and histogram
// bucket counts must be non-decreasing in le order.
func ParseProm(text string) (map[string]*PromFamily, error) {
	fams := map[string]*PromFamily{}
	var current *PromFamily
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			f := ensureFamily(fams, name)
			f.Help = unescapeProm(help, false)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", ln+1, line)
			}
			f := ensureFamily(fams, name)
			f.Type = typ
			current = f
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		fam := familyOf(fams, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q precedes its TYPE declaration", ln+1, s.Name)
		}
		if current == nil || fam != current {
			return nil, fmt.Errorf("line %d: sample %q outside its family block", ln+1, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	for _, f := range fams {
		if err := checkBuckets(f); err != nil {
			return nil, err
		}
	}
	return fams, nil
}

func ensureFamily(fams map[string]*PromFamily, name string) *PromFamily {
	f, ok := fams[name]
	if !ok {
		f = &PromFamily{Name: name}
		fams[name] = f
	}
	return f
}

// familyOf maps a sample name to its family, stripping the histogram
// _bucket/_sum/_count suffixes when the base name is a histogram.
func familyOf(fams map[string]*PromFamily, sample string) *PromFamily {
	if f, ok := fams[sample]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suffix)
		if base == sample {
			continue
		}
		if f, ok := fams[base]; ok && f.Type == "histogram" {
			return f
		}
	}
	return nil
}

func parseSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:nameEnd]
	if !ValidName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[nameEnd:]
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label block in %q", line)
		}
		if err := parseLabels(rest[1:end], s.Labels); err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", rest, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(block string, into map[string]string) error {
	for block != "" {
		eq := strings.Index(block, "=")
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", block)
		}
		name := block[:eq]
		if name != "le" && !ValidLabel(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		block = block[eq+1:]
		if len(block) == 0 || block[0] != '"' {
			return fmt.Errorf("unquoted label value for %q", name)
		}
		// Find the closing quote, skipping escapes.
		i := 1
		for i < len(block) {
			if block[i] == '\\' {
				i += 2
				continue
			}
			if block[i] == '"' {
				break
			}
			i++
		}
		if i >= len(block) {
			return fmt.Errorf("unterminated label value for %q", name)
		}
		into[name] = unescapeProm(block[1:i], true)
		block = block[i+1:]
		block = strings.TrimPrefix(block, ",")
	}
	return nil
}

func unescapeProm(s string, quoted bool) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 >= len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case '\\':
			b.WriteByte('\\')
		case '"':
			if quoted {
				b.WriteByte('"')
			} else {
				b.WriteString(`\"`)
			}
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// checkBuckets validates histogram shape: cumulative bucket counts
// non-decreasing per label set, +Inf bucket equal to _count.
func checkBuckets(f *PromFamily) error {
	if f.Type != "histogram" {
		return nil
	}
	type series struct {
		prev float64
		inf  float64
		seen bool
	}
	buckets := map[string]*series{}
	counts := map[string]float64{}
	for _, s := range f.Samples {
		key := labelKeySansLE(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			sr, ok := buckets[key]
			if !ok {
				sr = &series{}
				buckets[key] = sr
			}
			if sr.seen && s.Value < sr.prev {
				return fmt.Errorf("histogram %s{%s}: bucket counts decrease", f.Name, key)
			}
			sr.prev, sr.seen = s.Value, true
			if s.Labels["le"] == "+Inf" {
				sr.inf = s.Value
			}
		case strings.HasSuffix(s.Name, "_count"):
			counts[key] = s.Value
		}
	}
	for key, sr := range buckets {
		if c, ok := counts[key]; !ok || c < sr.inf || sr.inf < c {
			return fmt.Errorf("histogram %s{%s}: +Inf bucket %v != count %v", f.Name, key, sr.inf, counts[key])
		}
	}
	return nil
}

func labelKeySansLE(labels map[string]string) string {
	var parts []string
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"="+v)
	}
	if len(parts) > 1 {
		// One label max in our exposition, but keep the key stable anyway.
		for i := 1; i < len(parts); i++ {
			for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
				parts[j], parts[j-1] = parts[j-1], parts[j]
			}
		}
	}
	return strings.Join(parts, ",")
}

// Sample returns the first sample of family name whose labels include
// want (nil matches any), or false. Convenience for tests asserting
// counter values out of a parsed exposition.
func Sample(fams map[string]*PromFamily, name string, want map[string]string) (PromSample, bool) {
	f := familyOf(fams, name)
	if f == nil {
		return PromSample{}, false
	}
	for _, s := range f.Samples {
		match := s.Name == name
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
			}
		}
		if match {
			return s, true
		}
	}
	return PromSample{}, false
}
