package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// SpanRecord is one finished span: what ran, when (on the tracer's
// clock), for how long, and any tags attached along the way.
type SpanRecord struct {
	Name     string
	Start    time.Duration
	Duration time.Duration
	Tags     []string // "key=value", in Tag() call order
}

// Tracer collects spans into a bounded ring and feeds their durations
// into the registry's span histogram. All time reads go through the
// registry clock, so under testkit.VirtualClock span records are pure
// functions of the chaos schedule. The nil *Tracer is a no-op.
type Tracer struct {
	reg  *Registry
	hist *HistogramVec

	mu sync.Mutex
	// guarded by mu
	ring []SpanRecord
	// guarded by mu
	next int
	// guarded by mu
	total int
}

// NewTracer returns a tracer keeping the most recent capacity finished
// spans (capacity <= 0 defaults to 256). Passing a nil registry yields a
// tracer that records spans with zero durations and no histogram.
func NewTracer(reg *Registry, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		reg:  reg,
		hist: reg.HistogramVec("unidetect_span_seconds", "Span durations by span name.", "span", nil),
		ring: make([]SpanRecord, 0, capacity),
	}
}

// Span is one in-flight operation. Create with Tracer.Start or
// obs.StartSpan, then End exactly once. The nil *Span is a no-op.
type Span struct {
	tr    *Tracer
	name  string
	start time.Duration

	mu sync.Mutex
	// guarded by mu
	tags []string
	// guarded by mu
	ended bool
}

// Start opens a span named name. Nil tracer: nil (no-op) span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, start: t.reg.Now()}
}

// Tag attaches a key=value pair to the span. Values are formatted with
// %v; tag order is preserved.
func (s *Span) Tag(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.tags = append(s.tags, key+"="+fmt.Sprint(value))
	s.mu.Unlock()
}

// End closes the span: records its duration in the span histogram and
// appends it to the tracer ring. Extra End calls are ignored.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.reg.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	tags := s.tags
	s.mu.Unlock()
	d := now - s.start
	if d < 0 {
		d = 0
	}
	s.tr.hist.With(s.name).Observe(d.Seconds())
	s.tr.record(SpanRecord{Name: s.name, Start: s.start, Duration: d, Tags: tags})
}

func (t *Tracer) record(r SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, r)
		return
	}
	t.ring[t.next] = r
	t.next = (t.next + 1) % len(t.ring)
}

// Finished returns the retained finished spans, oldest first, plus the
// total number ever finished (which may exceed the ring size).
func (t *Tracer) Finished() ([]SpanRecord, int) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out, t.total
}

// FormatSpans renders span records one per line in a stable order
// (start, then name, then duration, then tags) so two runs with the same
// virtual-clock schedule produce byte-identical dumps regardless of
// goroutine interleaving at the ring.
func FormatSpans(spans []SpanRecord) string {
	sorted := make([]SpanRecord, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Duration != b.Duration {
			return a.Duration < b.Duration
		}
		return strings.Join(a.Tags, ",") < strings.Join(b.Tags, ",")
	})
	var b strings.Builder
	for _, r := range sorted {
		fmt.Fprintf(&b, "%s start=%s dur=%s", r.Name, r.Start, r.Duration)
		if len(r.Tags) > 0 {
			b.WriteString(" ")
			b.WriteString(strings.Join(r.Tags, " "))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// tracerKey is the context key carrying the ambient tracer.
type tracerKey struct{}

// WithTracer returns ctx carrying t; StartSpan picks it up.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom returns the tracer carried by ctx, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan opens a span on the tracer carried by ctx. With no tracer in
// ctx it returns a nil (no-op) span, so call sites never branch.
func StartSpan(ctx context.Context, name string) *Span {
	return TracerFrom(ctx).Start(name)
}
