package obs

import (
	"math"
	"sync/atomic"
)

// Power-of-two bucket schemes. Fixed log-scale bounds mean Observe is a
// frexp plus two atomic adds — no search, no allocation — and exposition
// never allocates per sample either.
var (
	// DurationBuckets spans ~1µs (2^-20 s) to 64 s (2^6 s) — the range
	// from a single grid lookup to a full offline training pass.
	DurationBuckets = PowerOfTwoBuckets(-20, 6)
	// ScoreBuckets spans 2^-40 to 1, covering likelihood ratios: LR
	// values live in (0, 1] and the interesting ones are tiny.
	ScoreBuckets = PowerOfTwoBuckets(-40, 0)
)

// PowerOfTwoBuckets returns upper bounds 2^minExp .. 2^maxExp inclusive.
func PowerOfTwoBuckets(minExp, maxExp int) []float64 {
	if maxExp < minExp {
		panic("obs: bucket exponent range inverted")
	}
	out := make([]float64, 0, maxExp-minExp+1)
	for e := minExp; e <= maxExp; e++ {
		out = append(out, math.Ldexp(1, e))
	}
	return out
}

// numShards is the shard count of a histogram: enough to spread the
// cache-line traffic of concurrent Observes (detect workers, daemon
// requests) without bloating exposition, which folds shards back
// together.
const numShards = 8

// histShard is one independently updated copy of the bucket counts.
// Shards are separate allocations, so concurrent writers on different
// shards touch different cache lines.
type histShard struct {
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64   // float64 bits of the shard's value sum
}

// Histogram is a fixed-bucket, lock-sharded histogram. Writers never
// take a lock: Observe picks a shard from the value's bits and does two
// atomic operations. The nil *Histogram is a no-op.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	minExp int       // exponent of bounds[0] when power-of-two, else 0
	pow2   bool      // bounds are PowerOfTwoBuckets (O(1) indexing)
	shards [numShards]histShard
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	h := &Histogram{bounds: bounds}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds not ascending")
		}
	}
	h.pow2, h.minExp = powerOfTwoShape(bounds)
	for s := range h.shards {
		h.shards[s].counts = make([]atomic.Uint64, len(bounds)+1)
	}
	return h
}

// powerOfTwoShape detects bounds produced by PowerOfTwoBuckets, enabling
// frexp-based O(1) bucket indexing.
func powerOfTwoShape(bounds []float64) (bool, int) {
	frac, exp := math.Frexp(bounds[0])
	if frac != 0.5 { //lint:ignore floatcompare exact representation test: 2^k has fraction exactly 0.5
		return false, 0
	}
	minExp := exp - 1
	for i, b := range bounds {
		if b != math.Ldexp(1, minExp+i) { //lint:ignore floatcompare exact power-of-two identity, no arithmetic involved
			return false, 0
		}
	}
	return true, minExp
}

// bucket returns the index of the first bound >= v (len(bounds) for the
// +Inf bucket).
func (h *Histogram) bucket(v float64) int {
	if v <= h.bounds[0] {
		return 0
	}
	if v > h.bounds[len(h.bounds)-1] {
		return len(h.bounds)
	}
	if h.pow2 {
		// v = f·2^exp with f ∈ (0.5, 1] ⇒ smallest power-of-two bound
		// ≥ v is 2^exp, except v exactly 2^(exp-1).
		_, exp := math.Frexp(v)
		if v <= math.Ldexp(1, exp-1) {
			exp--
		}
		return exp - h.minExp
	}
	lo, hi := 0, len(h.bounds)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	s := &h.shards[splitmix64(math.Float64bits(v))&(numShards-1)]
	s.counts[h.bucket(v)].Add(1)
	for {
		old := s.sumBits.Load()
		if s.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds — the exposition unit
// every *_seconds histogram uses.
func (h *Histogram) ObserveDuration(d float64) { h.Observe(d) }

// snapshot folds the shards into cumulative bucket counts, the total
// count, and the value sum. Concurrent Observes may straddle the reads;
// the snapshot is a consistent-enough monitoring view, not a barrier.
func (h *Histogram) snapshot() (cumulative []uint64, count uint64, sum float64) {
	cumulative = make([]uint64, len(h.bounds)+1)
	for s := range h.shards {
		sh := &h.shards[s]
		for i := range sh.counts {
			cumulative[i] += sh.counts[i].Load()
		}
		sum += math.Float64frombits(sh.sumBits.Load())
	}
	var running uint64
	for i := range cumulative {
		running += cumulative[i]
		cumulative[i] = running
	}
	count = running
	return cumulative, count, sum
}

// Count returns the total number of observations; 0 for nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	_, n, _ := h.snapshot()
	return n
}

// Sum returns the sum of observed values; 0 for nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	_, _, s := h.snapshot()
	return s
}
