package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
)

// WritePromText writes the registry in Prometheus text format 0.0.4.
// Families are emitted in name order and vec children in label-value
// order, so identical metric state yields byte-identical output.
// A nil registry writes nothing.
func (r *Registry) WritePromText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.families() {
		writeHeader(bw, f)
		switch {
		case f.label == "" && f.kind == kindHistogram:
			writeHistogram(bw, f.name, "", "", f.collector.(*Histogram))
		case f.label == "":
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			switch c := f.collector.(type) {
			case *Counter:
				bw.WriteString(strconv.FormatInt(c.Value(), 10))
			case *Gauge:
				bw.WriteString(strconv.FormatInt(c.Value(), 10))
			}
			bw.WriteByte('\n')
		case f.kind == kindHistogram:
			for _, lc := range f.vec.(*HistogramVec).snapshot() {
				writeHistogram(bw, f.name, f.label, lc.value, lc.child)
			}
		default:
			for _, lc := range f.vec.(*CounterVec).snapshot() {
				bw.WriteString(f.name)
				writeLabels(bw, f.label, lc.value, "")
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(lc.child.Value(), 10))
				bw.WriteByte('\n')
			}
		}
	}
	return bw.Flush()
}

func writeHeader(bw *bufio.Writer, f *family) {
	bw.WriteString("# HELP ")
	bw.WriteString(f.name)
	bw.WriteByte(' ')
	writeEscaped(bw, f.help, false)
	bw.WriteString("\n# TYPE ")
	bw.WriteString(f.name)
	bw.WriteByte(' ')
	bw.WriteString(string(f.kind))
	bw.WriteByte('\n')
}

// writeHistogram emits the _bucket/_sum/_count triplet for one
// histogram, with an optional extra (label, value) pair ahead of le.
func writeHistogram(bw *bufio.Writer, name, label, value string, h *Histogram) {
	cumulative, count, sum := h.snapshot()
	for i, b := range h.bounds {
		bw.WriteString(name)
		bw.WriteString("_bucket")
		writeLabels(bw, label, value, strconv.FormatFloat(b, 'g', -1, 64))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cumulative[i], 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(name)
	bw.WriteString("_bucket")
	writeLabels(bw, label, value, "+Inf")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(cumulative[len(cumulative)-1], 10))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_sum")
	writeLabels(bw, label, value, "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatFloat(sum, 'g', -1, 64))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count")
	writeLabels(bw, label, value, "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(count, 10))
	bw.WriteByte('\n')
}

// writeLabels writes a {label="value"} block. Either the named label,
// the le bound, both, or (when both are empty) nothing.
func writeLabels(bw *bufio.Writer, label, value, le string) {
	if label == "" && le == "" {
		return
	}
	bw.WriteByte('{')
	if label != "" {
		bw.WriteString(label)
		bw.WriteString(`="`)
		writeEscaped(bw, value, true)
		bw.WriteByte('"')
		if le != "" {
			bw.WriteByte(',')
		}
	}
	if le != "" {
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// writeEscaped writes s with backslash and newline escaped; label values
// (quoted) additionally escape the double quote.
func writeEscaped(bw *bufio.Writer, s string, quoted bool) {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			bw.WriteString(`\\`)
		case '\n':
			bw.WriteString(`\n`)
		case '"':
			if quoted {
				bw.WriteString(`\"`)
			} else {
				bw.WriteByte(c)
			}
		default:
			bw.WriteByte(c)
		}
	}
}

// Handler returns an http.Handler serving the registry in Prometheus
// text format — mount it at /metrics. Works (serving an empty page) on a
// nil registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePromText(w)
	})
}
