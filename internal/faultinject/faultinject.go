// Package faultinject is a deterministic, seeded fault-injection layer.
//
// Production code declares injection points by calling [Injector.Hit] with
// a site name ("mapreduce/map/shard=3", "unidetectd/v1/detect"); an
// injector configured with a seed and a set of [Rule]s decides, purely as
// a function of (seed, site, hit ordinal), whether that hit fails — with
// an error, a panic, or added latency. Because the decision is a hash of
// the site name and the per-site hit count rather than a draw from a
// shared stream, the schedule of injected faults is reproducible from the
// seed alone, independent of goroutine interleaving — the property the
// chaos harness in internal/testkit builds its golden transcripts on, and
// the reason the `deterministic` analyzer facts for Train/Detect still
// hold: no global math/rand, no wall-clock reads.
//
// A nil *Injector is valid and injects nothing; the disabled hot-path
// cost is one pointer comparison.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"
)

// Clock abstracts sleeping so fault delays and retry backoff can run
// against a virtual clock in tests. Sleep returns early with ctx.Err()
// if the context is cancelled first.
type Clock interface {
	Sleep(ctx context.Context, d time.Duration) error
}

type realClock struct{}

// Real is the wall-clock Clock.
var Real Clock = realClock{}

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Fault describes what happens when a rule fires: an optional delay
// (slept on the injector's clock), then an error return or a panic.
type Fault struct {
	// Delay is slept before Err/Panic take effect; a pure-latency fault
	// sets only Delay.
	Delay time.Duration
	// Err, when non-nil, is returned (wrapped in *Error) from Hit.
	Err error
	// Panic, when non-empty, makes Hit panic with a *PanicValue.
	Panic string
}

func (f Fault) describe() string {
	var parts []string
	if f.Delay > 0 {
		parts = append(parts, "delay="+f.Delay.String())
	}
	if f.Err != nil {
		parts = append(parts, "error="+f.Err.Error())
	}
	if f.Panic != "" {
		parts = append(parts, "panic="+f.Panic)
	}
	if len(parts) == 0 {
		return "noop"
	}
	return strings.Join(parts, ",")
}

// Rule matches injection sites and decides which hits fire.
type Rule struct {
	// Site is an exact site name, or a prefix pattern ending in '*'
	// ("mapreduce/map/*" matches every map shard site).
	Site string
	// P is the per-hit firing probability, decided deterministically by
	// hashing (seed, rule index, site, hit ordinal).
	P float64
	// Hits lists 1-based per-site hit ordinals that fire unconditionally
	// — "fail the first two attempts of shard 3" — in addition to P.
	Hits []int
	// MaxFires caps how many times this rule fires in total; 0 = no cap.
	MaxFires int
	// Fault is what happens on a firing hit.
	Fault Fault
}

func (r Rule) matches(site string) bool {
	if n := len(r.Site); n > 0 && r.Site[n-1] == '*' {
		return strings.HasPrefix(site, r.Site[:n-1])
	}
	return r.Site == site
}

// fires reports whether the rule fires on the n-th hit of site. The
// decision is a pure function of its arguments: no shared RNG state.
func (r Rule) fires(seed int64, idx int, site string, n int) bool {
	for _, h := range r.Hits {
		if h == n {
			return true
		}
	}
	return r.P > 0 && Unit(seed+int64(idx)*0x9e3779b9, site, n) < r.P
}

// ErrInjected is the sentinel all injected errors wrap; detect them with
// errors.Is(err, faultinject.ErrInjected).
var ErrInjected = errors.New("injected fault")

// Error is an injected failure, carrying the site and hit it fired on.
type Error struct {
	Site  string
	Hit   int
	Cause error
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: %s at %s hit %d", e.Cause, e.Site, e.Hit)
}

// Unwrap exposes the rule's cause; Is matches ErrInjected.
func (e *Error) Unwrap() error { return e.Cause }

// Is reports whether target is ErrInjected.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// PanicValue is the value injected panics carry, so recovery layers can
// tell an injected panic from a genuine bug.
type PanicValue struct {
	Site string
	Hit  int
	Msg  string
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("faultinject: panic %q at %s hit %d", p.Msg, p.Site, p.Hit)
}

// Event is one transcript entry: a hit on which a rule fired.
type Event struct {
	Site   string
	Hit    int    // per-site 1-based ordinal
	Rule   int    // index of the rule that fired
	Action string // human-readable fault description
}

func (e Event) String() string {
	return fmt.Sprintf("%s hit=%d rule=%d %s", e.Site, e.Hit, e.Rule, e.Action)
}

// Injector decides, at each declared injection point, whether to inject
// a fault. Safe for concurrent use. The zero *Injector (nil) is an
// injector that never fires.
type Injector struct {
	seed  int64
	rules []Rule
	clock Clock

	mu       sync.Mutex
	hits     map[string]int // per-site hit counts; guarded by mu
	fires    []int          // per-rule fire counts; guarded by mu
	events   []Event        // transcript; guarded by mu
	observer func(Event)    // guarded by mu (set once, read per fire)
}

// New builds an injector with the given seed and rules. The default
// clock is the wall clock; see WithClock.
func New(seed int64, rules ...Rule) *Injector {
	return &Injector{seed: seed, rules: rules, clock: Real, hits: map[string]int{}, fires: make([]int, len(rules))}
}

// WithClock sets the clock delays are slept on and returns the injector.
func (in *Injector) WithClock(c Clock) *Injector {
	in.clock = c
	return in
}

// Observe registers fn to be called — under the injector lock, in firing
// order — for every event appended to the transcript. Observability
// layers use this to count injected faults without polling; fn must be
// fast and must not call back into the injector. Nil-safe.
func (in *Injector) Observe(fn func(Event)) *Injector {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.observer = fn
	in.mu.Unlock()
	return in
}

// Hit declares an injection point. It returns nil (fast) when the
// injector is nil or no rule fires; otherwise it applies the firing
// rule's fault: sleeps the delay on the injector's clock (returning
// ctx.Err() if cancelled first), then returns a *Error or panics with a
// *PanicValue.
func (in *Injector) Hit(ctx context.Context, site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.hits[site]++
	n := in.hits[site]
	var fault Fault
	fired := -1
	for i, r := range in.rules {
		if !r.matches(site) {
			continue
		}
		if r.MaxFires > 0 && in.fires[i] >= r.MaxFires {
			continue
		}
		if !r.fires(in.seed, i, site, n) {
			continue
		}
		fired, fault = i, r.Fault
		in.fires[i]++
		ev := Event{Site: site, Hit: n, Rule: i, Action: fault.describe()}
		in.events = append(in.events, ev)
		if in.observer != nil {
			in.observer(ev)
		}
		break
	}
	in.mu.Unlock()
	if fired < 0 {
		return nil
	}
	if fault.Delay > 0 {
		if err := in.clock.Sleep(ctx, fault.Delay); err != nil {
			return err
		}
	}
	if fault.Panic != "" {
		panic(&PanicValue{Site: site, Hit: n, Msg: fault.Panic})
	}
	if fault.Err != nil {
		return &Error{Site: site, Hit: n, Cause: fault.Err}
	}
	return nil
}

// Hits returns how many times site has been hit so far.
func (in *Injector) Hits(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[site]
}

// Fires returns the total number of injected faults so far.
func (in *Injector) Fires() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.events)
}

// Transcript returns a copy of the fault transcript in firing order.
// Note the order events were *recorded* in depends on goroutine
// scheduling when sites are hit concurrently; use SortEvents for a
// canonical view.
func (in *Injector) Transcript() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// SortEvents orders events canonically (site, hit, rule) so transcripts
// of concurrent runs compare stably.
func SortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		if a.Hit != b.Hit {
			return a.Hit < b.Hit
		}
		return a.Rule < b.Rule
	})
}

// FormatTranscript renders events one per line (canonically sorted).
func FormatTranscript(events []Event) string {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	SortEvents(sorted)
	var b strings.Builder
	for _, e := range sorted {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Unit returns a deterministic uniform draw in [0, 1) keyed by
// (seed, site, n) — the injector's decision function, exported so retry
// jitter elsewhere can stay deterministic and schedule-independent too.
func Unit(seed int64, site string, n int) float64 {
	h := fnv.New64a()
	// Errors are impossible on hash.Hash writes.
	_, _ = h.Write([]byte(site))
	x := h.Sum64() ^ uint64(seed) ^ uint64(n)*0xbf58476d1ce4e5b9
	return float64(splitmix64(x)>>11) / float64(1<<53)
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
