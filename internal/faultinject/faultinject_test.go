package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	if err := in.Hit(context.Background(), "any/site"); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if in.Fires() != 0 || in.Hits("any/site") != 0 || in.Transcript() != nil {
		t.Error("nil injector accounted state")
	}
}

func TestExplicitHitsFire(t *testing.T) {
	boom := errors.New("boom")
	in := New(1, Rule{Site: "s", Hits: []int{2, 4}, Fault: Fault{Err: boom}})
	ctx := context.Background()
	var got []int
	for i := 1; i <= 5; i++ {
		if err := in.Hit(ctx, "s"); err != nil {
			got = append(got, i)
			if !errors.Is(err, ErrInjected) {
				t.Errorf("hit %d: error does not match ErrInjected: %v", i, err)
			}
			if !errors.Is(err, boom) {
				t.Errorf("hit %d: error does not unwrap to cause: %v", i, err)
			}
		}
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("fired on hits %v, want [2 4]", got)
	}
}

func TestGlobMatchAndMaxFires(t *testing.T) {
	in := New(1, Rule{Site: "map/*", P: 1, MaxFires: 3, Fault: Fault{Err: errors.New("x")}})
	ctx := context.Background()
	fails := 0
	for i := 0; i < 10; i++ {
		if err := in.Hit(ctx, fmt.Sprintf("map/shard=%d", i)); err != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("fired %d times, want MaxFires=3", fails)
	}
	if err := in.Hit(ctx, "reduce/key=a"); err != nil {
		t.Errorf("non-matching site fired: %v", err)
	}
}

func TestPanicInjection(t *testing.T) {
	in := New(1, Rule{Site: "s", Hits: []int{1}, Fault: Fault{Panic: "chaos"}})
	defer func() {
		r := recover()
		pv, ok := r.(*PanicValue)
		if !ok {
			t.Fatalf("recovered %T %v, want *PanicValue", r, r)
		}
		if pv.Msg != "chaos" || pv.Site != "s" || pv.Hit != 1 {
			t.Errorf("panic value = %+v", pv)
		}
	}()
	_ = in.Hit(context.Background(), "s")
	t.Fatal("no panic injected")
}

// recordingClock counts sleeps without sleeping.
type recordingClock struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (c *recordingClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sleeps = append(c.sleeps, d)
	return ctx.Err()
}

func TestDelayUsesClock(t *testing.T) {
	clk := &recordingClock{}
	in := New(1, Rule{Site: "s", Hits: []int{1}, Fault: Fault{Delay: 50 * time.Millisecond}}).WithClock(clk)
	if err := in.Hit(context.Background(), "s"); err != nil {
		t.Fatalf("pure-latency fault returned error: %v", err)
	}
	if len(clk.sleeps) != 1 || clk.sleeps[0] != 50*time.Millisecond {
		t.Errorf("sleeps = %v", clk.sleeps)
	}
}

func TestDelayCancelledContext(t *testing.T) {
	in := New(1, Rule{Site: "s", Hits: []int{1}, Fault: Fault{Delay: time.Hour, Err: errors.New("x")}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := in.Hit(ctx, "s"); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestDeterministicSchedule is the core contract: the set of fired
// (site, hit) pairs is a pure function of the seed, no matter how many
// goroutines hammer the injector or in what order.
func TestDeterministicSchedule(t *testing.T) {
	run := func(parallel bool) []Event {
		in := New(42,
			Rule{Site: "map/*", P: 0.3, Fault: Fault{Err: errors.New("e")}},
			Rule{Site: "reduce/*", P: 0.2, Fault: Fault{Delay: time.Nanosecond}},
		)
		var wg sync.WaitGroup
		for s := 0; s < 8; s++ {
			hit := func(s int) {
				ctx := context.Background()
				for n := 0; n < 20; n++ {
					_ = in.Hit(ctx, fmt.Sprintf("map/shard=%d", s))
					_ = in.Hit(ctx, fmt.Sprintf("reduce/key=%d", s))
				}
			}
			if parallel {
				wg.Add(1)
				go func(s int) { defer wg.Done(); hit(s) }(s)
			} else {
				hit(s)
			}
		}
		wg.Wait()
		ev := in.Transcript()
		SortEvents(ev)
		return ev
	}
	seq := run(false)
	par := run(true)
	if len(seq) == 0 {
		t.Fatal("schedule fired nothing; test is vacuous")
	}
	if fmt.Sprint(seq) != fmt.Sprint(par) {
		t.Errorf("sequential and parallel schedules differ:\nseq: %v\npar: %v", seq, par)
	}
	if FormatTranscript(seq) != FormatTranscript(par) {
		t.Error("transcripts differ")
	}
}

func TestUnitDistribution(t *testing.T) {
	// Unit must be in [0,1) and roughly uniform: the mean of many draws
	// across sites and ordinals should be near 0.5.
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		u := Unit(7, fmt.Sprintf("site-%d", i%100), i)
		if u < 0 || u >= 1 {
			t.Fatalf("Unit out of range: %v", u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean of draws = %v, want ~0.5", mean)
	}
	if Unit(1, "s", 1) == Unit(2, "s", 1) && Unit(1, "s", 2) == Unit(2, "s", 2) {
		t.Error("seeds do not change draws")
	}
}

func TestProbabilisticRatePlausible(t *testing.T) {
	in := New(9, Rule{Site: "*", P: 0.25, Fault: Fault{Err: errors.New("x")}})
	ctx := context.Background()
	fails := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if err := in.Hit(ctx, fmt.Sprintf("s%d", i%37)); err != nil {
			fails++
		}
	}
	rate := float64(fails) / n
	if rate < 0.2 || rate > 0.3 {
		t.Errorf("firing rate = %v, want ~0.25", rate)
	}
}

func TestRealClockSleepCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Real.Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
	if err := Real.Sleep(context.Background(), 0); err != nil {
		t.Errorf("zero sleep err = %v", err)
	}
}
