package evidence

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearQuantizer(t *testing.T) {
	q := LinearQuantizer{Min: 0, Max: 10, N: 10}
	cases := map[float64]int{-1: 0, 0: 0, 0.5: 0, 1: 1, 9.99: 9, 10: 9, 11: 9}
	for x, want := range cases {
		if got := q.Bin(x); got != want {
			t.Errorf("Bin(%v) = %d, want %d", x, got, want)
		}
	}
	if q.Bin(math.NaN()) != 0 {
		t.Error("NaN should map to bin 0")
	}
}

func TestRatioQuantizerResolutionNearOne(t *testing.T) {
	q := RatioQuantizer{N: 100}
	if q.Bin(0) != 0 || q.Bin(1) != 99 {
		t.Errorf("endpoints: %d, %d", q.Bin(0), q.Bin(1))
	}
	// 0.99 and 0.999 must land in different bins (1% vs 0.1% unique).
	if q.Bin(0.99) == q.Bin(0.999) {
		t.Errorf("0.99 and 0.999 collide in bin %d", q.Bin(0.99))
	}
	// Bins are monotone.
	prev := -1
	for x := 0.0; x <= 1.0; x += 0.001 {
		b := q.Bin(x)
		if b < prev {
			t.Fatalf("RatioQuantizer not monotone at %v: %d < %d", x, b, prev)
		}
		prev = b
	}
}

func TestLogQuantizer(t *testing.T) {
	q := LogQuantizer{Scale: 8, N: 64}
	if q.Bin(0) != 0 || q.Bin(-5) != 0 {
		t.Error("non-positive should map to 0")
	}
	if q.Bin(math.Inf(1)) != 63 {
		t.Error("+Inf should map to last bin")
	}
	if q.Bin(2) >= q.Bin(20) || q.Bin(20) >= q.Bin(2000) {
		t.Error("log bins should separate magnitudes")
	}
	if q.Bin(1e18) != 63 {
		t.Error("huge values clamp to last bin")
	}
}

func TestIntQuantizer(t *testing.T) {
	q := IntQuantizer{N: 32}
	cases := map[float64]int{-1: 0, 0: 0, 1: 1, 9: 9, 31: 31, 32: 31, 1000: 31}
	for x, want := range cases {
		if got := q.Bin(x); got != want {
			t.Errorf("Bin(%v) = %d, want %d", x, got, want)
		}
	}
}

// brute computes numerator/denominator counts directly from samples.
type sample struct{ b1, b2 int }

func bruteNum(samples []sample, d Directions, b1, b2 int) int64 {
	var n int64
	for _, s := range samples {
		ok1 := s.b1 >= b1
		if d.T1LE {
			ok1 = s.b1 <= b1
		}
		ok2 := s.b2 <= b2
		if d.T2GE {
			ok2 = s.b2 >= b2
		}
		if ok1 && ok2 {
			n++
		}
	}
	return n
}

func bruteDen(samples []sample, d Directions, b2 int) int64 {
	var n int64
	for _, s := range samples {
		ok := s.b1 >= b2
		if !d.DenGE {
			ok = s.b1 <= b2
		}
		if ok {
			n++
		}
	}
	return n
}

func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const N = 16
	g := NewGrid(N)
	var samples []sample
	for i := 0; i < 500; i++ {
		s := sample{rng.Intn(N), rng.Intn(N)}
		samples = append(samples, s)
		g.Add(s.b1, s.b2)
	}
	g.Finalize()
	dirsList := []Directions{OutlierDirections, SpellingDirections, RatioDirections,
		{T1LE: false, T2GE: true, DenGE: false}}
	for _, d := range dirsList {
		for b1 := 0; b1 < N; b1++ {
			for b2 := 0; b2 < N; b2++ {
				if got, want := g.Numerator(d, b1, b2), bruteNum(samples, d, b1, b2); got != want {
					t.Fatalf("Numerator(%+v,%d,%d) = %d, want %d", d, b1, b2, got, want)
				}
				if got, want := g.Denominator(d, b2), bruteDen(samples, d, b2); got != want {
					t.Fatalf("Denominator(%+v,%d) = %d, want %d", d, b2, got, want)
				}
			}
		}
	}
}

// Theorem 1 (monotonicity): a more extreme (θ1, θ2) pair never yields a
// larger LR. For OutlierDirections: b1' >= b1 and b2' <= b2 implies
// LR(b1', b2') <= LR(b1, b2).
func TestLRMonotonicityOutlier(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const N = 12
	g := NewGrid(N)
	for i := 0; i < 400; i++ {
		g.Add(rng.Intn(N), rng.Intn(N))
	}
	g.Finalize()
	for b1 := 0; b1 < N; b1++ {
		for b2 := 0; b2 < N; b2++ {
			lr := g.LR(OutlierDirections, b1, b2)
			for b1p := b1; b1p < N; b1p++ {
				for b2p := 0; b2p <= b2; b2p++ {
					if lrp := g.LR(OutlierDirections, b1p, b2p); lrp > lr+1e-12 {
						t.Fatalf("monotonicity violated: LR(%d,%d)=%v > LR(%d,%d)=%v",
							b1p, b2p, lrp, b1, b2, lr)
					}
				}
			}
		}
	}
}

// Same property for the spelling orientation: smaller θ1, larger θ2 is
// more extreme.
func TestLRMonotonicitySpelling(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const N = 12
	g := NewGrid(N)
	for i := 0; i < 400; i++ {
		g.Add(rng.Intn(N), rng.Intn(N))
	}
	g.Finalize()
	for b1 := 0; b1 < N; b1++ {
		for b2 := 0; b2 < N; b2++ {
			lr := g.LR(SpellingDirections, b1, b2)
			for b1p := 0; b1p <= b1; b1p++ {
				for b2p := b2; b2p < N; b2p++ {
					if lrp := g.LR(SpellingDirections, b1p, b2p); lrp > lr+1e-12 {
						t.Fatalf("monotonicity violated: LR(%d,%d)=%v > LR(%d,%d)=%v",
							b1p, b2p, lrp, b1, b2, lr)
					}
				}
			}
		}
	}
}

func TestGridAddAfterFinalizePanics(t *testing.T) {
	g := NewGrid(4)
	g.Finalize()
	defer func() {
		if recover() == nil {
			t.Error("Add after Finalize should panic")
		}
	}()
	g.Add(0, 0)
}

func TestGridMerge(t *testing.T) {
	a, b := NewGrid(4), NewGrid(4)
	a.Add(1, 2)
	b.Add(1, 2)
	b.Add(3, 0)
	a.Merge(b)
	if a.Total != 3 {
		t.Errorf("Total = %d", a.Total)
	}
	if a.Counts[1*4+2] != 2 {
		t.Errorf("merged count = %d", a.Counts[1*4+2])
	}
	defer func() {
		if recover() == nil {
			t.Error("merging different sizes should panic")
		}
	}()
	a.Merge(NewGrid(5))
}

func TestGridEncodeDecode(t *testing.T) {
	g := NewGrid(8)
	g.Add(2, 3)
	g.Add(7, 0)
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 8 || got.Total != 2 {
		t.Errorf("decoded N=%d Total=%d", got.N, got.Total)
	}
	got.Finalize()
	if got.Numerator(OutlierDirections, 2, 3) != 2 {
		t.Error("decoded grid answers wrong counts")
	}
}

func TestDecodeGridCorrupt(t *testing.T) {
	if _, err := DecodeGrid(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk should not decode")
	}
}

func TestPointLR(t *testing.T) {
	g := NewGrid(8)
	g.Add(3, 1)
	g.Add(3, 1)
	g.Add(1, 0) // θ1 bin 1: denominator mass for b2=1
	g.Add(1, 5)
	g.Finalize()
	// Observed (3,1): num = #{θ1=3 ∧ θ2=1} = 2; den = #{θ1=1} = 2.
	if got := g.PointLR(3, 1); got != 3.0/3.0 {
		t.Errorf("PointLR = %v, want 1", got)
	}
	// Unseen exact combination: num 0, den 0 -> 1 (no evidence).
	if got := g.PointLR(7, 7); got != 1 {
		t.Errorf("PointLR unseen = %v", got)
	}
}

func TestLRSmoothed(t *testing.T) {
	g := NewGrid(4)
	g.Finalize()
	// Empty grid: LR = (0+1)/(0+1) = 1 — no evidence, not surprising.
	if lr := g.LR(OutlierDirections, 3, 0); lr != 1 {
		t.Errorf("empty-grid LR = %v, want 1", lr)
	}
	g2 := NewGrid(4)
	for i := 0; i < 99; i++ {
		g2.Add(0, 0) // 99 mundane samples
	}
	g2.Finalize()
	// Observed (3,0) with OutlierDirections: num = {b1>=3,b2<=0} = 0,
	// den = {b1>=0} = 99 -> LR = 1/100.
	if lr := g2.LR(OutlierDirections, 3, 0); lr != 0.01 {
		t.Errorf("LR = %v, want 0.01", lr)
	}
}

// Property: quantizers are monotone.
func TestQuantizersMonotoneProperty(t *testing.T) {
	qs := []Quantizer{
		LinearQuantizer{Min: 0, Max: 100, N: 32},
		RatioQuantizer{N: 64},
		LogQuantizer{Scale: 8, N: 64},
		IntQuantizer{N: 32},
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		for _, q := range qs {
			if q.Bin(a) > q.Bin(b) {
				return false
			}
			if q.Bin(a) < 0 || q.Bin(a) >= q.Bins() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
