// Package evidence implements Uni-Detect's materialized statistics: for
// every (error class, feature bucket) it stores the joint distribution of
// (θ1, θ2) = (metric before perturbation, metric after the natural
// perturbation) observed across the background corpus, quantized onto a
// 2-D grid with precomputed prefix sums so the smoothed range-based counts
// of §3.1 (Equation 12) answer in O(1). This is the "memorization" that
// makes online prediction a lookup (§2.2.3, System Architecture).
package evidence

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
)

// Quantizer maps a metric value monotonically onto grid bins [0, Bins).
type Quantizer interface {
	Bins() int
	Bin(x float64) int
}

// LinearQuantizer bins [Min, Max] into N equal cells, clamping outside
// values. Suitable for UR and FR in [0, 1] when uniform resolution is
// enough.
type LinearQuantizer struct {
	Min, Max float64
	N        int
}

// Bins returns the bin count.
func (q LinearQuantizer) Bins() int { return q.N }

// Bin quantizes x.
func (q LinearQuantizer) Bin(x float64) int {
	if math.IsNaN(x) || x <= q.Min {
		return 0
	}
	if x >= q.Max {
		return q.N - 1
	}
	i := int(float64(q.N) * (x - q.Min) / (q.Max - q.Min))
	if i >= q.N {
		i = q.N - 1
	}
	return i
}

// RatioQuantizer bins [0,1] with resolution concentrated near 1, where the
// interesting UR/FR mass lives: the bottom half of the bins cover [0, 0.9]
// linearly, the top half cover (0.9, 1].
type RatioQuantizer struct{ N int }

// Bins returns the bin count.
func (q RatioQuantizer) Bins() int { return q.N }

// Bin quantizes x.
func (q RatioQuantizer) Bin(x float64) int {
	if math.IsNaN(x) || x <= 0 {
		return 0
	}
	if x >= 1 {
		return q.N - 1
	}
	half := q.N / 2
	if x <= 0.9 {
		i := int(float64(half) * x / 0.9)
		if i >= half {
			i = half - 1
		}
		return i
	}
	i := half + int(float64(q.N-half)*(x-0.9)/0.1)
	if i >= q.N {
		i = q.N - 1
	}
	return i
}

// LogQuantizer bins [0, ∞) on a log1p scale with the given resolution:
// bin = floor(Scale · ln(1+x)). Suitable for unbounded dispersion scores
// (max-MAD), where ratios matter more than differences.
type LogQuantizer struct {
	Scale float64
	N     int
}

// Bins returns the bin count.
func (q LogQuantizer) Bins() int { return q.N }

// Bin quantizes x.
func (q LogQuantizer) Bin(x float64) int {
	if math.IsNaN(x) || x <= 0 {
		return 0
	}
	if math.IsInf(x, 1) {
		return q.N - 1
	}
	i := int(q.Scale * math.Log1p(x))
	if i < 0 {
		i = 0
	}
	if i >= q.N {
		i = q.N - 1
	}
	return i
}

// IntQuantizer bins non-negative integers directly, clamping at N-1.
// Suitable for MPD (edit distances).
type IntQuantizer struct{ N int }

// Bins returns the bin count.
func (q IntQuantizer) Bins() int { return q.N }

// Bin quantizes x.
func (q IntQuantizer) Bin(x float64) int {
	if math.IsNaN(x) || x <= 0 {
		return 0
	}
	if x >= float64(q.N) { // clamp before int conversion; avoids overflow
		return q.N - 1
	}
	return int(x)
}

// Directions declares how "at least as extreme" reads for a class's
// smoothed predicates (§3.1–3.4 use different orientations per metric):
//
//   - numerator counts samples with θ1ᵢ ≤ a (T1LE) or θ1ᵢ ≥ a, and
//     θ2ᵢ ≥ b (T2GE) or θ2ᵢ ≤ b;
//   - denominator counts samples with θ1ᵢ ≥ b (DenGE) or θ1ᵢ ≤ b.
type Directions struct {
	T1LE  bool
	T2GE  bool
	DenGE bool
}

// Canonical directions per the paper's formulas:
var (
	// OutlierDirections: Equation 12 — num {max-MAD ≥ θ1, perturbed ≤ θ2},
	// den {max-MAD ≥ θ2}.
	OutlierDirections = Directions{T1LE: false, T2GE: false, DenGE: true}
	// SpellingDirections: §3.2 — num {MPD ≤ θ1, perturbed ≥ θ2},
	// den {MPD ≤ θ2}.
	SpellingDirections = Directions{T1LE: true, T2GE: true, DenGE: false}
	// RatioDirections (UR §3.3, FR §3.4): num {m ≤ θ1, perturbed ≥ θ2};
	// the denominator follows Example 2 ("columns that are unique"),
	// counting {m ≥ θ2}.
	RatioDirections = Directions{T1LE: true, T2GE: true, DenGE: true}
)

// Grid accumulates quantized (θ1, θ2) samples and answers directional
// range counts. Build with NewGrid, add samples with Add, then call
// Finalize before querying; Add after Finalize panics.
type Grid struct {
	N      int     // bins per axis
	Counts []int64 // N×N raw sample counts, row-major [θ1*N + θ2]
	Total  int64

	pre       []int64 // (N+1)×(N+1) 2-D prefix sums
	finalized bool
}

// NewGrid creates an empty grid with n bins per axis.
func NewGrid(n int) *Grid {
	return &Grid{N: n, Counts: make([]int64, n*n)}
}

// Add records one (θ1, θ2) sample by bin index.
func (g *Grid) Add(b1, b2 int) {
	if g.finalized {
		panic("evidence: Add after Finalize")
	}
	g.Counts[clampBin(b1, g.N)*g.N+clampBin(b2, g.N)]++
	g.Total++
}

// Merge adds all samples of other (same shape) into g.
func (g *Grid) Merge(other *Grid) {
	if g.finalized {
		panic("evidence: Merge after Finalize")
	}
	if other.N != g.N {
		panic(fmt.Sprintf("evidence: merging grids of different sizes %d vs %d", other.N, g.N))
	}
	for i, c := range other.Counts {
		g.Counts[i] += c
	}
	g.Total += other.Total
}

// Finalize builds the prefix sums. Idempotent.
func (g *Grid) Finalize() {
	if g.finalized {
		return
	}
	n := g.N
	g.pre = make([]int64, (n+1)*(n+1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Inclusion–exclusion over the already-built prefix rows;
			// pre is a monotone 2D prefix sum, so this cannot underflow.
			inc := g.pre[i*(n+1)+(j+1)] + g.pre[(i+1)*(n+1)+j] - g.pre[i*(n+1)+j]
			g.pre[(i+1)*(n+1)+(j+1)] = g.Counts[i*n+j] + inc
		}
	}
	g.finalized = true
}

// PrefixSums exposes the finalized (N+1)×(N+1) 2-D prefix-sum array,
// row-major, finalizing the grid if needed. The compact LR index
// (internal/lrindex) aliases this array instead of copying it; callers
// must treat it as read-only.
func (g *Grid) PrefixSums() []int64 {
	if !g.finalized {
		g.Finalize()
	}
	return g.pre
}

// rect returns the number of samples with θ1 bin in [l1, h1] and θ2 bin in
// [l2, h2], inclusive.
func (g *Grid) rect(l1, h1, l2, h2 int) int64 {
	if !g.finalized {
		g.Finalize()
	}
	if l1 > h1 || l2 > h2 {
		return 0
	}
	l1, h1 = clampBin(l1, g.N), clampBin(h1, g.N)
	l2, h2 = clampBin(l2, g.N), clampBin(h2, g.N)
	n := g.N + 1
	return g.pre[(h1+1)*n+(h2+1)] - g.pre[l1*n+(h2+1)] - g.pre[(h1+1)*n+l2] + g.pre[l1*n+l2]
}

// Numerator returns the count of samples matching the numerator predicate
// for observed bins (b1, b2) under dirs.
func (g *Grid) Numerator(dirs Directions, b1, b2 int) int64 {
	l1, h1 := 0, g.N-1
	if dirs.T1LE {
		h1 = b1
	} else {
		l1 = b1
	}
	l2, h2 := 0, g.N-1
	if dirs.T2GE {
		l2 = b2
	} else {
		h2 = b2
	}
	return g.rect(l1, h1, l2, h2)
}

// Denominator returns the count of samples whose θ1 bin satisfies the
// denominator predicate for observed bin b2 under dirs.
func (g *Grid) Denominator(dirs Directions, b2 int) int64 {
	if dirs.DenGE {
		return g.rect(b2, g.N-1, 0, g.N-1)
	}
	return g.rect(0, b2, 0, g.N-1)
}

// LR returns the add-one-smoothed likelihood ratio for observed bins
// (b1, b2): (num+1)/(den+1). Smoothing keeps the ratio finite and positive
// while preserving Theorem 1's monotonicity.
func (g *Grid) LR(dirs Directions, b1, b2 int) float64 {
	num := g.Numerator(dirs, b1, b2)
	den := g.Denominator(dirs, b2)
	return float64(num+1) / float64(den+1)
}

// PointLR returns the likelihood ratio estimated from *exact* bin counts
// — the non-smoothed point estimate of Equation 11 that §3.1 argues
// against: numerator #{θ1ᵢ in bin b1 ∧ θ2ᵢ in bin b2}, denominator
// #{θ1ᵢ in bin b2}. Kept for the smoothing ablation; it suffers exactly
// the sparsity §3.1 describes.
func (g *Grid) PointLR(b1, b2 int) float64 {
	num := g.rect(b1, b1, b2, b2)
	den := g.rect(b2, b2, 0, g.N-1)
	return float64(num+1) / float64(den+1)
}

func clampBin(b, n int) int {
	if b < 0 {
		return 0
	}
	if b >= n {
		return n - 1
	}
	return b
}

// gridWire is the gob wire format (exported-field mirror without the
// derived prefix sums).
type gridWire struct {
	N      int
	Counts []int64
	Total  int64
}

// Encode writes the grid's samples (not the derived sums) to w.
func (g *Grid) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(gridWire{N: g.N, Counts: g.Counts, Total: g.Total})
}

// DecodeGrid reads a grid previously written by Encode.
func DecodeGrid(r io.Reader) (*Grid, error) {
	var w gridWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, err
	}
	if w.N <= 0 || len(w.Counts) != w.N*w.N {
		return nil, fmt.Errorf("evidence: corrupt grid: n=%d counts=%d", w.N, len(w.Counts))
	}
	return &Grid{N: w.N, Counts: w.Counts, Total: w.Total}, nil
}
