// Package excelrules implements the commercial-software approach to
// error checking that the paper contrasts itself with (Figure 1,
// Appendix B): a small set of manually curated, high-precision,
// low-recall rules, adapted from Excel 2016's built-in "error checking
// rules" to plain value tables. Each rule fires only on near-certain
// problems; the package exists to demonstrate the coverage gap between
// rule lists and Uni-Detect's corpus-driven detection.
package excelrules

import (
	"strings"

	"github.com/unidetect/unidetect/internal/table"
)

// Finding is one rule violation.
type Finding struct {
	Rule   string
	Table  string
	Column string
	Row    int
	Value  string
	Detail string
}

// Rule checks one column and reports violations.
type Rule interface {
	// Name identifies the rule ("number-stored-as-text").
	Name() string
	// Check returns the violating rows with details.
	Check(c *table.Column) []violation
}

type violation struct {
	row    int
	detail string
}

// All returns the built-in rule set.
func All() []Rule {
	return []Rule{
		numberAsText{},
		twoDigitYear{},
		strayWhitespace{},
		inconsistentCase{},
		emptyInDense{},
	}
}

// Check runs every rule over every column of a table.
func Check(t *table.Table) []Finding {
	var out []Finding
	for _, rule := range All() {
		for _, c := range t.Columns {
			for _, v := range rule.Check(c) {
				out = append(out, Finding{
					Rule:   rule.Name(),
					Table:  t.Name,
					Column: c.Name,
					Row:    v.row,
					Value:  c.Values[v.row],
					Detail: v.detail,
				})
			}
		}
	}
	return out
}

// numberAsText is Excel's "Number stored as text": a cell whose content
// is a number wrapped in text markers (leading apostrophe, or surrounded
// by whitespace) inside a numeric column.
type numberAsText struct{}

func (numberAsText) Name() string { return "number-stored-as-text" }

func (numberAsText) Check(c *table.Column) []violation {
	typ := c.Type()
	if typ != table.TypeInt && typ != table.TypeFloat {
		return nil
	}
	var out []violation
	for i, v := range c.Values {
		if v == "" {
			continue
		}
		trimmed := strings.TrimSpace(strings.TrimPrefix(v, "'"))
		if trimmed == v {
			continue
		}
		if _, _, ok := table.ParseNumber(trimmed); ok {
			out = append(out, violation{i, "number wrapped in text markers"})
		}
	}
	return out
}

// twoDigitYear is Excel's "Cells containing years represented as 2
// digits": a 2-digit value inside a column that otherwise holds 4-digit
// years.
type twoDigitYear struct{}

func (twoDigitYear) Name() string { return "two-digit-year" }

func (twoDigitYear) Check(c *table.Column) []violation {
	years, twos := 0, []int{}
	nonEmpty := 0
	for i, v := range c.Values {
		v = strings.TrimSpace(v)
		if v == "" {
			continue
		}
		nonEmpty++
		switch {
		case len(v) == 4 && allDigits(v) && (v[0] == '1' || v[0] == '2'):
			years++
		case len(v) == 2 && allDigits(v):
			twos = append(twos, i)
		}
	}
	// Fire only when the column is clearly a year column with a small
	// minority of 2-digit entries.
	if nonEmpty == 0 || years*10 < nonEmpty*8 || len(twos) == 0 || len(twos)*10 > nonEmpty*2 {
		return nil
	}
	out := make([]violation, 0, len(twos))
	for _, r := range twos {
		out = append(out, violation{r, "year represented as 2 digits"})
	}
	return out
}

// strayWhitespace flags values with leading or trailing whitespace — a
// classic spreadsheet paste artifact that breaks joins and group-bys.
type strayWhitespace struct{}

func (strayWhitespace) Name() string { return "stray-whitespace" }

func (strayWhitespace) Check(c *table.Column) []violation {
	var out []violation
	for i, v := range c.Values {
		if v != "" && strings.TrimSpace(v) != v {
			out = append(out, violation{i, "leading or trailing whitespace"})
		}
	}
	return out
}

// inconsistentCase flags a value whose casing differs from an otherwise
// case-identical column (e.g. one "madrid" among "Madrid" rows with the
// same letters).
type inconsistentCase struct{}

func (inconsistentCase) Name() string { return "inconsistent-case" }

func (inconsistentCase) Check(c *table.Column) []violation {
	if c.Type() != table.TypeString {
		return nil
	}
	byFold := map[string]map[string][]int{}
	for i, v := range c.Values {
		if v == "" {
			continue
		}
		f := strings.ToLower(v)
		if byFold[f] == nil {
			byFold[f] = map[string][]int{}
		}
		byFold[f][v] = append(byFold[f][v], i)
	}
	var out []violation
	for _, variants := range byFold {
		if len(variants) < 2 {
			continue
		}
		// Flag the minority casing(s).
		best, total := 0, 0
		for _, rows := range variants {
			total += len(rows)
			if len(rows) > best {
				best = len(rows)
			}
		}
		for _, rows := range variants {
			if len(rows) < best && len(rows)*4 <= total {
				for _, r := range rows {
					out = append(out, violation{r, "casing differs from the column's usual form"})
				}
			}
		}
	}
	return out
}

// emptyInDense flags empty cells in a column that is otherwise at least
// 95% populated — likely omissions rather than structural blanks.
type emptyInDense struct{}

func (emptyInDense) Name() string { return "empty-in-dense-column" }

func (emptyInDense) Check(c *table.Column) []violation {
	n := c.Len()
	if n < 20 {
		return nil
	}
	var empty []int
	for i, v := range c.Values {
		if strings.TrimSpace(v) == "" {
			empty = append(empty, i)
		}
	}
	if len(empty) == 0 || len(empty)*20 > n {
		return nil
	}
	out := make([]violation, 0, len(empty))
	for _, r := range empty {
		out = append(out, violation{r, "empty cell in a dense column"})
	}
	return out
}

func allDigits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}
