package excelrules

import (
	"testing"

	"github.com/unidetect/unidetect/internal/table"
)

func col(name string, vals ...string) *table.Column { return table.NewColumn(name, vals) }

func findingsByRule(fs []Finding) map[string][]Finding {
	m := map[string][]Finding{}
	for _, f := range fs {
		m[f.Rule] = append(m[f.Rule], f)
	}
	return m
}

func TestNumberAsText(t *testing.T) {
	tbl := table.MustNew("t",
		col("Qty", "10", "20", " 30", "'40", "50", "60", "70", "80", "90", "100"),
	)
	fs := findingsByRule(Check(tbl))["number-stored-as-text"]
	if len(fs) != 2 {
		t.Fatalf("findings = %v", fs)
	}
	if fs[0].Row != 2 || fs[1].Row != 3 {
		t.Errorf("rows = %d, %d", fs[0].Row, fs[1].Row)
	}
}

func TestNumberAsTextSkipsStringColumns(t *testing.T) {
	tbl := table.MustNew("t", col("Name", " alice", "bob", "carol"))
	if fs := findingsByRule(Check(tbl))["number-stored-as-text"]; len(fs) != 0 {
		t.Errorf("string column flagged: %v", fs)
	}
}

func TestTwoDigitYear(t *testing.T) {
	tbl := table.MustNew("t",
		col("Year", "1995", "1996", "98", "1998", "1999", "2000", "2001", "2002", "2003", "2004"),
	)
	fs := findingsByRule(Check(tbl))["two-digit-year"]
	if len(fs) != 1 || fs[0].Row != 2 {
		t.Fatalf("findings = %v", fs)
	}
	// A column of mostly 2-digit values is not a year column.
	tbl2 := table.MustNew("t", col("Grade", "98", "95", "87", "73", "99", "64"))
	if fs := findingsByRule(Check(tbl2))["two-digit-year"]; len(fs) != 0 {
		t.Errorf("grade column flagged: %v", fs)
	}
}

func TestStrayWhitespace(t *testing.T) {
	tbl := table.MustNew("t", col("City", "Paris", " Lyon", "Nice ", "Oslo"))
	fs := findingsByRule(Check(tbl))["stray-whitespace"]
	if len(fs) != 2 {
		t.Fatalf("findings = %v", fs)
	}
}

func TestInconsistentCase(t *testing.T) {
	tbl := table.MustNew("t", col("City",
		"Madrid", "Madrid", "Madrid", "madrid", "Lyon", "Oslo"))
	fs := findingsByRule(Check(tbl))["inconsistent-case"]
	if len(fs) != 1 || fs[0].Row != 3 {
		t.Fatalf("findings = %v", fs)
	}
	// A 50/50 split is a style choice, not an error.
	tbl2 := table.MustNew("t", col("X", "ab", "AB", "ab", "AB"))
	if fs := findingsByRule(Check(tbl2))["inconsistent-case"]; len(fs) != 0 {
		t.Errorf("50/50 casing flagged: %v", fs)
	}
}

func TestEmptyInDense(t *testing.T) {
	vals := make([]string, 40)
	for i := range vals {
		vals[i] = "v"
	}
	vals[7] = ""
	tbl := table.MustNew("t", col("C", vals...))
	fs := findingsByRule(Check(tbl))["empty-in-dense-column"]
	if len(fs) != 1 || fs[0].Row != 7 {
		t.Fatalf("findings = %v", fs)
	}
	// Sparse columns are structural, not erroneous.
	for i := 0; i < 10; i++ {
		vals[i] = ""
	}
	tbl2 := table.MustNew("t", col("C", vals...))
	if fs := findingsByRule(Check(tbl2))["empty-in-dense-column"]; len(fs) != 0 {
		t.Errorf("sparse column flagged: %v", fs)
	}
	// Short columns are skipped entirely.
	tbl3 := table.MustNew("t", col("C", "a", "", "c"))
	if fs := findingsByRule(Check(tbl3))["empty-in-dense-column"]; len(fs) != 0 {
		t.Errorf("short column flagged: %v", fs)
	}
}

func TestHighPrecisionOnCleanData(t *testing.T) {
	// The rules' defining property (Figure 1 discussion): they stay
	// silent on ordinary clean columns.
	tbl := table.MustNew("t",
		col("ID", "A1", "B2", "C3", "D4"),
		col("Year", "1995", "1996", "1997", "1998"),
		col("Name", "Alice", "Bob", "Carol", "Dave"),
		col("Qty", "10", "20", "30", "40"),
	)
	if fs := Check(tbl); len(fs) != 0 {
		t.Errorf("clean table flagged: %v", fs)
	}
}

func TestAllRuleNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range All() {
		if seen[r.Name()] {
			t.Errorf("duplicate rule name %q", r.Name())
		}
		seen[r.Name()] = true
	}
	if len(seen) != 5 {
		t.Errorf("rules = %d", len(seen))
	}
}
