package detectors

import (
	"fmt"
	"sort"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/table"
)

// Uniqueness is the §3.3 instantiation: metric UR (uniqueness ratio),
// perturbation "drop the duplicate rows", featurization {type, row bucket,
// token prevalence, leftness}.
type Uniqueness struct {
	Cfg core.Config
}

// Class implements core.Detector.
func (d *Uniqueness) Class() core.Class { return core.ClassUniqueness }

// Quantizer implements core.Detector: UR lives in [0,1] with the decisive
// mass near 1.
func (d *Uniqueness) Quantizer() evidence.Quantizer { return evidence.RatioQuantizer{N: 96} }

// Directions implements core.Detector (§3.3, Example 2 denominator).
func (d *Uniqueness) Directions() evidence.Directions { return evidence.RatioDirections }

// Measure implements core.Detector.
func (d *Uniqueness) Measure(t *table.Table, env *core.Env) (out []core.Measurement) {
	defer func() { env.CountMeasurements(core.ClassUniqueness, len(out)) }()
	for pos := range t.Columns {
		out = append(out, d.MeasureColumn(t, pos, env, nil)...)
	}
	return out
}

// MeasureColumn implements core.ColumnMeasurer: the single column's
// share of Measure's output (the scratch is unused — the UR scan's
// duplicate maps are value-count-shaped, not worth pooling).
//
// alloc-budget: 3 the detail string, duplicate-value report and returned measurement
func (d *Uniqueness) MeasureColumn(t *table.Table, pos int, env *core.Env, _ *core.Scratch) []core.Measurement {
	c := t.Columns[pos]
	n := c.Len()
	if n < d.Cfg.MinRows {
		return nil
	}
	typ := c.Type()
	if typ == table.TypeEmpty {
		return nil
	}
	dup, dupGroups := duplicateRows(c.Values)
	distinct := n - len(dup)
	theta1 := float64(distinct) / float64(n)
	eps := d.Cfg.Epsilon(n)

	// The perturbation may drop at most ε rows (Definition 2). With
	// k = min(|dup|, ε) redundant rows dropped the column keeps all
	// its distinct values: UR' = distinct / (n - k).
	k := len(dup)
	valid := k > 0 && k <= eps
	if k > eps {
		k = eps
	}
	theta2 := float64(distinct) / float64(n-k)

	key := feature.Key{
		Type: typ,
		Rows: feature.RowBucket(n),
		A:    feature.RelPrevalenceBucket(prevalenceOf(env, c)),
		B:    feature.LeftnessBucket(pos),
	}
	m := core.Measurement{
		Key:    key,
		Theta1: theta1,
		Theta2: theta2,
		Valid:  valid,
		Column: c.Name,
		Detail: fmt.Sprintf("%.4f unique; %d duplicate row(s)", theta1, len(dup)),
	}
	if valid {
		// Report every row holding a duplicated value (both the
		// original and the copy): the detection is "these rows
		// collide"; which one is wrong is for the user to judge.
		m.Rows = dupGroups
		for _, r := range dupGroups {
			m.Values = append(m.Values, c.Values[r])
		}
	}
	return []core.Measurement{m}
}

// duplicateRows returns (a) the row indices of every value occurrence
// beyond the first — the natural O to drop — and (b) all rows holding a
// duplicated value, for reporting.
//
// alloc-budget: 5 first-occurrence maps are value-count-shaped and the row lists are returned; neither pools usefully
func duplicateRows(vals []string) (drop, groups []int) {
	first := make(map[string]int, len(vals))
	counted := make(map[string]bool)
	for i, v := range vals {
		j, seen := first[v]
		if !seen {
			first[v] = i
			continue
		}
		drop = append(drop, i)
		if !counted[v] {
			counted[v] = true
			groups = append(groups, j)
		}
		groups = append(groups, i)
	}
	sort.Ints(groups)
	return drop, groups
}

// prevalenceOf returns the column's relative token prevalence: the
// average fraction of corpus tables its tokens occur in. Relative values
// keep the featurization invariant to corpus size.
//
// alloc-budget: 1 corpus prevalence tokenizes the column against the shared index
func prevalenceOf(env *core.Env, c *table.Column) float64 {
	if env == nil || env.Index == nil {
		return 0
	}
	return env.Index.RelPrevalence(c)
}

var _ core.ColumnMeasurer = (*Uniqueness)(nil)
