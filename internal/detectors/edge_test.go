package detectors

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/table"
)

func TestOutlierCandidateGuards(t *testing.T) {
	d := &Outlier{Cfg: cfg()}
	// A column whose extreme value is mild (score < MinOutlierScore)
	// yields evidence but no candidate.
	tbl := table.MustNew("t", col("V", "10", "11", "12", "13", "14", "15", "16", "18"))
	ms := d.Measure(tbl, nil)
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
	if ms[0].Theta1 >= d.Cfg.MinOutlierScore && ms[0].Theta2 < ms[0].Theta1 {
		t.Skip("column unexpectedly outlying; adjust fixture")
	}
	if ms[0].Valid {
		t.Errorf("mild column must not be a candidate: %+v", ms[0])
	}
}

func TestSpellingDigitOnlyPairInvalid(t *testing.T) {
	d := &Spelling{Cfg: cfg()}
	tbl := table.MustNew("t", col("ID",
		"S042091", "S042093", "S117244", "S556321", "S998100", "S743005"))
	ms := d.Measure(tbl, nil)
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
	if ms[0].Valid {
		t.Errorf("digit-only close pair must not be a misspelling candidate: %+v", ms[0])
	}
}

func TestSpellingLetterPairValid(t *testing.T) {
	d := &Spelling{Cfg: cfg()}
	tbl := table.MustNew("t", col("ID",
		"SA42091", "SB42091", "ST17244", "SU56321", "SW98100", "SX43005"))
	ms := d.Measure(tbl, nil)
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
	if !ms[0].Valid {
		t.Errorf("letter-differing pair should be a candidate: %+v", ms[0])
	}
}

func TestLettersDiffer(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"S042091", "S042093", false},
		{"XU4326CA", "XM4326CW", true},
		{"abc", "abd", true},
		{"a1", "a2", false},
		{"", "", false},
		{"1", "x", true},
	}
	for _, c := range cases {
		if got := lettersDiffer(c.a, c.b); got != c.want {
			t.Errorf("lettersDiffer(%q,%q) = %v", c.a, c.b, got)
		}
	}
}

func TestFDTooManyViolationsInvalid(t *testing.T) {
	d := &FD{Cfg: cfg()}
	// 20 rows with 8 violating rows: far beyond epsilon.
	lhs := make([]string, 20)
	rhs := make([]string, 20)
	for i := range lhs {
		lhs[i] = fmt.Sprintf("g%d", i%4)
		rhs[i] = fmt.Sprintf("v%d", i%2)
	}
	tbl := table.MustNew("t", col("A", lhs...), col("B", rhs...))
	for _, m := range d.Measure(tbl, nil) {
		if m.Column == "A→B" && m.Valid {
			t.Errorf("over-budget violations must be invalid: %+v", m)
		}
	}
}

func TestFDMaxPairsCap(t *testing.T) {
	c := cfg()
	c.MaxFDPairs = 3
	d := &FD{Cfg: c}
	cols := make([]*table.Column, 5)
	for i := range cols {
		vals := make([]string, 8)
		for j := range vals {
			vals[j] = fmt.Sprintf("%d-%d", i, j)
		}
		cols[i] = table.NewColumn(fmt.Sprintf("c%d", i), vals)
	}
	tbl := table.MustNew("t", cols...)
	if ms := d.Measure(tbl, nil); len(ms) > 3 {
		t.Errorf("measured %d pairs, cap is 3", len(ms))
	}
}

func TestUniquenessEmptyColumnSkipped(t *testing.T) {
	d := &Uniqueness{Cfg: cfg()}
	tbl := table.MustNew("t", col("E", "", "", "", "", "", ""))
	if ms := d.Measure(tbl, nil); len(ms) != 0 {
		t.Errorf("empty column measured: %v", ms)
	}
}

// Property: duplicateRows drop-set size always equals rows - distinct.
func TestDuplicateRowsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		vals := make([]string, len(raw))
		for i, b := range raw {
			vals[i] = string(rune('a' + b%7)) // force collisions
		}
		drop, groups := duplicateRows(vals)
		distinct := map[string]bool{}
		for _, v := range vals {
			distinct[v] = true
		}
		if len(drop) != len(vals)-len(distinct) {
			return false
		}
		// groups contains every row whose value occurs more than once.
		count := map[string]int{}
		for _, v := range vals {
			count[v]++
		}
		want := 0
		for _, v := range vals {
			if count[v] > 1 {
				want++
			}
		}
		return len(groups) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for any numeric column, the outlier measurement's θ2 is the
// max-MAD of the column with the flagged row removed.
func TestOutlierTheta2Property(t *testing.T) {
	d := &Outlier{Cfg: cfg()}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 8 + rng.Intn(20)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = fmt.Sprintf("%d", rng.Intn(10000))
		}
		tbl := table.MustNew("t", col("V", vals...))
		ms := d.Measure(tbl, nil)
		if len(ms) == 0 {
			continue
		}
		m := ms[0]
		if len(m.Rows) != 1 {
			t.Fatalf("rows = %v", m.Rows)
		}
		if m.Theta1 < m.Theta2 && m.Valid {
			t.Errorf("valid candidate with theta1 %v < theta2 %v", m.Theta1, m.Theta2)
		}
	}
}

// Property: spelling θ2 >= θ1 always (dropping one value of the closest
// pair can only keep or increase the minimum pairwise distance).
func TestSpellingThetaOrderProperty(t *testing.T) {
	d := &Spelling{Cfg: cfg()}
	rng := rand.New(rand.NewSource(41))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.Intn(10)
		vals := make([]string, n)
		for i := range vals {
			vals[i] = words[rng.Intn(len(words))] + words[rng.Intn(len(words))]
		}
		tbl := table.MustNew("t", col("W", vals...))
		for _, m := range d.Measure(tbl, nil) {
			if m.Theta2 < m.Theta1 {
				t.Fatalf("theta2 %v < theta1 %v for %v", m.Theta2, m.Theta1, vals)
			}
		}
	}
}

var _ = core.Measurement{} // keep import when property tests are trimmed
