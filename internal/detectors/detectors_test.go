package detectors

import (
	"strings"
	"testing"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/table"
	"github.com/unidetect/unidetect/internal/wordlist"
)

func cfg() core.Config { return core.DefaultConfig() }

func col(name string, vals ...string) *table.Column { return table.NewColumn(name, vals) }

func TestOutlierMeasure(t *testing.T) {
	d := &Outlier{Cfg: cfg()}
	tbl := table.MustNew("t",
		col("Pop", "8011", "8.716", "9954", "11895", "11329", "11352", "11709", "10100"),
		col("Name", "a", "b", "c", "d", "e", "f", "g", "h"),
	)
	ms := d.Measure(tbl, nil)
	if len(ms) != 1 {
		t.Fatalf("measurements = %d, want 1 (numeric column only)", len(ms))
	}
	m := ms[0]
	if m.Column != "Pop" || !m.Valid {
		t.Errorf("m = %+v", m)
	}
	if len(m.Rows) != 1 || m.Rows[0] != 1 {
		t.Errorf("Rows = %v, want [1] (the 8.716 cell)", m.Rows)
	}
	if m.Theta1 <= m.Theta2 {
		t.Errorf("theta1 %v should exceed theta2 %v after dropping the outlier", m.Theta1, m.Theta2)
	}
}

func TestOutlierSkipsShortAndNonNumeric(t *testing.T) {
	d := &Outlier{Cfg: cfg()}
	tbl := table.MustNew("t",
		col("Few", "1", "2", "3"),
		col("Words", "x", "y", "z"),
	)
	if ms := d.Measure(tbl, nil); len(ms) != 0 {
		t.Errorf("measurements = %v", ms)
	}
}

func TestOutlierSDVariantDiffers(t *testing.T) {
	mad := &Outlier{Cfg: cfg()}
	sd := &Outlier{Cfg: cfg(), UseSD: true}
	tbl := table.MustNew("t",
		col("V", "10", "11", "12", "10", "11", "12", "11", "1000"),
	)
	mm := mad.Measure(tbl, nil)
	ms := sd.Measure(tbl, nil)
	if len(mm) != 1 || len(ms) != 1 {
		t.Fatal("expected one measurement each")
	}
	if mm[0].Theta1 <= ms[0].Theta1 {
		t.Errorf("MAD score %v should exceed SD score %v for a masked outlier", mm[0].Theta1, ms[0].Theta1)
	}
}

func TestSpellingMeasureFindsTypoPair(t *testing.T) {
	d := &Spelling{Cfg: cfg()}
	tbl := table.MustNew("t", col("Director",
		"Kevin Doeling", "Kevin Dowling", "Alan Myerson", "Rob Morrow", "Lesli Glatter", "Peter Bonerz"))
	ms := d.Measure(tbl, nil)
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
	m := ms[0]
	if m.Theta1 != 1 {
		t.Errorf("theta1 = %v, want 1", m.Theta1)
	}
	if m.Theta2 < 5 {
		t.Errorf("theta2 = %v, want large jump", m.Theta2)
	}
	if len(m.Rows) != 2 || m.Rows[0] != 0 || m.Rows[1] != 1 {
		t.Errorf("Rows = %v", m.Rows)
	}
}

func TestSpellingSkipsNumericColumns(t *testing.T) {
	d := &Spelling{Cfg: cfg()}
	tbl := table.MustNew("t", col("N", "100", "101", "102", "103", "104", "105"))
	if ms := d.Measure(tbl, nil); len(ms) != 0 {
		t.Errorf("numeric column measured: %v", ms)
	}
}

func TestSpellingRomanColumnNotSurprising(t *testing.T) {
	d := &Spelling{Cfg: cfg()}
	tbl := table.MustNew("t", col("SB",
		"Super Bowl XX", "Super Bowl XXI", "Super Bowl XXII", "Super Bowl XXV", "Super Bowl XXVI", "Super Bowl XXVII"))
	ms := d.Measure(tbl, nil)
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
	// MPD stays tiny after perturbation: theta2 - theta1 small.
	if ms[0].Theta2 > ms[0].Theta1+1 {
		t.Errorf("roman column jumped: theta1=%v theta2=%v", ms[0].Theta1, ms[0].Theta2)
	}
}

func TestSpellingDictRefutesWordPairs(t *testing.T) {
	d := &Spelling{Cfg: cfg(), Dict: wordlist.Dictionary()}
	tbl := table.MustNew("t", col("Course",
		"Macroeconomics", "Microeconomics", "Ancient History", "Linear Algebra Basics", "Organic Chemistry", "World Geography"))
	ms := d.Measure(tbl, nil)
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
	if ms[0].Valid {
		t.Error("dictionary-word pair should be refuted (Valid=false)")
	}
	if !strings.Contains(ms[0].Detail, "refuted") {
		t.Errorf("Detail = %q", ms[0].Detail)
	}
	// Without the dictionary the pair stays a candidate.
	d2 := &Spelling{Cfg: cfg()}
	ms2 := d2.Measure(tbl, nil)
	if !ms2[0].Valid {
		t.Error("without Dict the pair should remain valid")
	}
}

func TestUniquenessMeasure(t *testing.T) {
	d := &Uniqueness{Cfg: cfg()}
	vals := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		vals = append(vals, string(rune('A'+i%26))+string(rune('0'+i/26))+"x")
	}
	vals[50] = vals[10] // one duplicate
	tbl := table.MustNew("t", col("ID", vals...))
	ms := d.Measure(tbl, nil)
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
	m := ms[0]
	if !m.Valid {
		t.Fatal("one duplicate within epsilon should be valid")
	}
	if m.Theta1 != 0.99 {
		t.Errorf("theta1 = %v", m.Theta1)
	}
	if m.Theta2 != 1 {
		t.Errorf("theta2 = %v", m.Theta2)
	}
	// Both colliding rows are reported.
	if len(m.Rows) != 2 || m.Rows[0] != 10 || m.Rows[1] != 50 {
		t.Errorf("Rows = %v, want [10 50]", m.Rows)
	}
}

func TestUniquenessTooManyDuplicatesInvalid(t *testing.T) {
	d := &Uniqueness{Cfg: cfg()}
	vals := make([]string, 100)
	for i := range vals {
		vals[i] = string(rune('A' + i%10)) // 10 distinct values
	}
	tbl := table.MustNew("t", col("Cat", vals...))
	ms := d.Measure(tbl, nil)
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
	if ms[0].Valid {
		t.Error("90 duplicates cannot fit the ε budget")
	}
	if ms[0].Theta1 != 0.1 {
		t.Errorf("theta1 = %v", ms[0].Theta1)
	}
}

func TestUniquenessFullyUniqueEvidenceOnly(t *testing.T) {
	d := &Uniqueness{Cfg: cfg()}
	tbl := table.MustNew("t", col("ID", "a1", "b2", "c3", "d4", "e5", "f6"))
	ms := d.Measure(tbl, nil)
	if len(ms) != 1 {
		t.Fatalf("measurements = %d", len(ms))
	}
	if ms[0].Valid {
		t.Error("fully unique column must be evidence-only")
	}
	if ms[0].Theta1 != 1 || ms[0].Theta2 != 1 {
		t.Errorf("thetas = %v, %v", ms[0].Theta1, ms[0].Theta2)
	}
}

func TestFDMeasureDetectsViolation(t *testing.T) {
	d := &FD{Cfg: cfg()}
	city := col("City", "Paris", "Lyon", "Paris", "Nice", "Lyon", "Paris")
	country := col("Country", "France", "France", "France", "France", "France", "Italy")
	tbl := table.MustNew("t", city, country)
	ms := d.Measure(tbl, nil)
	var m *core.Measurement
	for i := range ms {
		if ms[i].Column == "City→Country" {
			m = &ms[i]
		}
	}
	if m == nil {
		t.Fatal("no City→Country measurement")
	}
	if !m.Valid {
		t.Fatalf("violation should be a valid candidate: %+v", m)
	}
	// The full violating group (all Paris rows) is reported; which side
	// is wrong is left to the user, as in the paper's examples.
	if len(m.Rows) != 3 || m.Rows[0] != 0 || m.Rows[1] != 2 || m.Rows[2] != 5 {
		t.Errorf("Rows = %v, want [0 2 5] (the Paris group)", m.Rows)
	}
	if m.Values[2] != "Paris/Italy" {
		t.Errorf("Values = %v", m.Values)
	}
	// Distinct tuples: (Paris,France),(Paris,Italy),(Lyon,France),(Nice,France) = 4;
	// conforming lhs groups: Lyon, Nice = 2 tuples. FR = 2/4.
	if m.Theta1 != 0.5 {
		t.Errorf("theta1 = %v, want 0.5", m.Theta1)
	}
	if m.Theta2 != 1 {
		t.Errorf("theta2 = %v, want 1", m.Theta2)
	}
}

func TestComputeFRCleanPair(t *testing.T) {
	st := computeFR(
		[]string{"a", "b", "a", "c"},
		[]string{"1", "2", "1", "3"},
	)
	if st.fr != 1 || len(st.violations) != 0 || st.groups != 0 {
		t.Errorf("st = %+v", st)
	}
}

func TestComputeFRMajorityKept(t *testing.T) {
	st := computeFR(
		[]string{"x", "x", "x", "y"},
		[]string{"1", "1", "2", "3"},
	)
	if len(st.violations) != 1 || st.violations[0] != 2 {
		t.Errorf("violations = %v, want the minority row [2]", st.violations)
	}
}

func TestFDSynthMeasure(t *testing.T) {
	d := &FDSynth{Cfg: cfg()}
	num := col("Num", "736", "737", "738", "739", "740", "741")
	title := col("Title",
		"Federal Route 736", "Federal Route 737", "Federal Route 748",
		"Federal Route 739", "Federal Route 740", "Federal Route 741")
	tbl := table.MustNew("t", num, title)
	ms := d.Measure(tbl, nil)
	var m *core.Measurement
	for i := range ms {
		if ms[i].Column == "Num→Title" {
			m = &ms[i]
		}
	}
	if m == nil {
		t.Fatalf("no Num→Title measurement in %v", ms)
	}
	if !m.Valid {
		t.Fatalf("violation should be valid: %+v", m)
	}
	if len(m.Rows) != 1 || m.Rows[0] != 2 {
		t.Errorf("Rows = %v, want [2]", m.Rows)
	}
	if !strings.Contains(m.Detail, "concat") {
		t.Errorf("Detail = %q", m.Detail)
	}
}

func TestFDSynthIgnoresUnrelatedColumns(t *testing.T) {
	d := &FDSynth{Cfg: cfg()}
	tbl := table.MustNew("t",
		col("A", "alpha", "beta", "gamma", "delta", "epsilon", "zeta"),
		col("B", "1", "77", "42", "9000", "3", "12"),
	)
	if ms := d.Measure(tbl, nil); len(ms) != 0 {
		t.Errorf("unrelated columns measured: %v", ms)
	}
}

func TestAllReturnsFiveDetectors(t *testing.T) {
	ds := All(cfg(), Options{})
	if len(ds) != 5 {
		t.Fatalf("detectors = %d", len(ds))
	}
	classes := map[core.Class]bool{}
	for _, d := range ds {
		classes[d.Class()] = true
	}
	for c := core.Class(0); int(c) < core.NumClasses; c++ {
		if !classes[c] {
			t.Errorf("missing detector for class %v", c)
		}
	}
	if len(All(cfg(), Options{SkipFDSynth: true})) != 4 {
		t.Error("SkipFDSynth should drop one detector")
	}
	if ByClass(cfg(), Options{}, core.ClassOutlier) == nil {
		t.Error("ByClass failed")
	}
}
