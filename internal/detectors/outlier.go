// Package detectors instantiates the Uni-Detect framework for each error
// class (§3): numeric outliers via max-MAD, spelling via MPD, uniqueness
// via UR, FD via FR, and the FD-synthesis variant of Appendix D. Each
// detector supplies the class's metric function, natural perturbation and
// featurization; the core package supplies the LR machinery.
package detectors

import (
	"fmt"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/stats"
	"github.com/unidetect/unidetect/internal/table"
)

// Dispersion selects the outlier detector's dispersion metric; the paper
// defaults to robust MAD and names SD and IQR as alternatives (§3.1).
type Dispersion uint8

// The dispersion metrics the configuration search can explore.
const (
	DispersionMAD Dispersion = iota
	DispersionSD
	DispersionIQR
)

// String names the metric.
func (d Dispersion) String() string {
	switch d {
	case DispersionSD:
		return "SD"
	case DispersionIQR:
		return "IQR"
	default:
		return "MAD"
	}
}

// Outlier is the §3.1 instantiation: metric max-MAD, perturbation "drop
// the most outlying value", featurization {type, row bucket, log-fit}.
type Outlier struct {
	Cfg core.Config
	// UseSD switches the dispersion metric from MAD to SD — the robust-
	// statistics ablation of Figure 8(b). (Equivalent to Metric =
	// DispersionSD; kept for the ablation call sites.)
	UseSD bool
	// Metric selects the dispersion metric when UseSD is false.
	Metric Dispersion
}

func (d *Outlier) metric() Dispersion {
	if d.UseSD {
		return DispersionSD
	}
	return d.Metric
}

// maxScore routes to the configured dispersion kernel.
//
// alloc-budget: 2 the IQR/MAD kernels sort a copy inside internal/stats; the kernels are shared with training
func (d *Outlier) maxScore(vals []float64) (float64, int) {
	switch d.metric() {
	case DispersionSD:
		return stats.MaxSD(vals)
	case DispersionIQR:
		return stats.MaxIQR(vals)
	default:
		return stats.MaxMAD(vals)
	}
}

// Class implements core.Detector.
func (d *Outlier) Class() core.Class { return core.ClassOutlier }

// Quantizer implements core.Detector: dispersion scores are unbounded and
// ratio-scaled, so bins live on a log1p axis.
func (d *Outlier) Quantizer() evidence.Quantizer {
	return evidence.LogQuantizer{Scale: 10, N: 96}
}

// Directions implements core.Detector (Equation 12).
func (d *Outlier) Directions() evidence.Directions { return evidence.OutlierDirections }

// Measure implements core.Detector.
func (d *Outlier) Measure(t *table.Table, env *core.Env) (out []core.Measurement) {
	defer func() { env.CountMeasurements(core.ClassOutlier, len(out)) }()
	for pos := range t.Columns {
		out = append(out, d.MeasureColumn(t, pos, env, nil)...)
	}
	return out
}

// MeasureColumn implements core.ColumnMeasurer: the single column's
// share of Measure's output. A non-nil scratch supplies the buffer for
// the drop-one resample.
//
// alloc-budget: 10 numeric extraction, log-fit featurization and the returned measurement; the scratchless branch serves the reference oracle
func (d *Outlier) MeasureColumn(t *table.Table, pos int, env *core.Env, sc *core.Scratch) []core.Measurement {
	c := t.Columns[pos]
	typ := c.Type()
	if typ != table.TypeInt && typ != table.TypeFloat {
		return nil
	}
	vals, rows := table.Numbers(c)
	if len(vals) < d.Cfg.MinRows || len(vals) < 8 {
		return nil
	}
	theta1, arg := d.maxScore(vals)
	if arg < 0 {
		return nil
	}
	var rest []float64
	if sc != nil {
		rest = sc.Floats(len(vals) - 1)
	} else {
		rest = make([]float64, 0, len(vals)-1)
	}
	rest = append(rest, vals[:arg]...)
	rest = append(rest, vals[arg+1:]...)
	theta2, _ := d.maxScore(rest)
	key := feature.Key{
		Type: typ,
		Rows: feature.RowBucket(c.Len()),
		A:    feature.Bool(stats.LogTransformFits(vals)),
	}
	// A candidate must actually look like an outlier: removing it
	// must lower the dispersion score, and the score itself must be
	// conventionally outlying (cfg.MinOutlierScore deviations).
	valid := theta2 < theta1 && theta1 >= d.Cfg.MinOutlierScore
	row := rows[arg]
	return []core.Measurement{{
		Key:    key,
		Theta1: theta1,
		Theta2: theta2,
		Valid:  valid,
		Column: c.Name,
		Rows:   []int{row},
		Values: []string{c.Values[row]},
		Detail: fmt.Sprintf("max dispersion score %.2f drops to %.2f without this value", theta1, theta2),
	}}
}

var _ core.ColumnMeasurer = (*Outlier)(nil)
