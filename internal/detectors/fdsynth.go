package detectors

import (
	"fmt"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/synth"
	"github.com/unidetect/unidetect/internal/table"
)

// FDSynth is the Appendix D variant of the FD detector: a column pair is
// only a candidate when an explicit programmatic relationship (learned by
// program synthesis) maps lhs to rhs for a majority of rows; the metric is
// the program-conformance ratio and the perturbation drops the
// non-conforming rows.
type FDSynth struct {
	Cfg core.Config
	// MinConforming is the synthesis acceptance bar (fraction of rows the
	// program must reproduce before a relationship is considered real).
	MinConforming float64
}

// Class implements core.Detector.
func (d *FDSynth) Class() core.Class { return core.ClassFDSynth }

// Quantizer implements core.Detector.
func (d *FDSynth) Quantizer() evidence.Quantizer { return evidence.RatioQuantizer{N: 96} }

// Directions implements core.Detector.
func (d *FDSynth) Directions() evidence.Directions { return evidence.RatioDirections }

func (d *FDSynth) minConforming() float64 {
	if d.MinConforming > 0 {
		return d.MinConforming
	}
	return 0.8
}

// Measure implements core.Detector.
func (d *FDSynth) Measure(t *table.Table, env *core.Env) (out []core.Measurement) {
	defer func() { env.CountMeasurements(core.ClassFDSynth, len(out)) }()
	n := t.NumRows()
	if n < d.Cfg.MinRows {
		return nil
	}
	pairs := 0
	for li, lc := range t.Columns {
		for ri, rc := range t.Columns {
			if li == ri {
				continue
			}
			if pairs >= d.Cfg.MaxFDPairs {
				return out
			}
			pairs++
			// Identity fits are vacuous: a column trivially "maps" to a
			// copy of itself only when the table duplicates a column,
			// which carries no FD-synthesis signal.
			fit, ok := synth.Learn(lc.Values, rc.Values, d.minConforming())
			if !ok {
				continue
			}
			if _, isID := fit.Program.(synth.Identity); isID {
				continue
			}
			eps := d.Cfg.Epsilon(n)
			valid := len(fit.Violations) > 0 && len(fit.Violations) <= eps
			theta2 := 1.0
			if len(fit.Violations) > eps {
				theta2 = fit.Conforming
			}
			key := feature.Key{
				Type: lc.Type(),
				Rows: feature.RowBucket(n),
				A:    feature.RelPrevalenceBucket(prevalenceOf(env, lc)),
				B:    feature.LeftnessBucket(li),
			}
			m := core.Measurement{
				Key:    key,
				Theta1: fit.Conforming,
				Theta2: theta2,
				Valid:  valid,
				Column: lc.Name + "→" + rc.Name,
				Detail: fmt.Sprintf("program %s conforms %.4f", fit.Program, fit.Conforming),
			}
			if valid {
				m.Rows = fit.Violations
				for _, r := range fit.Violations {
					m.Values = append(m.Values, rc.Values[r])
				}
			}
			out = append(out, m)
		}
	}
	return out
}

var _ core.Detector = (*FDSynth)(nil)
