package detectors

import (
	"fmt"
	"strings"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/strdist"
	"github.com/unidetect/unidetect/internal/table"
	"github.com/unidetect/unidetect/internal/wordlist"
)

// Spelling is the §3.2 instantiation: metric MPD (minimum pairwise edit
// distance), perturbation "drop one value of the closest pair",
// featurization {type, row bucket, differing-token length bucket}.
type Spelling struct {
	Cfg core.Config
	// Dict, when set, refutes findings whose differing tokens are all
	// valid dictionary words — the UNIDETECT+Dict variant of §4.3
	// ("Macroeconomics" vs "Microeconomics" are both words, so the pair
	// is not a misspelling).
	Dict *wordlist.Set
}

// Class implements core.Detector.
func (d *Spelling) Class() core.Class { return core.ClassSpelling }

// Quantizer implements core.Detector: MPD is a small integer.
func (d *Spelling) Quantizer() evidence.Quantizer { return evidence.IntQuantizer{N: 48} }

// Directions implements core.Detector (§3.2).
func (d *Spelling) Directions() evidence.Directions { return evidence.SpellingDirections }

// Measure implements core.Detector.
func (d *Spelling) Measure(t *table.Table, env *core.Env) (out []core.Measurement) {
	defer func() { env.CountMeasurements(core.ClassSpelling, len(out)) }()
	for pos := range t.Columns {
		out = append(out, d.MeasureColumn(t, pos, env, nil)...)
	}
	return out
}

// MeasureColumn implements core.ColumnMeasurer: the single column's
// share of Measure's output. A nil scratch takes the original
// allocating MPD scans; a non-nil scratch reuses the worker's rune and
// DP buffers — the scans themselves visit pairs in the same order
// either way, so the measurements are identical.
//
// alloc-budget: 5 token-length featurization, the detail string and the returned measurement
func (d *Spelling) MeasureColumn(t *table.Table, pos int, env *core.Env, sc *core.Scratch) []core.Measurement {
	c := t.Columns[pos]
	if c.Len() < d.Cfg.MinRows {
		return nil
	}
	typ := c.Type()
	if typ == table.TypeInt || typ == table.TypeFloat || typ == table.TypeEmpty {
		// Digit-edit "misspellings" of numbers are the outlier
		// detector's jurisdiction.
		return nil
	}
	var mpd *strdist.Scratch
	if sc != nil {
		mpd = sc.MPD
	}
	p, ok := minPairDist(c.Values, d.Cfg.MPDCap, mpd)
	if !ok {
		return nil
	}
	theta1 := float64(p.Dist)
	// The natural perturbation drops one value of the MPD pair;
	// Equation 3 minimizes LR over O, and with the §3.2 orientation
	// a larger θ2 always yields a smaller LR (Theorem 1), so we keep
	// the drop that raises MPD the most.
	q1, ok1 := secondMinPairDist(c.Values, p.I, d.Cfg.MPDCap, mpd)
	q2, ok2 := secondMinPairDist(c.Values, p.J, d.Cfg.MPDCap, mpd)
	var theta2 float64
	switch {
	case ok1 && ok2:
		theta2 = float64(max(q1.Dist, q2.Dist))
	case ok1:
		theta2 = float64(q1.Dist)
	case ok2:
		theta2 = float64(q2.Dist)
	default:
		return nil // fewer than 3 distinct values; no perturbed MPD
	}
	avgLen := strdist.AvgDifferingTokenLen(c.Values[p.I], c.Values[p.J])
	key := feature.Key{
		Type: typ,
		Rows: feature.RowBucket(c.Len()),
		A:    feature.TokenLenBucket(avgLen),
	}
	// A misspelling candidate must (a) be a close pair ("a small MPD
	// indicates likely misspellings", §3.2) and (b) differ in
	// letters: pairs differing only in digits are ID/numeric
	// discrepancies, not spelling mistakes.
	valid := (d.Cfg.MaxSpellingMPD <= 0 || p.Dist <= d.Cfg.MaxSpellingMPD) &&
		lettersDiffer(c.Values[p.I], c.Values[p.J])
	detail := fmt.Sprintf("closest pair at edit distance %d; next distance %.0f", p.Dist, theta2)
	if d.Dict != nil && bothDictionaryWords(c.Values[p.I], c.Values[p.J], d.Dict) {
		valid = false
		detail += " (refuted: differing tokens are dictionary words)"
	}
	return []core.Measurement{{
		Key:    key,
		Theta1: theta1,
		Theta2: theta2,
		Valid:  valid,
		Column: c.Name,
		Rows:   []int{p.I, p.J},
		Values: []string{c.Values[p.I], c.Values[p.J]},
		Detail: detail,
	}}
}

// minPairDist routes the MPD scan through the scratch variant when a
// scratch is available.
//
// alloc-budget: 1 only the scratchless reference-oracle branch allocates; the scratch scans budget their grow-once buffers at source
func minPairDist(vals []string, cap int, sc *strdist.Scratch) (strdist.Pair, bool) {
	if sc != nil {
		return strdist.MinPairDistCappedScratch(vals, cap, sc)
	}
	return strdist.MinPairDistCapped(vals, cap)
}

// secondMinPairDist routes the perturbed-MPD scan likewise.
//
// alloc-budget: 1 only the scratchless reference-oracle branch allocates; the scratch scans budget their grow-once buffers at source
func secondMinPairDist(vals []string, drop, cap int, sc *strdist.Scratch) (strdist.Pair, bool) {
	if sc != nil {
		return strdist.SecondMinPairDistCappedScratch(vals, drop, cap, sc)
	}
	return strdist.SecondMinPairDistCapped(vals, drop, cap)
}

// bothDictionaryWords reports whether every differing token of the pair is
// a dictionary word on both sides.
//
// alloc-budget: 1 dictionary refutation tokenizes the differing pair; it runs once per candidate, not per pair scan
func bothDictionaryWords(a, b string, dict *wordlist.Set) bool {
	onlyA, onlyB := strdist.DifferingTokens(a, b)
	if len(onlyA) == 0 && len(onlyB) == 0 {
		return false
	}
	for _, t := range onlyA {
		if !dict.Contains(t) {
			return false
		}
	}
	for _, t := range onlyB {
		if !dict.Contains(t) {
			return false
		}
	}
	return true
}

// lettersDiffer reports whether a and b still differ after removing all
// digits — i.e. whether the discrepancy involves letters at all.
func lettersDiffer(a, b string) bool {
	return stripDigits(a) != stripDigits(b)
}

func stripDigits(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if r < '0' || r > '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

var _ core.ColumnMeasurer = (*Spelling)(nil)
