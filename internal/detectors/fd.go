package detectors

import (
	"fmt"
	"sort"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/table"
)

// FD is the §3.4 instantiation: metric FR (FD-compliance ratio over
// distinct (lhs, rhs) tuples), perturbation "drop the rows in violating
// groups", featurization as in §3.3 applied to the lhs column.
type FD struct {
	Cfg core.Config
}

// Class implements core.Detector.
func (d *FD) Class() core.Class { return core.ClassFD }

// Quantizer implements core.Detector.
func (d *FD) Quantizer() evidence.Quantizer { return evidence.RatioQuantizer{N: 96} }

// Directions implements core.Detector.
func (d *FD) Directions() evidence.Directions { return evidence.RatioDirections }

// Measure implements core.Detector.
func (d *FD) Measure(t *table.Table, env *core.Env) (out []core.Measurement) {
	defer func() { env.CountMeasurements(core.ClassFD, len(out)) }()
	n := t.NumRows()
	if n < d.Cfg.MinRows {
		return nil
	}
	pairs := 0
	for li, lc := range t.Columns {
		for ri, rc := range t.Columns {
			if li == ri {
				continue
			}
			if pairs >= d.Cfg.MaxFDPairs {
				return out
			}
			pairs++
			if m, ok := d.measurePair(t, li, ri, lc, rc, env); ok {
				out = append(out, m)
			}
		}
	}
	return out
}

// frStats summarizes one candidate FD (Cl -> Cr).
type frStats struct {
	fr         float64 // FR over distinct tuples (§3.4)
	violations []int   // minority rows of violating groups
	groupRows  []int   // all rows of violating groups (for reporting)
	groups     int     // number of violating lhs groups
}

// computeFR evaluates FR_D(Cl, Cr) and the natural perturbation O: within
// each lhs group carrying more than one rhs value, every row not holding
// the group's majority rhs is suspect.
func computeFR(lhs, rhs []string) frStats {
	type group struct {
		rhsCount map[string]int
		rows     map[string][]int
	}
	groups := make(map[string]*group)
	for i := range lhs {
		g := groups[lhs[i]]
		if g == nil {
			g = &group{rhsCount: map[string]int{}, rows: map[string][]int{}}
			groups[lhs[i]] = g
		}
		g.rhsCount[rhs[i]]++
		g.rows[rhs[i]] = append(g.rows[rhs[i]], i)
	}
	var distinctTuples, conformingTuples int
	var st frStats
	for _, g := range groups {
		distinctTuples += len(g.rhsCount)
		if len(g.rhsCount) == 1 {
			conformingTuples++
			continue
		}
		st.groups++
		// Keep the majority rhs (ties broken by first occurrence) and
		// mark the rest.
		var majority string
		best := -1
		for v, rowList := range g.rows {
			c := g.rhsCount[v]
			if c > best || (c == best && rowList[0] < g.rows[majority][0]) {
				best, majority = c, v
			}
		}
		for v, rowList := range g.rows {
			st.groupRows = append(st.groupRows, rowList...)
			if v != majority {
				st.violations = append(st.violations, rowList...)
			}
		}
	}
	sort.Ints(st.violations)
	sort.Ints(st.groupRows)
	if distinctTuples > 0 {
		st.fr = float64(conformingTuples) / float64(distinctTuples)
	}
	return st
}

func (d *FD) measurePair(t *table.Table, li, ri int, lc, rc *table.Column, env *core.Env) (core.Measurement, bool) {
	n := lc.Len()
	// A candidate FD over an all-distinct lhs is vacuous both ways; it
	// still contributes denominator mass with FR = 1.
	st := computeFR(lc.Values, rc.Values)
	eps := d.Cfg.Epsilon(n)
	valid := len(st.violations) > 0 && len(st.violations) <= eps

	theta2 := 1.0
	if len(st.violations) > eps {
		// Only part of the violations fit the ε budget; approximate the
		// best achievable FR by conforming tuple count after fixing the
		// cheapest groups. For evidence purposes the exact greedy order
		// matters little; we keep θ2 at the unperturbed FR to stay
		// conservative.
		theta2 = st.fr
	}
	key := feature.Key{
		Type: lc.Type(),
		Rows: feature.RowBucket(n),
		A:    feature.RelPrevalenceBucket(prevalenceOf(env, lc)),
		B:    feature.LeftnessBucket(li),
	}
	m := core.Measurement{
		Key:    key,
		Theta1: st.fr,
		Theta2: theta2,
		Valid:  valid,
		Column: lc.Name + "→" + rc.Name,
		Detail: fmt.Sprintf("FR=%.4f with %d violating group(s)", st.fr, st.groups),
	}
	if valid {
		// Report every row of the violating groups: the detection is
		// "these rows conflict" (the paper's O of §3.4 contains both
		// sides of each conflicting pair); which side is wrong is for
		// the user to judge.
		m.Rows = st.groupRows
		for _, r := range st.groupRows {
			m.Values = append(m.Values, lc.Values[r]+"/"+rc.Values[r])
		}
	}
	return m, true
}

var _ core.Detector = (*FD)(nil)
