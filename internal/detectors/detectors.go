package detectors

import (
	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/wordlist"
)

// Options selects detector variants.
type Options struct {
	// WithDict enables the UNIDETECT+Dict spelling refinement (§4.3).
	WithDict bool
	// OutlierSD switches the outlier metric from MAD to SD (ablation).
	OutlierSD bool
	// SkipFDSynth drops the FD-synthesis detector (it is the most
	// expensive; pure four-class runs can omit it).
	SkipFDSynth bool
}

// All returns the standard detector set for the given config: the four
// §3 instantiations plus FD-synthesis.
func All(cfg core.Config, opts Options) []core.Detector {
	sp := &Spelling{Cfg: cfg}
	if opts.WithDict {
		sp.Dict = wordlist.Dictionary()
	}
	ds := []core.Detector{
		sp,
		&Outlier{Cfg: cfg, UseSD: opts.OutlierSD},
		&Uniqueness{Cfg: cfg},
		&FD{Cfg: cfg},
	}
	if !opts.SkipFDSynth {
		ds = append(ds, &FDSynth{Cfg: cfg})
	}
	return ds
}

// ByClass returns the detector handling class c from the standard set.
func ByClass(cfg core.Config, opts Options, c core.Class) core.Detector {
	for _, d := range All(cfg, opts) {
		if d.Class() == c {
			return d
		}
	}
	return nil
}
