package feature

import (
	"testing"
	"testing/quick"

	"github.com/unidetect/unidetect/internal/table"
)

func TestRowBucketBoundaries(t *testing.T) {
	cases := map[int]uint8{
		1: 0, 20: 0, 21: 1, 50: 1, 51: 2, 100: 2, 101: 3,
		500: 3, 501: 4, 1000: 4, 1001: 5, 1000000: 5,
	}
	for n, want := range cases {
		if got := RowBucket(n); got != want {
			t.Errorf("RowBucket(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPrevalenceBucketBoundaries(t *testing.T) {
	cases := map[float64]uint8{
		0: 0, 50: 0, 51: 1, 100: 1, 101: 2, 1000: 2,
		1001: 3, 10000: 3, 10001: 4, 100000: 4, 100001: 5,
	}
	for p, want := range cases {
		if got := PrevalenceBucket(p); got != want {
			t.Errorf("PrevalenceBucket(%v) = %d, want %d", p, got, want)
		}
	}
}

func TestTokenLenBucketBoundaries(t *testing.T) {
	cases := map[float64]uint8{
		1: 0, 5: 0, 5.5: 1, 10: 1, 11: 2, 15: 2, 16: 3, 20: 3, 21: 4,
	}
	for l, want := range cases {
		if got := TokenLenBucket(l); got != want {
			t.Errorf("TokenLenBucket(%v) = %d, want %d", l, got, want)
		}
	}
}

func TestLeftnessBucket(t *testing.T) {
	cases := map[int]uint8{-1: 0, 0: 0, 1: 1, 2: 2, 3: 3, 9: 3}
	for p, want := range cases {
		if got := LeftnessBucket(p); got != want {
			t.Errorf("LeftnessBucket(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestBool(t *testing.T) {
	if Bool(true) != 1 || Bool(false) != 0 {
		t.Error("Bool encoding wrong")
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Type: table.TypeMixed, Rows: 2, A: 1, B: 3}
	if k.String() != "mixed/r2/a1/b3" {
		t.Errorf("String = %q", k.String())
	}
}

// Property: bucketizers are monotone non-decreasing.
func TestBucketMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		if RowBucket(x) > RowBucket(y) {
			return false
		}
		return PrevalenceBucket(float64(x)*7) <= PrevalenceBucket(float64(y)*7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
