// Package feature implements Uni-Detect's featurization-by-subsetting
// (§2.2.2, Figure 5): background-corpus columns are partitioned into
// disjoint buckets along dimensions such as value type, row count,
// column leftness, token prevalence, differing-token length, and
// log-transform fit; statistics are then learned per bucket, so a test
// column is compared only against corpus columns "like" it.
package feature

import (
	"fmt"

	"github.com/unidetect/unidetect/internal/table"
)

// Key identifies one bucket of the featurization cube. Type and Rows are
// shared by every error class; A and B carry the class-specific dimensions
// (prevalence and leftness for uniqueness/FD, differing-token length for
// spelling, log-fit for outliers). Unused dimensions stay zero.
type Key struct {
	Type table.ValueType
	Rows uint8
	A    uint8
	B    uint8
}

// String renders the key compactly for diagnostics.
func (k Key) String() string {
	return fmt.Sprintf("%s/r%d/a%d/b%d", k.Type, k.Rows, k.A, k.B)
}

// NumRowBuckets is the number of row-count buckets.
const NumRowBuckets = 6

// RowBucket bucketizes a row count per §3.1/§3.2/§3.3:
// {(0-20], (20-50], (50-100], (100-500], (500-1000], (1000-∞)}.
func RowBucket(n int) uint8 {
	switch {
	case n <= 20:
		return 0
	case n <= 50:
		return 1
	case n <= 100:
		return 2
	case n <= 500:
		return 3
	case n <= 1000:
		return 4
	default:
		return 5
	}
}

// NumPrevalenceBuckets is the number of token-prevalence buckets.
const NumPrevalenceBuckets = 6

// PrevalenceBucket bucketizes Prev(C) per §3.3 using the paper's absolute
// table counts: {(0-50], (50-100], (100-1000], (1000-10000],
// (10000-100000], (100000-∞)}. Sensible only at the paper's 100M-table
// corpus scale; detectors use RelPrevalenceBucket instead.
func PrevalenceBucket(p float64) uint8 {
	switch {
	case p <= 50:
		return 0
	case p <= 100:
		return 1
	case p <= 1000:
		return 2
	case p <= 10000:
		return 3
	case p <= 100000:
		return 4
	default:
		return 5
	}
}

// RelPrevalenceBucket bucketizes the *fraction* of corpus tables an
// average token of the column occurs in. Relative edges make the
// featurization invariant to corpus size (the paper's absolute 50 / 100 /
// 1000 ... edges presume its 100M-table corpus), and the bands are kept
// deliberately coarse so that a user column whose token mix differs a
// little from the corpus still lands with its peers: ID-like tokens
// (≤0.1%), rare tokens (≤2%), common tokens (≤20%), ubiquitous ones.
func RelPrevalenceBucket(frac float64) uint8 {
	switch {
	case frac <= 0.001:
		return 0
	case frac <= 0.02:
		return 1
	case frac <= 0.2:
		return 2
	default:
		return 3
	}
}

// NumTokenLenBuckets is the number of differing-token-length buckets.
const NumTokenLenBuckets = 5

// TokenLenBucket bucketizes the average length of the tokens that differ
// between the MPD pair per §3.2: {(0-5], (5-10], (10-15], (15-20], (20-∞)}.
func TokenLenBucket(l float64) uint8 {
	switch {
	case l <= 5:
		return 0
	case l <= 10:
		return 1
	case l <= 15:
		return 2
	case l <= 20:
		return 3
	default:
		return 4
	}
}

// NumLeftnessBuckets is the number of column-position buckets.
const NumLeftnessBuckets = 4

// LeftnessBucket bucketizes the 0-based column position counting from the
// left (§3.3, citing [26, 28]): positions 0, 1, 2 and "3 or later".
func LeftnessBucket(pos int) uint8 {
	if pos < 0 {
		pos = 0
	}
	if pos > 3 {
		pos = 3
	}
	return uint8(pos)
}

// Bool encodes a boolean dimension (e.g. log-transform fit, §3.1).
func Bool(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// WildRows and WildB mark wildcard buckets: statistics aggregated over
// every value of the wildcarded dimension, with the rest of the key
// intact. Sparse full buckets back off through a chain of these before
// falling all the way to the whole-corpus grid — so a 3000-row
// enterprise column still benefits from type- and class-specific
// evidence even when the training corpus has few tables that large, and
// the dimension that matters most for a class is surrendered last.
const (
	WildRows uint8 = 0xFE
	WildB    uint8 = 0xFD
)

// GlobalType is the pseudo value type of the whole-corpus bucket key.
const GlobalType = table.ValueType(0xFF)

// GlobalKey is the pseudo feature bucket holding whole-corpus statistics.
var GlobalKey = Key{Type: GlobalType}

// WildRowsKey returns key with its row bucket wildcarded.
func WildRowsKey(k Key) Key {
	k.Rows = WildRows
	return k
}

// WildBKey returns key with its secondary class dimension wildcarded.
func WildBKey(k Key) Key {
	k.B = WildB
	return k
}

// Backoff returns the bucket lookup chain for a key, most specific first
// (excluding the full key itself and the global grid). It returns an
// array, not a slice, so hot lookup paths pay no allocation.
func Backoff(k Key) [3]Key {
	return [3]Key{
		WildBKey(k),              // drop leftness first: least informative
		WildRowsKey(k),           // then row count
		WildBKey(WildRowsKey(k)), // then both
	}
}

// Pack encodes the key into a uint32 whose natural ordering equals the
// lexicographic (Type, Rows, A, B) order — the layout the compact LR
// index binary-searches over.
func Pack(k Key) uint32 {
	return uint32(k.Type)<<24 | uint32(k.Rows)<<16 | uint32(k.A)<<8 | uint32(k.B)
}

// Unpack inverts Pack.
func Unpack(p uint32) Key {
	return Key{Type: table.ValueType(p >> 24), Rows: uint8(p >> 16), A: uint8(p >> 8), B: uint8(p)}
}
