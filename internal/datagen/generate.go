package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"github.com/unidetect/unidetect/internal/table"
	"github.com/unidetect/unidetect/internal/wordlist"
)

// GenTable couples a generated table with its (hidden) schema; the schema
// is consumed only by the error injector and by tests — detectors never
// see it.
type GenTable struct {
	Table  *table.Table
	schema schema
}

// Result is the output of one corpus generation run.
type Result struct {
	Spec   Spec
	Tables []*table.Table
	Labels []Label
}

// Generate synthesizes a corpus per spec, deterministically: table i is
// produced from an rng seeded by (spec.Seed, i), so results are identical
// regardless of parallelism.
func Generate(spec Spec) *Result {
	gts := generateTables(spec)
	res := &Result{Spec: spec, Tables: make([]*table.Table, len(gts))}
	for i, gt := range gts {
		res.Tables[i] = gt.Table
	}
	// Error injection: one pass, deterministic. ErrorRate is the expected
	// number of errors per table; each injection targets a column not yet
	// corrupted in that table.
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed1abe1))
	for i := range gts {
		n := int(spec.ErrorRate)
		if rng.Float64() < spec.ErrorRate-float64(n) {
			n++
		}
		usedCols := map[string]bool{}
		for e := 0; e < n; e++ {
			if lbls, ok := inject(rng, &gts[i], usedCols); ok {
				res.Labels = append(res.Labels, lbls...)
			}
		}
	}
	return res
}

func generateTables(spec Spec) []GenTable {
	out := make([]GenTable, spec.NumTables)
	nw := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (spec.NumTables + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > spec.NumTables {
			hi = spec.NumTables
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				rng := rand.New(rand.NewSource(mix(spec.Seed, int64(i))))
				out[i] = genTable(rng, spec, i)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// mix produces a well-spread seed for table i.
func mix(seed, i int64) int64 {
	x := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return int64(x)
}

func genTable(rng *rand.Rand, spec Spec, idx int) GenTable {
	rows := sampleRows(rng, spec.AvgRows)
	sch := buildSchema(rng, spec, rows)
	used := make(map[string]bool)
	cols := make([]*table.Column, len(sch.kinds))

	// Geo FD pairs are generated from city indices so the mapping is
	// functional; synth pairs are generated from their lhs.
	cityIdxByCol := map[int][]int{}
	for _, rel := range sch.relations {
		if rel.kind == relGeoFD {
			cityIdxByCol[rel.lhs] = randCityIndices(rng, rows)
		}
	}

	for j, k := range sch.kinds {
		name := colName(k, j, used)
		if idx, ok := cityIdxByCol[j]; ok {
			vals := make([]string, rows)
			cities := wordlist.Cities()
			for r, ci := range idx {
				vals[r] = cities[ci]
			}
			cols[j] = table.NewColumn(name, vals)
			continue
		}
		cols[j] = table.NewColumn(name, genColumn(rng, k, rows))
	}
	// Fill relation rhs columns from their lhs.
	for _, rel := range sch.relations {
		switch rel.kind {
		case relGeoFD:
			vals := make([]string, rows)
			for r, ci := range cityIdxByCol[rel.lhs] {
				vals[r] = cityCountry(ci)
			}
			cols[rel.rhs].Values = vals
			cols[rel.rhs].Invalidate()
		case relSynthCat:
			prefix := []string{"Federal Route", "State Highway", "District", "Precinct"}[rng.Intn(4)]
			vals := make([]string, rows)
			for r, v := range cols[rel.lhs].Values {
				vals[r] = prefix + " " + v
			}
			cols[rel.rhs].Values = vals
			cols[rel.rhs].Invalidate()
		case relSynthName:
			// lhs must be "Last, First"; rhs is the last-name column.
			lhsVals := genCommaNames(rng, rows)
			cols[rel.lhs].Values = lhsVals
			cols[rel.lhs].Invalidate()
			vals := make([]string, rows)
			for r, v := range lhsVals {
				vals[r] = splitLast(v)
			}
			cols[rel.rhs].Values = vals
			cols[rel.rhs].Invalidate()
		}
	}
	t := table.MustNew(fmt.Sprintf("%s-%06d", spec.Name, idx), cols...)
	return GenTable{Table: t, schema: sch}
}

func splitLast(fullName string) string {
	for i := 0; i < len(fullName); i++ {
		if fullName[i] == ',' {
			return fullName[:i]
		}
	}
	return fullName
}

func randCityIndices(rng *rand.Rand, n int) []int {
	cities := wordlist.Cities()
	out := make([]int, n)
	for i := range out {
		out[i] = skewedIndex(rng, len(cities))
	}
	return out
}

func sampleRows(rng *rand.Rand, avg float64) int {
	// Log-normal spread around avg; E[exp(N(mu,s))] = exp(mu + s^2/2),
	// so mu = ln(avg) - s^2/2. The wide sigma gives the corpus a heavy
	// tail of large tables, as real web crawls have — large-column
	// feature buckets need native training support.
	const sigma = 0.8
	mu := math.Log(avg) - sigma*sigma/2
	n := int(math.Exp(rng.NormFloat64()*sigma + mu))
	if n < 6 {
		n = 6
	}
	if max := int(avg * 30); n > max && max > 6 {
		n = max
	}
	return n
}

func sampleCols(rng *rand.Rand, avg float64) int {
	n := int(math.Round(rng.NormFloat64()*1.2 + avg))
	if n < 2 {
		n = 2
	}
	if n > 12 {
		n = 12
	}
	return n
}

func buildSchema(rng *rand.Rand, spec Spec, rows int) schema {
	ncols := sampleCols(rng, spec.AvgCols)
	var sch schema
	weights := kindWeights(spec.Profile)

	// Probability of a leading key column; enterprise sheets, being
	// database extracts, almost always carry one.
	pKey := 0.3
	if spec.Profile == ProfileEnterprise {
		pKey = 0.55
	}
	if rng.Float64() < pKey {
		keyKinds := []colKind{colCode, colCode, colICAO, colSeq}
		sch.kinds = append(sch.kinds, keyKinds[rng.Intn(len(keyKinds))])
	}

	// Geo FD pair (city -> country).
	if len(sch.kinds)+2 <= ncols && rng.Float64() < 0.22 {
		lhs := len(sch.kinds)
		sch.kinds = append(sch.kinds, colCity, colCountry)
		sch.relations = append(sch.relations, relation{kind: relGeoFD, lhs: lhs, rhs: lhs + 1})
	}

	// Synthesizable pair: numeric id -> concatenated title, or
	// "Last, First" -> last name.
	if len(sch.kinds)+2 <= ncols && rng.Float64() < 0.12 {
		lhs := len(sch.kinds)
		if rng.Intn(2) == 0 {
			sch.kinds = append(sch.kinds, colSeq, colWordPhrase)
			sch.relations = append(sch.relations, relation{kind: relSynthCat, lhs: lhs, rhs: lhs + 1})
		} else {
			sch.kinds = append(sch.kinds, colFullName, colWordPhrase)
			sch.relations = append(sch.relations, relation{kind: relSynthName, lhs: lhs, rhs: lhs + 1})
		}
	}

	for len(sch.kinds) < ncols {
		sch.kinds = append(sch.kinds, pickKind(rng, weights))
	}
	return sch
}
