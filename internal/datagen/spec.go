// Package datagen synthesizes web-table corpora with ground-truth error
// labels. It substitutes for the paper's 135M-table search-engine corpus
// (WEB), its Wikipedia subset (WIKI) and its enterprise-spreadsheet crawl
// (Enterprise): the generator reproduces the column archetypes that drive
// the paper's analysis — ID/code columns, person names and dates with
// chance duplicates, heavy-tailed and election-style numeric columns,
// roman-numeral and chemical-formula families with inherently small edit
// distances, idiosyncratic aliases — and an error injector that plants
// labeled spelling, outlier, uniqueness, FD and FD-synthesis errors.
package datagen

// ErrorClass enumerates the classes of injected (and detected) errors,
// matching the paper's instantiation E = {Uniqueness, FD, numeric-outlier,
// misspelling} plus the FD-synthesis variant of Appendix D.
type ErrorClass uint8

const (
	// ClassSpelling is a misspelled cell value (§3.2).
	ClassSpelling ErrorClass = iota
	// ClassOutlier is a corrupted numeric cell (§3.1).
	ClassOutlier
	// ClassUniqueness is a duplicate value in a key-like column (§3.3).
	ClassUniqueness
	// ClassFD is a functional-dependency violation (§3.4).
	ClassFD
	// ClassFDSynth is a violation of a programmatic (synthesizable)
	// column relationship (Appendix D).
	ClassFDSynth
	numErrorClasses
)

// NumErrorClasses is the number of error classes.
const NumErrorClasses = int(numErrorClasses)

// String names the class.
func (c ErrorClass) String() string {
	switch c {
	case ClassSpelling:
		return "spelling"
	case ClassOutlier:
		return "outlier"
	case ClassUniqueness:
		return "uniqueness"
	case ClassFD:
		return "fd"
	case ClassFDSynth:
		return "fd-synthesis"
	default:
		return "unknown"
	}
}

// Label is one injected ground-truth error.
type Label struct {
	Table    string
	Column   string
	Row      int
	Class    ErrorClass
	Original string // the clean value before corruption
}

// Profile shifts the archetype mix between corpus flavors.
type Profile uint8

const (
	// ProfileWeb mimics general web tables: small, diverse.
	ProfileWeb Profile = iota
	// ProfileWiki mimics Wikipedia tables: entity-heavy, curated.
	ProfileWiki
	// ProfileEnterprise mimics enterprise spreadsheets: large,
	// database-extracted, ID/code heavy.
	ProfileEnterprise
)

// Spec parameterizes one corpus generation run.
type Spec struct {
	Name      string
	Profile   Profile
	NumTables int
	// AvgRows is the target mean rows per table (log-normal-ish spread).
	AvgRows float64
	// AvgCols is the target mean columns per table.
	AvgCols float64
	// ErrorRate is the expected number of injected errors per table
	// (values above 1 plant several errors in distinct columns).
	// Training corpora use a small rate ("mostly clean", §2.2); test
	// corpora use a larger one so top-100 evaluation has support.
	ErrorRate float64
	Seed      int64
}

// Scale returns a copy of s with NumTables multiplied by f (minimum 1).
func (s Spec) Scale(f float64) Spec {
	n := int(float64(s.NumTables) * f)
	if n < 1 {
		n = 1
	}
	s.NumTables = n
	return s
}

// The presets mirror Table 2 of the paper at 1/1000 of its table counts
// (WEB 135M→135K, WIKI 3.6M→3.6K, Enterprise 489K→489 at full preset
// scale would lose too much Enterprise mass, so Enterprise keeps 1/100)
// while preserving the per-table shape (avg #cols, avg #rows; Enterprise
// rows are kept at 1/10 of the paper's 2932 to bound memory).

// WebSpec is the WEB corpus preset (Table 2 row 1, scaled).
func WebSpec() Spec {
	return Spec{Name: "WEB", Profile: ProfileWeb, NumTables: 135000,
		AvgRows: 20.7, AvgCols: 4.6, ErrorRate: 0.01, Seed: 101}
}

// WikiSpec is the WIKI corpus preset (Table 2 row 2, scaled).
func WikiSpec() Spec {
	return Spec{Name: "WIKI", Profile: ProfileWiki, NumTables: 3600,
		AvgRows: 18, AvgCols: 5.7, ErrorRate: 0.008, Seed: 202}
}

// EnterpriseSpec is the Enterprise corpus preset (Table 2 row 3, scaled).
func EnterpriseSpec() Spec {
	return Spec{Name: "Enterprise", Profile: ProfileEnterprise, NumTables: 4890,
		AvgRows: 293, AvgCols: 4.7, ErrorRate: 0.02, Seed: 303}
}

// TestSample returns the test-benchmark variant of a spec: the paper
// samples 10% of WIKI, 1% of WEB and all of Enterprise (§4.1) and needs
// enough injected errors for top-K judging, so test corpora get a higher
// error rate.
func TestSample(s Spec) Spec {
	switch s.Profile {
	case ProfileWeb:
		s = s.Scale(0.01)
	case ProfileWiki:
		s = s.Scale(0.1)
	}
	s.Name += "-test"
	s.Seed += 1000003 // disjoint stream from the training corpus
	// Expected errors per table scale with table size: the paper's intro
	// estimates 1–5% of *cells* are erroneous, and Enterprise tables are
	// an order of magnitude taller than web tables.
	s.ErrorRate = 1.0
	if s.Profile == ProfileEnterprise {
		s.ErrorRate = 3.0
	}
	return s
}
