package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"github.com/unidetect/unidetect/internal/wordlist"
)

// colKind enumerates column archetypes. Each archetype reproduces one of
// the data families the paper's analysis hinges on.
type colKind uint8

const (
	colCode       colKind = iota // unique mixed-alphanumeric ID (Figure 6)
	colICAO                      // unique short letter codes (Figure 4a)
	colSeq                       // sequential integers (row ids)
	colFullName                  // person names, chance dups (Figure 2a)
	colCity                      // toponyms incl. rare ones (Figure 3b)
	colCountry                   // country names
	colWordPhrase                // short english phrases
	colDateISO                   // dates, chance dups (Figure 2b)
	colYear                      // years in a narrow range
	colIntUniform                // uniform integers
	colIntSmall                  // narrow-range counts/ratings
	colIntSparse                 // zero-inflated counts (medals, goals)
	colIntHeavy                  // log-normal heavy-tailed ints (Fig 2f bait)
	colFloat                     // gaussian measurements
	colPercent                   // election-style skewed percents (Fig 2e bait)
	colRoman                     // roman-numeral titles (Figure 2h bait)
	colChem                      // chemical formulas (Figure 2g bait)
	colAlias                     // idiosyncratic aliases "JenniferA" (Speller bait)
	colEmail                     // addresses like j.doe@example.com
	colPhone                     // formatted phone numbers
	colCurrency                  // "$1,234.56"-style amounts
	numColKinds
)

// relKind marks structural relationships between generated columns.
type relKind uint8

const (
	relGeoFD    relKind = iota // city -> country, a true FD
	relSynthCat                // id -> "<prefix> <id>" concat program (Fig 13)
	relSynthName
	// relSynthName: "Last, First" -> last-name column split program (App D)
)

// relation links a lhs column index to a rhs column index in a schema.
type relation struct {
	kind     relKind
	lhs, rhs int
}

// schema describes one generated table's column plan.
type schema struct {
	kinds     []colKind
	relations []relation
}

// weights per profile; indexed by colKind.
func kindWeights(p Profile) []int {
	w := make([]int, numColKinds)
	switch p {
	case ProfileWeb:
		w[colCode] = 8
		w[colICAO] = 2
		w[colSeq] = 4
		w[colFullName] = 12
		w[colCity] = 8
		w[colCountry] = 5
		w[colWordPhrase] = 14
		w[colDateISO] = 8
		w[colYear] = 5
		w[colIntUniform] = 12
		w[colIntSmall] = 8
		w[colIntSparse] = 6
		w[colIntHeavy] = 6
		w[colFloat] = 8
		w[colPercent] = 4
		w[colRoman] = 2
		w[colChem] = 2
		w[colAlias] = 2
		w[colEmail] = 3
		w[colPhone] = 3
		w[colCurrency] = 3
	case ProfileWiki:
		w[colCode] = 4
		w[colICAO] = 3
		w[colSeq] = 4
		w[colFullName] = 16
		w[colCity] = 10
		w[colCountry] = 8
		w[colWordPhrase] = 14
		w[colDateISO] = 8
		w[colYear] = 8
		w[colIntUniform] = 8
		w[colIntSmall] = 6
		w[colIntSparse] = 7
		w[colIntHeavy] = 6
		w[colFloat] = 5
		w[colPercent] = 5
		w[colRoman] = 4
		w[colChem] = 3
		w[colAlias] = 1
		w[colEmail] = 1
		w[colPhone] = 1
		w[colCurrency] = 2
	case ProfileEnterprise:
		w[colCode] = 18
		w[colICAO] = 2
		w[colSeq] = 10
		w[colFullName] = 8
		w[colCity] = 5
		w[colCountry] = 3
		w[colWordPhrase] = 8
		w[colDateISO] = 10
		w[colYear] = 3
		w[colIntUniform] = 14
		w[colIntSmall] = 8
		w[colIntSparse] = 5
		w[colIntHeavy] = 8
		w[colFloat] = 10
		w[colPercent] = 2
		w[colRoman] = 0
		w[colChem] = 1
		w[colAlias] = 6
		w[colEmail] = 6
		w[colPhone] = 5
		w[colCurrency] = 6
	}
	return w
}

func pickKind(rng *rand.Rand, weights []int) colKind {
	total := 0
	for _, v := range weights {
		total += v
	}
	r := rng.Intn(total)
	for k, v := range weights {
		if r < v {
			return colKind(k)
		}
		r -= v
	}
	return colWordPhrase
}

// colName returns a header for a column of the given kind, unique within
// the table via the position suffix when needed.
func colName(k colKind, pos int, used map[string]bool) string {
	base := map[colKind]string{
		colCode:       "ID",
		colICAO:       "Code",
		colSeq:        "Num",
		colFullName:   "Name",
		colCity:       "City",
		colCountry:    "Country",
		colWordPhrase: "Title",
		colDateISO:    "Date",
		colYear:       "Year",
		colIntUniform: "Count",
		colIntSmall:   "Rank",
		colIntSparse:  "Goals",
		colIntHeavy:   "Population",
		colFloat:      "Value",
		colPercent:    "Percent",
		colRoman:      "Edition",
		colChem:       "Formula",
		colAlias:      "Alias",
		colEmail:      "Email",
		colPhone:      "Phone",
		colCurrency:   "Amount",
	}[k]
	name := base
	for i := 2; used[name]; i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	used[name] = true
	_ = pos
	return name
}

// cityCountry returns the fixed, globally consistent country for city
// index i — the ground-truth mapping that makes city->country a real FD.
func cityCountry(i int) string {
	cs := wordlist.Countries()
	return cs[(i*2654435761)%len(cs)]
}

// genColumn generates n clean values of the given kind.
func genColumn(rng *rand.Rand, k colKind, n int) []string {
	switch k {
	case colCode:
		return genCodes(rng, n)
	case colICAO:
		return genLetterCodes(rng, n, 4)
	case colSeq:
		start := rng.Intn(5000) + 1
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%d", start+i)
		}
		return out
	case colFullName:
		return genNames(rng, n)
	case colCity:
		cs := wordlist.Cities()
		out := make([]string, n)
		for i := range out {
			out[i] = cs[skewedIndex(rng, len(cs))]
		}
		return out
	case colCountry:
		cs := wordlist.Countries()
		out := make([]string, n)
		for i := range out {
			out[i] = cs[rng.Intn(len(cs))]
		}
		return out
	case colWordPhrase:
		return genPhrases(rng, n)
	case colDateISO:
		return genDates(rng, n)
	case colYear:
		base := 1900 + rng.Intn(100)
		span := 5 + rng.Intn(60)
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%d", base+rng.Intn(span))
		}
		return out
	case colIntUniform:
		mag := []int{100, 1000, 10000, 100000}[rng.Intn(4)]
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%d", rng.Intn(mag))
		}
		return out
	case colIntSmall:
		// Ratings, jersey numbers, small counts: narrow ranges whose
		// max-MAD scores are tiny — they populate the low tail of the
		// evidence grids.
		base := rng.Intn(20)
		span := 3 + rng.Intn(30)
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%d", base+rng.Intn(span))
		}
		return out
	case colIntSparse:
		// Zero-inflated counts: most rows are 0, a few are large. The
		// isolated top value is legitimate, but its normalized gap makes
		// it prime DBOD/LOF bait; MAD-based methods see a zero MAD and
		// stand down.
		zeroFrac := 0.5 + rng.Float64()*0.4
		mag := []int{5, 20, 200}[rng.Intn(3)]
		out := make([]string, n)
		for i := range out {
			if rng.Float64() < zeroFrac {
				out[i] = "0"
				continue
			}
			out[i] = fmt.Sprintf("%d", 1+rng.Intn(mag))
		}
		return out
	case colIntHeavy:
		// Occasionally extreme tails: the Figure 2(e,f) bait that makes
		// naive gap/dispersion detectors false-positive.
		mu := 7 + rng.Float64()*3
		sigma := 0.9 + rng.Float64()*1.4
		out := make([]string, n)
		for i := range out {
			v := int(math.Exp(rng.NormFloat64()*sigma + mu))
			if v < 1 {
				v = 1
			}
			out[i] = fmt.Sprintf("%d", v)
		}
		return out
	case colFloat:
		mean := 10 + rng.Float64()*500
		sd := mean * (0.05 + rng.Float64()*0.3)
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%.2f", math.Abs(rng.NormFloat64()*sd+mean))
		}
		return out
	case colPercent:
		return genElectionPercents(rng, n)
	case colRoman:
		return genRomanTitles(rng, n)
	case colChem:
		return sampleDistinct(rng, wordlist.ChemicalFormulas(), n)
	case colAlias:
		return genAliases(rng, n)
	case colEmail:
		return genEmails(rng, n)
	case colPhone:
		return genPhones(rng, n)
	case colCurrency:
		return genCurrency(rng, n)
	default:
		return genPhrases(rng, n)
	}
}

// genCodes produces unique mixed-alphanumeric IDs like "KV214-310B8K2" or
// "S042091" (Figure 6).
func genCodes(rng *rand.Rand, n int) []string {
	style := rng.Intn(3)
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		var v string
		switch style {
		case 0:
			v = fmt.Sprintf("%s%03d-%03d%s", randLetters(rng, 2), rng.Intn(1000), rng.Intn(1000), randLetters(rng, 2))
		case 1:
			v = fmt.Sprintf("S%06d", rng.Intn(1000000))
		default:
			v = fmt.Sprintf("%s%04d%s", randLetters(rng, 2), rng.Intn(10000), randLetters(rng, 2))
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// genLetterCodes produces unique fixed-length uppercase codes (ICAO-like,
// Figure 4a).
func genLetterCodes(rng *rand.Rand, n, length int) []string {
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		v := randLetters(rng, length)
		if seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// genNames produces person names sampled with replacement — from a long
// enough list two passengers named "Kelly, Mr. James" will eventually
// coincide by chance (Figure 2a), which is exactly the bait naive
// uniqueness detectors fall for.
func genNames(rng *rand.Rand, n int) []string {
	first, last := wordlist.FirstNames(), wordlist.LastNames()
	comma := rng.Intn(2) == 0
	// Large rosters usually carry fuller names (middle initials), which
	// keeps chance near-collisions realistic as columns grow.
	initials := n > 60 && rng.Intn(2) == 0
	out := make([]string, n)
	for i := range out {
		f := first[rng.Intn(len(first))]
		l := last[rng.Intn(len(last))]
		if initials {
			f += " " + string(rune('A'+rng.Intn(26))) + "."
		}
		if comma {
			out[i] = l + ", " + f
		} else {
			out[i] = f + " " + l
		}
	}
	return out
}

// genCommaNames produces "Last, First" names: the lhs of the synthesizable
// name relationship of Appendix D.
func genCommaNames(rng *rand.Rand, n int) []string {
	first, last := wordlist.FirstNames(), wordlist.LastNames()
	out := make([]string, n)
	for i := range out {
		out[i] = last[rng.Intn(len(last))] + ", " + first[rng.Intn(len(first))]
	}
	return out
}

func genPhrases(rng *rand.Rand, n int) []string {
	words := wordlist.English()
	out := make([]string, n)
	for i := range out {
		k := 1 + rng.Intn(3)
		parts := make([]string, k)
		for j := range parts {
			parts[j] = words[rng.Intn(len(words))]
		}
		parts[0] = strings.Title(parts[0]) //nolint:staticcheck // ASCII-only input
		out[i] = strings.Join(parts, " ")
	}
	// About one phrase column in seven carries a legitimate inflected
	// variant of one of its rows ("Annual report" / "Annual reports") —
	// the "Macroeconomics"/"Microeconomics" family of §4.3: word pairs
	// at tiny edit distances that are NOT misspellings.
	if n >= 4 && rng.Intn(7) == 0 {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if dst == src {
			dst = (dst + 1) % n
		}
		if v := pluralizeLast(out[src]); v != "" {
			out[dst] = v
		}
	}
	return out
}

// pluralizeLast appends "s" to the final word of a phrase, or returns ""
// when the phrase already ends in s.
func pluralizeLast(phrase string) string {
	if phrase == "" || strings.HasSuffix(phrase, "s") {
		return ""
	}
	return phrase + "s"
}

func genDates(rng *rand.Rand, n int) []string {
	base := time.Date(1990+rng.Intn(30), time.January, 1, 0, 0, 0, 0, time.UTC)
	span := 200 + rng.Intn(2000)
	// Each column commits to one format; different columns disagree —
	// the pattern heterogeneity Auto-Detect-style detection relies on.
	layout := []string{"2006-01-02", "2006-01-02", "2006-Jan-02", "01/02/2006"}[rng.Intn(4)]
	out := make([]string, n)
	for i := range out {
		d := base.AddDate(0, 0, rng.Intn(span))
		out[i] = d.Format(layout)
	}
	return out
}

// genElectionPercents produces the Figure 2(e) pattern: one dominant value
// and a long tail of tiny ones summing to <= 100, all legitimate. High
// exponents give landslide distributions whose top value dwarfs the rest —
// the gap-based detectors' classic false positive.
func genElectionPercents(rng *rand.Rand, n int) []string {
	raw := make([]float64, n)
	var sum float64
	exp := 1.3 + rng.Float64()*1.2
	for i := range raw {
		raw[i] = 1 / math.Pow(float64(i+1), exp)
		sum += raw[i]
	}
	out := make([]string, n)
	for i := range raw {
		out[i] = fmt.Sprintf("%.2f", 100*raw[i]/sum)
	}
	return out
}

// genRomanTitles produces sequential "<prefix> <roman>" values whose
// pairwise edit distances are inherently tiny (Figure 2h).
func genRomanTitles(rng *rand.Rand, n int) []string {
	prefixes := []string{"Super Bowl", "Chapter", "Part", "Volume", "Final", "Act", "Book", "Season"}
	p := prefixes[rng.Intn(len(prefixes))]
	start := 1 + rng.Intn(30)
	nums := wordlist.RomanNumerals(start + n)
	out := make([]string, n)
	for i := range out {
		out[i] = p + " " + nums[start+i-1]
	}
	return out
}

// genAliases produces idiosyncratic employee-alias-like values
// ("JenniferA", "SmithB") that are OOV for any dictionary or speller.
func genAliases(rng *rand.Rand, n int) []string {
	first := wordlist.FirstNames()
	out := make([]string, n)
	for i := range out {
		out[i] = first[rng.Intn(len(first))] + randLetters(rng, 1)
	}
	return out
}

// sampleDistinct samples up to n distinct values from pool (with
// replacement once the pool is exhausted).
func sampleDistinct(rng *rand.Rand, pool []string, n int) []string {
	idx := rng.Perm(len(pool))
	out := make([]string, n)
	for i := range out {
		if i < len(idx) {
			out[i] = pool[idx[i]]
		} else {
			out[i] = pool[rng.Intn(len(pool))]
		}
	}
	return out
}

// skewedIndex draws an index with a Zipf-like head bias: early list
// entries (major cities) occur often, tail entries (rare toponyms, the
// Figure 3 bait) only occasionally.
func skewedIndex(rng *rand.Rand, n int) int {
	r := rng.Float64()
	i := int(float64(n) * r * r * r)
	if i >= n {
		i = n - 1
	}
	return i
}

func randLetters(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('A' + rng.Intn(26))
	}
	return string(b)
}

// genEmails produces firstname.lastname@domain addresses: idiosyncratic
// mixed values with a fixed structural pattern. A quarter of columns
// contain a numbered sibling of one of their rows ("mary.meyer2@…") —
// the standard name-taken convention, a legitimate distance-1 pair that
// differs only in a digit.
func genEmails(rng *rand.Rand, n int) []string {
	first, last := wordlist.FirstNames(), wordlist.LastNames()
	domains := []string{"example.com", "corp.example.com", "mail.example.org", "dept.example.net"}
	domain := domains[rng.Intn(len(domains))]
	out := make([]string, n)
	for i := range out {
		out[i] = strings.ToLower(first[rng.Intn(len(first))]) + "." +
			strings.ToLower(last[rng.Intn(len(last))]) + "@" + domain
	}
	if n >= 4 && rng.Intn(4) == 0 {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if dst == src {
			dst = (dst + 1) % n
		}
		if at := strings.IndexByte(out[src], '@'); at > 0 {
			out[dst] = out[src][:at] + fmt.Sprint(2+rng.Intn(3)) + out[src][at:]
		}
	}
	return out
}

// genPhones produces phone numbers in one per-column format.
func genPhones(rng *rand.Rand, n int) []string {
	layout := rng.Intn(3)
	out := make([]string, n)
	for i := range out {
		a, b, c := 200+rng.Intn(800), rng.Intn(1000), rng.Intn(10000)
		switch layout {
		case 0:
			out[i] = fmt.Sprintf("(%03d) %03d-%04d", a, b, c)
		case 1:
			out[i] = fmt.Sprintf("%03d-%03d-%04d", a, b, c)
		default:
			out[i] = fmt.Sprintf("+1 %03d %03d %04d", a, b, c)
		}
	}
	return out
}

// genCurrency produces "$1,234.56"-style amounts; the thousands separator
// and two-decimal suffix exercise the numeric parser's grouping rules.
func genCurrency(rng *rand.Rand, n int) []string {
	scale := []float64{100, 1000, 100000}[rng.Intn(3)]
	out := make([]string, n)
	for i := range out {
		v := rng.Float64() * scale
		whole := int64(v)
		cents := int(v*100) % 100
		out[i] = "$" + groupThousands(whole) + fmt.Sprintf(".%02d", cents)
	}
	return out
}

// groupThousands renders 1234567 as "1,234,567".
func groupThousands(v int64) string {
	s := fmt.Sprint(v)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}
