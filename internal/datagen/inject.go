package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/unidetect/unidetect/internal/table"
)

// inject plants one labeled error into gt (occasionally more than one
// cell for paired-outlier injections), choosing uniformly among the error
// classes the table's schema supports. Columns named in usedCols are
// skipped and corrupted columns are recorded there, so repeated
// injections into one table never collide. It returns the labels and
// whether an injection happened.
func inject(rng *rand.Rand, gt *GenTable, usedCols map[string]bool) ([]Label, bool) {
	type candidate struct {
		class ErrorClass
		apply func() ([]Label, bool)
	}
	var cands []candidate
	t := gt.Table
	if t.NumRows() < 6 {
		return nil, false
	}
	for j, k := range gt.schema.kinds {
		j, k := j, k
		if usedCols[t.Columns[j].Name] {
			continue
		}
		switch k {
		case colFullName, colCity, colCountry, colWordPhrase, colAlias, colEmail:
			if isRelationColumn(gt.schema, j) {
				continue // keep relation columns for FD injections
			}
			cands = append(cands, candidate{ClassSpelling, func() ([]Label, bool) {
				return one(injectTypo(rng, t, j))
			}})
		case colIntUniform, colIntHeavy, colFloat:
			if t.NumRows() >= 8 {
				cands = append(cands, candidate{ClassOutlier, func() ([]Label, bool) {
					return injectOutliers(rng, t, j)
				}})
			}
		case colCode, colICAO, colSeq:
			if isRelationColumn(gt.schema, j) {
				continue
			}
			cands = append(cands, candidate{ClassUniqueness, func() ([]Label, bool) {
				return one(injectDuplicate(rng, t, j))
			}})
		}
	}
	for _, rel := range gt.schema.relations {
		rel := rel
		if usedCols[t.Columns[rel.lhs].Name] || usedCols[t.Columns[rel.rhs].Name] {
			continue
		}
		switch rel.kind {
		case relGeoFD:
			cands = append(cands, candidate{ClassFD, func() ([]Label, bool) {
				return one(injectFDViolation(rng, t, rel.lhs, rel.rhs))
			}})
		case relSynthCat, relSynthName:
			cands = append(cands, candidate{ClassFDSynth, func() ([]Label, bool) {
				return one(injectSynthViolation(rng, t, rel))
			}})
		}
	}
	// Try candidates in random order until one succeeds.
	for _, i := range rng.Perm(len(cands)) {
		if lbls, ok := cands[i].apply(); ok {
			for _, l := range lbls {
				usedCols[l.Column] = true
			}
			return lbls, true
		}
	}
	return nil, false
}

// one adapts a single-label injector to the multi-label interface.
func one(l Label, ok bool) ([]Label, bool) {
	if !ok {
		return nil, false
	}
	return []Label{l}, true
}

// injectOutliers corrupts one numeric cell — and, 30% of the time, a
// second cell in the same column with the same scale factor. Paired
// extremes are the masked-outlier scenario robust statistics exist for:
// they inflate the SD enough to hide themselves, while the MAD barely
// moves [48].
func injectOutliers(rng *rand.Rand, t *table.Table, col int) ([]Label, bool) {
	first, ok := injectOutlier(rng, t, col)
	if !ok {
		return nil, false
	}
	out := []Label{first}
	if rng.Float64() < 0.3 {
		if second, ok := injectOutlier(rng, t, col); ok && second.Row != first.Row {
			out = append(out, second)
		}
	}
	return out, true
}

func isRelationColumn(sch schema, j int) bool {
	for _, rel := range sch.relations {
		if rel.lhs == j || rel.rhs == j {
			return true
		}
	}
	return false
}

// injectTypo overwrites one cell with a single-edit corruption of another
// row's value, creating the close pair a misspelling produces in real data
// (Figure 4g: "Kevin Doeling" next to "Kevin Dowling").
func injectTypo(rng *rand.Rand, t *table.Table, col int) (Label, bool) {
	c := t.Columns[col]
	n := c.Len()
	for attempt := 0; attempt < 20; attempt++ {
		src := rng.Intn(n)
		v := c.Values[src]
		if longestTokenLen(v) < 5 {
			continue
		}
		typo := mutate(rng, v)
		if typo == v || contains(c.Values, typo) {
			continue
		}
		dst := rng.Intn(n)
		if dst == src {
			dst = (dst + 1) % n
		}
		orig := c.Values[dst]
		c.Values[dst] = typo
		c.Invalidate()
		return Label{Table: t.Name, Column: c.Name, Row: dst, Class: ClassSpelling, Original: orig}, true
	}
	return Label{}, false
}

// mutate applies one random character edit inside a random token of v
// with at least 5 letters (typos land anywhere, not only in the longest
// word).
func mutate(rng *rand.Rand, v string) string {
	toks := strings.Split(v, " ")
	var eligible []int
	for i, tok := range toks {
		if letterCount(tok) >= 5 {
			eligible = append(eligible, i)
		}
	}
	var pick int
	if len(eligible) > 0 {
		pick = eligible[rng.Intn(len(eligible))]
	} else {
		pick = 0
		for i, tok := range toks {
			if len(tok) > len(toks[pick]) {
				pick = i
			}
		}
	}
	tok := toks[pick]
	if len(tok) < 2 {
		return v
	}
	b := []byte(tok)
	pos := 1 + rng.Intn(len(b)-1) // keep the first letter
	switch rng.Intn(3) {
	case 0: // substitute
		b[pos] = otherLetter(rng, b[pos])
	case 1: // delete
		b = append(b[:pos], b[pos+1:]...)
	default: // insert
		ins := byte('a' + rng.Intn(26))
		b = append(b[:pos], append([]byte{ins}, b[pos:]...)...)
	}
	toks[pick] = string(b)
	return strings.Join(toks, " ")
}

func letterCount(tok string) int {
	n := 0
	for _, r := range tok {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
			n++
		}
	}
	return n
}

func otherLetter(rng *rand.Rand, c byte) byte {
	lower := c >= 'a' && c <= 'z'
	upper := c >= 'A' && c <= 'Z'
	for {
		var r byte
		switch {
		case lower:
			r = byte('a' + rng.Intn(26))
		case upper:
			r = byte('A' + rng.Intn(26))
		default:
			r = byte('a' + rng.Intn(26))
		}
		if r != c {
			return r
		}
	}
}

// injectOutlier corrupts one numeric cell with a scale error (missing or
// shifted decimal point: ×100, ÷100, ×1000 or ÷1000 — the Figure 4(e)
// "8.716 instead of 8,716" family).
func injectOutlier(rng *rand.Rand, t *table.Table, col int) (Label, bool) {
	c := t.Columns[col]
	for attempt := 0; attempt < 20; attempt++ {
		row := rng.Intn(c.Len())
		f, isInt, ok := table.ParseNumber(c.Values[row])
		if !ok || f == 0 {
			continue
		}
		// Subtle power-of-ten shifts: a dropped decimal place or a comma
		// read as a decimal point, not cartoonish ×1000 blowups — naive
		// dispersion baselines must compete with natural heavy tails.
		factor := []float64{100, 0.01, 10, 0.1}[rng.Intn(4)]
		corrupted := f * factor
		var nv string
		if isInt && factor >= 1 {
			nv = fmt.Sprintf("%d", int64(corrupted))
		} else {
			nv = fmt.Sprintf("%.3f", corrupted)
		}
		if nv == c.Values[row] {
			continue
		}
		orig := c.Values[row]
		c.Values[row] = nv
		c.Invalidate()
		return Label{Table: t.Name, Column: c.Name, Row: row, Class: ClassOutlier, Original: orig}, true
	}
	return Label{}, false
}

// injectDuplicate copies one key value over another row, producing a true
// uniqueness violation in an ID-like column (Figure 6).
func injectDuplicate(rng *rand.Rand, t *table.Table, col int) (Label, bool) {
	c := t.Columns[col]
	n := c.Len()
	if n < 3 {
		return Label{}, false
	}
	src := rng.Intn(n)
	dst := rng.Intn(n)
	if dst == src {
		dst = (dst + 1) % n
	}
	if c.Values[src] == c.Values[dst] {
		return Label{}, false
	}
	orig := c.Values[dst]
	c.Values[dst] = c.Values[src]
	c.Invalidate()
	return Label{Table: t.Name, Column: c.Name, Row: dst, Class: ClassUniqueness, Original: orig}, true
}

// injectFDViolation breaks the city->country FD by changing the country of
// one occurrence of a repeated city (Figure 4c/d style).
func injectFDViolation(rng *rand.Rand, t *table.Table, lhs, rhs int) (Label, bool) {
	lc, rc := t.Columns[lhs], t.Columns[rhs]
	n := lc.Len()
	// Find (or create) a repeated lhs value; scan in row order so the
	// choice is deterministic.
	byVal := map[string][]int{}
	var group []int
	for i, v := range lc.Values {
		byVal[v] = append(byVal[v], i)
		if group == nil && len(byVal[v]) == 2 {
			group = byVal[v]
		}
	}
	if group != nil {
		group = byVal[lc.Values[group[0]]]
	}
	if group == nil {
		// Duplicate one city (keeping the FD intact) to create a group.
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			dst = (dst + 1) % n
		}
		lc.Values[dst] = lc.Values[src]
		rc.Values[dst] = rc.Values[src]
		lc.Invalidate()
		group = []int{src, dst}
	}
	row := group[rng.Intn(len(group))]
	orig := rc.Values[row]
	// Swap in a different country from elsewhere in the column (or a
	// mutated one if the column is constant).
	for attempt := 0; attempt < 20; attempt++ {
		alt := rc.Values[rng.Intn(n)]
		if alt != orig {
			rc.Values[row] = alt
			rc.Invalidate()
			return Label{Table: t.Name, Column: rc.Name, Row: row, Class: ClassFD, Original: orig}, true
		}
	}
	return Label{}, false
}

// injectSynthViolation breaks a programmatic relationship: for concat
// pairs, the id cell is changed so it no longer matches its composed title
// (Figure 13: shield "738" next to "Malaysia Federal Route 748"); for name
// pairs, the split-out last name is corrupted (Figure 14 style).
func injectSynthViolation(rng *rand.Rand, t *table.Table, rel relation) (Label, bool) {
	lc, rc := t.Columns[rel.lhs], t.Columns[rel.rhs]
	n := lc.Len()
	row := rng.Intn(n)
	switch rel.kind {
	case relSynthCat:
		// Corrupt the lhs id so rhs no longer embeds it.
		other := lc.Values[rng.Intn(n)]
		if other == lc.Values[row] {
			other = lc.Values[(row+1)%n]
		}
		if other == lc.Values[row] {
			return Label{}, false
		}
		orig := lc.Values[row]
		lc.Values[row] = other
		lc.Invalidate()
		return Label{Table: t.Name, Column: lc.Name, Row: row, Class: ClassFDSynth, Original: orig}, true
	case relSynthName:
		// Corrupt the split-out last name.
		orig := rc.Values[row]
		typo := mutate(rng, orig)
		if typo == orig {
			return Label{}, false
		}
		rc.Values[row] = typo
		rc.Invalidate()
		return Label{Table: t.Name, Column: rc.Name, Row: row, Class: ClassFDSynth, Original: orig}, true
	}
	return Label{}, false
}

func longestTokenLen(v string) int {
	best := 0
	for _, tok := range strings.Split(v, " ") {
		letters := 0
		for _, r := range tok {
			if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' {
				letters++
			}
		}
		if letters > best {
			best = letters
		}
	}
	return best
}

func contains(vals []string, v string) bool {
	for _, x := range vals {
		if x == v {
			return true
		}
	}
	return false
}
