package datagen

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"github.com/unidetect/unidetect/internal/wordlist"
)

func TestSkewedIndexHeadBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 100
	counts := make([]int, n)
	for i := 0; i < 100000; i++ {
		idx := skewedIndex(rng, n)
		if idx < 0 || idx >= n {
			t.Fatalf("index out of range: %d", idx)
		}
		counts[idx]++
	}
	head, tail := 0, 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	for i := n - 10; i < n; i++ {
		tail += counts[i]
	}
	if head < tail*5 {
		t.Errorf("head %d should dwarf tail %d", head, tail)
	}
	if tail == 0 {
		t.Error("tail must still occur")
	}
}

func TestPluralizeLast(t *testing.T) {
	cases := map[string]string{
		"Annual report":  "Annual reports",
		"Cross":          "",
		"":               "",
		"one two three":  "one two threes",
		"already plural": "", // ends in s? "plural" does not... see below
	}
	delete(cases, "already plural")
	for in, want := range cases {
		if got := pluralizeLast(in); got != want {
			t.Errorf("pluralizeLast(%q) = %q, want %q", in, got, want)
		}
	}
	if got := pluralizeLast("ends with s"); got != "" {
		t.Errorf("s-suffix should return empty, got %q", got)
	}
}

func TestGenPhrasesPluralVariants(t *testing.T) {
	// Over many columns, roughly 1/7 should contain a plural twin of one
	// of their own rows.
	rng := rand.New(rand.NewSource(77))
	withTwin := 0
	const cols = 400
	for c := 0; c < cols; c++ {
		vals := genPhrases(rng, 12)
		set := map[string]bool{}
		for _, v := range vals {
			set[v] = true
		}
		for _, v := range vals {
			if !strings.HasSuffix(v, "s") && set[v+"s"] {
				withTwin++
				break
			}
		}
	}
	if withTwin < cols/20 || withTwin > cols/3 {
		t.Errorf("plural-twin columns = %d of %d, want ~1/7", withTwin, cols)
	}
}

func TestConfusableSurnamesPresent(t *testing.T) {
	set := map[string]bool{}
	for _, n := range wordlist.LastNames() {
		set[n] = true
	}
	pairs := [][2]string{{"Johnson", "Johnston"}, {"Hansen", "Hanson"}, {"Fisher", "Fischer"}}
	for _, p := range pairs {
		if !set[p[0]] || !set[p[1]] {
			t.Errorf("confusable pair %v missing from surnames", p)
		}
	}
}

func TestGenNamesInitialsOnlyInBigColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		small := genNames(rng, 20)
		for _, v := range small {
			if strings.HasSuffix(v, ".") {
				t.Fatalf("small column got initials: %q", v)
			}
		}
	}
	sawInitials := false
	for trial := 0; trial < 30 && !sawInitials; trial++ {
		big := genNames(rng, 100)
		for _, v := range big {
			if strings.HasSuffix(v, ".") {
				sawInitials = true
				break
			}
		}
	}
	if !sawInitials {
		t.Error("no big column ever used initials")
	}
}

func TestGenElectionPercentsSumToHundred(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := genElectionPercents(rng, 10)
	var sum float64
	var first, second float64
	for i, v := range vals {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("bad percent %q", v)
		}
		sum += f
		if i == 0 {
			first = f
		}
		if i == 1 {
			second = f
		}
	}
	if sum < 99 || sum > 101 {
		t.Errorf("sum = %v", sum)
	}
	if first <= second {
		t.Errorf("election percents must be decreasing: %v then %v", first, second)
	}
}
