package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/unidetect/unidetect/internal/table"
)

func smallSpec() Spec {
	return Spec{Name: "T", Profile: ProfileWeb, NumTables: 300,
		AvgRows: 20, AvgCols: 4.6, ErrorRate: 0.3, Seed: 42}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(smallSpec())
	b := Generate(smallSpec())
	if len(a.Tables) != len(b.Tables) || len(a.Labels) != len(b.Labels) {
		t.Fatalf("shape mismatch: %d/%d tables, %d/%d labels",
			len(a.Tables), len(b.Tables), len(a.Labels), len(b.Labels))
	}
	for i := range a.Tables {
		ta, tb := a.Tables[i], b.Tables[i]
		if ta.Name != tb.Name || ta.NumCols() != tb.NumCols() || ta.NumRows() != tb.NumRows() {
			t.Fatalf("table %d differs structurally", i)
		}
		for j := range ta.Columns {
			for r := range ta.Columns[j].Values {
				if ta.Columns[j].Values[r] != tb.Columns[j].Values[r] {
					t.Fatalf("table %d cell (%d,%d) differs", i, j, r)
				}
			}
		}
	}
}

func TestGenerateShape(t *testing.T) {
	spec := smallSpec()
	res := Generate(spec)
	if len(res.Tables) != spec.NumTables {
		t.Fatalf("tables = %d", len(res.Tables))
	}
	var rows, cols int
	for _, tb := range res.Tables {
		rows += tb.NumRows()
		cols += tb.NumCols()
		if tb.NumRows() < 6 {
			t.Errorf("table %s too small: %d rows", tb.Name, tb.NumRows())
		}
	}
	avgRows := float64(rows) / float64(len(res.Tables))
	avgCols := float64(cols) / float64(len(res.Tables))
	if avgRows < spec.AvgRows*0.6 || avgRows > spec.AvgRows*1.6 {
		t.Errorf("avgRows = %.1f, want near %.1f", avgRows, spec.AvgRows)
	}
	if avgCols < spec.AvgCols-1 || avgCols > spec.AvgCols+1 {
		t.Errorf("avgCols = %.1f, want near %.1f", avgCols, spec.AvgCols)
	}
}

func TestLabelsPointAtCorruptedCells(t *testing.T) {
	res := Generate(smallSpec())
	if len(res.Labels) < 20 {
		t.Fatalf("too few labels: %d", len(res.Labels))
	}
	byName := map[string]*table.Table{}
	for _, tb := range res.Tables {
		byName[tb.Name] = tb
	}
	for _, l := range res.Labels {
		tb := byName[l.Table]
		if tb == nil {
			t.Fatalf("label references unknown table %q", l.Table)
		}
		c := tb.Column(l.Column)
		if c == nil {
			t.Fatalf("label references unknown column %q in %q", l.Column, l.Table)
		}
		if l.Row < 0 || l.Row >= c.Len() {
			t.Fatalf("label row %d out of range", l.Row)
		}
		if c.Values[l.Row] == l.Original {
			t.Errorf("label %v: cell equals original %q (no corruption applied)", l, l.Original)
		}
	}
}

func TestAllErrorClassesInjected(t *testing.T) {
	spec := smallSpec()
	spec.NumTables = 2000
	spec.ErrorRate = 0.5
	res := Generate(spec)
	got := map[ErrorClass]int{}
	for _, l := range res.Labels {
		got[l.Class]++
	}
	for _, cls := range []ErrorClass{ClassSpelling, ClassOutlier, ClassUniqueness, ClassFD, ClassFDSynth} {
		if got[cls] < 5 {
			t.Errorf("class %v has only %d labels", cls, got[cls])
		}
	}
}

func TestInjectedTypoCreatesClosePair(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tbl := table.MustNew("t", table.NewColumn("Name", []string{
		"Jonathan Alexander", "Christopher Sullivan", "Margaret Hamilton",
		"Benjamin Harrison", "Elizabeth Crawford", "Katherine Peterson",
	}))
	lbl, ok := injectTypo(rng, tbl, 0)
	if !ok {
		t.Fatal("injectTypo failed")
	}
	c := tbl.Columns[0]
	// The corrupted cell must be within distance 2 of some other value.
	corrupted := c.Values[lbl.Row]
	close := false
	for i, v := range c.Values {
		if i == lbl.Row {
			continue
		}
		if editDist(corrupted, v) <= 2 {
			close = true
		}
	}
	if !close {
		t.Errorf("typo %q has no close neighbor in %v", corrupted, c.Values)
	}
}

// editDist is a tiny local Levenshtein for test validation only.
func editDist(a, b string) int {
	la, lb := len(a), len(b)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[lb]
}

func TestInjectDuplicateCreatesDuplicate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tbl := table.MustNew("t", table.NewColumn("ID", []string{"A1", "B2", "C3", "D4", "E5"}))
	lbl, ok := injectDuplicate(rng, tbl, 0)
	if !ok {
		t.Fatal("injectDuplicate failed")
	}
	seen := map[string]int{}
	for _, v := range tbl.Columns[0].Values {
		seen[v]++
	}
	dups := 0
	for _, n := range seen {
		if n > 1 {
			dups++
		}
	}
	if dups != 1 {
		t.Errorf("want exactly one duplicated value, got %d (%v)", dups, tbl.Columns[0].Values)
	}
	if tbl.Columns[0].Values[lbl.Row] == lbl.Original {
		t.Error("label row not corrupted")
	}
}

func TestInjectOutlierScalesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := []string{"8011", "9954", "11895", "11329", "11352", "11709", "10044", "9898"}
	tbl := table.MustNew("t", table.NewColumn("Pop", vals))
	lbl, ok := injectOutlier(rng, tbl, 0)
	if !ok {
		t.Fatal("injectOutlier failed")
	}
	f, _, ok2 := table.ParseNumber(tbl.Columns[0].Values[lbl.Row])
	if !ok2 {
		t.Fatalf("corrupted cell %q not numeric", tbl.Columns[0].Values[lbl.Row])
	}
	orig, _, _ := table.ParseNumber(lbl.Original)
	ratio := f / orig
	ok3 := false
	for _, want := range []float64{100, 0.01, 10, 0.1} {
		if ratio > want*0.999 && ratio < want*1.001 {
			ok3 = true
		}
	}
	if !ok3 {
		t.Errorf("scale ratio = %v, want power-of-ten shift", ratio)
	}
}

func TestGeoFDIsFunctionalBeforeInjection(t *testing.T) {
	// Clean generation (error rate 0): every *relation-linked* geo pair
	// must satisfy the FD. (Independently sampled City/Country filler
	// columns carry no FD — they are deliberate bait.)
	spec := smallSpec()
	spec.ErrorRate = 0
	spec.NumTables = 400
	checked := 0
	for _, gt := range generateTables(spec) {
		for _, rel := range gt.schema.relations {
			if rel.kind != relGeoFD {
				continue
			}
			city := gt.Table.Columns[rel.lhs]
			country := gt.Table.Columns[rel.rhs]
			m := map[string]string{}
			for i, cv := range city.Values {
				if prev, ok := m[cv]; ok && prev != country.Values[i] {
					t.Fatalf("table %s violates city->country FD without injection", gt.Table.Name)
				}
				m[cv] = country.Values[i]
			}
			checked++
		}
	}
	if checked < 10 {
		t.Errorf("too few geo tables generated: %d", checked)
	}
}

func TestSynthCatRelationHolds(t *testing.T) {
	spec := smallSpec()
	spec.ErrorRate = 0
	spec.NumTables = 600
	res := Generate(spec)
	found := false
	for _, tb := range res.Tables {
		num := tb.Column("Num")
		title := tb.Column("Title")
		if num == nil || title == nil {
			continue
		}
		ok := true
		for i := range num.Values {
			if !strings.HasSuffix(title.Values[i], " "+num.Values[i]) {
				ok = false
				break
			}
		}
		if ok && len(num.Values) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no synth concat pair found in 600 tables")
	}
}

func TestSpecPresets(t *testing.T) {
	for _, s := range []Spec{WebSpec(), WikiSpec(), EnterpriseSpec()} {
		if s.NumTables <= 0 || s.AvgRows <= 0 || s.AvgCols <= 0 {
			t.Errorf("bad preset %+v", s)
		}
	}
	ts := TestSample(WebSpec())
	if ts.NumTables != WebSpec().NumTables/100 {
		t.Errorf("web test sample = %d tables", ts.NumTables)
	}
	if ts.Seed == WebSpec().Seed {
		t.Error("test sample must use a disjoint seed stream")
	}
	if TestSample(WikiSpec()).NumTables != WikiSpec().NumTables/10 {
		t.Error("wiki test sample should be 10%")
	}
	if TestSample(EnterpriseSpec()).NumTables != EnterpriseSpec().NumTables {
		t.Error("enterprise test sample should be the full corpus")
	}
}

func TestScale(t *testing.T) {
	s := WebSpec().Scale(0.001)
	if s.NumTables != 135 {
		t.Errorf("scaled = %d", s.NumTables)
	}
	if WebSpec().Scale(0).NumTables != 1 {
		t.Error("scale floor should be 1")
	}
}

func TestErrorClassString(t *testing.T) {
	want := map[ErrorClass]string{
		ClassSpelling: "spelling", ClassOutlier: "outlier",
		ClassUniqueness: "uniqueness", ClassFD: "fd", ClassFDSynth: "fd-synthesis",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if ErrorClass(200).String() != "unknown" {
		t.Error("unknown class string")
	}
}
