package experiments

import (
	"strings"
	"testing"
)

// labScale is small enough for unit tests yet large enough for the
// qualitative shape assertions to hold.
const labScale = 0.15

var sharedLab = NewLab(Options{Scale: labScale})

func TestTable2ShapeMatchesPaper(t *testing.T) {
	rows := sharedLab.Table2()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Corpus] = r
	}
	web, wiki, ent := byName["WEB"], byName["WIKI"], byName["Enterprise"]
	// Per-table shape must match Table 2 (within generator noise).
	near := func(got, want, tol float64) bool { return got > want-tol && got < want+tol }
	if !near(web.AvgCols, 4.6, 0.6) || !near(wiki.AvgCols, 5.7, 0.7) || !near(ent.AvgCols, 4.7, 0.6) {
		t.Errorf("avg cols: web %.1f wiki %.1f ent %.1f", web.AvgCols, wiki.AvgCols, ent.AvgCols)
	}
	if !near(web.AvgRows, 20.7, 8) || !near(wiki.AvgRows, 18, 7) {
		t.Errorf("avg rows: web %.1f wiki %.1f", web.AvgRows, wiki.AvgRows)
	}
	if ent.AvgRows < 150 {
		t.Errorf("enterprise rows = %.1f, want large (paper: 2932, scaled /10)", ent.AvgRows)
	}
	// Ordering of corpus sizes is preserved: WEB > Enterprise-ish, etc.
	if web.NumTables == 0 || wiki.NumTables == 0 || ent.NumTables == 0 {
		t.Error("empty corpora")
	}
	out := RenderTable2(rows)
	if !strings.Contains(out, "WEB") || !strings.Contains(out, "avg-#rows") {
		t.Errorf("RenderTable2 = %q", out)
	}
}

func TestRenderChart(t *testing.T) {
	fig := &Figure{
		ID: "figX", Caption: "test", Corpus: "C",
		Ks: []int{10, 20},
		Series: []Series{
			{Method: "UNIDETECT", Precision: []float64{1.0, 0.8}, NumPreds: 42},
			{Method: "Baseline", Precision: []float64{0.3, 0.2}, NumPreds: 7},
		},
	}
	out := fig.RenderChart()
	for _, want := range []string{"figX", "1.0 |", "0 = UNIDETECT (n=42)", "1 = Baseline (n=7)", "  10 ", "  20 "} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The UNIDETECT mark must appear on the 1.0 band for K=10.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "0") {
		t.Errorf("top band missing mark: %q", lines[1])
	}
}

func TestFigureAtUnknown(t *testing.T) {
	fig := &Figure{Ks: []int{10}, Series: []Series{{Method: "M", Precision: []float64{0.5}}}}
	if fig.At("M", 99) != -1 {
		t.Error("unknown K should give -1")
	}
	if fig.At("missing", 10) != -1 {
		t.Error("unknown method should give -1")
	}
	if fig.At("M", 10) != 0.5 {
		t.Error("At lookup failed")
	}
}

func TestUnknownFigure(t *testing.T) {
	if _, err := sharedLab.Figure("fig99z"); err == nil {
		t.Error("unknown figure should error")
	}
}

func TestIDsCoverEveryFigureSpec(t *testing.T) {
	ids := IDs()
	if ids[0] != "table2" {
		t.Error("table2 must be listed")
	}
	specs := figureSpecs()
	listed := map[string]bool{}
	for _, id := range ids[1:] {
		listed[id] = true
		if _, ok := specs[id]; !ok {
			t.Errorf("listed id %q has no spec", id)
		}
	}
	for id := range specs {
		if !listed[id] {
			t.Errorf("spec %q not listed in IDs()", id)
		}
	}
}

func meanPrecision(f *Figure, method string) float64 {
	for _, s := range f.Series {
		if s.Method == method {
			var sum float64
			for _, p := range s.Precision {
				sum += p
			}
			return sum / float64(len(s.Precision))
		}
	}
	return -1
}

// TestFigure8Shape checks the headline qualitative results of Figure 8 on
// the WEB test corpus: Uni-Detect beats every baseline at K=100 for all
// three error classes, +Dict is at least as precise as plain spelling,
// and Max-MAD beats Max-SD.
func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	figA, err := sharedLab.Figure("fig8a")
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + figA.Render())
	const k = 100
	ud := figA.At("UNIDETECT", k)
	if ud < 0.7 {
		t.Errorf("UNIDETECT spelling P@100 = %.2f, want >= 0.7 (paper: >0.8)", ud)
	}
	if d := figA.At("UNIDETECT+Dict", k); d < ud-0.05 {
		t.Errorf("+Dict P@100 = %.2f below plain %.2f", d, ud)
	}
	for _, m := range []string{"Speller", "Fuzzy-Cluster", "Word2Vec", "GloVe"} {
		if p := figA.At(m, k); p >= ud {
			t.Errorf("%s P@100 = %.2f should be below UNIDETECT %.2f", m, p, ud)
		}
	}

	figB, err := sharedLab.Figure("fig8b")
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + figB.Render())
	udB := figB.At("UNIDETECT", k)
	// The mechanical ground truth cannot credit natural single-extreme
	// values a human judge would call errors, so the absolute bar is
	// below the paper's 0.92; the dominance ordering is the shape check.
	// At this unit-test scale (0.15) the absolute precision is training-
	// limited; at -scale 0.4+ (cmd/benchfig) it reaches ~0.9, matching
	// the paper's 0.92.
	if udB < 0.45 {
		t.Errorf("UNIDETECT outlier P@100 = %.2f, want >= 0.45 (paper: 0.92)", udB)
	}
	// Dominance is asserted on the mean over all K with a small noise
	// tolerance: at this unit-test scale single-K comparisons flip on
	// 2–3 predictions. The record run (cmd/benchfig -scale 0.3,
	// EXPERIMENTS.md) shows strict dominance at K=100.
	udMean := meanPrecision(figB, "UNIDETECT")
	for _, m := range []string{"Max-MAD", "Max-SD", "DBOD", "LOF"} {
		if p := meanPrecision(figB, m); p > udMean+0.05 {
			t.Errorf("%s mean precision %.2f should not exceed UNIDETECT %.2f", m, p, udMean)
		}
	}
	// The robust-statistics effect is strongest at the head of the
	// ranking (the paper's Figure 8(b) gap).
	if figB.At("Max-MAD", 30) <= figB.At("Max-SD", 30) {
		t.Errorf("Max-MAD (%.2f) should beat Max-SD (%.2f) at K=30 — robust statistics effect",
			figB.At("Max-MAD", 30), figB.At("Max-SD", 30))
	}

	figC, err := sharedLab.Figure("fig8c")
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + figC.Render())
	udC := figC.At("UNIDETECT", k)
	if udC < 0.7 {
		t.Errorf("UNIDETECT uniqueness P@100 = %.2f, want >= 0.7", udC)
	}
	for _, m := range []string{"Unique-row-ratio", "Unique-value-ratio"} {
		if p := figC.At(m, k); p >= udC {
			t.Errorf("%s P@100 = %.2f should be below UNIDETECT %.2f", m, p, udC)
		}
	}
}

// TestFigure12Shape checks that FD-synthesis precision exceeds classical
// FD precision (Figure 12 c vs a) and that Uni-Detect beats the FD-ratio
// baselines.
func TestFigure12Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a model; skipped in -short")
	}
	figFD, err := sharedLab.Figure("fig12a")
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + figFD.Render())
	figSynth, err := sharedLab.Figure("fig12c")
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + figSynth.Render())
	const k = 50
	fd := figFD.At("UNIDETECT", k)
	synth := figSynth.At("UNIDETECT", k)
	// The paper's ordering: FD-synthesis is at least as precise as
	// classical FD (both can saturate at 1.0 at this scale).
	if synth < fd {
		t.Errorf("FD-synthesis P@%d = %.2f should not trail classical FD %.2f", k, synth, fd)
	}
	for _, m := range []string{"Unique-projection-ratio", "Conforming-row-ratio", "Conforming-pair-ratio"} {
		if p := figFD.At(m, k); p > fd {
			t.Errorf("%s P@%d = %.2f should not exceed UNIDETECT %.2f", m, k, p, fd)
		}
	}
}
