// Package experiments defines one runnable experiment per table and
// figure of the paper's evaluation (§4, Appendix D): Table 2 corpus
// statistics, Figures 8–10 (spelling / outlier / uniqueness Precision@K
// on WEB^T, WIKI^T and Enterprise^T) and Figure 12 (FD and FD-synthesis).
//
// A Lab owns the shared state — the model trained once on the WEB corpus
// and the three test corpora — so an experiment run is: train (cached),
// generate test corpus (cached), run Uni-Detect plus the figure's
// baselines, evaluate Precision@K against injected ground truth.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/unidetect/unidetect/internal/baselines"
	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/corpus"
	"github.com/unidetect/unidetect/internal/datagen"
	"github.com/unidetect/unidetect/internal/detectors"
	"github.com/unidetect/unidetect/internal/eval"
)

// Options scales and parallelizes a Lab. Scale 1.0 corresponds to the
// DESIGN.md corpus presets (1/1000 of the paper's table counts).
type Options struct {
	Scale   float64
	Workers int
	// Quiet suppresses progress logging.
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Lab owns the trained model and cached corpora shared by experiments.
type Lab struct {
	opts Options
	cfg  core.Config

	mu       sync.Mutex
	model    *core.Model                         // guarded by mu
	trainBG  *corpus.Corpus                      // guarded by mu
	testRes  map[datagen.Profile]*datagen.Result // guarded by mu
	findings map[findingsKey][]core.Finding      // guarded by mu
}

type findingsKey struct {
	profile  datagen.Profile
	withDict bool
}

// NewLab creates a lab at the given scale.
func NewLab(opts Options) *Lab {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	cfg := core.DefaultConfig()
	cfg.Workers = opts.Workers
	return &Lab{
		opts:     opts,
		cfg:      cfg,
		testRes:  map[datagen.Profile]*datagen.Result{},
		findings: map[findingsKey][]core.Finding{},
	}
}

// Config exposes the lab's framework configuration.
func (l *Lab) Config() core.Config { return l.cfg }

// trainSpec is the WEB training corpus at lab scale.
func (l *Lab) trainSpec() datagen.Spec {
	return datagen.WebSpec().Scale(l.opts.Scale * 0.2)
}

// testSpec sizes the test corpora for top-100 evaluation support:
// Precision@100 per error class needs well over 100 injected errors of
// each class, so test corpora are larger than a literal 1%/10% sample of
// the scaled-down presets (documented in EXPERIMENTS.md).
func (l *Lab) testSpec(p datagen.Profile) datagen.Spec {
	var s datagen.Spec
	switch p {
	case datagen.ProfileWeb:
		s = datagen.TestSample(datagen.WebSpec())
		s.NumTables = scaled(4000, l.opts.Scale)
	case datagen.ProfileWiki:
		s = datagen.TestSample(datagen.WikiSpec())
		s.NumTables = scaled(4000, l.opts.Scale)
	default:
		s = datagen.TestSample(datagen.EnterpriseSpec())
		s.NumTables = scaled(1500, l.opts.Scale)
	}
	return s
}

func scaled(n int, f float64) int {
	v := int(float64(n) * f)
	if v < 50 {
		v = 50
	}
	return v
}

// Model trains (once) the Uni-Detect model on the WEB training corpus.
func (l *Lab) Model() (*core.Model, *corpus.Corpus, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.model != nil {
		return l.model, l.trainBG, nil
	}
	spec := l.trainSpec()
	l.opts.logf("generating training corpus %s (%d tables)...", spec.Name, spec.NumTables)
	res := datagen.Generate(spec)
	bg := corpus.New(spec.Name, res.Tables)
	l.opts.logf("building token index over %d tables...", bg.NumTables())
	bg.Index()
	l.opts.logf("training Uni-Detect model...")
	m, err := core.Train(context.Background(), l.cfg, bg, detectors.All(l.cfg, detectors.Options{}))
	if err != nil {
		return nil, nil, err
	}
	l.model, l.trainBG = m, bg
	return m, bg, nil
}

// TestCorpus generates (once) the labeled test corpus for a profile.
func (l *Lab) TestCorpus(p datagen.Profile) *datagen.Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	if r, ok := l.testRes[p]; ok {
		return r
	}
	spec := l.testSpec(p)
	l.opts.logf("generating test corpus %s (%d tables)...", spec.Name, spec.NumTables)
	r := datagen.Generate(spec)
	l.testRes[p] = r
	return r
}

// Findings runs (once) the Uni-Detect predictor over a test corpus.
func (l *Lab) Findings(p datagen.Profile, withDict bool) ([]core.Finding, error) {
	m, bg, err := l.Model()
	if err != nil {
		return nil, err
	}
	res := l.TestCorpus(p)
	l.mu.Lock()
	if fs, ok := l.findings[findingsKey{p, withDict}]; ok {
		l.mu.Unlock()
		return fs, nil
	}
	l.mu.Unlock()

	dets := detectors.All(m.Config, detectors.Options{WithDict: withDict})
	pred := core.NewPredictor(m, dets, &core.Env{Index: bg.Index()})
	l.opts.logf("running Uni-Detect over %s (%d tables, dict=%v)...", res.Spec.Name, len(res.Tables), withDict)
	fs := pred.DetectAll(context.Background(), res.Tables)

	l.mu.Lock()
	l.findings[findingsKey{p, withDict}] = fs
	l.mu.Unlock()
	return fs, nil
}

// Series is one method's Precision@K curve.
type Series struct {
	Method    string
	Precision []float64
	// Recall100 is the fraction of this figure's ground-truth errors
	// recovered within the top 100 predictions (the "free recall" of the
	// paper's APR discussion).
	Recall100 float64
	NumPreds  int
}

// Figure is one reproduced figure: Precision@K curves for each method.
type Figure struct {
	ID      string
	Caption string
	Corpus  string
	Ks      []int
	Series  []Series
	// NumLabels is the ground-truth support for this figure's classes.
	NumLabels int
}

// Render prints the figure as an aligned text table.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s (corpus %s, %d ground-truth errors)\n", f.ID, f.Caption, f.Corpus, f.NumLabels)
	fmt.Fprintf(&b, "%-26s", "method \\ K")
	for _, k := range f.Ks {
		fmt.Fprintf(&b, "%7d", k)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-26s", s.Method)
		for _, p := range s.Precision {
			fmt.Fprintf(&b, "%7.2f", p)
		}
		fmt.Fprintf(&b, "   (n=%d, recall@100=%.2f)\n", s.NumPreds, s.Recall100)
	}
	return b.String()
}

// RenderChart prints the figure as an ASCII chart (precision on the y
// axis, K on the x axis), one row per 0.1 band, mirroring the paper's
// line plots for terminal viewing.
func (f *Figure) RenderChart() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s (corpus %s)\n", f.ID, f.Caption, f.Corpus)
	marks := "0123456789ABCDEFGHIJ"
	for band := 10; band >= 0; band-- {
		lo := float64(band) / 10
		fmt.Fprintf(&b, "%4.1f |", lo)
		for ki := range f.Ks {
			cell := ' '
			for si, s := range f.Series {
				p := s.Precision[ki]
				if int(p*10+0.5) == band {
					cell = rune(marks[si%len(marks)])
				}
			}
			fmt.Fprintf(&b, "  %c  ", cell)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "     +")
	for range f.Ks {
		fmt.Fprintf(&b, "-----")
	}
	fmt.Fprintf(&b, "\n      ")
	for _, k := range f.Ks {
		fmt.Fprintf(&b, "%4d ", k)
	}
	b.WriteByte('\n')
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s (n=%d)\n", marks[si%len(marks)], s.Method, s.NumPreds)
	}
	return b.String()
}

// At returns the precision of a method at K, or -1 when absent.
func (f *Figure) At(method string, k int) float64 {
	ki := -1
	for i, kk := range f.Ks {
		if kk == k {
			ki = i
		}
	}
	if ki < 0 {
		return -1
	}
	for _, s := range f.Series {
		if s.Method == method {
			return s.Precision[ki]
		}
	}
	return -1
}

// IDs lists every experiment in presentation order.
func IDs() []string {
	return []string{
		"table2",
		"fig8a", "fig8b", "fig8c",
		"fig9a", "fig9b", "fig9c",
		"fig10a", "fig10b", "fig10c",
		"fig12a", "fig12b", "fig12c", "fig12d",
	}
}

// figureSpec wires an experiment id to its corpus, error classes and
// baseline set.
type figureSpec struct {
	caption  string
	profile  datagen.Profile
	classes  []datagen.ErrorClass
	udClass  []core.Class
	methods  func(l *Lab) []baselines.Method
	withDict bool // additionally run the UNIDETECT+Dict series
}

func spellingMethods(*Lab) []baselines.Method {
	return []baselines.Method{
		&baselines.Speller{},
		&baselines.Speller{AddressOnly: true},
		&baselines.FuzzyCluster{},
		&baselines.Embedding{},
		&baselines.Embedding{Glove: true},
	}
}

func outlierMethods(*Lab) []baselines.Method {
	return []baselines.Method{
		baselines.MaxMAD{},
		baselines.MaxSD{},
		baselines.DBOD{},
		baselines.LOF{},
	}
}

func uniquenessMethods(*Lab) []baselines.Method {
	return []baselines.Method{
		baselines.UniqueRowRatio{},
		baselines.UniqueValueRatio{},
	}
}

func fdMethods(*Lab) []baselines.Method {
	return []baselines.Method{
		baselines.UniqueProjectionRatio{},
		baselines.ConformingRowRatio{},
		baselines.ConformingPairRatio{},
	}
}

func figureSpecs() map[string]figureSpec {
	return map[string]figureSpec{
		"fig8a":  {"spelling errors", datagen.ProfileWeb, []datagen.ErrorClass{datagen.ClassSpelling}, []core.Class{core.ClassSpelling}, spellingMethods, true},
		"fig9a":  {"spelling errors", datagen.ProfileWiki, []datagen.ErrorClass{datagen.ClassSpelling}, []core.Class{core.ClassSpelling}, spellingMethods, true},
		"fig10a": {"spelling errors", datagen.ProfileEnterprise, []datagen.ErrorClass{datagen.ClassSpelling}, []core.Class{core.ClassSpelling}, spellingMethods, true},
		"fig8b":  {"numeric outliers", datagen.ProfileWeb, []datagen.ErrorClass{datagen.ClassOutlier}, []core.Class{core.ClassOutlier}, outlierMethods, false},
		"fig9b":  {"numeric outliers", datagen.ProfileWiki, []datagen.ErrorClass{datagen.ClassOutlier}, []core.Class{core.ClassOutlier}, outlierMethods, false},
		"fig10b": {"numeric outliers", datagen.ProfileEnterprise, []datagen.ErrorClass{datagen.ClassOutlier}, []core.Class{core.ClassOutlier}, outlierMethods, false},
		"fig8c":  {"uniqueness violations", datagen.ProfileWeb, []datagen.ErrorClass{datagen.ClassUniqueness}, []core.Class{core.ClassUniqueness}, uniquenessMethods, false},
		"fig9c":  {"uniqueness violations", datagen.ProfileWiki, []datagen.ErrorClass{datagen.ClassUniqueness}, []core.Class{core.ClassUniqueness}, uniquenessMethods, false},
		"fig10c": {"uniqueness violations", datagen.ProfileEnterprise, []datagen.ErrorClass{datagen.ClassUniqueness}, []core.Class{core.ClassUniqueness}, uniquenessMethods, false},
		"fig12a": {"FD violations", datagen.ProfileWeb, []datagen.ErrorClass{datagen.ClassFD}, []core.Class{core.ClassFD}, fdMethods, false},
		"fig12b": {"FD violations", datagen.ProfileWiki, []datagen.ErrorClass{datagen.ClassFD}, []core.Class{core.ClassFD}, fdMethods, false},
		"fig12c": {"FD-synthesis violations", datagen.ProfileWeb, []datagen.ErrorClass{datagen.ClassFDSynth}, []core.Class{core.ClassFDSynth}, fdMethods, false},
		"fig12d": {"FD-synthesis violations", datagen.ProfileWiki, []datagen.ErrorClass{datagen.ClassFDSynth}, []core.Class{core.ClassFDSynth}, fdMethods, false},
	}
}

// Figure runs one Precision@K experiment by id (fig8a ... fig12d).
func (l *Lab) Figure(id string) (*Figure, error) {
	spec, ok := figureSpecs()[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (known: %v)", id, IDs())
	}
	res := l.TestCorpus(spec.profile)
	// Judging matches the paper's protocol: a prediction is correct when
	// the flagged cell is a real (injected) error of any class — human
	// judges don't consult our label taxonomy. The figure's support count
	// still reports its own classes.
	labels := eval.NewLabels(res.Labels)
	classLabels := eval.NewLabels(res.Labels, spec.classes...)
	ks := eval.Ks()
	fig := &Figure{
		ID:        id,
		Caption:   "Precision@K, " + spec.caption,
		Corpus:    res.Spec.Name,
		Ks:        ks,
		NumLabels: classLabels.Len(),
	}

	// Uni-Detect series (and optionally the +Dict variant).
	fs, err := l.Findings(spec.profile, false)
	if err != nil {
		return nil, err
	}
	items := eval.FromFindings(fs, spec.udClass...)
	fig.Series = append(fig.Series, Series{
		Method:    "UNIDETECT",
		Precision: eval.PrecisionAtK(items, labels, ks),
		Recall100: eval.RecallAtK(items, classLabels, 100),
		NumPreds:  len(items),
	})
	if spec.withDict {
		fsd, err := l.Findings(spec.profile, true)
		if err != nil {
			return nil, err
		}
		itemsD := eval.FromFindings(fsd, spec.udClass...)
		fig.Series = append(fig.Series, Series{
			Method:    "UNIDETECT+Dict",
			Precision: eval.PrecisionAtK(itemsD, labels, ks),
			Recall100: eval.RecallAtK(itemsD, classLabels, 100),
			NumPreds:  len(itemsD),
		})
	}

	for _, m := range spec.methods(l) {
		l.opts.logf("running baseline %s on %s...", m.Name(), res.Spec.Name)
		ps := baselines.PredictAll(m, res.Tables)
		bitems := eval.FromBaseline(ps)
		fig.Series = append(fig.Series, Series{
			Method:    m.Name(),
			Precision: eval.PrecisionAtK(bitems, labels, ks),
			Recall100: eval.RecallAtK(bitems, classLabels, 100),
			NumPreds:  len(bitems),
		})
	}
	sort.SliceStable(fig.Series, func(i, j int) bool {
		// Uni-Detect variants first, then baselines by name.
		ui := strings.HasPrefix(fig.Series[i].Method, "UNIDETECT")
		uj := strings.HasPrefix(fig.Series[j].Method, "UNIDETECT")
		if ui != uj {
			return ui
		}
		return false
	})
	return fig, nil
}

// Table2Row is one corpus summary row.
type Table2Row struct {
	Corpus    string
	NumTables int
	AvgCols   float64
	AvgRows   float64
}

// Table2 reproduces the corpus summary statistics of Table 2 over the
// scaled synthetic corpora.
func (l *Lab) Table2() []Table2Row {
	specs := []datagen.Spec{
		datagen.WebSpec().Scale(l.opts.Scale * 0.05),
		datagen.WikiSpec().Scale(l.opts.Scale),
		datagen.EnterpriseSpec().Scale(l.opts.Scale * 0.2),
	}
	rows := make([]Table2Row, len(specs))
	for i, s := range specs {
		l.opts.logf("generating %s for Table 2 (%d tables)...", s.Name, s.NumTables)
		res := datagen.Generate(s)
		c := corpus.New(s.Name, res.Tables)
		rows[i] = Table2Row{Corpus: s.Name, NumTables: c.NumTables(), AvgCols: c.AvgCols(), AvgRows: c.AvgRows()}
	}
	return rows
}

// RenderTable2 prints the Table 2 reproduction.
func RenderTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "table2: corpus summary statistics (scaled presets)\n")
	fmt.Fprintf(&b, "%-12s %12s %16s %16s\n", "corpus", "total#tables", "avg-#cols/table", "avg-#rows/table")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12d %16.1f %16.1f\n", r.Corpus, r.NumTables, r.AvgCols, r.AvgRows)
	}
	return b.String()
}
