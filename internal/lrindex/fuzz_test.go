package lrindex

import (
	"math"
	"testing"

	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/table"
)

// fuzzSources derives a small but structurally varied source set from a
// seed: a random number of classes, each with a random bucket population
// (including the wildcard variants the backoff chain walks) and an
// occasionally-nil global grid.
func fuzzSources(seed int64) []Source {
	state := uint64(seed)*0x9e3779b97f4a7c15 + 1
	next := func(n int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % n
	}
	dirs := []evidence.Directions{evidence.SpellingDirections, evidence.RatioDirections}
	classes := 1 + next(3)
	srcs := make([]Source, 0, classes)
	for c := 0; c < classes; c++ {
		src := Source{
			Class:   c,
			Dirs:    dirs[next(len(dirs))],
			Buckets: map[feature.Key]*evidence.Grid{},
		}
		for b := next(8); b > 0; b-- {
			k := feature.Key{
				Type: table.ValueType(next(table.NumValueTypes)),
				Rows: uint8(next(4)),
				A:    uint8(next(4)),
				B:    uint8(next(4)),
			}
			src.Buckets[k] = buildGrid(8, int64(next(1000)))
			// Half the time also seed a backoff layer for k, so the
			// chain has somewhere to land.
			if next(2) == 0 {
				src.Buckets[feature.WildBKey(k)] = buildGrid(8, int64(next(1000)))
			}
		}
		if next(5) != 0 {
			src.Global = buildGrid(8, int64(next(1000)))
		}
		srcs = append(srcs, src)
	}
	return srcs
}

// FuzzLRIndexLookup cross-checks the compact index against the
// map-backed reference lookup on arbitrary (model, params, query)
// triples, comparing LR by float bits and support exactly. This is the
// property the whole fast path rests on: whatever the bucket topology,
// support threshold, backoff path or out-of-range bins, the index is
// the map.
func FuzzLRIndexLookup(f *testing.F) {
	f.Add(int64(1), int64(30), byte(0), byte(2), byte(1), byte(2), byte(3), 4, 4)
	f.Add(int64(7), int64(0), byte(1), byte(0), byte(0), byte(0), byte(0), 0, 0)
	f.Add(int64(42), int64(100000), byte(2), byte(5), byte(3), byte(3), byte(3), -1, 8)
	f.Add(int64(-3), int64(1), byte(3), byte(7), byte(9), byte(1), byte(2), 7, -2)
	f.Fuzz(func(t *testing.T, seed, minSup int64, flags, kt, kr, ka, kb byte, b1, b2 int) {
		if minSup < 0 {
			minSup = -minSup
		}
		p := Params{
			MinBucketSupport: minSup % 2000,
			NoFeaturize:      flags&1 != 0,
			PointEstimates:   flags&2 != 0,
		}
		srcs := fuzzSources(seed)
		ix := Build(len(srcs)+2, srcs, p)
		key := feature.Key{
			Type: table.ValueType(int(kt) % table.NumValueTypes),
			Rows: kr % 8,
			A:    ka % 8,
			B:    kb % 8,
		}
		if b1 < -2 || b1 > 10 {
			b1 %= 10
		}
		if b2 < -2 || b2 > 10 {
			b2 %= 10
		}
		for _, src := range srcs {
			gotLR, gotSup, _ := ix.LR(src.Class, key, b1, b2)
			wantLR, wantSup := referenceLR(src, key, b1, b2, p)
			if math.Float64bits(gotLR) != math.Float64bits(wantLR) || gotSup != wantSup {
				t.Fatalf("seed %d params %+v class %d key %v bins (%d,%d): index (%v,%d) != reference (%v,%d)",
					seed, p, src.Class, key, b1, b2, gotLR, gotSup, wantLR, wantSup)
			}
		}
		if lr, sup, oc := ix.LR(len(srcs), key, b1, b2); lr != 1 || sup != 0 || oc != OutcomeMiss {
			t.Fatalf("class beyond sources: got (%v,%d,%v), want (1,0,miss)", lr, sup, oc)
		}
	})
}
