// Package lrindex implements the serving fast path's compact likelihood-
// ratio index: an immutable, cache-friendly projection of a trained
// model's per-bucket evidence grids.
//
// The paper's whole point (§2.2.3) is that online prediction is metric
// computation plus a constant-time lookup into offline-learned (θ1, θ2)
// statistics. The reference implementation walks nested maps
// (class → feature bucket → grid) with a per-miss backoff chain; correct,
// but every lookup chases pointers through map buckets. This package
// compiles the same statistics into sorted flat arrays:
//
//   - per class, one sorted []uint32 of packed feature keys (feature.Pack
//     preserves the lexicographic key order) binary-searched per lookup;
//   - parallel per-bucket grid views aliasing the grids' finalized 2-D
//     prefix-sum arrays, so the directional range counts of Equation 12
//     stay O(1) adds;
//   - the whole-corpus grid per class as the final backoff.
//
// The index is a pure view: it copies no counts, holds no locks, and is
// safe for unbounded concurrent readers. Its LR method is proven
// bit-identical to the reference path (core.Model.LR) by the
// internal/difftest harness and the FuzzLRIndexLookup fuzz target.
package lrindex

import (
	"sort"

	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
)

// Params carries the config scalars that shape lookups; they mirror the
// same-named core.Config fields.
type Params struct {
	// MinBucketSupport is the minimum denominator mass before a bucket's
	// grid is trusted for the query at hand.
	MinBucketSupport int64
	// NoFeaturize short-circuits every lookup to the whole-corpus grid
	// (the §2.2.2 ablation).
	NoFeaturize bool
	// PointEstimates replaces the smoothed range predicates of
	// Equation 12 with the exact point estimates of Equation 11.
	PointEstimates bool
}

// Source is the evidence of one error class, as the trainer materializes
// it. Build flattens each Source into a classIndex.
type Source struct {
	// Class is the class's dense id (core.Class); Build indexes classes
	// by it, so ids must be < the numClasses passed to Build.
	Class int
	// Dirs orients the class's smoothed range predicates.
	Dirs evidence.Directions
	// Buckets are the per-feature-bucket grids (wildcard backoff buckets
	// included, as the learner emits them).
	Buckets map[feature.Key]*evidence.Grid
	// Global is the whole-corpus grid (may be nil for merged models with
	// no samples).
	Global *evidence.Grid
}

// gridView is one bucket's finalized grid, reduced to what lookups need.
type gridView struct {
	pre []int64 // (n+1)×(n+1) row-major 2-D prefix sums (aliased, read-only)
	n   int     // bins per axis
}

// rect mirrors evidence.Grid.rect on the aliased prefix sums: the number
// of samples with θ1 bin in [l1, h1] and θ2 bin in [l2, h2], inclusive.
// Bounds are clamped exactly as the reference does, so the returned
// integers — and therefore the LR float bits — match it.
func (g gridView) rect(l1, h1, l2, h2 int) int64 {
	if l1 > h1 || l2 > h2 {
		return 0
	}
	l1, h1 = clampBin(l1, g.n), clampBin(h1, g.n)
	l2, h2 = clampBin(l2, g.n), clampBin(h2, g.n)
	n := g.n + 1
	return g.pre[(h1+1)*n+(h2+1)] - g.pre[l1*n+(h2+1)] - g.pre[(h1+1)*n+l2] + g.pre[l1*n+l2]
}

func clampBin(b, n int) int {
	if b < 0 {
		return 0
	}
	if b >= n {
		return n - 1
	}
	return b
}

// numerator mirrors evidence.Grid.Numerator.
func (g gridView) numerator(dirs evidence.Directions, b1, b2 int) int64 {
	l1, h1 := 0, g.n-1
	if dirs.T1LE {
		h1 = b1
	} else {
		l1 = b1
	}
	l2, h2 := 0, g.n-1
	if dirs.T2GE {
		l2 = b2
	} else {
		h2 = b2
	}
	return g.rect(l1, h1, l2, h2)
}

// denominator mirrors evidence.Grid.Denominator.
func (g gridView) denominator(dirs evidence.Directions, b2 int) int64 {
	if dirs.DenGE {
		return g.rect(b2, g.n-1, 0, g.n-1)
	}
	return g.rect(0, b2, 0, g.n-1)
}

// classIndex is the flattened evidence of one class.
type classIndex struct {
	dirs      evidence.Directions
	keys      []uint32   // packed feature keys, ascending
	grids     []gridView // parallel to keys
	global    gridView
	hasGlobal bool
	present   bool // class existed in the model
}

// Outcome reports which layer of the backoff chain answered a lookup —
// the label of the serving-path index-hit counters.
type Outcome uint8

// Lookup outcomes, from most to least specific.
const (
	// OutcomeBucket: the query's full feature bucket had enough support.
	OutcomeBucket Outcome = iota
	// OutcomeBackoff: a wildcard backoff bucket answered.
	OutcomeBackoff
	// OutcomeGlobal: the whole-corpus grid answered.
	OutcomeGlobal
	// OutcomeMiss: the class (or its global grid) is absent; LR is the
	// uninformative 1.
	OutcomeMiss
	// NumOutcomes is the number of Outcome values.
	NumOutcomes
)

// String names the outcome (Prometheus label values).
func (o Outcome) String() string {
	switch o {
	case OutcomeBucket:
		return "bucket"
	case OutcomeBackoff:
		return "backoff"
	case OutcomeGlobal:
		return "global"
	default:
		return "miss"
	}
}

// Index is the compiled fast-path lookup structure. It is immutable
// after Build and safe for concurrent use.
type Index struct {
	classes []classIndex
	params  Params
}

// Build compiles class evidence into an Index. numClasses bounds the
// dense class-id space; sources with out-of-range ids are ignored.
// Grids are finalized (if they were not already) and their prefix-sum
// arrays aliased, not copied.
func Build(numClasses int, srcs []Source, p Params) *Index {
	ix := &Index{classes: make([]classIndex, numClasses), params: p}
	for _, src := range srcs {
		if src.Class < 0 || src.Class >= numClasses {
			continue
		}
		cx := classIndex{dirs: src.Dirs, present: true}
		packed := make([]uint32, 0, len(src.Buckets))
		for k := range src.Buckets {
			packed = append(packed, feature.Pack(k))
		}
		sort.Slice(packed, func(i, j int) bool { return packed[i] < packed[j] })
		cx.keys = packed
		cx.grids = make([]gridView, len(packed))
		for i, pk := range packed {
			g := src.Buckets[feature.Unpack(pk)]
			cx.grids[i] = gridView{pre: g.PrefixSums(), n: g.N}
		}
		if src.Global != nil {
			cx.global = gridView{pre: src.Global.PrefixSums(), n: src.Global.N}
			cx.hasGlobal = true
		}
		ix.classes[src.Class] = cx
	}
	return ix
}

// find binary-searches the packed key array; ok reports presence.
func (cx *classIndex) find(pk uint32) (gridView, bool) {
	keys := cx.keys
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[mid] < pk {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(keys) && keys[lo] == pk {
		return cx.grids[lo], true
	}
	return gridView{}, false
}

// LR scores one quantized measurement of the given class: the likelihood
// ratio, the denominator support behind it, and which backoff layer
// answered. The lookup chain, support gating, smoothing and point-
// estimate semantics replicate core.(*Model).LR exactly — identical
// integer counts, hence bit-identical float64 ratios.
func (ix *Index) LR(class int, key feature.Key, b1, b2 int) (lr float64, support int64, o Outcome) {
	if class < 0 || class >= len(ix.classes) {
		return 1, 0, OutcomeMiss
	}
	cx := &ix.classes[class]
	if !cx.present {
		return 1, 0, OutcomeMiss
	}
	g, outcome, ok := cx.resolve(key, b2, ix.params)
	if !ok {
		return 1, 0, OutcomeMiss
	}
	if ix.params.PointEstimates {
		num := g.rect(b1, b1, b2, b2)
		den := g.rect(b2, b2, 0, g.n-1)
		return float64(num+1) / float64(den+1), g.denominator(cx.dirs, b2), outcome
	}
	num := g.numerator(cx.dirs, b1, b2)
	den := g.denominator(cx.dirs, b2)
	return float64(num+1) / float64(den+1), den, outcome
}

// resolve walks the bucket → backoff chain → global lookup ladder,
// gating each bucket on the query's denominator support, exactly as
// core.(*ClassModel).lookup does.
func (cx *classIndex) resolve(key feature.Key, b2 int, p Params) (gridView, Outcome, bool) {
	if p.NoFeaturize {
		if !cx.hasGlobal {
			return gridView{}, OutcomeMiss, false
		}
		return cx.global, OutcomeGlobal, true
	}
	if g, ok := cx.find(feature.Pack(key)); ok && g.denominator(cx.dirs, b2) >= p.MinBucketSupport {
		return g, OutcomeBucket, true
	}
	for _, k := range feature.Backoff(key) {
		if g, ok := cx.find(feature.Pack(k)); ok && g.denominator(cx.dirs, b2) >= p.MinBucketSupport {
			return g, OutcomeBackoff, true
		}
	}
	if !cx.hasGlobal {
		return gridView{}, OutcomeMiss, false
	}
	return cx.global, OutcomeGlobal, true
}

// Buckets reports the number of indexed feature buckets for a class, for
// diagnostics and tests.
func (ix *Index) Buckets(class int) int {
	if class < 0 || class >= len(ix.classes) {
		return 0
	}
	return len(ix.classes[class].keys)
}
