package lrindex

import (
	"math"
	"testing"

	"github.com/unidetect/unidetect/internal/evidence"
	"github.com/unidetect/unidetect/internal/feature"
	"github.com/unidetect/unidetect/internal/table"
)

// buildGrid fills an n×n grid with a deterministic sample pattern.
func buildGrid(n int, seed int64) *evidence.Grid {
	g := evidence.NewGrid(n)
	state := uint64(seed)*2654435761 + 12345
	samples := 40 + int(seed%7)*25
	for i := 0; i < samples; i++ {
		state = state*6364136223846793005 + 1442695040888963407
		b1 := int(state>>33) % n
		state = state*6364136223846793005 + 1442695040888963407
		b2 := int(state>>33) % n
		g.Add(b1, b2)
	}
	g.Finalize()
	return g
}

func testSources(n int) []Source {
	full := feature.Key{Type: table.TypeString, Rows: 1, A: 2, B: 3}
	srcs := []Source{
		{
			Class: 0,
			Dirs:  evidence.SpellingDirections,
			Buckets: map[feature.Key]*evidence.Grid{
				full:                              buildGrid(n, 1),
				feature.WildBKey(full):            buildGrid(n, 2),
				feature.WildRowsKey(full):         buildGrid(n, 3),
				{Type: table.TypeMixed}:           buildGrid(n, 4),
				{Type: table.TypeString}:          buildGrid(n, 5),
				{Type: table.TypeString, Rows: 2}: buildGrid(n, 6),
			},
			Global: buildGrid(n, 7),
		},
		{
			Class:   2,
			Dirs:    evidence.RatioDirections,
			Buckets: map[feature.Key]*evidence.Grid{},
			Global:  buildGrid(n, 8),
		},
	}
	return srcs
}

// referenceLR mirrors core.(*Model).LR / (*ClassModel).lookup over the
// raw source maps — the oracle the index is checked against.
func referenceLR(src Source, key feature.Key, b1, b2 int, p Params) (float64, int64) {
	var g *evidence.Grid
	if p.NoFeaturize {
		g = src.Global
	} else if full, ok := src.Buckets[key]; ok && full.Denominator(src.Dirs, b2) >= p.MinBucketSupport {
		g = full
	} else {
		for _, k := range feature.Backoff(key) {
			if bg, ok := src.Buckets[k]; ok && bg.Denominator(src.Dirs, b2) >= p.MinBucketSupport {
				g = bg
				break
			}
		}
		if g == nil {
			g = src.Global
		}
	}
	if g == nil {
		return 1, 0
	}
	if p.PointEstimates {
		return g.PointLR(b1, b2), g.Denominator(src.Dirs, b2)
	}
	return g.LR(src.Dirs, b1, b2), g.Denominator(src.Dirs, b2)
}

// TestIndexMatchesReference sweeps every bucket key (plus misses) and a
// grid of bin pairs, across the config axes, asserting bit-identical LR
// and support between the index and the map-backed reference.
func TestIndexMatchesReference(t *testing.T) {
	const n = 8
	srcs := testSources(n)
	queries := []feature.Key{
		{Type: table.TypeString, Rows: 1, A: 2, B: 3}, // full bucket present
		{Type: table.TypeString, Rows: 1, A: 2, B: 0}, // backoff via WildB
		{Type: table.TypeString, Rows: 9, A: 2, B: 3}, // backoff via WildRows? absent → global
		{Type: table.TypeMixed},                       // exact hit on sparse key
		{Type: table.TypeInt, Rows: 5, A: 1, B: 1},    // nothing anywhere → global
	}
	params := []Params{
		{MinBucketSupport: 0},
		{MinBucketSupport: 30},
		{MinBucketSupport: 10_000}, // nothing qualifies → always global
		{MinBucketSupport: 30, NoFeaturize: true},
		{MinBucketSupport: 30, PointEstimates: true},
	}
	for _, p := range params {
		ix := Build(5, srcs, p)
		for si, src := range srcs {
			for _, key := range queries {
				for b1 := -1; b1 <= n; b1 += 2 {
					for b2 := -1; b2 <= n; b2 += 3 {
						gotLR, gotSup, _ := ix.LR(src.Class, key, b1, b2)
						wantLR, wantSup := referenceLR(src, key, b1, b2, p)
						if math.Float64bits(gotLR) != math.Float64bits(wantLR) || gotSup != wantSup {
							t.Fatalf("params %+v source %d key %v bins (%d,%d): index (%v,%d) != reference (%v,%d)",
								p, si, key, b1, b2, gotLR, gotSup, wantLR, wantSup)
						}
					}
				}
			}
		}
	}
}

// TestIndexMissingClass asserts the uninformative-LR contract for
// classes the model has no evidence for.
func TestIndexMissingClass(t *testing.T) {
	ix := Build(5, testSources(8), Params{MinBucketSupport: 30})
	for _, class := range []int{1, 3, 4, -1, 99} {
		lr, sup, oc := ix.LR(class, feature.Key{}, 0, 0)
		if lr != 1 || sup != 0 || oc != OutcomeMiss {
			t.Fatalf("class %d: got (%v,%d,%v), want (1,0,miss)", class, lr, sup, oc)
		}
	}
}

// TestIndexNilGlobal asserts a class with no global grid misses instead
// of crashing when every bucket is too sparse.
func TestIndexNilGlobal(t *testing.T) {
	srcs := []Source{{
		Class:   0,
		Dirs:    evidence.SpellingDirections,
		Buckets: map[feature.Key]*evidence.Grid{{Type: table.TypeString}: buildGrid(8, 1)},
		Global:  nil,
	}}
	ix := Build(1, srcs, Params{MinBucketSupport: 1 << 40})
	lr, sup, oc := ix.LR(0, feature.Key{Type: table.TypeString}, 1, 1)
	if lr != 1 || sup != 0 || oc != OutcomeMiss {
		t.Fatalf("got (%v,%d,%v), want (1,0,miss)", lr, sup, oc)
	}
}

// TestOutcomeLayers asserts the reported backoff layer matches where
// the answer actually came from.
func TestOutcomeLayers(t *testing.T) {
	ix := Build(5, testSources(8), Params{MinBucketSupport: 1})
	full := feature.Key{Type: table.TypeString, Rows: 1, A: 2, B: 3}
	if _, _, oc := ix.LR(0, full, 4, 4); oc != OutcomeBucket {
		t.Fatalf("full bucket query: outcome %v, want bucket", oc)
	}
	nearby := feature.Key{Type: table.TypeString, Rows: 1, A: 2, B: 0}
	if _, _, oc := ix.LR(0, nearby, 4, 4); oc != OutcomeBackoff {
		t.Fatalf("backoff query: outcome %v, want backoff", oc)
	}
	miss := feature.Key{Type: table.TypeInt, Rows: 5, A: 1, B: 1}
	if _, _, oc := ix.LR(0, miss, 4, 4); oc != OutcomeGlobal {
		t.Fatalf("global query: outcome %v, want global", oc)
	}
	if _, _, oc := ix.LR(2, miss, 4, 4); oc != OutcomeGlobal {
		t.Fatalf("empty-bucket class: outcome %v, want global", oc)
	}
}

// TestBuckets sanity-checks the diagnostic bucket counts.
func TestBuckets(t *testing.T) {
	ix := Build(5, testSources(8), Params{})
	if got := ix.Buckets(0); got != 6 {
		t.Fatalf("Buckets(0) = %d, want 6", got)
	}
	if got := ix.Buckets(2); got != 0 {
		t.Fatalf("Buckets(2) = %d, want 0", got)
	}
	if got := ix.Buckets(99); got != 0 {
		t.Fatalf("Buckets(99) = %d, want 0", got)
	}
}
