package table

import (
	"archive/zip"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// WriteXLSX writes the table as a minimal single-sheet .xlsx workbook
// (inline strings only): enough for the Enterprise-corpus round trip and
// for handing generated spreadsheets to actual spreadsheet software.
func WriteXLSX(t *Table, w io.Writer) error {
	zw := zip.NewWriter(w)
	files := map[string]string{
		"[Content_Types].xml": `<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Types xmlns="http://schemas.openxmlformats.org/package/2006/content-types">
<Default Extension="rels" ContentType="application/vnd.openxmlformats-package.relationships+xml"/>
<Default Extension="xml" ContentType="application/xml"/>
<Override PartName="/xl/workbook.xml" ContentType="application/vnd.openxmlformats-officedocument.spreadsheetml.sheet.main+xml"/>
<Override PartName="/xl/worksheets/sheet1.xml" ContentType="application/vnd.openxmlformats-officedocument.spreadsheetml.worksheet+xml"/>
</Types>`,
		"_rels/.rels": `<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/relationships">
<Relationship Id="rId1" Type="http://schemas.openxmlformats.org/officeDocument/2006/relationships/officeDocument" Target="xl/workbook.xml"/>
</Relationships>`,
		"xl/workbook.xml": `<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<workbook xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main" xmlns:r="http://schemas.openxmlformats.org/officeDocument/2006/relationships">
<sheets><sheet name="Sheet1" sheetId="1" r:id="rId1"/></sheets>
</workbook>`,
		"xl/_rels/workbook.xml.rels": `<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/relationships">
<Relationship Id="rId1" Type="http://schemas.openxmlformats.org/officeDocument/2006/relationships/worksheet" Target="worksheets/sheet1.xml"/>
</Relationships>`,
		"xl/worksheets/sheet1.xml": sheetXMLFor(t),
	}
	for _, name := range []string{"[Content_Types].xml", "_rels/.rels", "xl/workbook.xml", "xl/_rels/workbook.xml.rels", "xl/worksheets/sheet1.xml"} {
		fw, err := zw.Create(name)
		if err != nil {
			return err
		}
		if _, err := io.WriteString(fw, files[name]); err != nil {
			return err
		}
	}
	return zw.Close()
}

// sheetXMLFor renders the worksheet XML: the header as row 1, every cell
// as an inline string or (when purely numeric without separators) a
// number cell.
func sheetXMLFor(t *Table) string {
	var b strings.Builder
	b.WriteString(`<?xml version="1.0" encoding="UTF-8" standalone="yes"?>` + "\n")
	b.WriteString(`<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main"><sheetData>`)
	writeRow := func(rowNum int, cells []string) {
		fmt.Fprintf(&b, `<row r="%d">`, rowNum)
		for j, v := range cells {
			ref := columnName(j) + fmt.Sprint(rowNum)
			if isPlainNumber(v) {
				fmt.Fprintf(&b, `<c r="%s"><v>%s</v></c>`, ref, v)
				continue
			}
			fmt.Fprintf(&b, `<c r="%s" t="inlineStr"><is><t>%s</t></is></c>`, ref, xmlEscape(v))
		}
		b.WriteString(`</row>`)
	}
	header := make([]string, len(t.Columns))
	for j, c := range t.Columns {
		header[j] = c.Name
	}
	writeRow(1, header)
	for i := 0; i < t.NumRows(); i++ {
		writeRow(i+2, t.Row(i))
	}
	b.WriteString(`</sheetData></worksheet>`)
	return b.String()
}

// isPlainNumber reports whether v can be stored as an xlsx numeric cell
// without changing its textual representation on the read side.
func isPlainNumber(v string) bool {
	if v == "" || strings.ContainsAny(v, ",eE+ ") {
		return false
	}
	_, _, ok := ParseNumber(v)
	if !ok {
		return false
	}
	// Leading zeros and signs must stay textual to round-trip exactly.
	if v[0] == '0' && len(v) > 1 && v[1] != '.' {
		return false
	}
	return v[0] != '-' || len(v) > 1
}

// columnName converts a 0-based column index to A1-style letters.
func columnName(i int) string {
	var b []byte
	for i >= 0 {
		b = append([]byte{byte('A' + i%26)}, b...)
		i = i/26 - 1
	}
	return string(b)
}

func xmlEscape(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}
