package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// CSV parsing lives in internal/colstore (the streaming chunked reader);
// this file keeps only the writer and the records-to-table assembly the
// TSV/markdown/xlsx readers share.

// WriteCSV writes the table as CSV with a header row.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := 0; i < t.NumRows(); i++ {
		if err := cw.Write(t.Row(i)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func fromRecords(name string, records [][]string) (*Table, error) {
	if len(records) == 0 {
		return &Table{Name: name}, nil
	}
	header := records[0]
	width := len(header)
	for _, rec := range records[1:] {
		if len(rec) > width {
			width = len(rec)
		}
	}
	cols := make([]*Column, width)
	for j := 0; j < width; j++ {
		colName := fmt.Sprintf("col%d", j+1)
		if j < len(header) && strings.TrimSpace(header[j]) != "" {
			colName = strings.TrimSpace(header[j])
		}
		vals := make([]string, 0, len(records)-1)
		for _, rec := range records[1:] {
			if j < len(rec) {
				vals = append(vals, rec[j])
			} else {
				vals = append(vals, "")
			}
		}
		cols[j] = NewColumn(colName, vals)
	}
	return New(name, cols...)
}
