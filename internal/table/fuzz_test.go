package table

import "testing"

// FuzzParseNumber asserts ParseNumber never panics and that accepted
// values are consistent: an accepted integral value re-parses from its
// digits.
func FuzzParseNumber(f *testing.F) {
	for _, seed := range []string{"8,011", "-1.5", "1e9", "", "abc", "1,23", "  42 ", "+0", "8.716", "1,234,567.89"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, isInt, ok := ParseNumber(s)
		if !ok {
			return
		}
		if isInt && v != float64(int64(v)) && v < 1e15 && v > -1e15 {
			t.Fatalf("ParseNumber(%q) claims integral but v=%v", s, v)
		}
	})
}

// FuzzTokenize asserts Tokenize never panics and returns only lowercase
// alphanumeric tokens.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{"Kevin Doeling", "KV214-310B8K2", "日本語 abc", "", "--"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatal("empty token")
			}
			for i := 0; i < len(tok); i++ {
				c := tok[i]
				if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9') {
					t.Fatalf("Tokenize(%q) produced non-alnum token %q", s, tok)
				}
			}
		}
	})
}

// FuzzInferType asserts type inference never panics on arbitrary cells.
func FuzzInferType(f *testing.F) {
	f.Add("a", "1", "2.5")
	f.Add("", "", "")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		typ := InferType([]string{a, b, c})
		if int(typ) >= NumValueTypes {
			t.Fatalf("invalid type %d", typ)
		}
	})
}
