package table

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadTSV parses a tab-separated table; the first line is the header.
// Unlike CSV there is no quoting: tabs delimit, everything else is
// verbatim.
func ReadTSV(name string, r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var records [][]string
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		records = append(records, strings.Split(line, "\t"))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read tsv %q: %w", name, err)
	}
	return fromRecords(name, records)
}

// ReadMarkdown parses a GitHub-flavored markdown table (the format
// Wikipedia-style tables commonly travel in):
//
//	| Name   | Age |
//	|--------|-----|
//	| Ada    | 36  |
//
// Lines before the table are skipped; parsing stops at the first
// non-table line after it. The alignment row is detected and dropped.
func ReadMarkdown(name string, r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var records [][]string
	inTable := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "|") {
			if inTable {
				break
			}
			continue
		}
		inTable = true
		cells := splitMarkdownRow(line)
		if isAlignmentRow(cells) {
			continue
		}
		records = append(records, cells)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read markdown %q: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("read markdown %q: no table found", name)
	}
	return fromRecords(name, records)
}

// splitMarkdownRow splits "| a | b |" into its trimmed cells, honoring
// escaped pipes ("\|").
func splitMarkdownRow(line string) []string {
	line = strings.TrimPrefix(line, "|")
	line = strings.TrimSuffix(line, "|")
	var cells []string
	var cur strings.Builder
	escaped := false
	for _, r := range line {
		switch {
		case escaped:
			cur.WriteRune(r)
			escaped = false
		case r == '\\':
			escaped = true
		case r == '|':
			cells = append(cells, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteRune(r)
		}
	}
	cells = append(cells, strings.TrimSpace(cur.String()))
	return cells
}

// isAlignmentRow reports whether every cell is a ---- / :---: marker.
func isAlignmentRow(cells []string) bool {
	if len(cells) == 0 {
		return false
	}
	for _, c := range cells {
		if c == "" {
			return false
		}
		for _, r := range c {
			if r != '-' && r != ':' {
				return false
			}
		}
		if !strings.Contains(c, "-") {
			return false
		}
	}
	return true
}
