package table

import (
	"bytes"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"testing/quick"
)

func TestNewRejectsRaggedColumns(t *testing.T) {
	_, err := New("t",
		NewColumn("a", []string{"1", "2"}),
		NewColumn("b", []string{"1"}),
	)
	if err == nil {
		t.Fatal("New accepted ragged columns")
	}
}

func TestDropRows(t *testing.T) {
	tbl := MustNew("t",
		NewColumn("a", []string{"x", "y", "z"}),
		NewColumn("b", []string{"1", "2", "3"}),
	)
	got := tbl.DropRows(1)
	if got.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", got.NumRows())
	}
	if !reflect.DeepEqual(got.Columns[0].Values, []string{"x", "z"}) {
		t.Errorf("col a = %v", got.Columns[0].Values)
	}
	if !reflect.DeepEqual(got.Columns[1].Values, []string{"1", "3"}) {
		t.Errorf("col b = %v", got.Columns[1].Values)
	}
	// Original untouched.
	if tbl.NumRows() != 3 {
		t.Errorf("original mutated: NumRows = %d", tbl.NumRows())
	}
}

func TestColumnDropIgnoresOutOfRange(t *testing.T) {
	c := NewColumn("a", []string{"x", "y"})
	got := c.Drop(5, -1)
	if !reflect.DeepEqual(got.Values, []string{"x", "y"}) {
		t.Errorf("Drop(5,-1) = %v", got.Values)
	}
}

func TestColumnDropEmpty(t *testing.T) {
	c := NewColumn("a", []string{"x", "y"})
	got := c.Drop()
	if !reflect.DeepEqual(got.Values, c.Values) {
		t.Errorf("Drop() = %v", got.Values)
	}
	got.Values[0] = "mutated"
	if c.Values[0] != "x" {
		t.Error("Drop() shares backing array with original")
	}
}

func TestRowAndColumnLookup(t *testing.T) {
	tbl := MustNew("t",
		NewColumn("name", []string{"ada", "bob"}),
		NewColumn("age", []string{"36", "41"}),
	)
	if got := tbl.Row(1); !reflect.DeepEqual(got, []string{"bob", "41"}) {
		t.Errorf("Row(1) = %v", got)
	}
	if tbl.Column("age") == nil || tbl.Column("age").Values[0] != "36" {
		t.Error("Column lookup failed")
	}
	if tbl.Column("missing") != nil {
		t.Error("Column returned non-nil for missing name")
	}
}

func TestParseNumber(t *testing.T) {
	cases := []struct {
		in    string
		f     float64
		isInt bool
		ok    bool
	}{
		{"42", 42, true, true},
		{"-7", -7, true, true},
		{"+7", 7, true, true},
		{"3.14", 3.14, false, true},
		{"8,011", 8011, true, true},
		{"1,234,567.89", 1234567.89, false, true},
		{"8.716", 8.716, false, true},
		{"1e3", 1000, false, true},
		{"", 0, false, false},
		{"abc", 0, false, false},
		{"12a", 0, false, false},
		{"1,23", 0, false, false},   // bad grouping
		{"12,34", 0, false, false},  // bad grouping
		{"1,2345", 0, false, false}, // bad grouping
		{",123", 0, false, false},
		{"1.2.3", 0, false, false},
		{"-", 0, false, false},
		{"Super Bowl XX", 0, false, false},
	}
	for _, c := range cases {
		f, isInt, ok := ParseNumber(c.in)
		if ok != c.ok || (ok && (f != c.f || isInt != c.isInt)) {
			t.Errorf("ParseNumber(%q) = (%v,%v,%v), want (%v,%v,%v)", c.in, f, isInt, ok, c.f, c.isInt, c.ok)
		}
	}
}

func TestInferType(t *testing.T) {
	cases := []struct {
		name string
		vals []string
		want ValueType
	}{
		{"ints", []string{"1", "2", "3"}, TypeInt},
		{"floats", []string{"1.5", "2", "3"}, TypeFloat},
		{"thousands", []string{"8,011", "9,954", "11,895"}, TypeInt},
		{"strings", []string{"alice", "bob", "carol"}, TypeString},
		{"mixed", []string{"KV214-310B8K2", "MP2492DN", "B226711"}, TypeMixed},
		// One bad cell among >=90% numbers keeps the column numeric.
		{"mostly numeric with one bad cell", []string{"10", "20", "30", "40", "50", "60", "70", "80", "90", "x100y"}, TypeInt},
		{"too many bad cells flips to mixed", []string{"10", "20", "x30y", "x40y", "x50y"}, TypeMixed},
		{"numeric with empty cells", []string{"10", "", "30", ""}, TypeInt},
		{"empty", []string{"", "", ""}, TypeEmpty},
		{"nil", nil, TypeEmpty},
		{"roman", []string{"Super Bowl XX", "Super Bowl XXI"}, TypeString},
		{"interleaved words and numbers", []string{"alpha", "12", "beta", "34"}, TypeMixed},
	}
	for _, c := range cases {
		if got := InferType(c.vals); got != c.want {
			t.Errorf("%s: InferType = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestInferTypeNumericTolerance(t *testing.T) {
	// A single corrupted numeric cell among >=90% numbers keeps the
	// column numeric — required for Figure 4(e)-style outliers.
	vals := []string{"8,011", "8.716", "9,954", "11,895", "11,329", "11,352", "11,709"}
	if got := InferType(vals); got != TypeFloat {
		t.Errorf("InferType = %v, want float", got)
	}
}

func TestColumnTypeCaching(t *testing.T) {
	c := NewColumn("a", []string{"1", "2"})
	if c.Type() != TypeInt {
		t.Fatalf("Type = %v", c.Type())
	}
	c.Values = []string{"x", "y"}
	if c.Type() != TypeInt {
		t.Error("expected stale cached type before Invalidate")
	}
	c.Invalidate()
	if c.Type() != TypeString {
		t.Errorf("after Invalidate Type = %v, want string", c.Type())
	}
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Kevin Doeling", []string{"kevin", "doeling"}},
		{"KV214-310B8K2", []string{"kv214", "310b8k2"}},
		{"  spaced  out ", []string{"spaced", "out"}},
		{"", nil},
		{"---", nil},
		{"a,b;c", []string{"a", "b", "c"}},
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// CSV parsing now lives in internal/colstore (whose tests pin the exact
// legacy semantics: ragged padding, blank-header naming, empty input);
// only the writer remains here.
func TestWriteCSV(t *testing.T) {
	tbl := MustNew("people",
		NewColumn("name", []string{"ada", "bob"}),
		NewColumn("age", []string{"36", "41"}))
	var buf bytes.Buffer
	if err := WriteCSV(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	if want := "name,age\nada,36\nbob,41\n"; buf.String() != want {
		t.Errorf("WriteCSV = %q, want %q", buf.String(), want)
	}
}

func TestCellRefString(t *testing.T) {
	r := CellRef{Table: "t", Column: "c", Row: 7}
	if r.String() != "t!c[7]" {
		t.Errorf("String = %q", r.String())
	}
}

// Property: DropRows never changes column count, and reduces row count by
// exactly the number of valid distinct dropped indices.
func TestDropRowsProperty(t *testing.T) {
	f := func(vals []string, idx uint8) bool {
		if len(vals) == 0 {
			return true
		}
		tbl := MustNew("t", NewColumn("a", vals))
		i := int(idx) % len(vals)
		got := tbl.DropRows(i)
		return got.NumCols() == 1 && got.NumRows() == len(vals)-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: ParseNumber on canonical integer formatting always succeeds and
// round-trips.
func TestParseNumberIntProperty(t *testing.T) {
	f := func(n int32) bool {
		s := strconv.FormatInt(int64(n), 10)
		v, isInt, ok := ParseNumber(s)
		return ok && isInt && v == float64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestConcurrentTypeRace is a regression test for the data race that existed
// in Column.Type's lazy cache: concurrent detector goroutines would race on
// the unsynchronized typ/typOK pair. Run under -race.
func TestConcurrentTypeRace(t *testing.T) {
	c := NewColumn("v", []string{"1", "2", "3.5", "x7"})
	var wg sync.WaitGroup
	got := make([]ValueType, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = c.Type()
		}(i)
	}
	wg.Wait()
	for i, ty := range got {
		if ty != got[0] {
			t.Fatalf("goroutine %d saw type %v, goroutine 0 saw %v", i, ty, got[0])
		}
	}
	c.Invalidate()
	if ty := c.Type(); ty != got[0] {
		t.Fatalf("Type after Invalidate = %v, want %v", ty, got[0])
	}
}
