package table

import (
	"reflect"
	"strings"
	"testing"
)

func TestReadTSV(t *testing.T) {
	in := "name\tage\nada\t36\nbob, jr\t41\r\n"
	tbl, err := ReadTSV("people", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumCols() != 2 || tbl.NumRows() != 2 {
		t.Fatalf("shape = %dx%d", tbl.NumCols(), tbl.NumRows())
	}
	// No quoting: commas are verbatim, CR is stripped.
	if tbl.Columns[0].Values[1] != "bob, jr" || tbl.Columns[1].Values[1] != "41" {
		t.Errorf("row 2 = %v", tbl.Row(1))
	}
}

func TestReadTSVEmpty(t *testing.T) {
	tbl, err := ReadTSV("e", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumCols() != 0 {
		t.Errorf("cols = %d", tbl.NumCols())
	}
}

func TestReadMarkdown(t *testing.T) {
	in := `Some prose before the table.

| Super Bowl       | Season |
|------------------|:------:|
| Super Bowl XX    | 1985   |
| Super Bowl XXI   | 1986   |
| with \| pipe     | 1987   |

Prose after.
`
	tbl, err := ReadMarkdown("sb", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumCols() != 2 || tbl.NumRows() != 3 {
		t.Fatalf("shape = %dx%d", tbl.NumCols(), tbl.NumRows())
	}
	if tbl.Columns[0].Name != "Super Bowl" || tbl.Columns[1].Name != "Season" {
		t.Errorf("headers = %q, %q", tbl.Columns[0].Name, tbl.Columns[1].Name)
	}
	want := []string{"Super Bowl XX", "Super Bowl XXI", "with | pipe"}
	if !reflect.DeepEqual(tbl.Columns[0].Values, want) {
		t.Errorf("col 1 = %v", tbl.Columns[0].Values)
	}
}

func TestReadMarkdownNoTable(t *testing.T) {
	if _, err := ReadMarkdown("n", strings.NewReader("just prose\n")); err == nil {
		t.Error("prose-only input should error")
	}
}

func TestReadMarkdownStopsAtTableEnd(t *testing.T) {
	in := "| A |\n|---|\n| 1 |\nnot a row\n| B |\n|---|\n| 2 |\n"
	tbl, err := ReadMarkdown("m", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// Only the first table is read.
	if tbl.Columns[0].Name != "A" || tbl.NumRows() != 1 {
		t.Errorf("table = %v rows=%d", tbl.Columns[0].Name, tbl.NumRows())
	}
}

func TestIsAlignmentRow(t *testing.T) {
	yes := [][]string{{"---"}, {":--", "--:"}, {":-:", "---"}}
	no := [][]string{{""}, {"abc"}, {"---", "x"}, {"::"}, nil}
	for _, c := range yes {
		if !isAlignmentRow(c) {
			t.Errorf("isAlignmentRow(%v) = false", c)
		}
	}
	for _, c := range no {
		if isAlignmentRow(c) {
			t.Errorf("isAlignmentRow(%v) = true", c)
		}
	}
}

func TestSplitMarkdownRow(t *testing.T) {
	cases := map[string][]string{
		"| a | b |":      {"a", "b"},
		"|a|b|c|":        {"a", "b", "c"},
		`| x \| y | z |`: {"x | y", "z"},
		"| lone |":       {"lone"},
	}
	for in, want := range cases {
		if got := splitMarkdownRow(in); !reflect.DeepEqual(got, want) {
			t.Errorf("splitMarkdownRow(%q) = %v, want %v", in, got, want)
		}
	}
}
