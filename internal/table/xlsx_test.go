package table

import (
	"archive/zip"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// buildXLSX assembles a minimal in-memory workbook.
func buildXLSX(t *testing.T, sheets map[string]string, sharedStrings string) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	write := func(name, content string) {
		w, err := zw.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	write("[Content_Types].xml", `<?xml version="1.0"?><Types/>`)
	write("xl/workbook.xml", `<?xml version="1.0"?><workbook/>`)
	if sharedStrings != "" {
		write("xl/sharedStrings.xml", sharedStrings)
	}
	for name, content := range sheets {
		write("xl/worksheets/"+name, content)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

const sheetXML = `<?xml version="1.0"?>
<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
<sheetData>
<row r="1">
  <c r="A1" t="s"><v>0</v></c>
  <c r="B1" t="s"><v>1</v></c>
  <c r="C1" t="inlineStr"><is><t>Active</t></is></c>
</row>
<row r="2">
  <c r="A2" t="s"><v>2</v></c>
  <c r="B2"><v>8011</v></c>
  <c r="C2" t="b"><v>1</v></c>
</row>
<row r="3">
  <c r="A3" t="s"><v>3</v></c>
  <c r="B3"><v>9954</v></c>
  <c r="C3" t="b"><v>0</v></c>
</row>
<row r="4">
  <c r="A4" t="str"><v>computed</v></c>
  <c r="C4"><v>3.14</v></c>
</row>
</sheetData>
</worksheet>`

const sstXML = `<?xml version="1.0"?>
<sst xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main" count="4" uniqueCount="4">
<si><t>Name</t></si>
<si><t>Population</t></si>
<si><r><t>Jeff</t></r><r><t>erson</t></r></si>
<si><t>Jackson</t></si>
</sst>`

func TestReadXLSX(t *testing.T) {
	data := buildXLSX(t, map[string]string{"sheet1.xml": sheetXML}, sstXML)
	tables, err := ReadXLSX("book", bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	tb := tables[0]
	if tb.Name != "book" {
		t.Errorf("name = %q", tb.Name)
	}
	if tb.NumCols() != 3 || tb.NumRows() != 3 {
		t.Fatalf("shape = %dx%d, want 3x3", tb.NumCols(), tb.NumRows())
	}
	if tb.Columns[0].Name != "Name" || tb.Columns[1].Name != "Population" || tb.Columns[2].Name != "Active" {
		t.Errorf("headers = %v, %v, %v", tb.Columns[0].Name, tb.Columns[1].Name, tb.Columns[2].Name)
	}
	// Rich-text shared string concatenates its runs.
	if tb.Columns[0].Values[0] != "Jefferson" {
		t.Errorf("A2 = %q", tb.Columns[0].Values[0])
	}
	if tb.Columns[1].Values[0] != "8011" {
		t.Errorf("B2 = %q", tb.Columns[1].Values[0])
	}
	if tb.Columns[2].Values[0] != "TRUE" || tb.Columns[2].Values[1] != "FALSE" {
		t.Errorf("booleans = %q, %q", tb.Columns[2].Values[0], tb.Columns[2].Values[1])
	}
	// Sparse row: B4 missing becomes empty; formula string kept.
	if tb.Columns[0].Values[2] != "computed" || tb.Columns[1].Values[2] != "" {
		t.Errorf("row 4 = %q, %q", tb.Columns[0].Values[2], tb.Columns[1].Values[2])
	}
	if tb.Columns[2].Values[2] != "3.14" {
		t.Errorf("C4 = %q", tb.Columns[2].Values[2])
	}
}

func TestReadXLSXMultipleSheets(t *testing.T) {
	small := `<?xml version="1.0"?><worksheet><sheetData>
<row r="1"><c r="A1" t="inlineStr"><is><t>H</t></is></c></row>
<row r="2"><c r="A2"><v>1</v></c></row>
</sheetData></worksheet>`
	data := buildXLSX(t, map[string]string{"sheet1.xml": small, "sheet2.xml": small}, "")
	tables, err := ReadXLSX("wb", bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	if tables[0].Name != "wb#1" || tables[1].Name != "wb#2" {
		t.Errorf("names = %q, %q", tables[0].Name, tables[1].Name)
	}
}

func TestReadXLSXFile(t *testing.T) {
	data := buildXLSX(t, map[string]string{"sheet1.xml": sheetXML}, sstXML)
	path := filepath.Join(t.TempDir(), "book.xlsx")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	tables, err := ReadXLSXFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].Name != "book" {
		t.Errorf("name = %q", tables[0].Name)
	}
}

func TestReadXLSXErrors(t *testing.T) {
	if _, err := ReadXLSX("junk", bytes.NewReader([]byte("not a zip")), 9); err == nil {
		t.Error("junk should fail")
	}
	// Zip without worksheets.
	data := buildXLSX(t, map[string]string{}, "")
	if _, err := ReadXLSX("empty", bytes.NewReader(data), int64(len(data))); err == nil {
		t.Error("no worksheets should fail")
	}
	// Bad shared string index.
	bad := `<?xml version="1.0"?><worksheet><sheetData>
<row r="1"><c r="A1" t="s"><v>99</v></c></row>
<row r="2"><c r="A2"><v>1</v></c></row></sheetData></worksheet>`
	data = buildXLSX(t, map[string]string{"sheet1.xml": bad}, sstXML)
	if _, err := ReadXLSX("bad", bytes.NewReader(data), int64(len(data))); err == nil {
		t.Error("bad shared index should fail")
	}
}

func TestWriteXLSXRoundTrip(t *testing.T) {
	orig := MustNew("book",
		NewColumn("Name", []string{"Keane, Andrew", "O'Brien <junior>", "Kumar & Sons"}),
		NewColumn("Qty", []string{"8011", "-42", "3.14"}),
		NewColumn("Code", []string{"007", "A1", ""}),
	)
	var buf bytes.Buffer
	if err := WriteXLSX(orig, &buf); err != nil {
		t.Fatal(err)
	}
	tables, err := ReadXLSX("book", bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	got := tables[0]
	if got.NumCols() != orig.NumCols() || got.NumRows() != orig.NumRows() {
		t.Fatalf("shape = %dx%d", got.NumCols(), got.NumRows())
	}
	for j := range orig.Columns {
		if got.Columns[j].Name != orig.Columns[j].Name {
			t.Errorf("header %d = %q", j, got.Columns[j].Name)
		}
		for i := range orig.Columns[j].Values {
			if got.Columns[j].Values[i] != orig.Columns[j].Values[i] {
				t.Errorf("cell (%d,%d) = %q, want %q", j, i, got.Columns[j].Values[i], orig.Columns[j].Values[i])
			}
		}
	}
}

func TestColumnName(t *testing.T) {
	cases := map[int]string{0: "A", 1: "B", 25: "Z", 26: "AA", 27: "AB", 52: "BA", 701: "ZZ", 702: "AAA"}
	for i, want := range cases {
		if got := columnName(i); got != want {
			t.Errorf("columnName(%d) = %q, want %q", i, got, want)
		}
	}
	// Round trip with columnIndex.
	for i := 0; i < 1000; i++ {
		idx, err := columnIndex(columnName(i) + "1")
		if err != nil || idx != i {
			t.Fatalf("round trip %d -> %q -> %d (%v)", i, columnName(i), idx, err)
		}
	}
}

func TestIsPlainNumber(t *testing.T) {
	yes := []string{"42", "3.14", "-7", "0.5", "0"}
	no := []string{"", "007", "8,011", "1e3", "-", "abc", " 42"}
	for _, v := range yes {
		if !isPlainNumber(v) {
			t.Errorf("isPlainNumber(%q) = false", v)
		}
	}
	for _, v := range no {
		if isPlainNumber(v) {
			t.Errorf("isPlainNumber(%q) = true", v)
		}
	}
}

func TestColumnIndex(t *testing.T) {
	cases := map[string]int{"A1": 0, "B2": 1, "Z9": 25, "AA10": 26, "AB1": 27, "BA3": 52}
	for ref, want := range cases {
		got, err := columnIndex(ref)
		if err != nil || got != want {
			t.Errorf("columnIndex(%q) = %d, %v; want %d", ref, got, err, want)
		}
	}
	for _, bad := range []string{"", "1", "a1"} {
		if _, err := columnIndex(bad); err == nil {
			t.Errorf("columnIndex(%q) should fail", bad)
		}
	}
}

func TestTrimExt(t *testing.T) {
	cases := map[string]string{
		"dir/book.xlsx":   "book",
		"book.xlsx":       "book",
		"noext":           "noext",
		`c:\x\y\fin.xlsx`: "fin",
	}
	for in, want := range cases {
		if got := trimExt(in); got != want {
			t.Errorf("trimExt(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestXLSXRoundTripThroughDetectPipelineShape(t *testing.T) {
	// A worksheet with 12 rows to confirm type inference works on the
	// parsed values end-to-end.
	var rows string
	for i := 2; i <= 13; i++ {
		rows += fmt.Sprintf(`<row r="%d"><c r="A%d" t="inlineStr"><is><t>id%d</t></is></c><c r="B%d"><v>%d</v></c></row>`, i, i, i, i, i*100)
	}
	sheet := `<?xml version="1.0"?><worksheet><sheetData>
<row r="1"><c r="A1" t="inlineStr"><is><t>ID</t></is></c><c r="B1" t="inlineStr"><is><t>Qty</t></is></c></row>` + rows + `</sheetData></worksheet>`
	data := buildXLSX(t, map[string]string{"sheet1.xml": sheet}, "")
	tables, err := ReadXLSX("wb", bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	tb := tables[0]
	if tb.Columns[1].Type() != TypeInt {
		t.Errorf("Qty type = %v", tb.Columns[1].Type())
	}
	if tb.Columns[0].Type() != TypeMixed {
		t.Errorf("ID type = %v", tb.Columns[0].Type())
	}
}
