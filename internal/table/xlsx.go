package table

import (
	"archive/zip"
	"encoding/xml"
	"fmt"
	"io"
	"path"
	"sort"
	"strconv"
	"strings"
)

// The paper's Enterprise corpus is "a collection of 489K spreadsheet
// tables, extracted from Excel (.xlsx) files" (§4.1). This file implements
// a minimal self-contained xlsx reader — an xlsx workbook is a zip of XML
// parts — covering inline and shared strings, numbers, and booleans; the
// first worksheet row is taken as the header.

// ReadXLSXFile loads every worksheet of an .xlsx workbook as a table.
func ReadXLSXFile(path string) ([]*Table, error) {
	zr, err := zip.OpenReader(path)
	if err != nil {
		return nil, fmt.Errorf("open xlsx %q: %w", path, err)
	}
	defer zr.Close()
	return readXLSX(&zr.Reader, trimExt(path))
}

// ReadXLSX loads every worksheet from xlsx bytes served by r.
func ReadXLSX(name string, r io.ReaderAt, size int64) ([]*Table, error) {
	zr, err := zip.NewReader(r, size)
	if err != nil {
		return nil, fmt.Errorf("open xlsx %q: %w", name, err)
	}
	return readXLSX(zr, name)
}

func trimExt(p string) string {
	base := path.Base(strings.ReplaceAll(p, "\\", "/"))
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		return base[:i]
	}
	return base
}

// xlsx XML shapes (only the parts we consume).
type xlsxSST struct {
	SI []struct {
		T string `xml:"t"`
		R []struct {
			T string `xml:"t"`
		} `xml:"r"`
	} `xml:"si"`
}

type xlsxSheet struct {
	Rows []struct {
		R     int `xml:"r,attr"`
		Cells []struct {
			R string `xml:"r,attr"`
			T string `xml:"t,attr"`
			V string `xml:"v"`
			atom
		} `xml:"c"`
	} `xml:"sheetData>row"`
}

// atom captures inline strings (<is><t>).
type atom struct {
	IS struct {
		T string `xml:"t"`
	} `xml:"is"`
}

func readXLSX(zr *zip.Reader, name string) ([]*Table, error) {
	files := map[string]*zip.File{}
	var sheetPaths []string
	for _, f := range zr.File {
		files[f.Name] = f
		if strings.HasPrefix(f.Name, "xl/worksheets/") && strings.HasSuffix(f.Name, ".xml") {
			sheetPaths = append(sheetPaths, f.Name)
		}
	}
	sort.Strings(sheetPaths)
	if len(sheetPaths) == 0 {
		return nil, fmt.Errorf("xlsx %q: no worksheets", name)
	}

	var shared []string
	if sst, ok := files["xl/sharedStrings.xml"]; ok {
		var err error
		shared, err = parseSharedStrings(sst)
		if err != nil {
			return nil, fmt.Errorf("xlsx %q: %w", name, err)
		}
	}

	var tables []*Table
	for i, sp := range sheetPaths {
		t, err := parseSheet(files[sp], shared)
		if err != nil {
			return nil, fmt.Errorf("xlsx %q sheet %s: %w", name, sp, err)
		}
		if t == nil {
			continue
		}
		if len(sheetPaths) == 1 {
			t.Name = name
		} else {
			t.Name = fmt.Sprintf("%s#%d", name, i+1)
		}
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		return nil, fmt.Errorf("xlsx %q: all worksheets empty", name)
	}
	return tables, nil
}

func parseSharedStrings(f *zip.File) ([]string, error) {
	rc, err := f.Open()
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	var sst xlsxSST
	if err := xml.NewDecoder(rc).Decode(&sst); err != nil {
		return nil, fmt.Errorf("shared strings: %w", err)
	}
	out := make([]string, len(sst.SI))
	for i, si := range sst.SI {
		if len(si.R) > 0 { // rich text runs concatenate
			var b strings.Builder
			for _, r := range si.R {
				b.WriteString(r.T)
			}
			out[i] = b.String()
			continue
		}
		out[i] = si.T
	}
	return out, nil
}

func parseSheet(f *zip.File, shared []string) (*Table, error) {
	rc, err := f.Open()
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	var sheet xlsxSheet
	if err := xml.NewDecoder(rc).Decode(&sheet); err != nil {
		return nil, fmt.Errorf("worksheet: %w", err)
	}
	if len(sheet.Rows) == 0 {
		return nil, nil
	}

	// Materialize a dense grid: column index from the cell reference
	// ("C7" -> 2), row order as given.
	grid := make([][]string, 0, len(sheet.Rows))
	width := 0
	for _, row := range sheet.Rows {
		cells := map[int]string{}
		maxCol := -1
		for _, c := range row.Cells {
			col, err := columnIndex(c.R)
			if err != nil {
				return nil, err
			}
			v, err := cellValue(c.T, c.V, c.IS.T, shared)
			if err != nil {
				return nil, err
			}
			cells[col] = v
			if col > maxCol {
				maxCol = col
			}
		}
		dense := make([]string, maxCol+1)
		for col, v := range cells {
			dense[col] = v
		}
		grid = append(grid, dense)
		if maxCol+1 > width {
			width = maxCol + 1
		}
	}
	records := make([][]string, len(grid))
	for i, row := range grid {
		rec := make([]string, width)
		copy(rec, row)
		records[i] = rec
	}
	return fromRecords("", records)
}

// cellValue resolves a cell by its type attribute: "s" shared string,
// "inlineStr", "str" formula string, "b" boolean, default numeric/general.
func cellValue(typ, v, inline string, shared []string) (string, error) {
	switch typ {
	case "s":
		i, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || i < 0 || i >= len(shared) {
			return "", fmt.Errorf("bad shared string index %q", v)
		}
		return shared[i], nil
	case "inlineStr":
		return inline, nil
	case "b":
		if strings.TrimSpace(v) == "1" {
			return "TRUE", nil
		}
		return "FALSE", nil
	default: // "str", "n", or untyped
		return v, nil
	}
}

// columnIndex converts the letter prefix of an A1-style reference to a
// 0-based column index.
func columnIndex(ref string) (int, error) {
	n := 0
	seen := false
	for _, r := range ref {
		if r >= 'A' && r <= 'Z' {
			n = n*26 + int(r-'A') + 1
			seen = true
			continue
		}
		if r >= '0' && r <= '9' {
			break
		}
		return 0, fmt.Errorf("bad cell reference %q", ref)
	}
	if !seen {
		return 0, fmt.Errorf("bad cell reference %q", ref)
	}
	return n - 1, nil
}
