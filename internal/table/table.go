// Package table provides the relational table model used throughout
// Uni-Detect: typed columns, value type inference, numeric parsing
// (including thousands separators), tokenization and CSV/TSV IO.
//
// Tables are stored column-major because every Uni-Detect metric function
// operates on columns; rows are materialized on demand.
package table

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// ValueType classifies the dominant value type of a column, following the
// featurization dimensions of the paper (Figure 5 and §3.1–3.4):
// string vs. integer vs. floating-point vs. mixed-alphanumeric.
type ValueType uint8

const (
	// TypeEmpty marks a column with no non-empty values.
	TypeEmpty ValueType = iota
	// TypeString marks columns of plain (letters/punctuation) strings.
	TypeString
	// TypeInt marks integer-valued numeric columns.
	TypeInt
	// TypeFloat marks floating-point numeric columns.
	TypeFloat
	// TypeMixed marks mixed-alphanumeric columns (IDs, codes, part
	// numbers), which the paper singles out as likely key columns.
	TypeMixed
	numValueTypes
)

// NumValueTypes is the number of distinct ValueType values, for use as an
// array dimension by featurization code.
const NumValueTypes = int(numValueTypes)

// String returns a short human-readable name for the type.
func (t ValueType) String() string {
	switch t {
	case TypeEmpty:
		return "empty"
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeMixed:
		return "mixed"
	default:
		return fmt.Sprintf("ValueType(%d)", uint8(t))
	}
}

// Column is a named, typed column of string cell values.
//
// A Column may be read from many goroutines at once (the predictor runs
// detectors concurrently over shared tables), so the type cache below is
// atomic. Mutating Values concurrently with readers is still the caller's
// responsibility.
type Column struct {
	Name   string
	Values []string

	// typ caches the inferred ValueType in its low byte, with bit 8 set
	// once computed (0 therefore means "not yet computed"). It is atomic
	// because concurrent detector goroutines race to fill the cache;
	// InferType is deterministic, so a duplicated computation is harmless.
	typ atomic.Uint32
}

// NewColumn builds a column from a name and values.
func NewColumn(name string, values []string) *Column {
	return &Column{Name: name, Values: values}
}

// Len returns the number of cells in the column.
func (c *Column) Len() int { return len(c.Values) }

// typComputed is OR-ed into the cached type word to distinguish a cached
// TypeEmpty (value 0) from "not yet computed".
const typComputed = 1 << 8

// Type returns the inferred ValueType of the column, computing and caching
// it on first use. It is safe for concurrent use.
func (c *Column) Type() ValueType {
	if v := c.typ.Load(); v&typComputed != 0 {
		return ValueType(v)
	}
	t := InferType(c.Values)
	c.typ.Store(typComputed | uint32(t))
	return t
}

// Invalidate drops cached derived state after the Values slice is mutated.
func (c *Column) Invalidate() { c.typ.Store(0) }

// Drop returns a copy of the column with the cells at the given row indices
// removed. Indices outside the column are ignored. The receiver is not
// modified; this implements the ε-perturbation D \ O of Definition 2.
func (c *Column) Drop(rows ...int) *Column {
	if len(rows) == 0 {
		out := NewColumn(c.Name, append([]string(nil), c.Values...))
		return out
	}
	drop := make(map[int]bool, len(rows))
	for _, r := range rows {
		drop[r] = true
	}
	vals := make([]string, 0, len(c.Values))
	for i, v := range c.Values {
		if !drop[i] {
			vals = append(vals, v)
		}
	}
	return NewColumn(c.Name, vals)
}

// Table is a named collection of equally long columns.
type Table struct {
	Name    string
	Columns []*Column
}

// New builds a table and validates that all columns have equal length.
func New(name string, cols ...*Column) (*Table, error) {
	if len(cols) > 0 {
		n := cols[0].Len()
		for _, c := range cols[1:] {
			if c.Len() != n {
				return nil, fmt.Errorf("table %q: column %q has %d rows, want %d", name, c.Name, c.Len(), n)
			}
		}
	}
	return &Table{Name: name, Columns: cols}, nil
}

// MustNew is New but panics on ragged columns; for tests and literals.
func MustNew(name string, cols ...*Column) *Table {
	t, err := New(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the row count (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.Columns) }

// Row materializes row i as a slice of cell values, one per column.
func (t *Table) Row(i int) []string {
	row := make([]string, len(t.Columns))
	for j, c := range t.Columns {
		row[j] = c.Values[i]
	}
	return row
}

// Column returns the column with the given name, or nil if absent.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Columns {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// DropRows returns a copy of the table with the given row indices removed
// from every column (the table-level ε-perturbation).
func (t *Table) DropRows(rows ...int) *Table {
	cols := make([]*Column, len(t.Columns))
	for j, c := range t.Columns {
		cols[j] = c.Drop(rows...)
	}
	return &Table{Name: t.Name, Columns: cols}
}

// CellRef identifies a single cell in a named table.
type CellRef struct {
	Table  string
	Column string
	Row    int
}

// String renders the reference as table!column[row].
func (r CellRef) String() string {
	return fmt.Sprintf("%s!%s[%d]", r.Table, r.Column, r.Row)
}

// Tokenize splits a cell value into lowercase tokens on any non-alphanumeric
// rune. Tokens are the unit of the paper's token-prevalence featurization
// (Prev(C), §3.3) and of the differing-token analysis for spelling (§3.2).
func Tokenize(v string) []string {
	var toks []string
	start := -1
	lower := strings.ToLower(v)
	for i, r := range lower {
		alnum := r >= 'a' && r <= 'z' || r >= '0' && r <= '9'
		if alnum {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			toks = append(toks, lower[start:i])
			start = -1
		}
	}
	if start >= 0 {
		toks = append(toks, lower[start:])
	}
	return toks
}
