package table

import (
	"strconv"
	"strings"
)

// cellKind classifies a single cell value.
type cellKind uint8

const (
	kindEmpty cellKind = iota
	kindInt
	kindFloat
	kindString
	kindMixed
)

// classifyCell determines the kind of one cell.
func classifyCell(v string) cellKind {
	v = strings.TrimSpace(v)
	if v == "" {
		return kindEmpty
	}
	if _, isInt, ok := ParseNumber(v); ok {
		if isInt {
			return kindInt
		}
		return kindFloat
	}
	hasLetter, hasDigit := false, false
	for _, r := range v {
		switch {
		case r >= '0' && r <= '9':
			hasDigit = true
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
			hasLetter = true
		}
	}
	if hasLetter && hasDigit {
		return kindMixed
	}
	return kindString
}

// InferType infers the dominant ValueType of a slice of cell values.
//
// The rules mirror what error-detection needs: a column is numeric only if
// the overwhelming majority (>= 90%) of its non-empty cells parse as
// numbers — so that a single corrupted numeric cell (e.g. "8.716" among
// "8,011"-style values, Figure 4(e)) does not flip the column to string.
// A column with both letter-bearing and digit-bearing values, or with
// mixed-alphanumeric cells, is TypeMixed (ID/code-like).
//
// A nil or zero-length slice, and a slice whose cells are all blank, are
// guaranteed to be TypeEmpty — columns materialized from streaming
// sources (schema-only chunks, columns widened after their rows passed)
// rely on this never classifying as string or numeric.
func InferType(values []string) ValueType {
	if len(values) == 0 {
		return TypeEmpty
	}
	var nEmpty, nInt, nFloat, nString, nMixed int
	for _, v := range values {
		switch classifyCell(v) {
		case kindEmpty:
			nEmpty++
		case kindInt:
			nInt++
		case kindFloat:
			nFloat++
		case kindString:
			nString++
		case kindMixed:
			nMixed++
		}
	}
	n := len(values) - nEmpty
	if n <= 0 {
		return TypeEmpty
	}
	numeric := nInt + nFloat
	switch {
	case numeric*10 >= n*9: // >= 90% numeric
		if nFloat > 0 {
			return TypeFloat
		}
		return TypeInt
	case nMixed*4 >= n: // >= 25% mixed-alphanumeric cells
		return TypeMixed
	case nString > 0 && numeric > 0:
		// Letters-only and digits-only values interleaved: code-like.
		return TypeMixed
	case nString >= nMixed:
		return TypeString
	default:
		return TypeMixed
	}
}

// ParseNumber parses a cell as a number, accepting optional leading sign,
// thousands separators in the US style ("8,011", "1,234,567.89"), a leading
// currency/percent-free numeral, and plain scientific notation. It returns
// the parsed value, whether the value is integral, and whether parsing
// succeeded.
//
// Thousands-separator handling matters for the paper's running example
// (Figure 4(e)): "8,011" must parse as 8011 while the corrupted "8.716"
// parses as the float 8.716.
func ParseNumber(v string) (f float64, isInt bool, ok bool) {
	s := strings.TrimSpace(v)
	if s == "" {
		return 0, false, false
	}
	neg := false
	switch s[0] {
	case '+':
		s = s[1:]
	case '-':
		neg = true
		s = s[1:]
	}
	if s == "" {
		return 0, false, false
	}
	// Reject anything with characters a number cannot contain, fast path.
	for _, r := range s {
		if !(r >= '0' && r <= '9' || r == '.' || r == ',' || r == 'e' || r == 'E' || r == '+' || r == '-') {
			return 0, false, false
		}
	}
	if strings.Contains(s, ",") {
		if !validThousands(s) {
			return 0, false, false
		}
		s = strings.ReplaceAll(s, ",", "")
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false, false
	}
	if neg {
		f = -f
	}
	// Integral if there is no decimal point or exponent and it fits the
	// float64 integer range exactly.
	isInt = !strings.ContainsAny(s, ".eE")
	return f, isInt, true
}

// validThousands reports whether the comma usage in s is a valid US-style
// thousands grouping: groups of exactly three digits after the first comma,
// with the first group 1–3 digits, and any decimal part comma-free.
func validThousands(s string) bool {
	intPart := s
	if i := strings.IndexAny(s, ".eE"); i >= 0 {
		intPart = s[:i]
		if strings.Contains(s[i:], ",") {
			return false
		}
	}
	groups := strings.Split(intPart, ",")
	if len(groups) < 2 {
		return false
	}
	if len(groups[0]) == 0 || len(groups[0]) > 3 {
		return false
	}
	for _, g := range groups[1:] {
		if len(g) != 3 {
			return false
		}
		for _, r := range g {
			if r < '0' || r > '9' {
				return false
			}
		}
	}
	for _, r := range groups[0] {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Numbers extracts the parseable numeric values from a column, returning
// them together with the row index of each.
func Numbers(c *Column) (vals []float64, rows []int) {
	for i, s := range c.Values {
		if f, _, ok := ParseNumber(s); ok {
			vals = append(vals, f)
			rows = append(rows, i)
		}
	}
	return vals, rows
}
