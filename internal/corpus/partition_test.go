package corpus

import (
	"testing"

	"github.com/unidetect/unidetect/internal/table"
)

func partitionTables(t *testing.T, n int) []*table.Table {
	t.Helper()
	out := make([]*table.Table, n)
	for i := range out {
		tbl, err := table.New("t"+string(rune('a'+i)),
			table.NewColumn("city", []string{"berlin", "paris", "tokyo"}))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = tbl
	}
	return out
}

func TestPartitionSharesIndex(t *testing.T) {
	c := New("bg", partitionTables(t, 7))
	parts := c.Partition(3)
	if len(parts) != 3 {
		t.Fatalf("Partition(3) returned %d shards", len(parts))
	}
	total := 0
	for i, p := range parts {
		if p.Index() != c.Index() {
			t.Errorf("shard %d has its own index; featurization would drift from the monolithic pass", i)
		}
		total += p.NumTables()
	}
	if total != c.NumTables() {
		t.Errorf("shards cover %d tables, corpus has %d", total, c.NumTables())
	}
	// The shared index must describe the whole corpus, not the shard.
	if got := parts[0].Index().NumTables(); got != c.NumTables() {
		t.Errorf("shard index spans %d tables, want %d", got, c.NumTables())
	}
}

func TestWithSharedIndex(t *testing.T) {
	tabs := partitionTables(t, 4)
	parent := New("bg", tabs)
	ix := parent.Index()
	child := WithSharedIndex("bg/shard", tabs[:2], ix)
	if child.Index() != ix {
		t.Fatal("WithSharedIndex did not pin the provided index")
	}
	if child.NumTables() != 2 {
		t.Fatalf("child has %d tables, want 2", child.NumTables())
	}
}
