// Package corpus holds the background table corpus T and the
// token-prevalence index that the paper's featurization needs: Prev(C)
// (§3.3) averages, over the tokens of a column, the number of corpus
// tables each token occurs in — low-prevalence tokens mark "ID"-like
// columns that are intended to be unique.
package corpus

import (
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"

	"github.com/unidetect/unidetect/internal/table"
)

// Corpus is a set of background tables with a token-prevalence index.
type Corpus struct {
	Name   string
	Tables []*table.Table

	idxOnce sync.Once
	idx     *TokenIndex
}

// New wraps tables into a Corpus.
func New(name string, tables []*table.Table) *Corpus {
	return &Corpus{Name: name, Tables: tables}
}

// NumTables returns the table count.
func (c *Corpus) NumTables() int { return len(c.Tables) }

// NumColumns returns the total column count across tables.
func (c *Corpus) NumColumns() int {
	n := 0
	for _, t := range c.Tables {
		n += t.NumCols()
	}
	return n
}

// AvgCols returns the mean columns per table.
func (c *Corpus) AvgCols() float64 {
	if len(c.Tables) == 0 {
		return 0
	}
	return float64(c.NumColumns()) / float64(len(c.Tables))
}

// AvgRows returns the mean rows per table.
func (c *Corpus) AvgRows() float64 {
	if len(c.Tables) == 0 {
		return 0
	}
	rows := 0
	for _, t := range c.Tables {
		rows += t.NumRows()
	}
	return float64(rows) / float64(len(c.Tables))
}

// Index returns the corpus's token-prevalence index, building it on first
// use (concurrently, via the mapreduce engine).
func (c *Corpus) Index() *TokenIndex {
	c.idxOnce.Do(func() {
		c.idx = BuildTokenIndex(c.Tables)
	})
	return c.idx
}

// TokenIndex maps tokens to the number of distinct corpus tables they
// appear in. Tokens are stored as 64-bit FNV hashes: the index only ever
// answers count queries, a rare collision merely perturbs one prevalence
// estimate, and hashing keeps the memory of near-unique ID tokens bounded.
type TokenIndex struct {
	counts    map[uint64]int32
	numTables int
}

// BuildTokenIndex scans every cell of every table, deduplicating tokens
// within a table so the count is "number of tables containing the token".
// Workers count into per-worker maps that are merged at the end, keeping
// the hot path lock-free (the same shard-then-merge shape the mapreduce
// engine uses, but with in-mapper combining so near-unique ID tokens cost
// one map entry instead of one emission each).
func BuildTokenIndex(tables []*table.Table) *TokenIndex {
	nw := runtime.GOMAXPROCS(0)
	if nw > len(tables) && len(tables) > 0 {
		nw = len(tables)
	}
	if nw < 1 {
		nw = 1
	}
	shards := make([]map[uint64]int32, nw)
	var wg sync.WaitGroup
	chunk := (len(tables) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(tables) {
			hi = len(tables)
		}
		if lo >= hi {
			shards[w] = map[uint64]int32{}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			local := make(map[uint64]int32, 1024)
			seen := make(map[uint64]bool, 128)
			for _, t := range tables[lo:hi] {
				clear(seen)
				for _, col := range t.Columns {
					for _, v := range col.Values {
						for _, tok := range table.Tokenize(v) {
							h := hashToken(tok)
							if !seen[h] {
								seen[h] = true
								local[h]++
							}
						}
					}
				}
			}
			shards[w] = local
		}(w, lo, hi)
	}
	wg.Wait()
	counts := shards[0]
	for _, s := range shards[1:] {
		for h, n := range s {
			counts[h] += n
		}
	}
	if counts == nil {
		counts = map[uint64]int32{}
	}
	return &TokenIndex{counts: counts, numTables: len(tables)}
}

// NumTables returns the number of tables the index was built over.
func (ix *TokenIndex) NumTables() int { return ix.numTables }

// Count returns the number of tables containing the token.
func (ix *TokenIndex) Count(tok string) int {
	return int(ix.counts[hashToken(tok)])
}

// Prevalence returns Prev(C) for a column: the average, over cells and
// their tokens, of the token's table count (§3.3). Columns with no tokens
// get prevalence 0.
func (ix *TokenIndex) Prevalence(c *table.Column) float64 {
	var total float64
	var n int
	for _, v := range c.Values {
		toks := table.Tokenize(v)
		if len(toks) == 0 {
			continue
		}
		var s float64
		for _, tok := range toks {
			s += float64(ix.counts[hashToken(tok)])
		}
		total += s / float64(len(toks))
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// Merge returns a new index combining both indexes' counts, as if built
// over the union of their corpora (assuming disjoint table sets).
func (ix *TokenIndex) Merge(other *TokenIndex) *TokenIndex {
	counts := make(map[uint64]int32, len(ix.counts)+len(other.counts))
	for h, n := range ix.counts {
		counts[h] = n
	}
	for h, n := range other.counts {
		counts[h] += n
	}
	return &TokenIndex{counts: counts, numTables: ix.numTables + other.numTables}
}

// RelPrevalence returns Prev(C) normalized by the corpus size: the
// average fraction of tables an average token of the column occurs in.
func (ix *TokenIndex) RelPrevalence(c *table.Column) float64 {
	if ix.numTables == 0 {
		return 0
	}
	return ix.Prevalence(c) / float64(ix.numTables)
}

// tokenIndexWire is the gob wire format of a TokenIndex: parallel
// hash/count slices sorted by hash, rather than a map, so the encoding
// is deterministic (gob writes maps in randomized iteration order, and
// model files promise byte-stable serialization).
type tokenIndexWire struct {
	Hashes    []uint64
	Counts    []int32
	NumTables int
}

// Encode writes the index to w (gob), so a trained model can carry its
// featurization context. The encoding is deterministic.
func (ix *TokenIndex) Encode(w io.Writer) error {
	wire := tokenIndexWire{
		Hashes:    make([]uint64, 0, len(ix.counts)),
		Counts:    make([]int32, 0, len(ix.counts)),
		NumTables: ix.numTables,
	}
	for h := range ix.counts {
		wire.Hashes = append(wire.Hashes, h)
	}
	sort.Slice(wire.Hashes, func(i, j int) bool { return wire.Hashes[i] < wire.Hashes[j] })
	for _, h := range wire.Hashes {
		wire.Counts = append(wire.Counts, ix.counts[h])
	}
	return gob.NewEncoder(w).Encode(wire)
}

// DecodeTokenIndex reads an index written by Encode.
func DecodeTokenIndex(r io.Reader) (*TokenIndex, error) {
	var w tokenIndexWire
	if err := gob.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("corpus: decode token index: %w", err)
	}
	if len(w.Hashes) != len(w.Counts) {
		return nil, fmt.Errorf("corpus: token index hash/count length mismatch (%d vs %d)", len(w.Hashes), len(w.Counts))
	}
	counts := make(map[uint64]int32, len(w.Hashes))
	for i, h := range w.Hashes {
		counts[h] = w.Counts[i]
	}
	return &TokenIndex{counts: counts, numTables: w.NumTables}, nil
}

func hashToken(tok string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(tok))
	return h.Sum64()
}

// TopTokens returns the k most prevalent token hashes with counts, for
// diagnostics.
func (ix *TokenIndex) TopTokens(k int) []int32 {
	counts := make([]int32, 0, len(ix.counts))
	for _, v := range ix.counts {
		counts = append(counts, v)
	}
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	if k < len(counts) {
		counts = counts[:k]
	}
	return counts
}
