package corpus

import (
	"fmt"
	"testing"

	"github.com/unidetect/unidetect/internal/table"
)

func mkTable(name string, cols ...*table.Column) *table.Table {
	return table.MustNew(name, cols...)
}

func TestCorpusStats(t *testing.T) {
	c := New("c", []*table.Table{
		mkTable("a", table.NewColumn("x", []string{"1", "2"})),
		mkTable("b",
			table.NewColumn("x", []string{"1", "2", "3", "4"}),
			table.NewColumn("y", []string{"a", "b", "c", "d"})),
	})
	if c.NumTables() != 2 {
		t.Errorf("NumTables = %d", c.NumTables())
	}
	if c.NumColumns() != 3 {
		t.Errorf("NumColumns = %d", c.NumColumns())
	}
	if c.AvgCols() != 1.5 {
		t.Errorf("AvgCols = %v", c.AvgCols())
	}
	if c.AvgRows() != 3 {
		t.Errorf("AvgRows = %v", c.AvgRows())
	}
	empty := New("e", nil)
	if empty.AvgCols() != 0 || empty.AvgRows() != 0 {
		t.Error("empty corpus averages should be 0")
	}
}

func TestTokenIndexCounts(t *testing.T) {
	tables := []*table.Table{
		mkTable("t1", table.NewColumn("c", []string{"apple pie", "apple tart"})),
		mkTable("t2", table.NewColumn("c", []string{"apple", "banana"})),
		mkTable("t3", table.NewColumn("c", []string{"cherry"})),
	}
	ix := BuildTokenIndex(tables)
	if ix.NumTables() != 3 {
		t.Errorf("NumTables = %d", ix.NumTables())
	}
	// "apple" appears in t1 twice but must count once per table.
	if got := ix.Count("apple"); got != 2 {
		t.Errorf("Count(apple) = %d, want 2", got)
	}
	if got := ix.Count("banana"); got != 1 {
		t.Errorf("Count(banana) = %d, want 1", got)
	}
	if got := ix.Count("missing"); got != 0 {
		t.Errorf("Count(missing) = %d, want 0", got)
	}
	// Tokenization is case-insensitive.
	if got := ix.Count("APPLE"); got != 0 {
		t.Errorf("index stores lowercase tokens; Count(APPLE) = %d", got)
	}
}

func TestPrevalence(t *testing.T) {
	tables := make([]*table.Table, 0, 10)
	for i := 0; i < 10; i++ {
		tables = append(tables, mkTable(fmt.Sprintf("t%d", i),
			table.NewColumn("c", []string{"common value"})))
	}
	tables = append(tables, mkTable("rare",
		table.NewColumn("c", []string{"zzqx917"})))
	ix := BuildTokenIndex(tables)

	common := table.NewColumn("c", []string{"common value", "common value"})
	rare := table.NewColumn("c", []string{"zzqx917"})
	pc := ix.Prevalence(common)
	pr := ix.Prevalence(rare)
	if pc <= pr {
		t.Errorf("Prevalence(common)=%v should exceed Prevalence(rare)=%v", pc, pr)
	}
	if pc != 10 {
		t.Errorf("Prevalence(common) = %v, want 10", pc)
	}
	if pr != 1 {
		t.Errorf("Prevalence(rare) = %v, want 1", pr)
	}
	emptyCol := table.NewColumn("c", []string{"", "--"})
	if got := ix.Prevalence(emptyCol); got != 0 {
		t.Errorf("Prevalence(tokenless) = %v, want 0", got)
	}
}

func TestIndexLazyBuildIsStable(t *testing.T) {
	c := New("c", []*table.Table{
		mkTable("t", table.NewColumn("c", []string{"alpha beta"})),
	})
	a := c.Index()
	b := c.Index()
	if a != b {
		t.Error("Index must be built once and cached")
	}
	if a.Count("alpha") != 1 {
		t.Errorf("Count(alpha) = %d", a.Count("alpha"))
	}
}

func TestBuildTokenIndexEmpty(t *testing.T) {
	ix := BuildTokenIndex(nil)
	if ix.NumTables() != 0 || ix.Count("x") != 0 {
		t.Error("empty index should answer zero counts")
	}
}

func TestTokenIndexMerge(t *testing.T) {
	a := BuildTokenIndex([]*table.Table{
		mkTable("t1", table.NewColumn("c", []string{"alpha beta"})),
		mkTable("t2", table.NewColumn("c", []string{"alpha"})),
	})
	b := BuildTokenIndex([]*table.Table{
		mkTable("t3", table.NewColumn("c", []string{"alpha gamma"})),
	})
	m := a.Merge(b)
	if m.NumTables() != 3 {
		t.Errorf("NumTables = %d", m.NumTables())
	}
	if m.Count("alpha") != 3 || m.Count("beta") != 1 || m.Count("gamma") != 1 {
		t.Errorf("counts = %d/%d/%d", m.Count("alpha"), m.Count("beta"), m.Count("gamma"))
	}
	// Originals untouched.
	if a.Count("gamma") != 0 || b.Count("beta") != 0 {
		t.Error("merge mutated inputs")
	}
}

func TestRelPrevalence(t *testing.T) {
	tables := make([]*table.Table, 10)
	for i := range tables {
		tables[i] = mkTable(fmt.Sprintf("t%d", i), table.NewColumn("c", []string{"common"}))
	}
	ix := BuildTokenIndex(tables)
	c := table.NewColumn("c", []string{"common"})
	if got := ix.RelPrevalence(c); got != 1 {
		t.Errorf("RelPrevalence = %v, want 1", got)
	}
	empty := BuildTokenIndex(nil)
	if got := empty.RelPrevalence(c); got != 0 {
		t.Errorf("empty corpus RelPrevalence = %v", got)
	}
}

func TestTopTokens(t *testing.T) {
	tables := []*table.Table{
		mkTable("t1", table.NewColumn("c", []string{"a b"})),
		mkTable("t2", table.NewColumn("c", []string{"a"})),
	}
	ix := BuildTokenIndex(tables)
	top := ix.TopTokens(1)
	if len(top) != 1 || top[0] != 2 {
		t.Errorf("TopTokens = %v", top)
	}
	if len(ix.TopTokens(10)) != 2 {
		t.Errorf("TopTokens(10) = %v", ix.TopTokens(10))
	}
}
