package corpus

import (
	"fmt"

	"github.com/unidetect/unidetect/internal/mapreduce"
	"github.com/unidetect/unidetect/internal/table"
)

// WithSharedIndex wraps tables into a Corpus whose token-prevalence
// index is ix instead of one built over tables alone. This is how a
// corpus partition keeps the parent's featurization: Prev(C) (§3.3) is a
// whole-corpus statistic, so shard-trained models are byte-equivalent to
// a monolithic pass only when every shard buckets prevalence against the
// same full-corpus index.
func WithSharedIndex(name string, tables []*table.Table, ix *TokenIndex) *Corpus {
	c := New(name, tables)
	c.idx = ix
	c.idxOnce.Do(func() {}) // burn the once so Index() returns ix as-is
	return c
}

// Partition splits the corpus into k contiguous, balanced shards for
// independent training (core.TrainSharded). Every shard shares the
// parent's full-corpus token index — built here if not already — so
// featurization, and hence the learned evidence, is identical to a
// monolithic pass over the whole corpus. k is clamped as in
// mapreduce.Partition: at least 1, at most the table count.
func (c *Corpus) Partition(k int) []*Corpus {
	ix := c.Index()
	ranges := mapreduce.Partition(len(c.Tables), k)
	out := make([]*Corpus, len(ranges))
	for i, r := range ranges {
		out[i] = WithSharedIndex(
			fmt.Sprintf("%s/shard-%d-of-%d", c.Name, i, len(ranges)),
			c.Tables[r.Lo:r.Hi], ix)
	}
	return out
}
