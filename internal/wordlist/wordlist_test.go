package wordlist

import "testing"

func TestDictionary(t *testing.T) {
	d := Dictionary()
	for _, w := range []string{"water", "Water", "macroeconomics", "groups", "WORKED"} {
		if !d.Contains(w) {
			t.Errorf("Dictionary missing %q", w)
		}
	}
	for _, w := range []string{"Doeling", "KV214", "xqzzy", ""} {
		if d.Contains(w) {
			t.Errorf("Dictionary should not contain %q", w)
		}
	}
	if d.Len() < 1000 {
		t.Errorf("Dictionary too small: %d", d.Len())
	}
}

func TestListsNonTrivial(t *testing.T) {
	cases := []struct {
		name string
		list []string
		min  int
	}{
		{"English", English(), 500},
		{"FirstNames", FirstNames(), 100},
		{"LastNames", LastNames(), 100},
		{"Cities", Cities(), 100},
		{"Countries", Countries(), 60},
		{"ChemicalFormulas", ChemicalFormulas(), 40},
		{"PopularEntities", PopularEntities(), 60},
	}
	for _, c := range cases {
		if len(c.list) < c.min {
			t.Errorf("%s has %d entries, want >= %d", c.name, len(c.list), c.min)
		}
		for _, w := range c.list {
			if w == "" {
				t.Errorf("%s contains empty entry", c.name)
				break
			}
		}
	}
}

func TestRomanNumerals(t *testing.T) {
	got := RomanNumerals(10)
	want := []string{"I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("roman(%d) = %q, want %q", i+1, got[i], want[i])
		}
	}
	all := RomanNumerals(60)
	if all[39] != "XL" || all[49] != "L" || all[59] != "LX" {
		t.Errorf("roman 40/50/60 = %q/%q/%q", all[39], all[49], all[59])
	}
}

func TestNewSet(t *testing.T) {
	s := NewSet("Alpha", "beta")
	if !s.Contains("alpha") || !s.Contains("BETA") {
		t.Error("Set should be case-insensitive")
	}
	if s.Contains("gamma") {
		t.Error("Set should not contain gamma")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}
