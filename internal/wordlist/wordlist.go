// Package wordlist embeds the lexicons and gazetteers used across the
// reproduction: an English dictionary (the UNIDETECT+Dict post-filter and
// the Word2Vec/GloVe vocabulary simulations), person-name and place
// gazetteers (the synthetic table generator), chemical formulas and roman
// numerals (the small-edit-distance column families of Figure 2(g,h)), and
// a popular-entity gazetteer (the simulated search-engine speller's
// query-log vocabulary, reproducing the GAIL→GMAIL failure mode of
// Figure 3).
package wordlist

import (
	"strings"
	"sync"
)

// Set is an immutable membership set over lowercased words.
type Set struct {
	m map[string]bool
}

// NewSet builds a Set from words (lowercased).
func NewSet(words ...string) *Set {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[strings.ToLower(w)] = true
	}
	return &Set{m: m}
}

// Contains reports whether w (case-insensitive) is in the set.
func (s *Set) Contains(w string) bool { return s.m[strings.ToLower(w)] }

// Len returns the number of words in the set.
func (s *Set) Len() int { return len(s.m) }

var (
	dictOnce sync.Once
	dict     *Set
)

// Dictionary returns the shared English dictionary set (English words plus
// inflected variants), used by the UNIDETECT+Dict spelling filter.
func Dictionary() *Set {
	dictOnce.Do(func() {
		words := append([]string(nil), englishWords...)
		// Cheap inflections so "groups"/"grouped" etc. count as words.
		for _, w := range englishWords {
			words = append(words, w+"s", w+"ed", w+"ing")
		}
		dict = NewSet(words...)
	})
	return dict
}

// English returns the base English word list.
func English() []string { return englishWords }

// FirstNames returns the first-name gazetteer.
func FirstNames() []string { return firstNames }

// LastNames returns the last-name gazetteer.
func LastNames() []string { return lastNames }

// Cities returns the city gazetteer.
func Cities() []string { return cities }

// Countries returns the country gazetteer.
func Countries() []string { return countries }

// ChemicalFormulas returns chemical formula strings, a column family whose
// values are inherently within small edit distances of each other.
func ChemicalFormulas() []string { return chemFormulas }

// PopularEntities returns popular web entities/brands: the simulated
// query-log head of the commercial speller.
func PopularEntities() []string { return popularEntities }

// RomanNumerals returns the roman numerals for 1..n.
func RomanNumerals(n int) []string {
	out := make([]string, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, roman(i))
	}
	return out
}

func roman(n int) string {
	vals := []struct {
		v int
		s string
	}{
		{1000, "M"}, {900, "CM"}, {500, "D"}, {400, "CD"},
		{100, "C"}, {90, "XC"}, {50, "L"}, {40, "XL"},
		{10, "X"}, {9, "IX"}, {5, "V"}, {4, "IV"}, {1, "I"},
	}
	var b strings.Builder
	for _, e := range vals {
		for n >= e.v {
			b.WriteString(e.s)
			n -= e.v
		}
	}
	return b.String()
}
