package repair

import (
	"strings"
	"testing"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/table"
)

func col(name string, vals ...string) *table.Column { return table.NewColumn(name, vals) }

func TestSuggestSpellingPrefersFrequentForm(t *testing.T) {
	tbl := table.MustNew("t", col("State",
		"Mississippi", "Alabama", "Mississipi", "Mississippi", "Georgia", "Mississippi"))
	f := core.Finding{Class: core.ClassSpelling, Table: "t", Column: "State", Rows: []int{0, 2}}
	ss := Suggest(tbl, f)
	if len(ss) != 1 {
		t.Fatalf("suggestions = %v", ss)
	}
	s := ss[0]
	if s.Row != 2 || s.Old != "Mississipi" || s.New != "Mississippi" {
		t.Errorf("suggestion = %+v", s)
	}
	if s.Confidence <= 0 || s.Confidence > 1 {
		t.Errorf("confidence = %v", s.Confidence)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSuggestSpellingTieYieldsNothing(t *testing.T) {
	tbl := table.MustNew("t", col("N", "Doeling", "Dowling", "Myerson", "Morrow"))
	f := core.Finding{Class: core.ClassSpelling, Table: "t", Column: "N", Rows: []int{0, 1}}
	if ss := Suggest(tbl, f); len(ss) != 0 {
		t.Errorf("tie should yield no suggestion: %v", ss)
	}
}

func TestSuggestOutlierScaleShift(t *testing.T) {
	tbl := table.MustNew("t", col("Pop",
		"8011", "8.716", "9954", "11895", "11329", "11352", "11709", "10233"))
	f := core.Finding{Class: core.ClassOutlier, Table: "t", Column: "Pop", Rows: []int{1}}
	ss := Suggest(tbl, f)
	if len(ss) != 1 {
		t.Fatalf("suggestions = %v", ss)
	}
	if ss[0].New != "8716" {
		t.Errorf("New = %q, want 8716 (the Figure 4e repair)", ss[0].New)
	}
}

func TestSuggestOutlierGenuineExtremeNotRepaired(t *testing.T) {
	// A value that no power-of-ten shift re-centers gets no suggestion.
	tbl := table.MustNew("t", col("V", "10", "11", "12", "13", "14", "47"))
	f := core.Finding{Class: core.ClassOutlier, Table: "t", Column: "V", Rows: []int{5}}
	if ss := Suggest(tbl, f); len(ss) != 0 {
		t.Errorf("no shift should fit: %v", ss)
	}
}

func TestSuggestFDMajority(t *testing.T) {
	tbl := table.MustNew("t",
		col("City", "Paris", "Paris", "Paris", "Lyon", "Nice", "Paris"),
		col("Country", "France", "France", "France", "France", "France", "Italy"),
	)
	f := core.Finding{Class: core.ClassFD, Table: "t", Column: "City→Country", Rows: []int{0, 1, 2, 5}}
	ss := Suggest(tbl, f)
	if len(ss) != 1 {
		t.Fatalf("suggestions = %v", ss)
	}
	s := ss[0]
	if s.Row != 5 || s.New != "France" || s.Column != "Country" {
		t.Errorf("suggestion = %+v", s)
	}
	if s.Confidence != 0.75 {
		t.Errorf("confidence = %v, want 3/4", s.Confidence)
	}
}

func TestSuggestFDNoMajority(t *testing.T) {
	tbl := table.MustNew("t",
		col("X", "a", "a"),
		col("Y", "1", "2"),
	)
	f := core.Finding{Class: core.ClassFD, Table: "t", Column: "X→Y", Rows: []int{0, 1}}
	if ss := Suggest(tbl, f); len(ss) != 0 {
		t.Errorf("50/50 group should yield nothing: %v", ss)
	}
}

func TestSuggestSynthExactRepair(t *testing.T) {
	// Figure 14: "Carag" should be "Caraig" per the split program.
	tbl := table.MustNew("t",
		col("Name", "Sinan, Michael", "Santos, Armando", "Caraig, Benjie", "Lewis, Nolan", "Bernal, Jaime", "Kyaw, Sai"),
		col("Last", "Sinan", "Santos", "Carag", "Lewis", "Bernal", "Kyaw"),
	)
	f := core.Finding{Class: core.ClassFDSynth, Table: "t", Column: "Name→Last", Rows: []int{2}}
	ss := Suggest(tbl, f)
	if len(ss) != 1 {
		t.Fatalf("suggestions = %v", ss)
	}
	if ss[0].New != "Caraig" || ss[0].Old != "Carag" {
		t.Errorf("suggestion = %+v", ss[0])
	}
	if !strings.Contains(ss[0].Rationale, "split") {
		t.Errorf("rationale = %q", ss[0].Rationale)
	}
}

func TestSuggestUniquenessHasNoAutoRepair(t *testing.T) {
	tbl := table.MustNew("t", col("ID", "a", "b", "a"))
	f := core.Finding{Class: core.ClassUniqueness, Table: "t", Column: "ID", Rows: []int{0, 2}}
	if ss := Suggest(tbl, f); ss != nil {
		t.Errorf("uniqueness should not auto-repair: %v", ss)
	}
}

func TestSuggestUnknownColumn(t *testing.T) {
	tbl := table.MustNew("t", col("A", "x", "y"))
	for _, f := range []core.Finding{
		{Class: core.ClassSpelling, Column: "missing", Rows: []int{0, 1}},
		{Class: core.ClassOutlier, Column: "missing", Rows: []int{0}},
		{Class: core.ClassFD, Column: "missing→also", Rows: []int{0}},
		{Class: core.ClassFD, Column: "noarrow", Rows: []int{0}},
	} {
		if ss := Suggest(tbl, f); len(ss) != 0 {
			t.Errorf("%v yielded %v", f.Class, ss)
		}
	}
}

// --- Edge cases: degenerate tables must never panic or propose
// repairs out of thin air. ---

// everyClass is one representative finding per repairable class, with
// row indices that are out of range on an empty or truncated column.
func everyClass(column string, rows ...int) []core.Finding {
	return []core.Finding{
		{Class: core.ClassSpelling, Table: "t", Column: column, Rows: rows},
		{Class: core.ClassOutlier, Table: "t", Column: column, Rows: rows[:1]},
		{Class: core.ClassFD, Table: "t", Column: column + "→" + column, Rows: rows},
		{Class: core.ClassFDSynth, Table: "t", Column: column + "→" + column, Rows: rows},
		{Class: core.ClassUniqueness, Table: "t", Column: column, Rows: rows},
	}
}

func TestSuggestEmptyTable(t *testing.T) {
	for _, tbl := range []*table.Table{
		table.MustNew("t"),           // no columns at all
		table.MustNew("t", col("A")), // a column with zero rows
	} {
		for _, f := range everyClass("A", 0, 1) {
			if ss := Suggest(tbl, f); len(ss) != 0 {
				t.Errorf("empty table, %v: got %v", f.Class, ss)
			}
		}
	}
}

func TestSuggestSingleRowTable(t *testing.T) {
	tbl := table.MustNew("t", col("A", "only"))
	// Row 0 exists; row 1 does not. Neither combination may panic, and
	// a one-row column supports no repair of any class.
	for _, f := range everyClass("A", 0, 1) {
		if ss := Suggest(tbl, f); len(ss) != 0 {
			t.Errorf("single-row table, %v: got %v", f.Class, ss)
		}
	}
}

func TestSuggestAllCellsFlagged(t *testing.T) {
	// Every row of the FD group is flagged: the majority repair must
	// still only rewrite the minority rows, never the majority itself.
	tbl := table.MustNew("t",
		col("City", "Paris", "Paris", "Paris", "Paris"),
		col("Country", "France", "France", "France", "Italy"),
	)
	f := core.Finding{Class: core.ClassFD, Table: "t", Column: "City→Country", Rows: []int{0, 1, 2, 3}}
	ss := Suggest(tbl, f)
	if len(ss) != 1 || ss[0].Row != 3 || ss[0].New != "France" {
		t.Fatalf("all-flagged FD group: got %v, want one repair of row 3 to France", ss)
	}

	// A spelling pair where the flagged rows are the entire column:
	// the frequencies tie (one each), so no side can be picked.
	tied := table.MustNew("t", col("N", "Doeling", "Dowling"))
	fs := core.Finding{Class: core.ClassSpelling, Table: "t", Column: "N", Rows: []int{0, 1}}
	if ss := Suggest(tied, fs); len(ss) != 0 {
		t.Errorf("fully flagged tied pair: got %v", ss)
	}
}

func TestSuggestNaNNumericColumn(t *testing.T) {
	// NaN cells are not parseable numbers: a finding pointing at one
	// yields nothing, and NaN neighbours are excluded from the MAD
	// baseline rather than poisoning it.
	tbl := table.MustNew("t", col("Pop",
		"8011", "8.716", "NaN", "9954", "11895", "11329", "NaN", "11352", "11709", "10233"))
	atNaN := core.Finding{Class: core.ClassOutlier, Table: "t", Column: "Pop", Rows: []int{2}}
	if ss := Suggest(tbl, atNaN); len(ss) != 0 {
		t.Errorf("finding at a NaN cell: got %v", ss)
	}
	f := core.Finding{Class: core.ClassOutlier, Table: "t", Column: "Pop", Rows: []int{1}}
	ss := Suggest(tbl, f)
	if len(ss) != 1 || ss[0].New != "8716" {
		t.Fatalf("NaN neighbours must not block the scale repair: got %v", ss)
	}
}
