// Package repair proposes fixes for detected errors. Detection is the
// paper's subject; repair is its stated downstream step ("error-detection
// ... is orthogonal to and one step before error-repair", Appendix A) and
// Appendix D observes that explicit programmatic relationships "enable
// exact repair (through generative program synthesis)". This package
// implements the natural repair for each error class:
//
//   - spelling: replace the misspelled value with its close neighbour;
//   - outlier: undo the power-of-ten scale shift that best re-centers the
//     value in its column;
//   - uniqueness: no automatic repair (the colliding rows are surfaced;
//     only the user knows which is wrong);
//   - FD: replace the minority right-hand-side of a violating group with
//     the group's majority value;
//   - FD-synthesis: recompute the cell from the synthesized program —
//     the exact repair of Appendix D.
package repair

import (
	"fmt"
	"math"
	"strings"

	"github.com/unidetect/unidetect/internal/core"
	"github.com/unidetect/unidetect/internal/stats"
	"github.com/unidetect/unidetect/internal/strdist"
	"github.com/unidetect/unidetect/internal/synth"
	"github.com/unidetect/unidetect/internal/table"
)

// Suggestion is one proposed cell repair.
type Suggestion struct {
	Table  string
	Column string
	Row    int
	// Old is the current (suspect) value, New the proposed replacement.
	Old, New string
	// Confidence in (0, 1]: how mechanically determined the repair is
	// (program-derived repairs are 1; heuristic ones less).
	Confidence float64
	Rationale  string
}

// String renders the suggestion.
func (s Suggestion) String() string {
	return fmt.Sprintf("%s!%s[%d]: %q -> %q (%.0f%%: %s)",
		s.Table, s.Column, s.Row, s.Old, s.New, 100*s.Confidence, s.Rationale)
}

// Suggest proposes repairs for a finding against its table. Findings
// whose repair is not mechanically determinable yield no suggestions.
func Suggest(t *table.Table, f core.Finding) []Suggestion {
	switch f.Class {
	case core.ClassSpelling:
		return suggestSpelling(t, f)
	case core.ClassOutlier:
		return suggestOutlier(t, f)
	case core.ClassFD:
		return suggestFD(t, f)
	case core.ClassFDSynth:
		return suggestSynth(t, f)
	default:
		return nil
	}
}

// suggestSpelling proposes replacing the rarer value of the flagged pair
// with the more frequent one (misspellings are one-off; the correct form
// usually recurs). With equal frequencies no side can be chosen.
func suggestSpelling(t *table.Table, f core.Finding) []Suggestion {
	if len(f.Rows) != 2 {
		return nil
	}
	c := t.Column(f.Column)
	if c == nil || f.Rows[0] < 0 || f.Rows[0] >= c.Len() || f.Rows[1] < 0 || f.Rows[1] >= c.Len() {
		return nil
	}
	a, b := c.Values[f.Rows[0]], c.Values[f.Rows[1]]
	freq := map[string]int{}
	for _, v := range c.Values {
		freq[v]++
	}
	var wrongRow int
	var wrong, right string
	switch {
	case freq[a] < freq[b]:
		wrongRow, wrong, right = f.Rows[0], a, b
	case freq[b] < freq[a]:
		wrongRow, wrong, right = f.Rows[1], b, a
	default:
		return nil // tie: a human must pick the side
	}
	return []Suggestion{{
		Table: t.Name, Column: f.Column, Row: wrongRow,
		Old: wrong, New: right,
		Confidence: 0.7,
		Rationale:  fmt.Sprintf("%q occurs %d time(s), %q %d", wrong, freq[wrong], right, freq[right]),
	}}
}

// suggestOutlier tries the power-of-ten shifts of the suspect value and
// proposes the one that brings it closest (in MAD scores) to the rest of
// the column.
func suggestOutlier(t *table.Table, f core.Finding) []Suggestion {
	if len(f.Rows) != 1 {
		return nil
	}
	c := t.Column(f.Column)
	if c == nil {
		return nil
	}
	row := f.Rows[0]
	if row < 0 || row >= c.Len() {
		return nil
	}
	v, isInt, ok := table.ParseNumber(c.Values[row])
	if !ok {
		return nil
	}
	rest := make([]float64, 0, c.Len()-1)
	for i, s := range c.Values {
		if i == row {
			continue
		}
		if x, _, ok := table.ParseNumber(s); ok {
			rest = append(rest, x)
		}
	}
	if len(rest) < 4 {
		return nil
	}
	origScore := stats.MADScore(v, rest)
	bestFactor, bestScore := 1.0, origScore
	for _, factor := range []float64{10, 100, 1000, 0.1, 0.01, 0.001} {
		if s := stats.MADScore(v*factor, rest); s < bestScore {
			bestScore, bestFactor = s, factor
		}
	}
	// The shift must bring the value into the column's ordinary range
	// AND improve dramatically over the raw value — otherwise this is a
	// genuine extreme, not a scale error.
	if stats.SameFloat(bestFactor, 1) || bestScore > 5 || bestScore > origScore/3 {
		return nil
	}
	fixed := v * bestFactor
	var newVal string
	if isInt && bestFactor > 1 {
		newVal = fmt.Sprintf("%d", int64(math.Round(fixed)))
	} else if stats.IsWhole(fixed) {
		newVal = fmt.Sprintf("%d", int64(fixed))
	} else {
		newVal = strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", fixed), "0"), ".")
	}
	return []Suggestion{{
		Table: t.Name, Column: f.Column, Row: row,
		Old: c.Values[row], New: newVal,
		Confidence: 0.6,
		Rationale:  fmt.Sprintf("×%g brings the MAD score from %.1f to %.1f", bestFactor, stats.MADScore(v, rest), bestScore),
	}}
}

// suggestFD proposes the majority right-hand-side for minority rows of a
// violating group.
func suggestFD(t *table.Table, f core.Finding) []Suggestion {
	lhsName, rhsName, ok := splitArrow(f.Column)
	if !ok {
		return nil
	}
	lc, rc := t.Column(lhsName), t.Column(rhsName)
	if lc == nil || rc == nil {
		return nil
	}
	// Majority rhs per lhs group across the flagged rows.
	counts := map[string]map[string]int{}
	for i := range lc.Values {
		g := counts[lc.Values[i]]
		if g == nil {
			g = map[string]int{}
			counts[lc.Values[i]] = g
		}
		g[rc.Values[i]]++
	}
	var out []Suggestion
	for _, row := range f.Rows {
		if row < 0 || row >= lc.Len() {
			continue
		}
		g := counts[lc.Values[row]]
		majority, best, total := "", 0, 0
		for v, n := range g {
			total += n
			if n > best {
				best, majority = n, v
			}
		}
		if majority == rc.Values[row] || best*2 <= total {
			continue // already majority, or no clear majority
		}
		out = append(out, Suggestion{
			Table: t.Name, Column: rhsName, Row: row,
			Old: rc.Values[row], New: majority,
			Confidence: float64(best) / float64(total),
			Rationale:  fmt.Sprintf("%d of %d rows with %s=%q carry %q", best, total, lhsName, lc.Values[row], majority),
		})
	}
	return out
}

// suggestSynth re-learns the programmatic relationship and proposes the
// program's output for each violating row — the exact repair of
// Appendix D. When the flagged side is the lhs (Figure 13's wrong route
// shield), the repair is proposed on the rhs recomputation instead only
// if the program maps cleanly; lhs inversion is not attempted.
func suggestSynth(t *table.Table, f core.Finding) []Suggestion {
	lhsName, rhsName, ok := splitArrow(f.Column)
	if !ok {
		return nil
	}
	lc, rc := t.Column(lhsName), t.Column(rhsName)
	if lc == nil || rc == nil {
		return nil
	}
	fit, ok := synth.Learn(lc.Values, rc.Values, 0.6)
	if !ok {
		return nil
	}
	var out []Suggestion
	for _, row := range f.Rows {
		if row < 0 || row >= lc.Len() {
			continue
		}
		want, ok := fit.Program.Apply(lc.Values[row])
		if !ok || want == rc.Values[row] {
			continue
		}
		// Only propose when the computed value is plausibly the fix: it
		// should be close to the current rhs (a corrupted cell) — or the
		// current rhs is empty.
		if rc.Values[row] != "" {
			if d, within := strdist.LevenshteinBounded(want, rc.Values[row], 3); !within || d == 0 {
				continue
			}
		}
		out = append(out, Suggestion{
			Table: t.Name, Column: rhsName, Row: row,
			Old: rc.Values[row], New: want,
			Confidence: fit.Conforming,
			Rationale:  fmt.Sprintf("program %s over %s", fit.Program, lhsName),
		})
	}
	return out
}

func splitArrow(col string) (lhs, rhs string, ok bool) {
	i := strings.Index(col, "→")
	if i < 0 {
		return "", "", false
	}
	return col[:i], col[i+len("→"):], true
}
